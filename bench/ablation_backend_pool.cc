// Ablation: the two §7 deployment fixes quantified.
//  1. Backend round-robin start offset: synchronized restarts after a
//     backend-list update skew traffic 2-3x onto the first backends;
//     randomizing each worker's start offset flattens it.
//  2. Backend connection pooling: Hermes's even spread fragments per-worker
//     pools (more TCP/TLS handshakes to far-away IDCs); a shared pool
//     restores reuse.
#include <cstdio>
#include <map>
#include <vector>

#include "bench/bench_common.h"
#include "core/backend_pool.h"
#include "simcore/rng.h"

using namespace hermes;
using namespace hermes::bench;

namespace {

void rr_experiment(bool randomize, BenchJson& json) {
  constexpr uint32_t kWorkers = 32;
  constexpr uint32_t kBackends = 16;
  constexpr int kUpdates = 50;       // controller pushes per run
  constexpr int kReqsPerUpdate = 3;  // few requests per worker per epoch

  core::RoundRobinBackends rr(kWorkers, randomize);
  std::vector<core::BackendId> list;
  for (uint32_t b = 0; b < kBackends; ++b) list.push_back(b);

  std::map<core::BackendId, uint64_t> traffic;
  sim::Rng rng(77);
  for (int u = 0; u < kUpdates; ++u) {
    rr.update_backends(list, rng.next_u64());
    for (uint32_t w = 0; w < kWorkers; ++w) {
      for (int r = 0; r < kReqsPerUpdate; ++r) ++traffic[rr.pick(w)];
    }
  }
  uint64_t mx = 0, mn = ~0ull, total = 0;
  for (auto& [b, n] : traffic) {
    mx = std::max(mx, n);
    mn = std::min(mn, n);
    total += n;
  }
  if (traffic.size() < kBackends) mn = 0;
  std::printf("%-24s max/avg=%.2fx  max/min=%s%.1fx  backends hit=%zu/%u\n",
              randomize ? "randomized start (fix)" : "synchronized restart",
              static_cast<double>(mx) * kBackends / static_cast<double>(total),
              mn == 0 ? ">" : "", mn == 0 ? 99.0
                                          : static_cast<double>(mx) /
                                                static_cast<double>(mn),
              traffic.size(), kBackends);
  json.metric(std::string(randomize ? "randomized" : "synchronized") +
                  ".max_over_avg",
              static_cast<double>(mx) * kBackends /
                  static_cast<double>(total));
}

void pool_experiment(BenchJson& json) {
  constexpr uint32_t kWorkers = 32;
  constexpr uint32_t kBackends = 8;
  constexpr int kRequests = 100000;
  const double handshake_ms = 80;  // cross-Internet TCP+TLS to an IDC

  for (const bool hermes_spread : {false, true}) {
    for (const bool shared : {false, true}) {
      core::BackendConnectionPool pool(kWorkers, shared);
      sim::Rng rng(5);
      for (int i = 0; i < kRequests; ++i) {
        // Exclusive concentrates requests on few workers; Hermes spreads.
        const WorkerId w =
            hermes_spread
                ? static_cast<WorkerId>(rng.next_below(kWorkers))
                : static_cast<WorkerId>(rng.next_below(3));  // top-3 workers
        const auto b = static_cast<core::BackendId>(rng.next_below(kBackends));
        pool.acquire(w, b);
        pool.release(w, b);
      }
      const auto& st = pool.stats();
      std::printf("%-18s %-14s hit rate %6.2f%%  extra handshake latency"
                  " %.3f ms/req\n",
                  hermes_spread ? "hermes spread" : "exclusive concent.",
                  shared ? "shared pool" : "per-worker pool",
                  100 * st.hit_rate(), (1.0 - st.hit_rate()) * handshake_ms);
      json.metric(std::string(hermes_spread ? "spread" : "concentrated") +
                      (shared ? ".shared" : ".per_worker") + ".hit_rate_pct",
                  100 * st.hit_rate());
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  BenchJson json("ablation_backend_pool", &argc, argv);
  header("Ablation: backend RR start offset & shared connection pool (§7)");
  subheader("1. backend traffic skew after synchronized list updates");
  rr_experiment(false, json);
  rr_experiment(true, json);
  subheader("2. backend connection reuse vs pool architecture");
  pool_experiment(json);
  std::printf("\nExpected: randomized offsets remove the 2-3x first-backend"
              " skew; a shared\npool keeps reuse high under Hermes's even"
              " spread (per-worker pools only\nwork when traffic concentrates"
              " on a few workers).\n");
  return 0;
}
