// Ablation: the lock-free 64-bit bitmap decision sync vs the mutex-guarded
// array the paper rejects (§5.3.2 "this array-based data structure requires
// explicit locking to prevent race conditions ... which degrades system
// throughput"). Real multi-threaded microbenchmark: N writer threads
// (embedded schedulers publishing decisions) + 1 reader (the kernel side).
#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <thread>
#include <vector>

#include "bench/bench_common.h"

namespace {

struct LockedArray {
  std::mutex mu;
  bool selected[64] = {};

  void publish(uint64_t bitmap) {
    std::lock_guard<std::mutex> lock(mu);
    for (int i = 0; i < 64; ++i) selected[i] = (bitmap >> i) & 1;
  }
  uint64_t read() {
    std::lock_guard<std::mutex> lock(mu);
    uint64_t bm = 0;
    for (int i = 0; i < 64; ++i) bm |= static_cast<uint64_t>(selected[i]) << i;
    return bm;
  }
};

struct AtomicBitmap {
  std::atomic<uint64_t> bits{0};
  void publish(uint64_t bitmap) {
    bits.store(bitmap, std::memory_order_release);
  }
  uint64_t read() { return bits.load(std::memory_order_acquire); }
};

template <typename Sync>
double run(int writers, int seconds_hundredths) {
  Sync sync;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> ops{0};
  std::vector<std::thread> threads;
  for (int w = 0; w < writers; ++w) {
    threads.emplace_back([&sync, &stop, &ops, w] {
      uint64_t bitmap = 0xff00ff00ff00ff00ull ^ (1ull << w);
      uint64_t local = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        sync.publish(bitmap);
        ++bitmap;
        ++local;
      }
      ops.fetch_add(local);
    });
  }
  std::thread reader([&sync, &stop] {
    volatile uint64_t sink = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      sink = sink + sync.read();
    }
  });
  std::this_thread::sleep_for(
      std::chrono::milliseconds(10 * seconds_hundredths));
  stop.store(true);
  for (auto& t : threads) t.join();
  reader.join();
  return static_cast<double>(ops.load()) /
         (0.01 * seconds_hundredths) / 1e6;  // Mops/s
}

}  // namespace

int main(int argc, char** argv) {
  hermes::bench::BenchJson json("ablation_bitmap_sync", &argc, argv);
  hermes::bench::header(
      "Ablation: lock-free bitmap vs mutex-guarded array decision sync");
  std::printf("%-10s %22s %22s %8s\n", "#writers", "mutex array (Mops/s)",
              "atomic bitmap (Mops/s)", "speedup");
  for (int writers : {1, 2, 4, 8}) {
    const double locked = run<LockedArray>(writers, 30);
    const double atomic = run<AtomicBitmap>(writers, 30);
    std::printf("%-10d %22.1f %22.1f %7.1fx\n", writers, locked, atomic,
                atomic / locked);
    // Wall-clock throughputs: recorded for trend-watching, not gated.
    const std::string prefix = "writers" + std::to_string(writers);
    json.metric(prefix + ".mutex_mops", locked);
    json.metric(prefix + ".atomic_mops", atomic);
    json.metric(prefix + ".speedup", atomic / locked);
  }
  std::printf("\nExpected: the atomic 64-bit bitmap scales with writers"
              " while the mutex\narray serializes them — the reason Hermes"
              " encodes decisions as one word.\n");
  return 0;
}
