// Ablation: how fresh does the closed loop have to be? We throttle
// schedule_and_sync() to a minimum interval and sweep it from "every loop
// iteration" (the paper's design) to effectively-static steering (the
// sk_lookup / Facebook-release style of §8: a steering table that does not
// react to runtime load). Workload includes wedges, so stale bitmaps keep
// routing new connections into hung workers.
#include <cstdio>

#include "bench/bench_common.h"

using namespace hermes;
using namespace hermes::bench;

namespace {

struct Row {
  double avg_ms;
  double p99_ms;
  uint64_t syncs;
};

Row run(SimTime interval, uint64_t seed) {
  sim::LbDevice::Config cfg;
  cfg.mode = netsim::DispatchMode::HermesMode;
  cfg.num_workers = 8;
  cfg.num_ports = 32;
  cfg.seed = seed;
  cfg.worker.min_sync_interval = interval;
  sim::LbDevice lb(cfg);

  sim::TrafficPattern p = sim::case_pattern(4, cfg.num_workers, 1.5);
  const SimTime end = SimTime::seconds(10);
  lb.start_pattern(p, 0, cfg.num_ports, end);
  lb.eq().run_until(SimTime::seconds(2));
  lb.take_window_latency();
  lb.eq().run_until(end + SimTime::seconds(2));
  auto window = lb.take_window_latency();
  return Row{window.mean() / 1e6, static_cast<double>(window.p99()) / 1e6,
             lb.hermes()->counters().syncs};
}

}  // namespace

int main(int argc, char** argv) {
  BenchJson json("ablation_closed_loop", &argc, argv);
  header("Ablation: decision-sync freshness (closed loop -> static steering)");
  std::printf("%-16s %10s %10s %14s\n", "min sync gap", "Avg (ms)",
              "P99 (ms)", "total syncs");

  struct Cfg {
    const char* name;
    SimTime interval;
  };
  const Cfg cfgs[] = {
      {"every loop", SimTime::zero()},
      {"1 ms", SimTime::millis(1)},
      {"10 ms", SimTime::millis(10)},
      {"100 ms", SimTime::millis(100)},
      {"1 s", SimTime::seconds(1)},
      {"static (inf)", SimTime::seconds(3600)},
  };
  for (const auto& c : cfgs) {
    double avg = 0, p99 = 0;
    uint64_t syncs = 0;
    for (uint64_t seed : {21ull, 22ull, 23ull}) {
      const Row r = run(c.interval, seed);
      avg += r.avg_ms / 3;
      p99 += r.p99_ms / 3;
      syncs += r.syncs / 3;
    }
    std::printf("%-16s %10.2f %10.2f %14lu\n", c.name, avg, p99,
                (unsigned long)syncs);
    json.metric(std::string(c.name) + ".p99_ms", p99);
    json.metric(std::string(c.name) + ".syncs",
                static_cast<double>(syncs));
  }
  std::printf("\nExpected: latency degrades monotonically as the loop"
              " staleness grows;\nthe static end of the sweep behaves like"
              " hash steering that cannot avoid\nwedged workers — the"
              " paper's core 'closed loop beats static policy' claim.\n");
  return 0;
}
