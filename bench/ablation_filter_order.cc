// Ablation: the cascading filter's stage ORDER and composition (§5.2.2).
// The paper argues for Time -> Connections -> PendingEvents: stability
// first (never pick hung workers), then accumulated-connection balance
// (surge robustness), then responsiveness. We compare orders and reduced
// cascades on a workload with both long-lived connections and wedges.
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"

using namespace hermes;
using namespace hermes::bench;

namespace {

struct Variant {
  const char* name;
  core::FilterStage order[3];
  uint32_t stages;
};

struct Outcome {
  double p99_ms;
  double conn_sd;
  double surge_p999_ms;
};

Outcome run_variant(const Variant& v, uint64_t seed) {
  sim::LbDevice::Config cfg;
  cfg.mode = netsim::DispatchMode::HermesMode;
  cfg.num_workers = 8;
  cfg.num_ports = 32;
  cfg.seed = seed;
  for (uint32_t i = 0; i < v.stages; ++i) cfg.hermes.stage_order[i] = v.order[i];
  cfg.hermes.num_stages = v.stages;
  sim::LbDevice lb(cfg);

  // Long-lived conns + steady request load + rare wedges, then a surge.
  sim::TrafficPattern p = sim::case_pattern(3, cfg.num_workers, 1.5);
  p.poison_fraction = 0.0015;
  p.poison_cost_us = sim::DistSpec::uniform(150'000, 500'000);
  const SimTime end = SimTime::seconds(12);
  lb.start_pattern(p, 0, cfg.num_ports, end);
  lb.eq().run_until(SimTime::seconds(8));
  auto steady = lb.take_window_latency();

  lb.eq().schedule_at(SimTime::seconds(9), [&lb] {
    lb.burst_all_connections(sim::DistSpec::lognormal(200, 0.4), 2);
  });
  lb.eq().run_until(end + SimTime::seconds(2));
  auto surge = lb.take_window_latency();

  sim::RunningStat conns;
  for (WorkerId w = 0; w < lb.num_workers(); ++w) {
    conns.add(static_cast<double>(lb.worker(w).live_connections()));
  }
  return Outcome{static_cast<double>(steady.p99()) / 1e6, conns.stddev(),
                 static_cast<double>(surge.p999()) / 1e6};
}

}  // namespace

int main(int argc, char** argv) {
  BenchJson json("ablation_filter_order", &argc, argv);
  header("Ablation: coarse-filter cascade order and composition");
  using FS = core::FilterStage;
  const Variant variants[] = {
      {"time,conn,event (paper)", {FS::Time, FS::Connections, FS::PendingEvents}, 3},
      {"time,event,conn", {FS::Time, FS::PendingEvents, FS::Connections}, 3},
      {"conn,event (no hang flt)", {FS::Connections, FS::PendingEvents, FS::Time}, 2},
      {"time only", {FS::Time, FS::Time, FS::Time}, 1},
      {"time,conn", {FS::Time, FS::Connections, FS::Time}, 2},
      {"time,event", {FS::Time, FS::PendingEvents, FS::Time}, 2},
  };
  std::printf("%-28s %12s %12s %16s\n", "cascade", "P99 (ms)", "conn SD",
              "surge P999 (ms)");
  for (const auto& v : variants) {
    double p99 = 0, sd = 0, surge = 0;
    for (uint64_t seed : {5ull, 6ull, 7ull}) {
      const auto o = run_variant(v, seed);
      p99 += o.p99_ms / 3;
      sd += o.conn_sd / 3;
      surge += o.surge_p999_ms / 3;
    }
    std::printf("%-28s %12.2f %12.1f %16.2f\n", v.name, p99, sd, surge);
    json.metric(std::string(v.name) + ".p99_ms", p99);
    json.metric(std::string(v.name) + ".conn_sd", sd);
    json.metric(std::string(v.name) + ".surge_p999_ms", surge);
  }
  std::printf("\nExpected: dropping the connection filter (time-only /"
              " time,event) inflates\nconn SD and the surge P999 (the lag"
              " effect returns); dropping the hang filter\ninflates steady"
              " P99 (wedged workers keep receiving connections).\n");
  return 0;
}
