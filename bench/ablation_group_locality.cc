// Ablation: group-based scheduling for cache locality vs load balance
// (Appendix C, Fig. A6). Group size trades the two: one group of 64 =
// standard Hermes (max balance, no locality); one worker per group =
// reuseport (max locality, no balance). We sweep the group count on a
// fixed worker pool and report both metrics.
#include <cstdio>
#include <map>
#include <set>

#include "bench/bench_common.h"

using namespace hermes;
using namespace hermes::bench;

namespace {

struct Outcome {
  double conn_sd;          // balance: SD of per-worker connections
  double avg_workers_per_dest;  // locality: distinct workers serving a dest
};

Outcome run_groups(uint32_t workers_per_group, uint64_t seed) {
  sim::LbDevice::Config cfg;
  cfg.mode = netsim::DispatchMode::HermesMode;
  cfg.num_workers = 8;
  cfg.num_ports = 16;
  cfg.seed = seed;
  cfg.hermes.workers_per_group = workers_per_group;
  // Locality mode: allow singleton selections (min n=2 would force the
  // hash fallback across ALL sockets and break group confinement; the
  // overload guard matters less when groups are intentionally narrow).
  cfg.hermes.min_workers_for_dispatch = 1;
  sim::LbDevice lb(cfg);

  sim::TrafficPattern p = sim::case_pattern(3, cfg.num_workers, 1.0);
  const SimTime end = SimTime::seconds(8);
  lb.start_pattern(p, 0, cfg.num_ports, end);
  lb.eq().run_until(end);

  // Locality: how many distinct workers served each destination port.
  std::map<PortId, std::set<WorkerId>> dest_workers;
  for (uint32_t pt = 0; pt < cfg.num_ports; ++pt) {
    const auto port = static_cast<PortId>(cfg.first_port + pt);
    for (WorkerId w = 0; w < cfg.num_workers; ++w) {
      auto* sock = lb.netstack().worker_socket(port, w);
      if (sock != nullptr && sock->accept_queue().high_watermark() > 0) {
        dest_workers[port].insert(w);
      }
    }
  }
  double sum = 0;
  for (auto& [port, ws] : dest_workers) sum += static_cast<double>(ws.size());
  const double avg_workers =
      dest_workers.empty() ? 0 : sum / static_cast<double>(dest_workers.size());

  sim::RunningStat conns;
  for (WorkerId w = 0; w < cfg.num_workers; ++w) {
    conns.add(static_cast<double>(lb.worker(w).live_connections()));
  }
  return Outcome{conns.stddev(), avg_workers};
}

}  // namespace

int main(int argc, char** argv) {
  BenchJson json("ablation_group_locality", &argc, argv);
  header("Ablation: group size — cache locality vs load balance (Fig. A6)");
  std::printf("%-18s %10s %14s %24s\n", "workers/group", "#groups",
              "conn SD", "avg workers per dest");
  for (uint32_t wpg : {8u, 4u, 2u, 1u}) {
    double sd = 0, loc = 0;
    for (uint64_t seed : {9ull, 10ull, 11ull}) {
      const auto o = run_groups(wpg, seed);
      sd += o.conn_sd / 3;
      loc += o.avg_workers_per_dest / 3;
    }
    std::printf("%-18u %10u %14.1f %24.2f\n", wpg, 8 / wpg, sd, loc);
    const std::string prefix = "wpg" + std::to_string(wpg);
    json.metric(prefix + ".conn_sd", sd);
    json.metric(prefix + ".workers_per_dest", loc);
  }
  std::printf("\nExpected: fewer workers per group -> fewer distinct"
              " workers per destination\n(better locality) but higher conn"
              " SD (worse balance). wpg=8 is standard\nHermes; wpg=1"
              " degenerates to reuseport, exactly as Appendix C notes.\n");
  return 0;
}
