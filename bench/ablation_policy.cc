// Ablation: scheduling policy (core/policy.h) — what each dispatch
// variant costs on the hot path, and what load-awareness buys on a
// heterogeneous fleet.
//
// Part 1 (micro): ns/dispatch of every policy's generated program at the
// default execution tier, over the same context sweep as dispatch_path.
// Wall-clock rows carry the _cost_ns suffix (reported, never gated); the
// gated rows are deterministic — insns/dispatch and the selection count
// over a fixed 1024-context sweep with fixed bitmaps and aux state.
//
// Part 2 (sim, Fig. 13-style): per-worker CPU-utilization SD and
// connection-count SD under the paper's multi-tenant mix, on a fleet
// where half the cores run at 2x (worker_speeds {2,2,2,2,1,1,1,1}). The
// cascade is load-oblivious inside the eligible set, so capacity skew
// shows up as CPU imbalance; the load-aware policies should narrow it.
// Acceptance: at least one load-aware policy beats the cascade's CPU SD
// on this scenario (shape check printed either way).
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "bpf/maps.h"
#include "bpf/vm.h"
#include "core/policy.h"
#include "simcore/rng.h"
#include "sim/lb.h"
#include "sim/workload.h"
#include "util/check.h"

namespace hermes::bench {
namespace {

double cpu_seconds() {
  timespec ts{};
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
}

template <typename F>
double ns_per_op(F&& op, int iters) {
  for (int i = 0; i < iters / 10; ++i) op(i);  // warmup
  double best = 1e300;
  for (int rep = 0; rep < 5; ++rep) {
    const double start = cpu_seconds();
    for (int i = 0; i < iters; ++i) op(i);
    best = std::min(best, cpu_seconds() - start);
  }
  return best / iters * 1e9;
}

constexpr uint32_t kNumGroups = 2;
constexpr uint32_t kWorkersPerGroup = 8;
constexpr size_t kNumCtxs = 1024;  // power of two (cheap index mask)
constexpr int kTimedIters = 100'000;

struct MicroResult {
  double cost_ns = 0;
  uint64_t insns = 0;
  uint64_t selections = 0;
};

MicroResult run_micro(const core::SchedulingPolicy& policy,
                      const std::vector<bpf::ReuseportCtx>& ctxs) {
  core::PolicyProgramParams pp;
  pp.base.num_groups = kNumGroups;
  pp.base.workers_per_group = kWorkersPerGroup;

  bpf::ArrayMap sel(kNumGroups, sizeof(uint64_t));
  sel.store_u64(0, 0xad);  // 5 of 8 workers available
  sel.store_u64(1, 0x5f);  // 6 of 8
  bpf::ReuseportSockArray socks(kNumGroups * kWorkersPerGroup);
  for (uint32_t w = 0; w < kNumGroups * kWorkersPerGroup; ++w) {
    socks.update(w, 1000 + w);
  }
  std::vector<bpf::Map*> maps = {&sel, &socks};
  std::unique_ptr<bpf::ArrayMap> aux;
  if (policy.aux_value_bytes() > 0) {
    aux = std::make_unique<bpf::ArrayMap>(kNumGroups,
                                          policy.aux_value_bytes());
    // Deterministic aux state from the policy's own userspace half.
    int64_t conns[core::kMaxWorkersPerGroup];
    int64_t pending[core::kMaxWorkersPerGroup];
    for (uint32_t gr = 0; gr < kNumGroups; ++gr) {
      for (uint32_t w = 0; w < core::kMaxWorkersPerGroup; ++w) {
        conns[w] = static_cast<int64_t>((w * 13 + gr * 7) % 41);
        pending[w] = static_cast<int64_t>((w * 5 + gr) % 11);
      }
      core::ScheduleResult sr;
      sr.bitmap = gr == 0 ? 0xad : 0x5f;
      core::PolicyAuxInputs in;
      in.loop_enter_ns = conns;
      in.pending_events = pending;
      in.connections = conns;
      in.limit = kWorkersPerGroup;
      in.base = gr * kWorkersPerGroup;
      in.result = &sr;
      uint64_t words[core::kMaxWorkersPerGroup] = {};
      policy.fill_aux(in, words);
      aux->update(gr, words);
    }
    maps.push_back(aux.get());
  }

  bpf::Vm vm;
  std::string err;
  auto loaded = vm.load(policy.build_program(pp), maps, &err);
  HERMES_CHECK_MSG(loaded != nullptr, "policy program rejected");

  MicroResult r;
  // Deterministic sweep (queue_est mutates its estimates as it goes —
  // part of the policy's contract, and still fully seeded).
  for (const bpf::ReuseportCtx& c : ctxs) {
    bpf::ReuseportCtx ctx = c;
    const bpf::Vm::RunResult run = vm.run(*loaded, ctx);
    r.insns += run.insns_executed;
    if (ctx.selection_made) ++r.selections;
  }

  std::vector<bpf::ReuseportCtx> scratch = ctxs;
  r.cost_ns = ns_per_op(
      [&](int i) {
        bpf::ReuseportCtx& ctx =
            scratch[static_cast<size_t>(i) & (kNumCtxs - 1)];
        ctx.selection_made = 0;
        (void)vm.run(*loaded, ctx);
      },
      kTimedIters);
  return r;
}

struct SimResult {
  double cpu_sd_pp = 0;
  double conn_sd = 0;
  double cpu_avg_pct = 0;
  double krps = 0;
};

SimResult run_hetero_sim(core::PolicyKind kind) {
  sim::LbDevice::Config cfg;
  cfg.mode = netsim::DispatchMode::HermesMode;
  cfg.num_workers = 8;
  cfg.num_ports = 32;
  cfg.seed = 17;
  cfg.policy = kind;
  // Half the fleet runs at 2x: the capacity skew every load-oblivious
  // policy turns into CPU imbalance.
  cfg.worker_speeds = {2.0, 2.0, 2.0, 2.0, 1.0, 1.0, 1.0, 1.0};
  sim::LbDevice lb(cfg);

  const auto mixes = sim::paper_region_mixes();
  const auto tm = sim::TenantModel::from_mix(mixes[0], 32, 1.3);
  const SimTime end = SimTime::seconds(20);
  lb.start_tenant_mix(tm, 250, cfg.num_workers, 1.0, end);
  lb.eq().run_until(SimTime::seconds(4));  // warmup
  lb.sample_now();
  const uint64_t done0 = lb.totals().requests_completed;
  lb.start_sampling(SimTime::seconds(1), end);
  lb.eq().run_until(end);

  SimResult r;
  double n = 0;
  for (const auto& s : lb.samples()) {
    if (s.at <= SimTime::seconds(4)) continue;
    r.cpu_sd_pp += s.cpu_sd * 100;
    r.conn_sd += s.conn_sd;
    r.cpu_avg_pct += s.cpu_avg * 100;
    n += 1;
  }
  r.cpu_sd_pp /= n;
  r.conn_sd /= n;
  r.cpu_avg_pct /= n;
  r.krps = static_cast<double>(lb.totals().requests_completed - done0) /
           16.0 / 1000.0;
  return r;
}

int main_impl(int argc, char** argv) {
  BenchJson json("ablation_policy", &argc, argv);
  header("ablation_policy: dispatch cost and hetero-fleet balance per "
         "scheduling policy");

  std::vector<bpf::ReuseportCtx> ctxs(kNumCtxs);
  sim::Rng rng(17);
  for (bpf::ReuseportCtx& c : ctxs) {
    c.hash = static_cast<uint32_t>(rng.next_u64());
    c.hash2 = static_cast<uint32_t>(rng.next_u64());
    c.ip_protocol = 6;
  }

  const core::PolicyConfig pcfg{
      {8, 8, 8, 8, 4, 4, 4, 4}};  // micro: 2x-weighted head

  std::printf("\n%-12s %14s %16s %12s\n", "policy", "ns/dispatch",
              "insns/dispatch", "selections");
  for (size_t k = 0; k < core::kPolicyCount; ++k) {
    const auto kind = static_cast<core::PolicyKind>(k);
    const auto policy = core::make_policy(kind, pcfg);
    const MicroResult m = run_micro(*policy, ctxs);
    const double n = static_cast<double>(kNumCtxs);
    std::printf("%-12s %14.1f %16.1f %12llu\n", policy->name(), m.cost_ns,
                static_cast<double>(m.insns) / n,
                static_cast<unsigned long long>(m.selections));
    const std::string p = policy->name();
    json.metric(p + "_dispatch_cost_ns", m.cost_ns);  // wall-clock, ungated
    json.metric(p + ".insns_per_dispatch",
                static_cast<double>(m.insns) / n);
    json.metric(p + ".selections", static_cast<double>(m.selections));
  }

  std::printf("\nFig. 13-style heterogeneous fleet (workers 0-3 at 2x):\n");
  std::printf("%-12s %12s %12s %12s %10s\n", "policy", "CPU SD(pp)",
              "conn SD", "CPU avg(%)", "kRPS");
  double sd[core::kPolicyCount];
  for (size_t k = 0; k < core::kPolicyCount; ++k) {
    const auto kind = static_cast<core::PolicyKind>(k);
    const SimResult r = run_hetero_sim(kind);
    sd[k] = r.cpu_sd_pp;
    std::printf("%-12s %12.2f %12.1f %12.1f %10.1f\n", core::to_string(kind),
                r.cpu_sd_pp, r.conn_sd, r.cpu_avg_pct, r.krps);
    const std::string p = core::to_string(kind);
    json.metric(p + ".cpu_sd_pp", r.cpu_sd_pp);
    json.metric(p + ".conn_sd", r.conn_sd);
    json.metric(p + ".cpu_avg_pct", r.cpu_avg_pct);
  }

  const double best_aware =
      std::min({sd[1], sd[2], sd[3]});  // p2c, weighted, queue_est
  std::printf("\nshape check: a load-aware policy beats the cascade's CPU "
              "SD on the hetero fleet\n  cascade %.2f pp vs best "
              "load-aware %.2f pp (%s)\n",
              sd[0], best_aware, best_aware < sd[0] ? "OK" : "MISS");
  return 0;
}

}  // namespace
}  // namespace hermes::bench

int main(int argc, char** argv) {
  return hermes::bench::main_impl(argc, argv);
}
