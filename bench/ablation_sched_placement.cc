// Ablation: scheduler placement in the epoll event loop (§5.3.2).
// The paper places schedule_and_sync() at the END of the loop body so the
// published status reflects the batch that was just processed. Scheduling
// at the START publishes pre-batch (stale) status: a worker that is about
// to chew through a heavy batch advertises itself as available and gets
// new connections it cannot serve promptly.
#include <cstdio>

#include "bench/bench_common.h"

using namespace hermes;
using namespace hermes::bench;

namespace {

struct Outcome {
  double avg_ms;
  double p99_ms;
};

Outcome run_placement(bool at_start, uint64_t seed) {
  sim::LbDevice::Config cfg;
  cfg.mode = netsim::DispatchMode::HermesMode;
  cfg.num_workers = 8;
  cfg.num_ports = 32;
  cfg.seed = seed;
  cfg.worker.schedule_at_loop_start = at_start;
  // Isolate event-status staleness: schedule on hang + pending events only
  // (the connection filter would mask the placement effect, since conn
  // counts change identically under both placements).
  cfg.hermes.stage_order[0] = core::FilterStage::Time;
  cfg.hermes.stage_order[1] = core::FilterStage::PendingEvents;
  cfg.hermes.num_stages = 2;
  sim::LbDevice lb(cfg);

  // Bursty, heavy batches make the stale-status window matter.
  sim::TrafficPattern p = sim::case_pattern(2, cfg.num_workers, 1.6);
  const SimTime end = SimTime::seconds(10);
  lb.start_pattern(p, 0, cfg.num_ports, end);
  lb.eq().run_until(SimTime::seconds(2));
  lb.take_window_latency();
  lb.eq().run_until(end + SimTime::seconds(2));
  auto window = lb.take_window_latency();
  return Outcome{window.mean() / 1e6,
                 static_cast<double>(window.p99()) / 1e6};
}

}  // namespace

int main(int argc, char** argv) {
  BenchJson json("ablation_sched_placement", &argc, argv);
  header("Ablation: scheduler at loop END (paper) vs loop START");
  std::printf("%-22s %12s %12s\n", "placement", "Avg (ms)", "P99 (ms)");
  for (const bool at_start : {false, true}) {
    double avg = 0, p99 = 0;
    for (uint64_t seed : {3ull, 4ull, 5ull}) {
      const auto o = run_placement(at_start, seed);
      avg += o.avg_ms / 3;
      p99 += o.p99_ms / 3;
    }
    std::printf("%-22s %12.2f %12.2f\n",
                at_start ? "loop start (stale)" : "loop end (paper)", avg,
                p99);
    const std::string prefix = at_start ? "loop_start" : "loop_end";
    json.metric(prefix + ".avg_ms", avg);
    json.metric(prefix + ".p99_ms", p99);
  }
  std::printf("\nExpected: end-of-loop placement wins — start-of-loop"
              " publishes status\nbefore the batch lands, overloading"
              " apparently-idle workers (§5.3.2).\n");
  return 0;
}
