// Ablation: SYN-retransmission amplification under backlog pressure.
// With a realistic (small) per-socket backlog and TCP clients that
// retransmit dropped SYNs, reuseport's habit of hashing new connections
// onto wedged workers turns overload into a retry storm: drops beget
// retransmits beget more drops on the same hot sockets. Hermes routes
// around the wedged workers, so the same offered load produces almost no
// drops at all — the paper's catastrophic case-2/4 reuseport collapse
// (thr 0.27 kRPS) is this mechanism at production scale.
#include <cstdio>

#include "bench/bench_common.h"

using namespace hermes;
using namespace hermes::bench;

namespace {

struct Row {
  uint64_t drops;
  uint64_t retransmits;
  double p99_ms;
  double thr_krps;
};

Row run(netsim::DispatchMode mode, int retries, uint64_t seed) {
  sim::LbDevice::Config cfg;
  cfg.mode = mode;
  cfg.num_workers = 8;
  cfg.num_ports = 4;
  cfg.seed = seed;
  cfg.backlog = 16;  // realistic small per-socket backlog
  cfg.syn_retries = retries;
  cfg.syn_retry_timeout = SimTime::millis(250);
  sim::LbDevice lb(cfg);

  // Case-2-flavoured load with frequent wedges.
  sim::TrafficPattern p = sim::case_pattern(2, cfg.num_workers, 1.2);
  p.poison_fraction = 0.002;
  p.poison_cost_us = sim::DistSpec::uniform(1'000'000, 3'000'000);
  const SimTime end = SimTime::seconds(10);
  lb.start_pattern(p, 0, cfg.num_ports, end);
  lb.eq().run_until(SimTime::seconds(2));
  lb.take_window_latency();
  const uint64_t before = lb.totals().requests_completed;
  lb.eq().run_until(end);
  const uint64_t done = lb.totals().requests_completed - before;
  lb.eq().run_until(end + SimTime::seconds(2));
  auto window = lb.take_window_latency();

  return Row{lb.totals().conns_dropped, lb.totals().syn_retransmits,
             static_cast<double>(window.p99()) / 1e6,
             static_cast<double>(done) / 8.0 / 1000.0};
}

}  // namespace

int main(int argc, char** argv) {
  BenchJson json("ablation_syn_retry", &argc, argv);
  header("Ablation: SYN retry amplification (small backlogs, wedge-heavy load)");
  std::printf("%-18s %9s | %10s %12s %10s %11s\n", "mode", "retries",
              "drops", "retransmits", "P99 (ms)", "Thr (kRPS)");
  for (const auto mode :
       {netsim::DispatchMode::Reuseport, netsim::DispatchMode::HermesMode}) {
    for (int retries : {0, 3}) {
      const Row r = run(mode, retries, 77);
      std::printf("%-18s %9d | %10lu %12lu %10.1f %11.2f\n",
                  netsim::to_string(mode), retries,
                  (unsigned long)r.drops, (unsigned long)r.retransmits,
                  r.p99_ms, r.thr_krps);
      const std::string prefix = std::string(netsim::to_string(mode)) +
                                 ".retries" + std::to_string(retries);
      json.metric(prefix + ".drops", static_cast<double>(r.drops));
      json.metric(prefix + ".retransmits",
                  static_cast<double>(r.retransmits));
      json.metric(prefix + ".thr_krps", r.thr_krps);
    }
  }
  std::printf("\nExpected: reuseport drops pile up on wedged workers'"
              " sockets and retries\namplify them; Hermes's coarse filter"
              " keeps new SYNs off those sockets, so\ndrops (and the whole"
              " retry storm) largely vanish at the same offered load.\n");
  return 0;
}
