// Ablation: the two-level (grouped) scheme beyond 64 workers (paper §7
// "Will the 64-bit atomic<int> limit Hermes on 128-core machines?").
// A 128-worker LB with two 64-worker groups must still balance load and
// bypass hung workers; we also show the single-group 64-worker baseline
// and the paper's preferred alternative (multiple 32-core VMs).
#include <cstdio>

#include "bench/bench_common.h"

using namespace hermes;
using namespace hermes::bench;

namespace {

struct Row {
  double p99_ms;
  double conn_sd;
  uint64_t bpf_selected;
};

Row run(uint32_t workers, uint32_t wpg, uint64_t seed) {
  sim::LbDevice::Config cfg;
  cfg.mode = netsim::DispatchMode::HermesMode;
  cfg.num_workers = workers;
  cfg.num_ports = 32;
  cfg.seed = seed;
  cfg.hermes.workers_per_group = wpg;
  sim::LbDevice lb(cfg);

  sim::TrafficPattern p = sim::case_pattern(3, workers, 1.2);
  const SimTime end = SimTime::seconds(6);
  lb.start_pattern(p, 0, cfg.num_ports, end);
  lb.eq().run_until(SimTime::seconds(2));
  lb.take_window_latency();
  lb.eq().run_until(end);
  auto window = lb.take_window_latency();

  sim::RunningStat conns;
  for (WorkerId w = 0; w < workers; ++w) {
    conns.add(static_cast<double>(lb.worker(w).live_connections()));
  }
  uint64_t sel = 0;
  for (uint32_t pt = 0; pt < cfg.num_ports; ++pt) {
    sel += lb.netstack()
               .group(static_cast<PortId>(cfg.first_port + pt))
               ->stats()
               .bpf_selections;
  }
  return Row{static_cast<double>(window.p99()) / 1e6, conns.stddev(), sel};
}

}  // namespace

int main(int argc, char** argv) {
  BenchJson json("ablation_two_level", &argc, argv);
  header("Ablation: two-level scheduling beyond 64 workers (paper §7)");
  std::printf("%-26s %10s %10s %14s\n", "configuration", "P99 (ms)",
              "conn SD", "bpf dispatches");

  const Row w64 = run(64, 64, 31);
  std::printf("%-26s %10.2f %10.1f %14lu\n", "64 workers, 1 group", w64.p99_ms,
              w64.conn_sd, (unsigned long)w64.bpf_selected);
  json.metric("w64.conn_sd", w64.conn_sd);
  json.metric("w64.bpf_selected", static_cast<double>(w64.bpf_selected));
  const Row w128 = run(128, 64, 32);
  std::printf("%-26s %10.2f %10.1f %14lu\n", "128 workers, 2 groups",
              w128.p99_ms, w128.conn_sd, (unsigned long)w128.bpf_selected);
  json.metric("w128.conn_sd", w128.conn_sd);
  json.metric("w128.bpf_selected", static_cast<double>(w128.bpf_selected));
  const Row w100 = run(100, 64, 33);
  std::printf("%-26s %10.2f %10.1f %14lu\n", "100 workers, 64+36 groups",
              w100.p99_ms, w100.conn_sd, (unsigned long)w100.bpf_selected);
  json.metric("w100.conn_sd", w100.conn_sd);
  json.metric("w100.bpf_selected", static_cast<double>(w100.bpf_selected));

  std::printf("\nExpected: grouped scheduling preserves balance and latency"
              " at 100-128\nworkers — the 64-bit bitmap does not cap Hermes;"
              " each group filters its own\nslice of the WST and owns one"
              " M_sel slot.\n");
  return 0;
}
