// Ablation: the userspace-dispatcher alternative (paper §2.2). A dedicated
// dispatcher process gives perfect fairness — until its single core
// saturates on the accept+forward path. Hermes keeps the dispatcher inside
// the kernel (eBPF), so connection setup scales with CPS. We sweep CPS and
// report achieved throughput + latency for both, plus the dispatcher's
// core utilization.
#include <cstdio>

#include "bench/bench_common.h"

using namespace hermes;
using namespace hermes::bench;

namespace {

struct Row {
  double thr_kcps;
  double p99_ms;
  double dispatcher_util;
};

Row run(netsim::DispatchMode mode, double cps, uint64_t seed) {
  sim::LbDevice::Config cfg;
  cfg.mode = mode;
  cfg.num_workers = 8;
  cfg.num_ports = 16;
  cfg.seed = seed;
  sim::LbDevice lb(cfg);

  sim::TrafficPattern p;
  p.cps = cps;
  p.requests_per_conn = sim::DistSpec::constant(1);
  p.request_cost_us = sim::DistSpec::lognormal(60, 0.3);  // light L7 work
  const SimTime end = SimTime::seconds(4);
  lb.start_pattern(p, 0, cfg.num_ports, end);
  lb.eq().run_until(SimTime::seconds(1));
  lb.take_window_latency();
  const uint64_t before = lb.totals().requests_completed;
  lb.eq().run_until(end);
  const uint64_t done = lb.totals().requests_completed - before;
  lb.eq().run_until(end + SimTime::seconds(1));
  auto window = lb.take_window_latency();

  Row r;
  r.thr_kcps = static_cast<double>(done) / 3.0 / 1000.0;
  r.p99_ms = static_cast<double>(window.p99()) / 1e6;
  r.dispatcher_util =
      lb.dispatcher() != nullptr
          ? static_cast<double>(lb.dispatcher()->busy_time().ns()) /
                static_cast<double>(end.ns())
          : 0.0;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  BenchJson json("ablation_user_dispatcher", &argc, argv);
  header("Ablation: userspace dispatcher (§2.2) vs in-kernel Hermes dispatch");
  std::printf("%-10s | %21s | %31s\n", "", "hermes", "user-dispatcher");
  std::printf("%-10s | %9s %11s | %9s %11s %9s\n", "offered",
              "kCPS out", "P99 (ms)", "kCPS out", "P99 (ms)", "disp CPU");
  for (double cps : {10e3, 25e3, 50e3, 75e3, 100e3}) {
    const Row h = run(netsim::DispatchMode::HermesMode, cps, 7);
    const Row d = run(netsim::DispatchMode::UserDispatcher, cps, 7);
    std::printf("%-8.0fk | %9.1f %11.2f | %9.1f %11.2f %8.0f%%\n", cps / 1e3,
                h.thr_kcps, h.p99_ms, d.thr_kcps, d.p99_ms,
                100 * d.dispatcher_util);
    const std::string prefix = "cps" + std::to_string((int)(cps / 1e3)) + "k";
    json.metric(prefix + ".hermes_kcps", h.thr_kcps);
    json.metric(prefix + ".dispatcher_kcps", d.thr_kcps);
    json.metric(prefix + ".dispatcher_util_pct", 100 * d.dispatcher_util);
  }
  std::printf("\nExpected: both match at low CPS; the dispatcher core"
              " saturates around\n1/dispatch_cost (~55 kCPS) and its"
              " throughput flatlines while latency\nexplodes — Hermes keeps"
              " scaling (the paper's argument for in-kernel\ndispatch on"
              " the connection path).\n");
  return 0;
}
