// Ablation: the whole wakeup-policy family on one long-lived-connection
// workload — pre-4.5 wake-all (thundering herd), EPOLLEXCLUSIVE (LIFO),
// the unmerged epoll-rr patch, io_uring-style FIFO (§8), the §2.2
// userspace dispatcher, reuseport hashing, and Hermes. One table, every
// mechanism the paper discusses.
#include <cstdio>

#include "bench/bench_common.h"

using namespace hermes;
using namespace hermes::bench;

namespace {

void run_mode(netsim::DispatchMode mode, BenchJson& json) {
  sim::LbDevice::Config cfg;
  cfg.mode = mode;
  cfg.num_workers = 8;
  cfg.num_ports = 16;
  cfg.seed = 12;
  sim::LbDevice lb(cfg);

  sim::TrafficPattern p = sim::case_pattern(3, cfg.num_workers, 1.2);
  const SimTime end = SimTime::seconds(10);
  lb.start_pattern(p, 0, cfg.num_ports, end);
  lb.eq().run_until(SimTime::seconds(2));
  lb.take_window_latency();
  lb.sample_now();
  lb.eq().run_until(end);
  const auto s = lb.sample_now();
  auto window = lb.take_window_latency();

  int64_t cmax = 0, cmin = 1 << 30;
  for (WorkerId w = 0; w < lb.num_workers(); ++w) {
    cmax = std::max(cmax, lb.worker(w).live_connections());
    cmin = std::min(cmin, lb.worker(w).live_connections());
  }
  std::printf("%-18s %9.2f %10.2f %9.1f %12ld %14lu\n",
              netsim::to_string(mode), window.mean() / 1e6,
              static_cast<double>(window.p99()) / 1e6, s.cpu_sd * 100,
              static_cast<long>(cmax - cmin),
              (unsigned long)lb.netstack().stats().wasted_wakeups);
  const std::string prefix = netsim::to_string(mode);
  json.metric(prefix + ".p99_ms", static_cast<double>(window.p99()) / 1e6);
  json.metric(prefix + ".conn_spread", static_cast<double>(cmax - cmin));
  json.metric(prefix + ".wasted_wakeups",
              static_cast<double>(lb.netstack().stats().wasted_wakeups));
}

}  // namespace

int main(int argc, char** argv) {
  BenchJson json("ablation_wakeup_policy", &argc, argv);
  header("Ablation: every wakeup/dispatch policy on one case-3 workload");
  std::printf("%-18s %9s %10s %9s %12s %14s\n", "mode", "Avg(ms)",
              "P99(ms)", "CPU SD", "conn spread", "wasted wakeups");
  for (const auto mode :
       {netsim::DispatchMode::EpollWakeAll, netsim::DispatchMode::EpollExclusive,
        netsim::DispatchMode::EpollRr, netsim::DispatchMode::IoUringFifo,
        netsim::DispatchMode::UserDispatcher, netsim::DispatchMode::Reuseport,
        netsim::DispatchMode::HermesMode}) {
    run_mode(mode, json);
  }
  std::printf("\nExpected: wake-all burns wakeups; LIFO and FIFO concentrate"
              " connections\n(mirror images); rr fixes fairness at cache"
              " cost (not modeled); the\ndispatcher is fair but adds a hop;"
              " reuseport/Hermes balance, with Hermes\ntightest on conn"
              " spread.\n");
  return 0;
}
