// Cost of static verification: how long the abstract interpreter takes as
// a function of program size and shape. Two parts:
//   1. google-benchmark microbenchmarks — the production dispatch program
//      across pool geometries, seeded generator output at fixed atom
//      counts, and counted loops (per-iteration replay makes loop analysis
//      linear in the proven trip count);
//   2. a size-vs-steps-vs-time table over generator output, so the
//      relationship between instruction count, abstract steps, and wall
//      time is visible at a glance.
// Verification runs once per program load — these numbers bound program
// install latency, not the data path.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "bpf/analysis/interp.h"
#include "bpf/assembler.h"
#include "bpf/maps.h"
#include "core/dispatch_prog.h"
#include "simcore/rng.h"
#include "testing/fuzz_gen.h"

using namespace hermes;
using bpf::analysis::AnalysisResult;
using bpf::analysis::analyze;

namespace {

// Harness maps matching testing::GenOptions defaults.
struct GenWorld {
  bpf::ArrayMap array{2, sizeof(uint64_t)};
  bpf::ReuseportSockArray socks{8};
  std::vector<bpf::Map*> maps{&array, &socks};
};

std::vector<bpf::Program> gen_corpus(uint32_t atoms, int count,
                                     uint64_t seed_base) {
  testing::GenOptions opt;
  opt.min_atoms = atoms;
  opt.max_atoms = atoms;
  std::vector<bpf::Program> out;
  out.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    sim::Rng rng(seed_base + static_cast<uint64_t>(i));
    out.push_back(testing::gen_program(rng, opt));
  }
  return out;
}

void BM_AnalyzeDispatchProgram(benchmark::State& state) {
  core::DispatchProgramParams p;
  p.num_groups = static_cast<uint32_t>(state.range(0));
  p.workers_per_group = static_cast<uint32_t>(state.range(1));
  const bpf::Program prog = core::build_dispatch_program(p);
  bpf::ArrayMap sel(p.num_groups, sizeof(uint64_t));
  bpf::ReuseportSockArray socks(p.num_groups * p.workers_per_group);
  std::vector<bpf::Map*> maps = {&sel, &socks};
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyze(prog, maps));
  }
  state.counters["insns"] = static_cast<double>(prog.size());
}
BENCHMARK(BM_AnalyzeDispatchProgram)
    ->Args({1, 8})
    ->Args({4, 32})
    ->Args({64, 64});

void BM_AnalyzeGeneratedProgram(benchmark::State& state) {
  const auto atoms = static_cast<uint32_t>(state.range(0));
  GenWorld w;
  const auto corpus = gen_corpus(atoms, 32, 0xbe7c0000 + atoms);
  size_t insns = 0;
  for (const auto& p : corpus) insns += p.size();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyze(corpus[i], w.maps));
    i = (i + 1) % corpus.size();
  }
  state.counters["avg_insns"] =
      static_cast<double>(insns) / static_cast<double>(corpus.size());
}
BENCHMARK(BM_AnalyzeGeneratedProgram)->Arg(2)->Arg(8)->Arg(32);

void BM_AnalyzeBoundedLoop(benchmark::State& state) {
  // Per-iteration replay: proving an N-trip loop costs N abstract passes
  // over the body, so analysis time is linear in the trip bound.
  const auto trips = static_cast<int64_t>(state.range(0));
  bpf::Assembler a;
  a.mov(bpf::r0, 0).mov(bpf::r7, 0);
  a.label("top");
  a.add(bpf::r0, 3).add(bpf::r7, 1);
  a.jlt(bpf::r7, trips, "top");
  a.exit();
  const bpf::Program prog = a.finish();
  std::vector<bpf::Map*> maps;
  for (auto _ : state) {
    AnalysisResult r = analyze(prog, maps);
    if (!r.ok) state.SkipWithError(r.error.c_str());
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_AnalyzeBoundedLoop)->Arg(1)->Arg(8)->Arg(32)->Arg(128);

// Part 2: size vs abstract steps vs wall time over generator output.
void print_cost_table(bench::BenchJson& json) {
  std::printf("\nAnalyzer cost vs generated program size"
              " (200 seeded programs per row)\n");
  std::printf("%-6s | %9s %11s %11s %9s %9s\n", "atoms", "avg insns",
              "avg steps", "max steps", "avg us", "accept%");
  for (uint32_t atoms : {2u, 4u, 8u, 16u, 32u}) {
    GenWorld w;
    const auto corpus = gen_corpus(atoms, 200, 0xc057ull * atoms);
    size_t insns = 0;
    uint64_t steps = 0, max_steps = 0;
    int accepted = 0;
    const auto t0 = std::chrono::steady_clock::now();
    for (const auto& p : corpus) {
      const AnalysisResult r = analyze(p, w.maps);
      insns += p.size();
      steps += r.analysis_steps;
      max_steps = std::max(max_steps, r.analysis_steps);
      accepted += r.ok ? 1 : 0;
    }
    const auto t1 = std::chrono::steady_clock::now();
    const double n = static_cast<double>(corpus.size());
    const double us =
        std::chrono::duration<double, std::micro>(t1 - t0).count() / n;
    std::printf("%-6u | %9.1f %11.1f %11llu %9.2f %8.1f%%\n", atoms,
                static_cast<double>(insns) / n,
                static_cast<double>(steps) / n,
                static_cast<unsigned long long>(max_steps), us,
                100.0 * accepted / n);
    const std::string prefix = "atoms" + std::to_string(atoms);
    json.metric(prefix + ".avg_insns", static_cast<double>(insns) / n);
    json.metric(prefix + ".avg_steps", static_cast<double>(steps) / n);
    json.metric(prefix + ".accept_pct", 100.0 * accepted / n);
    json.metric(prefix + ".avg_us", us);  // wall clock: excluded from gate
  }
  std::printf("\nshape: steps grow linearly with program size except when"
              " loop atoms\nappear (each proven trip replays the body);"
              " verification stays in the\nmicrosecond range — negligible"
              " against program install, which happens\nonce per"
              " configuration change.\n");
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchJson json("analysis_cost", &argc, argv);
  benchmark::Initialize(&argc, argv);
  std::printf("Analyzer microbenchmarks: verification time by program"
              " shape\n");
  benchmark::RunSpecifiedBenchmarks();
  print_cost_table(json);
  return 0;
}
