// Appendix C, exception case 2: "all workers hang" scenarios. An abusive
// tenant (CC-attack-like: requests that wedge cores) degrades every tenant
// sharing its devices. Hermes's operational response: detect the pattern
// and migrate the tenant to a sandbox device — the victims recover while
// the attacker only hurts itself. Victim latency is tracked per tenant via
// the LbDevice request observer, so the abuser's own (self-inflicted)
// latencies never pollute the victim metric.
#include <cstdio>

#include "bench/bench_common.h"
#include "sim/multi_lb.h"

using namespace hermes;
using namespace hermes::bench;

namespace {

constexpr TenantId kAbuser = 0;
constexpr int kVictims = 7;

struct PhaseStats {
  double victim_avg_ms;
  double victim_p99_ms;
};

PhaseStats run_phase(sim::MultiLbCluster& cluster, bool attack, SimTime dur) {
  sim::Histogram victims{5};
  for (size_t d = 0; d < cluster.size(); ++d) {
    cluster.device(d).set_request_done_fn(
        [&victims](TenantId tenant, SimTime latency) {
          if (tenant != kAbuser) victims.record(latency);
        });
  }

  const SimTime end = cluster.now() + dur;
  while (cluster.now() < end) {
    for (int v = 1; v <= kVictims; ++v) {
      sim::LbDevice::ConnPlan plan;
      plan.tenant = static_cast<TenantId>(v);
      plan.remaining = 2;
      plan.cost_us = sim::DistSpec::constant(150);
      plan.gap_us = sim::DistSpec::constant(10'000);
      cluster.open_connection(static_cast<TenantId>(v), plan);
    }
    if (attack) {
      for (int k = 0; k < 3; ++k) {
        sim::LbDevice::ConnPlan bad;
        bad.tenant = kAbuser;
        bad.remaining = 1;
        bad.cost_us = sim::DistSpec::uniform(30'000, 120'000);
        cluster.open_connection(kAbuser, bad);
      }
    }
    cluster.run_until(cluster.now() + SimTime::millis(10));
  }
  // Let in-flight work land before switching phases.
  cluster.run_until(cluster.now() + SimTime::millis(500));
  for (size_t d = 0; d < cluster.size(); ++d) {
    cluster.device(d).set_request_done_fn(nullptr);
  }
  return PhaseStats{victims.mean() / 1e6,
                    static_cast<double>(victims.p99()) / 1e6};
}

}  // namespace

int main(int argc, char** argv) {
  BenchJson json("appendixC_sandbox", &argc, argv);
  header("Appendix C (case 2): abusive-tenant sandbox isolation");

  std::vector<sim::MultiLbCluster::DeviceSpec> specs = {
      {netsim::DispatchMode::HermesMode, 41},
      {netsim::DispatchMode::HermesMode, 42},
      {netsim::DispatchMode::HermesMode, 43},  // the sandbox
  };
  sim::LbDevice::Config base;
  base.num_workers = 8;
  base.num_ports = 16;
  base.seed = 6;
  sim::MultiLbCluster cluster(specs, base);
  cluster.start_draining(2);  // sandbox is out of the normal rotation

  std::printf("%-34s %14s %14s\n", "phase", "victims avg", "victims P99");

  const auto healthy = run_phase(cluster, /*attack=*/false, SimTime::seconds(3));
  std::printf("%-34s %11.2f ms %11.2f ms\n", "1. healthy (no attack)",
              healthy.victim_avg_ms, healthy.victim_p99_ms);

  const auto under_attack =
      run_phase(cluster, /*attack=*/true, SimTime::seconds(3));
  std::printf("%-34s %11.2f ms %11.2f ms\n", "2. attack on shared devices",
              under_attack.victim_avg_ms, under_attack.victim_p99_ms);

  // Detection + migration: pin the abuser to the sandbox; shed its
  // leftover connections from the shared devices.
  cluster.migrate_tenant(kAbuser, 2);
  cluster.device(0).close_fraction(1.0);
  cluster.device(1).close_fraction(1.0);
  // The shared devices drain the abuser's already-queued work ("once the
  // migration is complete, CPU usage on the original workers returns to
  // normal" — it takes a moment).
  cluster.run_until(cluster.now() + SimTime::seconds(4));
  const auto sandboxed =
      run_phase(cluster, /*attack=*/true, SimTime::seconds(3));
  std::printf("%-34s %11.2f ms %11.2f ms\n",
              "3. attack continues, sandboxed", sandboxed.victim_avg_ms,
              sandboxed.victim_p99_ms);
  json.metric("healthy.victim_p99_ms", healthy.victim_p99_ms);
  json.metric("attack.victim_p99_ms", under_attack.victim_p99_ms);
  json.metric("sandboxed.victim_p99_ms", sandboxed.victim_p99_ms);

  std::printf("\nShape: the attack inflates the victims' tail on shared"
              " devices; after the\nsandbox migration the victims return"
              " to baseline even though the attack\ncontinues — physical"
              " isolation, as Appendix C prescribes.\n");
  return 0;
}
