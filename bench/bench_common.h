// Shared plumbing for the reproduction benches: table printing and
// standard simulation drivers. Every bench prints the same rows/series the
// paper reports, plus a short "paper says / we measure" note where the
// comparison is meaningful.
#pragma once

#include <cstdio>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "obs/json.h"
#include "sim/lb.h"
#include "sim/workload.h"

namespace hermes::bench {

// Machine-readable results: every bench accepts `--json <path>` and writes
// a flat {"bench": name, "metrics": {name: number, ...}} object there on
// exit, alongside its normal human-readable stdout. The flag is stripped
// from argv up front so binaries that hand argv to google-benchmark don't
// trip over it. scripts/bench_report.sh aggregates the per-bench files into
// BENCH_REPORT.json; scripts/bench_gate.sh diffs a fast subset against
// bench/baseline.json.
class BenchJson {
 public:
  BenchJson(std::string bench, int* argc, char** argv)
      : bench_(std::move(bench)) {
    for (int i = 1; i + 1 < *argc; ++i) {
      if (std::strcmp(argv[i], "--json") == 0) {
        path_ = argv[i + 1];
        for (int j = i; j + 2 < *argc; ++j) argv[j] = argv[j + 2];
        *argc -= 2;
        argv[*argc] = nullptr;
        break;
      }
    }
  }

  BenchJson(const BenchJson&) = delete;
  BenchJson& operator=(const BenchJson&) = delete;

  ~BenchJson() { write(); }

  bool enabled() const { return !path_.empty(); }

  void metric(const std::string& name, double v) {
    metrics_.emplace_back(name, v);
  }

  // Writes the file (idempotent; also called from the destructor).
  void write() {
    if (path_.empty() || written_) return;
    written_ = true;
    std::string out;
    obs::JsonWriter w(&out);
    w.begin_object();
    w.field("bench", bench_);
    w.key("metrics");
    w.begin_object();
    for (const auto& [name, v] : metrics_) w.field(name, v);
    w.end_object();
    w.end_object();
    out += '\n';
    std::FILE* f = std::fopen(path_.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "bench: cannot open %s\n", path_.c_str());
      return;
    }
    std::fwrite(out.data(), 1, out.size(), f);
    std::fclose(f);
  }

 private:
  std::string bench_;
  std::string path_;
  std::vector<std::pair<std::string, double>> metrics_;
  bool written_ = false;
};

inline void header(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

inline void subheader(const std::string& title) {
  std::printf("\n--- %s ---\n", title.c_str());
}

// Result of one (mode, case, load) simulation cell for Table 3.
struct CellResult {
  double avg_ms = 0;
  double p99_ms = 0;
  double thr_krps = 0;
  uint64_t drops = 0;
};

struct RunSpec {
  netsim::DispatchMode mode = netsim::DispatchMode::HermesMode;
  int case_id = 1;
  double load = 1.0;
  uint32_t workers = 8;
  uint32_t ports = 128;  // multi-tenant: exclusive pays O(#ports) dispatch
  SimTime warmup = SimTime::seconds(2);
  SimTime duration = SimTime::seconds(6);
  uint64_t seed = 1;
};

// Run one Table-3 style cell: warm up, reset metrics, measure.
inline CellResult run_cell(const RunSpec& spec) {
  sim::LbDevice::Config cfg;
  cfg.mode = spec.mode;
  cfg.num_workers = spec.workers;
  cfg.num_ports = spec.ports;
  cfg.seed = spec.seed;
  sim::LbDevice lb(cfg);

  const sim::TrafficPattern p =
      sim::case_pattern(spec.case_id, spec.workers, spec.load);
  const SimTime end = spec.warmup + spec.duration;
  lb.start_pattern(p, 0, cfg.num_ports, end);
  lb.eq().run_until(spec.warmup);
  lb.take_window_latency();  // drop warmup samples
  const uint64_t completed_before = lb.totals().requests_completed;
  const uint64_t drops_before = lb.totals().conns_dropped;

  lb.eq().run_until(end);
  const uint64_t completed_in_window =
      lb.totals().requests_completed - completed_before;
  // Drain in-flight work briefly so tail latencies are observed.
  lb.eq().run_until(end + SimTime::seconds(2));

  auto window = lb.take_window_latency();
  CellResult res;
  res.avg_ms = window.mean() / 1e6;
  res.p99_ms = static_cast<double>(window.p99()) / 1e6;
  res.thr_krps = static_cast<double>(completed_in_window) /
                 spec.duration.s_f() / 1000.0;
  res.drops = lb.totals().conns_dropped - drops_before;
  return res;
}

inline const char* mode_name(netsim::DispatchMode m) {
  return netsim::to_string(m);
}

}  // namespace hermes::bench
