// bench_gate_check: the CI bench-regression gate's comparator.
//
// Usage:
//   bench_gate_check <baseline.json> <current.json> [--scale F]
//
// Both files use the aggregated bench-report format that
// scripts/bench_report.sh emits:
//   {"schema":1,"benches":[{"bench":"fig12_unit_cost","metrics":{...}},...]}
// The baseline is simply a checked-in report from a known-good run
// (bench/baseline.json), so regenerating it after an intentional change is
// one `scripts/bench_report.sh` invocation away.
//
// Comparison policy (kept in code so the baseline file stays a plain
// report):
//   - "obs_overhead_pct" is an absolute ceiling: current must be < 5.0
//     (Table 5's claim that the observability layer is cheap enough to
//     leave on). It is NOT compared against the baseline value — it is
//     wall-clock and the budget is the contract.
//   - metrics whose name ends in "avg_us", "_mops", ".speedup",
//     "_cost_ns", "_wall_s" or "_per_wall_sec" are wall-clock timings:
//     reported but never gated.
//   - everything else is a deterministic seeded-simulation statistic and
//     must satisfy |cur - base| <= kAbsTol + kRelTol * |base|. The 5%
//     relative tolerance absorbs libm/compiler drift across toolchains
//     while still catching the 20% injected regression the gate's
//     self-test demands.
//   - a baseline metric missing from the current report is a failure
//     (silently dropping coverage must not pass CI).
//
// --scale F multiplies every gated current value by F before comparing.
// It exists so scripts/bench_gate.sh can prove the gate trips: after the
// real comparison passes, it reruns with --scale 1.2 and requires failure.
//
// --only <bench> restricts the comparison to one bench from the baseline
// (the scale CI job compares just fleet_scale against the shared
// baseline without rerunning the whole gate subset).
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

namespace {

constexpr double kRelTol = 0.05;
constexpr double kAbsTol = 0.05;
constexpr double kObsOverheadMaxPct = 5.0;

// ---- minimal JSON reader ---------------------------------------------
// Parses only what the report format needs: objects, arrays, strings,
// numbers, and the literals true/false/null. No escapes beyond \" \\ \/
// \n \r \t (the writer never emits others for metric names).
struct Parser {
  const char* p;
  const char* end;
  bool ok = true;

  explicit Parser(const std::string& s) : p(s.data()), end(s.data() + s.size()) {}

  void ws() {
    while (p < end && std::isspace(static_cast<unsigned char>(*p))) ++p;
  }
  bool eat(char c) {
    ws();
    if (p < end && *p == c) {
      ++p;
      return true;
    }
    return false;
  }
  bool fail() {
    ok = false;
    return false;
  }

  bool parse_string(std::string& out) {
    ws();
    if (p >= end || *p != '"') return fail();
    ++p;
    out.clear();
    while (p < end && *p != '"') {
      if (*p == '\\' && p + 1 < end) {
        ++p;
        switch (*p) {
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          default: out += *p;
        }
      } else {
        out += *p;
      }
      ++p;
    }
    if (p >= end) return fail();
    ++p;  // closing quote
    return true;
  }

  bool parse_number(double& out) {
    ws();
    char* num_end = nullptr;
    out = std::strtod(p, &num_end);
    if (num_end == p) return fail();
    p = num_end;
    return true;
  }

  // Parses any value; records "<prefix>" -> number for every numeric leaf
  // and "<prefix>" -> string value is ignored except bench names, which the
  // caller pulls out of the raw structure instead.
  bool skip_value();

  bool parse_object_into(const std::string& prefix,
                         std::map<std::string, double>& nums,
                         std::map<std::string, std::string>& strs);
};

bool Parser::skip_value() {
  ws();
  if (p >= end) return fail();
  if (*p == '"') {
    std::string s;
    return parse_string(s);
  }
  if (*p == '{') {
    ++p;
    if (eat('}')) return true;
    do {
      std::string k;
      if (!parse_string(k) || !eat(':') || !skip_value()) return fail();
    } while (eat(','));
    return eat('}') || fail();
  }
  if (*p == '[') {
    ++p;
    if (eat(']')) return true;
    do {
      if (!skip_value()) return fail();
    } while (eat(','));
    return eat(']') || fail();
  }
  if (std::strncmp(p, "true", 4) == 0) { p += 4; return true; }
  if (std::strncmp(p, "false", 5) == 0) { p += 5; return true; }
  if (std::strncmp(p, "null", 4) == 0) { p += 4; return true; }
  double d;
  return parse_number(d);
}

// Flattens {"a":{"b":1}} into nums["a.b"]=1 (keys joined with '/'
// between JSON levels so metric names containing '.' stay unambiguous)
// and strs for string leaves.
bool Parser::parse_object_into(const std::string& prefix,
                               std::map<std::string, double>& nums,
                               std::map<std::string, std::string>& strs) {
  if (!eat('{')) return fail();
  if (eat('}')) return true;
  do {
    std::string key;
    if (!parse_string(key) || !eat(':')) return fail();
    const std::string path = prefix.empty() ? key : prefix + "/" + key;
    ws();
    if (p < end && *p == '{') {
      if (!parse_object_into(path, nums, strs)) return fail();
    } else if (p < end && *p == '"') {
      std::string s;
      if (!parse_string(s)) return fail();
      strs[path] = s;
    } else if (p < end && *p == '[') {
      // Arrays of objects: index into the path.
      ++p;
      if (!eat(']')) {
        int idx = 0;
        do {
          ws();
          const std::string elem = path + "/" + std::to_string(idx++);
          if (p < end && *p == '{') {
            if (!parse_object_into(elem, nums, strs)) return fail();
          } else if (!skip_value()) {
            return fail();
          }
        } while (eat(','));
        if (!eat(']')) return fail();
      }
    } else {
      double d;
      if (!parse_number(d)) {
        // true/false/null leaf: skip.
        ok = true;
        if (!skip_value()) return fail();
      } else {
        nums[path] = d;
      }
    }
  } while (eat(','));
  return eat('}') || fail();
}

// bench name -> metric name -> value
using Report = std::map<std::string, std::map<std::string, double>>;

bool load_report(const char* path, Report& out) {
  std::ifstream f(path);
  if (!f) {
    std::fprintf(stderr, "bench_gate_check: cannot open %s\n", path);
    return false;
  }
  std::stringstream ss;
  ss << f.rdbuf();
  const std::string text = ss.str();

  Parser parser(text);
  std::map<std::string, double> nums;
  std::map<std::string, std::string> strs;
  if (!parser.parse_object_into("", nums, strs) || !parser.ok) {
    std::fprintf(stderr, "bench_gate_check: parse error in %s\n", path);
    return false;
  }

  // Group flattened paths "benches/<i>/metrics/<metric>" by the bench name
  // at "benches/<i>/bench".
  std::map<std::string, std::string> index_to_bench;
  for (const auto& [path_key, s] : strs) {
    // benches/0/bench -> name
    if (path_key.rfind("benches/", 0) == 0 &&
        path_key.size() > 6 &&
        path_key.compare(path_key.size() - 6, 6, "/bench") == 0) {
      index_to_bench[path_key.substr(0, path_key.size() - 6)] = s;
    }
  }
  for (const auto& [path_key, v] : nums) {
    const std::string marker = "/metrics/";
    const auto pos = path_key.find(marker);
    if (pos == std::string::npos) continue;
    const std::string idx = path_key.substr(0, pos);
    const auto it = index_to_bench.find(idx);
    if (it == index_to_bench.end()) continue;
    out[it->second][path_key.substr(pos + marker.size())] = v;
  }
  return true;
}

bool ends_with(const std::string& s, const char* suffix) {
  const size_t n = std::strlen(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

bool is_ungated(const std::string& metric) {
  return ends_with(metric, "avg_us") || ends_with(metric, "_mops") ||
         ends_with(metric, ".speedup") || ends_with(metric, "_cost_ns") ||
         ends_with(metric, "_wall_s") || ends_with(metric, "_per_wall_sec");
}

}  // namespace

int main(int argc, char** argv) {
  double scale = 1.0;
  std::string only;
  std::vector<const char*> files;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--scale") == 0 && i + 1 < argc) {
      scale = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--only") == 0 && i + 1 < argc) {
      only = argv[++i];
    } else {
      files.push_back(argv[i]);
    }
  }
  if (files.size() != 2) {
    std::fprintf(stderr,
                 "usage: bench_gate_check <baseline.json> <current.json>"
                 " [--scale F] [--only <bench>]\n");
    return 2;
  }

  Report baseline, current;
  if (!load_report(files[0], baseline) || !load_report(files[1], current)) {
    return 2;
  }

  // A typo'd --only would otherwise compare nothing and only fail with the
  // generic "nothing compared" message — name the bad bench and what the
  // baseline actually has.
  if (!only.empty() && baseline.find(only) == baseline.end()) {
    std::fprintf(stderr,
                 "bench_gate_check: --only '%s' matches no bench in %s\n"
                 "available benches:\n",
                 only.c_str(), files[0]);
    for (const auto& [bench, metrics] : baseline) {
      std::fprintf(stderr, "  %s\n", bench.c_str());
    }
    return 2;
  }

  int checked = 0, failed = 0, skipped = 0;
  for (const auto& [bench, metrics] : baseline) {
    if (!only.empty() && bench != only) continue;
    const auto cur_bench = current.find(bench);
    for (const auto& [metric, base_val] : metrics) {
      if (is_ungated(metric)) {
        ++skipped;
        continue;
      }
      if (cur_bench == current.end() ||
          cur_bench->second.find(metric) == cur_bench->second.end()) {
        std::printf("FAIL %s:%s missing from current results\n",
                    bench.c_str(), metric.c_str());
        ++failed;
        continue;
      }
      const double cur_val = cur_bench->second.at(metric) * scale;
      ++checked;

      if (metric == "obs_overhead_pct") {
        if (cur_val >= kObsOverheadMaxPct) {
          std::printf("FAIL %s:%s = %.3f, budget < %.1f\n", bench.c_str(),
                      metric.c_str(), cur_val, kObsOverheadMaxPct);
          ++failed;
        } else {
          std::printf("ok   %s:%s = %.3f (< %.1f)\n", bench.c_str(),
                      metric.c_str(), cur_val, kObsOverheadMaxPct);
        }
        continue;
      }

      const double tol = kAbsTol + kRelTol * std::fabs(base_val);
      if (std::fabs(cur_val - base_val) > tol) {
        std::printf("FAIL %s:%s = %.6g, baseline %.6g (tol %.3g)\n",
                    bench.c_str(), metric.c_str(), cur_val, base_val, tol);
        ++failed;
      } else {
        std::printf("ok   %s:%s = %.6g (baseline %.6g)\n", bench.c_str(),
                    metric.c_str(), cur_val, base_val);
      }
    }
  }

  std::printf("\nbench gate: %d checked, %d skipped (wall-clock), %d"
              " failed%s\n",
              checked, skipped, failed, scale != 1.0 ? " [scaled]" : "");
  if (checked == 0) {
    std::fprintf(stderr, "bench_gate_check: nothing compared — baseline"
                         " empty or mismatched\n");
    return 2;
  }
  return failed > 0 ? 1 : 0;
}
