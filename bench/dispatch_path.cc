// Dispatch hot path microbench: ns/dispatch of the production eBPF
// dispatch program under each execution tier (src/bpf/plan.h).
//
//   tier 0  reference switch interpreter (decode every insn, every run)
//   tier 1  pre-decoded threaded plan (superinstruction fusion, computed
//           goto, map pointers resolved at load)
//   tier 2  tier 1 + verifier-guided check elision (bounds checks the
//           abstract interpreter proved are dropped at plan-compile time)
//   tier 3  native x86-64 JIT over the tier-2 micro-ops (bpf/jit/); on
//           hosts without codegen the row silently measures the tier-2
//           fallback and the tier3-vs-tier2 bar is reported as SKIP
//
// The program under test is core::build_dispatch_program — the exact
// bytecode sim::LbDevice attaches — at the two-level geometry (2 groups x
// 8 workers), so one dispatch exercises both popcounts, the 63-unit
// rank-select ladder, and the isolate-lowest-bit epilogue that tier 1
// fuses into superinstructions.
//
// Wall-clock metrics carry the _cost_ns / .speedup suffixes and are
// reported but never gated (bench/bench_gate_check.cc); the gated metrics
// are the deterministic ones: insns/dispatch per tier (tier-invariant by
// construction — fused micro-ops charge their original instruction
// counts), plan shape (uops, fusion/elision site counts), and per-dispatch
// fused/elided counter rates.
#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "bpf/jit/jit.h"
#include "bpf/maps.h"
#include "bpf/plan.h"
#include "bpf/vm.h"
#include "core/dispatch_prog.h"
#include "simcore/rng.h"
#include "util/check.h"

namespace hermes::bench {
namespace {

double cpu_seconds() {
  timespec ts{};
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
}

template <typename F>
double ns_per_op(F&& op, int iters) {
  for (int i = 0; i < iters / 10; ++i) op(i);  // warmup
  double best = 1e300;
  for (int rep = 0; rep < 5; ++rep) {
    const double start = cpu_seconds();
    for (int i = 0; i < iters; ++i) op(i);
    best = std::min(best, cpu_seconds() - start);
  }
  return best / iters * 1e9;
}

constexpr uint32_t kNumGroups = 2;
constexpr uint32_t kWorkersPerGroup = 8;
constexpr size_t kNumCtxs = 1024;  // power of two (cheap index mask)
constexpr int kTimedIters = 200'000;

struct TierResult {
  double cost_ns = 0;
  // Deterministic sweep over the kNumCtxs contexts:
  uint64_t insns = 0;
  uint64_t fused_hits = 0;
  uint64_t elided_checks = 0;
  uint64_t selections = 0;
  uint64_t ret_sum = 0;
  bpf::ExecutionPlan::Stats plan{};
  bool has_plan = false;
};

TierResult run_tier(bpf::ExecTier tier,
                    const std::vector<bpf::ReuseportCtx>& ctxs) {
  core::DispatchProgramParams params;
  params.num_groups = kNumGroups;
  params.workers_per_group = kWorkersPerGroup;
  bpf::ArrayMap sel(params.num_groups, sizeof(uint64_t));
  sel.store_u64(0, 0xad);  // 5 of 8 workers available
  sel.store_u64(1, 0x5f);  // 6 of 8
  bpf::ReuseportSockArray socks(kNumGroups * kWorkersPerGroup);
  for (uint32_t w = 0; w < kNumGroups * kWorkersPerGroup; ++w) {
    socks.update(w, 1000 + w);
  }

  bpf::Vm vm;
  vm.set_tier(tier);
  std::string err;
  auto loaded =
      vm.load(core::build_dispatch_program(params), {&sel, &socks}, &err);
  HERMES_CHECK_MSG(loaded != nullptr, "dispatch program rejected");
  const bpf::ExecTier expected =
      (tier == bpf::ExecTier::Jit && !bpf::jit::available())
          ? bpf::ExecTier::Elide
          : tier;
  HERMES_CHECK(loaded->tier() == expected);
  if (loaded->plan() != nullptr) {
    // Fusion must have fired on the production program: 2 popcounts, the
    // full rank-select ladder, 1 isolate-lowest-bit.
    HERMES_CHECK(loaded->plan()->stats().fused_popcount == 2);
    HERMES_CHECK(loaded->plan()->stats().fused_isolate == 1);
  }

  TierResult r;
  if (loaded->plan() != nullptr) {
    r.plan = loaded->plan()->stats();
    r.has_plan = true;
  }

  // Deterministic sweep: every context once, results accumulated.
  for (const bpf::ReuseportCtx& c : ctxs) {
    bpf::ReuseportCtx ctx = c;
    const bpf::Vm::RunResult run = vm.run(*loaded, ctx);
    r.insns += run.insns_executed;
    r.fused_hits += run.fused_hits;
    r.elided_checks += run.elided_checks;
    r.ret_sum += run.ret * 31 + ctx.selected_socket;
    if (ctx.selection_made) ++r.selections;
  }

  // Timed loop: cycle through the contexts so the branch pattern matches
  // production traffic rather than one lucky hash.
  std::vector<bpf::ReuseportCtx> scratch = ctxs;
  r.cost_ns = ns_per_op(
      [&](int i) {
        bpf::ReuseportCtx& ctx = scratch[static_cast<size_t>(i) &
                                         (kNumCtxs - 1)];
        ctx.selection_made = 0;
        (void)vm.run(*loaded, ctx);
      },
      kTimedIters);
  return r;
}

// One-time translation-validation cost: wall-clock of a full tier-3
// Vm::load (verify + plan compile + codegen) with the validator forced
// on vs off. This is load-time work — it never touches the dispatch hot
// path — so the row is reported for sizing (how much a validated attach
// costs) and never gated.
double load_cost_ns(const char* validate_env) {
  core::DispatchProgramParams params;
  params.num_groups = kNumGroups;
  params.workers_per_group = kWorkersPerGroup;
  bpf::ArrayMap sel(params.num_groups, sizeof(uint64_t));
  bpf::ReuseportSockArray socks(kNumGroups * kWorkersPerGroup);
  for (uint32_t w = 0; w < kNumGroups * kWorkersPerGroup; ++w) {
    socks.update(w, 1000 + w);
  }
  const bpf::Program prog = core::build_dispatch_program(params);
  bpf::Vm vm;
  vm.set_tier(bpf::ExecTier::Jit);

  const char* saved = ::getenv("HERMES_BPF_VALIDATE");
  const std::string saved_val = saved != nullptr ? saved : "";
  ::setenv("HERMES_BPF_VALIDATE", validate_env, 1);
  const double cost = ns_per_op(
      [&](int) {
        std::string err;
        auto loaded = vm.load(prog, {&sel, &socks}, &err);
        HERMES_CHECK_MSG(loaded != nullptr, "dispatch program rejected");
      },
      200);
  if (saved != nullptr) {
    ::setenv("HERMES_BPF_VALIDATE", saved_val.c_str(), 1);
  } else {
    ::unsetenv("HERMES_BPF_VALIDATE");
  }
  return cost;
}

int main_impl(int argc, char** argv) {
  BenchJson json("dispatch_path", &argc, argv);
  header("dispatch_path: ns/dispatch per eBPF execution tier");

  std::vector<bpf::ReuseportCtx> ctxs(kNumCtxs);
  sim::Rng rng(17);
  for (bpf::ReuseportCtx& c : ctxs) {
    c.hash = static_cast<uint32_t>(rng.next_u64());
    c.hash2 = static_cast<uint32_t>(rng.next_u64());
    c.ip_protocol = 6;
  }

  const bpf::ExecTier tiers[] = {bpf::ExecTier::Interp,
                                 bpf::ExecTier::Threaded,
                                 bpf::ExecTier::Elide, bpf::ExecTier::Jit};
  TierResult res[4];
  for (int t = 0; t < 4; ++t) res[t] = run_tier(tiers[t], ctxs);

  // Tier equivalence on the production program: identical returns,
  // selections, and instruction counts, or the bench itself is measuring
  // two different programs.
  for (int t = 1; t < 4; ++t) {
    HERMES_CHECK_MSG(res[t].ret_sum == res[0].ret_sum &&
                         res[t].selections == res[0].selections &&
                         res[t].insns == res[0].insns,
                     "tier divergence on dispatch program");
  }

  const double n = static_cast<double>(kNumCtxs);
  std::printf("\n%-28s %12s %14s %10s %10s\n", "tier", "ns/dispatch",
              "insns/dispatch", "fused/d", "elided/d");
  for (int t = 0; t < 4; ++t) {
    std::printf("%-28s %12.1f %14.1f %10.2f %10.2f\n",
                bpf::to_string(tiers[t]), res[t].cost_ns,
                static_cast<double>(res[t].insns) / n,
                static_cast<double>(res[t].fused_hits) / n,
                static_cast<double>(res[t].elided_checks) / n);
  }

  const double speedup1 = res[0].cost_ns / res[1].cost_ns;
  const double speedup2 = res[0].cost_ns / res[2].cost_ns;
  const double speedup3 = res[0].cost_ns / res[3].cost_ns;
  const double jit_vs_elide = res[2].cost_ns / res[3].cost_ns;
  std::printf("\nspeedup tier1 vs tier0: %.2fx   tier2 vs tier0: %.2fx   "
              "tier3 vs tier0: %.2fx%s\n",
              speedup1, speedup2, speedup3,
              bpf::jit::available() ? "" : " (jit unavailable: tier-2 fallback)");
  std::printf("plan: %" PRIu64 " insns -> %" PRIu64
              " uops (popcount=%u blsr=%u isolate=%u, elided sites=%u of "
              "%u mem/helper sites at tier 2)\n",
              static_cast<uint64_t>(res[1].plan.n_insns),
              static_cast<uint64_t>(res[1].plan.n_uops),
              res[1].plan.fused_popcount, res[1].plan.fused_blsr,
              res[1].plan.fused_isolate, res[2].plan.elided_sites,
              res[2].plan.elided_sites + res[2].plan.checked_sites);
  std::printf("\npaper says: dispatch program overhead is negligible "
              "(Table 5); we measure the\ntiered engine keeping it so — "
              "acceptance bar is tier1 >= 2x tier0, tier2 >= tier1,\n"
              "tier3 >= 2x tier2 (native code vs threaded dispatch).\n");
  std::printf("bar: tier1 %.2fx (%s), tier2/tier1 %.2fx (%s), "
              "tier3/tier2 %.2fx (%s)\n",
              speedup1, speedup1 >= 2.0 ? "PASS" : "FAIL",
              res[1].cost_ns / res[2].cost_ns,
              res[2].cost_ns <= res[1].cost_ns * 1.05 ? "PASS" : "FAIL",
              jit_vs_elide,
              bpf::jit::available() ? (jit_vs_elide >= 2.0 ? "PASS" : "FAIL")
                                    : "SKIP: jit unavailable");

  // One-time validation cost at load: how much slower a tier-3 attach is
  // with translation validation on. Pure load-time work, never gated.
  const double load_plain_ns = load_cost_ns("0");
  const double load_validated_ns = load_cost_ns("1");
  std::printf("\ntier-3 load (one-time): %.0f ns plain, %.0f ns validated "
              "(+%.0f ns, %.2fx)%s\n",
              load_plain_ns, load_validated_ns,
              load_validated_ns - load_plain_ns,
              load_validated_ns / load_plain_ns,
              bpf::jit::available() ? "" : " (jit unavailable: no validation)");

  // Wall-clock: reported, never gated.
  json.metric("load_cost_ns", load_plain_ns);
  json.metric("load_validated_cost_ns", load_validated_ns);
  json.metric("tier0_cost_ns", res[0].cost_ns);
  json.metric("tier1_cost_ns", res[1].cost_ns);
  json.metric("tier2_cost_ns", res[2].cost_ns);
  json.metric("tier3_cost_ns", res[3].cost_ns);
  json.metric("tier1.speedup", speedup1);
  json.metric("tier2.speedup", speedup2);
  json.metric("tier3.speedup", speedup3);
  json.metric("tier3_vs_tier2.speedup", jit_vs_elide);
  // Deterministic: gated against bench/baseline.json. The tier-3 rates
  // equal tier 2's by construction (same micro-op stream and counter
  // charges), so the baseline stays portable to non-JIT hosts.
  for (int t = 0; t < 4; ++t) {
    const std::string p = "tier" + std::to_string(t);
    json.metric(p + "_insns_per_dispatch",
                static_cast<double>(res[t].insns) / n);
    json.metric(p + "_fused_per_dispatch",
                static_cast<double>(res[t].fused_hits) / n);
    json.metric(p + "_elided_per_dispatch",
                static_cast<double>(res[t].elided_checks) / n);
  }
  json.metric("plan_uops", static_cast<double>(res[1].plan.n_uops));
  json.metric("plan_fused_popcount",
              static_cast<double>(res[1].plan.fused_popcount));
  json.metric("plan_fused_blsr",
              static_cast<double>(res[1].plan.fused_blsr));
  json.metric("plan_fused_isolate",
              static_cast<double>(res[1].plan.fused_isolate));
  json.metric("plan_elided_sites",
              static_cast<double>(res[2].plan.elided_sites));
  return 0;
}

}  // namespace
}  // namespace hermes::bench

int main(int argc, char** argv) {
  return hermes::bench::main_impl(argc, argv);
}
