// Fig. 11 (cluster edition): the canary release simulated end-to-end on a
// real multi-device cluster instead of the analytic drain model. Two
// old-version (epoll exclusive) devices serve long-lived, surge-prone
// tenants; at the release day two Hermes devices enter the L4 rotation
// and the old ones drain as client connections churn out. Per-core probes
// track delayed counts per "day" on whichever devices still hold traffic.
#include <cstdio>

#include "bench/bench_common.h"
#include "sim/multi_lb.h"

using namespace hermes;
using namespace hermes::bench;

namespace {
constexpr SimTime kDay = SimTime::seconds(4);  // one compressed "day"
constexpr int kReleaseDay = 2;
constexpr double kDailyChurn = 0.55;  // fraction of old conns closing daily
}  // namespace

int main(int argc, char** argv) {
  BenchJson json("fig11_cluster", &argc, argv);
  header("Fig. 11 (cluster): canary release across 4 LB devices, simulated");

  std::vector<sim::MultiLbCluster::DeviceSpec> specs = {
      {netsim::DispatchMode::EpollExclusive, 11},
      {netsim::DispatchMode::EpollExclusive, 12},
      {netsim::DispatchMode::HermesMode, 13},
      {netsim::DispatchMode::HermesMode, 14},
  };
  sim::LbDevice::Config base;
  base.num_workers = 8;
  base.num_ports = 16;
  base.seed = 3;
  sim::MultiLbCluster cluster(specs, base);
  cluster.start_draining(2);  // Hermes devices not yet released
  cluster.start_draining(3);

  sim::Rng rng(99);
  sim::LbDevice::ConnPlan longlived;
  longlived.remaining = 1 << 20;  // effectively immortal until churned
  longlived.cost_us = sim::DistSpec::constant(80);
  longlived.gap_us = sim::DistSpec::exponential(2'000'000);

  std::printf("%-5s %8s %9s %13s %15s %15s\n", "day", "probes", "delayed",
              "delayed rate", "old-dev conns", "new-dev conns");
  uint64_t prev_delayed[4] = {};
  for (int day = 0; day < 8; ++day) {
    if (day == kReleaseDay) {
      cluster.stop_draining(2);
      cluster.stop_draining(3);
      cluster.start_draining(0);
      cluster.start_draining(1);
    }

    uint64_t probes = 0, delayed = 0;
    for (int quarter = 0; quarter < 4; ++quarter) {
      // New long-lived connections trickle in through the L4 front door
      // (spread over the quarter: sequential arrivals are what the LIFO
      // wakeup concentrates).
      for (int step = 0; step < 10; ++step) {
        for (int i = 0; i < 10; ++i) {
          cluster.open_connection(static_cast<TenantId>(i % 8), longlived);
        }
        cluster.run_until(cluster.now() + kDay / 80);
      }
      cluster.run_until(cluster.now() + kDay / 40);
      // Synchronized surge (the lag-effect trigger) on every device.
      for (size_t d = 0; d < cluster.size(); ++d) {
        cluster.device(d).burst_all_connections(
            sim::DistSpec::lognormal(400, 0.3), 3);
      }
      // Probe every device that still carries connections, per core.
      for (size_t d = 0; d < cluster.size(); ++d) {
        auto& lb = cluster.device(d);
        if (lb.live_connections() == 0) continue;
        for (int i = 0; i < 50; ++i) {
          lb.inject_core_probe(
              static_cast<WorkerId>(rng.next_below(lb.num_workers())));
          ++probes;
        }
      }
      cluster.run_until(cluster.now() + kDay / 8);
    }

    for (size_t d = 0; d < cluster.size(); ++d) {
      delayed += cluster.device(d).delayed_probes() - prev_delayed[d];
      prev_delayed[d] = cluster.device(d).delayed_probes();
    }
    const uint64_t old_conns = cluster.device(0).live_connections() +
                               cluster.device(1).live_connections();
    const uint64_t new_conns = cluster.device(2).live_connections() +
                               cluster.device(3).live_connections();
    std::printf("%-5d %8lu %9lu %12.1f%% %15lu %15lu%s\n", day,
                (unsigned long)probes, (unsigned long)delayed,
                100.0 * static_cast<double>(delayed) /
                    std::max<uint64_t>(1, probes),
                (unsigned long)old_conns, (unsigned long)new_conns,
                day == kReleaseDay ? "   <- Hermes release" : "");
    json.metric("day" + std::to_string(day) + ".delayed_rate_pct",
                100.0 * static_cast<double>(delayed) /
                    static_cast<double>(std::max<uint64_t>(1, probes)));

    // Daily client churn on every device; draining devices get no
    // replacements, so their population decays (the Fig. 11 tail).
    for (size_t d = 0; d < cluster.size(); ++d) {
      cluster.device(d).close_fraction(kDailyChurn);
    }
  }
  std::printf("\nShape: pre-release, surges on the exclusive devices delay"
              " a steady share\nof probes; after the release the Hermes"
              " devices absorb the same surges\nwith ~zero delays, and the"
              " residual old-device delays decay with the\nconnection churn"
              " — Fig. 11's tail, from an actual cluster run.\n");
  return 0;
}
