// Fig. 11: number of delayed probes (>200 ms end-to-end) per day, before
// and after the Hermes rollout, in two regions with different connection
// drain speeds. Paper: Region1 -99.8%, Region2 -99%; Region1's old VMs kept
// receiving a trickle of probes for ~11 days until long-lived connections
// expired.
//
// Probe model: the production prober's handshake is served by the
// RSS-selected core (kernel softirq runs on the core the flow hashes to).
// A probe is therefore late whenever *its* core is buried — per-core
// health is exactly what the prober measures and what Hermes repairs.
// The workload is the paper's pathological pattern: long-lived connections
// plus periodic synchronized surges (the Fig. 3 lag effect). Under epoll
// exclusive the connections concentrate, so each surge buries a couple of
// cores for seconds; under Hermes the surge spreads and drains in
// milliseconds.
#include <cstdio>

#include "bench/bench_common.h"
#include "sim/cluster.h"
#include "sim/probe.h"

using namespace hermes;
using namespace hermes::bench;

namespace {

struct ProbeResult {
  uint64_t sent = 0;
  uint64_t delayed = 0;
};

ProbeResult run_region(netsim::DispatchMode mode, uint64_t seed) {
  sim::LbDevice::Config cfg;
  cfg.mode = mode;
  cfg.num_workers = 8;
  cfg.num_ports = 32;
  cfg.seed = seed;
  sim::LbDevice lb(cfg);

  // Long-lived connections, mostly idle.
  sim::TrafficPattern quiet;
  quiet.cps = 500;
  quiet.requests_per_conn = sim::DistSpec::constant(100000);
  quiet.request_cost_us = sim::DistSpec::constant(80);
  quiet.request_gap_us = sim::DistSpec::exponential(3'000'000);
  lb.start_pattern(quiet, 0, cfg.num_ports, SimTime::seconds(4));

  // Synchronized surges every 4 s from t=6 s (trading-style bursts).
  const SimTime end = SimTime::seconds(30);
  for (int t = 6; t < 30; t += 4) {
    lb.eq().schedule_at(SimTime::seconds(t), [&lb] {
      lb.burst_all_connections(sim::DistSpec::lognormal(250, 0.3), 2);
    });
  }

  // Per-core probes: every 20 ms, one probe to an RSS-chosen core.
  ProbeResult res;
  lb.set_probe_done_fn([&](netsim::ConnId, SimTime) {});
  auto tick = std::make_shared<std::function<void()>>();
  *tick = [&lb, &res, tick, end] {
    const WorkerId core =
        static_cast<WorkerId>(lb.rng().next_below(lb.num_workers()));
    ++res.sent;
    const uint64_t id = lb.inject_core_probe(core);
    (void)id;
    if (lb.eq().now() + SimTime::millis(10) <= end) {
      lb.eq().schedule_after(SimTime::millis(10), *tick);
    }
  };
  lb.eq().schedule_after(SimTime::seconds(5), *tick);

  lb.eq().run_until(end + SimTime::seconds(2));
  res.delayed = lb.delayed_probes();
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  BenchJson json("fig11_probes", &argc, argv);
  header("Fig. 11: delayed probes per day, before/after Hermes deployment");

  struct Region {
    const char* name;
    uint64_t seed;
    double drain_tau_days;
  };
  const Region regions[] = {
      {"Region1", 21, 3.5},  // slow-draining IoT/cloud clients
      {"Region2", 51, 0.8},  // fast-draining mobile clients
  };

  for (const auto& r : regions) {
    subheader(r.name);
    const auto before = run_region(netsim::DispatchMode::EpollExclusive, r.seed);
    const auto after = run_region(netsim::DispatchMode::HermesMode, r.seed + 1);
    // Scale the measured delayed-probe *rate* to probes/day at the same
    // probing cadence.
    const double day_scale = 86400.0 / 25.0;  // 25 s probed window -> 1 day
    const double before_day = static_cast<double>(before.delayed) * day_scale;
    const double after_day = static_cast<double>(after.delayed) * day_scale;
    std::printf("before (exclusive): %8.0f delayed probes/day"
                "  (%lu/%lu in window)\n",
                before_day, static_cast<unsigned long>(before.delayed),
                static_cast<unsigned long>(before.sent));
    std::printf("after  (hermes)   : %8.0f delayed probes/day"
                "  (%lu/%lu in window)  reduction %.1f%%\n",
                after_day, static_cast<unsigned long>(after.delayed),
                static_cast<unsigned long>(after.sent),
                100.0 * (1.0 - after_day / std::max(1.0, before_day)));
    json.metric(std::string(r.name) + ".before_delayed",
                static_cast<double>(before.delayed));
    json.metric(std::string(r.name) + ".after_delayed",
                static_cast<double>(after.delayed));
    json.metric(std::string(r.name) + ".reduction_pct",
                100.0 * (1.0 - after_day / std::max(1.0, before_day)));

    sim::CanaryDrainModel drain{r.drain_tau_days};
    std::printf("canary drain (residual delayed probes on old VMs/day):\n ");
    for (int day = 0; day <= 12; day += 2) {
      std::printf(" d%-2d:%6.0f", day,
                  before_day * drain.residual_fraction(day));
    }
    std::printf("\n");
  }
  std::printf("\nShape: Hermes cuts delayed probes by ~99%% (paper: 99.8%%"
              " and 99%%); the\nslow-drain region keeps a residual trickle"
              " for ~11 days after the canary.\n");
  return 0;
}
