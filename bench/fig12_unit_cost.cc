// Fig. 12: unit cost of cloud infrastructure (total infra cost / total
// traffic) before and after Hermes. Eliminating hung workers let the team
// raise the per-LB CPU safety threshold from 30% to 40%, so the same
// traffic needs fewer VMs; the paper reports a peak unit-cost reduction of
// 18.9%, realized gradually over the months of the rollout.
#include <cstdio>

#include "bench/bench_common.h"
#include "sim/cluster.h"

using namespace hermes;
using namespace hermes::bench;

int main(int argc, char** argv) {
  BenchJson json("fig12_unit_cost", &argc, argv);
  header("Fig. 12: unit cost of cloud infra before/after Hermes");

  sim::UnitCostModel model;
  // Monthly traffic (in core-demand units) grows ~6%/month; Hermes rolls
  // out over months 4-8 (canary -> full fleet), linearly shifting the
  // effective safety threshold from 30% to 40%.
  const int kMonths = 14;
  const double kBase = 3000;

  std::printf("%-7s %10s %14s %14s %12s\n", "month", "traffic",
              "threshold", "unit cost", "vs baseline");
  double baseline_cost = 0;
  double peak_reduction = 0;
  for (int m = 0; m < kMonths; ++m) {
    const double traffic = kBase * std::pow(1.06, m);
    // Threshold target is 40%, but the fleet-wide *effective* threshold
    // lands lower: clusters keep disaster-recovery headroom so that an
    // AZ's traffic can migrate in (the paper's own caveat on why the
    // threshold cannot simply keep rising). We model that as a 7.5%
    // operational haircut on the raised portion.
    double threshold = 0.30;
    constexpr double kEffectiveAfter = 0.37;  // 40% target minus DR headroom
    if (m >= 4 && m < 8) {
      threshold = 0.30 + (kEffectiveAfter - 0.30) * (m - 3) / 4.0;
    }
    if (m >= 8) threshold = kEffectiveAfter;
    const double cost = model.unit_cost(traffic, threshold);
    if (m == 0) baseline_cost = cost;
    const double delta = 100.0 * (cost / baseline_cost - 1.0);
    peak_reduction = std::max(peak_reduction, -delta);
    std::printf("%-7d %10.0f %13.0f%% %14.5f %+11.1f%%\n", m, traffic,
                threshold * 100, cost, delta);
  }
  std::printf("\npeak unit-cost reduction: %.1f%% (paper: 18.9%%)\n",
              peak_reduction);
  json.metric("peak_reduction_pct", peak_reduction);
  json.metric("baseline_unit_cost", baseline_cost);
  std::printf("Mechanism check: 30%%->40%% threshold alone gives 1 -"
              " 0.30/0.40 = 25%% fewer\nVMs; ceil-quantization and AZ"
              " redundancy reserve keep the realized saving\nbelow that,"
              " as in production.\n");
  return 0;
}
