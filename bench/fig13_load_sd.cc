// Fig. 13: standard deviation of per-worker CPU utilization and per-worker
// connection counts under production-like multi-tenant traffic, for the
// three epoll modes. Paper: CPU SD 26% / 2.7% / 2.7% and conn SD
// 3200 / 50 / 20 for exclusive / reuseport / Hermes.
#include <cstdio>

#include "bench/bench_common.h"

using namespace hermes;
using namespace hermes::bench;

namespace {

struct SdResult {
  double cpu_sd_pct = 0;
  double conn_sd = 0;
  double cpu_avg_pct = 0;
  double conns_avg = 0;
};

SdResult run_mode(netsim::DispatchMode mode) {
  sim::LbDevice::Config cfg;
  cfg.mode = mode;
  cfg.num_workers = 8;
  cfg.num_ports = 32;
  cfg.seed = 17;
  sim::LbDevice lb(cfg);

  const auto mixes = sim::paper_region_mixes();
  const auto tm = sim::TenantModel::from_mix(mixes[0], 32, 1.3);
  const SimTime end = SimTime::seconds(20);
  lb.start_tenant_mix(tm, 250, cfg.num_workers, 1.0, end);
  lb.eq().run_until(SimTime::seconds(4));  // warmup
  lb.sample_now();
  lb.start_sampling(SimTime::seconds(1), end);
  lb.eq().run_until(end);

  SdResult r;
  double n = 0;
  for (const auto& s : lb.samples()) {
    if (s.at <= SimTime::seconds(4)) continue;
    r.cpu_sd_pct += s.cpu_sd * 100;
    r.conn_sd += s.conn_sd;
    r.cpu_avg_pct += s.cpu_avg * 100;
    n += 1;
  }
  r.cpu_sd_pct /= n;
  r.conn_sd /= n;
  r.cpu_avg_pct /= n;
  double conns = 0;
  for (WorkerId w = 0; w < lb.num_workers(); ++w) {
    conns += static_cast<double>(lb.worker(w).live_connections());
  }
  r.conns_avg = conns / lb.num_workers();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  BenchJson json("fig13_load_sd", &argc, argv);
  header("Fig. 13: SD of per-worker CPU%% and #connections per mode");
  std::printf("%-18s %12s %12s %12s %12s\n", "mode", "CPU SD(pp)",
              "conn SD", "CPU avg(%)", "conns avg");
  const netsim::DispatchMode modes[] = {
      netsim::DispatchMode::EpollExclusive,
      netsim::DispatchMode::Reuseport,
      netsim::DispatchMode::HermesMode,
  };
  double sd[3][2];
  int i = 0;
  for (auto m : modes) {
    const auto r = run_mode(m);
    sd[i][0] = r.cpu_sd_pct;
    sd[i][1] = r.conn_sd;
    ++i;
    std::printf("%-18s %12.2f %12.1f %12.1f %12.1f\n", mode_name(m),
                r.cpu_sd_pct, r.conn_sd, r.cpu_avg_pct, r.conns_avg);
    const std::string prefix = mode_name(m);
    json.metric(prefix + ".cpu_sd_pp", r.cpu_sd_pct);
    json.metric(prefix + ".conn_sd", r.conn_sd);
    json.metric(prefix + ".cpu_avg_pct", r.cpu_avg_pct);
  }
  std::printf("\npaper:            CPU SD 26 / 2.7 / 2.7 pp; conn SD"
              " 3200 / 50 / 20\nshape checks: exclusive CPU SD >> others"
              " (%s), Hermes conn SD < reuseport (%s)\n",
              sd[0][0] > 3 * sd[1][0] && sd[0][0] > 3 * sd[2][0] ? "OK"
                                                                 : "MISS",
              sd[2][1] < sd[1][1] ? "OK" : "MISS");
  return 0;
}
