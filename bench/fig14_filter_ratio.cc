// Fig. 14: as load grows, (a) the fraction of workers passing the
// coarse-grained filter shrinks (more workers are busy) and (b) the
// scheduler's call frequency rises (epoll_wait returns faster under load,
// so the loop — and the scheduler at its end — runs more often; paper:
// up to 20k calls/s).
#include <cstdio>

#include "bench/bench_common.h"

using namespace hermes;
using namespace hermes::bench;

int main(int argc, char** argv) {
  BenchJson json("fig14_filter_ratio", &argc, argv);
  header("Fig. 14: coarse-filter pass ratio & scheduler call frequency vs load");
  std::printf("%-8s %16s %20s %14s\n", "load", "pass ratio", "sched calls/s",
              "LB CPU avg");

  for (double load : {0.25, 0.5, 1.0, 1.5, 2.0, 2.5, 3.0}) {
    sim::LbDevice::Config cfg;
    cfg.mode = netsim::DispatchMode::HermesMode;
    cfg.num_workers = 8;
    cfg.num_ports = 32;
    cfg.seed = 9;
    sim::LbDevice lb(cfg);

    const SimTime end = SimTime::seconds(8);
    lb.start_pattern(sim::case_pattern(1, cfg.num_workers, load), 0,
                     cfg.num_ports, end);
    lb.eq().run_until(SimTime::seconds(2));
    const auto c0 = lb.hermes()->counters();
    lb.sample_now();
    lb.eq().run_until(end);
    const auto c1 = lb.hermes()->counters();
    const auto s = lb.sample_now();

    const double schedules = static_cast<double>(c1.schedules - c0.schedules);
    const double selected =
        static_cast<double>(c1.workers_selected_sum - c0.workers_selected_sum);
    std::printf("%-8.2f %15.1f%% %20.0f %13.1f%%\n", load,
                100.0 * selected / (schedules * cfg.num_workers),
                schedules / 6.0, 100 * s.cpu_avg);
    char key[32];
    std::snprintf(key, sizeof(key), "load%.2f", load);
    json.metric(std::string(key) + ".pass_ratio_pct",
                100.0 * selected / (schedules * cfg.num_workers));
    json.metric(std::string(key) + ".sched_calls_per_s", schedules / 6.0);
  }
  std::printf("\nShape: pass ratio decreases with load; call frequency"
              " increases with load\n(paper Fig. 14) — exactly the"
              " self-stabilizing property §5.3.2 argues for.\n");
  return 0;
}
