// Fig. 15: sweeping the coarse-filter offset theta (as theta/Avg) against
// average P99 latency and throughput. Too small: few workers pass the
// filter and new connections concentrate on them. Too large: heavily
// loaded workers keep being selected. Paper: theta/Avg = 0.5 is the sweet
// spot.
#include <cstdio>

#include "bench/bench_common.h"

using namespace hermes;
using namespace hermes::bench;

namespace {

struct Point {
  double p99_ms = 0;
  double thr_krps = 0;
};

Point run_theta(double theta, int case_id, double load, uint64_t seed) {
  sim::LbDevice::Config cfg;
  cfg.mode = netsim::DispatchMode::HermesMode;
  cfg.num_workers = 8;
  cfg.num_ports = 64;
  cfg.seed = seed;
  cfg.hermes.theta_ratio = theta;
  sim::LbDevice lb(cfg);

  const SimTime warmup = SimTime::seconds(2);
  const SimTime duration = SimTime::seconds(5);
  const SimTime end = warmup + duration;
  // Disable the rare poison wedges: their seed-luck noise would swamp the
  // theta effect this sweep isolates.
  sim::TrafficPattern pattern =
      sim::case_pattern(case_id, cfg.num_workers, load);
  pattern.poison_fraction = 0;
  lb.start_pattern(pattern, 0, cfg.num_ports, end);
  lb.eq().run_until(warmup);
  lb.take_window_latency();
  const uint64_t before = lb.totals().requests_completed;
  lb.eq().run_until(end);
  const uint64_t done = lb.totals().requests_completed - before;
  lb.eq().run_until(end + SimTime::seconds(2));
  auto window = lb.take_window_latency();

  Point pt;
  pt.p99_ms = static_cast<double>(window.p99()) / 1e6;
  pt.thr_krps = static_cast<double>(done) / duration.s_f() / 1000.0;
  return pt;
}

}  // namespace

int main(int argc, char** argv) {
  BenchJson json("fig15_theta_sweep", &argc, argv);
  header("Fig. 15: theta/Avg sweep -> avg P99 latency & throughput");
  std::printf("(average of cases 1 and 4 at moderate load, 3 seeds each)\n");
  std::printf("%-10s %12s %14s\n", "theta/Avg", "P99 (ms)", "Thr (kRPS)");

  double best_theta = -1, best_p99 = 1e18;
  for (double theta : {0.0, 0.125, 0.25, 0.5, 0.75, 1.0, 1.5, 2.0}) {
    double p99 = 0, thr = 0;
    int n = 0;
    for (uint64_t seed : {11ull, 22ull, 33ull, 44ull}) {
      for (const auto& [c, load] : {std::pair{1, 2.4}, std::pair{4, 1.8}}) {
        const Point pt = run_theta(theta, c, load, seed);
        p99 += pt.p99_ms;
        thr += pt.thr_krps;
        ++n;
      }
    }
    p99 /= n;
    thr /= n;
    std::printf("%-10.3f %12.2f %14.1f\n", theta, p99, thr * 2);
    char key[32];
    std::snprintf(key, sizeof(key), "theta%.3f.p99_ms", theta);
    json.metric(key, p99);
    if (p99 < best_p99) {
      best_p99 = p99;
      best_theta = theta;
    }
  }
  std::printf("\nbest theta/Avg by avg P99: %.3f (paper: 0.5)\n", best_theta);
  json.metric("best_theta", best_theta);
  std::printf("Shape: a U-curve — tiny theta concentrates new connections"
              " on too few\nworkers; huge theta admits overloaded workers;"
              " the optimum sits mid-range.\n");
  return 0;
}
