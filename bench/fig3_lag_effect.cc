// Fig. 3: the "lag effect" of connection imbalance — a large population of
// long-lived connections is established (evenly vs unevenly depending on
// the epoll mode), then a synchronized traffic surge hits all of them at
// once. Under epoll exclusive the connections are concentrated on a few
// workers, so the surge overloads those cores and P999 latency explodes
// (paper: 200-300 us normal -> 30 ms P999, "causing customer complaints").
#include <cstdio>

#include "bench/bench_common.h"

using namespace hermes;
using namespace hermes::bench;

namespace {

void run_mode(netsim::DispatchMode mode, BenchJson& json) {
  sim::LbDevice::Config cfg;
  cfg.mode = mode;
  cfg.num_workers = 8;
  cfg.num_ports = 32;
  cfg.seed = 7;
  sim::LbDevice lb(cfg);

  // Phase 1 (0-4 s): establish ~4000 long-lived, mostly idle connections
  // (quantitative-trading style).
  sim::TrafficPattern quiet;
  quiet.name = "long-lived-idle";
  quiet.cps = 1000;
  quiet.requests_per_conn = sim::DistSpec::constant(1000);  // stays open
  quiet.request_cost_us = sim::DistSpec::constant(80);
  quiet.request_gap_us = sim::DistSpec::exponential(2'000'000);  // ~idle
  lb.start_pattern(quiet, 0, cfg.num_ports, SimTime::seconds(4));

  // Phase 2 (at 6 s): every connection fires a burst of 3 requests at once
  // ("certain trading conditions are met").
  lb.eq().schedule_at(SimTime::seconds(6), [&lb] {
    lb.burst_all_connections(sim::DistSpec::lognormal(250, 0.4), 3);
  });

  // Report per-second P999 / max latency around the surge.
  std::printf("%-18s |", mode_name(mode));
  double surge_p999_ms = 0;
  for (int sec = 1; sec <= 9; ++sec) {
    lb.eq().run_until(SimTime::seconds(sec));
    auto window = lb.take_window_latency();
    if (window.count() == 0) {
      std::printf("     idle |");
    } else {
      const double p999_ms = static_cast<double>(window.p999()) / 1e6;
      if (sec >= 6) surge_p999_ms = std::max(surge_p999_ms, p999_ms);
      std::printf(" %7.2fms |", p999_ms);
    }
  }
  json.metric(std::string(mode_name(mode)) + ".surge_p999_ms",
              surge_p999_ms);
  std::printf("  conns max/min=");
  int64_t mx = 0, mn = 1 << 30;
  for (WorkerId w = 0; w < lb.num_workers(); ++w) {
    mx = std::max(mx, lb.worker(w).live_connections());
    mn = std::min(mn, lb.worker(w).live_connections());
  }
  std::printf("%ld/%ld\n", static_cast<long>(mx), static_cast<long>(mn));
}

}  // namespace

int main(int argc, char** argv) {
  BenchJson json("fig3_lag_effect", &argc, argv);
  header("Fig. 3: lag effect — long-lived connections + synchronized surge");
  std::printf("Per-second P999 latency; the surge hits every connection at"
              " t=6s.\n%-18s |", "mode");
  for (int s = 1; s <= 9; ++s) std::printf("    t=%ds  |", s);
  std::printf("\n");
  run_mode(netsim::DispatchMode::EpollExclusive, json);
  run_mode(netsim::DispatchMode::Reuseport, json);
  run_mode(netsim::DispatchMode::HermesMode, json);
  std::printf("\nShape: exclusive piles the idle connections onto few"
              " workers, so the t=6s\nsurge spikes its P999 by orders of"
              " magnitude; reuseport/Hermes spread the\nconnections and"
              " absorb the same surge with a far smaller spike.\n");
  return 0;
}
