// Fig. 4: CDF of the number of events returned per epoll_wait() call for
// each worker on one LB under epoll exclusive — the paper's evidence that
// some workers (PIDs 5113/5115 there) are systematically busier.
#include <cstdio>

#include "bench/bench_common.h"

using namespace hermes;
using namespace hermes::bench;

int main(int argc, char** argv) {
  BenchJson json("fig4_event_cdf", &argc, argv);
  header("Fig. 4: #events returned from epoll_wait() per worker (exclusive)");

  sim::LbDevice::Config cfg;
  cfg.mode = netsim::DispatchMode::EpollExclusive;
  cfg.num_workers = 4;
  cfg.num_ports = 16;
  cfg.seed = 5;
  sim::LbDevice lb(cfg);

  const auto mixes = sim::paper_region_mixes();
  const auto tm = sim::TenantModel::from_mix(mixes[1], 16, 1.3);
  lb.start_tenant_mix(tm, 70, cfg.num_workers, 1.0, SimTime::seconds(10));
  lb.eq().run_until(SimTime::seconds(10));

  std::printf("%-9s %8s %8s %8s %8s %8s %10s\n", "worker", "P50", "P90",
              "P99", "max", "mean", "#waits");
  for (WorkerId w = 0; w < lb.num_workers(); ++w) {
    auto& h = lb.worker(w).events_per_wait();
    std::printf("W%-8u %8ld %8ld %8ld %8ld %8.2f %10lu\n", w,
                static_cast<long>(h.p50()), static_cast<long>(h.p90()),
                static_cast<long>(h.p99()), static_cast<long>(h.max_value()),
                h.mean(), static_cast<unsigned long>(h.count()));
    const std::string prefix = "w" + std::to_string(w);
    json.metric(prefix + ".events_p99", static_cast<double>(h.p99()));
    json.metric(prefix + ".events_mean", h.mean());
    json.metric(prefix + ".waits", static_cast<double>(h.count()));
  }
  std::printf("\nShape: the LIFO-favoured worker (highest id) collects far"
              " more events per\nwait than its siblings — the skew of paper"
              " Fig. 4.\n");
  return 0;
}
