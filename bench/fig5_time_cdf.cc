// Fig. 5: (a) CDF of event processing time and (b) CDF of epoll_wait()
// blocking time per worker over a window — idle workers block the full
// 5 ms timeout, busy ones return quickly, and the computation-heavy worker
// has longer per-event processing times.
#include <cstdio>

#include "bench/bench_common.h"

using namespace hermes;
using namespace hermes::bench;

int main(int argc, char** argv) {
  BenchJson json("fig5_time_cdf", &argc, argv);
  header("Fig. 5: event processing time & epoll_wait blocking time CDFs");

  sim::LbDevice::Config cfg;
  cfg.mode = netsim::DispatchMode::EpollExclusive;
  cfg.num_workers = 4;
  cfg.num_ports = 16;
  cfg.seed = 11;
  sim::LbDevice lb(cfg);

  const auto mixes = sim::paper_region_mixes();
  const auto tm = sim::TenantModel::from_mix(mixes[1], 16, 1.3);
  lb.start_tenant_mix(tm, 70, cfg.num_workers, 1.0, SimTime::seconds(10));
  lb.eq().run_until(SimTime::seconds(10));

  subheader("(a) event processing time per event (us)");
  std::printf("%-9s %9s %9s %9s %9s\n", "worker", "P50", "P90", "P99", "max");
  for (WorkerId w = 0; w < lb.num_workers(); ++w) {
    auto& h = lb.worker(w).event_processing_time();
    std::printf("W%-8u %9.0f %9.0f %9.0f %9.0f\n", w,
                static_cast<double>(h.p50()) / 1e3,
                static_cast<double>(h.p90()) / 1e3,
                static_cast<double>(h.p99()) / 1e3,
                static_cast<double>(h.max_value()) / 1e3);
    json.metric("w" + std::to_string(w) + ".proc_p99_us",
                static_cast<double>(h.p99()) / 1e3);
  }

  subheader("(b) epoll_wait blocking time (ms; timeout = 5 ms)");
  std::printf("%-9s %9s %9s %9s %12s\n", "worker", "P50", "P90", "P99",
              "%full-5ms");
  for (WorkerId w = 0; w < lb.num_workers(); ++w) {
    auto& h = lb.worker(w).blocking_time();
    std::printf("W%-8u %9.2f %9.2f %9.2f", w,
                static_cast<double>(h.p50()) / 1e6,
                static_cast<double>(h.p90()) / 1e6,
                static_cast<double>(h.p99()) / 1e6);
    // Waits that hit the full 5 ms timeout == wakeups with no events.
    const double wasted_pct =
        100.0 * static_cast<double>(lb.worker(w).wasted_wakeups()) /
        static_cast<double>(
            std::max<uint64_t>(1, lb.worker(w).loop_iterations()));
    std::printf(" %11.1f%%\n", wasted_pct);
    const std::string prefix = "w" + std::to_string(w);
    json.metric(prefix + ".block_p50_ms",
                static_cast<double>(h.p50()) / 1e6);
    json.metric(prefix + ".wasted_pct", wasted_pct);
  }
  std::printf("\nShape: busy (LIFO-head) workers block ~0 ms and process"
              " heavier events;\nidle workers spend most waits blocking the"
              " full 5 ms (paper Fig. 5b).\n");
  return 0;
}
