// Fig. 7: packets are evenly distributed across NIC queues by RSS, yet CPU
// core utilization is highly unbalanced — the paper's argument that
// packet-granularity balancing (L3/L4 style) cannot balance L7 load,
// because per-connection processing cost varies enormously.
//
// We model RSS exactly as hardware does: queue = hash(4-tuple) % nqueues,
// counting packets (requests' wire bytes / MTU). CPU utilization comes from
// the same simulation's per-worker busy time under epoll exclusive.
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "netsim/four_tuple.h"

using namespace hermes;
using namespace hermes::bench;

int main(int argc, char** argv) {
  BenchJson json("fig7_nic_vs_cpu", &argc, argv);
  header("Fig. 7: NIC-queue packet balance vs CPU core imbalance");

  constexpr uint32_t kQueues = 8;
  sim::LbDevice::Config cfg;
  cfg.mode = netsim::DispatchMode::EpollExclusive;
  cfg.num_workers = 8;
  cfg.num_ports = 32;
  cfg.seed = 3;
  sim::LbDevice lb(cfg);

  // Count RSS packets: hash each request's connection tuple, bytes -> pkts.
  std::vector<uint64_t> queue_pkts(kQueues, 0);
  // Piggyback on the probe-done hook? No: derive from request stream by
  // sampling the same workload distributions through a parallel counter.
  // Simplest faithful approach: count packets at connection granularity
  // when conns open, using the same rng-driven byte volumes.
  // We approximate per-request packets as bytes/1448 + 1.

  const auto mixes = sim::paper_region_mixes();
  const auto tm = sim::TenantModel::from_mix(mixes[1], 32, 1.3);
  lb.start_tenant_mix(tm, 150, cfg.num_workers, 1.0, SimTime::seconds(8));

  // Sample RSS spread with the identical tuple-generation process the LB
  // uses (same hash function the kernel applies).
  sim::Rng rss_rng(cfg.seed);
  for (int i = 0; i < 200000; ++i) {
    netsim::FourTuple t;
    t.saddr = static_cast<uint32_t>(rss_rng.next_u64());
    t.daddr = 0x0a000001;
    t.sport = static_cast<uint16_t>(1024 + rss_rng.next_below(60000));
    t.dport = static_cast<uint16_t>(1024 + rss_rng.next_below(32));
    queue_pkts[netsim::reciprocal_scale(netsim::skb_hash(t), kQueues)] += 1;
  }

  lb.eq().run_until(SimTime::seconds(2));
  lb.sample_now();
  lb.eq().run_until(SimTime::seconds(8));
  const auto s = lb.sample_now();

  subheader("NIC queues (RSS over 200k flows)");
  uint64_t total = 0;
  for (auto v : queue_pkts) total += v;
  std::printf("%-8s", "queue:");
  for (uint32_t q = 0; q < kQueues; ++q) std::printf(" %7u", q);
  std::printf("\n%-8s", "share:");
  for (uint32_t q = 0; q < kQueues; ++q) {
    std::printf(" %6.2f%%",
                100.0 * static_cast<double>(queue_pkts[q]) /
                    static_cast<double>(total));
  }

  subheader("CPU cores (same traffic, epoll exclusive)");
  std::printf("%-8s", "core:");
  for (WorkerId w = 0; w < lb.num_workers(); ++w) std::printf(" %7u", w);
  std::printf("\n%-8s", "util:");
  const SimTime window = SimTime::seconds(6);
  for (WorkerId w = 0; w < lb.num_workers(); ++w) {
    // busy over the measured window (approximate: total/duration).
    const double u = static_cast<double>(lb.worker(w).busy_time().ns()) /
                     static_cast<double>(SimTime::seconds(8).ns());
    std::printf(" %6.1f%%", 100.0 * u);
  }
  (void)window;
  std::printf("\n\nShape: every NIC queue carries ~%0.1f%% of packets"
              " (balanced), while CPU\ncore utilization spreads %0.1f%%..%0.1f%%"
              " (max-min %0.1f points) under exclusive.\n",
              100.0 / kQueues, 100 * s.cpu_min, 100 * s.cpu_max,
              100 * (s.cpu_max - s.cpu_min));
  uint64_t q_max = 0, q_min = queue_pkts[0];
  for (auto v : queue_pkts) {
    q_max = std::max(q_max, v);
    q_min = std::min(q_min, v);
  }
  json.metric("queue_share_spread_pct",
              100.0 * static_cast<double>(q_max - q_min) /
                  static_cast<double>(total));
  json.metric("cpu_spread_pp", 100 * (s.cpu_max - s.cpu_min));
  json.metric("cpu_sd_pp", 100 * s.cpu_sd);
  return 0;
}
