// Fig. A5: CDF of the number of forwarding rules per port in a region —
// the paper's evidence that tenant rule sets vary wildly (so there is no
// code locality to exploit). We generate per-port rule tables with a
// heavy-tailed rule count, then drive real RouteTable matching to show how
// routing cost scales with table size.
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "http/cost_model.h"
#include "http/router.h"

using namespace hermes;
using namespace hermes::bench;

int main(int argc, char** argv) {
  BenchJson json("figA5_rules", &argc, argv);
  header("Fig. A5: forwarding rules per port (CDF) + routing cost scaling");

  sim::Rng rng(31);
  constexpr int kPorts = 2000;
  std::vector<double> counts;
  counts.reserve(kPorts);
  for (int i = 0; i < kPorts; ++i) {
    // Most tenants have a handful of rules; a tail has hundreds.
    counts.push_back(rng.bounded_pareto(0.9, 1.0, 2000.0));
  }
  sim::SampleSet ss;
  for (double c : counts) ss.add(c);
  std::printf("rules/port CDF:  P10=%.0f  P50=%.0f  P90=%.0f  P99=%.0f"
              "  max=%.0f\n",
              ss.quantile(0.10), ss.quantile(0.50), ss.quantile(0.90),
              ss.quantile(0.99), ss.quantile(1.0));
  json.metric("rules_p50", ss.quantile(0.50));
  json.metric("rules_p99", ss.quantile(0.99));

  subheader("routing cost vs rule count (real RouteTable::match)");
  http::CostModel cost_model;
  std::printf("%-12s %16s %14s\n", "#rules", "rules examined",
              "est. cost (us)");
  for (size_t n : {1, 10, 50, 200, 1000}) {
    http::RouteTable rt;
    for (size_t i = 0; i < n; ++i) {
      rt.add_rule({.host = "t" + std::to_string(i) + ".example.com",
                   .path_prefix = "/",
                   .backend_pool = static_cast<uint32_t>(i)});
    }
    http::Request req;
    req.method = http::Method::Get;
    req.path = "/index";
    req.headers.add("Host", "t" + std::to_string(n - 1) + ".example.com");
    const auto m = rt.match(req);
    http::RequestShape shape;
    shape.bytes = 2048;
    shape.rules_examined = m.rules_examined;
    std::printf("%-12zu %16zu %14.1f\n", n, m.rules_examined,
                cost_model.cost(shape).us_f());
    json.metric("rules" + std::to_string(n) + ".cost_us",
                cost_model.cost(shape).us_f());
  }
  std::printf("\nShape: rule counts are heavy-tailed across ports, and"
              " per-request routing\ncost scales with the examined rules —"
              " different rules, different code\npaths, no cache locality"
              " to preserve (paper Appendix C).\n");
  return 0;
}
