// Million-connection fleet-scale bench: N Hermes LB devices behind the
// Maglev front tier (sim/fleet.h), ramped to a target concurrent
// connection count, then churned (LB add + remove) while auditing
// per-connection consistency.
//
// Reports:
//   - simulated-connections/sec of wall clock (ramp throughput of the
//     whole stack: slab admission, wheel scheduling, worker loops)
//   - Table-2-style imbalance at fleet scale (per-device live-connection
//     spread under tuple-hash routing)
//   - PCC violation rates for LB add and LB remove, Maglev vs the mod-N
//     (naive ECMP) baseline
//
// Deterministic metrics (connection counts, PCC violations, imbalance
// shape) feed the bench gate; wall-clock metrics are reported but ungated.
// Scale knobs: --conns N / FLEET_SCALE_CONNS env (the CI smoke runs 100k;
// the nightly leg and the default run 1M+).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "bench/bench_common.h"
#include "sim/fleet.h"

namespace hermes::bench {
namespace {

struct Args {
  uint64_t conns = 1'000'000;
  uint32_t lbs = 8;
  uint32_t workers = 8;
};

Args parse_args(int argc, char** argv) {
  Args a;
  if (const char* env = std::getenv("FLEET_SCALE_CONNS")) {
    a.conns = std::strtoull(env, nullptr, 10);
  }
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--conns") == 0) {
      a.conns = std::strtoull(argv[i + 1], nullptr, 10);
    } else if (std::strcmp(argv[i], "--lbs") == 0) {
      a.lbs = static_cast<uint32_t>(std::strtoul(argv[i + 1], nullptr, 10));
    } else if (std::strcmp(argv[i], "--workers") == 0) {
      a.workers =
          static_cast<uint32_t>(std::strtoul(argv[i + 1], nullptr, 10));
    }
  }
  return a;
}

sim::LbDevice::ConnPlan held_plan() {
  // Long-lived connections: a cheap first request, then a 30 s think gap,
  // so the ramp measures connection-state machinery, not request service.
  // Constant distributions keep every metric deterministic.
  sim::LbDevice::ConnPlan plan;
  plan.remaining = 1000;
  plan.cost_us = sim::DistSpec::constant(1);
  plan.bytes = sim::DistSpec::constant(200);
  plan.gap_us = sim::DistSpec::constant(30'000'000);
  return plan;
}

int run(int argc, char** argv) {
  BenchJson json("fleet_scale", &argc, argv);
  const Args args = parse_args(argc, argv);

  header("Fleet scale: " + std::to_string(args.conns) + " connections over " +
         std::to_string(args.lbs) + " Hermes LBs (Maglev front tier)");

  sim::Fleet::Config fc;
  fc.num_lbs = args.lbs;
  fc.device.mode = netsim::DispatchMode::HermesMode;
  fc.device.num_workers = args.workers;
  fc.device.num_ports = 8;
  fc.device.backlog = 65536;
  fc.device.observability = false;  // pure scale run; obs cost is Table 5
  fc.seed = 42;
  sim::Fleet fleet(fc);

  const auto wall_start = std::chrono::steady_clock::now();

  // ---- ramp: SYN waves across tenants until the target is reached ------
  const uint64_t kWave = 65536;
  uint64_t opened = 0;
  TenantId tenant = 0;
  while (opened < args.conns) {
    const uint64_t want =
        std::min<uint64_t>(kWave, args.conns - opened);
    opened += fleet.open_burst(tenant, held_plan(), want);
    tenant = (tenant + 1) % fc.device.num_ports;
    // Let workers drain accept queues before the next wave.
    fleet.run_until(fleet.now() + SimTime::millis(5));
  }
  // Hold: every queued connection is accepted and has served its first
  // request; the fleet now *sustains* the target concurrency.
  fleet.run_until(fleet.now() + SimTime::millis(200));

  const auto ramp_end = std::chrono::steady_clock::now();
  const double ramp_wall_s =
      std::chrono::duration<double>(ramp_end - wall_start).count();

  const uint64_t live = fleet.total_live();
  const double conns_per_wall =
      ramp_wall_s > 0 ? static_cast<double>(opened) / ramp_wall_s : 0;

  subheader("ramp");
  std::printf("established %llu conns (%llu dropped), live %llu\n",
              static_cast<unsigned long long>(opened),
              static_cast<unsigned long long>(fleet.total_dropped()),
              static_cast<unsigned long long>(live));
  std::printf("wall %.2f s -> %.0f simulated conns/sec of wall clock\n",
              ramp_wall_s, conns_per_wall);

  // ---- fleet-scale imbalance (Table-2 style, across devices) -----------
  const auto im = fleet.imbalance();
  subheader("imbalance across devices");
  std::printf("conns/device avg %.0f sd %.1f min %llu max %llu "
              "(max/avg %.4f)\n",
              im.conn_avg, im.conn_sd,
              static_cast<unsigned long long>(im.conn_min),
              static_cast<unsigned long long>(im.conn_max), im.max_over_avg);

  // ---- churn: add one LB, audit PCC ------------------------------------
  fleet.add_lb();
  const auto add_audit = fleet.audit_pcc();
  const double add_maglev_frac =
      static_cast<double>(add_audit.maglev_violations) /
      static_cast<double>(add_audit.checked);
  const double add_modn_frac =
      static_cast<double>(add_audit.modn_violations) /
      static_cast<double>(add_audit.checked);
  subheader("LB add (+1)");
  std::printf("PCC violations: maglev %llu/%llu (%.4f)  "
              "mod-N %llu/%llu (%.4f)\n",
              static_cast<unsigned long long>(add_audit.maglev_violations),
              static_cast<unsigned long long>(add_audit.checked),
              add_maglev_frac,
              static_cast<unsigned long long>(add_audit.modn_violations),
              static_cast<unsigned long long>(add_audit.checked),
              add_modn_frac);

  // ---- churn: remove one LB, audit PCC ---------------------------------
  const uint64_t victim_live = fleet.device(1).live_connections();
  fleet.remove_lb(1);
  const auto rm_audit = fleet.audit_pcc();
  const double rm_maglev_frac =
      static_cast<double>(rm_audit.maglev_violations) /
      static_cast<double>(rm_audit.checked);
  subheader("LB remove (-1)");
  std::printf("broken (stranded on removed LB): %llu\n",
              static_cast<unsigned long long>(victim_live));
  std::printf("survivor PCC violations: maglev %llu/%llu (%.4f)  "
              "mod-N %llu/%llu\n",
              static_cast<unsigned long long>(rm_audit.maglev_violations),
              static_cast<unsigned long long>(rm_audit.checked),
              rm_maglev_frac,
              static_cast<unsigned long long>(rm_audit.modn_violations),
              static_cast<unsigned long long>(rm_audit.checked));

  const auto wall_end = std::chrono::steady_clock::now();
  const double total_wall_s =
      std::chrono::duration<double>(wall_end - wall_start).count();
  std::printf("\ntotal wall %.2f s, %llu requests completed\n", total_wall_s,
              static_cast<unsigned long long>(fleet.total_completed()));

  // Deterministic metrics (gated): counts and count-derived shapes.
  json.metric("fleet_established", static_cast<double>(opened));
  json.metric("fleet_live_conns", static_cast<double>(live));
  json.metric("fleet_dropped", static_cast<double>(fleet.total_dropped()));
  json.metric("imbalance_max_over_avg", im.max_over_avg);
  json.metric("imbalance_conn_sd", im.conn_sd);
  json.metric("pcc_add_checked", static_cast<double>(add_audit.checked));
  json.metric("pcc_add_maglev_violations",
              static_cast<double>(add_audit.maglev_violations));
  json.metric("pcc_add_modn_violations",
              static_cast<double>(add_audit.modn_violations));
  json.metric("pcc_remove_broken", static_cast<double>(victim_live));
  json.metric("pcc_remove_maglev_violations",
              static_cast<double>(rm_audit.maglev_violations));
  // Wall-clock metrics (ungated by suffix: machine-speed dependent).
  json.metric("ramp_wall_s", ramp_wall_s);
  json.metric("total_wall_s", total_wall_s);
  json.metric("conns_per_wall_sec", conns_per_wall);
  return 0;
}

}  // namespace
}  // namespace hermes::bench

int main(int argc, char** argv) { return hermes::bench::run(argc, argv); }
