// L7 proxy data-plane microbench: ns/request-forwarded and bytes-memcpy'd
// per request across {short-lived, keep-alive, pipelined} connections ×
// {zero-copy, copy-oracle} forwarding, plus a sim-leg rerun of the Fig. 13
// load-spread measurement under a keep-alive mix with the byte-level data
// plane enabled.
//
// Part A (micro) drives http::ConnState directly. Client wire bytes and
// the backend response chain are pre-generated OUTSIDE the timed region
// (they model the NIC and the backend, not the proxy); the timed loop is
// parse + forward + egress only. An untimed verification pass first runs
// both modes and chains an FNV-1a hash over every forwarded byte in both
// directions: the streams must be bit-identical between zero-copy and the
// copy oracle, and the keep-alive zero-copy path must beat the oracle by
// >= 2x wall-clock — both enforced with a hard exit(1), not just gated.
//
// Wall-clock metrics carry the _cost_ns / .speedup suffixes (reported,
// never gated — bench/bench_gate_check.cc). Gated deterministic metrics:
// bytes memcpy'd per request (exactly 0 in zero-copy mode), stream-match
// flags, heap allocations per request (counted by the operator-new
// override below), and the sim leg's forwarding/pool/rate-limit counts.
#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <new>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "http/conn_state.h"
#include "sim/data_plane.h"
#include "sim/lb.h"
#include "util/check.h"

// ---- allocation micro-counter (satellite: allocations/request) -----------
// Single-threaded bench: a plain counter is fine.
static uint64_t g_allocs = 0;

void* operator new(std::size_t n) {
  ++g_allocs;
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace hermes::bench {
namespace {

double cpu_seconds() {
  timespec ts{};
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
}

enum class Scenario { Short, KeepAlive, Pipelined };

const char* name_of(Scenario s) {
  switch (s) {
    case Scenario::Short: return "short";
    case Scenario::KeepAlive: return "keepalive";
    case Scenario::Pipelined: return "pipelined";
  }
  return "?";
}

struct ScenarioSpec {
  Scenario kind;
  int conns;
  int reqs_per_conn;
  uint64_t req_bytes;  // sim-plan request size (headers + body)
};

// Pre-generated client-side input for one connection: retained segments,
// grouped by delivery unit (per request for keep-alive; one batch for
// short/pipelined connections).
struct ConnInput {
  std::vector<std::vector<netsim::IoSlice>> deliveries;
  int expected_requests = 0;
};

std::vector<netsim::IoSlice> slice_up(const std::string& flat) {
  std::vector<netsim::IoSlice> out;
  size_t off = 0;
  while (off < flat.size()) {
    const uint32_t n = static_cast<uint32_t>(
        std::min<size_t>(netsim::IoSegment::kDefaultCapacity,
                         flat.size() - off));
    netsim::SegRef seg = netsim::IoSegment::alloc(n);
    seg->append(flat.data() + off, n);
    out.push_back(netsim::IoSlice{std::move(seg), 0, n});
    off += n;
  }
  return out;
}

// Builds every connection's wire using the same synthesizer the sim data
// plane uses, so the micro and sim legs measure the same byte shapes.
std::vector<ConnInput> build_inputs(const ScenarioSpec& spec) {
  std::vector<ConnInput> inputs;
  inputs.reserve(spec.conns);
  std::string wire;
  for (int c = 0; c < spec.conns; ++c) {
    ConnInput in;
    in.expected_requests = spec.reqs_per_conn;
    if (spec.kind == Scenario::KeepAlive) {
      for (int r = 0; r < spec.reqs_per_conn; ++r) {
        sim::Request req;
        req.id = static_cast<uint64_t>(c) * 1000 + r;
        req.tenant = static_cast<TenantId>(c % 8);
        req.bytes = spec.req_bytes;
        sim::DataPlane::synth_request_wire(req, /*last_on_conn=*/false,
                                           &wire);
        in.deliveries.push_back(slice_up(wire));
      }
    } else {
      std::string all;
      for (int r = 0; r < spec.reqs_per_conn; ++r) {
        sim::Request req;
        req.id = static_cast<uint64_t>(c) * 1000 + r;
        req.tenant = static_cast<TenantId>(c % 8);
        req.bytes = spec.req_bytes;
        const bool last = spec.kind == Scenario::Short;
        sim::DataPlane::synth_request_wire(req, last, &wire);
        all += wire;
      }
      in.deliveries.push_back(slice_up(all));
    }
    inputs.push_back(std::move(in));
  }
  return inputs;
}

// The pre-encoded backend response (static-content model): encoding is
// the backend's work, identical in both modes, so it happens once here.
netsim::IoChain build_response(uint64_t body_bytes) {
  sim::Request req;
  req.id = 7;
  req.bytes = body_bytes;
  std::string body;
  sim::DataPlane::synth_response_body(req, &body);
  http::Response resp;
  resp.set_status(200);
  resp.add_header("Server", "hermes-lb");
  resp.set_body(std::move(body));
  return http::ConnState::encode(resp);
}

struct ModeRun {
  uint64_t requests = 0;
  uint64_t fwd_copied = 0;      // proxy-path memcpy bytes
  uint64_t fwd_referenced = 0;  // proxy-path referenced bytes
  uint64_t wire_hash = netsim::IoChain::kFnvOffset;
  uint64_t egress_hash = netsim::IoChain::kFnvOffset;
};

// One full pass over the scenario in one mode. `verify` chains hashes
// over every forwarded byte (untimed use only).
ModeRun run_pass(const std::vector<ConnInput>& inputs,
                 const netsim::IoChain& response, bool zero_copy,
                 bool verify) {
  ModeRun out;
  http::ConnState::Config cfg;
  cfg.zero_copy = zero_copy;
  for (const ConnInput& in : inputs) {
    http::ConnState cs(cfg);
    int popped = 0;
    for (const auto& delivery : in.deliveries) {
      for (const netsim::IoSlice& s : delivery) {
        cs.on_client_data(s);  // retains the pre-built segment
      }
      while (auto r = cs.pop_ready()) {
        if (verify) {
          out.wire_hash = r->wire.fnv1a(out.wire_hash);
        }
        const netsim::IoChain ee = cs.egress(response);
        if (verify) {
          out.egress_hash = ee.fnv1a(out.egress_hash);
        }
        ++popped;
      }
    }
    HERMES_CHECK_MSG(!cs.failed(), "proxy_path: parse error in bench wire");
    HERMES_CHECK_MSG(popped == in.expected_requests,
                     "proxy_path: request count mismatch");
    out.requests += static_cast<uint64_t>(popped);
    out.fwd_copied += cs.stats().forward_bytes_copied;
    out.fwd_referenced += cs.stats().forward_bytes_referenced;
  }
  return out;
}

struct CellResultPx {
  double ns_per_req = 0;
  double allocs_per_req = 0;
  ModeRun verify;
};

CellResultPx run_cell(const std::vector<ConnInput>& inputs,
                      const netsim::IoChain& response, bool zero_copy) {
  CellResultPx res;
  res.verify = run_pass(inputs, response, zero_copy, /*verify=*/true);

  run_pass(inputs, response, zero_copy, false);  // warmup
  double best = 1e300;
  uint64_t best_allocs = UINT64_MAX;
  for (int rep = 0; rep < 5; ++rep) {
    const uint64_t a0 = g_allocs;
    const double t0 = cpu_seconds();
    const ModeRun r = run_pass(inputs, response, zero_copy, false);
    const double dt = cpu_seconds() - t0;
    const uint64_t da = g_allocs - a0;
    best = std::min(best, dt);
    best_allocs = std::min(best_allocs, da);
    HERMES_CHECK(r.requests == res.verify.requests);
  }
  const double reqs = static_cast<double>(res.verify.requests);
  res.ns_per_req = best / reqs * 1e9;
  res.allocs_per_req = static_cast<double>(best_allocs) / reqs;
  return res;
}

// ---- Part B: the data plane inside the LB simulation ---------------------

sim::LbDevice::Config sim_config(netsim::DispatchMode mode, bool zero_copy) {
  sim::LbDevice::Config cfg;
  cfg.mode = mode;
  cfg.num_workers = 8;
  cfg.num_ports = 16;
  cfg.seed = 17;
  cfg.data_plane.enabled = true;
  cfg.data_plane.zero_copy = zero_copy;
  return cfg;
}

void run_keepalive_mix(sim::LbDevice& lb) {
  sim::LbDevice::ConnPlan plan;
  plan.remaining = 16;  // keep-alive: 16 requests per connection
  plan.cost_us = sim::DistSpec::constant(100);
  plan.gap_us = sim::DistSpec::constant(800);
  plan.bytes = sim::DistSpec::constant(1200);
  for (int i = 0; i < 192; ++i) {
    lb.eq().schedule_at(SimTime::micros(250 * i), [&lb, plan, i] {
      sim::LbDevice::ConnPlan p = plan;
      p.tenant = static_cast<TenantId>(i % 8);
      lb.open_connection(p.tenant, p);
    });
  }
  lb.eq().run_until(SimTime::seconds(2));
}

// Fig. 13-style per-worker CPU spread, rerun with the byte-level data
// plane active under the production tenant mix.
double keepalive_mix_cpu_sd(netsim::DispatchMode mode) {
  sim::LbDevice lb(sim_config(mode, /*zero_copy=*/true));
  const auto mixes = sim::paper_region_mixes();
  const auto tm = sim::TenantModel::from_mix(mixes[0], 16, 1.3);
  const SimTime end = SimTime::seconds(8);
  lb.start_tenant_mix(tm, 200, 8, 1.0, end);
  lb.eq().run_until(SimTime::seconds(2));  // warmup
  lb.sample_now();
  lb.start_sampling(SimTime::millis(500), end);
  lb.eq().run_until(end);

  double sd = 0, n = 0;
  for (const auto& s : lb.samples()) {
    if (s.at <= SimTime::seconds(2)) continue;
    sd += s.cpu_sd * 100;
    n += 1;
  }
  return n > 0 ? sd / n : 0;
}

}  // namespace
}  // namespace hermes::bench

int main(int argc, char** argv) {
  using namespace hermes;
  using namespace hermes::bench;

  BenchJson json("proxy_path", &argc, argv);
  header("proxy_path: zero-copy L7 forwarding vs the copy oracle");

  bool ok = true;

  // ---- Part A: ConnState micro ------------------------------------------
  // 16KiB request/response payloads: content-heavy L7 traffic, where
  // splice-style forwarding pays. The per-request win scales with payload
  // size; the short-lived cell shows the floor where per-connection setup
  // dominates.
  const ScenarioSpec specs[] = {
      {Scenario::Short, 1024, 1, 16384},
      {Scenario::KeepAlive, 128, 32, 16384},
      {Scenario::Pipelined, 128, 16, 16384},
  };
  const netsim::IoChain response = build_response(16384);

  std::printf("%-10s %14s %14s %9s %16s %14s\n", "scenario", "zc ns/req",
              "oracle ns/req", "speedup", "oracle B/req cpy", "zc allocs/req");
  for (const ScenarioSpec& spec : specs) {
    const auto inputs = build_inputs(spec);
    const CellResultPx zc = run_cell(inputs, response, /*zero_copy=*/true);
    const CellResultPx oracle =
        run_cell(inputs, response, /*zero_copy=*/false);

    const bool streams_match =
        zc.verify.wire_hash == oracle.verify.wire_hash &&
        zc.verify.egress_hash == oracle.verify.egress_hash;
    if (!streams_match) {
      std::fprintf(stderr,
                   "proxy_path: FATAL: %s stream hashes differ between "
                   "zero-copy and the copy oracle\n",
                   name_of(spec.kind));
      ok = false;
    }
    if (zc.verify.fwd_copied != 0) {
      std::fprintf(stderr,
                   "proxy_path: FATAL: zero-copy mode memcpy'd %" PRIu64
                   " bytes on the %s proxy path\n",
                   zc.verify.fwd_copied, name_of(spec.kind));
      ok = false;
    }

    const double reqs = static_cast<double>(zc.verify.requests);
    const double speedup = oracle.ns_per_req / zc.ns_per_req;
    const double oracle_cpy_per_req =
        static_cast<double>(oracle.verify.fwd_copied) / reqs;
    std::printf("%-10s %14.1f %14.1f %8.2fx %16.1f %14.1f\n",
                name_of(spec.kind), zc.ns_per_req, oracle.ns_per_req,
                speedup, oracle_cpy_per_req, zc.allocs_per_req);

    const std::string p = name_of(spec.kind);
    json.metric(p + ".zc_cost_ns", zc.ns_per_req);
    json.metric(p + ".oracle_cost_ns", oracle.ns_per_req);
    json.metric(p + ".speedup", speedup);
    json.metric(p + ".zc_memcpy_per_req", 0.0);
    json.metric(p + ".oracle_memcpy_per_req", oracle_cpy_per_req);
    json.metric(p + ".stream_match", streams_match ? 1.0 : 0.0);

    if (spec.kind == Scenario::KeepAlive) {
      const bool alloc_drop =
          zc.allocs_per_req < oracle.allocs_per_req;
      json.metric(p + ".zc_allocs_per_req", zc.allocs_per_req);
      json.metric(p + ".oracle_allocs_per_req", oracle.allocs_per_req);
      json.metric(p + ".alloc_drop_ok", alloc_drop ? 1.0 : 0.0);
      if (!alloc_drop) {
        std::fprintf(stderr,
                     "proxy_path: FATAL: zero-copy allocates no less than "
                     "the oracle (%.2f vs %.2f allocs/req)\n",
                     zc.allocs_per_req, oracle.allocs_per_req);
        ok = false;
      }
      if (speedup < 2.0) {
        std::fprintf(stderr,
                     "proxy_path: FATAL: keep-alive zero-copy speedup "
                     "%.2fx < required 2x\n",
                     speedup);
        ok = false;
      }
    }
  }

  // ---- Part B: sim leg ---------------------------------------------------
  subheader("sim leg: LbDevice keep-alive mix, both modes");
  sim::LbDevice zc_lb(sim_config(netsim::DispatchMode::HermesMode, true));
  sim::LbDevice or_lb(sim_config(netsim::DispatchMode::HermesMode, false));
  run_keepalive_mix(zc_lb);
  run_keepalive_mix(or_lb);
  const sim::DataPlane::Totals& zt = zc_lb.data_plane()->totals();
  const sim::DataPlane::Totals& ot = or_lb.data_plane()->totals();

  const bool sim_match = zt.backend_stream_hash == ot.backend_stream_hash &&
                         zt.client_stream_hash == ot.client_stream_hash &&
                         zt.requests_forwarded == ot.requests_forwarded;
  if (!sim_match) {
    std::fprintf(stderr,
                 "proxy_path: FATAL: sim-leg streams diverge between "
                 "zero-copy and the copy oracle\n");
    ok = false;
  }
  std::printf(
      "requests forwarded %" PRIu64 "  pool hits %" PRIu64 "  misses %" PRIu64
      "  zero-copied B %" PRIu64 "  streams %s\n",
      zt.requests_forwarded, zt.pool_hits, zt.pool_misses,
      zt.bytes_zero_copied, sim_match ? "MATCH" : "DIVERGE");
  json.metric("sim.requests_forwarded",
              static_cast<double>(zt.requests_forwarded));
  json.metric("sim.pool_hits", static_cast<double>(zt.pool_hits));
  json.metric("sim.pool_misses", static_cast<double>(zt.pool_misses));
  json.metric("sim.bytes_zero_copied",
              static_cast<double>(zt.bytes_zero_copied));
  json.metric("sim.stream_match", sim_match ? 1.0 : 0.0);

  // Rate-limited admission leg: one global bucket (client addresses are
  // random draws, so per-client buckets would not be deterministic).
  {
    sim::LbDevice::Config cfg =
        sim_config(netsim::DispatchMode::HermesMode, true);
    cfg.rate_limit.rate_per_sec = 200;
    cfg.rate_limit.burst = 16;
    cfg.rate_limit.buckets = 1;
    sim::LbDevice rl(cfg);
    run_keepalive_mix(rl);
    std::printf("rate-limit leg: admitted %" PRIu64 " refused %" PRIu64 "\n",
                rl.totals().conns_opened, rl.totals().rate_limited);
    json.metric("sim.rate_limited",
                static_cast<double>(rl.totals().rate_limited));
    if (rl.totals().rate_limited == 0) {
      std::fprintf(stderr,
                   "proxy_path: FATAL: rate-limit leg refused nothing\n");
      ok = false;
    }
  }

  // Fig. 13-style CPU spread, now with real bytes on the proxy path.
  subheader("fig13-style rerun: per-worker CPU SD under keep-alive mix");
  const double sd_rp = keepalive_mix_cpu_sd(netsim::DispatchMode::Reuseport);
  const double sd_hm = keepalive_mix_cpu_sd(netsim::DispatchMode::HermesMode);
  std::printf("reuseport CPU SD %.2fpp   hermes CPU SD %.2fpp\n", sd_rp,
              sd_hm);
  json.metric("kamix.reuseport.cpu_sd_pp", sd_rp);
  json.metric("kamix.hermes.cpu_sd_pp", sd_hm);

  std::printf("\nverdict: %s\n", ok ? "OK" : "FAILED");
  json.write();
  return ok ? 0 : 1;
}
