// Stage-1/2 scheduling hot path microbench: ns per schedule_and_sync call
// under the two scheduler implementations (DESIGN.md §8).
//
//   reference  per-worker WST read() snapshots, scalar filter loops, and
//              an unconditional M_sel store per sync
//   fast       one SoA gather over the group slice, branchless bit-walking
//              fixed-point filters, and change-suppressed sync (the store
//              is skipped while the bitmap is unchanged within
//              sync_refresh_interval)
//
// Scenarios, all at 64 workers (one full bitmap word — the paper's group
// size and the acceptance geometry):
//   steady   static load split: half the workers over the connection
//            threshold; the bitmap never changes, so the fast path
//            suppresses almost every store (its best case, and the sim's
//            common case — load shifts slowly relative to loop rate);
//   churn    one worker's pending count toggles every call, so the bitmap
//            keeps flipping and suppression almost never fires (the fast
//            path's worst case: pure filter-speed comparison).
//
// Wall-clock metrics carry the _cost_ns / .speedup suffixes and are
// reported but never gated (bench/bench_gate_check.cc); the gated metrics
// are deterministic: published/suppressed sync counts and the final bitmap
// checksum of a scripted virtual-time sweep, which any change to filter
// semantics or suppression policy would shift.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "core/hermes.h"
#include "core/scheduler.h"
#include "simcore/rng.h"
#include "util/check.h"

namespace hermes::bench {
namespace {

double cpu_seconds() {
  timespec ts{};
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
}

template <typename F>
double ns_per_op(F&& op, int iters) {
  for (int i = 0; i < iters / 10; ++i) op(i);  // warmup
  double best = 1e300;
  for (int rep = 0; rep < 5; ++rep) {
    const double start = cpu_seconds();
    for (int i = 0; i < iters; ++i) op(i);
    best = std::min(best, cpu_seconds() - start);
  }
  return best / iters * 1e9;
}

constexpr uint32_t kWorkers = 64;
constexpr int kTimedIters = 100'000;
// Virtual-time step per call: 1 us, so ~5000 calls fit one 5 ms refresh
// interval — the sim's own ratio of loop rate to refresh rate.
constexpr int64_t kStepNs = 1'000;

core::HermesRuntime make_runtime(uint32_t workers) {
  core::HermesRuntime::Options opts;
  opts.num_workers = workers;
  return core::HermesRuntime(opts);
}

void fill_steady(core::HermesRuntime& rt, SimTime now) {
  for (WorkerId w = 0; w < rt.num_workers(); ++w) {
    rt.hooks_for(w).on_loop_enter(now);
    // Workers with an odd id sit far above the connection average and get
    // filtered: a half-full candidate set through the later stages.
    rt.wst().add_connections(w, (w % 2) != 0 ? 10'000 : 100);
    rt.wst().add_pending(w, static_cast<int64_t>(w % 8));
  }
}

struct PathResult {
  double steady_cost_ns = 0;
  double churn_cost_ns = 0;
  uint64_t steady_syncs = 0;
  uint64_t steady_suppressed = 0;
  uint64_t churn_syncs = 0;
  uint64_t churn_suppressed = 0;
  uint64_t bitmap_checksum = 0;
};

PathResult run_path(core::SchedPath path) {
  PathResult r;

  // --- steady scenario -------------------------------------------------
  {
    core::HermesRuntime rt = make_runtime(kWorkers);
    rt.scheduler().set_path(path);
    const SimTime t0 = SimTime::seconds(1);
    fill_steady(rt, t0);
    int64_t vnow = t0.ns();
    // Heartbeat refresh keeps everyone inside the hang threshold without
    // entering the timed loop (50 ms threshold vs 100 ms of virtual time
    // covered): re-heartbeat every 2^15 calls (~33 ms).
    r.steady_cost_ns = ns_per_op(
        [&](int i) {
          vnow += kStepNs;
          if ((i & 0x7fff) == 0) {
            for (WorkerId w = 0; w < kWorkers; ++w) {
              rt.hooks_for(w).on_loop_enter(SimTime::nanos(vnow));
            }
          }
          (void)rt.schedule_and_sync(static_cast<WorkerId>(i & 63),
                                     SimTime::nanos(vnow));
        },
        kTimedIters);
  }

  // --- churn scenario --------------------------------------------------
  {
    core::HermesRuntime rt = make_runtime(kWorkers);
    rt.scheduler().set_path(path);
    const SimTime t0 = SimTime::seconds(1);
    fill_steady(rt, t0);
    int64_t vnow = t0.ns();
    r.churn_cost_ns = ns_per_op(
        [&](int i) {
          vnow += kStepNs;
          if ((i & 0x7fff) == 0) {
            for (WorkerId w = 0; w < kWorkers; ++w) {
              rt.hooks_for(w).on_loop_enter(SimTime::nanos(vnow));
            }
          }
          // Toggle worker 0 across the pending-events threshold: the
          // bitmap flips every call, so suppression never helps.
          rt.wst().add_pending(0, (i & 1) != 0 ? -1'000 : 1'000);
          (void)rt.schedule_and_sync(static_cast<WorkerId>(i & 63),
                                     SimTime::nanos(vnow));
        },
        kTimedIters);
  }

  // --- deterministic scripted sweep (gated metrics) ---------------------
  // Fixed mutation script over virtual time; counters and the bitmap
  // checksum must be identical on every machine and every run.
  {
    core::HermesRuntime rt = make_runtime(kWorkers);
    rt.scheduler().set_path(path);
    sim::Rng rng(42);
    int64_t vnow = SimTime::seconds(1).ns();
    for (WorkerId w = 0; w < kWorkers; ++w) {
      rt.hooks_for(w).on_loop_enter(SimTime::nanos(vnow));
      rt.wst().add_connections(w, static_cast<int64_t>(rng.next_below(200)));
    }
    for (int i = 0; i < 20'000; ++i) {
      vnow += kStepNs;
      if (i % 1000 == 0) {
        for (WorkerId w = 0; w < kWorkers; ++w) {
          rt.hooks_for(w).on_loop_enter(SimTime::nanos(vnow));
        }
      }
      if (i % 64 == 0) {
        const auto w = static_cast<WorkerId>(rng.next_below(kWorkers));
        rt.wst().add_connections(w, 500);
      }
      const auto res = rt.schedule_and_sync(
          static_cast<WorkerId>(i & 63), SimTime::nanos(vnow));
      r.bitmap_checksum = r.bitmap_checksum * 1099511628211ull ^ res.bitmap;
    }
    r.steady_syncs = rt.counters().syncs;
    r.steady_suppressed = rt.counters().syncs_suppressed;
  }
  return r;
}

// Two-level variant: 256 workers in 4 groups, one WST scan for all groups
// vs four per-group schedule_and_sync calls.
struct TwoLevelResult {
  double per_group_cost_ns = 0;  // 4x schedule_and_sync (fast path)
  double all_groups_cost_ns = 0; // one schedule_all_groups call
};

TwoLevelResult run_two_level() {
  constexpr uint32_t kBigWorkers = 256;
  TwoLevelResult r;
  {
    core::HermesRuntime rt = make_runtime(kBigWorkers);
    rt.scheduler().set_path(core::SchedPath::Fast);
    fill_steady(rt, SimTime::seconds(1));
    int64_t vnow = SimTime::seconds(1).ns();
    const uint32_t wpg = rt.workers_per_group();
    r.per_group_cost_ns = ns_per_op(
        [&](int i) {
          vnow += kStepNs;
          if ((i & 0x3fff) == 0) {
            for (WorkerId w = 0; w < kBigWorkers; ++w) {
              rt.hooks_for(w).on_loop_enter(SimTime::nanos(vnow));
            }
          }
          for (uint32_t g = 0; g < rt.num_groups(); ++g) {
            (void)rt.schedule_and_sync(static_cast<WorkerId>(g * wpg),
                                       SimTime::nanos(vnow));
          }
        },
        kTimedIters / 4);
  }
  {
    core::HermesRuntime rt = make_runtime(kBigWorkers);
    rt.scheduler().set_path(core::SchedPath::Fast);
    fill_steady(rt, SimTime::seconds(1));
    int64_t vnow = SimTime::seconds(1).ns();
    std::vector<core::ScheduleResult> out(rt.num_groups());
    r.all_groups_cost_ns = ns_per_op(
        [&](int i) {
          vnow += kStepNs;
          if ((i & 0x3fff) == 0) {
            for (WorkerId w = 0; w < kBigWorkers; ++w) {
              rt.hooks_for(w).on_loop_enter(SimTime::nanos(vnow));
            }
          }
          rt.schedule_all_groups(0, SimTime::nanos(vnow), out.data());
        },
        kTimedIters / 4);
  }
  return r;
}

// Differential spot check inside the bench itself: the two paths must
// compute identical bitmaps on the bench's own scenarios, or the timing
// comparison is between two different schedulers.
void check_paths_agree() {
  core::HermesRuntime rt = make_runtime(kWorkers);
  const SimTime now = SimTime::seconds(1);
  fill_steady(rt, now);
  core::Scheduler& s = rt.scheduler();
  const auto& cfg = s.config();
  s.set_path(core::SchedPath::Fast);
  const auto fast = s.schedule_with_order(rt.wst(), now, cfg.stage_order,
                                          cfg.num_stages, 0, kWorkers);
  const auto ref = s.schedule_reference_with_order(
      rt.wst(), now, cfg.stage_order, cfg.num_stages, 0, kWorkers);
  HERMES_CHECK_MSG(fast.bitmap == ref.bitmap &&
                       fast.after_time == ref.after_time &&
                       fast.after_conn == ref.after_conn &&
                       fast.after_event == ref.after_event,
                   "fast/reference scheduler divergence");
}

int main_impl(int argc, char** argv) {
  BenchJson json("sched_path", &argc, argv);
  header("sched_path: ns/schedule_and_sync per scheduler path, 64 workers");

  check_paths_agree();

  const PathResult ref = run_path(core::SchedPath::Reference);
  const PathResult fast = run_path(core::SchedPath::Fast);
  const TwoLevelResult two = run_two_level();

  std::printf("\n%-12s %16s %16s\n", "path", "steady ns/call", "churn ns/call");
  std::printf("%-12s %16.1f %16.1f\n", "reference", ref.steady_cost_ns,
              ref.churn_cost_ns);
  std::printf("%-12s %16.1f %16.1f\n", "fast", fast.steady_cost_ns,
              fast.churn_cost_ns);

  const double steady_speedup = ref.steady_cost_ns / fast.steady_cost_ns;
  const double churn_speedup = ref.churn_cost_ns / fast.churn_cost_ns;
  std::printf("\nspeedup steady: %.2fx   churn: %.2fx\n", steady_speedup,
              churn_speedup);

  const double total = 20'000.0;
  std::printf("scripted sweep (20k calls): fast published %llu, suppressed "
              "%llu (%.1f%%); reference published %llu\n",
              static_cast<unsigned long long>(fast.steady_syncs),
              static_cast<unsigned long long>(fast.steady_suppressed),
              100.0 * static_cast<double>(fast.steady_suppressed) / total,
              static_cast<unsigned long long>(ref.steady_syncs));
  std::printf("two-level (256 workers, 4 groups): per-group %.1f ns, "
              "single-scan %.1f ns (%.2fx)\n",
              two.per_group_cost_ns, two.all_groups_cost_ns,
              two.per_group_cost_ns / two.all_groups_cost_ns);

  std::printf("\npaper says: the per-loop scheduling work must stay in the "
              "noise (Table 5 < 5%%);\nwe measure the fast path keeping it "
              "there — acceptance bar is fast >= 2x reference\nat 64 "
              "workers in the steady (common) case.\n");
  std::printf("bar: steady %.2fx (%s), bitmaps identical (checked)\n",
              steady_speedup, steady_speedup >= 2.0 ? "PASS" : "FAIL");

  // Wall-clock: reported, never gated.
  json.metric("reference_steady_cost_ns", ref.steady_cost_ns);
  json.metric("reference_churn_cost_ns", ref.churn_cost_ns);
  json.metric("fast_steady_cost_ns", fast.steady_cost_ns);
  json.metric("fast_churn_cost_ns", fast.churn_cost_ns);
  json.metric("steady.speedup", steady_speedup);
  json.metric("churn.speedup", churn_speedup);
  json.metric("two_level_per_group_cost_ns", two.per_group_cost_ns);
  json.metric("two_level_all_groups_cost_ns", two.all_groups_cost_ns);
  // Deterministic: gated against bench/baseline.json.
  json.metric("fast_sweep_syncs", static_cast<double>(fast.steady_syncs));
  json.metric("fast_sweep_suppressed",
              static_cast<double>(fast.steady_suppressed));
  json.metric("reference_sweep_syncs", static_cast<double>(ref.steady_syncs));
  json.metric("reference_sweep_suppressed",
              static_cast<double>(ref.steady_suppressed));
  json.metric("sweep_bitmap_checksum_fast",
              static_cast<double>(fast.bitmap_checksum % 1'000'000'007));
  json.metric("sweep_bitmap_checksum_reference",
              static_cast<double>(ref.bitmap_checksum % 1'000'000'007));
  return 0;
}

}  // namespace
}  // namespace hermes::bench

int main(int argc, char** argv) {
  return hermes::bench::main_impl(argc, argv);
}
