// Table 1: request size and processing time distributions across four
// regions (P50/P90/P99), plus Table 4: the case mix per region.
//
// Paper values for reference:
//   Region1: size 243/312/2491 B,   time 2/9/42 ms
//   Region2: size 831/3730/10132,   time 10/77/8190
//   Region3: size 566/1951/50879,   time 3/278/49005
//   Region4: size 721/1140/4638,    time 4/14/239
#include <cstdio>

#include "bench/bench_common.h"
#include "simcore/histogram.h"
#include "simcore/rng.h"

using namespace hermes;
using namespace hermes::bench;

int main(int argc, char** argv) {
  BenchJson json("table1_regions", &argc, argv);
  header("Table 1: request size / processing time distributions per region");

  const double paper_size[4][3] = {{243, 312, 2491},
                                   {831, 3730, 10132},
                                   {566, 1951, 50879},
                                   {721, 1140, 4638}};
  const double paper_ms[4][3] = {
      {2, 9, 42}, {10, 77, 8190}, {3, 278, 49005}, {4, 14, 239}};

  sim::Rng rng(42);
  const auto regions = sim::paper_region_traffic();
  std::printf("%-9s | %27s | %30s\n", "", "Request size (bytes)",
              "Processing time (ms)");
  std::printf("%-9s | %8s %8s %9s | %9s %9s %10s\n", "Region", "P50", "P90",
              "P99", "P50", "P90", "P99");
  int idx = 0;
  for (const auto& r : regions) {
    sim::SampleSet bytes, ms;
    for (int i = 0; i < 300000; ++i) {
      if (rng.bernoulli(r.websocket_fraction)) {
        bytes.add(r.websocket_bytes.sample(rng));
        ms.add(r.websocket_ms.sample(rng));
      } else {
        bytes.add(r.request_bytes.sample(rng));
        ms.add(r.processing_ms.sample(rng));
      }
    }
    std::printf("%-9s | %8.0f %8.0f %9.0f | %9.1f %9.1f %10.1f\n",
                r.name.c_str(), bytes.quantile(0.5), bytes.quantile(0.9),
                bytes.quantile(0.99), ms.quantile(0.5), ms.quantile(0.9),
                ms.quantile(0.99));
    json.metric(r.name + ".bytes_p50", bytes.quantile(0.5));
    json.metric(r.name + ".bytes_p99", bytes.quantile(0.99));
    json.metric(r.name + ".ms_p50", ms.quantile(0.5));
    json.metric(r.name + ".ms_p99", ms.quantile(0.99));
    std::printf("%-9s | %8.0f %8.0f %9.0f | %9.1f %9.1f %10.1f  (paper)\n",
                "", paper_size[idx][0], paper_size[idx][1], paper_size[idx][2],
                paper_ms[idx][0], paper_ms[idx][1], paper_ms[idx][2]);
    ++idx;
  }

  header("Table 4: distribution of the four cases across regions");
  std::printf("%-8s %9s %9s %9s %9s\n", "", "Case1", "Case2", "Case3",
              "Case4");
  for (const auto& mix : sim::paper_region_mixes()) {
    std::printf("%-8s %8.2f%% %8.2f%% %8.2f%% %8.2f%%\n", mix.name.c_str(),
                mix.case_share[0] * 100, mix.case_share[1] * 100,
                mix.case_share[2] * 100, mix.case_share[3] * 100);
  }
  std::printf("(Table 4 is an input to the simulator: region mixes are used"
              " verbatim.)\n");
  return 0;
}
