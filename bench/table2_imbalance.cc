// Table 2: CPU utilization imbalance within a device and across a region
// under epoll exclusive (the pre-Hermes status quo).
//
// Paper: two sample devices with max/min core utilization of 94%/21% and
// 90%/6%, region average (363 devices) max 75.5% / min 15.3% / avg 42.9%.
// We simulate a small "region" of devices with different tenant mixes and
// seeds and report the same aggregates, for exclusive and (for contrast)
// Hermes.
#include <cstdio>

#include "bench/bench_common.h"
#include "sim/cluster.h"

using namespace hermes;
using namespace hermes::bench;

namespace {

sim::DeviceUtilization run_device(netsim::DispatchMode mode, int region_mix,
                                  uint64_t seed) {
  sim::LbDevice::Config cfg;
  cfg.mode = mode;
  cfg.num_workers = 8;
  cfg.num_ports = 32;
  cfg.seed = seed;
  sim::LbDevice lb(cfg);

  const auto mixes = sim::paper_region_mixes();
  const auto tm = sim::TenantModel::from_mix(mixes[region_mix], 32, 1.3);
  // Different devices see different absolute load (tenant placement).
  const double cps = 90.0 + 40.0 * static_cast<double>(seed % 5);
  const SimTime end = SimTime::seconds(10);
  lb.start_tenant_mix(tm, cps, cfg.num_workers, 1.0, end);
  lb.eq().run_until(SimTime::seconds(2));
  lb.sample_now();  // reset utilization window
  lb.eq().run_until(end);
  const auto s = lb.sample_now();

  sim::DeviceUtilization du;
  du.max_core = s.cpu_max * 100;
  du.min_core = s.cpu_min * 100;
  du.avg_core = s.cpu_avg * 100;
  return du;
}

void run_region(netsim::DispatchMode mode, BenchJson& json) {
  subheader(std::string("mode = ") + mode_name(mode));
  sim::RegionUtilization region;
  for (uint64_t d = 0; d < 12; ++d) {
    region.devices.push_back(run_device(mode, /*region_mix=*/1, 100 + d));
  }
  std::printf("%-22s %10s %10s %10s %12s\n", "", "Max core", "Min core",
              "Avg core", "Max-Min");
  const auto& worst = region.worst_spread();
  std::printf("%-22s %9.1f%% %9.1f%% %9.1f%% %11.1f%%\n",
              "worst-spread device", worst.max_core, worst.min_core,
              worst.avg_core, worst.spread());
  const auto avg = region.region_average();
  std::printf("%-22s %9.1f%% %9.1f%% %9.1f%% %11.1f%%\n",
              "region average (12 devices)", avg.max_core, avg.min_core,
              avg.avg_core, avg.max_core - avg.min_core);
  const std::string prefix = mode_name(mode);
  json.metric(prefix + ".worst_spread_pp", worst.spread());
  json.metric(prefix + ".region_max_pct", avg.max_core);
  json.metric(prefix + ".region_min_pct", avg.min_core);
}

}  // namespace

int main(int argc, char** argv) {
  BenchJson json("table2_imbalance", &argc, argv);
  header("Table 2: per-core CPU utilization imbalance (exclusive vs Hermes)");
  std::printf("Paper (exclusive, Region2): device A 94%%/21%%, device B"
              " 90%%/6%%; region avg 75.5%%/15.3%%/42.9%%\n");
  run_region(netsim::DispatchMode::EpollExclusive, json);
  run_region(netsim::DispatchMode::HermesMode, json);
  std::printf("\nShape to verify: exclusive shows a large max-min core gap;"
              " Hermes collapses it.\n");
  return 0;
}
