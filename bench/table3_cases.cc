// Table 3 (headline): the four traffic cases x {epoll exclusive, reuseport,
// Hermes} x {light, medium, heavy}. Reports Avg (ms), P99 (ms), and
// throughput (kRPS) per cell, and marks each mode's qualitative verdict.
//
// Paper shape to reproduce:
//   case 1 (hi CPS, lo PT): exclusive x, reuseport ok, Hermes ok (best heavy)
//   case 2 (hi CPS, hi PT): reuseport catastrophic, exclusive degrades at
//                           heavy, Hermes best
//   case 3 (lo CPS, lo PT): exclusive x (LIFO concentration), others ok
//   case 4 (lo CPS, hi PT): reuseport x, exclusive/Hermes on par
#include <cstdio>

#include "bench/bench_common.h"

using namespace hermes;
using namespace hermes::bench;

int main(int argc, char** argv) {
  BenchJson json("table3_cases", &argc, argv);
  header("Table 3: Hermes vs epoll exclusive vs reuseport (4 cases x 3 loads)");
  std::printf("Simulated LB: 8 workers, 8 tenant ports; load 1/2/3 = "
              "light/medium/heavy replay\n");

  const netsim::DispatchMode modes[] = {
      netsim::DispatchMode::EpollExclusive,
      netsim::DispatchMode::Reuseport,
      netsim::DispatchMode::HermesMode,
  };
  const char* case_names[] = {
      "Case1: High CPS, Low Avg processing time",
      "Case2: High CPS, High Avg processing time",
      "Case3: Low CPS, Low Avg processing time",
      "Case4: Low CPS, High Avg processing time",
  };

  for (int c = 1; c <= 4; ++c) {
    subheader(case_names[c - 1]);
    std::printf("%-18s | %27s | %27s | %27s\n", "",
                "Light", "Medium", "Heavy");
    std::printf("%-18s | %8s %8s %9s | %8s %8s %9s | %8s %8s %9s\n", "mode",
                "Avg(ms)", "P99(ms)", "Thr(kRPS)", "Avg(ms)", "P99(ms)",
                "Thr(kRPS)", "Avg(ms)", "P99(ms)", "Thr(kRPS)");
    for (const auto mode : modes) {
      std::printf("%-18s |", mode_name(mode));
      for (double load : {1.0, 2.0, 3.0}) {
        RunSpec spec;
        spec.mode = mode;
        spec.case_id = c;
        spec.load = load;
        spec.seed = 1000 + c;
        const CellResult r = run_cell(spec);
        std::printf(" %8.3f %8.2f %9.1f |", r.avg_ms, r.p99_ms, r.thr_krps);
        char key[64];
        std::snprintf(key, sizeof(key), "case%d.%s.load%.0f", c,
                      mode_name(mode), load);
        json.metric(std::string(key) + ".p99_ms", r.p99_ms);
        json.metric(std::string(key) + ".thr_krps", r.thr_krps);
      }
      std::printf("\n");
    }
  }

  std::printf(
      "\nExpected shape (paper): exclusive loses in cases 1/3 (LIFO"
      " concentration,\nO(#ports) dispatch); reuseport loses in cases 2/4"
      " (stateless hashing feeds\nbusy/hung workers); Hermes best or"
      " near-best everywhere.\n");
  return 0;
}
