// Table 5: overhead of Hermes components. Two parts:
//   1. google-benchmark microbenchmarks of the real code paths — counter
//      update (atomic WST write), scheduler (Algo. 1 over 32 workers),
//      decision sync (atomic map store, standing in for the bpf() syscall),
//      and the eBPF dispatcher program execution;
//   2. simulated CPU-share accounting under light/medium/heavy load,
//      mirroring the paper's flame-graph percentages (counter/scheduler/
//      syscall userspace side, dispatcher kernel side).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_common.h"
#include "core/hermes.h"

using namespace hermes;

namespace {

struct Fixture {
  Fixture() : runtime(make_opts()) {
    const SimTime now = SimTime::millis(1);
    for (WorkerId w = 0; w < 32; ++w) {
      runtime.hooks_for(w).on_loop_enter(now);
      runtime.wst().add_connections(w, static_cast<int64_t>(w) * 3);
      runtime.wst().add_pending(w, static_cast<int64_t>(w) % 5);
    }
    std::vector<uint64_t> cookies;
    for (WorkerId w = 0; w < 32; ++w) cookies.push_back(500 + w);
    attachment = runtime.attach_port(cookies);
    runtime.schedule_and_sync(0, now);
  }
  static core::HermesRuntime::Options make_opts() {
    core::HermesRuntime::Options o;
    o.num_workers = 32;
    return o;
  }
  core::HermesRuntime runtime;
  core::PortAttachment attachment;
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

void BM_CounterUpdate(benchmark::State& state) {
  auto& f = fixture();
  auto hooks = f.runtime.hooks_for(5);
  for (auto _ : state) {
    hooks.on_conn_open();
    hooks.on_event_processed();
    hooks.on_conn_close();
  }
  state.SetItemsProcessed(state.iterations() * 3);
}
BENCHMARK(BM_CounterUpdate);

void BM_Scheduler32Workers(benchmark::State& state) {
  auto& f = fixture();
  const SimTime now = SimTime::millis(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        f.runtime.scheduler().schedule(f.runtime.wst(), now));
  }
}
BENCHMARK(BM_Scheduler32Workers);

void BM_DecisionSync(benchmark::State& state) {
  auto& f = fixture();
  uint64_t bitmap = 0xfffff;
  for (auto _ : state) {
    f.runtime.sel_map().store_u64(0, bitmap);
    ++bitmap;
  }
}
BENCHMARK(BM_DecisionSync);

void BM_ScheduleAndSyncFull(benchmark::State& state) {
  auto& f = fixture();
  const SimTime now = SimTime::millis(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.runtime.schedule_and_sync(7, now));
  }
}
BENCHMARK(BM_ScheduleAndSyncFull);

void BM_DispatcherBpfProgram(benchmark::State& state) {
  auto& f = fixture();
  bpf::ReuseportCtx ctx;
  uint32_t h = 1;
  for (auto _ : state) {
    ctx.hash = h++;
    ctx.selection_made = false;
    benchmark::DoNotOptimize(f.runtime.vm().run(*f.attachment.program, ctx));
  }
}
BENCHMARK(BM_DispatcherBpfProgram);

void BM_DispatcherReferenceCpp(benchmark::State& state) {
  core::DispatchProgramParams params;
  const uint64_t bm = 0xfffffff0ull;
  uint32_t h = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::reference_dispatch(params, &bm, h++, 0));
  }
}
BENCHMARK(BM_DispatcherReferenceCpp);

// Part 2: simulated CPU share of Hermes components per load level.
void print_sim_overhead() {
  using namespace hermes::bench;
  header("Table 5 (part 2): CPU share of Hermes components by load");
  std::printf("%-8s | %10s %10s %12s | %11s\n", "load", "counter",
              "scheduler", "system call", "dispatcher");
  for (double load : {1.0, 2.0, 3.0}) {
    sim::LbDevice::Config cfg;
    cfg.mode = netsim::DispatchMode::HermesMode;
    cfg.num_workers = 8;
    cfg.num_ports = 32;
    cfg.seed = 4;
    sim::LbDevice lb(cfg);
    const SimTime end = SimTime::seconds(6);
    lb.start_pattern(sim::case_pattern(1, cfg.num_workers, load), 0,
                     cfg.num_ports, end);
    lb.eq().run_until(end);

    // Userspace components: charge measured per-op costs (from part 1's
    // order of magnitude) times observed operation counts.
    const auto& c = lb.hermes()->counters();
    double events = 0;
    for (WorkerId w = 0; w < lb.num_workers(); ++w) {
      events += static_cast<double>(lb.worker(w).requests_done() +
                                    lb.worker(w).accepts_done());
    }
    const double total_core_ns =
        static_cast<double>(end.ns()) * cfg.num_workers;
    // Per-op costs: counter ~15ns x 3 updates/event; scheduler ~60ns/worker
    // scan; sync ~1us per syscall; dispatcher = bpf insns x ~3ns.
    const double counter_pct = events * 3 * 15 / total_core_ns * 100;
    const double sched_pct = static_cast<double>(c.schedules) * 8 * 60 /
                             total_core_ns * 100;
    const double sync_pct =
        static_cast<double>(c.syncs) * 1000 / total_core_ns * 100;
    uint64_t bpf_insns = 0;
    for (uint32_t p = 0; p < cfg.num_ports; ++p) {
      bpf_insns += lb.netstack()
                       .group(static_cast<PortId>(cfg.first_port + p))
                       ->stats()
                       .bpf_insns;
    }
    const double dispatcher_pct =
        static_cast<double>(bpf_insns) * 3 / total_core_ns * 100;
    std::printf("%-8.0f | %9.3f%% %9.3f%% %11.3f%% | %10.3f%%\n", load,
                counter_pct, sched_pct, sync_pct, dispatcher_pct);
  }
  std::printf("\npaper: light 0.122/0.272/0.275 | 0.005; heavy"
              " 0.897/0.531/0.965 | 0.043\nshape: every component stays"
              " well under 1%% and grows with load;\ndispatcher is the"
              " cheapest.\n");
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  std::printf("Table 5 (part 1): microbenchmarks of the real Hermes code"
              " paths\n");
  benchmark::RunSpecifiedBenchmarks();
  print_sim_overhead();
  return 0;
}
