// Table 5: overhead of Hermes components. Two parts:
//   1. google-benchmark microbenchmarks of the real code paths — counter
//      update (atomic WST write), scheduler (Algo. 1 over 32 workers),
//      decision sync (atomic map store, standing in for the bpf() syscall),
//      and the eBPF dispatcher program execution;
//   2. simulated CPU-share accounting under light/medium/heavy load,
//      mirroring the paper's flame-graph percentages (counter/scheduler/
//      syscall userspace side, dispatcher kernel side).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <ctime>
#include <memory>
#include <vector>

#include "bench/bench_common.h"
#include "core/hermes.h"
#include "obs/observability.h"

using namespace hermes;

namespace {

struct Fixture {
  Fixture() : runtime(make_opts()) {
    const SimTime now = SimTime::millis(1);
    for (WorkerId w = 0; w < 32; ++w) {
      runtime.hooks_for(w).on_loop_enter(now);
      runtime.wst().add_connections(w, static_cast<int64_t>(w) * 3);
      runtime.wst().add_pending(w, static_cast<int64_t>(w) % 5);
    }
    std::vector<uint64_t> cookies;
    for (WorkerId w = 0; w < 32; ++w) cookies.push_back(500 + w);
    attachment = runtime.attach_port(cookies);
    runtime.schedule_and_sync(0, now);
  }
  static core::HermesRuntime::Options make_opts() {
    core::HermesRuntime::Options o;
    o.num_workers = 32;
    return o;
  }
  core::HermesRuntime runtime;
  core::PortAttachment attachment;
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

void BM_CounterUpdate(benchmark::State& state) {
  auto& f = fixture();
  auto hooks = f.runtime.hooks_for(5);
  for (auto _ : state) {
    hooks.on_conn_open();
    hooks.on_event_processed();
    hooks.on_conn_close();
  }
  state.SetItemsProcessed(state.iterations() * 3);
}
BENCHMARK(BM_CounterUpdate);

void BM_Scheduler32Workers(benchmark::State& state) {
  auto& f = fixture();
  const SimTime now = SimTime::millis(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        f.runtime.scheduler().schedule(f.runtime.wst(), now));
  }
}
BENCHMARK(BM_Scheduler32Workers);

void BM_DecisionSync(benchmark::State& state) {
  auto& f = fixture();
  uint64_t bitmap = 0xfffff;
  for (auto _ : state) {
    f.runtime.sel_map().store_u64(0, bitmap);
    ++bitmap;
  }
}
BENCHMARK(BM_DecisionSync);

void BM_ScheduleAndSyncFull(benchmark::State& state) {
  auto& f = fixture();
  const SimTime now = SimTime::millis(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.runtime.schedule_and_sync(7, now));
  }
}
BENCHMARK(BM_ScheduleAndSyncFull);

void BM_DispatcherBpfProgram(benchmark::State& state) {
  auto& f = fixture();
  bpf::ReuseportCtx ctx;
  uint32_t h = 1;
  for (auto _ : state) {
    ctx.hash = h++;
    ctx.selection_made = false;
    benchmark::DoNotOptimize(f.runtime.vm().run(*f.attachment.program, ctx));
  }
}
BENCHMARK(BM_DispatcherBpfProgram);

void BM_DispatcherReferenceCpp(benchmark::State& state) {
  core::DispatchProgramParams params;
  const uint64_t bm = 0xfffffff0ull;
  uint32_t h = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::reference_dispatch(params, &bm, h++, 0));
  }
}
BENCHMARK(BM_DispatcherReferenceCpp);

// Part 2: simulated CPU share of Hermes components per load level.
void print_sim_overhead(bench::BenchJson& json) {
  using namespace hermes::bench;
  header("Table 5 (part 2): CPU share of Hermes components by load");
  std::printf("%-8s | %10s %10s %12s | %11s | %9s\n", "load", "counter",
              "scheduler", "system call", "dispatcher", "supp/pub");
  for (double load : {1.0, 2.0, 3.0}) {
    sim::LbDevice::Config cfg;
    cfg.mode = netsim::DispatchMode::HermesMode;
    cfg.num_workers = 8;
    cfg.num_ports = 32;
    cfg.seed = 4;
    sim::LbDevice lb(cfg);
    const SimTime end = SimTime::seconds(6);
    lb.start_pattern(sim::case_pattern(1, cfg.num_workers, load), 0,
                     cfg.num_ports, end);
    lb.eq().run_until(end);

    // Userspace components: charge measured per-op costs (from part 1's
    // order of magnitude) times observed operation counts.
    const auto& c = lb.hermes()->counters();
    double events = 0;
    for (WorkerId w = 0; w < lb.num_workers(); ++w) {
      events += static_cast<double>(lb.worker(w).requests_done() +
                                    lb.worker(w).accepts_done());
    }
    const double total_core_ns =
        static_cast<double>(end.ns()) * cfg.num_workers;
    // Per-op costs: counter ~15ns x 3 updates/event; scheduler ~60ns/worker
    // scan; sync ~1us per syscall; dispatcher = bpf insns x ~3ns.
    const double counter_pct = events * 3 * 15 / total_core_ns * 100;
    const double sched_pct = static_cast<double>(c.schedules) * 8 * 60 /
                             total_core_ns * 100;
    // c.syncs counts only *published* stores: change-suppressed syncs
    // (c.syncs_suppressed) never reach the syscall boundary and are
    // charged nothing here — that is the point of the suppression.
    const double sync_pct =
        static_cast<double>(c.syncs) * 1000 / total_core_ns * 100;
    uint64_t bpf_insns = 0;
    for (uint32_t p = 0; p < cfg.num_ports; ++p) {
      bpf_insns += lb.netstack()
                       .group(static_cast<PortId>(cfg.first_port + p))
                       ->stats()
                       .bpf_insns;
    }
    const double dispatcher_pct =
        static_cast<double>(bpf_insns) * 3 / total_core_ns * 100;
    std::printf("%-8.0f | %9.3f%% %9.3f%% %11.3f%% | %10.3f%% | %llu/%llu\n",
                load, counter_pct, sched_pct, sync_pct, dispatcher_pct,
                static_cast<unsigned long long>(c.syncs_suppressed),
                static_cast<unsigned long long>(c.syncs));
    const std::string prefix = "load" + std::to_string((int)load);
    json.metric(prefix + ".counter_pct", counter_pct);
    json.metric(prefix + ".scheduler_pct", sched_pct);
    json.metric(prefix + ".syscall_pct", sync_pct);
    json.metric(prefix + ".dispatcher_pct", dispatcher_pct);
    json.metric(prefix + ".syncs_published", static_cast<double>(c.syncs));
    json.metric(prefix + ".syncs_suppressed",
                static_cast<double>(c.syncs_suppressed));
  }
  std::printf("\npaper: light 0.122/0.272/0.275 | 0.005; heavy"
              " 0.897/0.531/0.965 | 0.043\nshape: every component stays"
              " well under 1%% and grows with load;\ndispatcher is the"
              " cheapest.\n");
}

// Part 3: cost of the observability layer itself (ISSUE 3's version of the
// Table 5 claim). Time the instrumented hot path — worker hooks plus
// schedule_and_sync, the loop every worker runs — with observability on and
// off, and report the relative overhead. The bench gate holds this under
// 5%; the sharded relaxed-atomic counters and the per-worker trace ring
// writes are a handful of nanoseconds against a ~32-worker filter scan.
// ---- part 3: observability-layer overhead ------------------------------
//
// The gated number uses the SAME accounting as part 2's component shares:
// measured per-operation cost x exact operation counts from a
// deterministic sim run, divided by total core time. Per-op costs come
// from timed tight loops over the real Counter/LogHistogram/TraceRing
// code; op counts are read back from the metrics themselves (the registry
// counts its own updates by construction).
//
// Why not gate on an end-to-end obs-on vs obs-off wall/CPU diff? We tried:
// the diff is hostage to heap- and code-layout luck — allocating the
// registry early shifts every later sim allocation, and the measured
// "overhead" swings between -5% and +9% across otherwise identical
// builds. A budget gate needs a signal whose noise is well under the 5%
// budget; per-op x count is that signal (per-op ns are stable to ~10% and
// the total sits near 0.1% of core time, three orders below the budget).
// The end-to-end diff is still printed as a diagnostic.
double cpu_seconds() {
  timespec ts{};
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
}

template <typename F>
double ns_per_op(F&& op, int iters) {
  for (int i = 0; i < iters / 10; ++i) op(i);  // warmup
  double best = 1e300;
  for (int rep = 0; rep < 5; ++rep) {
    const double start = cpu_seconds();
    for (int i = 0; i < iters; ++i) op(i);
    best = std::min(best, cpu_seconds() - start);
  }
  return best / iters * 1e9;
}

struct ObsOverhead {
  double pct = 0;          // gated: instrumentation share of core time
  double counter_ns = 0;   // per-op costs (diagnostics)
  double hist_ns = 0;
  double trace_ns = 0;
  double timer_ns = 0;     // steady_clock pair + ns-counter add (sched slice)
  uint64_t counter_ops = 0;
  uint64_t hist_ops = 0;
  uint64_t trace_ops = 0;
  uint64_t timer_ops = 0;
};

ObsOverhead measure_obs_overhead() {
  ObsOverhead r;

  // Per-op costs of the real instrumentation primitives (single writer,
  // shards cycling like a real worker set).
  constexpr int kIters = 2'000'000;
  {
    obs::Counter c(8);
    r.counter_ns = ns_per_op([&](int i) { c.add(i & 7, 1); }, kIters);
  }
  {
    obs::LogHistogram h(8, 3);
    r.hist_ns = ns_per_op(
        [&](int i) {
          h.record(i & 7, static_cast<uint64_t>(i) * 2654435761u);
        },
        kIters);
  }
  {
    obs::TraceRing ring(4096);
    r.trace_ns = ns_per_op(
        [&](int i) {
          obs::TraceEvent ev;
          ev.t_ns = i;
          ev.type = 1;
          ev.worker = static_cast<uint16_t>(i & 7);
          ev.a = static_cast<uint32_t>(i);
          ev.b = static_cast<uint64_t>(i) * 3;
          ev.c = ~static_cast<uint64_t>(i);
          ring.write(ev);
        },
        kIters);
  }
  {
    // sched.fast_path_ns is not an op count — its VALUE is nanoseconds.
    // What obs pays for it is one steady_clock timing pair plus the
    // counter add per schedule_and_sync (hermes.cc), so measure exactly
    // that composite and charge it per filter run below.
    obs::Counter c(8);
    r.timer_ns = ns_per_op(
        [&](int i) {
          const auto t0 = std::chrono::steady_clock::now();
          benchmark::DoNotOptimize(t0);
          const auto dt = std::chrono::steady_clock::now() - t0;
          c.add(i & 7,
                static_cast<uint64_t>(
                    std::chrono::duration_cast<std::chrono::nanoseconds>(dt)
                        .count()));
        },
        kIters);
  }

  // Exact op counts from a deterministic pipeline run with obs on.
  sim::LbDevice::Config cfg;
  cfg.mode = netsim::DispatchMode::HermesMode;
  cfg.num_workers = 8;
  cfg.num_ports = 32;
  cfg.seed = 4;
  cfg.observability = true;
  sim::LbDevice lb(cfg);
  const SimTime end = SimTime::seconds(4);
  lb.start_pattern(sim::case_pattern(1, cfg.num_workers, 2.0), 0,
                   cfg.num_ports, end);
  lb.eq().run_until(end);

  const obs::PipelineMetrics& m = lb.obs()->metrics;
  for (const obs::Counter* c :
       {m.wst_avail_updates, m.wst_pending_updates, m.wst_conn_updates,
        m.filter_runs, m.filter_after_time, m.filter_after_conn,
        m.filter_after_event, m.filter_low_survivor, m.sync_published,
        m.sync_dropped, m.dispatch_picks, m.dispatch_bpf,
        m.dispatch_fallback, m.dispatch_hash, m.bpf_tier_dispatches[0],
        m.bpf_tier_dispatches[1], m.bpf_tier_dispatches[2],
        m.bpf_tier_dispatches[3], m.bpf_fused_ops,
        m.bpf_elided_checks, m.bpf_jit_fallbacks, m.accept_enqueued,
        m.accept_dropped, m.sched_syncs_suppressed,
        // L7 data-plane counters: all zero here (data plane disabled in
        // this run), included so the accounting stays complete if a
        // future run enables it.
        m.http_requests_forwarded, m.http_bytes_zero_copied,
        m.http_bytes_copied, m.pool_hits, m.pool_misses, m.pool_expiries,
        m.ratelimit_drops}) {
    r.counter_ops += c->value();
  }
  // sched.fast_path_ns accumulates NANOSECONDS, so its value() is not an
  // op count. It is updated once per schedule (= once per filter run);
  // charge that many timing-pair composites instead.
  r.timer_ops = m.filter_runs->value();
  r.hist_ops = m.filter_selected->snapshot().count +
               m.sync_gap_ns->snapshot().count +
               m.accept_depth->snapshot().count +
               lb.obs()
                   ->registry.histogram("request.latency_ns")
                   .snapshot()
                   .count;
  for (WorkerId w = 0; w < cfg.num_workers; ++w) {
    r.trace_ops += lb.obs()->traces.ring(w).written();
  }

  const double total_core_ns =
      static_cast<double>(end.ns()) * cfg.num_workers;
  const double obs_ns = static_cast<double>(r.counter_ops) * r.counter_ns +
                        static_cast<double>(r.hist_ops) * r.hist_ns +
                        static_cast<double>(r.trace_ops) * r.trace_ns +
                        static_cast<double>(r.timer_ops) * r.timer_ns;
  r.pct = obs_ns / total_core_ns * 100.0;
  return r;
}

// Diagnostic only: end-to-end CPU-time diff of the identical seeded sim
// with observability on vs off (see the layout-noise caveat above).
double measure_e2e_cpu_diff_pct() {
  constexpr int kReps = 3;
  const auto run_once = [](bool obs_on) {
    sim::LbDevice::Config cfg;
    cfg.mode = netsim::DispatchMode::HermesMode;
    cfg.num_workers = 8;
    cfg.num_ports = 32;
    cfg.seed = 4;
    cfg.observability = obs_on;
    sim::LbDevice lb(cfg);
    const SimTime end = SimTime::seconds(2);
    lb.start_pattern(sim::case_pattern(1, cfg.num_workers, 2.0), 0,
                     cfg.num_ports, end);
    const double start = cpu_seconds();
    lb.eq().run_until(end);
    return cpu_seconds() - start;
  };

  run_once(false);  // warmup
  run_once(true);
  double best_off = 1e300, best_on = 1e300;
  for (int rep = 0; rep < kReps; ++rep) {
    best_off = std::min(best_off, run_once(false));
    best_on = std::min(best_on, run_once(true));
  }
  return 100.0 * (best_on - best_off) / best_off;
}

// Diagnostic only (printed, not gated): the same comparison on the
// scheduler slice alone, where the densest instrumentation (filter
// histogram, sync trace events) sits.
double measure_sched_slice_overhead_pct() {
  constexpr int kIters = 40'000;
  constexpr int kReps = 7;
  const auto run_once = [](obs::Observability* obs) {
    core::HermesRuntime::Options o;
    o.num_workers = 32;
    o.obs = obs;
    core::HermesRuntime rt(o);
    const SimTime t0 = SimTime::millis(1);
    for (WorkerId w = 0; w < 32; ++w) {
      rt.hooks_for(w).on_loop_enter(t0);
      rt.wst().add_connections(w, static_cast<int64_t>(w) * 3);
    }
    auto hooks = rt.hooks_for(5);
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < kIters; ++i) {
      hooks.on_conn_open();
      hooks.on_event_processed();
      hooks.on_conn_close();
      benchmark::DoNotOptimize(
          rt.schedule_and_sync(5, t0 + SimTime::micros(i)));
    }
    const auto stop = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(stop - start).count();
  };

  double best_off = 1e300, best_on = 1e300;
  for (int rep = 0; rep < kReps; ++rep) {
    best_off = std::min(best_off, run_once(nullptr));
    obs::Observability obs(32);
    best_on = std::min(best_on, run_once(&obs));
  }
  return 100.0 * (best_on - best_off) / best_off;
}

void print_obs_overhead(bench::BenchJson& json) {
  bench::header("Table 5 (part 3): observability-layer overhead");
  const ObsOverhead o = measure_obs_overhead();
  std::printf("per-op: counter %.2f ns, histogram %.2f ns, trace %.2f ns,"
              " sched timer %.2f ns\n",
              o.counter_ns, o.hist_ns, o.trace_ns, o.timer_ns);
  std::printf("ops (case-1 sim, 8 workers, load 2.0, 4 s): %llu counter,"
              " %llu histogram, %llu trace, %llu sched timer\n",
              static_cast<unsigned long long>(o.counter_ops),
              static_cast<unsigned long long>(o.hist_ops),
              static_cast<unsigned long long>(o.trace_ops),
              static_cast<unsigned long long>(o.timer_ops));
  std::printf("instrumentation share of core time: %.4f%% (budget < 5%%)\n",
              o.pct);
  std::printf("end-to-end CPU diff, obs on vs off: %+.2f%% [diagnostic:"
              " layout-noise dominated]\n",
              measure_e2e_cpu_diff_pct());
  std::printf("scheduler slice alone (hooks + schedule_and_sync, 32"
              " workers): %+.2f%% [diagnostic]\n",
              measure_sched_slice_overhead_pct());
  json.metric("obs_overhead_pct", o.pct);
  json.metric("obs_counter_cost_ns", o.counter_ns);
  json.metric("obs_histogram_cost_ns", o.hist_ns);
  json.metric("obs_trace_cost_ns", o.trace_ns);
  json.metric("obs_sched_timer_cost_ns", o.timer_ns);
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchJson json("table5_overhead", &argc, argv);
  benchmark::Initialize(&argc, argv);
  std::printf("Table 5 (part 1): microbenchmarks of the real Hermes code"
              " paths\n");
  benchmark::RunSpecifiedBenchmarks();
  print_sim_overhead(json);
  print_obs_overhead(json);
  return 0;
}
