file(REMOVE_RECURSE
  "CMakeFiles/ablation_backend_pool.dir/ablation_backend_pool.cc.o"
  "CMakeFiles/ablation_backend_pool.dir/ablation_backend_pool.cc.o.d"
  "ablation_backend_pool"
  "ablation_backend_pool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_backend_pool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
