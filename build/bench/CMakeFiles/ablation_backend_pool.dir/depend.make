# Empty dependencies file for ablation_backend_pool.
# This may be replaced when dependencies are built.
