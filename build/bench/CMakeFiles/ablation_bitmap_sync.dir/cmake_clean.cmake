file(REMOVE_RECURSE
  "CMakeFiles/ablation_bitmap_sync.dir/ablation_bitmap_sync.cc.o"
  "CMakeFiles/ablation_bitmap_sync.dir/ablation_bitmap_sync.cc.o.d"
  "ablation_bitmap_sync"
  "ablation_bitmap_sync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_bitmap_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
