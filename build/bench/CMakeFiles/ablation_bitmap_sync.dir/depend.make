# Empty dependencies file for ablation_bitmap_sync.
# This may be replaced when dependencies are built.
