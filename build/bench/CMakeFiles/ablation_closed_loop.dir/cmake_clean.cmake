file(REMOVE_RECURSE
  "CMakeFiles/ablation_closed_loop.dir/ablation_closed_loop.cc.o"
  "CMakeFiles/ablation_closed_loop.dir/ablation_closed_loop.cc.o.d"
  "ablation_closed_loop"
  "ablation_closed_loop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_closed_loop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
