# Empty dependencies file for ablation_filter_order.
# This may be replaced when dependencies are built.
