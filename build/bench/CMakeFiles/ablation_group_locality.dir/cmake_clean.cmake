file(REMOVE_RECURSE
  "CMakeFiles/ablation_group_locality.dir/ablation_group_locality.cc.o"
  "CMakeFiles/ablation_group_locality.dir/ablation_group_locality.cc.o.d"
  "ablation_group_locality"
  "ablation_group_locality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_group_locality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
