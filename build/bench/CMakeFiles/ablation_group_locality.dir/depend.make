# Empty dependencies file for ablation_group_locality.
# This may be replaced when dependencies are built.
