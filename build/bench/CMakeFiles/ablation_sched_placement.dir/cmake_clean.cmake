file(REMOVE_RECURSE
  "CMakeFiles/ablation_sched_placement.dir/ablation_sched_placement.cc.o"
  "CMakeFiles/ablation_sched_placement.dir/ablation_sched_placement.cc.o.d"
  "ablation_sched_placement"
  "ablation_sched_placement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_sched_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
