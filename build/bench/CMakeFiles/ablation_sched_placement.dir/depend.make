# Empty dependencies file for ablation_sched_placement.
# This may be replaced when dependencies are built.
