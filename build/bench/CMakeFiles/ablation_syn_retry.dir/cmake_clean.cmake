file(REMOVE_RECURSE
  "CMakeFiles/ablation_syn_retry.dir/ablation_syn_retry.cc.o"
  "CMakeFiles/ablation_syn_retry.dir/ablation_syn_retry.cc.o.d"
  "ablation_syn_retry"
  "ablation_syn_retry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_syn_retry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
