# Empty dependencies file for ablation_syn_retry.
# This may be replaced when dependencies are built.
