file(REMOVE_RECURSE
  "CMakeFiles/ablation_user_dispatcher.dir/ablation_user_dispatcher.cc.o"
  "CMakeFiles/ablation_user_dispatcher.dir/ablation_user_dispatcher.cc.o.d"
  "ablation_user_dispatcher"
  "ablation_user_dispatcher.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_user_dispatcher.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
