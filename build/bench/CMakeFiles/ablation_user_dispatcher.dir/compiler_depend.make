# Empty compiler generated dependencies file for ablation_user_dispatcher.
# This may be replaced when dependencies are built.
