file(REMOVE_RECURSE
  "CMakeFiles/ablation_wakeup_policy.dir/ablation_wakeup_policy.cc.o"
  "CMakeFiles/ablation_wakeup_policy.dir/ablation_wakeup_policy.cc.o.d"
  "ablation_wakeup_policy"
  "ablation_wakeup_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_wakeup_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
