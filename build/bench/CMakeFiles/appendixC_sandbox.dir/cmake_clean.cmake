file(REMOVE_RECURSE
  "CMakeFiles/appendixC_sandbox.dir/appendixC_sandbox.cc.o"
  "CMakeFiles/appendixC_sandbox.dir/appendixC_sandbox.cc.o.d"
  "appendixC_sandbox"
  "appendixC_sandbox.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/appendixC_sandbox.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
