# Empty dependencies file for appendixC_sandbox.
# This may be replaced when dependencies are built.
