file(REMOVE_RECURSE
  "CMakeFiles/fig11_cluster.dir/fig11_cluster.cc.o"
  "CMakeFiles/fig11_cluster.dir/fig11_cluster.cc.o.d"
  "fig11_cluster"
  "fig11_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
