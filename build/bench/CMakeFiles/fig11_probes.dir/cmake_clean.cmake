file(REMOVE_RECURSE
  "CMakeFiles/fig11_probes.dir/fig11_probes.cc.o"
  "CMakeFiles/fig11_probes.dir/fig11_probes.cc.o.d"
  "fig11_probes"
  "fig11_probes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_probes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
