# Empty dependencies file for fig11_probes.
# This may be replaced when dependencies are built.
