file(REMOVE_RECURSE
  "CMakeFiles/fig12_unit_cost.dir/fig12_unit_cost.cc.o"
  "CMakeFiles/fig12_unit_cost.dir/fig12_unit_cost.cc.o.d"
  "fig12_unit_cost"
  "fig12_unit_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_unit_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
