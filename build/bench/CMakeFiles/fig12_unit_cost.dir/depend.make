# Empty dependencies file for fig12_unit_cost.
# This may be replaced when dependencies are built.
