file(REMOVE_RECURSE
  "CMakeFiles/fig13_load_sd.dir/fig13_load_sd.cc.o"
  "CMakeFiles/fig13_load_sd.dir/fig13_load_sd.cc.o.d"
  "fig13_load_sd"
  "fig13_load_sd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_load_sd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
