# Empty compiler generated dependencies file for fig13_load_sd.
# This may be replaced when dependencies are built.
