file(REMOVE_RECURSE
  "CMakeFiles/fig14_filter_ratio.dir/fig14_filter_ratio.cc.o"
  "CMakeFiles/fig14_filter_ratio.dir/fig14_filter_ratio.cc.o.d"
  "fig14_filter_ratio"
  "fig14_filter_ratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_filter_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
