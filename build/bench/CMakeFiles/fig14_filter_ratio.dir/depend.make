# Empty dependencies file for fig14_filter_ratio.
# This may be replaced when dependencies are built.
