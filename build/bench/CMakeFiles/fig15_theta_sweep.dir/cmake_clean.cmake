file(REMOVE_RECURSE
  "CMakeFiles/fig15_theta_sweep.dir/fig15_theta_sweep.cc.o"
  "CMakeFiles/fig15_theta_sweep.dir/fig15_theta_sweep.cc.o.d"
  "fig15_theta_sweep"
  "fig15_theta_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_theta_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
