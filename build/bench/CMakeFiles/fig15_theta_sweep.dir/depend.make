# Empty dependencies file for fig15_theta_sweep.
# This may be replaced when dependencies are built.
