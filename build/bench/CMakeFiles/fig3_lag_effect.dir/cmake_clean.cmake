file(REMOVE_RECURSE
  "CMakeFiles/fig3_lag_effect.dir/fig3_lag_effect.cc.o"
  "CMakeFiles/fig3_lag_effect.dir/fig3_lag_effect.cc.o.d"
  "fig3_lag_effect"
  "fig3_lag_effect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_lag_effect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
