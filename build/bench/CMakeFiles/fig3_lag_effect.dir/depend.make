# Empty dependencies file for fig3_lag_effect.
# This may be replaced when dependencies are built.
