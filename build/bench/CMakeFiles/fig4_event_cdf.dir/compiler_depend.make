# Empty compiler generated dependencies file for fig4_event_cdf.
# This may be replaced when dependencies are built.
