file(REMOVE_RECURSE
  "CMakeFiles/fig5_time_cdf.dir/fig5_time_cdf.cc.o"
  "CMakeFiles/fig5_time_cdf.dir/fig5_time_cdf.cc.o.d"
  "fig5_time_cdf"
  "fig5_time_cdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_time_cdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
