file(REMOVE_RECURSE
  "CMakeFiles/fig7_nic_vs_cpu.dir/fig7_nic_vs_cpu.cc.o"
  "CMakeFiles/fig7_nic_vs_cpu.dir/fig7_nic_vs_cpu.cc.o.d"
  "fig7_nic_vs_cpu"
  "fig7_nic_vs_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_nic_vs_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
