# Empty dependencies file for fig7_nic_vs_cpu.
# This may be replaced when dependencies are built.
