file(REMOVE_RECURSE
  "CMakeFiles/figA5_rules.dir/figA5_rules.cc.o"
  "CMakeFiles/figA5_rules.dir/figA5_rules.cc.o.d"
  "figA5_rules"
  "figA5_rules.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figA5_rules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
