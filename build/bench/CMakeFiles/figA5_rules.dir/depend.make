# Empty dependencies file for figA5_rules.
# This may be replaced when dependencies are built.
