file(REMOVE_RECURSE
  "CMakeFiles/table2_imbalance.dir/table2_imbalance.cc.o"
  "CMakeFiles/table2_imbalance.dir/table2_imbalance.cc.o.d"
  "table2_imbalance"
  "table2_imbalance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_imbalance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
