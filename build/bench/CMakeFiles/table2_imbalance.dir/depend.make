# Empty dependencies file for table2_imbalance.
# This may be replaced when dependencies are built.
