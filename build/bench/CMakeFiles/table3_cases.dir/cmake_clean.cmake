file(REMOVE_RECURSE
  "CMakeFiles/table3_cases.dir/table3_cases.cc.o"
  "CMakeFiles/table3_cases.dir/table3_cases.cc.o.d"
  "table3_cases"
  "table3_cases.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_cases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
