# Empty dependencies file for table3_cases.
# This may be replaced when dependencies are built.
