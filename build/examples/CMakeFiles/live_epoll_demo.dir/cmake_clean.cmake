file(REMOVE_RECURSE
  "CMakeFiles/live_epoll_demo.dir/live_epoll_demo.cpp.o"
  "CMakeFiles/live_epoll_demo.dir/live_epoll_demo.cpp.o.d"
  "live_epoll_demo"
  "live_epoll_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/live_epoll_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
