# Empty dependencies file for live_epoll_demo.
# This may be replaced when dependencies are built.
