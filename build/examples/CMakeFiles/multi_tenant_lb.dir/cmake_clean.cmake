file(REMOVE_RECURSE
  "CMakeFiles/multi_tenant_lb.dir/multi_tenant_lb.cpp.o"
  "CMakeFiles/multi_tenant_lb.dir/multi_tenant_lb.cpp.o.d"
  "multi_tenant_lb"
  "multi_tenant_lb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_tenant_lb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
