# Empty dependencies file for multi_tenant_lb.
# This may be replaced when dependencies are built.
