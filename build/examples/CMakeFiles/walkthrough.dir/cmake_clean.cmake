file(REMOVE_RECURSE
  "CMakeFiles/walkthrough.dir/walkthrough.cpp.o"
  "CMakeFiles/walkthrough.dir/walkthrough.cpp.o.d"
  "walkthrough"
  "walkthrough.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/walkthrough.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
