# Empty compiler generated dependencies file for walkthrough.
# This may be replaced when dependencies are built.
