# Empty dependencies file for walkthrough.
# This may be replaced when dependencies are built.
