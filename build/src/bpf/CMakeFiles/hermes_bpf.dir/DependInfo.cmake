
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bpf/assembler.cc" "src/bpf/CMakeFiles/hermes_bpf.dir/assembler.cc.o" "gcc" "src/bpf/CMakeFiles/hermes_bpf.dir/assembler.cc.o.d"
  "/root/repo/src/bpf/insn.cc" "src/bpf/CMakeFiles/hermes_bpf.dir/insn.cc.o" "gcc" "src/bpf/CMakeFiles/hermes_bpf.dir/insn.cc.o.d"
  "/root/repo/src/bpf/verifier.cc" "src/bpf/CMakeFiles/hermes_bpf.dir/verifier.cc.o" "gcc" "src/bpf/CMakeFiles/hermes_bpf.dir/verifier.cc.o.d"
  "/root/repo/src/bpf/vm.cc" "src/bpf/CMakeFiles/hermes_bpf.dir/vm.cc.o" "gcc" "src/bpf/CMakeFiles/hermes_bpf.dir/vm.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
