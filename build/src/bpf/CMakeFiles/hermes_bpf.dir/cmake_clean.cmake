file(REMOVE_RECURSE
  "CMakeFiles/hermes_bpf.dir/assembler.cc.o"
  "CMakeFiles/hermes_bpf.dir/assembler.cc.o.d"
  "CMakeFiles/hermes_bpf.dir/insn.cc.o"
  "CMakeFiles/hermes_bpf.dir/insn.cc.o.d"
  "CMakeFiles/hermes_bpf.dir/verifier.cc.o"
  "CMakeFiles/hermes_bpf.dir/verifier.cc.o.d"
  "CMakeFiles/hermes_bpf.dir/vm.cc.o"
  "CMakeFiles/hermes_bpf.dir/vm.cc.o.d"
  "libhermes_bpf.a"
  "libhermes_bpf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hermes_bpf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
