file(REMOVE_RECURSE
  "libhermes_bpf.a"
)
