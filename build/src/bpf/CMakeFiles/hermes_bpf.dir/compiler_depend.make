# Empty compiler generated dependencies file for hermes_bpf.
# This may be replaced when dependencies are built.
