
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/dispatch_prog.cc" "src/core/CMakeFiles/hermes_core.dir/dispatch_prog.cc.o" "gcc" "src/core/CMakeFiles/hermes_core.dir/dispatch_prog.cc.o.d"
  "/root/repo/src/core/hermes.cc" "src/core/CMakeFiles/hermes_core.dir/hermes.cc.o" "gcc" "src/core/CMakeFiles/hermes_core.dir/hermes.cc.o.d"
  "/root/repo/src/core/scheduler.cc" "src/core/CMakeFiles/hermes_core.dir/scheduler.cc.o" "gcc" "src/core/CMakeFiles/hermes_core.dir/scheduler.cc.o.d"
  "/root/repo/src/core/wst.cc" "src/core/CMakeFiles/hermes_core.dir/wst.cc.o" "gcc" "src/core/CMakeFiles/hermes_core.dir/wst.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bpf/CMakeFiles/hermes_bpf.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
