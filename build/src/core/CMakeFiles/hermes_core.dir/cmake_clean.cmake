file(REMOVE_RECURSE
  "CMakeFiles/hermes_core.dir/dispatch_prog.cc.o"
  "CMakeFiles/hermes_core.dir/dispatch_prog.cc.o.d"
  "CMakeFiles/hermes_core.dir/hermes.cc.o"
  "CMakeFiles/hermes_core.dir/hermes.cc.o.d"
  "CMakeFiles/hermes_core.dir/scheduler.cc.o"
  "CMakeFiles/hermes_core.dir/scheduler.cc.o.d"
  "CMakeFiles/hermes_core.dir/wst.cc.o"
  "CMakeFiles/hermes_core.dir/wst.cc.o.d"
  "libhermes_core.a"
  "libhermes_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hermes_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
