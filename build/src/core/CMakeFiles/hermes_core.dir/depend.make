# Empty dependencies file for hermes_core.
# This may be replaced when dependencies are built.
