file(REMOVE_RECURSE
  "CMakeFiles/hermes_http.dir/parser.cc.o"
  "CMakeFiles/hermes_http.dir/parser.cc.o.d"
  "CMakeFiles/hermes_http.dir/router.cc.o"
  "CMakeFiles/hermes_http.dir/router.cc.o.d"
  "libhermes_http.a"
  "libhermes_http.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hermes_http.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
