file(REMOVE_RECURSE
  "libhermes_http.a"
)
