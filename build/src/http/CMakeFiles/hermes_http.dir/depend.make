# Empty dependencies file for hermes_http.
# This may be replaced when dependencies are built.
