file(REMOVE_RECURSE
  "CMakeFiles/hermes_netsim.dir/netstack.cc.o"
  "CMakeFiles/hermes_netsim.dir/netstack.cc.o.d"
  "libhermes_netsim.a"
  "libhermes_netsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hermes_netsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
