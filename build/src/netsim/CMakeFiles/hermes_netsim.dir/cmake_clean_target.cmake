file(REMOVE_RECURSE
  "libhermes_netsim.a"
)
