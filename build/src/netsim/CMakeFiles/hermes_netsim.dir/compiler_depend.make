# Empty compiler generated dependencies file for hermes_netsim.
# This may be replaced when dependencies are built.
