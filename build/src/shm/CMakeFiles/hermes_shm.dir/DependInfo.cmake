
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/shm/fd_channel.cc" "src/shm/CMakeFiles/hermes_shm.dir/fd_channel.cc.o" "gcc" "src/shm/CMakeFiles/hermes_shm.dir/fd_channel.cc.o.d"
  "/root/repo/src/shm/shm_region.cc" "src/shm/CMakeFiles/hermes_shm.dir/shm_region.cc.o" "gcc" "src/shm/CMakeFiles/hermes_shm.dir/shm_region.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
