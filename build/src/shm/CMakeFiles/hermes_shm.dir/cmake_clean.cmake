file(REMOVE_RECURSE
  "CMakeFiles/hermes_shm.dir/fd_channel.cc.o"
  "CMakeFiles/hermes_shm.dir/fd_channel.cc.o.d"
  "CMakeFiles/hermes_shm.dir/shm_region.cc.o"
  "CMakeFiles/hermes_shm.dir/shm_region.cc.o.d"
  "libhermes_shm.a"
  "libhermes_shm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hermes_shm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
