file(REMOVE_RECURSE
  "libhermes_shm.a"
)
