# Empty compiler generated dependencies file for hermes_shm.
# This may be replaced when dependencies are built.
