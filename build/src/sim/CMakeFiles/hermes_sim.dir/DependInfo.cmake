
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/lb.cc" "src/sim/CMakeFiles/hermes_sim.dir/lb.cc.o" "gcc" "src/sim/CMakeFiles/hermes_sim.dir/lb.cc.o.d"
  "/root/repo/src/sim/trace.cc" "src/sim/CMakeFiles/hermes_sim.dir/trace.cc.o" "gcc" "src/sim/CMakeFiles/hermes_sim.dir/trace.cc.o.d"
  "/root/repo/src/sim/worker.cc" "src/sim/CMakeFiles/hermes_sim.dir/worker.cc.o" "gcc" "src/sim/CMakeFiles/hermes_sim.dir/worker.cc.o.d"
  "/root/repo/src/sim/workload.cc" "src/sim/CMakeFiles/hermes_sim.dir/workload.cc.o" "gcc" "src/sim/CMakeFiles/hermes_sim.dir/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/hermes_core.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/hermes_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/http/CMakeFiles/hermes_http.dir/DependInfo.cmake"
  "/root/repo/build/src/bpf/CMakeFiles/hermes_bpf.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
