file(REMOVE_RECURSE
  "CMakeFiles/hermes_sim.dir/lb.cc.o"
  "CMakeFiles/hermes_sim.dir/lb.cc.o.d"
  "CMakeFiles/hermes_sim.dir/trace.cc.o"
  "CMakeFiles/hermes_sim.dir/trace.cc.o.d"
  "CMakeFiles/hermes_sim.dir/worker.cc.o"
  "CMakeFiles/hermes_sim.dir/worker.cc.o.d"
  "CMakeFiles/hermes_sim.dir/workload.cc.o"
  "CMakeFiles/hermes_sim.dir/workload.cc.o.d"
  "libhermes_sim.a"
  "libhermes_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hermes_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
