file(REMOVE_RECURSE
  "CMakeFiles/backend_pool_test.dir/backend_pool_test.cc.o"
  "CMakeFiles/backend_pool_test.dir/backend_pool_test.cc.o.d"
  "backend_pool_test"
  "backend_pool_test.pdb"
  "backend_pool_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/backend_pool_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
