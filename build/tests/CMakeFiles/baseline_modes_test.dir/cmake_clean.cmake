file(REMOVE_RECURSE
  "CMakeFiles/baseline_modes_test.dir/baseline_modes_test.cc.o"
  "CMakeFiles/baseline_modes_test.dir/baseline_modes_test.cc.o.d"
  "baseline_modes_test"
  "baseline_modes_test.pdb"
  "baseline_modes_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_modes_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
