# Empty dependencies file for baseline_modes_test.
# This may be replaced when dependencies are built.
