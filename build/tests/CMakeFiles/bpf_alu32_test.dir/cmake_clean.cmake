file(REMOVE_RECURSE
  "CMakeFiles/bpf_alu32_test.dir/bpf_alu32_test.cc.o"
  "CMakeFiles/bpf_alu32_test.dir/bpf_alu32_test.cc.o.d"
  "bpf_alu32_test"
  "bpf_alu32_test.pdb"
  "bpf_alu32_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bpf_alu32_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
