# Empty dependencies file for bpf_alu32_test.
# This may be replaced when dependencies are built.
