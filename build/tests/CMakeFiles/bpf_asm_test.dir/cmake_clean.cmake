file(REMOVE_RECURSE
  "CMakeFiles/bpf_asm_test.dir/bpf_asm_test.cc.o"
  "CMakeFiles/bpf_asm_test.dir/bpf_asm_test.cc.o.d"
  "bpf_asm_test"
  "bpf_asm_test.pdb"
  "bpf_asm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bpf_asm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
