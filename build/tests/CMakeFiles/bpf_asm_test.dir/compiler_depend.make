# Empty compiler generated dependencies file for bpf_asm_test.
# This may be replaced when dependencies are built.
