file(REMOVE_RECURSE
  "CMakeFiles/bpf_disasm_test.dir/bpf_disasm_test.cc.o"
  "CMakeFiles/bpf_disasm_test.dir/bpf_disasm_test.cc.o.d"
  "bpf_disasm_test"
  "bpf_disasm_test.pdb"
  "bpf_disasm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bpf_disasm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
