# Empty dependencies file for bpf_disasm_test.
# This may be replaced when dependencies are built.
