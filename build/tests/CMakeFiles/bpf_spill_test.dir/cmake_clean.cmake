file(REMOVE_RECURSE
  "CMakeFiles/bpf_spill_test.dir/bpf_spill_test.cc.o"
  "CMakeFiles/bpf_spill_test.dir/bpf_spill_test.cc.o.d"
  "bpf_spill_test"
  "bpf_spill_test.pdb"
  "bpf_spill_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bpf_spill_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
