# Empty compiler generated dependencies file for bpf_spill_test.
# This may be replaced when dependencies are built.
