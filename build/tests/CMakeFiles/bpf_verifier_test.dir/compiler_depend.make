# Empty compiler generated dependencies file for bpf_verifier_test.
# This may be replaced when dependencies are built.
