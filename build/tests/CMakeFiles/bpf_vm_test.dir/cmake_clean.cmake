file(REMOVE_RECURSE
  "CMakeFiles/bpf_vm_test.dir/bpf_vm_test.cc.o"
  "CMakeFiles/bpf_vm_test.dir/bpf_vm_test.cc.o.d"
  "bpf_vm_test"
  "bpf_vm_test.pdb"
  "bpf_vm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bpf_vm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
