# Empty compiler generated dependencies file for bpf_vm_test.
# This may be replaced when dependencies are built.
