file(REMOVE_RECURSE
  "CMakeFiles/dispatch_prog_test.dir/dispatch_prog_test.cc.o"
  "CMakeFiles/dispatch_prog_test.dir/dispatch_prog_test.cc.o.d"
  "dispatch_prog_test"
  "dispatch_prog_test.pdb"
  "dispatch_prog_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dispatch_prog_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
