# Empty dependencies file for dispatch_prog_test.
# This may be replaced when dependencies are built.
