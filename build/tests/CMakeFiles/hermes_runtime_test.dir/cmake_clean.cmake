file(REMOVE_RECURSE
  "CMakeFiles/hermes_runtime_test.dir/hermes_runtime_test.cc.o"
  "CMakeFiles/hermes_runtime_test.dir/hermes_runtime_test.cc.o.d"
  "hermes_runtime_test"
  "hermes_runtime_test.pdb"
  "hermes_runtime_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hermes_runtime_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
