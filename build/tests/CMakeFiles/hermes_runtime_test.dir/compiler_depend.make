# Empty compiler generated dependencies file for hermes_runtime_test.
# This may be replaced when dependencies are built.
