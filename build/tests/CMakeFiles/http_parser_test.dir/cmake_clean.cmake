file(REMOVE_RECURSE
  "CMakeFiles/http_parser_test.dir/http_parser_test.cc.o"
  "CMakeFiles/http_parser_test.dir/http_parser_test.cc.o.d"
  "http_parser_test"
  "http_parser_test.pdb"
  "http_parser_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/http_parser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
