file(REMOVE_RECURSE
  "CMakeFiles/multi_lb_test.dir/multi_lb_test.cc.o"
  "CMakeFiles/multi_lb_test.dir/multi_lb_test.cc.o.d"
  "multi_lb_test"
  "multi_lb_test.pdb"
  "multi_lb_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_lb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
