# Empty dependencies file for multi_lb_test.
# This may be replaced when dependencies are built.
