file(REMOVE_RECURSE
  "CMakeFiles/response_parser_test.dir/response_parser_test.cc.o"
  "CMakeFiles/response_parser_test.dir/response_parser_test.cc.o.d"
  "response_parser_test"
  "response_parser_test.pdb"
  "response_parser_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/response_parser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
