file(REMOVE_RECURSE
  "CMakeFiles/wst_test.dir/wst_test.cc.o"
  "CMakeFiles/wst_test.dir/wst_test.cc.o.d"
  "wst_test"
  "wst_test.pdb"
  "wst_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wst_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
