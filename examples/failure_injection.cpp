// Failure injection: wedge a worker with a poisonous request and watch the
// Hermes closed loop react, step by step:
//   t=0.2s  poison request wedges one worker for 3 seconds
//   +50ms   FilterTime notices its loop-entry timestamp is stale ->
//           the worker drops out of the kernel-visible bitmap
//   +500ms  the degradation policy resets a fraction of its connections;
//           clients reconnect and land on healthy workers
//   t=3.2s  the worker recovers, re-enters its loop, and returns to the
//           bitmap automatically
#include <cstdio>

#include "sim/lb.h"

using namespace hermes;

namespace {

void print_state(sim::LbDevice& lb, const char* tag) {
  std::printf("[t=%6.2fs] %-34s bitmap=0x%02lx  conns per worker: ",
              lb.eq().now().s_f(), tag,
              (unsigned long)lb.hermes()->kernel_bitmap());
  for (WorkerId w = 0; w < lb.num_workers(); ++w) {
    std::printf("%ld ", (long)lb.worker(w).live_connections());
  }
  std::printf("\n");
}

}  // namespace

int main() {
  sim::LbDevice::Config cfg;
  cfg.mode = netsim::DispatchMode::HermesMode;
  cfg.num_workers = 4;
  cfg.num_ports = 8;
  cfg.seed = 99;
  cfg.hermes.degradation_after = SimTime::millis(400);
  cfg.hermes.degradation_reset_fraction = 0.5;
  sim::LbDevice lb(cfg);

  std::printf("== failure injection: one worker wedges for 3 s ==\n\n");

  // Background: steady short-request traffic plus some open connections.
  sim::TrafficPattern p;
  p.cps = 600;
  p.requests_per_conn = sim::DistSpec::uniform(2, 5);
  p.request_cost_us = sim::DistSpec::constant(150);
  p.request_gap_us = sim::DistSpec::exponential(50'000);
  lb.start_pattern(p, 0, cfg.num_ports, SimTime::seconds(5));

  // The wedge: a single 3-second request at t=0.2s.
  lb.eq().schedule_at(SimTime::millis(200), [&lb] {
    sim::LbDevice::ConnPlan poison;
    poison.remaining = 1;
    poison.cost_us = sim::DistSpec::constant(3'000'000);
    lb.open_connection(0, poison);
    std::printf("[t=%6.2fs] >>> poison request injected (3s of CPU)\n",
                lb.eq().now().s_f());
  });

  // Degradation sweeps every 100 ms (production: embedded in ops tooling).
  for (int t = 1; t <= 48; ++t) {
    lb.eq().schedule_at(SimTime::millis(100) * t,
                        [&lb] { lb.run_degradation_sweep(); });
  }

  // Observation points.
  for (double at : {0.1, 0.3, 0.4, 0.9, 1.5, 2.5, 3.5, 4.5}) {
    lb.eq().schedule_at(SimTime::from_seconds_f(at),
                        [&lb] { print_state(lb, "state"); });
  }

  lb.eq().run_until(SimTime::seconds(5));

  std::printf("\nresets issued by degradation: %lu\n",
              (unsigned long)lb.totals().degradation_resets);
  std::printf("requests completed: %lu, latency P99 %.2f ms\n",
              (unsigned long)lb.totals().requests_completed,
              (double)lb.latency().p99() / 1e6);
  std::printf("\nReading: the bitmap loses one bit within ~50 ms of the"
              " wedge, its\nconnections shrink after the resets, and the"
              " bit returns once the worker\nre-enters its event loop.\n");
  return 0;
}
