// Live demo: the Hermes closed loop on REAL operating-system primitives.
//
//   * N worker processes fork()ed from the parent, each running a real
//     epoll(7) event loop and a real HTTP/1.1 parser;
//   * the Worker Status Table lives in real shared memory (MAP_SHARED),
//     updated lock-free by the workers exactly as in the paper's Fig. 9;
//   * each worker runs the embedded scheduler (Algo. 1) at the end of its
//     event loop and publishes the selection bitmap through an atomic in
//     shared memory (the stand-in for the eBPF map's kernel sharing);
//   * the parent process plays the kernel: it accept()s TCP connections,
//     mirrors the published bitmap into M_sel, executes the *verified*
//     eBPF dispatch program (Algo. 2) in the bpf VM, and ships the
//     accepted fd to the chosen worker over SCM_RIGHTS — the documented
//     substitution for SO_ATTACH_REUSEPORT_EBPF (DESIGN.md §2).
//
// The demo then acts as its own client: it opens connections, tallies
// which worker served each, wedges one worker via a slow endpoint, and
// shows Hermes steering new connections away until the worker recovers.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <signal.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <time.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "core/control.h"
#include "core/hermes.h"
#include "http/parser.h"
#include "http/response.h"
#include "http/response_parser.h"
#include "netsim/four_tuple.h"
#include "shm/fd_channel.h"
#include "shm/shm_region.h"

using namespace hermes;

namespace {

constexpr uint32_t kWorkers = 4;

SimTime now_mono() {
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return SimTime::nanos(ts.tv_sec * 1'000'000'000ll + ts.tv_nsec);
}

// Shared control block appended after the WST in the shm region: the
// published worker-selection bitmap (the "eBPF map" surrogate).
struct SharedControl {
  std::atomic<uint64_t> bitmap{~0ull};
};

size_t shm_bytes() {
  return core::WorkerStatusTable::required_bytes(kWorkers) + 64;
}
SharedControl* control_of(void* shm_base) {
  return reinterpret_cast<SharedControl*>(
      static_cast<char*>(shm_base) +
      core::WorkerStatusTable::required_bytes(kWorkers));
}

// ---------------------------------------------------------------- worker

[[noreturn]] void worker_main(WorkerId id, void* shm_base, int channel_fd) {
  auto wst = core::WorkerStatusTable::attach(shm_base);
  core::EventLoopHooks hooks(wst, id);
  SharedControl* ctl = control_of(shm_base);

  core::HermesConfig cfg;
  cfg.hang_threshold = SimTime::millis(150);
  core::Scheduler scheduler(cfg);
  core::PolicyEndpoint policy(scheduler);  // Appendix-C control plane

  const int ep = epoll_create1(0);
  struct epoll_event ev {};
  ev.events = EPOLLIN;
  ev.data.fd = channel_fd;
  epoll_ctl(ep, EPOLL_CTL_ADD, channel_fd, &ev);

  std::map<int, http::RequestParser> parsers;

  // The modified epoll event loop of Fig. 9, on the real epoll.
  struct epoll_event events[64];
  for (;;) {
    hooks.on_loop_enter(now_mono());                       // line 12
    const int n = epoll_wait(ep, events, 64, /*timeout=*/50);
    if (n < 0 && errno == EINTR) continue;
    hooks.on_events_returned(n);                           // line 14

    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == channel_fd) {
        // "accept": receive a dispatched connection fd from the kernel.
        struct msghdr msg {};
        char data = 0;
        struct iovec iov {&data, 1};
        alignas(cmsghdr) char ctrl[CMSG_SPACE(sizeof(int))];
        msg.msg_iov = &iov;
        msg.msg_iovlen = 1;
        msg.msg_control = ctrl;
        msg.msg_controllen = sizeof(ctrl);
        const ssize_t r = recvmsg(channel_fd, &msg, 0);
        if (r <= 0) _exit(0);  // parent gone
        int conn_fd = -1;
        for (auto* c = CMSG_FIRSTHDR(&msg); c; c = CMSG_NXTHDR(&msg, c)) {
          if (c->cmsg_type == SCM_RIGHTS) {
            std::memcpy(&conn_fd, CMSG_DATA(c), sizeof(int));
          }
        }
        if (conn_fd >= 0) {
          struct epoll_event cev {};
          cev.events = EPOLLIN;
          cev.data.fd = conn_fd;
          epoll_ctl(ep, EPOLL_CTL_ADD, conn_fd, &cev);
          parsers.emplace(conn_fd, http::RequestParser{});
          hooks.on_conn_open();                            // line 25
        }
      } else {
        // Data on an established connection.
        char buf[4096];
        const ssize_t r = read(fd, buf, sizeof(buf));
        if (r <= 0) {
          epoll_ctl(ep, EPOLL_CTL_DEL, fd, nullptr);
          close(fd);
          parsers.erase(fd);
          hooks.on_conn_close();                           // line 37
        } else {
          auto& parser = parsers[fd];
          std::string_view data{buf, static_cast<size_t>(r)};
          while (!data.empty()) {
            data.remove_prefix(parser.feed(data));
            if (parser.failed()) break;
            if (!parser.has_request()) break;
            const http::Request req = parser.take();
            // A "/stall" request wedges this worker (stuck read loop).
            if (req.path.starts_with("/stall")) {
              usleep(1'500'000);  // 1.5 s inside the loop: a real hang
            }
            http::Response resp;
            if (req.path.starts_with("/policy")) {
              resp = policy.handle(req);  // live scheduler policy updates
            } else {
              resp.set_body("ok");
            }
            resp.add_header("X-Worker", std::to_string(id))
                .add_header("Connection", "close");
            const std::string wire = resp.serialize();
            (void)!write(fd, wire.data(), wire.size());
            // Connection: close — tear the connection down.
            epoll_ctl(ep, EPOLL_CTL_DEL, fd, nullptr);
            close(fd);
            parsers.erase(fd);
            hooks.on_conn_close();
            break;
          }
        }
      }
      hooks.on_event_processed();                          // line 18
    }

    // schedule_and_sync() at the end of the loop (line 20): every worker
    // runs the cascade and publishes the bitmap (last write wins).
    const auto res = scheduler.schedule(wst, now_mono(), 0, kWorkers);
    ctl->bitmap.store(res.bitmap, std::memory_order_release);
  }
}

// --------------------------------------------------------------- client

// Open one connection, send a GET, return the X-Worker id (or -1).
int probe_once(uint16_t port, const char* path) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  struct sockaddr_in addr {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    close(fd);
    return -1;
  }
  char req[128];
  const int len = std::snprintf(req, sizeof(req),
                                "GET %s HTTP/1.1\r\nHost: demo\r\n\r\n", path);
  (void)!write(fd, req, static_cast<size_t>(len));
  char buf[512];
  ssize_t total = 0, r;
  while (total < static_cast<ssize_t>(sizeof(buf) - 1) &&
         (r = read(fd, buf + total, sizeof(buf) - 1 - total)) > 0) {
    total += r;
  }
  close(fd);
  const auto resp =
      http::parse_response({buf, static_cast<size_t>(total)});
  if (!resp || resp->status != 200) return -1;
  const auto worker = resp->header("x-worker");
  return worker ? std::atoi(std::string{*worker}.c_str()) : -1;
}

}  // namespace

int main() {
  signal(SIGPIPE, SIG_IGN);
  setvbuf(stdout, nullptr, _IONBF, 0);
  std::printf("== live demo: real processes, real epoll, real shm WST,"
              " verified eBPF dispatch ==\n\n");

  // Shared memory: WST + control block.
  auto region = shm::ShmRegion::create_anonymous(shm_bytes());
  auto wst = core::WorkerStatusTable::init(region.data(), kWorkers);
  (void)wst;
  new (control_of(region.data())) SharedControl{};

  // Fork workers, each with an SCM_RIGHTS channel.
  std::vector<shm::FdChannel> channels;
  std::vector<pid_t> pids;
  for (WorkerId w = 0; w < kWorkers; ++w) {
    auto [parent_end, child_end] = shm::FdChannel::make_pair();
    const pid_t pid = fork();
    if (pid == 0) {
      parent_end.close();
      worker_main(w, region.data(), child_end.raw_fd());
    }
    child_end.close();
    channels.push_back(std::move(parent_end));
    pids.push_back(pid);
  }

  // The "kernel" side: listening socket + the verified dispatch program.
  core::HermesRuntime::Options opts;
  opts.num_workers = kWorkers;
  core::HermesRuntime runtime(opts);
  std::vector<uint64_t> cookies;
  for (WorkerId w = 0; w < kWorkers; ++w) cookies.push_back(9000 + w);
  core::PortAttachment att = runtime.attach_port(cookies);
  std::printf("dispatch program: %zu eBPF instructions, verifier PASSED\n",
              att.program->insns().size());

  const int listen_fd = socket(AF_INET, SOCK_STREAM, 0);
  const int one = 1;
  setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  struct sockaddr_in addr {};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  if (bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      listen(listen_fd, 128) != 0) {
    std::perror("bind/listen");
    return 1;
  }
  socklen_t alen = sizeof(addr);
  getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr), &alen);
  const uint16_t port = ntohs(addr.sin_port);
  std::printf("acceptor listening on 127.0.0.1:%u, %u workers forked\n\n",
              port, kWorkers);

  SharedControl* ctl = control_of(region.data());

  // Acceptor child: accept -> run dispatch program -> SCM_RIGHTS to worker.
  const pid_t acceptor = fork();
  if (acceptor == 0) {
    uint32_t salt = 0;
    for (;;) {
      struct sockaddr_in peer {};
      socklen_t plen = sizeof(peer);
      const int conn =
          accept(listen_fd, reinterpret_cast<sockaddr*>(&peer), &plen);
      if (conn < 0) {
        if (errno == EINTR) continue;
        _exit(0);
      }
      // Mirror the userspace-published bitmap into M_sel, then run the
      // verified program with the connection's real 4-tuple hash.
      runtime.sel_map().store_u64(
          0, ctl->bitmap.load(std::memory_order_acquire));
      netsim::FourTuple t;
      t.saddr = ntohl(peer.sin_addr.s_addr);
      t.daddr = 0x7f000001;
      t.sport = ntohs(peer.sin_port);
      t.dport = port;
      bpf::ReuseportCtx ctx;
      ctx.hash = netsim::skb_hash(t, salt);
      const auto res = runtime.vm().run(*att.program, ctx);
      WorkerId target;
      if (res.ret == bpf::kRetUseSelection && ctx.selection_made) {
        target = static_cast<WorkerId>(ctx.selected_socket - 9000);
      } else {
        target = netsim::reciprocal_scale(ctx.hash, kWorkers);  // fallback
      }
      channels[target].send_fd(conn);
      close(conn);
      ++salt;
    }
  }

  // ---- client phases ---------------------------------------------------
  usleep(200'000);  // let workers settle

  auto tally = [&](int n, const char* label) {
    std::map<int, int> dist;
    for (int i = 0; i < n; ++i) dist[probe_once(port, "/")]++;
    std::printf("%-34s", label);
    for (WorkerId w = 0; w < kWorkers; ++w) {
      std::printf("  W%u:%-4d", w, dist.count(w) ? dist[w] : 0);
    }
    if (dist.count(-1)) std::printf("  errors:%d", dist[-1]);
    std::printf("\n");
    return dist;
  };

  tally(120, "phase 1: all workers healthy");

  // Wedge one worker: fire a /stall request and don't wait for the reply —
  // the serving worker sleeps 1.5 s inside its event loop (a real hang).
  std::printf("\n>>> sending /stall (wedges one worker for 1.5 s)\n");
  {
    const int fd = socket(AF_INET, SOCK_STREAM, 0);
    struct sockaddr_in a2 = addr;
    if (connect(fd, reinterpret_cast<sockaddr*>(&a2), sizeof(a2)) == 0) {
      const char* req = "GET /stall HTTP/1.1\r\nHost: demo\r\n\r\n";
      (void)!write(fd, req, std::strlen(req));
    }
    usleep(350'000);  // FilterTime threshold (150 ms) comfortably exceeded
    auto dist = tally(120, "phase 2: one worker wedged");
    int starved = 120;
    for (WorkerId w = 0; w < kWorkers; ++w) {
      starved = std::min(starved, dist.count(w) ? dist[w] : 0);
    }
    std::printf("    (least-served worker got %d of 120 — the wedged one;"
                " bitmap=0x%lx)\n",
                starved, (unsigned long)ctl->bitmap.load());
    close(fd);
  }

  usleep(1'700'000);  // let the wedge clear and the bitmap recover
  tally(120, "phase 3: worker recovered");

  // Phase 4: the Appendix-C control plane — query live scheduler policy
  // over HTTP (any worker answers; production would broadcast updates).
  {
    const int fd = socket(AF_INET, SOCK_STREAM, 0);
    struct sockaddr_in a2 = addr;
    std::string policy_json = "(unreachable)";
    if (connect(fd, reinterpret_cast<sockaddr*>(&a2), sizeof(a2)) == 0) {
      const char* req = "GET /policy HTTP/1.1\r\nHost: demo\r\n\r\n";
      (void)!write(fd, req, std::strlen(req));
      char buf[1024];
      ssize_t total = 0, r;
      while (total < (ssize_t)sizeof(buf) - 1 &&
             (r = read(fd, buf + total, sizeof(buf) - 1 - total)) > 0) {
        total += r;
      }
      const auto resp =
          http::parse_response({buf, static_cast<size_t>(total)});
      if (resp) policy_json = resp->body;
    }
    close(fd);
    std::printf("\nphase 4: GET /policy ->  %s\n", policy_json.c_str());
  }

  std::printf("\nshutting down.\n");
  kill(acceptor, SIGKILL);
  for (pid_t p : pids) kill(p, SIGKILL);
  while (wait(nullptr) > 0) {
  }
  return 0;
}
