// Multi-tenant scenario: a Zipf-skewed tenant population running the
// paper's Region2-like case mix (mostly case 4: slow TLS/regex requests,
// plus some of everything else), compared across the three production
// dispatch modes. This is the workload class the paper's introduction
// motivates: many tenants behind one LB, where one worker's overload
// breaks tenant performance isolation.
#include <cstdio>

#include "sim/lb.h"

using namespace hermes;

namespace {

void run_mode(netsim::DispatchMode mode) {
  sim::LbDevice::Config cfg;
  cfg.mode = mode;
  cfg.num_workers = 8;
  cfg.num_ports = 32;
  cfg.seed = 1234;
  sim::LbDevice lb(cfg);

  // 32 tenants, heavily skewed (top-3 carry most traffic, as in the paper's
  // regions), each pinned to a case pattern per the Region2 mix.
  const auto mixes = sim::paper_region_mixes();
  const auto tenants = sim::TenantModel::from_mix(mixes[1], 32, 1.3);
  const SimTime end = SimTime::seconds(15);
  lb.start_tenant_mix(tenants, /*total_cps=*/160, cfg.num_workers, 1.0, end);

  lb.eq().run_until(SimTime::seconds(3));
  lb.take_window_latency();
  lb.sample_now();
  lb.start_sampling(SimTime::seconds(1), end);
  lb.eq().run_until(end);
  auto window = lb.take_window_latency();

  double cpu_sd = 0, conn_sd = 0;
  int n = 0;
  for (const auto& s : lb.samples()) {
    if (s.at <= SimTime::seconds(3)) continue;
    cpu_sd += s.cpu_sd * 100;
    conn_sd += s.conn_sd;
    ++n;
  }
  std::printf("%-18s  avg %7.2f ms   P99 %8.2f ms   CPU-SD %5.1fpp"
              "   conn-SD %6.1f\n",
              netsim::to_string(mode), window.mean() / 1e6,
              (double)window.p99() / 1e6, cpu_sd / n, conn_sd / n);
}

}  // namespace

int main() {
  std::printf("== multi-tenant LB: Region2-style mix, 32 Zipf tenants,"
              " 8 workers ==\n\n");
  run_mode(netsim::DispatchMode::EpollExclusive);
  run_mode(netsim::DispatchMode::Reuseport);
  run_mode(netsim::DispatchMode::HermesMode);
  std::printf("\nReading: exclusive concentrates load (high SD columns);"
              " reuseport fixes\nbalance but feeds busy/hung workers"
              " (latency tail); Hermes balances both.\n");
  return 0;
}
