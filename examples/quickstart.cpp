// Quickstart: assemble the full Hermes closed loop on the simulated
// kernel, push some traffic through it, and inspect what the pieces did.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "sim/lb.h"

using namespace hermes;

int main() {
  // An L7 LB with 8 worker processes and 16 tenant ports, using Hermes
  // (userspace-directed) connection dispatch. The alternatives are
  // EpollExclusive, EpollRr, EpollWakeAll, and Reuseport.
  sim::LbDevice::Config cfg;
  cfg.mode = netsim::DispatchMode::HermesMode;
  cfg.num_workers = 8;
  cfg.num_ports = 16;
  cfg.seed = 42;
  sim::LbDevice lb(cfg);

  // Traffic: the paper's "case 3" model — long-lived connections with many
  // small requests (finance/chat) at moderate load.
  const sim::TrafficPattern pattern =
      sim::case_pattern(/*case_id=*/3, cfg.num_workers, /*load=*/1.5);
  const SimTime end = SimTime::seconds(10);
  lb.start_pattern(pattern, /*first_tenant=*/0, /*tenant_span=*/16, end);

  // Run the discrete-event simulation.
  lb.eq().run_until(end);

  std::printf("== quickstart: Hermes L7 LB, 10 simulated seconds ==\n\n");
  std::printf("connections opened:   %lu (dropped %lu)\n",
              (unsigned long)lb.totals().conns_opened,
              (unsigned long)lb.totals().conns_dropped);
  std::printf("requests completed:   %lu (%.1f kRPS)\n",
              (unsigned long)lb.totals().requests_completed,
              lb.throughput_krps(end));
  std::printf("latency avg / P99:    %.3f ms / %.3f ms\n",
              lb.latency().mean() / 1e6,
              (double)lb.latency().p99() / 1e6);

  std::printf("\nper-worker state (the WST the schedulers read):\n");
  auto& wst = lb.hermes()->wst();
  for (WorkerId w = 0; w < cfg.num_workers; ++w) {
    const auto snap = wst.read(w);
    std::printf("  W%u: connections=%-5ld pending=%-3ld accepts=%-6lu"
                " busy=%.1f%%\n",
                w, (long)snap.connections, (long)snap.pending_events,
                (unsigned long)lb.worker(w).accepts_done(),
                100.0 * (double)lb.worker(w).busy_time().ns() /
                    (double)end.ns());
  }

  std::printf("\nkernel-visible selection bitmap: 0x%02lx"
              " (workers the next SYN may go to)\n",
              (unsigned long)lb.hermes()->kernel_bitmap());
  std::printf("scheduler executions: %lu; decision syncs: %lu\n",
              (unsigned long)lb.hermes()->counters().schedules,
              (unsigned long)lb.hermes()->counters().syncs);

  const auto* group = lb.netstack().group(cfg.first_port);
  std::printf("port %u dispatch: %lu by eBPF program, %lu fallbacks\n",
              cfg.first_port, (unsigned long)group->stats().bpf_selections,
              (unsigned long)group->stats().bpf_fallbacks);
  return 0;
}
