// simctl — a parameterizable command-line driver for the LB simulator.
//
// Run any dispatch mode against any of the paper's traffic cases without
// writing code:
//
//   simctl --mode hermes --case 3 --load 2 --workers 8 --seconds 10
//   simctl --mode exclusive --case 1 --load 3 --ports 256
//   simctl --mode hermes --theta 0.25 --sync-us 10000
//
// Prints a one-page report: latency distribution, throughput, per-worker
// balance, Hermes counters.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "obs/trace_ring.h"
#include "sim/lb.h"

using namespace hermes;

namespace {

struct Args {
  std::string mode = "hermes";
  std::string policy;  // empty = default_policy() (HERMES_POLICY or cascade)
  int case_id = 3;
  double load = 1.0;
  uint32_t workers = 8;
  uint32_t ports = 32;
  double seconds = 10;
  uint64_t seed = 1;
  double theta = 0.5;
  int64_t sync_us = 0;
  bool metrics = false;
  bool data_plane = false;
  int trace_dump = 0;
  std::string trace_json;
  bool help = false;
};

netsim::DispatchMode parse_mode(const std::string& m) {
  if (m == "hermes") return netsim::DispatchMode::HermesMode;
  if (m == "exclusive") return netsim::DispatchMode::EpollExclusive;
  if (m == "reuseport") return netsim::DispatchMode::Reuseport;
  if (m == "rr") return netsim::DispatchMode::EpollRr;
  if (m == "wakeall") return netsim::DispatchMode::EpollWakeAll;
  if (m == "fifo") return netsim::DispatchMode::IoUringFifo;
  if (m == "dispatcher") return netsim::DispatchMode::UserDispatcher;
  std::fprintf(stderr, "unknown mode '%s'\n", m.c_str());
  std::exit(2);
}

Args parse(int argc, char** argv) {
  Args a;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (flag == "--mode") a.mode = next();
    else if (flag == "--policy") a.policy = next();
    else if (flag == "--case") a.case_id = std::atoi(next());
    else if (flag == "--load") a.load = std::atof(next());
    else if (flag == "--workers") a.workers = (uint32_t)std::atoi(next());
    else if (flag == "--ports") a.ports = (uint32_t)std::atoi(next());
    else if (flag == "--seconds") a.seconds = std::atof(next());
    else if (flag == "--seed") a.seed = (uint64_t)std::atoll(next());
    else if (flag == "--theta") a.theta = std::atof(next());
    else if (flag == "--sync-us") a.sync_us = std::atoll(next());
    else if (flag == "--metrics") a.metrics = true;
    else if (flag == "--data-plane") a.data_plane = true;
    else if (flag == "--trace-dump") a.trace_dump = std::atoi(next());
    else if (flag == "--trace-json") a.trace_json = next();
    else if (flag == "--help" || flag == "-h") a.help = true;
    else {
      std::fprintf(stderr, "unknown flag '%s' (try --help)\n", flag.c_str());
      std::exit(2);
    }
  }
  return a;
}

void usage() {
  std::puts(
      "simctl — drive the Hermes LB simulator\n\n"
      "  --mode M       hermes|exclusive|reuseport|rr|wakeall|fifo|dispatcher\n"
      "  --policy P     dispatch policy: cascade|p2c|weighted|queue_est\n"
      "                 (default: HERMES_POLICY env var, else cascade)\n"
      "  --case N       traffic case 1-4 (paper Table 3)\n"
      "  --load X       replay multiplier (1=light, 2=medium, 3=heavy)\n"
      "  --workers N    worker processes / cores (default 8)\n"
      "  --ports N      tenant ports (default 32)\n"
      "  --seconds S    simulated duration (default 10)\n"
      "  --seed N       RNG seed (default 1)\n"
      "  --theta X      Hermes filter offset theta/Avg (default 0.5)\n"
      "  --sync-us N    min gap between decision syncs, 0 = every loop\n"
      "  --metrics      dump the observability registry after the run\n"
      "  --data-plane   enable the byte-level L7 data plane (HTTP wire\n"
      "                 synthesis, keep-alive parsing, zero-copy forward;\n"
      "                 HERMES_ZEROCOPY=0 switches to the copy oracle)\n"
      "  --trace-dump N print the last N trace-ring events\n"
      "  --trace-json P write chrome://tracing JSON of the trace rings to P");
}

}  // namespace

int main(int argc, char** argv) {
  const Args a = parse(argc, argv);
  if (a.help) {
    usage();
    return 0;
  }
  if (a.case_id < 1 || a.case_id > 4 || a.workers < 1 || a.seconds <= 0) {
    std::fprintf(stderr, "invalid arguments (try --help)\n");
    return 2;
  }

  sim::LbDevice::Config cfg;
  cfg.mode = parse_mode(a.mode);
  if (!a.policy.empty()) {
    core::PolicyKind kind;
    if (!core::parse_policy(a.policy, &kind)) {
      std::fprintf(stderr, "unknown policy '%s' (try --help)\n",
                   a.policy.c_str());
      return 2;
    }
    cfg.policy = kind;
  }
  cfg.num_workers = a.workers;
  cfg.num_ports = a.ports;
  cfg.seed = a.seed;
  cfg.hermes.theta_ratio = a.theta;
  cfg.worker.min_sync_interval = SimTime::micros(a.sync_us);
  if (a.data_plane) {
    cfg.data_plane.enabled = true;
    cfg.data_plane.zero_copy = http::zero_copy_enabled_from_env();
  }
  sim::LbDevice lb(cfg);

  const SimTime end = SimTime::from_seconds_f(a.seconds);
  lb.start_pattern(sim::case_pattern(a.case_id, a.workers, a.load), 0,
                   cfg.num_ports, end);
  const SimTime warmup = end / 5;
  lb.eq().run_until(warmup);
  lb.take_window_latency();
  const uint64_t completed0 = lb.totals().requests_completed;
  lb.sample_now();
  lb.eq().run_until(end);
  const auto sample = lb.sample_now();
  const uint64_t done = lb.totals().requests_completed - completed0;
  lb.eq().run_until(end + SimTime::seconds(1));
  auto window = lb.take_window_latency();

  std::printf("mode=%s case=%d load=%.2f workers=%u ports=%u seed=%lu"
              " seconds=%.1f\n\n",
              netsim::to_string(cfg.mode), a.case_id, a.load, a.workers,
              a.ports, (unsigned long)a.seed, a.seconds);
  std::printf("requests   : %lu completed (%.1f kRPS), %lu conns,"
              " %lu drops\n",
              (unsigned long)done,
              (double)done / (end - warmup).s_f() / 1000.0,
              (unsigned long)lb.totals().conns_opened,
              (unsigned long)lb.totals().conns_dropped);
  std::printf("latency    : avg %.3f ms, P50 %.3f, P90 %.3f, P99 %.3f,"
              " P999 %.3f\n",
              window.mean() / 1e6, (double)window.p50() / 1e6,
              (double)window.p90() / 1e6, (double)window.p99() / 1e6,
              (double)window.p999() / 1e6);
  std::printf("cpu        : avg %.1f%%, min %.1f%%, max %.1f%%,"
              " SD %.2f pp\n",
              100 * sample.cpu_avg, 100 * sample.cpu_min,
              100 * sample.cpu_max, 100 * sample.cpu_sd);
  std::printf("workers    :");
  for (WorkerId w = 0; w < lb.num_workers(); ++w) {
    std::printf(" %ld", (long)lb.worker(w).live_connections());
  }
  std::printf("  (live connections)\n");
  if (lb.hermes() != nullptr) {
    std::printf("hermes     : policy=%s, bitmap=0x%lx, %lu schedules,"
                " %lu syncs\n",
                core::to_string(lb.hermes()->policy_kind()),
                (unsigned long)lb.hermes()->kernel_bitmap(),
                (unsigned long)lb.hermes()->counters().schedules,
                (unsigned long)lb.hermes()->counters().syncs);
  }
  if (lb.data_plane() != nullptr) {
    const sim::DataPlane::Totals& dt = lb.data_plane()->totals();
    std::printf("data plane : %lu fwd (%s), %lu B zero-copied, %lu B"
                " copied\n",
                (unsigned long)dt.requests_forwarded,
                lb.data_plane()->config().zero_copy ? "zero-copy"
                                                    : "copy-oracle",
                (unsigned long)dt.bytes_zero_copied,
                (unsigned long)dt.bytes_copied);
    std::printf("backendpool: %lu hits, %lu misses, %lu expiries,"
                " %lu idle now\n",
                (unsigned long)dt.pool_hits, (unsigned long)dt.pool_misses,
                (unsigned long)dt.pool_expiries,
                (unsigned long)lb.data_plane()->pool().idle_total());
    std::printf("streams    : backend fnv 0x%016lx, client fnv 0x%016lx\n",
                (unsigned long)dt.backend_stream_hash,
                (unsigned long)dt.client_stream_hash);
  }
  if (lb.dispatcher() != nullptr) {
    std::printf("dispatcher : %lu dispatched, core %.0f%% busy\n",
                (unsigned long)lb.dispatcher()->dispatched(),
                100.0 * (double)lb.dispatcher()->busy_time().ns() /
                    (double)end.ns());
  }

  if (lb.obs() != nullptr) {
    if (a.metrics) {
      std::printf("\n-- metrics --------------------------------------\n%s",
                  lb.obs()->registry.text_dump().c_str());
      if (lb.hermes() != nullptr) {
        // Why the most recent tier-3 load fell back (counters above say
        // how often; this says what happened last, e.g. a translation-
        // validation rejection with its decoded-window diagnostic).
        const std::string& why = lb.hermes()->vm().jit_fallback_reason();
        std::printf("bpf.jit_fallback_reason: %s\n",
                    why.empty() ? "(none)" : why.c_str());
      }
    }
    if (a.trace_dump > 0) {
      auto events = lb.obs()->traces.merged_snapshot();
      const size_t n = static_cast<size_t>(a.trace_dump);
      if (events.size() > n) {
        events.erase(events.begin(),
                     events.end() - static_cast<ptrdiff_t>(n));
      }
      std::printf("\n-- trace (last %zu events) ----------------------\n%s",
                  events.size(), obs::to_text(events).c_str());
    }
    if (!a.trace_json.empty()) {
      const auto events = lb.obs()->traces.merged_snapshot();
      std::FILE* f = std::fopen(a.trace_json.c_str(), "w");
      if (f == nullptr) {
        std::fprintf(stderr, "cannot open %s\n", a.trace_json.c_str());
        return 1;
      }
      const std::string json = obs::to_chrome_trace(events);
      std::fwrite(json.data(), 1, json.size(), f);
      std::fclose(f);
      std::printf("trace      : %zu events -> %s (chrome://tracing)\n",
                  events.size(), a.trace_json.c_str());
    }
  }
  return 0;
}
