// Trace replay — the paper's own evaluation methodology as a runnable
// example: capture a traffic trace once, then replay the *identical*
// connections at 1x/2x/3x against each dispatch mode. Because every mode
// sees the same per-connection work, differences are pure dispatch.
//
//   trace_replay                 # capture + replay a case-4 trace
//   trace_replay /path/trace.txt # replay an existing trace file
#include <cstdio>
#include <fstream>

#include "sim/trace.h"

using namespace hermes;

int main(int argc, char** argv) {
  sim::Trace trace;
  if (argc > 1) {
    std::ifstream in(argv[1]);
    if (!in || !sim::Trace::load(in, &trace)) {
      std::fprintf(stderr, "cannot load trace '%s'\n", argv[1]);
      return 1;
    }
    std::printf("loaded %zu connections (%.1f s) from %s\n\n", trace.size(),
                trace.duration().s_f(), argv[1]);
  } else {
    // Capture: sample the case-4 pattern (TLS/regex heavy web service).
    sim::Rng rng(2024);
    trace = sim::Trace::record(sim::case_pattern(4, 8, 1.0),
                               SimTime::seconds(8), 16, rng);
    const char* path = "/tmp/hermes_case4.trace";
    std::ofstream out(path);
    trace.save(out);
    std::printf("captured %zu connections (%.1f s) -> %s\n\n", trace.size(),
                trace.duration().s_f(), path);
  }

  std::printf("%-18s |", "mode \\ replay");
  for (double rate : {1.0, 2.0, 3.0}) std::printf("   %.0fx Avg/P99 (ms)   |", rate);
  std::printf("\n");

  for (const auto mode :
       {netsim::DispatchMode::EpollExclusive, netsim::DispatchMode::Reuseport,
        netsim::DispatchMode::HermesMode}) {
    std::printf("%-18s |", netsim::to_string(mode));
    for (double rate : {1.0, 2.0, 3.0}) {
      sim::LbDevice::Config cfg;
      cfg.mode = mode;
      cfg.num_workers = 8;
      cfg.num_ports = 16;
      cfg.seed = 7;
      sim::LbDevice lb(cfg);
      sim::TraceReplayer::replay(trace, lb, rate);
      lb.eq().run_until(trace.duration() / static_cast<int64_t>(rate) +
                        SimTime::seconds(3));
      std::printf("  %8.2f /%8.2f  |", lb.latency().mean() / 1e6,
                  (double)lb.latency().p99() / 1e6);
    }
    std::printf("\n");
  }
  std::printf("\nSame connections, same costs, three dispatch policies —"
              " the latency\ndeltas are the dispatch policy and nothing"
              " else.\n");
  return 0;
}
