// The paper's Appendix B walkthrough (Figs. A3/A4) executed on the real
// components: requests a, b1..b4 where `a` costs twice a `b`, under the
// three dispatch modes. Shows why Hermes spreads the work while exclusive
// piles it on the wait-queue head and reuseport hashes blindly.
#include <cstdio>

#include "core/hermes.h"
#include "netsim/netstack.h"

using namespace hermes;

namespace {

const char* kReq[] = {"a ", "b1", "b2", "b3", "b4"};

void run_mode(netsim::DispatchMode mode) {
  std::printf("--- %s ---\n", netsim::to_string(mode));

  netsim::NetStack::Config nc;
  nc.mode = mode;
  nc.num_workers = 3;
  netsim::NetStack ns(nc);
  ns.add_port(80);

  // Hermes wiring (runtime + per-port attachment).
  core::HermesRuntime::Options opts;
  opts.num_workers = 3;
  opts.config.theta_ratio = 1.0;  // small worker count: wide offset
  core::HermesRuntime rt(opts);
  core::PortAttachment att;
  if (mode == netsim::DispatchMode::HermesMode) {
    std::vector<uint64_t> cookies;
    for (WorkerId w = 0; w < 3; ++w) {
      cookies.push_back(ns.worker_socket(80, w)->cookie());
    }
    att = rt.attach_port(cookies);
    ns.group(80)->attach_program(&rt.vm(), att.program.get());
  }

  // Workers: W1..W3 in paper numbering = 0..2 here. Under the shared-socket
  // (exclusive) mode, an always-idle waiter stub reports which worker the
  // kernel picked.
  struct Stub final : netsim::Waiter {
    WorkerId id;
    bool busy = false;
    WorkerId* last;
    bool try_wake(netsim::ListeningSocket&) override {
      if (busy) return false;
      *last = id;
      return true;
    }
  };
  WorkerId last_woken = kInvalidWorker;
  Stub stubs[3];
  if (!netsim::uses_per_worker_sockets(mode)) {
    for (WorkerId w = 0; w < 3; ++w) {
      stubs[w].id = w;
      stubs[w].last = &last_woken;
      ns.register_waiter(&stubs[w]);  // W3 (id 2) ends up at the head
    }
  }
  WorkerId notified = kInvalidWorker;
  ns.set_socket_ready_fn(
      [&](WorkerId w, netsim::ListeningSocket&) { notified = w; });

  const SimTime t = SimTime::millis(1);
  for (WorkerId w = 0; w < 3; ++w) rt.hooks_for(w).on_loop_enter(t);

  // Requests arrive in order a, b1..b4 from distinct clients.
  for (int i = 0; i < 5; ++i) {
    if (mode == netsim::DispatchMode::HermesMode) {
      rt.schedule_and_sync(0, t);  // userspace scheduler runs between conns
    }
    netsim::FourTuple tuple{0x01010000u + (uint32_t)i * 7919u, 0x0a000001,
                            (uint16_t)(20000 + i * 131), 80};
    const netsim::Connection conn = ns.on_connection_request(tuple, 80, 0, t);

    WorkerId assigned = kInvalidWorker;
    if (netsim::uses_per_worker_sockets(mode)) {
      assigned = notified;
      ns.accept(*ns.worker_socket(80, assigned), assigned);
    } else {
      assigned = last_woken;
      ns.accept(*ns.shared_socket(80), assigned);
      stubs[assigned].busy = true;  // now processing; cleared when done
    }
    (void)conn;

    // Update the WST as the worker would: request `a` = 2 events of cost
    // 2t each; `b` = 2 events of cost t. We track "busy" as pending events.
    const int events = 2;
    rt.hooks_for(assigned).on_conn_open();
    rt.hooks_for(assigned).on_events_returned(events);
    std::printf("  %s -> W%u   (WST after: ", kReq[i], assigned + 1);
    for (WorkerId w = 0; w < 3; ++w) {
      const auto s = rt.wst().read(w);
      std::printf("W%u{busy=%ld,conn=%ld} ", w + 1, (long)s.pending_events,
                  (long)s.connections);
    }
    std::printf(")\n");

    // Cheap requests complete before the next arrival; the expensive `a`
    // keeps its worker busy (and, for Hermes, heavy in the WST).
    if (i > 0) {
      rt.hooks_for(assigned).on_event_processed();
      rt.hooks_for(assigned).on_event_processed();
      rt.hooks_for(assigned).on_loop_enter(t);
      if (!netsim::uses_per_worker_sockets(mode)) {
        stubs[assigned].busy = false;
      }
    }
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("== paper Figs. A3/A4 walkthrough: requests a, b1..b4,"
              " 3 workers ==\n(`a` is expensive and keeps its worker busy"
              " throughout)\n\n");
  run_mode(netsim::DispatchMode::EpollExclusive);
  run_mode(netsim::DispatchMode::Reuseport);
  run_mode(netsim::DispatchMode::HermesMode);
  std::printf("Reading: exclusive funnels b1..b4 to the wait-queue head"
              " while it is idle;\nreuseport may hash b's onto the worker"
              " stuck on `a`; Hermes's WST keeps\nthe busy worker out of"
              " the bitmap, so the b's spread over idle workers.\n");
  return 0;
}
