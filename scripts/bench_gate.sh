#!/usr/bin/env bash
# Bench-regression gate: run the fast bench subset in --json mode, compare
# against the checked-in baseline, and fail on regression. Also self-tests
# that the gate actually trips by re-checking with a 20% injected
# regression (--scale 1.2) and requiring failure.
#
#   scripts/bench_gate.sh                 # compare vs bench/baseline.json
#   scripts/bench_gate.sh --refresh       # rewrite bench/baseline.json
#   BUILD_DIR=build-ninja scripts/bench_gate.sh
#
# The subset is chosen to be fast (<2 min) yet cover the paper's headline
# numbers and the observability-overhead budget:
#   fig12_unit_cost   closed-form unit-cost model (pure determinism check)
#   fig13_load_sd     the Fig. 13 SD table (full sim pipeline, all modes)
#   table5_overhead   component CPU shares + obs_overhead_pct (< 5% budget)
#   analysis_cost     verifier cost table (abstract-interpreter behavior)
#   dispatch_path     per-tier eBPF dispatch cost; gates the deterministic
#                     plan shape and insns/fused/elided-per-dispatch rates
#   sched_path        fast-vs-reference schedule_and_sync cost; gates the
#                     sweep sync/suppression counts and bitmap checksums
#   fleet_scale       multi-LB fleet at 100k conns (FLEET_SCALE_CONNS):
#                     gates connection counts, PCC violation counts and
#                     fleet imbalance; the 1M leg runs nightly in CI
#   proxy_path        zero-copy L7 forwarding vs the copy oracle; gates
#                     bytes-memcpy'd/request, stream-match flags,
#                     allocs/request, and the sim leg's data-plane counts
#                     (the >=2x speedup check is enforced by the bench
#                     binary itself, which exits non-zero on miss)
#   ablation_policy   per-policy dispatch programs (cascade/p2c/weighted/
#                     queue_est); gates insns-per-dispatch + selection
#                     counts over a fixed ctx sweep and the hetero-fleet
#                     Fig. 13-style CPU/conn SD per policy
# Comparison policy (tolerances, wall-clock exclusions) lives in
# bench/bench_gate_check.cc.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build}
BASELINE=${BASELINE:-bench/baseline.json}
GATE_BENCHES=(fig12_unit_cost fig13_load_sd table5_overhead analysis_cost
              dispatch_path sched_path fleet_scale proxy_path
              ablation_policy)

# The gate runs the fleet bench at smoke scale; deterministic metrics scale
# with the connection count, so the baseline is only valid at this value.
export FLEET_SCALE_CONNS=${FLEET_SCALE_CONNS:-100000}

refresh=0
if [ "${1:-}" = "--refresh" ]; then
  refresh=1
  shift
fi

current=$(mktemp --suffix=.json)
trap 'rm -f "$current"' EXIT

# table5's microbenchmarks are not part of the gate's JSON metrics; trim
# them down so the gate stays fast.
OUT="$current" BUILD_DIR="$BUILD_DIR" \
  scripts/bench_report.sh "${GATE_BENCHES[@]}"

if [ $refresh -eq 1 ]; then
  cp "$current" "$BASELINE"
  echo "==> refreshed $BASELINE"
  exit 0
fi

if [ ! -f "$BASELINE" ]; then
  echo "bench_gate: no baseline at $BASELINE" >&2
  echo "bench_gate: run 'scripts/bench_gate.sh --refresh' and commit it" >&2
  exit 2
fi

cmake --build "$BUILD_DIR" -j "$(nproc 2>/dev/null || echo 4)" \
  --target bench_gate_check >/dev/null
CHECK="$BUILD_DIR/bench/bench_gate_check"

echo "==> gate: current vs $BASELINE"
"$CHECK" "$BASELINE" "$current"

echo "==> gate self-test: injected 20% regression must FAIL"
if "$CHECK" "$BASELINE" "$current" --scale 1.2 >/dev/null; then
  echo "bench_gate: SELF-TEST FAILED — a 20% regression passed the gate" >&2
  exit 1
fi
echo "==> gate self-test tripped as expected"
echo "==> bench gate passed"
