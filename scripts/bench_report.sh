#!/usr/bin/env bash
# Run every reproduction bench in --json mode and aggregate the per-bench
# results into one machine-readable report.
#
#   scripts/bench_report.sh                 # all benches -> BENCH_REPORT.json
#   OUT=/tmp/r.json scripts/bench_report.sh fig12_unit_cost fig13_load_sd
#   BUILD_DIR=build-ninja scripts/bench_report.sh
#
# With no arguments the bench list is discovered from the build directory:
# every executable in $BUILD_DIR/bench except the gate comparator. New
# benches registered in bench/CMakeLists.txt are picked up automatically —
# no hand-maintained list to go stale.
#
# The report format is what bench/bench_gate_check.cc consumes:
#   {"schema":1,"benches":[{"bench":"...","metrics":{...}}, ...]}
# bench/baseline.json is simply a checked-in report from a known-good run
# of the gate subset, so refreshing it after an intentional perf change is
# rerunning this script with the gate's bench list.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build}
OUT=${OUT:-BENCH_REPORT.json}
JOBS=${JOBS:-$(nproc 2>/dev/null || echo 4)}

if [ ! -d "$BUILD_DIR" ]; then
  echo "==> configure $BUILD_DIR"
  cmake -B "$BUILD_DIR" -S . >/dev/null
fi

if [ $# -gt 0 ]; then
  BENCHES=("$@")
  echo "==> build ${#BENCHES[@]} benches"
  cmake --build "$BUILD_DIR" -j "$JOBS" --target "${BENCHES[@]}"
else
  # Build everything under bench/ first so discovery sees new binaries.
  echo "==> build bench directory"
  cmake --build "$BUILD_DIR" -j "$JOBS" --target all >/dev/null
  BENCHES=()
  for bin in "$BUILD_DIR"/bench/*; do
    [ -f "$bin" ] && [ -x "$bin" ] || continue
    name=$(basename "$bin")
    case "$name" in
      bench_gate_check|*.json|*.cmake) continue ;;
    esac
    BENCHES+=("$name")
  done
  if [ ${#BENCHES[@]} -eq 0 ]; then
    echo "bench_report: no bench binaries found in $BUILD_DIR/bench" >&2
    exit 1
  fi
  echo "==> discovered ${#BENCHES[@]} benches in $BUILD_DIR/bench"
fi

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

for b in "${BENCHES[@]}"; do
  bin="$BUILD_DIR/bench/$b"
  if [ ! -x "$bin" ]; then
    echo "bench_report: missing binary $bin" >&2
    exit 1
  fi
  echo "==> $b"
  "$bin" --json "$tmp/$b.json" >"$tmp/$b.log" 2>&1 || {
    echo "bench_report: $b failed; last lines of output:" >&2
    tail -20 "$tmp/$b.log" >&2
    exit 1
  }
  if [ ! -s "$tmp/$b.json" ]; then
    echo "bench_report: $b produced no JSON" >&2
    exit 1
  fi
done

# Each per-bench file is a single-line JSON object; join with commas.
{
  printf '{"schema":1,"benches":[\n'
  first=1
  for b in "${BENCHES[@]}"; do
    [ $first -eq 1 ] || printf ',\n'
    first=0
    tr -d '\n' <"$tmp/$b.json"
  done
  printf '\n]}\n'
} >"$OUT"

echo "==> wrote $OUT (${#BENCHES[@]} benches)"
