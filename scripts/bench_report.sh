#!/usr/bin/env bash
# Run every reproduction bench in --json mode and aggregate the per-bench
# results into one machine-readable report.
#
#   scripts/bench_report.sh                 # all benches -> BENCH_5.json
#   OUT=/tmp/r.json scripts/bench_report.sh fig12_unit_cost fig13_load_sd
#   BUILD_DIR=build-ninja scripts/bench_report.sh
#
# The report format is what bench/bench_gate_check.cc consumes:
#   {"schema":1,"benches":[{"bench":"...","metrics":{...}}, ...]}
# bench/baseline.json is simply a checked-in report from a known-good run
# of the gate subset, so refreshing it after an intentional perf change is
# rerunning this script with the gate's bench list.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build}
OUT=${OUT:-BENCH_5.json}
JOBS=${JOBS:-$(nproc 2>/dev/null || echo 4)}

ALL_BENCHES=(
  table1_regions table2_imbalance table3_cases
  fig3_lag_effect fig4_event_cdf fig5_time_cdf fig7_nic_vs_cpu
  fig11_probes fig11_cluster fig12_unit_cost fig13_load_sd
  fig14_filter_ratio fig15_theta_sweep figA5_rules
  table5_overhead analysis_cost dispatch_path sched_path appendixC_sandbox
  ablation_filter_order ablation_bitmap_sync ablation_sched_placement
  ablation_group_locality ablation_backend_pool ablation_user_dispatcher
  ablation_closed_loop ablation_wakeup_policy ablation_two_level
  ablation_syn_retry
)
if [ $# -gt 0 ]; then
  BENCHES=("$@")
else
  BENCHES=("${ALL_BENCHES[@]}")
fi

if [ ! -d "$BUILD_DIR" ]; then
  echo "==> configure $BUILD_DIR"
  cmake -B "$BUILD_DIR" -S . >/dev/null
fi
echo "==> build ${#BENCHES[@]} benches"
cmake --build "$BUILD_DIR" -j "$JOBS" --target "${BENCHES[@]}"

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

for b in "${BENCHES[@]}"; do
  bin="$BUILD_DIR/bench/$b"
  if [ ! -x "$bin" ]; then
    echo "bench_report: missing binary $bin" >&2
    exit 1
  fi
  echo "==> $b"
  "$bin" --json "$tmp/$b.json" >"$tmp/$b.log" 2>&1 || {
    echo "bench_report: $b failed; last lines of output:" >&2
    tail -20 "$tmp/$b.log" >&2
    exit 1
  }
  if [ ! -s "$tmp/$b.json" ]; then
    echo "bench_report: $b produced no JSON" >&2
    exit 1
  fi
done

# Each per-bench file is a single-line JSON object; join with commas.
{
  printf '{"schema":1,"benches":[\n'
  first=1
  for b in "${BENCHES[@]}"; do
    [ $first -eq 1 ] || printf ',\n'
    first=0
    tr -d '\n' <"$tmp/$b.json"
  done
  printf '\n]}\n'
} >"$OUT"

echo "==> wrote $OUT (${#BENCHES[@]} benches)"
