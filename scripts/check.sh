#!/usr/bin/env bash
# Full verification sweep: plain build + all ctest labels, then optional
# sanitizer builds.
#
#   scripts/check.sh                       # plain build, all tests
#   scripts/check.sh address undefined     # plain + ASan + UBSan sweeps
#   scripts/check.sh thread                # plain + TSan sweep
#   LABELS=torture scripts/check.sh        # restrict to one ctest label
#
# Each sanitizer gets its own build tree (build-<san>/) so the trees can be
# reused incrementally across runs.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS=${JOBS:-$(nproc 2>/dev/null || echo 4)}
LABELS=${LABELS:-'unit|property|torture'}

run_suite() {
  local dir=$1 san=$2
  echo "==> configure ${dir} ${san:+(sanitize=$san)}"
  cmake -B "$dir" -S . ${san:+-DHERMES_SANITIZE="$san"} >/dev/null
  echo "==> build ${dir}"
  cmake --build "$dir" -j "$JOBS"
  echo "==> ctest ${dir} -L '${LABELS}'"
  ctest --test-dir "$dir" --output-on-failure -j "$JOBS" -L "$LABELS"
}

run_suite build ""
for san in "$@"; do
  case "$san" in
    address|undefined|thread) run_suite "build-$san" "$san" ;;
    *) echo "unknown sanitizer '$san' (want address|undefined|thread)" >&2
       exit 2 ;;
  esac
done
echo "==> all suites passed"
