#!/usr/bin/env bash
# Full verification sweep: lint, plain build + all ctest labels, a
# ThreadSanitizer pass over the concurrency-sensitive suites, then any
# extra sanitizer sweeps requested on the command line.
#
#   scripts/check.sh                       # lint + plain + TSan concurrency
#   scripts/check.sh address undefined     # ... + ASan + UBSan full sweeps
#   scripts/check.sh thread                # ... + TSan over the full suite
#   LABELS=torture scripts/check.sh        # restrict to one ctest label
#
# Each sanitizer gets its own build tree (build-<san>/) so the trees can be
# reused incrementally across runs.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS=${JOBS:-$(nproc 2>/dev/null || echo 4)}
LABELS=${LABELS:-'unit|property|torture'}
BUILD_DIR=${BUILD_DIR:-build}

# Configure a tree, reusing whatever generator it was first configured
# with. Passing a different -G (or inheriting a CMAKE_GENERATOR env var
# that disagrees with the cache) is a hard CMake error, and CI restores
# cached build trees that may predate a generator switch.
configure_tree() {
  local dir=$1
  shift
  local gen_args=()
  if [ -f "$dir/CMakeCache.txt" ]; then
    local gen
    gen=$(sed -n 's/^CMAKE_GENERATOR:INTERNAL=//p' "$dir/CMakeCache.txt")
    if [ -n "$gen" ]; then
      gen_args=(-G "$gen")
    fi
  fi
  cmake -B "$dir" -S . ${gen_args+"${gen_args[@]}"} "$@" >/dev/null
}

run_suite() {
  local dir=$1 san=$2
  echo "==> configure ${dir} ${san:+(sanitize=$san)}"
  configure_tree "$dir" ${san:+-DHERMES_SANITIZE="$san"}
  echo "==> build ${dir}"
  cmake --build "$dir" -j "$JOBS"
  echo "==> ctest ${dir} -L '${LABELS}'"
  ctest --test-dir "$dir" --output-on-failure -j "$JOBS" -L "$LABELS"
  run_tier_sweep "$dir"
  run_sched_sweep "$dir"
  run_zerocopy_sweep "$dir"
  run_policy_sweep "$dir"
}

# eBPF execution-tier sweep: the suite above ran at the default tier
# (HERMES_BPF_TIER unset = 2, check elision). Re-run the bpf-labeled
# suites pinned to the reference interpreter (0), the threaded plan (1),
# and the native JIT (3) so every tier keeps identical semantics; under a
# sanitizer tree this is also what would catch an unsoundly elided bounds
# check or a codegen slip. Tier 3 silently lands on tier 2 on non-x86-64
# hosts (the tests assert the fallback contract instead). The final leg
# pins tier 3 with the JIT switched off, exercising the
# codegen-unavailable fallback path end to end.
run_tier_sweep() {
  local dir=$1
  for tier in 0 1 3; do
    echo "==> ctest ${dir} -L bpf (HERMES_BPF_TIER=$tier)"
    HERMES_BPF_TIER=$tier \
      ctest --test-dir "$dir" --output-on-failure -j "$JOBS" -L bpf
  done
  echo "==> ctest ${dir} -L jit (HERMES_BPF_TIER=3 HERMES_BPF_JIT=off)"
  HERMES_BPF_TIER=3 HERMES_BPF_JIT=off \
    ctest --test-dir "$dir" --output-on-failure -j "$JOBS" -L jit
  # Translation-validation leg: tier 3 with the validator forced on, over
  # the full bpf-labeled set. Every compile must be proven equivalent to
  # its micro-op stream before running — a rejection (see the validate-
  # labeled suite for the mutation self-test) fails this leg loudly.
  echo "==> ctest ${dir} -L bpf (HERMES_BPF_TIER=3 HERMES_BPF_VALIDATE=1)"
  HERMES_BPF_TIER=3 HERMES_BPF_VALIDATE=1 \
    ctest --test-dir "$dir" --output-on-failure -j "$JOBS" -L bpf
  echo "==> ctest ${dir} -L validate (HERMES_BPF_VALIDATE=1)"
  HERMES_BPF_VALIDATE=1 \
    ctest --test-dir "$dir" --output-on-failure -j "$JOBS" -L validate
}

# Scheduler-path sweep: the suite above ran with the default fast path
# (HERMES_SCHED_FAST unset). Re-run the sched-labeled suites pinned to
# each path so the SoA/branchless rewrite and the reference oracle keep
# bit-identical bitmaps — under a sanitizer tree this is also what would
# catch an out-of-bounds SoA gather or a bad fixed-point clamp.
run_sched_sweep() {
  local dir=$1
  for path in 0 1; do
    echo "==> ctest ${dir} -L sched (HERMES_SCHED_FAST=$path)"
    HERMES_SCHED_FAST=$path \
      ctest --test-dir "$dir" --output-on-failure -j "$JOBS" -L sched
  done
}

# L7 data-plane sweep: the suite above ran with the default forwarding
# mode (HERMES_ZEROCOPY unset = zero-copy). Re-run the http-labeled
# suites pinned to each mode so the splice-style path and the copying
# oracle keep identical parse results and bit-identical byte streams.
# Under an ASan tree the zero-copy leg is also the use-after-free gate
# for the refcounted iobuf segments that parsed header views borrow from.
run_zerocopy_sweep() {
  local dir=$1
  for zc in 0 1; do
    echo "==> ctest ${dir} -L http (HERMES_ZEROCOPY=$zc)"
    HERMES_ZEROCOPY=$zc \
      ctest --test-dir "$dir" --output-on-failure -j "$JOBS" -L http
  done
}

# Scheduling-policy sweep: the suite above ran with the default policy
# (HERMES_POLICY unset = cascade). Re-run the policy-labeled suites
# pinned to each shipped policy so every generated dispatch program
# attaches (prove-before-load), dispatches, and keeps its userspace
# mirror honest under the env-selection path — under a sanitizer tree
# this is also what would catch an aux-map overrun in a policy program.
run_policy_sweep() {
  local dir=$1
  for pol in cascade p2c weighted queue_est; do
    echo "==> ctest ${dir} -L policy (HERMES_POLICY=$pol)"
    HERMES_POLICY=$pol \
      ctest --test-dir "$dir" --output-on-failure -j "$JOBS" -L policy
  done
}

# TSan preset: only the suites that exercise cross-thread code (the WST
# counters, scheduler reads against live writers, the seeded interleaving
# explorer, shared-memory rings, the control plane, the observability
# layer's sharded counters and trace-ring readers). Much cheaper than a
# full TSan sweep, and it is where a data race would actually live.
TSAN_TESTS=(wst_test scheduler_test torture_interleave_test shm_test
            control_test obs_test)
run_tsan_concurrency() {
  local dir=${BUILD_DIR}-thread
  echo "==> configure ${dir} (sanitize=thread, concurrency suites)"
  configure_tree "$dir" -DHERMES_SANITIZE=thread
  echo "==> build ${dir}: ${TSAN_TESTS[*]}"
  cmake --build "$dir" -j "$JOBS" --target "${TSAN_TESTS[@]}"
  for t in "${TSAN_TESTS[@]}"; do
    echo "==> tsan ${t}"
    TSAN_OPTIONS="halt_on_error=1 ${TSAN_OPTIONS:-}" "$dir/tests/$t"
  done
}

scripts/lint.sh
run_suite "$BUILD_DIR" ""
run_tsan_concurrency
for san in "$@"; do
  case "$san" in
    address|undefined|thread) run_suite "${BUILD_DIR}-$san" "$san" ;;
    *) echo "unknown sanitizer '$san' (want address|undefined|thread)" >&2
       exit 2 ;;
  esac
done
echo "==> all suites passed"
