#!/usr/bin/env bash
# clang-tidy over every tracked translation unit, driven by the CMake
# compilation database (CMAKE_EXPORT_COMPILE_COMMANDS is on by default).
#
#   scripts/lint.sh              # lint all tracked .cc files
#   scripts/lint.sh src/bpf      # lint one subtree
#   BUILD_DIR=build-tidy scripts/lint.sh
#
# Checks and naming rules live in .clang-tidy at the repo root. When
# clang-tidy is not installed (minimal containers ship only gcc) the
# script reports that and exits 0 so scripts/check.sh still passes — the
# gate is advisory where the tool exists, absent where it does not.
set -euo pipefail
cd "$(dirname "$0")/.."

TIDY=${CLANG_TIDY:-clang-tidy}
if ! command -v "$TIDY" >/dev/null 2>&1; then
  echo "lint: $TIDY not found in PATH; skipping (install clang-tidy to enable)"
  exit 0
fi

BUILD_DIR=${BUILD_DIR:-build}
JOBS=${JOBS:-$(nproc 2>/dev/null || echo 4)}

if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
  echo "==> configure $BUILD_DIR (for compile_commands.json)"
  cmake -B "$BUILD_DIR" -S . >/dev/null
fi

scope=${1:-}
# Two explicit branches: the old `cond && grep || cat` pipeline silently
# fell back to "all files" semantics on a no-match scope, and under
# pipefail a no-match grep poisoned the whole pipeline's status.
if [ -n "$scope" ]; then
  mapfile -t files < <(git ls-files '*.cc' | grep -v '^third_party/' |
                       { grep "^$scope" || true; })
else
  mapfile -t files < <(git ls-files '*.cc' | grep -v '^third_party/')
fi
if [ ${#files[@]} -eq 0 ]; then
  echo "lint: no files match '${scope}'"
  exit 0
fi

# Without -header-filter clang-tidy only diagnoses the .cc under
# analysis, so header-only code (codegen.h emitters, vm.h inline
# accessors, the x86 decoder's public structs) never got linted. Scope
# it to our own tree: third_party and system headers stay excluded.
HEADER_FILTER=${HEADER_FILTER:-'.*/(src|examples|tests|bench)/.*'}

echo "==> $TIDY -p $BUILD_DIR over ${#files[@]} files (${JOBS} jobs)"
printf '%s\n' "${files[@]}" |
  xargs -P "$JOBS" -n 8 "$TIDY" -p "$BUILD_DIR" --quiet \
    -header-filter="$HEADER_FILTER"
echo "==> lint clean"
