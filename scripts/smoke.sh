#!/usr/bin/env bash
# Fast pre-push smoke: build, run the unit-label tests, and exercise the
# simctl observability surface (metrics dump, trace dump, chrome trace
# export). A few seconds on a warm build tree — run it before pushing;
# CI runs the full sweep (scripts/check.sh) and the bench gate.
#
#   scripts/smoke.sh
#   BUILD_DIR=build-ninja scripts/smoke.sh
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build}
JOBS=${JOBS:-$(nproc 2>/dev/null || echo 4)}

if [ ! -d "$BUILD_DIR" ]; then
  echo "==> configure $BUILD_DIR"
  cmake -B "$BUILD_DIR" -S . >/dev/null
fi
echo "==> build"
cmake --build "$BUILD_DIR" -j "$JOBS"

echo "==> ctest -L unit"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS" -L unit

echo "==> simctl observability smoke"
trace_json=$(mktemp --suffix=.json)
trap 'rm -f "$trace_json"' EXIT
"$BUILD_DIR/examples/simctl" --mode hermes --case 3 --seconds 2 \
  --metrics --trace-dump 5 --trace-json "$trace_json" >/dev/null
# The chrome trace must be non-empty valid JSON (jq if present).
[ -s "$trace_json" ]
if command -v jq >/dev/null 2>&1; then
  jq -e '.traceEvents | length > 0' "$trace_json" >/dev/null
fi

echo "==> smoke passed"
