#include "bpf/analysis/interp.h"

#include <algorithm>
#include <map>
#include <optional>
#include <sstream>

#include "util/check.h"

namespace hermes::bpf::analysis {

namespace {

constexpr uint64_t kU32Max = 0xffffffffull;

ValueRange unknown32() { return ValueRange::bounded(0, kU32Max); }

// Range of a zero-extended `size`-byte load.
ValueRange size_bounded(int size) {
  if (size >= 8) return ValueRange::unknown();
  return ValueRange::bounded(0, (uint64_t{1} << (8 * size)) - 1);
}

Cell data_cell(const ValueRange& v32) {
  return Cell{Cell::Tag::Data, v32, RegState{}};
}

Cell unknown_cell() { return data_cell(unknown32()); }

// value = lo + (hi << 32), with both halves in [0, 2^32). The interval
// combination is exact for independent halves and a sound bound otherwise.
ValueRange combine64(const ValueRange& lo, const ValueRange& hi) {
  ValueRange r = ValueRange::unknown();
  r.tn = Tnum{(lo.tn.value & kU32Max) | (hi.tn.value << 32),
              (lo.tn.mask & kU32Max) | (hi.tn.mask << 32)};
  r.umin = lo.umin + (hi.umin << 32);
  r.umax = lo.umax + (hi.umax << 32);
  if (!r.sync()) return ValueRange::unknown();
  return r;
}

// ---- lattice operations ----

RegState join_reg(const RegState& a, const RegState& b, bool widen) {
  if (a == b) return a;
  if (a.kind != b.kind) return RegState{};  // mismatched kinds: unusable
  auto joined_val = [&] {
    return widen ? ValueRange::widen(a.val, b.val)
                 : ValueRange::join(a.val, b.val);
  };
  switch (a.kind) {
    case Kind::Scalar:
      return RegState::scalar(joined_val());
    case Kind::PtrStack:
    case Kind::PtrCtx:
    case Kind::PtrMapValue:
    case Kind::PtrMapValueOrNull:
      if (a.delta != b.delta || a.map_slot != b.map_slot) return RegState{};
      return RegState{a.kind, a.delta, a.map_slot, joined_val()};
    case Kind::MapHandle:
      return a.map_slot == b.map_slot ? a : RegState{};
    case Kind::Uninit:
      return RegState{};
  }
  return RegState{};
}

Cell join_cell(const Cell& a, const Cell& b, bool widen) {
  if (a == b) return a;
  if (a.tag != b.tag) return unknown_cell();
  switch (a.tag) {
    case Cell::Tag::Data:
      return data_cell(widen ? ValueRange::widen(a.v32, b.v32)
                             : ValueRange::join(a.v32, b.v32));
    case Cell::Tag::SpillLo: {
      RegState j = join_reg(a.spilled, b.spilled, widen);
      if (j.kind == Kind::Uninit) return unknown_cell();
      return Cell{Cell::Tag::SpillLo, ValueRange::konst(0), j};
    }
    case Cell::Tag::SpillHi:
      return a;
  }
  return unknown_cell();
}

// Cell-wise joins can break SpillLo/SpillHi pairing (one half degrades to
// Data); restore the invariant by degrading orphaned halves.
void normalize_spill_pairs(std::array<Cell, kNumCells>& cells) {
  for (size_t i = 0; i < kNumCells; ++i) {
    if (cells[i].tag == Cell::Tag::SpillLo &&
        (i + 1 >= kNumCells || cells[i + 1].tag != Cell::Tag::SpillHi)) {
      cells[i] = unknown_cell();
    }
    if (cells[i].tag == Cell::Tag::SpillHi &&
        (i == 0 || cells[i - 1].tag != Cell::Tag::SpillLo)) {
      cells[i] = unknown_cell();
    }
  }
}

bool merge_into(AbsState& dst, const AbsState& src, bool widen) {
  if (!src.reachable) return false;
  if (!dst.reachable) {
    dst = src;
    return true;
  }
  const AbsState before = dst;
  for (size_t i = 0; i < dst.regs.size(); ++i) {
    dst.regs[i] = join_reg(dst.regs[i], src.regs[i], widen);
  }
  for (size_t i = 0; i < kNumCells; ++i) {
    dst.cells[i] = join_cell(dst.cells[i], src.cells[i], widen);
  }
  normalize_spill_pairs(dst.cells);
  return !(dst == before);
}

bool reg_subsumes(const RegState& a, const RegState& b) {
  if (b.kind == Kind::Uninit) return true;  // top
  if (a.kind != b.kind) return false;
  switch (a.kind) {
    case Kind::Scalar:
      return ValueRange::subsumes(a.val, b.val);
    case Kind::PtrStack:
    case Kind::PtrCtx:
    case Kind::PtrMapValue:
    case Kind::PtrMapValueOrNull:
      return a.delta == b.delta && a.map_slot == b.map_slot &&
             ValueRange::subsumes(a.val, b.val);
    case Kind::MapHandle:
      return a.map_slot == b.map_slot;
    case Kind::Uninit:
      return true;
  }
  return false;
}

bool cell_subsumes(const Cell& a, const Cell& b) {
  if (b.tag == Cell::Tag::Data && b.v32.umin == 0 && b.v32.umax >= kU32Max) {
    return true;  // fully unknown data covers anything loadable
  }
  if (a.tag != b.tag) return false;
  switch (a.tag) {
    case Cell::Tag::Data:
      return ValueRange::subsumes(a.v32, b.v32);
    case Cell::Tag::SpillLo:
      return reg_subsumes(a.spilled, b.spilled);
    case Cell::Tag::SpillHi:
      return true;
  }
  return false;
}

// a ⊑ b; used for the loop no-progress (fixpoint) test. Conservative
// false negatives only cost extra iterations up to the trip bound.
bool state_subsumes(const AbsState& a, const AbsState& b) {
  if (!a.reachable) return true;
  if (!b.reachable) return false;
  for (size_t i = 0; i < a.regs.size(); ++i) {
    if (!reg_subsumes(a.regs[i], b.regs[i])) return false;
  }
  for (size_t i = 0; i < kNumCells; ++i) {
    if (!cell_subsumes(a.cells[i], b.cells[i])) return false;
  }
  return true;
}

// ---- helper signatures ----

struct ArgSpec {
  Kind kind;
  // PtrStack args: bytes that must be readable behind the pointer;
  // -1 means the value size of the map passed in r1.
  int buf_bytes = 0;
};

struct HelperSig {
  HelperId id;
  int num_args;
  ArgSpec arg[5];
  std::optional<MapType> map_arg_type;  // constraint on MapHandle args
  Kind ret;
};

const HelperSig* find_sig(int64_t imm) {
  static const HelperSig kSigs[] = {
      {HelperId::MapLookupElem, 2,
       {{Kind::MapHandle}, {Kind::PtrStack, 4}},
       MapType::Array, Kind::PtrMapValueOrNull},
      {HelperId::MapUpdateElem, 4,
       {{Kind::MapHandle}, {Kind::PtrStack, 4}, {Kind::PtrStack, -1},
        {Kind::Scalar}},
       MapType::Array, Kind::Scalar},
      {HelperId::SkSelectReuseport, 4,
       {{Kind::PtrCtx}, {Kind::MapHandle}, {Kind::PtrStack, 4},
        {Kind::Scalar}},
       MapType::ReuseportSockArray, Kind::Scalar},
      {HelperId::KtimeGetNs, 0, {}, std::nullopt, Kind::Scalar},
      {HelperId::GetPrandomU32, 0, {}, std::nullopt, Kind::Scalar},
  };
  for (const auto& s : kSigs) {
    if (static_cast<int64_t>(s.id) == imm) return &s;
  }
  return nullptr;
}

int access_size(Op op) {
  switch (op) {
    case Op::LdxB: case Op::StxB: case Op::StB: return 1;
    case Op::LdxH: case Op::StxH: case Op::StH: return 2;
    case Op::LdxW: case Op::StxW: case Op::StW: return 4;
    case Op::LdxDW: case Op::StxDW: case Op::StDW: return 8;
    default: return 0;
  }
}

bool is_cond_jump(Op op) {
  return op >= Op::JeqReg && op <= Op::JsetImm;
}

// ---- the analyzer ----

class Analyzer {
 public:
  Analyzer(const Program& prog, std::span<Map* const> maps,
           const AnalysisOptions& opts)
      : prog_(prog), maps_(maps), opts_(opts) {}

  AnalysisResult run() {
    AnalysisResult res;
    if (prog_.empty()) return fail(res, 0, "empty program");
    if (prog_.size() > kMaxProgramLen) {
      return fail(res, 0, "program too long");
    }
    if (auto e = structural_checks(); !e.empty()) {
      return fail(res, err_pc_, e);
    }
    if (auto e = discover_loops(); !e.empty()) {
      return fail(res, err_pc_, e);
    }

    states_.assign(prog_.size(), AbsState{});
    merge_counts_.assign(prog_.size(), 0);
    visited_.assign(prog_.size(), 0);
    AbsState entry;
    entry.reachable = true;
    entry.regs[1] = RegState::pointer(Kind::PtrCtx, 0, -1);
    entry.regs[kFramePointer] = RegState::pointer(Kind::PtrStack, 0, -1);
    states_[0] = entry;

    if (auto e = scan(0, prog_.size() - 1, SIZE_MAX); !e.empty()) {
      return fail(res, err_pc_, e);
    }

    res.ok = true;
    res.analysis_steps = steps_;
    res.dead_edges = dead_edges_;
    res.max_loop_trips = max_trips_;
    for (size_t pc = 0; pc < prog_.size(); ++pc) {
      if (!visited_[pc]) ++res.dead_insns;
    }
    res.ret_reachable = ret_reachable_;
    res.ret = ret_;
    for (auto& [pc, info] : helpers_) res.helper_calls.push_back(info);
    for (auto& [pc, info] : mem_facts_) res.mem_accesses.push_back(info);
    return res;
  }

 private:
  struct LoopFrame {
    size_t header;
    size_t end;
    AbsState back_state;
  };

  AnalysisResult fail(AnalysisResult& res, size_t pc, const std::string& msg) {
    res.ok = false;
    res.error = msg;
    res.error_pc = pc;
    res.analysis_steps = steps_;
    if (pc < states_.size() && states_[pc].reachable) {
      res.error_state = dump_regs(states_[pc]);
    }
    return res;
  }

  static std::string dump_regs(const AbsState& st) {
    std::ostringstream os;
    for (int i = 0; i < kNumRegs; ++i) {
      if (st.regs[i].kind == Kind::Uninit) continue;
      os << "r" << i << " = " << to_string(st.regs[i]) << "\n";
    }
    return os.str();
  }

  // Successors of pc, assuming structural checks passed.
  void successors(size_t pc, std::vector<size_t>* out) const {
    out->clear();
    const Insn& in = prog_[pc];
    if (in.op == Op::Exit) return;
    if (in.op == Op::Ja) {
      out->push_back(pc + 1 + static_cast<size_t>(in.off));
      return;
    }
    out->push_back(pc + 1);
    if (is_cond_jump(in.op)) {
      const size_t t = pc + 1 + static_cast<size_t>(in.off);
      if (t != pc + 1) out->push_back(t);
    }
  }

  std::string structural_checks() {
    // Register fields must name real registers: the VM indexes regs[] by
    // both fields unconditionally.
    for (size_t pc = 0; pc < prog_.size(); ++pc) {
      if (prog_[pc].dst >= kNumRegs || prog_[pc].src >= kNumRegs) {
        err_pc_ = pc;
        return "bad register field";
      }
    }
    // Every successor must land inside the program.
    for (size_t pc = 0; pc < prog_.size(); ++pc) {
      const Insn& in = prog_[pc];
      if (in.op == Op::Exit) continue;
      if (in.op == Op::Ja || is_cond_jump(in.op)) {
        const int64_t t =
            static_cast<int64_t>(pc) + 1 + static_cast<int64_t>(in.off);
        if (t < 0 || t >= static_cast<int64_t>(prog_.size())) {
          err_pc_ = pc;
          return "jump out of bounds";
        }
      }
      if (in.op != Op::Ja && pc + 1 >= prog_.size()) {
        err_pc_ = pc;
        return "fall-through off program end";
      }
    }
    // Structural reachability (kernel check_cfg): dead code is rejected
    // outright; range-pruned branches are handled later by the abstract
    // pass and are legal.
    std::vector<char> seen(prog_.size(), 0);
    std::vector<size_t> stack{0};
    std::vector<size_t> succ;
    seen[0] = 1;
    while (!stack.empty()) {
      const size_t pc = stack.back();
      stack.pop_back();
      successors(pc, &succ);
      for (size_t t : succ) {
        if (!seen[t]) {
          seen[t] = 1;
          stack.push_back(t);
        }
      }
    }
    for (size_t pc = 0; pc < prog_.size(); ++pc) {
      if (!seen[pc]) {
        err_pc_ = pc;
        return "unreachable instruction";
      }
    }
    return {};
  }

  std::string discover_loops() {
    is_header_.assign(prog_.size(), 0);
    header_end_.assign(prog_.size(), 0);
    std::vector<size_t> succ;
    for (size_t pc = 0; pc < prog_.size(); ++pc) {
      successors(pc, &succ);
      for (size_t t : succ) {
        if (t <= pc) {  // backward edge: t is a loop header
          is_header_[t] = 1;
          header_end_[t] = std::max(header_end_[t], pc);
        }
      }
    }
    // Regions must properly nest so each loop can be analyzed as a unit.
    std::vector<std::pair<size_t, size_t>> regions;
    for (size_t h = 0; h < prog_.size(); ++h) {
      if (is_header_[h]) regions.emplace_back(h, header_end_[h]);
    }
    for (size_t i = 0; i < regions.size(); ++i) {
      for (size_t j = i + 1; j < regions.size(); ++j) {
        const auto [h1, e1] = regions[i];
        const auto [h2, e2] = regions[j];  // h2 > h1
        if (h2 <= e1 && e2 > e1) {
          err_pc_ = h2;
          return "improperly nested loops (overlapping backward-edge "
                 "regions)";
        }
      }
    }
    // Loops may only be entered through their header.
    for (size_t pc = 0; pc < prog_.size(); ++pc) {
      successors(pc, &succ);
      for (size_t t : succ) {
        for (const auto& [h, e] : regions) {
          if (t > h && t <= e && (pc < h || pc > e)) {
            err_pc_ = pc;
            return "jump into the middle of a loop (region entered other "
                   "than at its header)";
          }
        }
      }
    }
    return {};
  }

  // Process pcs [lo, hi] in order. Forward edges always target a higher
  // pc, so a single in-order pass is a complete fixpoint for the DAG
  // portion; nested loop headers recurse into analyze_loop.
  std::string scan(size_t lo, size_t hi, size_t active_header) {
    for (size_t pc = lo; pc <= hi;) {
      if (is_header_[pc] && pc != active_header) {
        if (auto e = analyze_loop(pc); !e.empty()) return e;
        pc = header_end_[pc] + 1;
        continue;
      }
      if (states_[pc].reachable) {
        if (++steps_ > opts_.max_analysis_steps) {
          err_pc_ = pc;
          return "analysis step budget exceeded";
        }
        visited_[pc] = 1;
        if (auto e = step(pc); !e.empty()) {
          err_pc_ = pc;
          return e;
        }
      }
      ++pc;
    }
    return {};
  }

  // Per-iteration loop analysis: the header state of iteration k+1 is the
  // back-edge state of iteration k (replaced, not merged). Accepted when
  // the back edge becomes infeasible; rejected on an abstract fixpoint
  // (no progress) or when the trip bound runs out.
  std::string analyze_loop(size_t h) {
    const size_t end = header_end_[h];
    if (!states_[h].reachable) return {};  // dead loop: body stays dead
    AbsState header_state = states_[h];
    LoopFrame frame{h, end, AbsState{}};
    for (uint32_t trip = 0;; ++trip) {
      if (trip >= opts_.max_trip_count) {
        err_pc_ = h;
        return "backward edge: cannot prove the loop exits within the "
               "trip bound (" +
               std::to_string(opts_.max_trip_count) + " iterations)";
      }
      for (size_t p = h; p <= end; ++p) {
        states_[p] = AbsState{};
        merge_counts_[p] = 0;
      }
      states_[h] = header_state;
      frame.back_state = AbsState{};
      frames_.push_back(&frame);
      auto err = scan(h, end, h);
      frames_.pop_back();
      if (!err.empty()) return err;
      if (!frame.back_state.reachable) {
        max_trips_ = std::max(max_trips_, trip + 1);
        return {};
      }
      if (state_subsumes(frame.back_state, header_state)) {
        err_pc_ = h;
        return "backward edge: loop makes no abstract progress toward "
               "exit (fixpoint at the header)";
      }
      header_state = frame.back_state;
    }
  }

  void propagate(size_t from, size_t target, const AbsState& st) {
    if (!st.reachable) return;
    if (target <= from) {  // backward edge: accumulate on the open frame
      for (auto it = frames_.rbegin(); it != frames_.rend(); ++it) {
        if ((*it)->header == target) {
          merge_into((*it)->back_state, st, /*widen=*/false);
          return;
        }
      }
      HERMES_CHECK_MSG(false, "bpf analysis: back edge without open frame");
    }
    const bool widen = ++merge_counts_[target] > opts_.widen_after;
    merge_into(states_[target], st, widen);
  }

  // ---- memory helpers ----

  // Validate an access through `base` and return the fp-frame byte span
  // [*abs_lo, *abs_last + size) for stack pointers (0 = frame base,
  // kStackSize = r10). Uses 128-bit arithmetic so unbounded variable
  // offsets simply fail the bounds test instead of wrapping.
  std::string check_mem(const RegState& base, int32_t off, int size,
                        bool is_write, int64_t* abs_lo = nullptr,
                        int64_t* abs_last = nullptr) {
    const auto fixed = static_cast<__int128>(base.delta) + off;
    const __int128 lo = fixed + base.val.umin;
    const __int128 hi = fixed + base.val.umax;  // start of last access
    auto detail = [&]() -> std::string {
      if (base.val.is_const()) return "";
      std::ostringstream os;
      os << " (variable offset " << to_string(base.val) << ")";
      return os.str();
    };
    switch (base.kind) {
      case Kind::PtrStack: {
        if (lo < -static_cast<int64_t>(kStackSize) || hi + size > 0) {
          return "stack access out of bounds" + detail();
        }
        if (abs_lo != nullptr) {
          *abs_lo = static_cast<int64_t>(kStackSize) +
                    static_cast<int64_t>(lo);
          *abs_last = static_cast<int64_t>(kStackSize) +
                      static_cast<int64_t>(hi);
        }
        return {};
      }
      case Kind::PtrCtx:
        if (is_write) return "context is read-only";
        if (lo < 0 || hi + size > static_cast<int64_t>(kCtxReadableBytes)) {
          return "context access out of bounds" + detail();
        }
        return {};
      case Kind::PtrMapValue: {
        const Map* m = maps_[static_cast<size_t>(base.map_slot)];
        if (lo < 0 || hi + size > static_cast<int64_t>(m->value_size())) {
          return "map value access out of bounds" + detail();
        }
        return {};
      }
      case Kind::PtrMapValueOrNull:
        return "dereference of possibly-null map value (missing null "
               "check)";
      default:
        return "memory access via non-pointer";
    }
  }

  // Degrade cell `i` to unknown data; if it was half of a spill pair the
  // partner half degrades too (partial overwrite invalidates the spill).
  static void degrade_cell(AbsState& st, size_t i) {
    if (i >= kNumCells) return;
    const Cell::Tag tag = st.cells[i].tag;
    if (tag == Cell::Tag::SpillLo && i + 1 < kNumCells &&
        st.cells[i + 1].tag == Cell::Tag::SpillHi) {
      st.cells[i + 1] = unknown_cell();
    }
    if (tag == Cell::Tag::SpillHi && i > 0 &&
        st.cells[i - 1].tag == Cell::Tag::SpillLo) {
      st.cells[i - 1] = unknown_cell();
    }
    st.cells[i] = unknown_cell();
  }

  static void clobber_cells(AbsState& st, int64_t abs_lo, int64_t abs_last,
                            int size) {
    const int64_t first = abs_lo / 4;
    const int64_t last = (abs_last + size - 1) / 4;
    for (int64_t i = first; i <= last; ++i) {
      degrade_cell(st, static_cast<size_t>(i));
    }
  }

  static RegState load_stack(const AbsState& st, int64_t abs, int size) {
    const auto i = static_cast<size_t>(abs / 4);
    if (size == 8 && abs % 8 == 0) {
      const Cell& lo = st.cells[i];
      const Cell& hi = st.cells[i + 1];
      if (lo.tag == Cell::Tag::SpillLo && hi.tag == Cell::Tag::SpillHi) {
        return lo.spilled;  // fill restores the spilled register exactly
      }
      if (lo.tag == Cell::Tag::Data && hi.tag == Cell::Tag::Data) {
        return RegState::scalar(combine64(lo.v32, hi.v32));
      }
      return RegState::scalar(ValueRange::unknown());
    }
    if (size <= 4 && abs / 4 == (abs + size - 1) / 4) {
      const Cell& c = st.cells[i];
      if (c.tag == Cell::Tag::Data) {
        if (size == 4) return RegState::scalar(c.v32);
        const auto sh = static_cast<uint64_t>(8 * (abs % 4));
        ValueRange v =
            ValueRange::alu(Op::RshImm, c.v32, ValueRange::konst(sh));
        v = ValueRange::alu(Op::AndImm, v,
                            ValueRange::konst((uint64_t{1} << (8 * size)) -
                                              1));
        return RegState::scalar(v);
      }
    }
    // Misaligned, straddling, or over spill halves: the bytes are real but
    // untracked (see DESIGN.md on spilled-pointer bytes).
    return RegState::scalar(size_bounded(size));
  }

  static void store_stack_scalar(AbsState& st, int64_t abs, int size,
                                 const ValueRange& v) {
    const auto i = static_cast<size_t>(abs / 4);
    if (size == 8 && abs % 8 == 0) {
      degrade_cell(st, i);
      degrade_cell(st, i + 1);
      st.cells[i] =
          Cell{Cell::Tag::SpillLo, ValueRange::konst(0), RegState::scalar(v)};
      st.cells[i + 1] = Cell{Cell::Tag::SpillHi, ValueRange::konst(0), {}};
      return;
    }
    if (size == 8 && abs % 4 == 0) {
      degrade_cell(st, i);
      degrade_cell(st, i + 1);
      st.cells[i] = data_cell(v.cast32());
      st.cells[i + 1] = data_cell(
          ValueRange::alu(Op::RshImm, v, ValueRange::konst(32)).cast32());
      return;
    }
    if (size == 4 && abs % 4 == 0) {
      degrade_cell(st, i);
      st.cells[i] = data_cell(v.cast32());
      return;
    }
    clobber_cells(st, abs, abs, size);  // sub-word or misaligned
  }

  // ---- the transfer function ----

  std::string step(size_t pc) {
    const Insn& in = prog_[pc];
    AbsState out = states_[pc];
    auto& regs = out.regs;

    auto initialized = [&](Reg r) { return regs[r].kind != Kind::Uninit; };
    auto require_init = [&](Reg r) -> std::string {
      if (!initialized(r)) {
        return "read of uninitialized r" + std::to_string(r);
      }
      return {};
    };
    auto writable = [&](Reg r) -> std::string {
      if (r == kFramePointer) return "write to frame pointer r10";
      return {};
    };
    auto fallthrough = [&]() -> std::string {
      propagate(pc, pc + 1, out);
      return {};
    };
    const auto imm_u = static_cast<uint64_t>(in.imm);
    const size_t jump_target = pc + 1 + static_cast<size_t>(in.off);

    switch (in.op) {
      // ---- ALU reg ----
      case Op::AddReg: case Op::SubReg: {
        if (auto e = writable(in.dst); !e.empty()) return e;
        if (auto e = require_init(in.src); !e.empty()) return e;
        if (auto e = require_init(in.dst); !e.empty()) return e;
        RegState& d = regs[in.dst];
        const RegState& s = regs[in.src];
        if (d.kind == Kind::PtrMapValueOrNull ||
            d.kind == Kind::MapHandle) {
          return "arithmetic on possibly-null pointer or map handle";
        }
        if (is_pointer(d.kind) && s.kind == Kind::Scalar) {
          // Variable-offset pointer arithmetic: fold the scalar range
          // into the pointer's offset range; accesses check it later.
          d.val = ValueRange::alu(in.op, d.val, s.val);
          return fallthrough();
        }
        if (is_pointer(s.kind) || s.kind == Kind::MapHandle ||
            is_pointer(d.kind)) {
          return "pointer arithmetic with register operand not allowed";
        }
        d = RegState::scalar(ValueRange::alu(in.op, d.val, s.val));
        return fallthrough();
      }
      case Op::MulReg: case Op::DivReg: case Op::ModReg: case Op::AndReg:
      case Op::OrReg: case Op::XorReg: case Op::LshReg: case Op::RshReg:
      case Op::ArshReg:
      case Op::Add32Reg: case Op::Sub32Reg: case Op::Mul32Reg:
      case Op::Div32Reg: case Op::Mod32Reg: case Op::And32Reg:
      case Op::Or32Reg: case Op::Xor32Reg: case Op::Lsh32Reg:
      case Op::Rsh32Reg: case Op::Arsh32Reg: {
        if (auto e = writable(in.dst); !e.empty()) return e;
        if (auto e = require_init(in.src); !e.empty()) return e;
        if (auto e = require_init(in.dst); !e.empty()) return e;
        if (regs[in.dst].kind != Kind::Scalar ||
            regs[in.src].kind != Kind::Scalar) {
          return "pointer arithmetic with register operand not allowed";
        }
        regs[in.dst] = RegState::scalar(
            ValueRange::alu(in.op, regs[in.dst].val, regs[in.src].val));
        return fallthrough();
      }
      case Op::Mov32Reg: {
        if (auto e = writable(in.dst); !e.empty()) return e;
        if (auto e = require_init(in.src); !e.empty()) return e;
        if (regs[in.src].kind != Kind::Scalar) {
          return "32-bit move truncates a pointer";
        }
        regs[in.dst] = RegState::scalar(regs[in.src].val.cast32());
        return fallthrough();
      }
      // ---- ALU imm ----
      case Op::AddImm: case Op::SubImm: {
        if (auto e = writable(in.dst); !e.empty()) return e;
        if (auto e = require_init(in.dst); !e.empty()) return e;
        RegState& d = regs[in.dst];
        if (d.kind == Kind::PtrStack || d.kind == Kind::PtrMapValue ||
            d.kind == Kind::PtrCtx) {
          d.delta += (in.op == Op::AddImm) ? in.imm : -in.imm;
        } else if (d.kind == Kind::PtrMapValueOrNull ||
                   d.kind == Kind::MapHandle) {
          return "arithmetic on possibly-null pointer or map handle";
        } else {
          d = RegState::scalar(
              ValueRange::alu(in.op, d.val, ValueRange::konst(imm_u)));
        }
        return fallthrough();
      }
      case Op::MulImm: case Op::AndImm: case Op::OrImm: case Op::XorImm:
      case Op::LshImm: case Op::RshImm: case Op::ArshImm:
      case Op::Add32Imm: case Op::Sub32Imm: case Op::Mul32Imm:
      case Op::And32Imm: case Op::Or32Imm: case Op::Xor32Imm:
      case Op::Lsh32Imm: case Op::Rsh32Imm: case Op::Arsh32Imm: {
        if (auto e = writable(in.dst); !e.empty()) return e;
        if (auto e = require_init(in.dst); !e.empty()) return e;
        if (regs[in.dst].kind != Kind::Scalar) {
          return "ALU on pointer/map handle not allowed";
        }
        regs[in.dst] = RegState::scalar(
            ValueRange::alu(in.op, regs[in.dst].val,
                            ValueRange::konst(imm_u)));
        return fallthrough();
      }
      case Op::Mov32Imm: {
        if (auto e = writable(in.dst); !e.empty()) return e;
        regs[in.dst] = RegState::scalar(
            ValueRange::konst(static_cast<uint32_t>(in.imm)));
        return fallthrough();
      }
      case Op::DivImm: case Op::ModImm:
      case Op::Div32Imm: case Op::Mod32Imm: {
        if (auto e = writable(in.dst); !e.empty()) return e;
        if (auto e = require_init(in.dst); !e.empty()) return e;
        if (in.imm == 0) return "division by zero immediate";
        if (regs[in.dst].kind != Kind::Scalar) return "ALU on pointer";
        regs[in.dst] = RegState::scalar(
            ValueRange::alu(in.op, regs[in.dst].val,
                            ValueRange::konst(imm_u)));
        return fallthrough();
      }
      case Op::Neg: case Op::Neg32: {
        if (auto e = writable(in.dst); !e.empty()) return e;
        if (auto e = require_init(in.dst); !e.empty()) return e;
        if (regs[in.dst].kind != Kind::Scalar) return "ALU on pointer";
        regs[in.dst] = RegState::scalar(
            ValueRange::alu(in.op, regs[in.dst].val, ValueRange::konst(0)));
        return fallthrough();
      }
      case Op::MovReg: {
        if (auto e = writable(in.dst); !e.empty()) return e;
        if (auto e = require_init(in.src); !e.empty()) return e;
        regs[in.dst] = regs[in.src];
        return fallthrough();
      }
      case Op::MovImm: case Op::LdImm64: {
        if (auto e = writable(in.dst); !e.empty()) return e;
        regs[in.dst] = RegState::scalar(ValueRange::konst(imm_u));
        return fallthrough();
      }
      case Op::LdMapFd: {
        if (auto e = writable(in.dst); !e.empty()) return e;
        if (in.imm < 0 || static_cast<size_t>(in.imm) >= maps_.size() ||
            maps_[static_cast<size_t>(in.imm)] == nullptr) {
          return "LdMapFd references unknown map slot";
        }
        regs[in.dst] = RegState{Kind::MapHandle, 0,
                                static_cast<int32_t>(in.imm),
                                ValueRange::konst(0)};
        return fallthrough();
      }

      // ---- loads ----
      case Op::LdxB: case Op::LdxH: case Op::LdxW: case Op::LdxDW: {
        if (auto e = writable(in.dst); !e.empty()) return e;
        if (auto e = require_init(in.src); !e.empty()) return e;
        const int size = access_size(in.op);
        int64_t abs_lo = 0;
        int64_t abs_last = 0;
        if (auto e = check_mem(regs[in.src], in.off, size,
                               /*is_write=*/false, &abs_lo, &abs_last);
            !e.empty()) {
          return e;
        }
        record_mem_fact(pc, regs[in.src].kind);
        RegState loaded = RegState::scalar(size_bounded(size));
        if (regs[in.src].kind == Kind::PtrStack && abs_lo == abs_last) {
          loaded = load_stack(out, abs_lo, size);
        }
        regs[in.dst] = loaded;
        return fallthrough();
      }

      // ---- stores ----
      case Op::StxB: case Op::StxH: case Op::StxW: case Op::StxDW: {
        if (auto e = require_init(in.dst); !e.empty()) return e;
        if (auto e = require_init(in.src); !e.empty()) return e;
        const int size = access_size(in.op);
        const bool to_stack = regs[in.dst].kind == Kind::PtrStack;
        const bool const_off = regs[in.dst].val.is_const();
        if (regs[in.src].kind != Kind::Scalar) {
          // Spill rule: non-scalars only via an aligned 64-bit store to a
          // constant stack offset.
          const int64_t lo = regs[in.dst].delta + in.off +
                             static_cast<int64_t>(regs[in.dst].val.umin);
          if (!(in.op == Op::StxDW && to_stack && const_off &&
                lo % 8 == 0)) {
            return "pointer may only be spilled with an aligned 64-bit "
                   "stack store";
          }
        }
        int64_t abs_lo = 0;
        int64_t abs_last = 0;
        if (auto e = check_mem(regs[in.dst], in.off, size,
                               /*is_write=*/true, &abs_lo, &abs_last);
            !e.empty()) {
          return e;
        }
        record_mem_fact(pc, regs[in.dst].kind);
        if (to_stack) {
          if (abs_lo != abs_last) {
            // Variable-offset store: weak update over the whole span.
            clobber_cells(out, abs_lo, abs_last, size);
          } else if (regs[in.src].kind != Kind::Scalar) {
            const auto i = static_cast<size_t>(abs_lo / 4);
            degrade_cell(out, i);
            degrade_cell(out, i + 1);
            out.cells[i] = Cell{Cell::Tag::SpillLo, ValueRange::konst(0),
                                regs[in.src]};
            out.cells[i + 1] =
                Cell{Cell::Tag::SpillHi, ValueRange::konst(0), {}};
          } else {
            store_stack_scalar(out, abs_lo, size, regs[in.src].val);
          }
        }
        return fallthrough();
      }
      case Op::StB: case Op::StH: case Op::StW: case Op::StDW: {
        if (auto e = require_init(in.dst); !e.empty()) return e;
        const int size = access_size(in.op);
        int64_t abs_lo = 0;
        int64_t abs_last = 0;
        if (auto e = check_mem(regs[in.dst], in.off, size,
                               /*is_write=*/true, &abs_lo, &abs_last);
            !e.empty()) {
          return e;
        }
        record_mem_fact(pc, regs[in.dst].kind);
        if (regs[in.dst].kind == Kind::PtrStack) {
          if (abs_lo != abs_last) {
            clobber_cells(out, abs_lo, abs_last, size);
          } else {
            store_stack_scalar(out, abs_lo, size, ValueRange::konst(imm_u));
          }
        }
        return fallthrough();
      }

      // ---- control flow ----
      case Op::Ja:
        propagate(pc, jump_target, out);
        return {};

      case Op::JeqImm: case Op::JneImm: {
        if (auto e = require_init(in.dst); !e.empty()) return e;
        const RegState& d = regs[in.dst];
        if (d.kind == Kind::PtrMapValueOrNull && in.imm == 0) {
          // Null-check refinement, as in the kernel verifier.
          AbsState taken = out;
          AbsState fall = out;
          const bool eq_means_null = (in.op == Op::JeqImm);
          const RegState nonnull{Kind::PtrMapValue, d.delta, d.map_slot,
                                 d.val};
          const RegState null_scalar = RegState::scalar(ValueRange::konst(0));
          taken.regs[in.dst] = eq_means_null ? null_scalar : nonnull;
          fall.regs[in.dst] = eq_means_null ? nonnull : null_scalar;
          propagate(pc, jump_target, taken);
          propagate(pc, pc + 1, fall);
          return {};
        }
        if (d.kind != Kind::Scalar) {
          return "comparison of pointer with non-null immediate";
        }
        return branch_imm(pc, in, out);
      }
      case Op::JgtImm: case Op::JgeImm: case Op::JltImm: case Op::JleImm:
      case Op::JsgtImm: case Op::JsgeImm: case Op::JsltImm:
      case Op::JsleImm: case Op::JsetImm: {
        if (auto e = require_init(in.dst); !e.empty()) return e;
        if (regs[in.dst].kind != Kind::Scalar) {
          return "conditional jump on non-scalar";
        }
        return branch_imm(pc, in, out);
      }
      case Op::JeqReg: case Op::JneReg: case Op::JgtReg: case Op::JgeReg:
      case Op::JltReg: case Op::JleReg: case Op::JsgtReg: case Op::JsgeReg:
      case Op::JsltReg: case Op::JsleReg: case Op::JsetReg: {
        if (auto e = require_init(in.dst); !e.empty()) return e;
        if (auto e = require_init(in.src); !e.empty()) return e;
        if (regs[in.dst].kind != Kind::Scalar ||
            regs[in.src].kind != Kind::Scalar) {
          return "conditional jump on non-scalar";
        }
        AbsState taken = out;
        AbsState fall = out;
        const bool t_ok = ValueRange::refine_branch(
            in.op, true, taken.regs[in.dst].val, taken.regs[in.src].val);
        const bool f_ok = ValueRange::refine_branch(
            in.op, false, fall.regs[in.dst].val, fall.regs[in.src].val);
        if (t_ok) propagate(pc, jump_target, taken); else ++dead_edges_;
        if (f_ok) propagate(pc, pc + 1, fall); else ++dead_edges_;
        return {};
      }

      case Op::Call:
        return call(pc, in, out);

      case Op::Exit: {
        if (auto e = require_init(0); !e.empty()) return e;
        if (regs[0].kind != Kind::Scalar) return "exit with non-scalar r0";
        ret_ = ret_reachable_ ? ValueRange::join(ret_, regs[0].val)
                              : regs[0].val;
        ret_reachable_ = true;
        return {};  // no successors
      }
    }
    return "unhandled opcode";
  }

  std::string branch_imm(size_t pc, const Insn& in, const AbsState& cur) {
    AbsState taken = cur;
    AbsState fall = cur;
    ValueRange imm_t = ValueRange::konst(static_cast<uint64_t>(in.imm));
    ValueRange imm_f = imm_t;
    const bool t_ok = ValueRange::refine_branch(in.op, true,
                                                taken.regs[in.dst].val,
                                                imm_t);
    const bool f_ok = ValueRange::refine_branch(in.op, false,
                                                fall.regs[in.dst].val,
                                                imm_f);
    const size_t target = pc + 1 + static_cast<size_t>(in.off);
    if (t_ok) propagate(pc, target, taken); else ++dead_edges_;
    if (f_ok) propagate(pc, pc + 1, fall); else ++dead_edges_;
    return {};
  }

  std::string call(size_t pc, const Insn& in, AbsState& out) {
    auto& regs = out.regs;
    const HelperSig* sig = find_sig(in.imm);
    if (sig == nullptr) return "unknown helper";
    HelperCallInfo info;
    info.pc = pc;
    info.id = sig->id;
    info.key_known = true;
    bool has_key = false;
    for (int a = 0; a < sig->num_args; ++a) {
      const Reg r = static_cast<Reg>(a + 1);
      if (regs[r].kind == Kind::Uninit) {
        return "read of uninitialized r" + std::to_string(r);
      }
      const ArgSpec& spec = sig->arg[a];
      const Kind have = regs[r].kind;
      if (spec.kind == Kind::PtrStack) {
        if (have != Kind::PtrStack) {
          return "helper arg r" + std::to_string(r) +
                 " must be a stack pointer";
        }
        if (!regs[r].val.is_const()) {
          return "helper arg r" + std::to_string(r) +
                 " must have a constant stack offset";
        }
        int buf = spec.buf_bytes;
        if (buf < 0) {  // the value size of the map handle in r1
          buf = static_cast<int>(
              maps_[static_cast<size_t>(regs[1].map_slot)]->value_size());
        }
        if (auto e = check_mem(regs[r], 0, buf, /*is_write=*/false);
            !e.empty()) {
          return e;
        }
        if (spec.buf_bytes == 4 && !has_key) {
          // This is the u32 key buffer: read it for proof reporting.
          has_key = true;
          const int64_t abs = static_cast<int64_t>(kStackSize) +
                              regs[r].delta +
                              static_cast<int64_t>(regs[r].val.umin);
          const RegState k = load_stack(out, abs, 4);
          if (k.kind == Kind::Scalar && k.val.umax <= kU32Max) {
            info.key = k.val;
          } else {
            info.key = unknown32();
            info.key_known = false;
          }
        }
      } else if (spec.kind == Kind::MapHandle) {
        if (have != Kind::MapHandle) {
          return "helper arg r" + std::to_string(r) + " must be a map";
        }
        Map* m = maps_[static_cast<size_t>(regs[r].map_slot)];
        if (sig->map_arg_type && m->type() != *sig->map_arg_type) {
          return "helper map argument has wrong map type";
        }
        info.map_slot = regs[r].map_slot;
      } else if (spec.kind == Kind::PtrCtx) {
        // The VM hands r1 to the helper as a ReuseportCtx*; anything but
        // the context base would misinterpret memory.
        if (have != Kind::PtrCtx || regs[r].delta != 0 ||
            !regs[r].val.is_const() || regs[r].val.umin != 0) {
          return "helper arg r" + std::to_string(r) +
                 " must be the context base";
        }
      } else if (spec.kind != have) {
        return "helper arg r" + std::to_string(r) + " has wrong type";
      }
    }
    if (!has_key) info.key_known = false;

    // Result + clobbers.
    RegState r0;
    switch (sig->id) {
      case HelperId::MapLookupElem:
        r0 = RegState{Kind::PtrMapValueOrNull, 0, regs[1].map_slot,
                      ValueRange::konst(0)};
        break;
      case HelperId::MapUpdateElem:  // 0 or (u64)-1
        r0 = RegState::scalar(ValueRange::join(
            ValueRange::konst(0), ValueRange::konst(~uint64_t{0})));
        break;
      case HelperId::SkSelectReuseport:  // 0 or (u64)-ENOENT
        r0 = RegState::scalar(ValueRange::join(
            ValueRange::konst(0),
            ValueRange::konst(static_cast<uint64_t>(-2))));
        break;
      case HelperId::KtimeGetNs:
        r0 = RegState::scalar(ValueRange::unknown());
        break;
      case HelperId::GetPrandomU32:
        r0 = RegState::scalar(unknown32());
        break;
    }
    for (Reg r = 1; r <= 5; ++r) regs[r] = RegState{};
    regs[0] = r0;

    // Join per-callsite helper facts across visits (loop iterations).
    auto [it, inserted] = helpers_.try_emplace(pc, info);
    if (!inserted) {
      HelperCallInfo& e = it->second;
      if (e.map_slot != info.map_slot) e.map_slot = -1;
      e.key_known = e.key_known && info.key_known;
      e.key = ValueRange::join(e.key, info.key);
    }
    propagate(pc, pc + 1, out);
    return {};
  }

  const Program& prog_;
  std::span<Map* const> maps_;
  const AnalysisOptions opts_;

  std::vector<AbsState> states_;
  std::vector<uint32_t> merge_counts_;
  std::vector<char> visited_;
  std::vector<char> is_header_;
  std::vector<size_t> header_end_;
  std::vector<LoopFrame*> frames_;

  // Join of bounds-check outcomes per visited memory-access pc. Every
  // recorded visit passed check_mem (failure rejects the program), so a
  // fact stays `proven` unless later visits see a different base kind —
  // which join_reg's kind-mismatch collapse makes unreachable in practice,
  // but the elision consumer must not have to rely on that.
  void record_mem_fact(size_t pc, Kind base_kind) {
    auto [it, inserted] =
        mem_facts_.try_emplace(pc, MemAccessInfo{pc, base_kind, true});
    if (!inserted && it->second.base_kind != base_kind) {
      it->second.proven = false;
    }
  }

  uint64_t steps_ = 0;
  size_t dead_edges_ = 0;
  uint32_t max_trips_ = 0;
  size_t err_pc_ = 0;
  bool ret_reachable_ = false;
  ValueRange ret_;
  std::map<size_t, HelperCallInfo> helpers_;
  std::map<size_t, MemAccessInfo> mem_facts_;
};

}  // namespace

bool is_pointer(Kind k) {
  return k == Kind::PtrStack || k == Kind::PtrCtx ||
         k == Kind::PtrMapValue || k == Kind::PtrMapValueOrNull;
}

std::string to_string(const RegState& r) {
  std::ostringstream os;
  auto var_suffix = [&] {
    if (!r.val.is_const() || r.val.umin != 0) {
      os << "+var{" << to_string(r.val) << "}";
    }
  };
  switch (r.kind) {
    case Kind::Uninit:
      os << "uninit";
      break;
    case Kind::Scalar:
      os << "scalar{" << to_string(r.val) << "}";
      break;
    case Kind::PtrStack:
      os << "fp" << (r.delta >= 0 ? "+" : "") << r.delta;
      var_suffix();
      break;
    case Kind::PtrCtx:
      os << "ctx+" << r.delta;
      var_suffix();
      break;
    case Kind::PtrMapValue:
      os << "map_value(slot=" << r.map_slot << ")+" << r.delta;
      var_suffix();
      break;
    case Kind::PtrMapValueOrNull:
      os << "map_value_or_null(slot=" << r.map_slot << ")";
      break;
    case Kind::MapHandle:
      os << "map_handle(slot=" << r.map_slot << ")";
      break;
  }
  return os.str();
}

AnalysisResult analyze(const Program& prog, std::span<Map* const> maps,
                       const AnalysisOptions& opts) {
  Analyzer a(prog, maps, opts);
  return a.run();
}

}  // namespace hermes::bpf::analysis
