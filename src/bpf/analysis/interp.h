// CFG-based abstract interpreter for the in-repo eBPF dialect.
//
// This is the analysis engine the verifier (bpf/verifier.cc) runs on: each
// register carries a type (Kind) plus a ValueRange (tnum + signed/unsigned
// intervals), refined at conditional branches; the 512-byte stack is
// tracked as 4-byte cells with kernel-style spill/fill of full register
// states; states merge (with widening) at join points.
//
// Control flow follows post-5.3 kernel semantics: backward edges are
// accepted iff the abstract state proves the loop exits within a
// configurable trip bound. Loops are required to be properly nested
// regions entered only through their header; each region is re-analyzed
// per abstract iteration — the header state of iteration k+1 is the
// back-edge state of iteration k (no cross-iteration merge), and the loop
// is accepted when the back edge becomes infeasible. Because every
// concrete instruction executed inside a loop corresponds to at least one
// abstract step, `max_analysis_steps` (default 2^18) also bounds the
// concrete instruction count of accepted programs below the VM's 2^20
// execution budget.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "bpf/analysis/value_range.h"
#include "bpf/insn.h"
#include "bpf/maps.h"

namespace hermes::bpf::analysis {

enum class Kind : uint8_t {
  Uninit,            // also the lattice top: join of mismatched kinds
  Scalar,
  PtrStack,          // fp-relative; delta + val gives the offset range
  PtrCtx,            // delta from context start
  PtrMapValue,       // non-null, delta from value start; map_slot valid
  PtrMapValueOrNull, // must be null-checked before dereference
  MapHandle,         // map_slot valid
};

bool is_pointer(Kind k);

struct RegState {
  Kind kind = Kind::Uninit;
  int64_t delta = 0;      // constant part of a pointer offset
  int32_t map_slot = -1;  // PtrMapValue*/MapHandle only
  // Scalar: the value. Pointer kinds: the variable part of the offset
  // (konst(0) until register-operand pointer arithmetic happens).
  ValueRange val = ValueRange::unknown();

  static RegState scalar(const ValueRange& v) {
    return {Kind::Scalar, 0, -1, v};
  }
  static RegState pointer(Kind k, int64_t delta, int32_t slot) {
    return {k, delta, slot, ValueRange::konst(0)};
  }

  bool operator==(const RegState&) const = default;
};

std::string to_string(const RegState& r);

// The stack is tracked as 4-byte cells (the smallest granule the Hermes
// programs address). An aligned 64-bit store of any register spills its
// full RegState across a SpillLo/SpillHi pair — this is what lets both
// pointers and *ranged scalars* round-trip through the stack.
struct Cell {
  enum class Tag : uint8_t { Data, SpillLo, SpillHi };
  Tag tag = Tag::Data;
  // Data: the 32-bit content; the VM zeroes the stack, so cells start as
  // konst(0).
  ValueRange v32 = ValueRange::konst(0);
  RegState spilled{};  // SpillLo only

  bool operator==(const Cell&) const = default;
};

inline constexpr size_t kNumCells = kStackSize / 4;

struct AbsState {
  std::array<RegState, kNumRegs> regs{};
  std::array<Cell, kNumCells> cells{};
  bool reachable = false;

  bool operator==(const AbsState&) const = default;
};

struct AnalysisOptions {
  // Iterations within which a backward edge must become infeasible.
  uint32_t max_trip_count = 128;
  // Global abstract-step budget; also bounds accepted programs' concrete
  // loop execution (must stay below bpf::kMaxInsnsExecuted).
  uint64_t max_analysis_steps = uint64_t{1} << 18;
  // Merges into one pc before the join is widened.
  uint32_t widen_after = 32;
};

struct HelperCallInfo {
  size_t pc = 0;
  HelperId id{};
  int32_t map_slot = -1;  // the map/sockarray argument, if any
  // True when the key buffer's contents were tracked precisely at every
  // visit of this call site; `key` is the join of the key ranges.
  bool key_known = false;
  ValueRange key;
};

// Per-pc fact about a load/store: which region kind the base pointer had,
// and whether every visit of this pc passed the abstract bounds check with
// a consistent base kind. In an accepted program every *visited* access is
// bounds-proven by construction (a failing check rejects the program), so
// `proven` is the license the tiered VM (bpf/plan.h) uses to elide the
// runtime check at that pc. Range-dead accesses are never visited and get
// no entry — the plan compiler keeps the checked micro-op there.
struct MemAccessInfo {
  size_t pc = 0;
  Kind base_kind = Kind::Uninit;
  bool proven = false;
};

struct AnalysisResult {
  bool ok = false;
  std::string error;
  size_t error_pc = 0;
  std::string error_state;  // abstract registers at the failing pc

  size_t dead_insns = 0;   // structurally reachable but range-pruned
  size_t dead_edges = 0;   // branch edges proven infeasible
  uint64_t analysis_steps = 0;
  uint32_t max_loop_trips = 0;  // deepest iteration count any proof needed

  bool ret_reachable = false;
  ValueRange ret;  // join of r0 over all reachable exits
  std::vector<HelperCallInfo> helper_calls;  // one entry per visited Call pc
  std::vector<MemAccessInfo> mem_accesses;   // one entry per visited ld/st pc

  explicit operator bool() const { return ok; }
};

AnalysisResult analyze(const Program& prog, std::span<Map* const> maps,
                       const AnalysisOptions& opts = {});

}  // namespace hermes::bpf::analysis
