#include "bpf/analysis/prove.h"

#include <sstream>

namespace hermes::bpf::analysis {

DispatchProof prove_dispatch(const Program& prog,
                             std::span<Map* const> maps, uint64_t nr_socks,
                             const AnalysisOptions& opts) {
  DispatchProof proof;
  proof.analysis = analyze(prog, maps, opts);
  std::ostringstream os;
  if (!proof.analysis) {
    os << "program does not verify: pc " << proof.analysis.error_pc << ": "
       << proof.analysis.error;
    proof.detail = os.str();
    return proof;
  }

  bool ok = true;
  size_t selects = 0;
  for (const HelperCallInfo& call : proof.analysis.helper_calls) {
    if (call.id != HelperId::SkSelectReuseport) continue;
    ++selects;
    if (!call.key_known) {
      os << "pc " << call.pc
         << ": sk_select_reuseport key is not tracked precisely\n";
      ok = false;
      continue;
    }
    if (call.key.umax >= nr_socks) {
      os << "pc " << call.pc << ": key range " << to_string(call.key)
         << " not proven < nr_socks=" << nr_socks << "\n";
      ok = false;
      continue;
    }
    os << "pc " << call.pc << ": key " << to_string(call.key) << " < "
       << nr_socks << " for all executions\n";
  }
  if (selects == 0) {
    os << "no sk_select_reuseport call reachable; nothing to prove\n";
    ok = false;
  }

  if (!proof.analysis.ret_reachable) {
    os << "no reachable exit\n";
    ok = false;
  } else if (proof.analysis.ret.umax > kRetFallback) {
    os << "return value " << to_string(proof.analysis.ret)
       << " not proven to be use-selection (0) or fallback (1)\n";
    ok = false;
  } else {
    os << "return value " << to_string(proof.analysis.ret)
       << " is always use-selection or fallback\n";
  }

  proof.ok = ok;
  proof.detail = os.str();
  return proof;
}

}  // namespace hermes::bpf::analysis
