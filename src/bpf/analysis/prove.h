// Machine-checked safety proof for the Hermes dispatch program (Algorithm 2
// of the paper): every socket index the program hands to
// sk_select_reuseport is provably < nr_socks, and the program's return
// value is always kRetUseSelection or kRetFallback (so a failed selection
// falls back to the kernel's reuseport hash instead of faulting).
//
// The proof is not a test over sampled inputs: it is the abstract
// interpreter's over-approximation of *all* executions, so `ok == true`
// means no context contents, map contents, or randomness can produce an
// out-of-range index. tests/dispatch_prove_test.cc runs it at build time
// for every supported pool geometry.
#pragma once

#include <cstdint>
#include <string>

#include "bpf/analysis/interp.h"

namespace hermes::bpf::analysis {

struct DispatchProof {
  bool ok = false;
  std::string detail;       // per-callsite facts, or the failure reason
  AnalysisResult analysis;  // the underlying abstract-interpretation result

  explicit operator bool() const { return ok; }
};

// Proves, for a program already known to target a reuseport sockarray of
// `nr_socks` entries, that (a) the program verifies, (b) every
// SkSelectReuseport key is tracked and bounded below nr_socks, and
// (c) every exit returns kRetUseSelection (0) or kRetFallback (1).
DispatchProof prove_dispatch(const Program& prog,
                             std::span<Map* const> maps, uint64_t nr_socks,
                             const AnalysisOptions& opts = {});

}  // namespace hermes::bpf::analysis
