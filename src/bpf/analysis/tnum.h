// Tracked-number ("tnum") abstract domain: per-bit knowledge of a 64-bit
// value, modeled on the kernel verifier's tnum.c (Farnum-style known-bits).
//
// A tnum (value, mask) denotes the set of concrete u64 x with
//   (x & ~mask) == value
// i.e. bits where mask=0 are known to equal the corresponding bit of
// `value`; bits where mask=1 are unknown. Invariant: value & mask == 0.
//
// Every transfer function here is *sound*: if x ∈ γ(a) and y ∈ γ(b) then
// op(x, y) ∈ γ(op(a, b)). tests/analysis_property_test.cc checks this
// against concrete 64-bit sampling for every operation.
#pragma once

#include <bit>
#include <cstdint>

namespace hermes::bpf::analysis {

struct Tnum {
  uint64_t value = 0;    // known-one bits
  uint64_t mask = ~0ull; // unknown bits (1 = unknown)

  static constexpr Tnum unknown() { return {0, ~0ull}; }
  static constexpr Tnum konst(uint64_t v) { return {v, 0}; }

  // Smallest tnum containing every x in [min, max] (kernel tnum_range):
  // the bits above the highest differing bit are common to min and max.
  static constexpr Tnum range(uint64_t min, uint64_t max) {
    const uint64_t chi = min ^ max;
    const int bits = 64 - std::countl_zero(chi);
    if (bits > 63) return unknown();
    const uint64_t delta = (uint64_t{1} << bits) - 1;
    return {min & ~delta, delta};
  }

  constexpr bool is_const() const { return mask == 0; }
  constexpr bool contains(uint64_t x) const { return (x & ~mask) == value; }
  // Least / greatest member of the concretization.
  constexpr uint64_t min() const { return value; }
  constexpr uint64_t max() const { return value | mask; }

  constexpr bool operator==(const Tnum&) const = default;

  // a ⊆ b: every member of a is a member of b.
  static constexpr bool subsumes(const Tnum& a, const Tnum& b) {
    return (a.mask & ~b.mask) == 0 && ((a.value ^ b.value) & ~b.mask) == 0;
  }

  // Intersection; returns false when the two tnums share no member
  // (conflicting known bits) — the caller treats that as an infeasible path.
  static constexpr bool intersect(const Tnum& a, const Tnum& b, Tnum* out) {
    if (((a.value ^ b.value) & ~a.mask & ~b.mask) != 0) return false;
    const uint64_t v = a.value | b.value;
    const uint64_t mu = a.mask & b.mask;
    *out = {v & ~mu, mu};
    return true;
  }

  // Union (join): bits that differ or are unknown on either side.
  static constexpr Tnum join(const Tnum& a, const Tnum& b) {
    const uint64_t mu = a.mask | b.mask | (a.value ^ b.value);
    return {a.value & ~mu, mu};
  }

  static constexpr Tnum add(const Tnum& a, const Tnum& b) {
    const uint64_t sm = a.mask + b.mask;
    const uint64_t sv = a.value + b.value;
    const uint64_t sigma = sm + sv;
    const uint64_t chi = sigma ^ sv;
    const uint64_t mu = chi | a.mask | b.mask;
    return {sv & ~mu, mu};
  }

  static constexpr Tnum sub(const Tnum& a, const Tnum& b) {
    const uint64_t dv = a.value - b.value;
    const uint64_t alpha = dv + a.mask;
    const uint64_t beta = dv - b.mask;
    const uint64_t chi = alpha ^ beta;
    const uint64_t mu = chi | a.mask | b.mask;
    return {dv & ~mu, mu};
  }

  static constexpr Tnum and_(const Tnum& a, const Tnum& b) {
    const uint64_t alpha = a.value | a.mask;
    const uint64_t beta = b.value | b.mask;
    const uint64_t v = a.value & b.value;
    return {v, alpha & beta & ~v};
  }

  static constexpr Tnum or_(const Tnum& a, const Tnum& b) {
    const uint64_t v = a.value | b.value;
    const uint64_t mu = a.mask | b.mask;
    return {v, mu & ~v};
  }

  static constexpr Tnum xor_(const Tnum& a, const Tnum& b) {
    const uint64_t v = a.value ^ b.value;
    const uint64_t mu = a.mask | b.mask;
    return {v & ~mu, mu};
  }

  // Shift amounts must already be reduced (& 63) by the caller.
  static constexpr Tnum lshift(const Tnum& a, uint8_t k) {
    return {a.value << k, a.mask << k};
  }
  static constexpr Tnum rshift(const Tnum& a, uint8_t k) {
    return {a.value >> k, a.mask >> k};
  }
  static constexpr Tnum arshift(const Tnum& a, uint8_t k) {
    return {static_cast<uint64_t>(static_cast<int64_t>(a.value) >> k),
            static_cast<uint64_t>(static_cast<int64_t>(a.mask) >> k)};
  }

  // Kernel tnum_mul: decompose a into known-one and unknown bits, summing
  // partial products; unknown multiplicand bits poison via tnum_add.
  static constexpr Tnum mul(Tnum a, Tnum b) {
    const uint64_t acc_v = a.value * b.value;
    Tnum acc_m{0, 0};
    while (a.value != 0 || a.mask != 0) {
      if ((a.value & 1) != 0) {
        acc_m = add(acc_m, Tnum{0, b.mask});
      } else if ((a.mask & 1) != 0) {
        acc_m = add(acc_m, Tnum{0, b.value | b.mask});
      }
      a = rshift(a, 1);
      b = lshift(b, 1);
    }
    return add(konst(acc_v), acc_m);
  }

  // Truncate to the low 32 bits; the high 32 become known-zero
  // (BPF_ALU32 results are zero-extended).
  static constexpr Tnum cast32(const Tnum& a) {
    return {a.value & 0xffffffffull, a.mask & 0xffffffffull};
  }
};

}  // namespace hermes::bpf::analysis
