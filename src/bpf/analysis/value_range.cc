#include "bpf/analysis/value_range.h"

#include <algorithm>
#include <bit>
#include <sstream>

namespace hermes::bpf::analysis {

namespace {

constexpr uint64_t kU64Max = ~0ull;
constexpr uint64_t kU32Max = 0xffffffffull;
constexpr int64_t kS64Min = std::numeric_limits<int64_t>::min();
constexpr int64_t kS64Max = std::numeric_limits<int64_t>::max();

ValueRange synced_or_unknown(ValueRange r) {
  // Transfer functions of total operations cannot produce an empty set from
  // sound non-empty inputs; a failed sync here would mean one of the bounds
  // below is buggy, so fall back to ⊤ rather than propagate nonsense.
  if (!r.sync()) return ValueRange::unknown();
  return r;
}

ValueRange vr_add(const ValueRange& a, const ValueRange& b) {
  ValueRange r = ValueRange::unknown();
  r.tn = Tnum::add(a.tn, b.tn);
  uint64_t ulo = 0;
  uint64_t uhi = 0;
  if (!__builtin_add_overflow(a.umin, b.umin, &ulo) &&
      !__builtin_add_overflow(a.umax, b.umax, &uhi)) {
    r.umin = ulo;
    r.umax = uhi;
  }
  int64_t slo = 0;
  int64_t shi = 0;
  if (!__builtin_add_overflow(a.smin, b.smin, &slo) &&
      !__builtin_add_overflow(a.smax, b.smax, &shi)) {
    r.smin = slo;
    r.smax = shi;
  }
  return synced_or_unknown(r);
}

ValueRange vr_sub(const ValueRange& a, const ValueRange& b) {
  ValueRange r = ValueRange::unknown();
  r.tn = Tnum::sub(a.tn, b.tn);
  if (a.umin >= b.umax) {  // no wrap possible
    r.umin = a.umin - b.umax;
    r.umax = a.umax - b.umin;
  }
  int64_t slo = 0;
  int64_t shi = 0;
  if (!__builtin_sub_overflow(a.smin, b.smax, &slo) &&
      !__builtin_sub_overflow(a.smax, b.smin, &shi)) {
    r.smin = slo;
    r.smax = shi;
  }
  return synced_or_unknown(r);
}

ValueRange vr_mul(const ValueRange& a, const ValueRange& b) {
  ValueRange r = ValueRange::unknown();
  r.tn = Tnum::mul(a.tn, b.tn);
  const auto prod_hi =
      static_cast<unsigned __int128>(a.umax) * b.umax;
  if (prod_hi <= kU64Max) {  // unsigned multiply is monotone when it fits
    r.umin = a.umin * b.umin;
    r.umax = static_cast<uint64_t>(prod_hi);
  }
  return synced_or_unknown(r);
}

// VM rule: division by zero yields 0.
ValueRange vr_udiv(const ValueRange& a, const ValueRange& b) {
  ValueRange r = ValueRange::unknown();
  if (b.umin > 0) {
    r.umin = a.umin / b.umax;
    r.umax = a.umax / b.umin;
  } else {
    r.umin = 0;
    r.umax = a.umax;  // x/y <= x for y >= 1, and y == 0 gives 0
  }
  return synced_or_unknown(r);
}

// VM rule: mod by zero leaves dst unchanged.
ValueRange vr_umod(const ValueRange& a, const ValueRange& b) {
  if (a.umax < b.umin) return a;  // x % y == x when x < y (and y > 0)
  ValueRange r = ValueRange::unknown();
  r.umin = 0;
  r.umax = (b.umin > 0) ? std::min(a.umax, b.umax - 1) : a.umax;
  return synced_or_unknown(r);
}

ValueRange vr_and(const ValueRange& a, const ValueRange& b) {
  ValueRange r = ValueRange::unknown();
  r.tn = Tnum::and_(a.tn, b.tn);
  r.umax = std::min(a.umax, b.umax);
  // If either operand's sign bit is provably clear, so is the result's.
  if (a.smin >= 0 || b.smin >= 0) r.smin = 0;
  return synced_or_unknown(r);
}

// x|y (and x^y) cannot set a bit above the highest bit of either operand.
uint64_t bit_fill_max(uint64_t a_umax, uint64_t b_umax) {
  const int bits = std::bit_width(std::max(a_umax, b_umax));
  if (bits >= 64) return kU64Max;
  return (uint64_t{1} << bits) - 1;
}

ValueRange vr_or(const ValueRange& a, const ValueRange& b) {
  ValueRange r = ValueRange::unknown();
  r.tn = Tnum::or_(a.tn, b.tn);
  r.umin = std::max(a.umin, b.umin);  // x|y >= max(x, y)
  r.umax = bit_fill_max(a.umax, b.umax);
  return synced_or_unknown(r);
}

ValueRange vr_xor(const ValueRange& a, const ValueRange& b) {
  ValueRange r = ValueRange::unknown();
  r.tn = Tnum::xor_(a.tn, b.tn);
  r.umax = bit_fill_max(a.umax, b.umax);
  return synced_or_unknown(r);
}

// Shift-amount range, already reduced by the VM's mask (63 or 31).
ValueRange shift_amount(const ValueRange& b, uint64_t mask) {
  return vr_and(b, ValueRange::konst(mask));
}

ValueRange vr_lsh(const ValueRange& a, const ValueRange& k) {
  ValueRange r = ValueRange::unknown();
  if (k.is_const()) {
    const auto sh = static_cast<uint8_t>(k.const_val());
    r.tn = Tnum::lshift(a.tn, sh);
    if (a.umax <= (kU64Max >> sh)) {  // no bits shifted out
      r.umin = a.umin << sh;
      r.umax = a.umax << sh;
    }
  }
  return synced_or_unknown(r);
}

ValueRange vr_rsh(const ValueRange& a, const ValueRange& k) {
  ValueRange r = ValueRange::unknown();
  if (k.is_const()) {
    r.tn = Tnum::rshift(a.tn, static_cast<uint8_t>(k.const_val()));
  }
  // Logical right shift is monotone in the value and antitone in the
  // shift amount (k.umax <= 63 after masking).
  r.umin = a.umin >> k.umax;
  r.umax = a.umax >> k.umin;
  return synced_or_unknown(r);
}

ValueRange vr_arsh(const ValueRange& a, const ValueRange& k) {
  ValueRange r = ValueRange::unknown();
  if (k.is_const()) {
    const auto sh = static_cast<uint8_t>(k.const_val());
    r.tn = Tnum::arshift(a.tn, sh);
    r.smin = a.smin >> sh;
    r.smax = a.smax >> sh;
  } else if (a.smin >= 0) {
    // Non-negative values: behaves as a logical shift.
    r.umin = a.umin >> k.umax;
    r.umax = a.umax >> k.umin;
  } else if (a.smax < 0) {
    // Negative values move toward -1 as the shift grows.
    r.smin = a.smin >> k.umin;
    r.smax = a.smax >> k.umax;
  }
  return synced_or_unknown(r);
}

// Sign-extend a 32-bit-domain range ([0, 2^32)) to 64 bits.
ValueRange sext32(const ValueRange& a32) {
  constexpr uint64_t kHi = 0xffffffff00000000ull;
  constexpr uint64_t kBit31 = 0x80000000ull;
  ValueRange r = ValueRange::unknown();
  if ((a32.tn.mask & kBit31) == 0) {  // sign bit known
    r.tn = (a32.tn.value & kBit31) == 0
               ? a32.tn
               : Tnum{a32.tn.value | kHi, a32.tn.mask};
  } else {
    r.tn = Tnum{a32.tn.value, a32.tn.mask | kHi};
  }
  if (a32.umax < kBit31) {
    r.umin = a32.umin;
    r.umax = a32.umax;
  } else if (a32.umin >= kBit31) {
    r.umin = a32.umin | kHi;
    r.umax = a32.umax | kHi;
  }
  return synced_or_unknown(r);
}

// 32-bit ALU: the VM truncates both operands, operates, and truncates the
// result; modeling the op on the truncated 64-bit domains and casting the
// result back is exact for wrap-around semantics.
ValueRange vr_alu32(Op op, const ValueRange& a, const ValueRange& b) {
  const ValueRange a32 = a.cast32();
  const ValueRange b32 = b.cast32();
  ValueRange r;
  switch (op) {
    case Op::Add32Reg: case Op::Add32Imm: r = vr_add(a32, b32); break;
    case Op::Sub32Reg: case Op::Sub32Imm: r = vr_sub(a32, b32); break;
    case Op::Mul32Reg: case Op::Mul32Imm: r = vr_mul(a32, b32); break;
    case Op::Div32Reg: case Op::Div32Imm: r = vr_udiv(a32, b32); break;
    case Op::Mod32Reg: case Op::Mod32Imm: r = vr_umod(a32, b32); break;
    case Op::And32Reg: case Op::And32Imm: r = vr_and(a32, b32); break;
    case Op::Or32Reg:  case Op::Or32Imm:  r = vr_or(a32, b32); break;
    case Op::Xor32Reg: case Op::Xor32Imm: r = vr_xor(a32, b32); break;
    case Op::Lsh32Reg: case Op::Lsh32Imm:
      r = vr_lsh(a32, shift_amount(b, 31));
      break;
    case Op::Rsh32Reg: case Op::Rsh32Imm:
      r = vr_rsh(a32, shift_amount(b, 31));
      break;
    case Op::Arsh32Reg: case Op::Arsh32Imm:
      r = vr_arsh(sext32(a32), shift_amount(b, 31));
      break;
    case Op::Neg32:
      r = vr_sub(ValueRange::konst(0), a32);
      break;
    default:
      r = ValueRange::unknown();
      break;
  }
  return r.cast32();
}

enum class Rel { Eq, Ne, Gt, Ge, Lt, Le, SGt, SGe, SLt, SLe, Set, NSet };

// Exclude the single value `c` from v's interval endpoints (d != c).
// Returns false when that leaves the range empty.
bool exclude_endpoint(ValueRange& v, uint64_t c) {
  if (v.umin == c) {
    if (c == kU64Max) return false;
    v.umin = c + 1;
  }
  if (v.umax == c) {
    if (c == 0) return false;
    v.umax = c - 1;
  }
  const auto sc = static_cast<int64_t>(c);
  if (v.smin == sc) {
    if (sc == kS64Max) return false;
    v.smin = sc + 1;
  }
  if (v.smax == sc) {
    if (sc == kS64Min) return false;
    v.smax = sc - 1;
  }
  return true;
}

bool apply_rel(Rel rel, ValueRange& d, ValueRange& s) {
  switch (rel) {
    case Rel::Eq: {
      ValueRange m;
      if (!Tnum::intersect(d.tn, s.tn, &m.tn)) return false;
      m.umin = std::max(d.umin, s.umin);
      m.umax = std::min(d.umax, s.umax);
      m.smin = std::max(d.smin, s.smin);
      m.smax = std::min(d.smax, s.smax);
      if (!m.sync()) return false;
      d = s = m;
      return true;
    }
    case Rel::Ne:
      if (d.is_const() && s.is_const() &&
          d.const_val() == s.const_val()) {
        return false;
      }
      if (s.is_const() && !exclude_endpoint(d, s.const_val())) return false;
      if (d.is_const() && !exclude_endpoint(s, d.const_val())) return false;
      break;
    case Rel::Gt:  // d > s
      if (s.umin == kU64Max || d.umax == 0) return false;
      d.umin = std::max(d.umin, s.umin + 1);
      s.umax = std::min(s.umax, d.umax - 1);
      break;
    case Rel::Ge:
      d.umin = std::max(d.umin, s.umin);
      s.umax = std::min(s.umax, d.umax);
      break;
    case Rel::Lt:  // d < s
      if (s.umax == 0 || d.umin == kU64Max) return false;
      d.umax = std::min(d.umax, s.umax - 1);
      s.umin = std::max(s.umin, d.umin + 1);
      break;
    case Rel::Le:
      d.umax = std::min(d.umax, s.umax);
      s.umin = std::max(s.umin, d.umin);
      break;
    case Rel::SGt:
      if (s.smin == kS64Max || d.smax == kS64Min) return false;
      d.smin = std::max(d.smin, s.smin + 1);
      s.smax = std::min(s.smax, d.smax - 1);
      break;
    case Rel::SGe:
      d.smin = std::max(d.smin, s.smin);
      s.smax = std::min(s.smax, d.smax);
      break;
    case Rel::SLt:
      if (s.smax == kS64Min || d.smin == kS64Max) return false;
      d.smax = std::min(d.smax, s.smax - 1);
      s.smin = std::max(s.smin, d.smin + 1);
      break;
    case Rel::SLe:
      d.smax = std::min(d.smax, s.smax);
      s.smin = std::max(s.smin, d.smin);
      break;
    case Rel::Set:  // (d & s) != 0
      if ((d.tn.max() & s.tn.max()) == 0) return false;
      break;
    case Rel::NSet:  // (d & s) == 0
      // A bit known set on both sides contradicts (d & s) == 0.
      if ((d.tn.value & s.tn.value) != 0) return false;
      // Bits known set in one operand are known clear in the other.
      d.tn.mask &= ~s.tn.value;
      s.tn.mask &= ~d.tn.value;
      break;
  }
  return d.sync() && s.sync();
}

}  // namespace

bool ValueRange::sync() {
  // Each pass only tightens; three passes reach the kernel's fixpoint for
  // these rules (tnum <-> unsigned <-> signed).
  for (int i = 0; i < 3; ++i) {
    umin = std::max(umin, tn.min());
    umax = std::min(umax, tn.max());
    if (umin > umax) return false;
    if (!Tnum::intersect(tn, Tnum::range(umin, umax), &tn)) return false;
    // Signed -> unsigned: valid when all values share a sign.
    if (smin >= 0 || smax < 0) {
      umin = std::max(umin, static_cast<uint64_t>(smin));
      umax = std::min(umax, static_cast<uint64_t>(smax));
      if (umin > umax) return false;
    }
    // Unsigned -> signed: valid when all values land in one signed half.
    if (umax <= static_cast<uint64_t>(kS64Max) ||
        umin > static_cast<uint64_t>(kS64Max)) {
      smin = std::max(smin, static_cast<int64_t>(umin));
      smax = std::min(smax, static_cast<int64_t>(umax));
      if (smin > smax) return false;
    }
  }
  return true;
}

ValueRange ValueRange::cast32() const {
  ValueRange r = unknown();
  r.tn = Tnum::cast32(tn);
  if (umax <= kU32Max) {  // truncation is the identity on [0, 2^32)
    r.umin = umin;
    r.umax = umax;
  } else {
    r.umin = 0;
    r.umax = kU32Max;
  }
  return synced_or_unknown(r);
}

ValueRange ValueRange::join(const ValueRange& a, const ValueRange& b) {
  ValueRange r;
  r.tn = Tnum::join(a.tn, b.tn);
  r.umin = std::min(a.umin, b.umin);
  r.umax = std::max(a.umax, b.umax);
  r.smin = std::min(a.smin, b.smin);
  r.smax = std::max(a.smax, b.smax);
  return synced_or_unknown(r);
}

ValueRange ValueRange::widen(const ValueRange& cur, const ValueRange& next) {
  ValueRange r = join(cur, next);
  if (r.umin < cur.umin) r.umin = 0;
  if (r.umax > cur.umax) r.umax = kU64Max;
  if (r.smin < cur.smin) r.smin = kS64Min;
  if (r.smax > cur.smax) r.smax = kS64Max;
  return synced_or_unknown(r);
}

bool ValueRange::subsumes(const ValueRange& a, const ValueRange& b) {
  return b.umin <= a.umin && a.umax <= b.umax && b.smin <= a.smin &&
         a.smax <= b.smax && Tnum::subsumes(a.tn, b.tn);
}

ValueRange ValueRange::alu(Op op, const ValueRange& a, const ValueRange& b) {
  switch (op) {
    case Op::AddReg: case Op::AddImm: return vr_add(a, b);
    case Op::SubReg: case Op::SubImm: return vr_sub(a, b);
    case Op::MulReg: case Op::MulImm: return vr_mul(a, b);
    case Op::DivReg: case Op::DivImm: return vr_udiv(a, b);
    case Op::ModReg: case Op::ModImm: return vr_umod(a, b);
    case Op::AndReg: case Op::AndImm: return vr_and(a, b);
    case Op::OrReg:  case Op::OrImm:  return vr_or(a, b);
    case Op::XorReg: case Op::XorImm: return vr_xor(a, b);
    case Op::LshReg: case Op::LshImm:
      return vr_lsh(a, shift_amount(b, 63));
    case Op::RshReg: case Op::RshImm:
      return vr_rsh(a, shift_amount(b, 63));
    case Op::ArshReg: case Op::ArshImm:
      return vr_arsh(a, shift_amount(b, 63));
    case Op::Neg:
      return vr_sub(konst(0), a);
    default:
      return vr_alu32(op, a, b);
  }
}

bool ValueRange::refine_branch(Op op, bool taken, ValueRange& d,
                               ValueRange& s) {
  Rel rel{};
  switch (op) {
    case Op::JeqReg: case Op::JeqImm: rel = taken ? Rel::Eq : Rel::Ne; break;
    case Op::JneReg: case Op::JneImm: rel = taken ? Rel::Ne : Rel::Eq; break;
    case Op::JgtReg: case Op::JgtImm: rel = taken ? Rel::Gt : Rel::Le; break;
    case Op::JgeReg: case Op::JgeImm: rel = taken ? Rel::Ge : Rel::Lt; break;
    case Op::JltReg: case Op::JltImm: rel = taken ? Rel::Lt : Rel::Ge; break;
    case Op::JleReg: case Op::JleImm: rel = taken ? Rel::Le : Rel::Gt; break;
    case Op::JsgtReg: case Op::JsgtImm:
      rel = taken ? Rel::SGt : Rel::SLe;
      break;
    case Op::JsgeReg: case Op::JsgeImm:
      rel = taken ? Rel::SGe : Rel::SLt;
      break;
    case Op::JsltReg: case Op::JsltImm:
      rel = taken ? Rel::SLt : Rel::SGe;
      break;
    case Op::JsleReg: case Op::JsleImm:
      rel = taken ? Rel::SLe : Rel::SGt;
      break;
    case Op::JsetReg: case Op::JsetImm:
      rel = taken ? Rel::Set : Rel::NSet;
      break;
    default:
      return true;  // Ja and friends: nothing to learn
  }
  return apply_rel(rel, d, s);
}

std::string to_string(const ValueRange& v) {
  std::ostringstream os;
  if (v.is_const()) {
    os << "const " << v.const_val();
    if (v.const_val() > 9) os << " (0x" << std::hex << v.const_val() << ")";
    return os.str();
  }
  os << "u[" << v.umin << "," << v.umax << "]";
  os << " s[" << v.smin << "," << v.smax << "]";
  os << " tnum(v=0x" << std::hex << v.tn.value << ",m=0x" << v.tn.mask
     << ")";
  return os.str();
}

}  // namespace hermes::bpf::analysis
