// Compound scalar abstract domain: a tnum (known bits) refined by unsigned
// [umin, umax] and signed [smin, smax] intervals, mirroring the kernel
// verifier's bpf_reg_state bounds. The three views are kept mutually
// consistent by sync() (the kernel's reg_bounds_sync/deduce dance).
//
// Soundness contract: if x is a concrete value a register may hold, then
// x ∈ γ(range) for the ValueRange the analyzer computes for that register.
// All transfer functions and branch refinements preserve this; it is what
// lets the verifier accept variable-offset memory accesses, and it is
// checked against concrete 64-bit sampling in tests/analysis_property_test.
#pragma once

#include <cstdint>
#include <limits>
#include <string>

#include "bpf/analysis/tnum.h"
#include "bpf/insn.h"

namespace hermes::bpf::analysis {

struct ValueRange {
  Tnum tn = Tnum::unknown();
  uint64_t umin = 0;
  uint64_t umax = ~0ull;
  int64_t smin = std::numeric_limits<int64_t>::min();
  int64_t smax = std::numeric_limits<int64_t>::max();

  static ValueRange unknown() { return {}; }
  static ValueRange konst(uint64_t v) {
    ValueRange r;
    r.tn = Tnum::konst(v);
    r.umin = r.umax = v;
    r.smin = r.smax = static_cast<int64_t>(v);
    return r;
  }
  static ValueRange bounded(uint64_t lo, uint64_t hi) {
    ValueRange r;
    r.umin = lo;
    r.umax = hi;
    r.sync();
    return r;
  }

  bool operator==(const ValueRange&) const = default;

  bool is_const() const { return umin == umax; }
  uint64_t const_val() const { return umin; }
  bool contains(uint64_t x) const {
    const auto sx = static_cast<int64_t>(x);
    return tn.contains(x) && x >= umin && x <= umax && sx >= smin &&
           sx <= smax;
  }

  // Propagate knowledge between the tnum and the two interval views until
  // stable. Returns false when the views contradict (empty concretization);
  // the caller treats that as an infeasible path.
  bool sync();

  // Truncation to the low 32 bits, zero-extended (BPF_ALU32 result rule).
  ValueRange cast32() const;

  // Least upper bound, and the widening operator applied at join points
  // that keep growing: any interval direction that moved past `cur` jumps
  // to its extreme so chains are finite (the tnum lattice already is).
  static ValueRange join(const ValueRange& a, const ValueRange& b);
  static ValueRange widen(const ValueRange& cur, const ValueRange& next);
  // a ⊆ b on all three views.
  static bool subsumes(const ValueRange& a, const ValueRange& b);

  // Transfer function for any ALU64/ALU32 opcode (Reg or Imm form; the
  // caller wraps an immediate as konst of its VM operand value). Mov and
  // the Ld* pseudo-ops are handled by the interpreter directly.
  static ValueRange alu(Op op, const ValueRange& a, const ValueRange& b);

  // Refine d (and s, for reg-reg forms) along one edge of a conditional
  // jump: `taken` selects the jump edge, otherwise the fall-through.
  // Returns false when that edge is infeasible (dead branch).
  static bool refine_branch(Op op, bool taken, ValueRange& d, ValueRange& s);
};

std::string to_string(const ValueRange& v);

}  // namespace hermes::bpf::analysis
