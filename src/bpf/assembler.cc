#include "bpf/assembler.h"

namespace hermes::bpf {

Assembler& Assembler::label(const std::string& name) {
  HERMES_CHECK_MSG(bound_.emplace(name, prog_.size()).second,
                   "label bound twice in bpf program");
  auto it = pending_.find(name);
  if (it != pending_.end()) {
    const size_t target = prog_.size();
    for (size_t site : it->second) {
      prog_[site].off = static_cast<int32_t>(target - site - 1);
    }
    pending_.erase(it);
  }
  return *this;
}

Program Assembler::finish() {
  HERMES_CHECK_MSG(pending_.empty(), "unresolved label in bpf program");
  return std::move(prog_);
}

}  // namespace hermes::bpf
