// A tiny structured assembler for building bpf::Program values in C++.
//
// Provides named labels with fixup so the Hermes dispatch program can be
// written readably in core/dispatch_prog.cc. A jump may reference a label
// bound later (forward fixup) or one already bound (backward edge — the
// verifier accepts these when its abstract interpreter can prove the loop
// bounded). Each label may be bound exactly once.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "bpf/insn.h"
#include "util/check.h"

namespace hermes::bpf {

// Strongly-typed register name: prevents overload ambiguity between
// register and immediate operands (mov(r2, r8) vs mov(r2, 8)).
struct R {
  uint8_t idx;
};
inline constexpr R r0{0}, r1{1}, r2{2}, r3{3}, r4{4}, r5{5}, r6{6}, r7{7},
    r8{8}, r9{9}, r10{10};

class Assembler {
 public:
  // --- ALU -----------------------------------------------------------
  Assembler& add(R d, R s) { return emit({Op::AddReg, d.idx, s.idx}); }
  Assembler& add(R d, int64_t i) { return emit({Op::AddImm, d.idx, 0, 0, i}); }
  Assembler& sub(R d, R s) { return emit({Op::SubReg, d.idx, s.idx}); }
  Assembler& sub(R d, int64_t i) { return emit({Op::SubImm, d.idx, 0, 0, i}); }
  Assembler& mul(R d, R s) { return emit({Op::MulReg, d.idx, s.idx}); }
  Assembler& mul(R d, int64_t i) { return emit({Op::MulImm, d.idx, 0, 0, i}); }
  Assembler& div(R d, R s) { return emit({Op::DivReg, d.idx, s.idx}); }
  Assembler& div(R d, int64_t i) { return emit({Op::DivImm, d.idx, 0, 0, i}); }
  Assembler& mod(R d, R s) { return emit({Op::ModReg, d.idx, s.idx}); }
  Assembler& mod(R d, int64_t i) { return emit({Op::ModImm, d.idx, 0, 0, i}); }
  Assembler& and_(R d, R s) { return emit({Op::AndReg, d.idx, s.idx}); }
  Assembler& and_(R d, int64_t i) { return emit({Op::AndImm, d.idx, 0, 0, i}); }
  Assembler& or_(R d, R s) { return emit({Op::OrReg, d.idx, s.idx}); }
  Assembler& or_(R d, int64_t i) { return emit({Op::OrImm, d.idx, 0, 0, i}); }
  Assembler& xor_(R d, R s) { return emit({Op::XorReg, d.idx, s.idx}); }
  Assembler& xor_(R d, int64_t i) { return emit({Op::XorImm, d.idx, 0, 0, i}); }
  Assembler& lsh(R d, R s) { return emit({Op::LshReg, d.idx, s.idx}); }
  Assembler& lsh(R d, int64_t i) { return emit({Op::LshImm, d.idx, 0, 0, i}); }
  Assembler& rsh(R d, R s) { return emit({Op::RshReg, d.idx, s.idx}); }
  Assembler& rsh(R d, int64_t i) { return emit({Op::RshImm, d.idx, 0, 0, i}); }
  Assembler& arsh(R d, R s) { return emit({Op::ArshReg, d.idx, s.idx}); }
  Assembler& arsh(R d, int64_t i) { return emit({Op::ArshImm, d.idx, 0, 0, i}); }
  Assembler& neg(R d) { return emit({Op::Neg, d.idx}); }
  Assembler& mov(R d, R s) { return emit({Op::MovReg, d.idx, s.idx}); }
  Assembler& mov(R d, int64_t i) { return emit({Op::MovImm, d.idx, 0, 0, i}); }
  Assembler& mov32(R d, R s) { return emit({Op::Mov32Reg, d.idx, s.idx}); }
  Assembler& mov32(R d, int32_t i) { return emit({Op::Mov32Imm, d.idx, 0, 0, i}); }
  Assembler& add32(R d, R s) { return emit({Op::Add32Reg, d.idx, s.idx}); }
  Assembler& add32(R d, int32_t i) { return emit({Op::Add32Imm, d.idx, 0, 0, i}); }
  Assembler& sub32(R d, R s) { return emit({Op::Sub32Reg, d.idx, s.idx}); }
  Assembler& sub32(R d, int32_t i) { return emit({Op::Sub32Imm, d.idx, 0, 0, i}); }
  Assembler& mul32(R d, R s) { return emit({Op::Mul32Reg, d.idx, s.idx}); }
  Assembler& mul32(R d, int32_t i) { return emit({Op::Mul32Imm, d.idx, 0, 0, i}); }
  Assembler& div32(R d, R s) { return emit({Op::Div32Reg, d.idx, s.idx}); }
  Assembler& div32(R d, int32_t i) { return emit({Op::Div32Imm, d.idx, 0, 0, i}); }
  Assembler& mod32(R d, R s) { return emit({Op::Mod32Reg, d.idx, s.idx}); }
  Assembler& mod32(R d, int32_t i) { return emit({Op::Mod32Imm, d.idx, 0, 0, i}); }
  Assembler& and32(R d, R s) { return emit({Op::And32Reg, d.idx, s.idx}); }
  Assembler& and32(R d, int32_t i) { return emit({Op::And32Imm, d.idx, 0, 0, i}); }
  Assembler& or32(R d, R s) { return emit({Op::Or32Reg, d.idx, s.idx}); }
  Assembler& or32(R d, int32_t i) { return emit({Op::Or32Imm, d.idx, 0, 0, i}); }
  Assembler& xor32(R d, R s) { return emit({Op::Xor32Reg, d.idx, s.idx}); }
  Assembler& xor32(R d, int32_t i) { return emit({Op::Xor32Imm, d.idx, 0, 0, i}); }
  Assembler& lsh32(R d, int32_t i) { return emit({Op::Lsh32Imm, d.idx, 0, 0, i}); }
  Assembler& rsh32(R d, int32_t i) { return emit({Op::Rsh32Imm, d.idx, 0, 0, i}); }
  Assembler& arsh32(R d, int32_t i) { return emit({Op::Arsh32Imm, d.idx, 0, 0, i}); }
  Assembler& neg32(R d) { return emit({Op::Neg32, d.idx}); }
  Assembler& ld_imm64(R d, uint64_t v) {
    return emit({Op::LdImm64, d.idx, 0, 0, static_cast<int64_t>(v)});
  }
  Assembler& ld_map_fd(R d, int32_t map_slot) {
    return emit({Op::LdMapFd, d.idx, 0, 0, map_slot});
  }

  // --- memory ---------------------------------------------------------
  Assembler& ldx_b(R d, R s, int32_t off) { return emit({Op::LdxB, d.idx, s.idx, off}); }
  Assembler& ldx_h(R d, R s, int32_t off) { return emit({Op::LdxH, d.idx, s.idx, off}); }
  Assembler& ldx_w(R d, R s, int32_t off) { return emit({Op::LdxW, d.idx, s.idx, off}); }
  Assembler& ldx_dw(R d, R s, int32_t off) { return emit({Op::LdxDW, d.idx, s.idx, off}); }
  Assembler& stx_b(R d, int32_t off, R s) { return emit({Op::StxB, d.idx, s.idx, off}); }
  Assembler& stx_h(R d, int32_t off, R s) { return emit({Op::StxH, d.idx, s.idx, off}); }
  Assembler& stx_w(R d, int32_t off, R s) { return emit({Op::StxW, d.idx, s.idx, off}); }
  Assembler& stx_dw(R d, int32_t off, R s) { return emit({Op::StxDW, d.idx, s.idx, off}); }
  Assembler& st_w(R d, int32_t off, int32_t i) { return emit({Op::StW, d.idx, 0, off, i}); }
  Assembler& st_dw(R d, int32_t off, int32_t i) { return emit({Op::StDW, d.idx, 0, off, i}); }

  // --- control flow ----------------------------------------------------
  // A jump may name a label bound later (forward fixup) or earlier
  // (backward edge, resolved immediately).
  Assembler& ja(const std::string& label) { return jmp(Op::Ja, r0, r0, 0, label); }
  Assembler& jeq(R d, R s, const std::string& l) { return jmp(Op::JeqReg, d, s, 0, l); }
  Assembler& jeq(R d, int64_t i, const std::string& l) { return jmp(Op::JeqImm, d, r0, i, l); }
  Assembler& jne(R d, R s, const std::string& l) { return jmp(Op::JneReg, d, s, 0, l); }
  Assembler& jne(R d, int64_t i, const std::string& l) { return jmp(Op::JneImm, d, r0, i, l); }
  Assembler& jgt(R d, R s, const std::string& l) { return jmp(Op::JgtReg, d, s, 0, l); }
  Assembler& jgt(R d, int64_t i, const std::string& l) { return jmp(Op::JgtImm, d, r0, i, l); }
  Assembler& jge(R d, R s, const std::string& l) { return jmp(Op::JgeReg, d, s, 0, l); }
  Assembler& jge(R d, int64_t i, const std::string& l) { return jmp(Op::JgeImm, d, r0, i, l); }
  Assembler& jlt(R d, R s, const std::string& l) { return jmp(Op::JltReg, d, s, 0, l); }
  Assembler& jlt(R d, int64_t i, const std::string& l) { return jmp(Op::JltImm, d, r0, i, l); }
  Assembler& jle(R d, R s, const std::string& l) { return jmp(Op::JleReg, d, s, 0, l); }
  Assembler& jle(R d, int64_t i, const std::string& l) { return jmp(Op::JleImm, d, r0, i, l); }
  Assembler& jset(R d, int64_t i, const std::string& l) { return jmp(Op::JsetImm, d, r0, i, l); }

  Assembler& call(HelperId h) {
    return emit({Op::Call, 0, 0, 0, static_cast<int64_t>(h)});
  }
  Assembler& exit() { return emit({Op::Exit}); }

  // Bind `label` to the next emitted instruction and patch pending forward
  // jumps; later jumps to it resolve immediately as backward edges.
  Assembler& label(const std::string& name);

  // Finalize: checks all labels resolved, returns the program.
  Program finish();

  size_t size() const { return prog_.size(); }

 private:
  Assembler& emit(Insn insn) {
    prog_.push_back(insn);
    return *this;
  }
  Assembler& jmp(Op op, R d, R s, int64_t imm, const std::string& label) {
    int32_t off = 0;
    if (auto it = bound_.find(label); it != bound_.end()) {
      // Already-bound label: resolve as a backward edge right away.
      off = static_cast<int32_t>(static_cast<int64_t>(it->second) -
                                 static_cast<int64_t>(prog_.size()) - 1);
    } else {
      pending_[label].push_back(prog_.size());
    }
    return emit({op, d.idx, s.idx, off, imm});
  }

  Program prog_;
  std::map<std::string, std::vector<size_t>> pending_;
  std::map<std::string, size_t> bound_;
};

}  // namespace hermes::bpf
