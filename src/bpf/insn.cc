#include "bpf/insn.h"

#include <array>
#include <sstream>

namespace hermes::bpf {

namespace {

constexpr const char* kOpNames[] = {
    "add",  "addi", "sub",  "subi", "mul",   "muli",  "div",   "divi",
    "mod",  "modi", "and",  "andi", "or",    "ori",   "xor",   "xori",
    "lsh",  "lshi", "rsh",  "rshi", "arsh",  "arshi", "neg",   "mov",
    "movi",
    "add32", "add32i", "sub32", "sub32i", "mul32", "mul32i",
    "div32", "div32i", "mod32", "mod32i", "and32", "and32i",
    "or32", "or32i", "xor32", "xor32i", "lsh32", "lsh32i",
    "rsh32", "rsh32i", "arsh32", "arsh32i", "neg32",
    "mov32", "mov32i", "ldimm64", "ldmapfd",
    "ldxb", "ldxh", "ldxw", "ldxdw",
    "stxb", "stxh", "stxw", "stxdw",
    "stb",  "sth",  "stw",  "stdw",
    "ja",
    "jeq",  "jeqi", "jne",  "jnei", "jgt",   "jgti",  "jge",   "jgei",
    "jlt",  "jlti", "jle",  "jlei", "jsgt",  "jsgti", "jsge",  "jsgei",
    "jslt", "jslti", "jsle", "jslei", "jset", "jseti",
    "call", "exit",
};
static_assert(std::size(kOpNames) == static_cast<size_t>(Op::Exit) + 1);

bool is_jump(Op op) {
  return op >= Op::Ja && op <= Op::JsetImm;
}

}  // namespace

std::string to_string(Op op) { return kOpNames[static_cast<size_t>(op)]; }

std::string disassemble(const Insn& insn) {
  std::ostringstream os;
  os << to_string(insn.op) << " r" << int(insn.dst);
  switch (insn.op) {
    case Op::AddReg: case Op::SubReg: case Op::MulReg: case Op::DivReg:
    case Op::ModReg: case Op::AndReg: case Op::OrReg: case Op::XorReg:
    case Op::LshReg: case Op::RshReg: case Op::ArshReg: case Op::MovReg:
    case Op::Add32Reg: case Op::Sub32Reg: case Op::Mul32Reg:
    case Op::Div32Reg: case Op::Mod32Reg: case Op::And32Reg:
    case Op::Or32Reg: case Op::Xor32Reg: case Op::Lsh32Reg:
    case Op::Rsh32Reg: case Op::Arsh32Reg:
    case Op::Mov32Reg:
      os << ", r" << int(insn.src);
      break;
    case Op::AddImm: case Op::SubImm: case Op::MulImm: case Op::DivImm:
    case Op::ModImm: case Op::AndImm: case Op::OrImm: case Op::XorImm:
    case Op::LshImm: case Op::RshImm: case Op::ArshImm: case Op::MovImm:
    case Op::Add32Imm: case Op::Sub32Imm: case Op::Mul32Imm:
    case Op::Div32Imm: case Op::Mod32Imm: case Op::And32Imm:
    case Op::Or32Imm: case Op::Xor32Imm: case Op::Lsh32Imm:
    case Op::Rsh32Imm: case Op::Arsh32Imm:
    case Op::Mov32Imm: case Op::LdImm64: case Op::LdMapFd:
      os << ", " << insn.imm;
      break;
    case Op::LdxB: case Op::LdxH: case Op::LdxW: case Op::LdxDW:
      os << ", [r" << int(insn.src) << (insn.off >= 0 ? "+" : "") << insn.off
         << "]";
      break;
    case Op::StxB: case Op::StxH: case Op::StxW: case Op::StxDW:
      os.str("");
      os << to_string(insn.op) << " [r" << int(insn.dst)
         << (insn.off >= 0 ? "+" : "") << insn.off << "], r" << int(insn.src);
      break;
    case Op::StB: case Op::StH: case Op::StW: case Op::StDW:
      os.str("");
      os << to_string(insn.op) << " [r" << int(insn.dst)
         << (insn.off >= 0 ? "+" : "") << insn.off << "], " << insn.imm;
      break;
    case Op::Call:
      os.str("");
      os << "call " << insn.imm;
      break;
    case Op::Exit:
      os.str("");
      os << "exit";
      break;
    case Op::Ja:
      os.str("");
      os << "ja +" << insn.off;
      break;
    default:
      break;
  }
  if (is_jump(insn.op) && insn.op != Op::Ja) {
    // conditional jump: append src/imm operand + target
    switch (insn.op) {
      case Op::JeqReg: case Op::JneReg: case Op::JgtReg: case Op::JgeReg:
      case Op::JltReg: case Op::JleReg: case Op::JsgtReg: case Op::JsgeReg:
      case Op::JsltReg: case Op::JsleReg: case Op::JsetReg:
        os << ", r" << int(insn.src);
        break;
      default:
        os << ", " << insn.imm;
        break;
    }
    os << " -> +" << insn.off;
  }
  return os.str();
}

std::string disassemble(const Program& prog) {
  std::ostringstream os;
  for (size_t i = 0; i < prog.size(); ++i) {
    os << i << ": " << disassemble(prog[i]) << "\n";
  }
  return os.str();
}

}  // namespace hermes::bpf
