// Instruction set of the in-repo eBPF virtual machine.
//
// This mirrors the semantics (not the binary encoding) of Linux eBPF as of
// the 4.19-era kernels the paper deploys on:
//   * 11 registers r0..r10; r10 is the read-only frame pointer,
//   * a 512-byte stack,
//   * verified control flow: backward edges are accepted only when the
//     abstract interpreter (bpf/analysis/) proves the loop bounded, as in
//     post-5.3 kernels — the dispatch program itself remains straight-line
//     because the paper's 4.19 deployment target rejects all back-edges,
//     hence its bitwise popcount tricks,
//   * helper calls with typed signatures,
//   * maps bound at load time (LdMapFd pseudo-instruction, as in the real
//     BPF_LD_IMM64 + BPF_PSEUDO_MAP_FD).
//
// The Hermes dispatch program (core/dispatch_prog.cc) is written against
// this ISA and must pass bpf::Verifier before it can run — preserving the
// paper's central implementation constraint.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace hermes::bpf {

inline constexpr int kNumRegs = 11;   // r0..r10
inline constexpr int kFramePointer = 10;
inline constexpr size_t kStackSize = 512;
inline constexpr size_t kMaxProgramLen = 4096;
inline constexpr uint64_t kMaxInsnsExecuted = 1 << 20;

using Reg = uint8_t;

enum class Op : uint8_t {
  // ALU64, dst = dst <op> src/imm
  AddReg, AddImm,
  SubReg, SubImm,
  MulReg, MulImm,
  DivReg, DivImm,   // unsigned; div-by-zero yields 0 (modern eBPF semantics)
  ModReg, ModImm,   // unsigned; mod-by-zero leaves dst (modern eBPF semantics)
  AndReg, AndImm,
  OrReg, OrImm,
  XorReg, XorImm,
  LshReg, LshImm,   // shift amounts taken mod 64
  RshReg, RshImm,   // logical
  ArshReg, ArshImm, // arithmetic
  Neg,
  MovReg, MovImm,
  // ALU32: operate on the low 32 bits, zero-extend into the register
  // (BPF_ALU class; BPF_ALU64 above).
  Add32Reg, Add32Imm,
  Sub32Reg, Sub32Imm,
  Mul32Reg, Mul32Imm,
  Div32Reg, Div32Imm,
  Mod32Reg, Mod32Imm,
  And32Reg, And32Imm,
  Or32Reg, Or32Imm,
  Xor32Reg, Xor32Imm,
  Lsh32Reg, Lsh32Imm,  // shift amounts taken mod 32
  Rsh32Reg, Rsh32Imm,
  Arsh32Reg, Arsh32Imm,
  Neg32,
  Mov32Reg, Mov32Imm,  // 32-bit move: zero-extends into the 64-bit register

  // Wide immediate: dst = (uint64)imm64 (split across imm/next like real
  // eBPF's BPF_LD_IMM64; we carry it in one Insn for simplicity).
  LdImm64,
  // dst = handle of map `imm` in the program's bound-map table.
  LdMapFd,

  // Memory. Address = src + off for loads, dst + off for stores.
  LdxB, LdxH, LdxW, LdxDW,   // dst = *(u8/u16/u32/u64*)(src + off), zero-ext
  StxB, StxH, StxW, StxDW,   // *(size*)(dst + off) = src
  StB, StH, StW, StDW,       // *(size*)(dst + off) = imm

  // Jumps. Target = pc + 1 + off (off >= 0 enforced by verifier).
  Ja,
  JeqReg, JeqImm,
  JneReg, JneImm,
  JgtReg, JgtImm,    // unsigned >
  JgeReg, JgeImm,    // unsigned >=
  JltReg, JltImm,    // unsigned <
  JleReg, JleImm,    // unsigned <=
  JsgtReg, JsgtImm,  // signed >
  JsgeReg, JsgeImm,
  JsltReg, JsltImm,
  JsleReg, JsleImm,
  JsetReg, JsetImm,  // jump if (dst & src) != 0

  Call,  // helper call: imm = HelperId; args r1..r5, result r0
  Exit,  // return r0
};

struct Insn {
  Op op{};
  Reg dst = 0;
  Reg src = 0;
  int32_t off = 0;     // jump offset or memory displacement
  int64_t imm = 0;     // immediate (int64 so LdImm64 fits in one Insn)
};

using Program = std::vector<Insn>;

// Helper function identifiers (subset used by Hermes, numbered to taste).
enum class HelperId : int32_t {
  MapLookupElem = 1,      // r1=map, r2=key ptr -> r0 = value ptr or NULL
  MapUpdateElem = 2,      // r1=map, r2=key ptr, r3=value ptr, r4=flags -> r0
  SkSelectReuseport = 3,  // r1=ctx, r2=sockarray, r3=key ptr, r4=flags -> r0
  KtimeGetNs = 4,         // -> r0 = current time (sim clock in tests)
  GetPrandomU32 = 5,      // -> r0 = pseudo-random u32
};

// Context passed to reuseport programs; modeled on struct sk_reuseport_md.
// Programs read it with LdxW at these fixed offsets.
struct ReuseportCtx {
  uint32_t len = 0;           // packet length
  uint32_t eth_protocol = 0;
  uint32_t ip_protocol = 0;
  uint32_t bind_inany = 0;
  uint32_t hash = 0;   // 4-tuple hash, precomputed by the "kernel"
  uint32_t hash2 = 0;  // (daddr, dport) hash for locality-aware grouping
  // Set by bpf_sk_select_reuseport on success; consumed by the runtime.
  uint64_t selected_socket = ~0ull;
  bool selection_made = false;
};

inline constexpr int32_t kCtxOffLen = 0;
inline constexpr int32_t kCtxOffEthProtocol = 4;
inline constexpr int32_t kCtxOffIpProtocol = 8;
inline constexpr int32_t kCtxOffBindInany = 12;
inline constexpr int32_t kCtxOffHash = 16;
inline constexpr int32_t kCtxOffHash2 = 20;  // locality hash (DIP, Dport)
inline constexpr uint32_t kCtxReadableBytes = 24;  // fields programs may read

// Program return codes for reuseport programs (mirrors SK_PASS/SK_DROP use).
inline constexpr uint64_t kRetUseSelection = 0;  // use socket picked via helper
inline constexpr uint64_t kRetFallback = 1;      // no decision: default hashing

std::string to_string(Op op);
std::string disassemble(const Insn& insn);
std::string disassemble(const Program& prog);

}  // namespace hermes::bpf
