// Minimal x86-64 instruction encoder for the tier-3 JIT (bpf/jit/).
//
// CodeBuf is a growable byte buffer with one emit method per instruction
// form the micro-op translator needs — nothing more. Registers are plain
// x86 encodings 0..15 (rax=0 .. r15=15); REX prefixes, SIB bytes and
// disp8/disp32 selection are handled here so jit_x86.cc reads like an
// assembly listing. Branch targets inside the buffer are raw byte offsets;
// rel8/rel32 patching is the caller's job (two-pass fixups).
//
// The encoder is host-independent (it only writes bytes); only executing
// the result requires an x86-64 host.
#pragma once

#include <cstdint>
#include <cstring>
#include <vector>

#include "util/check.h"

namespace hermes::bpf::jit {

// x86-64 register numbers.
inline constexpr int RAX = 0, RCX = 1, RDX = 2, RBX = 3, RSP = 4, RBP = 5,
                     RSI = 6, RDI = 7, R8 = 8, R9 = 9, R10 = 10, R11 = 11,
                     R12 = 12, R13 = 13, R14 = 14, R15 = 15;

// Condition codes (the low nibble of 0F 8x / 7x).
inline constexpr uint8_t CC_B = 0x2, CC_AE = 0x3, CC_E = 0x4, CC_NE = 0x5,
                         CC_BE = 0x6, CC_A = 0x7, CC_L = 0xC, CC_GE = 0xD,
                         CC_LE = 0xE, CC_G = 0xF;

inline uint8_t cc_invert(uint8_t cc) { return cc ^ 1; }

class CodeBuf {
 public:
  size_t size() const { return bytes_.size(); }
  const uint8_t* data() const { return bytes_.data(); }

  void u8(uint8_t v) { bytes_.push_back(v); }
  void u32(uint32_t v) {
    for (int i = 0; i < 4; ++i) u8(static_cast<uint8_t>(v >> (8 * i)));
  }
  void u64(uint64_t v) {
    for (int i = 0; i < 8; ++i) u8(static_cast<uint8_t>(v >> (8 * i)));
  }

  // --- moves -----------------------------------------------------------
  void mov_rr64(int dst, int src) { rr(true, 0x89, src, dst); }
  void mov_rr32(int dst, int src) { rr(false, 0x89, src, dst); }

  // dst = imm, shortest encoding that preserves the full 64-bit value.
  void mov_ri(int dst, uint64_t imm) {
    if (imm == static_cast<uint32_t>(imm)) {
      // mov r32, imm32 zero-extends.
      rex(false, 0, 0, dst);
      u8(0xB8 + (dst & 7));
      u32(static_cast<uint32_t>(imm));
    } else if (static_cast<int64_t>(imm) ==
               static_cast<int32_t>(static_cast<uint32_t>(imm))) {
      // mov r64, simm32 sign-extends.
      rex(true, 0, 0, dst);
      u8(0xC7);
      modrm_reg(0, dst);
      u32(static_cast<uint32_t>(imm));
    } else {
      rex(true, 0, 0, dst);
      u8(0xB8 + (dst & 7));
      u64(imm);
    }
  }

  // --- ALU reg, reg (64/32-bit; opcode is the /r store form) -----------
  void add_rr64(int dst, int src) { rr(true, 0x01, src, dst); }
  void sub_rr64(int dst, int src) { rr(true, 0x29, src, dst); }
  void and_rr64(int dst, int src) { rr(true, 0x21, src, dst); }
  void or_rr64(int dst, int src) { rr(true, 0x09, src, dst); }
  void xor_rr64(int dst, int src) { rr(true, 0x31, src, dst); }
  void cmp_rr64(int dst, int src) { rr(true, 0x39, src, dst); }
  void test_rr64(int dst, int src) { rr(true, 0x85, src, dst); }
  void add_rr32(int dst, int src) { rr(false, 0x01, src, dst); }
  void sub_rr32(int dst, int src) { rr(false, 0x29, src, dst); }
  void and_rr32(int dst, int src) { rr(false, 0x21, src, dst); }
  void or_rr32(int dst, int src) { rr(false, 0x09, src, dst); }
  void xor_rr32(int dst, int src) { rr(false, 0x31, src, dst); }
  void test_rr32(int dst, int src) { rr(false, 0x85, src, dst); }

  void xor_zero32(int dst) { xor_rr32(dst, dst); }  // zeroes all 64 bits

  // --- ALU reg, imm (group-1 /ext: 0=add 1=or 4=and 5=sub 6=xor 7=cmp) -
  void alu_ri64(int ext, int dst, int32_t imm) { gi(true, ext, dst, imm); }
  void alu_ri32(int ext, int dst, int32_t imm) { gi(false, ext, dst, imm); }
  void test_ri64(int dst, int32_t imm) {
    rex(true, 0, 0, dst);
    u8(0xF7);
    modrm_reg(0, dst);
    u32(static_cast<uint32_t>(imm));
  }

  // --- mul / div / neg -------------------------------------------------
  void imul_rr64(int dst, int src) { rr2(true, 0xAF, dst, src); }
  void imul_rr32(int dst, int src) { rr2(false, 0xAF, dst, src); }
  void imul_rri(bool w, int dst, int src, int32_t imm) {
    rex(w, dst, 0, src);
    u8(0x69);
    modrm_reg(dst, src);
    u32(static_cast<uint32_t>(imm));
  }
  void div_r(bool w, int src) {  // unsigned rdx:rax / src
    rex(w, 0, 0, src);
    u8(0xF7);
    modrm_reg(6, src);
  }
  void neg_r64(int dst) { grp3(true, 3, dst); }
  void neg_r32(int dst) { grp3(false, 3, dst); }

  // --- shifts ----------------------------------------------------------
  // ext: 4=shl 5=shr 7=sar. Count in cl or imm8 (hardware masks to 63/31,
  // matching BPF's mod-64 / mod-32 semantics).
  void shift_cl(bool w, int ext, int dst) {
    rex(w, 0, 0, dst);
    u8(0xD3);
    modrm_reg(ext, dst);
  }
  void shift_ri(bool w, int ext, int dst, uint8_t imm) {
    rex(w, 0, 0, dst);
    u8(0xC1);
    modrm_reg(ext, dst);
    u8(imm);
  }

  // --- memory: [base + disp] ------------------------------------------
  void load8(int dst, int base, int32_t disp) {  // movzx r64, byte
    rex(true, dst, 0, base);
    u8(0x0F);
    u8(0xB6);
    modrm_mem(dst, base, disp);
  }
  void load16(int dst, int base, int32_t disp) {  // movzx r64, word
    rex(true, dst, 0, base);
    u8(0x0F);
    u8(0xB7);
    modrm_mem(dst, base, disp);
  }
  void load32(int dst, int base, int32_t disp) {  // mov r32 (zero-extends)
    rex(false, dst, 0, base);
    u8(0x8B);
    modrm_mem(dst, base, disp);
  }
  void load64(int dst, int base, int32_t disp) {
    rex(true, dst, 0, base);
    u8(0x8B);
    modrm_mem(dst, base, disp);
  }
  // mov dst, [base + index*8]
  void load64_index8(int dst, int base, int index) {
    HERMES_CHECK(index != RSP);
    u8(0x48 | 0x4 /*R*/ * ((dst >> 3) & 1) | 0x2 /*X*/ * ((index >> 3) & 1) |
       0x1 /*B*/ * ((base >> 3) & 1));
    u8(0x8B);
    const int b = base & 7;
    if (b == 5) {  // rbp/r13 base needs an explicit disp8
      u8(0x44 | ((dst & 7) << 3));
      u8(0xC0 | ((index & 7) << 3) | b);  // scale=8
      u8(0);
    } else {
      u8(0x04 | ((dst & 7) << 3));
      u8(0xC0 | ((index & 7) << 3) | b);
    }
  }

  void store8(int base, int32_t disp, int src) {
    // Always emit REX: spl/bpl/sil/dil need it to address their low byte.
    force_rex(false, src, 0, base);
    u8(0x88);
    modrm_mem(src, base, disp);
  }
  void store16(int base, int32_t disp, int src) {
    u8(0x66);
    rex(false, src, 0, base);
    u8(0x89);
    modrm_mem(src, base, disp);
  }
  void store32(int base, int32_t disp, int src) {
    rex(false, src, 0, base);
    u8(0x89);
    modrm_mem(src, base, disp);
  }
  void store64(int base, int32_t disp, int src) {
    rex(true, src, 0, base);
    u8(0x89);
    modrm_mem(src, base, disp);
  }

  void store8_imm(int base, int32_t disp, uint8_t imm) {
    rex(false, 0, 0, base);
    u8(0xC6);
    modrm_mem(0, base, disp);
    u8(imm);
  }
  void store16_imm(int base, int32_t disp, uint16_t imm) {
    u8(0x66);
    rex(false, 0, 0, base);
    u8(0xC7);
    modrm_mem(0, base, disp);
    u8(static_cast<uint8_t>(imm));
    u8(static_cast<uint8_t>(imm >> 8));
  }
  void store32_imm(int base, int32_t disp, uint32_t imm) {
    rex(false, 0, 0, base);
    u8(0xC7);
    modrm_mem(0, base, disp);
    u32(imm);
  }
  void store64_simm32(int base, int32_t disp, int32_t imm) {
    rex(true, 0, 0, base);
    u8(0xC7);
    modrm_mem(0, base, disp);
    u32(static_cast<uint32_t>(imm));
  }

  // add qword [base + disp], imm32
  void add_mem_imm64(int base, int32_t disp, int32_t imm) {
    rex(true, 0, 0, base);
    if (imm >= -128 && imm <= 127) {
      u8(0x83);
      modrm_mem(0, base, disp);
      u8(static_cast<uint8_t>(imm));
    } else {
      u8(0x81);
      modrm_mem(0, base, disp);
      u32(static_cast<uint32_t>(imm));
    }
  }

  void lea(int dst, int base, int32_t disp) {
    rex(true, dst, 0, base);
    u8(0x8D);
    modrm_mem(dst, base, disp);
  }

  // --- stack / calls ---------------------------------------------------
  void push_r(int r) {
    if (r >= 8) u8(0x41);
    u8(0x50 + (r & 7));
  }
  void pop_r(int r) {
    if (r >= 8) u8(0x41);
    u8(0x58 + (r & 7));
  }
  void call_r(int r) {
    if (r >= 8) u8(0x41);
    u8(0xFF);
    modrm_reg(2, r);
  }
  void ret() { u8(0xC3); }

  // --- branches (placeholders; patch via patch_rel8/patch_rel32) -------
  // Returns the byte offset of the rel field.
  size_t jmp_rel32() {
    u8(0xE9);
    const size_t pos = size();
    u32(0);
    return pos;
  }
  size_t jcc_rel32(uint8_t cc) {
    u8(0x0F);
    u8(0x80 + cc);
    const size_t pos = size();
    u32(0);
    return pos;
  }
  size_t jcc_rel8(uint8_t cc) {
    u8(0x70 + cc);
    const size_t pos = size();
    u8(0);
    return pos;
  }
  size_t jmp_rel8() {
    u8(0xEB);
    const size_t pos = size();
    u8(0);
    return pos;
  }
  void patch_rel8(size_t pos) {  // target = current end of buffer
    const int64_t rel = static_cast<int64_t>(size()) -
                        (static_cast<int64_t>(pos) + 1);
    HERMES_CHECK(rel >= -128 && rel <= 127);
    bytes_[pos] = static_cast<uint8_t>(rel);
  }
  void patch_rel32(size_t pos, size_t target) {
    const int64_t rel = static_cast<int64_t>(target) -
                        (static_cast<int64_t>(pos) + 4);
    HERMES_CHECK(rel >= INT32_MIN && rel <= INT32_MAX);
    const auto v = static_cast<uint32_t>(static_cast<int32_t>(rel));
    for (int i = 0; i < 4; ++i) {
      bytes_[pos + static_cast<size_t>(i)] =
          static_cast<uint8_t>(v >> (8 * i));
    }
  }

  // movabs rax, imm64; call rax — register-indirect, so the helper may
  // live anywhere in the address space (no ±2GB constraint on the mmap'd
  // buffer's placement relative to the text segment).
  void call_imm64(uint64_t target) {
    mov_ri_full(RAX, target);
    call_r(RAX);
  }

  // Always-movabs form (stable 10-byte encoding).
  void mov_ri_full(int dst, uint64_t imm) {
    rex(true, 0, 0, dst);
    u8(0xB8 + (dst & 7));
    u64(imm);
  }

  // --- SSE (stack zeroing) ---------------------------------------------
  void xorps0() {  // xorps xmm0, xmm0
    u8(0x0F);
    u8(0x57);
    u8(0xC0);
  }
  void movaps_store0(int base, int32_t disp) {  // movaps [base+disp], xmm0
    rex(false, 0, 0, base);
    u8(0x0F);
    u8(0x29);
    modrm_mem(0, base, disp);
  }

 private:
  void rex(bool w, int reg, int index, int rm) {
    const uint8_t b = static_cast<uint8_t>(
        (w ? 0x8 : 0) | (((reg >> 3) & 1) << 2) | (((index >> 3) & 1) << 1) |
        ((rm >> 3) & 1));
    if (w || b != 0) u8(0x40 | b);
  }
  void force_rex(bool w, int reg, int index, int rm) {
    const uint8_t b = static_cast<uint8_t>(
        (w ? 0x8 : 0) | (((reg >> 3) & 1) << 2) | (((index >> 3) & 1) << 1) |
        ((rm >> 3) & 1));
    u8(0x40 | b);
  }
  void modrm_reg(int reg, int rm) {
    u8(static_cast<uint8_t>(0xC0 | ((reg & 7) << 3) | (rm & 7)));
  }
  // [base + disp]; emits SIB for rsp/r12 bases, forces disp8 for rbp/r13.
  void modrm_mem(int reg, int base, int32_t disp) {
    const int b = base & 7;
    const bool sib = (b == RSP);
    int mod;
    if (disp == 0 && b != RBP) {
      mod = 0;
    } else if (disp >= -128 && disp <= 127) {
      mod = 1;
    } else {
      mod = 2;
    }
    u8(static_cast<uint8_t>((mod << 6) | ((reg & 7) << 3) | (sib ? 4 : b)));
    if (sib) u8(0x24);  // scale=1, no index, base=rsp/r12
    if (mod == 1) {
      u8(static_cast<uint8_t>(disp));
    } else if (mod == 2) {
      u32(static_cast<uint32_t>(disp));
    }
  }
  void rr(bool w, uint8_t opcode, int reg, int rm) {
    rex(w, reg, 0, rm);
    u8(opcode);
    modrm_reg(reg, rm);
  }
  void rr2(bool w, uint8_t opcode2, int reg, int rm) {  // 0F-prefixed
    rex(w, reg, 0, rm);
    u8(0x0F);
    u8(opcode2);
    modrm_reg(reg, rm);
  }
  void gi(bool w, int ext, int rm, int32_t imm) {
    rex(w, 0, 0, rm);
    if (imm >= -128 && imm <= 127) {
      u8(0x83);
      modrm_reg(ext, rm);
      u8(static_cast<uint8_t>(imm));
    } else {
      u8(0x81);
      modrm_reg(ext, rm);
      u32(static_cast<uint32_t>(imm));
    }
  }
  void grp3(bool w, int ext, int rm) {
    rex(w, 0, 0, rm);
    u8(0xF7);
    modrm_reg(ext, rm);
  }

  std::vector<uint8_t> bytes_;
};

}  // namespace hermes::bpf::jit
