// Tier-3 JIT for the eBPF dispatch VM: compiles an ExecutionPlan's
// micro-op stream (bpf/plan.h) — fused superinstructions and verifier-
// elided accesses included — to native x86-64 in an mmap'd W^X buffer.
//
// Contract: generated code is bit-identical to the tier-1/2 micro-op
// interpreter (bpf/plan_exec.cc) in every observable — r0, insns_executed
// (tier-invariant; fused micro-ops charge their source instruction
// counts), fused/elided counters, map bytes, and reuseport selection side
// effects. tests/torture_bpf_diff_test.cc enforces this over >= 10k
// fuzzed programs; tests/bpf_jit_test.cc covers the codegen edge cases.
//
// compile() refuses — returning nullptr with a human-readable reason —
// on non-x86-64 hosts, when HERMES_BPF_JIT=off|0, when the buffer cannot
// be mapped W^X, or on a micro-op it cannot translate. The caller
// (compile_plan) then falls back to tier 2 and surfaces the reason
// through ExecutionPlan/Vm (the bpf.jit_fallbacks counter).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>

#include "bpf/plan.h"

namespace hermes::bpf::jit {

// Runtime block passed to generated code in rdi. Layout is ABI between
// jit_x86.cc's emitter (offsetof-baked displacements) and the out-of-line
// helpers; append-only.
struct JitRt {
  ReuseportCtx* ctx = nullptr;
  uint8_t* stack = nullptr;  // base of the 512-byte BPF stack (set by the
                             // generated prologue; lives in its frame)
  const MemRegion* regions = nullptr;  // array-map stores (checked access)
  uint64_t n_regions = 0;
  const std::function<uint64_t()>* time_fn = nullptr;
  const std::function<uint32_t()>* rand_fn = nullptr;
  uint64_t insns = 0;   // written back at Exit (r12 holds it in-flight)
  uint64_t fused = 0;   // fused superinstructions executed
  uint64_t elided = 0;  // unchecked accesses executed
};

// Layout metadata the compiler exports alongside the code buffer, consumed
// by the translation validator (jit/validate/). The offsets are *claims*,
// not trusted facts: the validator decodes every byte between consecutive
// offsets and rejects the buffer if any claim fails to match the decoded
// instruction stream, so wrong metadata cannot launder wrong code.
struct JitMeta {
  // code_off[i] = byte offset where micro-op i's emitted code begins (a
  // trailing counter-flush for a preceding straight-line run is charged to
  // the *preceding* segment). code_off[0] doubles as end-of-prologue.
  std::vector<uint32_t> code_off;
  // Offset of the trailing fell-off-end trap (verified unreachable; it is
  // the no-fall-through backstop).
  uint32_t tail_off = 0;
};

// Addresses of the out-of-line runtime helpers that generated code calls
// through baked movabs immediates. Exposed so the validator can recognize
// call targets in the decoded buffer; defined on every host (the helpers
// are plain C++, only the emitter is x86-64-gated).
struct HelperAddrs {
  uint64_t check_access = 0;
  uint64_t call_lookup = 0;
  uint64_t call_update = 0;
  uint64_t call_select = 0;
  uint64_t update_nc = 0;
  uint64_t time = 0;
  uint64_t rand = 0;
  uint64_t budget_abort = 0;       // noreturn
  uint64_t unknown_helper = 0;     // noreturn
  uint64_t unresolved_ldmapfd = 0; // noreturn
  uint64_t fell_off_end = 0;       // noreturn
};
const HelperAddrs& helper_addrs();

// An executable W^X code buffer. The mapping is RW only while compile()
// copies the emitted bytes in; it is RX for the object's whole lifetime
// and unmapped on destruction. Immutable after construction, so one
// JitCode may run concurrently from many threads (each run gets its own
// JitRt + stack).
class JitCode {
 public:
  using Entry = uint64_t (*)(JitRt*);

  JitCode(void* mem, size_t len, JitMeta meta)
      : mem_(mem), len_(len), meta_(std::move(meta)) {}
  ~JitCode();
  JitCode(const JitCode&) = delete;
  JitCode& operator=(const JitCode&) = delete;

  size_t code_bytes() const { return len_; }
  // The RX mapping is readable; the validator decodes straight from it.
  const uint8_t* code() const { return static_cast<const uint8_t*>(mem_); }
  const JitMeta& meta() const { return meta_; }

  // Execute. `regions` are the plan's hoisted array-map stores; time/rand
  // feed the KtimeGetNs / GetPrandomU32 helpers (may be empty functions).
  ExecutionPlan::ExecResult run(
      ReuseportCtx& ctx, std::span<const MemRegion> regions,
      const std::function<uint64_t()>& time_fn,
      const std::function<uint32_t()>& rand_fn) const;

 private:
  void* mem_;
  size_t len_;
  JitMeta meta_;
};

// True when this process can JIT at all: x86-64 host and not disabled via
// HERMES_BPF_JIT=off|0 (re-read per call — load-time only, not hot).
bool available();

// Compile a micro-op stream. nullptr + `reason` on refusal (see header
// comment); never aborts on unsupported input. `kind`, when non-null,
// classifies the refusal for the split fallback counters.
std::unique_ptr<JitCode> compile(std::span<const MicroOp> ops,
                                 std::string* reason,
                                 JitFallbackKind* kind = nullptr);

// Total compile() entries in this process. Verifier-rejected programs
// never reach compile_plan, so this must not move when a load fails
// verification — tests/bpf_jit_test.cc pins that.
uint64_t compile_attempts();

namespace testing {
// Force the W^X buffer allocation to fail, exercising the mmap-failure
// fallback path without an actually-restricted environment.
void force_alloc_failure(bool on);

// Deliberate codegen-bug injection for the translation validator's
// mutation self-test (tests/bpf_validate_test.cc). Each mutation fires at
// the first applicable site of the next compile() and then disarms for
// that compile; set_mutation(None) clears it. Never enable outside a test
// that validates the result — a mutated buffer is wrong by construction.
enum class Mutation : uint8_t {
  None = 0,
  FlipRel32,        // first branch fixup resolves 4 bytes past its target
  WrongImmediate,   // first emitted immediate off by one
  SkipBoundsCheck,  // first checked memory access emitted without its check
  SwapRegisters,    // first reg-reg ALU op emitted with dst/src swapped
};
void set_mutation(Mutation m);
Mutation mutation();
}  // namespace testing

}  // namespace hermes::bpf::jit
