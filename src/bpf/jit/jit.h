// Tier-3 JIT for the eBPF dispatch VM: compiles an ExecutionPlan's
// micro-op stream (bpf/plan.h) — fused superinstructions and verifier-
// elided accesses included — to native x86-64 in an mmap'd W^X buffer.
//
// Contract: generated code is bit-identical to the tier-1/2 micro-op
// interpreter (bpf/plan_exec.cc) in every observable — r0, insns_executed
// (tier-invariant; fused micro-ops charge their source instruction
// counts), fused/elided counters, map bytes, and reuseport selection side
// effects. tests/torture_bpf_diff_test.cc enforces this over >= 10k
// fuzzed programs; tests/bpf_jit_test.cc covers the codegen edge cases.
//
// compile() refuses — returning nullptr with a human-readable reason —
// on non-x86-64 hosts, when HERMES_BPF_JIT=off|0, when the buffer cannot
// be mapped W^X, or on a micro-op it cannot translate. The caller
// (compile_plan) then falls back to tier 2 and surfaces the reason
// through ExecutionPlan/Vm (the bpf.jit_fallbacks counter).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>

#include "bpf/plan.h"

namespace hermes::bpf::jit {

// Runtime block passed to generated code in rdi. Layout is ABI between
// jit_x86.cc's emitter (offsetof-baked displacements) and the out-of-line
// helpers; append-only.
struct JitRt {
  ReuseportCtx* ctx = nullptr;
  uint8_t* stack = nullptr;  // base of the 512-byte BPF stack (set by the
                             // generated prologue; lives in its frame)
  const MemRegion* regions = nullptr;  // array-map stores (checked access)
  uint64_t n_regions = 0;
  const std::function<uint64_t()>* time_fn = nullptr;
  const std::function<uint32_t()>* rand_fn = nullptr;
  uint64_t insns = 0;   // written back at Exit (r12 holds it in-flight)
  uint64_t fused = 0;   // fused superinstructions executed
  uint64_t elided = 0;  // unchecked accesses executed
};

// An executable W^X code buffer. The mapping is RW only while compile()
// copies the emitted bytes in; it is RX for the object's whole lifetime
// and unmapped on destruction. Immutable after construction, so one
// JitCode may run concurrently from many threads (each run gets its own
// JitRt + stack).
class JitCode {
 public:
  using Entry = uint64_t (*)(JitRt*);

  JitCode(void* mem, size_t len) : mem_(mem), len_(len) {}
  ~JitCode();
  JitCode(const JitCode&) = delete;
  JitCode& operator=(const JitCode&) = delete;

  size_t code_bytes() const { return len_; }

  // Execute. `regions` are the plan's hoisted array-map stores; time/rand
  // feed the KtimeGetNs / GetPrandomU32 helpers (may be empty functions).
  ExecutionPlan::ExecResult run(
      ReuseportCtx& ctx, std::span<const MemRegion> regions,
      const std::function<uint64_t()>& time_fn,
      const std::function<uint32_t()>& rand_fn) const;

 private:
  void* mem_;
  size_t len_;
};

// True when this process can JIT at all: x86-64 host and not disabled via
// HERMES_BPF_JIT=off|0 (re-read per call — load-time only, not hot).
bool available();

// Compile a micro-op stream. nullptr + `reason` on refusal (see header
// comment); never aborts on unsupported input.
std::unique_ptr<JitCode> compile(std::span<const MicroOp> ops,
                                 std::string* reason);

// Total compile() entries in this process. Verifier-rejected programs
// never reach compile_plan, so this must not move when a load fails
// verification — tests/bpf_jit_test.cc pins that.
uint64_t compile_attempts();

namespace testing {
// Force the W^X buffer allocation to fail, exercising the mmap-failure
// fallback path without an actually-restricted environment.
void force_alloc_failure(bool on);
}  // namespace testing

}  // namespace hermes::bpf::jit
