// x86-64 codegen for the tier-3 JIT (see bpf/jit/jit.h for the contract).
//
// Register mapping (kernel-JIT style — BPF argument registers land on the
// System V argument registers so helper calls are register shuffles, not
// spills):
//
//   BPF r0..r5  -> rax rdi rsi rdx rcx r8   (caller-saved; spilled around
//                                            out-of-line helper calls)
//   BPF r6..r9  -> rbx r13 r14 r15          (callee-saved)
//   BPF r10     -> rbp                      (frame pointer, read-only)
//   r12         -> live insns_executed counter (callee-saved)
//   r9 r10 r11  -> codegen scratch, never live across a micro-op
//
// Frame (rsp 16-byte aligned after the prologue, so calls are ABI-legal):
//
//   [rsp+  0.. 47]  six spill slots (rax rdi rsi rdx rcx r8)
//   [rsp+ 48]       JitRt*
//   [rsp+ 64..575]  the 512-byte BPF stack, zeroed by 32 movaps stores
//
// Instruction accounting is tier-invariant: source-instruction counts
// (fused micro-ops charge 19/4/3) accumulate statically per straight-line
// run and are flushed — add r12, imm / add qword [rt], imm — before every
// branch, at every jump target, and at Exit. The budget check runs on
// backward jumps only, which bounds every loop exactly like the threaded
// interpreter's taken-jump check does.
//
// Every memory access the verifier proved lands inline (mov with disp);
// unproven (range-dead) accesses and unpinned helper calls go through
// out-of-line C++ helpers that replicate bpf/plan_exec.cc's checked
// semantics byte for byte, JitRt* in hand.
#include "bpf/jit/jit.h"

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <atomic>
#include <utility>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/mman.h>
#endif

#include "bpf/jit/codegen.h"
#include "bpf/maps.h"
#include "util/check.h"

namespace hermes::bpf::jit {

namespace {

std::atomic<uint64_t> g_compile_attempts{0};
std::atomic<bool> g_force_alloc_failure{false};
std::atomic<uint8_t> g_mutation{0};  // testing::Mutation, armed per compile

bool env_disabled() {
  const char* e = std::getenv("HERMES_BPF_JIT");
  return e != nullptr &&
         (std::strcmp(e, "0") == 0 || std::strcmp(e, "off") == 0);
}

// ---------------------------------------------------------------------
// Out-of-line runtime helpers. Bodies mirror bpf/plan_exec.cc exactly;
// addresses are baked into the generated code as movabs immediates.
// ---------------------------------------------------------------------

[[noreturn]] void rt_budget_abort() {
  HERMES_CHECK_MSG(false, "bpf vm: instruction budget exceeded");
  std::abort();
}

[[noreturn]] void rt_unknown_helper() {
  HERMES_CHECK_MSG(false, "bpf vm: unknown helper at runtime");
  std::abort();
}

[[noreturn]] void rt_unresolved_ldmapfd() {
  HERMES_CHECK_MSG(false, "bpf plan: unresolved LdMapFd micro-op");
  std::abort();
}

[[noreturn]] void rt_fell_off_end() {
  HERMES_CHECK_MSG(false, "bpf jit: fell off program end");
  std::abort();
}

uint8_t* rt_check_access(JitRt* rt, uint64_t addr, uint64_t n) {
  auto* p = reinterpret_cast<uint8_t*>(addr);
  const auto in = [&](const uint8_t* base, size_t size) {
    return p >= base && p + n <= base + size;
  };
  if (in(rt->stack, kStackSize)) return p;
  if (in(reinterpret_cast<uint8_t*>(rt->ctx), kCtxReadableBytes)) return p;
  for (uint64_t i = 0; i < rt->n_regions; ++i) {
    if (in(rt->regions[i].base, rt->regions[i].size)) return p;
  }
  HERMES_CHECK_MSG(false, "bpf vm: runtime memory access violation");
  std::abort();
}

uint64_t rt_call_lookup(JitRt* rt, uint64_t r1, uint64_t r2) {
  ArrayMap* am = as_array_map(reinterpret_cast<Map*>(r1));
  HERMES_CHECK(am != nullptr);
  uint32_t key;
  std::memcpy(&key, rt_check_access(rt, r2, 4), 4);
  return reinterpret_cast<uint64_t>(am->lookup(key));
}

uint64_t rt_call_update(JitRt* rt, uint64_t r1, uint64_t r2, uint64_t r3) {
  ArrayMap* am = as_array_map(reinterpret_cast<Map*>(r1));
  HERMES_CHECK(am != nullptr);
  uint32_t key;
  std::memcpy(&key, rt_check_access(rt, r2, 4), 4);
  const uint8_t* val = rt_check_access(rt, r3, am->value_size());
  return am->update(key, val) ? 0 : static_cast<uint64_t>(-1);
}

uint64_t rt_call_select(JitRt* rt, uint64_t r1, uint64_t r2, uint64_t r3) {
  auto* rc = reinterpret_cast<ReuseportCtx*>(r1);
  ReuseportSockArray* sa = as_sock_array(reinterpret_cast<Map*>(r2));
  HERMES_CHECK(sa != nullptr);
  uint32_t key;
  std::memcpy(&key, rt_check_access(rt, r3, 4), 4);
  const uint64_t cookie = sa->get(key);
  if (cookie == kNoSocket) return static_cast<uint64_t>(-2);  // -ENOENT
  rc->selected_socket = cookie;
  rc->selection_made = true;
  return 0;
}

uint64_t rt_update_nc(ArrayMap* am, const uint8_t* key_p,
                      const uint8_t* val_p) {
  uint32_t key;
  std::memcpy(&key, key_p, 4);
  return am->update(key, val_p) ? 0 : static_cast<uint64_t>(-1);
}

uint64_t rt_time(JitRt* rt) {
  return (rt->time_fn != nullptr && *rt->time_fn) ? (*rt->time_fn)() : 0;
}

uint64_t rt_rand(JitRt* rt) {
  return (rt->rand_fn != nullptr && *rt->rand_fn) ? (*rt->rand_fn)() : 0;
}

template <typename F>
uint64_t fn_addr(F* f) {
  return reinterpret_cast<uint64_t>(f);
}

#if defined(__x86_64__)

// BPF register -> x86 register.
constexpr int kRegMap[kNumRegs] = {RAX, RDI, RSI, RDX, RCX, R8,
                                   RBX, R13, R14, R15, RBP};
constexpr int kS0 = R9, kS1 = R10, kS2 = R11;
constexpr int kCounter = R12;

// Frame layout (see header comment).
constexpr int32_t kSaveRax = 0, kSaveRdi = 8, kSaveRsi = 16, kSaveRdx = 24,
                  kSaveRcx = 32, kSaveR8 = 40;
constexpr int32_t kRtSlot = 48;
constexpr int32_t kBpfStack = 64;
constexpr int32_t kFrameSize = 584;  // 8 mod 16: rsp aligned after 6 pushes

constexpr int32_t kOffCtx = offsetof(JitRt, ctx);
constexpr int32_t kOffStack = offsetof(JitRt, stack);
constexpr int32_t kOffInsns = offsetof(JitRt, insns);
constexpr int32_t kOffFused = offsetof(JitRt, fused);
constexpr int32_t kOffElided = offsetof(JitRt, elided);
constexpr int32_t kOffSelSock = offsetof(ReuseportCtx, selected_socket);
constexpr int32_t kOffSelMade = offsetof(ReuseportCtx, selection_made);

bool fits_i32(int64_t v) { return v >= INT32_MIN && v <= INT32_MAX; }

bool is_jump_code(uint16_t c) {
  return c >= static_cast<uint16_t>(Op::Ja) &&
         c <= static_cast<uint16_t>(Op::JsetImm);
}

class Compiler {
 public:
  explicit Compiler(std::span<const MicroOp> ops) : ops_(ops) {}

  bool compile() {
    const size_t n = ops_.size();
    std::vector<uint8_t> is_target(n, 0);
    for (const MicroOp& u : ops_) {
      if (is_jump_code(u.code)) {
        if (u.target >= n) return fail("jump target out of range");
        is_target[u.target] = 1;
      }
    }
    emit_prologue();
    code_off_.resize(n);
    for (size_t i = 0; i < n; ++i) {
      if (is_target[i] != 0) flush_pending();
      code_off_[i] = b_.size();
      if (!emit_uop(ops_[i], static_cast<uint32_t>(i))) return false;
    }
    // Verified programs exit before the end; trap if one somehow doesn't.
    tail_off_ = b_.size();
    b_.call_imm64(fn_addr(&rt_fell_off_end));
    for (const Fixup& f : fixups_) {
      size_t target_off = code_off_[f.target];
      if (mut_ == testing::Mutation::FlipRel32 && !mut_done_) {
        mut_done_ = true;
        target_off += 4;  // deliberate wrong branch target (self-test)
      }
      b_.patch_rel32(f.pos, target_off);
    }
    return true;
  }

  const CodeBuf& buf() const { return b_; }
  const std::string& error() const { return error_; }

  JitMeta meta() const {
    JitMeta m;
    m.code_off.reserve(code_off_.size());
    for (size_t off : code_off_) {
      m.code_off.push_back(static_cast<uint32_t>(off));
    }
    m.tail_off = static_cast<uint32_t>(tail_off_);
    return m;
  }

 private:
  struct Fixup {
    size_t pos;       // byte offset of the rel32 field
    uint32_t target;  // micro-op index
  };

  bool fail(const char* msg) {
    error_ = msg;
    return false;
  }

  static int xr(uint8_t bpf_reg) { return kRegMap[bpf_reg]; }

  // --- mutation self-test hooks (testing::set_mutation) ----------------
  bool mut_fire(testing::Mutation m) {
    if (mut_ != m || mut_done_) return false;
    mut_done_ = true;
    return true;
  }
  int64_t mut_imm(int64_t imm) {
    return mut_fire(testing::Mutation::WrongImmediate) ? imm + 1 : imm;
  }
  void mut_swap(int* d, int* s) {
    if (mut_fire(testing::Mutation::SwapRegisters)) std::swap(*d, *s);
  }

  // --- instruction accounting -----------------------------------------
  void charge(uint32_t insns) { pending_insns_ += insns; }

  void flush_pending() {
    if (pending_insns_ != 0) {
      b_.alu_ri64(0, kCounter, static_cast<int32_t>(pending_insns_));
      pending_insns_ = 0;
    }
    if (pending_fused_ != 0 || pending_elided_ != 0) {
      b_.load64(kS2, RSP, kRtSlot);
      if (pending_fused_ != 0) {
        b_.add_mem_imm64(kS2, kOffFused, static_cast<int32_t>(pending_fused_));
        pending_fused_ = 0;
      }
      if (pending_elided_ != 0) {
        b_.add_mem_imm64(kS2, kOffElided,
                         static_cast<int32_t>(pending_elided_));
        pending_elided_ = 0;
      }
    }
  }

  void emit_budget_check() {
    b_.alu_ri64(7, kCounter, static_cast<int32_t>(kMaxInsnsExecuted));
    const size_t ok = b_.jcc_rel8(CC_B);
    b_.call_imm64(fn_addr(&rt_budget_abort));
    b_.patch_rel8(ok);
  }

  // --- prologue / epilogue --------------------------------------------
  void emit_prologue() {
    b_.push_r(RBP);
    b_.push_r(RBX);
    b_.push_r(R12);
    b_.push_r(R13);
    b_.push_r(R14);
    b_.push_r(R15);
    b_.alu_ri64(5, RSP, kFrameSize);  // sub
    b_.store64(RSP, kRtSlot, RDI);
    // Zero the BPF stack (rsp is 16-aligned here, so movaps is legal).
    b_.xorps0();
    for (int32_t off = 0; off < static_cast<int32_t>(kStackSize); off += 16) {
      b_.movaps_store0(RSP, kBpfStack + off);
    }
    b_.lea(kS0, RSP, kBpfStack);
    b_.store64(RDI, kOffStack, kS0);  // rt->stack, for checked accesses
    b_.load64(kS1, RDI, kOffCtx);     // fetch ctx before rdi becomes r1
    b_.xor_zero32(kCounter);
    b_.xor_zero32(RAX);  // r0
    b_.xor_zero32(RSI);  // r2
    b_.xor_zero32(RDX);  // r3
    b_.xor_zero32(RCX);  // r4
    b_.xor_zero32(R8);   // r5
    b_.xor_zero32(RBX);  // r6
    b_.xor_zero32(R13);  // r7
    b_.xor_zero32(R14);  // r8
    b_.xor_zero32(R15);  // r9
    b_.mov_rr64(RDI, kS1);  // r1 = ctx
    b_.lea(RBP, RSP, kBpfStack + static_cast<int32_t>(kStackSize));  // r10
  }

  void emit_epilogue() {
    b_.load64(kS2, RSP, kRtSlot);
    b_.store64(kS2, kOffInsns, kCounter);
    b_.alu_ri64(0, RSP, kFrameSize);  // add
    b_.pop_r(R15);
    b_.pop_r(R14);
    b_.pop_r(R13);
    b_.pop_r(R12);
    b_.pop_r(RBX);
    b_.pop_r(RBP);
    b_.ret();
  }

  // --- helper-call plumbing -------------------------------------------
  void save_bpf_caller_saved() {
    b_.store64(RSP, kSaveRax, RAX);
    b_.store64(RSP, kSaveRdi, RDI);
    b_.store64(RSP, kSaveRsi, RSI);
    b_.store64(RSP, kSaveRdx, RDX);
    b_.store64(RSP, kSaveRcx, RCX);
    b_.store64(RSP, kSaveR8, R8);
  }
  void restore_bpf_caller_saved(bool keep_rax) {
    if (!keep_rax) b_.load64(RAX, RSP, kSaveRax);
    b_.load64(RDI, RSP, kSaveRdi);
    b_.load64(RSI, RSP, kSaveRsi);
    b_.load64(RDX, RSP, kSaveRdx);
    b_.load64(RCX, RSP, kSaveRcx);
    b_.load64(R8, RSP, kSaveR8);
  }

  // Bounds-checked address: r9 = rt_check_access(rt, base_reg + off, n).
  // Preserves every BPF register (including rax).
  void emit_checked_access(int base_x86, int32_t off, uint32_t n) {
    if (mut_fire(testing::Mutation::SkipBoundsCheck)) {
      // Deliberate dropped check (self-test): same address in r9, no call.
      b_.lea(kS0, base_x86, off);
      return;
    }
    save_bpf_caller_saved();
    b_.lea(RSI, base_x86, off);  // wraps mod 2^64, like S + ip->off
    b_.mov_ri(RDX, n);
    b_.load64(RDI, RSP, kRtSlot);
    b_.call_imm64(fn_addr(&rt_check_access));
    b_.mov_rr64(kS0, RAX);
    restore_bpf_caller_saved(/*keep_rax=*/false);
  }

  // rt-taking helper with BPF r1..rN forwarded: shuffles the argument
  // registers down one slot (riN+1 <- riN) and puts JitRt* in rdi.
  void emit_rt_call(uint64_t fn, int n_bpf_args) {
    save_bpf_caller_saved();
    if (n_bpf_args >= 3) b_.mov_rr64(RCX, RDX);  // arg4 = r3
    if (n_bpf_args >= 2) b_.mov_rr64(RDX, RSI);  // arg3 = r2
    if (n_bpf_args >= 1) b_.mov_rr64(RSI, RDI);  // arg2 = r1
    b_.load64(RDI, RSP, kRtSlot);
    b_.call_imm64(fn);
    restore_bpf_caller_saved(/*keep_rax=*/true);  // rax = BPF r0 result
  }

  // --- small emit utilities -------------------------------------------
  // Group-1 64-bit ALU with a 64-bit immediate (ext: 0=add 1=or 4=and
  // 5=sub 6=xor 7=cmp). Falls back to movabs + reg form for wide imms.
  void g1_ri64(int ext, int dst, int64_t imm) {
    if (fits_i32(imm)) {
      b_.alu_ri64(ext, dst, static_cast<int32_t>(imm));
      return;
    }
    b_.mov_ri(kS0, static_cast<uint64_t>(imm));
    switch (ext) {
      case 0: b_.add_rr64(dst, kS0); break;
      case 1: b_.or_rr64(dst, kS0); break;
      case 4: b_.and_rr64(dst, kS0); break;
      case 5: b_.sub_rr64(dst, kS0); break;
      case 6: b_.xor_rr64(dst, kS0); break;
      case 7: b_.cmp_rr64(dst, kS0); break;
      default: HERMES_CHECK(false);
    }
  }

  void cmp_ri64(int reg, uint64_t v) {
    if (fits_i32(static_cast<int64_t>(v))) {
      b_.alu_ri64(7, reg, static_cast<int32_t>(v));
    } else {
      b_.mov_ri(kS1, v);
      b_.cmp_rr64(reg, kS1);
    }
  }

  // D op= imm in 32-bit space (auto zero-extend); imm truncated to u32.
  void g1_ri32(int ext, int dst, int64_t imm) {
    b_.alu_ri32(ext, dst, static_cast<int32_t>(static_cast<uint32_t>(imm)));
  }

  // dst = dst <shift> count-reg with BPF rcx discipline.
  void emit_shift_reg(bool w64, int ext, int dst, int src) {
    b_.mov_rr64(kS0, RCX);  // save BPF r4
    if (w64) {
      b_.mov_rr64(kS1, dst);
    } else {
      b_.mov_rr32(kS1, dst);
    }
    b_.mov_rr64(RCX, src);  // cl = count (hardware masks 63/31)
    b_.shift_cl(w64, ext, kS1);
    b_.mov_rr64(RCX, kS0);
    b_.mov_rr64(dst, kS1);
  }

  // Unsigned div/mod with BPF zero semantics (x/0 = 0, x%0 = x).
  void emit_div(bool w64, bool is_mod, int dst, bool src_is_imm, int src,
                int64_t imm) {
    if (src_is_imm) {
      b_.mov_ri(kS0, w64 ? static_cast<uint64_t>(imm)
                         : static_cast<uint64_t>(static_cast<uint32_t>(imm)));
    } else if (w64) {
      b_.mov_rr64(kS0, src);
    } else {
      b_.mov_rr32(kS0, src);
    }
    b_.mov_rr64(kS1, RAX);
    b_.mov_rr64(kS2, RDX);
    if (w64) {
      b_.test_rr64(kS0, kS0);
    } else {
      b_.test_rr32(kS0, kS0);
    }
    const size_t zero = b_.jcc_rel8(CC_E);
    if (w64) {
      b_.mov_rr64(RAX, dst);
    } else {
      b_.mov_rr32(RAX, dst);
    }
    b_.xor_zero32(RDX);
    b_.div_r(w64, kS0);
    if (w64) {
      b_.mov_rr64(kS0, is_mod ? RDX : RAX);
    } else {
      b_.mov_rr32(kS0, is_mod ? RDX : RAX);
    }
    const size_t done = b_.jmp_rel8();
    b_.patch_rel8(zero);
    if (is_mod) {
      if (w64) {
        b_.mov_rr64(kS0, dst);  // x % 0 = x (truncated to u32 in ALU32)
      } else {
        b_.mov_rr32(kS0, dst);
      }
    } else {
      b_.xor_zero32(kS0);  // x / 0 = 0
    }
    b_.patch_rel8(done);
    b_.mov_rr64(RAX, kS1);
    b_.mov_rr64(RDX, kS2);
    b_.mov_rr64(dst, kS0);
  }

  // Jump: charge + flush happen before the compare is emitted (the flush
  // clobbers flags); backward edges get the budget check on the taken
  // path only, mirroring plan_exec's JUMP macro.
  void emit_jump(uint32_t target, uint32_t idx) {
    if (target > idx) {
      fixups_.push_back({b_.jmp_rel32(), target});
    } else {
      emit_budget_check();
      fixups_.push_back({b_.jmp_rel32(), target});
    }
  }
  void emit_branch(uint8_t cc, uint32_t target, uint32_t idx) {
    if (target > idx) {
      fixups_.push_back({b_.jcc_rel32(cc), target});
    } else {
      const size_t skip = b_.jcc_rel8(cc_invert(cc));
      emit_budget_check();
      fixups_.push_back({b_.jmp_rel32(), target});
      b_.patch_rel8(skip);
    }
  }

  // --- the translator --------------------------------------------------
  bool emit_uop(const MicroOp& u, uint32_t idx);
  bool emit_op(Op op, const MicroOp& u, uint32_t idx);

  std::span<const MicroOp> ops_;
  CodeBuf b_;
  std::vector<size_t> code_off_;
  std::vector<Fixup> fixups_;
  std::string error_;
  size_t tail_off_ = 0;
  uint32_t pending_insns_ = 0;
  uint32_t pending_fused_ = 0;
  uint32_t pending_elided_ = 0;
  testing::Mutation mut_ = testing::mutation();
  bool mut_done_ = false;
};

bool Compiler::emit_op(Op op, const MicroOp& u, uint32_t idx) {
  int D = xr(u.dst);
  int S = xr(u.src);
  const int64_t imm = u.imm;
  charge(1);
  switch (op) {
    case Op::AddReg:
      mut_swap(&D, &S);
      b_.add_rr64(D, S);
      break;
    case Op::AddImm: g1_ri64(0, D, mut_imm(imm)); break;
    case Op::SubReg:
      mut_swap(&D, &S);
      b_.sub_rr64(D, S);
      break;
    case Op::SubImm: g1_ri64(5, D, imm); break;
    case Op::MulReg: b_.imul_rr64(D, S); break;
    case Op::MulImm:
      if (fits_i32(imm)) {
        b_.imul_rri(true, D, D, static_cast<int32_t>(imm));
      } else {
        b_.mov_ri(kS0, static_cast<uint64_t>(imm));
        b_.imul_rr64(D, kS0);
      }
      break;
    case Op::DivReg: emit_div(true, false, D, false, S, 0); break;
    case Op::DivImm: emit_div(true, false, D, true, 0, imm); break;
    case Op::ModReg: emit_div(true, true, D, false, S, 0); break;
    case Op::ModImm: emit_div(true, true, D, true, 0, imm); break;
    case Op::AndReg: b_.and_rr64(D, S); break;
    case Op::AndImm: g1_ri64(4, D, imm); break;
    case Op::OrReg: b_.or_rr64(D, S); break;
    case Op::OrImm: g1_ri64(1, D, imm); break;
    case Op::XorReg: b_.xor_rr64(D, S); break;
    case Op::XorImm: g1_ri64(6, D, imm); break;
    case Op::LshReg: emit_shift_reg(true, 4, D, S); break;
    case Op::LshImm: b_.shift_ri(true, 4, D, imm & 63); break;
    case Op::RshReg: emit_shift_reg(true, 5, D, S); break;
    case Op::RshImm: b_.shift_ri(true, 5, D, imm & 63); break;
    case Op::ArshReg: emit_shift_reg(true, 7, D, S); break;
    case Op::ArshImm: b_.shift_ri(true, 7, D, imm & 63); break;
    case Op::Neg: b_.neg_r64(D); break;
    case Op::MovReg: b_.mov_rr64(D, S); break;
    case Op::MovImm:
      b_.mov_ri(D, static_cast<uint64_t>(mut_imm(imm)));
      break;

    case Op::Add32Reg: b_.add_rr32(D, S); break;
    case Op::Add32Imm: g1_ri32(0, D, imm); break;
    case Op::Sub32Reg: b_.sub_rr32(D, S); break;
    case Op::Sub32Imm: g1_ri32(5, D, imm); break;
    case Op::Mul32Reg: b_.imul_rr32(D, S); break;
    case Op::Mul32Imm:
      b_.imul_rri(false, D, D,
                  static_cast<int32_t>(static_cast<uint32_t>(imm)));
      break;
    case Op::Div32Reg: emit_div(false, false, D, false, S, 0); break;
    case Op::Div32Imm: emit_div(false, false, D, true, 0, imm); break;
    case Op::Mod32Reg: emit_div(false, true, D, false, S, 0); break;
    case Op::Mod32Imm: emit_div(false, true, D, true, 0, imm); break;
    case Op::And32Reg: b_.and_rr32(D, S); break;
    case Op::And32Imm: g1_ri32(4, D, imm); break;
    case Op::Or32Reg: b_.or_rr32(D, S); break;
    case Op::Or32Imm: g1_ri32(1, D, imm); break;
    case Op::Xor32Reg: b_.xor_rr32(D, S); break;
    case Op::Xor32Imm: g1_ri32(6, D, imm); break;
    case Op::Lsh32Reg: emit_shift_reg(false, 4, D, S); break;
    case Op::Lsh32Imm: b_.shift_ri(false, 4, D, imm & 31); break;
    case Op::Rsh32Reg: emit_shift_reg(false, 5, D, S); break;
    case Op::Rsh32Imm: b_.shift_ri(false, 5, D, imm & 31); break;
    case Op::Arsh32Reg: emit_shift_reg(false, 7, D, S); break;
    case Op::Arsh32Imm: b_.shift_ri(false, 7, D, imm & 31); break;
    case Op::Neg32: b_.neg_r32(D); break;
    case Op::Mov32Reg: b_.mov_rr32(D, S); break;
    case Op::Mov32Imm:
      b_.mov_ri(D, static_cast<uint32_t>(mut_imm(imm)));
      break;
    case Op::LdImm64:
      b_.mov_ri(D, static_cast<uint64_t>(mut_imm(imm)));
      break;

    case Op::LdMapFd:
      // compile_plan always rewrites this to ULdMapPtr.
      b_.call_imm64(fn_addr(&rt_unresolved_ldmapfd));
      break;

    // Checked memory: out-of-line bounds check, then the access itself.
    case Op::LdxB:
      emit_checked_access(S, u.off, 1);
      b_.load8(D, kS0, 0);
      break;
    case Op::LdxH:
      emit_checked_access(S, u.off, 2);
      b_.load16(D, kS0, 0);
      break;
    case Op::LdxW:
      emit_checked_access(S, u.off, 4);
      b_.load32(D, kS0, 0);
      break;
    case Op::LdxDW:
      emit_checked_access(S, u.off, 8);
      b_.load64(D, kS0, 0);
      break;
    case Op::StxB:
      emit_checked_access(D, u.off, 1);
      b_.store8(kS0, 0, S);
      break;
    case Op::StxH:
      emit_checked_access(D, u.off, 2);
      b_.store16(kS0, 0, S);
      break;
    case Op::StxW:
      emit_checked_access(D, u.off, 4);
      b_.store32(kS0, 0, S);
      break;
    case Op::StxDW:
      emit_checked_access(D, u.off, 8);
      b_.store64(kS0, 0, S);
      break;
    case Op::StB:
      emit_checked_access(D, u.off, 1);
      b_.store8_imm(kS0, 0, static_cast<uint8_t>(imm));
      break;
    case Op::StH:
      emit_checked_access(D, u.off, 2);
      b_.store16_imm(kS0, 0, static_cast<uint16_t>(imm));
      break;
    case Op::StW:
      emit_checked_access(D, u.off, 4);
      b_.store32_imm(kS0, 0, static_cast<uint32_t>(imm));
      break;
    case Op::StDW:
      emit_checked_access(D, u.off, 8);
      if (fits_i32(imm)) {
        b_.store64_simm32(kS0, 0, static_cast<int32_t>(imm));
      } else {
        b_.mov_ri(kS1, static_cast<uint64_t>(imm));
        b_.store64(kS0, 0, kS1);
      }
      break;

    case Op::Ja:
      flush_pending();
      emit_jump(u.target, idx);
      break;

#define HERMES_JIT_BRANCH_RR(opname, cc)    \
  case Op::opname:                          \
    flush_pending();                        \
    b_.cmp_rr64(D, S);                      \
    emit_branch(cc, u.target, idx);         \
    break
#define HERMES_JIT_BRANCH_RI(opname, cc)    \
  case Op::opname:                          \
    flush_pending();                        \
    cmp_ri64(D, static_cast<uint64_t>(imm)); \
    emit_branch(cc, u.target, idx);         \
    break

    HERMES_JIT_BRANCH_RR(JeqReg, CC_E);
    HERMES_JIT_BRANCH_RI(JeqImm, CC_E);
    HERMES_JIT_BRANCH_RR(JneReg, CC_NE);
    HERMES_JIT_BRANCH_RI(JneImm, CC_NE);
    HERMES_JIT_BRANCH_RR(JgtReg, CC_A);
    HERMES_JIT_BRANCH_RI(JgtImm, CC_A);
    HERMES_JIT_BRANCH_RR(JgeReg, CC_AE);
    HERMES_JIT_BRANCH_RI(JgeImm, CC_AE);
    HERMES_JIT_BRANCH_RR(JltReg, CC_B);
    HERMES_JIT_BRANCH_RI(JltImm, CC_B);
    HERMES_JIT_BRANCH_RR(JleReg, CC_BE);
    HERMES_JIT_BRANCH_RI(JleImm, CC_BE);
    HERMES_JIT_BRANCH_RR(JsgtReg, CC_G);
    HERMES_JIT_BRANCH_RI(JsgtImm, CC_G);
    HERMES_JIT_BRANCH_RR(JsgeReg, CC_GE);
    HERMES_JIT_BRANCH_RI(JsgeImm, CC_GE);
    HERMES_JIT_BRANCH_RR(JsltReg, CC_L);
    HERMES_JIT_BRANCH_RI(JsltImm, CC_L);
    HERMES_JIT_BRANCH_RR(JsleReg, CC_LE);
    HERMES_JIT_BRANCH_RI(JsleImm, CC_LE);
#undef HERMES_JIT_BRANCH_RR
#undef HERMES_JIT_BRANCH_RI

    case Op::JsetReg:
      flush_pending();
      b_.test_rr64(D, S);
      emit_branch(CC_NE, u.target, idx);
      break;
    case Op::JsetImm:
      flush_pending();
      if (fits_i32(imm)) {
        b_.test_ri64(D, static_cast<int32_t>(imm));
      } else {
        b_.mov_ri(kS0, static_cast<uint64_t>(imm));
        b_.test_rr64(D, kS0);
      }
      emit_branch(CC_NE, u.target, idx);
      break;

    case Op::Call:
      // Only emitted for an unknown helper id at a range-dead pc.
      b_.call_imm64(fn_addr(&rt_unknown_helper));
      break;

    case Op::Exit:
      flush_pending();
      emit_epilogue();
      break;
  }
  return true;
}

bool Compiler::emit_uop(const MicroOp& u, uint32_t idx) {
  if (u.code < kOpCount) return emit_op(static_cast<Op>(u.code), u, idx);

  const int D = xr(u.dst);
  const int S = xr(u.src);
  switch (u.code) {
    case ULdMapPtr:
      charge(1);
      b_.mov_ri(D, static_cast<uint64_t>(u.imm));
      break;

    case UPopcount: {
      // Exact final state of the 19-insn sequence: dst = popcount(v),
      // src = b >> 4, aux = 0x0101010101010101 (plan_exec's UPopcount).
      const int A = xr(u.aux);
      charge(19);
      ++pending_fused_;
      b_.mov_rr64(kS0, S);
      b_.shift_ri(true, 5, kS0, 1);
      b_.mov_ri(kS1, 0x5555555555555555ull);
      b_.and_rr64(kS0, kS1);
      b_.mov_rr64(kS2, S);
      b_.sub_rr64(kS2, kS0);  // a
      b_.mov_rr64(kS0, kS2);
      b_.shift_ri(true, 5, kS0, 2);
      b_.mov_ri(kS1, 0x3333333333333333ull);
      b_.and_rr64(kS0, kS1);
      b_.and_rr64(kS2, kS1);
      b_.add_rr64(kS2, kS0);  // b
      b_.mov_rr64(kS0, kS2);
      b_.shift_ri(true, 5, kS0, 4);  // b >> 4
      b_.mov_rr64(S, kS0);
      b_.add_rr64(kS0, kS2);  // b + (b >> 4)
      b_.mov_ri(kS1, 0x0f0f0f0f0f0f0f0full);
      b_.and_rr64(kS0, kS1);
      b_.mov_ri(kS1, 0x0101010101010101ull);
      b_.imul_rr64(kS0, kS1);
      b_.shift_ri(true, 5, kS0, 56);
      b_.mov_rr64(D, kS0);
      b_.mov_ri(A, 0x0101010101010101ull);
      break;
    }

    case UBlsr:
      // dst &= dst - 1; src = dst_old - 1 (3 source insns).
      charge(3);
      ++pending_fused_;
      b_.lea(kS0, D, -1);
      b_.mov_rr64(S, kS0);
      b_.and_rr64(D, kS0);
      break;

    case UIsolateLow:
      // dst = ((0 - v) & v) - 1, v = src (4 source insns).
      charge(4);
      ++pending_fused_;
      b_.mov_rr64(kS0, S);
      b_.neg_r64(kS0);
      b_.and_rr64(kS0, S);
      b_.lea(D, kS0, -1);
      break;

    // Verifier-proven memory accesses: a bare mov.
    case ULdxBNC:
      charge(1);
      ++pending_elided_;
      b_.load8(D, S, u.off);
      break;
    case ULdxHNC:
      charge(1);
      ++pending_elided_;
      b_.load16(D, S, u.off);
      break;
    case ULdxWNC:
      charge(1);
      ++pending_elided_;
      b_.load32(D, S, u.off);
      break;
    case ULdxDWNC:
      charge(1);
      ++pending_elided_;
      b_.load64(D, S, u.off);
      break;
    case UStxBNC:
      charge(1);
      ++pending_elided_;
      b_.store8(D, u.off, S);
      break;
    case UStxHNC:
      charge(1);
      ++pending_elided_;
      b_.store16(D, u.off, S);
      break;
    case UStxWNC:
      charge(1);
      ++pending_elided_;
      b_.store32(D, u.off, S);
      break;
    case UStxDWNC:
      charge(1);
      ++pending_elided_;
      b_.store64(D, u.off, S);
      break;
    case UStBNC:
      charge(1);
      ++pending_elided_;
      b_.store8_imm(D, u.off, static_cast<uint8_t>(u.imm));
      break;
    case UStHNC:
      charge(1);
      ++pending_elided_;
      b_.store16_imm(D, u.off, static_cast<uint16_t>(u.imm));
      break;
    case UStWNC:
      charge(1);
      ++pending_elided_;
      b_.store32_imm(D, u.off, static_cast<uint32_t>(u.imm));
      break;
    case UStDWNC:
      charge(1);
      ++pending_elided_;
      if (fits_i32(u.imm)) {
        b_.store64_simm32(D, u.off, static_cast<int32_t>(u.imm));
      } else {
        b_.mov_ri(kS0, static_cast<uint64_t>(u.imm));
        b_.store64(D, u.off, kS0);
      }
      break;

    case UCallLookup:
      charge(1);
      emit_rt_call(fn_addr(&rt_call_lookup), 2);
      break;
    case UCallUpdate:
      charge(1);
      emit_rt_call(fn_addr(&rt_call_update), 3);
      break;
    case UCallSelect:
      charge(1);
      emit_rt_call(fn_addr(&rt_call_select), 3);
      break;
    case UCallTime:
      charge(1);
      emit_rt_call(fn_addr(&rt_time), 0);
      break;
    case UCallRand:
      charge(1);
      emit_rt_call(fn_addr(&rt_rand), 0);
      break;

    case UCallLookupNC: {
      // Analysis pinned the map: bake base/max_entries/stride and inline
      // the whole lookup (r0 = base + key*stride, or 0 when key OOB).
      auto* am = reinterpret_cast<ArrayMap*>(static_cast<uintptr_t>(u.imm));
      charge(1);
      ++pending_elided_;
      b_.load32(kS0, RSI, 0);  // key = *(u32*)r2 (proven in-bounds)
      cmp_ri64(kS0, am->max_entries());
      const size_t oob = b_.jcc_rel8(CC_AE);
      b_.mov_ri_full(RAX, reinterpret_cast<uint64_t>(am->storage_base()));
      b_.imul_rri(true, kS1, kS0, static_cast<int32_t>(am->stride()));
      b_.add_rr64(RAX, kS1);
      const size_t done = b_.jmp_rel8();
      b_.patch_rel8(oob);
      b_.xor_zero32(RAX);
      b_.patch_rel8(done);
      break;
    }

    case UCallUpdateNC: {
      auto* am = reinterpret_cast<ArrayMap*>(static_cast<uintptr_t>(u.imm));
      charge(1);
      ++pending_elided_;
      save_bpf_caller_saved();
      // r2 (key ptr) and r3 (value ptr) already sit in rsi/rdx.
      b_.mov_ri_full(RDI, reinterpret_cast<uint64_t>(am));
      b_.call_imm64(fn_addr(&rt_update_nc));
      restore_bpf_caller_saved(/*keep_rax=*/true);
      break;
    }

    case UCallSelectNC: {
      // Fully inline: cookie = slots[key] (plain 8-byte load — acquire on
      // x86), write the selection through r1 (the ctx), r0 = 0 / -ENOENT.
      auto* sa =
          reinterpret_cast<ReuseportSockArray*>(static_cast<uintptr_t>(u.imm));
      charge(1);
      ++pending_elided_;
      b_.load32(kS0, RDX, 0);  // key = *(u32*)r3 (proven in-bounds)
      cmp_ri64(kS0, sa->max_entries());
      const size_t oob = b_.jcc_rel8(CC_AE);
      b_.mov_ri_full(kS1, reinterpret_cast<uint64_t>(sa->slots_data()));
      b_.load64_index8(kS1, kS1, kS0);
      const size_t have = b_.jmp_rel8();
      b_.patch_rel8(oob);
      b_.mov_ri(kS1, kNoSocket);
      b_.patch_rel8(have);
      b_.alu_ri64(7, kS1, -1);  // cookie == kNoSocket?
      const size_t noent = b_.jcc_rel8(CC_E);
      b_.store64(RDI, kOffSelSock, kS1);  // rc = r1 (rdi), like plan_exec
      b_.store8_imm(RDI, kOffSelMade, 1);
      b_.xor_zero32(RAX);
      const size_t done = b_.jmp_rel8();
      b_.patch_rel8(noent);
      b_.mov_ri(RAX, static_cast<uint64_t>(-2));  // -ENOENT
      b_.patch_rel8(done);
      break;
    }

    default:
      return fail("unsupported micro-op code");
  }
  return true;
}

#endif  // defined(__x86_64__)

}  // namespace

JitCode::~JitCode() {
#if defined(__unix__) || defined(__APPLE__)
  if (mem_ != nullptr) munmap(mem_, len_);
#endif
}

ExecutionPlan::ExecResult JitCode::run(
    ReuseportCtx& ctx, std::span<const MemRegion> regions,
    const std::function<uint64_t()>& time_fn,
    const std::function<uint32_t()>& rand_fn) const {
  JitRt rt;
  rt.ctx = &ctx;
  rt.regions = regions.data();
  rt.n_regions = regions.size();
  rt.time_fn = &time_fn;
  rt.rand_fn = &rand_fn;
  const auto entry = reinterpret_cast<Entry>(mem_);
  ExecutionPlan::ExecResult res;
  res.ret = entry(&rt);
  res.insns_executed = rt.insns;
  res.fused_hits = static_cast<uint32_t>(rt.fused);
  res.elided_checks = static_cast<uint32_t>(rt.elided);
  return res;
}

bool available() {
#if defined(__x86_64__)
  return !env_disabled();
#else
  return false;
#endif
}

uint64_t compile_attempts() {
  return g_compile_attempts.load(std::memory_order_relaxed);
}

const HelperAddrs& helper_addrs() {
  static const HelperAddrs kAddrs = [] {
    HelperAddrs a;
    a.check_access = fn_addr(&rt_check_access);
    a.call_lookup = fn_addr(&rt_call_lookup);
    a.call_update = fn_addr(&rt_call_update);
    a.call_select = fn_addr(&rt_call_select);
    a.update_nc = fn_addr(&rt_update_nc);
    a.time = fn_addr(&rt_time);
    a.rand = fn_addr(&rt_rand);
    a.budget_abort = fn_addr(&rt_budget_abort);
    a.unknown_helper = fn_addr(&rt_unknown_helper);
    a.unresolved_ldmapfd = fn_addr(&rt_unresolved_ldmapfd);
    a.fell_off_end = fn_addr(&rt_fell_off_end);
    return a;
  }();
  return kAddrs;
}

namespace testing {
void force_alloc_failure(bool on) {
  g_force_alloc_failure.store(on, std::memory_order_relaxed);
}
void set_mutation(Mutation m) {
  g_mutation.store(static_cast<uint8_t>(m), std::memory_order_relaxed);
}
Mutation mutation() {
  return static_cast<Mutation>(g_mutation.load(std::memory_order_relaxed));
}
}  // namespace testing

std::unique_ptr<JitCode> compile(std::span<const MicroOp> ops,
                                 std::string* reason, JitFallbackKind* kind) {
  g_compile_attempts.fetch_add(1, std::memory_order_relaxed);
  const auto refuse = [&](JitFallbackKind k) {
    if (kind != nullptr) *kind = k;
  };
#if !defined(__x86_64__)
  (void)ops;
  if (reason != nullptr) *reason = "host is not x86-64";
  refuse(JitFallbackKind::Disabled);
  return nullptr;
#else
  if (env_disabled()) {
    if (reason != nullptr) *reason = "disabled by HERMES_BPF_JIT";
    refuse(JitFallbackKind::Disabled);
    return nullptr;
  }
  Compiler c(ops);
  if (!c.compile()) {
    if (reason != nullptr) *reason = "codegen refused: " + c.error();
    refuse(JitFallbackKind::Other);
    return nullptr;
  }
  const size_t len = c.buf().size();
  // W^X lifecycle: the mapping is writable only between mmap and the
  // mprotect flip below; it is executable-and-read-only ever after.
  if (g_force_alloc_failure.load(std::memory_order_relaxed)) {
    if (reason != nullptr) {
      *reason = "mmap(RW) failed: forced by testing hook";
    }
    refuse(JitFallbackKind::AllocFailure);
    return nullptr;
  }
  void* mem = mmap(nullptr, len, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (mem == MAP_FAILED) {
    if (reason != nullptr) {
      *reason = std::string("mmap(RW) failed: ") + std::strerror(errno);
    }
    refuse(JitFallbackKind::AllocFailure);
    return nullptr;
  }
  std::memcpy(mem, c.buf().data(), len);
  if (mprotect(mem, len, PROT_READ | PROT_EXEC) != 0) {
    const int err = errno;
    munmap(mem, len);
    if (reason != nullptr) {
      *reason = std::string("mprotect(RX) failed: ") + std::strerror(err);
    }
    refuse(JitFallbackKind::AllocFailure);
    return nullptr;
  }
  return std::make_unique<JitCode>(mem, len, c.meta());
#endif
}

}  // namespace hermes::bpf::jit
