// Translation validator for the tier-3 JIT (see validate.h for the layer
// overview). The implementation is organized as one Checker pass over the
// decoded buffer:
//
//   check_meta      — the compiler-exported offsets are internally sane
//   decode          — byte-exact decode of prologue / segments / tail
//   check_prologue  — exact frame-ABI instruction sequence
//   check_tail      — the fell-off-end trap backstop
//   static_pass     — per-segment CFG, accounting, budget, stray-write and
//                     elision-coverage checks (with baked-immediate
//                     verification against the loaded maps)
//   trial_pass      — differential symbolic execution of every segment
//                     against an exact micro-op spec interpreter, plus the
//                     ValueRange containment / refine_branch envelope
//
// The spec interpreter here deliberately re-states plan_exec.cc's
// semantics instead of calling into it: an equivalence checker that shares
// its model with the implementation under test proves nothing. Both sides
// of each trial run against a deterministic byte-granular memory oracle
// and log an ordered observable-event stream (bounds checks, stores,
// helper calls, aborts) that must match exactly.
#include "bpf/jit/validate/validate.h"

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdlib>
#include <cstring>
#include <map>
#include <sstream>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "bpf/analysis/interp.h"
#include "bpf/analysis/value_range.h"
#include "bpf/insn.h"
#include "bpf/jit/codegen.h"
#include "bpf/jit/jit.h"
#include "bpf/jit/validate/x86_decode.h"
#include "bpf/maps.h"

namespace hermes::bpf::jit::validate {

namespace {

using analysis::ValueRange;

std::atomic<uint64_t> g_accepts{0};
std::atomic<uint64_t> g_rejects{0};

// splitmix64: the deterministic trial-vector / oracle generator.
uint64_t mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

// Sentinel addresses for symbolic trials. They are never dereferenced as
// host pointers — all memory goes through the TrialMem oracle — but they
// must be pairwise disjoint so the executor's skip rules (frame spills,
// JitRt counter writebacks) cannot alias program-visible stores. The BPF
// r10 sentinel is deliberately NOT rsp+576: a range-dead checked stack
// access with a large negative offset must not land in the spill-slot
// window and corrupt the restored registers on only one side.
constexpr uint64_t kRsp0 = 0x00007FFE00010000ull;        // x86 rsp
constexpr uint64_t kStk0 = 0x00007FFD00020000ull;        // BPF r10
constexpr uint64_t kRtSentinel = 0x00007FFC000A0000ull;  // JitRt*
constexpr uint64_t kSeedBase = 0x7A11DA7Eull << 20;

// Frame/ABI constants, restated independently from jit_x86.cc (a shared
// constant would let a bug cancel out). Kept in terms of offsetof so the
// append-only JitRt layout cannot silently drift.
constexpr int kBpfRegMap[kNumRegs] = {RAX, RDI, RSI, RDX, RCX, R8,
                                      RBX, R13, R14, R15, RBP};
constexpr int32_t kRtSlot = 48;
constexpr int32_t kBpfStackOff = 64;
constexpr int32_t kFrameSize = 584;
constexpr int32_t kOffCtx = offsetof(JitRt, ctx);
constexpr int32_t kOffStack = offsetof(JitRt, stack);
constexpr int32_t kOffInsns = offsetof(JitRt, insns);
constexpr int32_t kOffFused = offsetof(JitRt, fused);
constexpr int32_t kOffElided = offsetof(JitRt, elided);
constexpr int32_t kOffSelSock = offsetof(ReuseportCtx, selected_socket);
constexpr int32_t kOffSelMade = offsetof(ReuseportCtx, selection_made);

bool is_jump_code(uint16_t c) {
  return c >= static_cast<uint16_t>(Op::Ja) &&
         c <= static_cast<uint16_t>(Op::JsetImm);
}

bool is_cond_branch(uint16_t c) {
  return c >= static_cast<uint16_t>(Op::JeqReg) &&
         c <= static_cast<uint16_t>(Op::JsetImm);
}

bool is_nc_mem(uint16_t c) { return c >= ULdxBNC && c <= UStDWNC; }

// Condition code the JIT must use for a forward conditional branch.
uint8_t cc_of(Op op) {
  switch (op) {
    case Op::JeqReg: case Op::JeqImm: return CC_E;
    case Op::JneReg: case Op::JneImm: return CC_NE;
    case Op::JgtReg: case Op::JgtImm: return CC_A;
    case Op::JgeReg: case Op::JgeImm: return CC_AE;
    case Op::JltReg: case Op::JltImm: return CC_B;
    case Op::JleReg: case Op::JleImm: return CC_BE;
    case Op::JsgtReg: case Op::JsgtImm: return CC_G;
    case Op::JsgeReg: case Op::JsgeImm: return CC_GE;
    case Op::JsltReg: case Op::JsltImm: return CC_L;
    case Op::JsleReg: case Op::JsleImm: return CC_LE;
    case Op::JsetReg: case Op::JsetImm: return CC_NE;
    default: return 0xFF;
  }
}

// True when the op's second operand is a register (vs. an immediate).
bool op_src_is_reg(Op op) {
  switch (op) {
    case Op::AddReg: case Op::SubReg: case Op::MulReg: case Op::DivReg:
    case Op::ModReg: case Op::AndReg: case Op::OrReg: case Op::XorReg:
    case Op::LshReg: case Op::RshReg: case Op::ArshReg:
    case Op::Add32Reg: case Op::Sub32Reg: case Op::Mul32Reg:
    case Op::Div32Reg: case Op::Mod32Reg: case Op::And32Reg:
    case Op::Or32Reg: case Op::Xor32Reg: case Op::Lsh32Reg:
    case Op::Rsh32Reg: case Op::Arsh32Reg:
    case Op::JeqReg: case Op::JneReg: case Op::JgtReg: case Op::JgeReg:
    case Op::JltReg: case Op::JleReg: case Op::JsgtReg: case Op::JsgeReg:
    case Op::JsltReg: case Op::JsleReg: case Op::JsetReg:
      return true;
    default:
      return false;
  }
}

// Independently recomputed accounting charge per micro-op. Fused
// superinstructions charge the source-instruction count of the sequence
// they replace (tier-invariant insns_executed); elided accesses and NC
// calls bump the elided counter.
struct Charge {
  uint32_t insns = 1;
  uint32_t fused = 0;
  uint32_t elided = 0;
};

Charge charge_of(uint16_t code) {
  if (code < kOpCount) return {1, 0, 0};
  switch (code) {
    case UPopcount: return {19, 1, 0};
    case UBlsr: return {3, 1, 0};
    case UIsolateLow: return {4, 1, 0};
    case UCallLookupNC:
    case UCallUpdateNC:
    case UCallSelectNC: return {1, 0, 1};
    default:
      if (is_nc_mem(code)) return {1, 0, 1};
      return {1, 0, 0};  // ULdMapPtr, checked calls, time, rand
  }
}

std::string uop_name(uint16_t code) {
  if (code < kOpCount) return to_string(static_cast<Op>(code));
  static const char* const kNames[] = {
      "ULdMapPtr",   "UPopcount",     "UBlsr",        "UIsolateLow",
      "ULdxBNC",     "ULdxHNC",       "ULdxWNC",      "ULdxDWNC",
      "UStxBNC",     "UStxHNC",       "UStxWNC",      "UStxDWNC",
      "UStBNC",      "UStHNC",        "UStWNC",       "UStDWNC",
      "UCallLookup", "UCallLookupNC", "UCallUpdate",  "UCallUpdateNC",
      "UCallSelect", "UCallSelectNC", "UCallTime",    "UCallRand"};
  const size_t k = code - kOpCount;
  return k < sizeof(kNames) / sizeof(kNames[0]) ? kNames[k] : "bad-code";
}

uint64_t trunc_w(uint64_t v, int width) {
  return width >= 8 ? v : v & ((uint64_t{1} << (8 * width)) - 1);
}

// ---------------------------------------------------------------------
// Trial plumbing: memory oracle, observable events, outcomes.
// ---------------------------------------------------------------------

// Byte-granular trial memory. Unwritten bytes come from a deterministic
// per-trial oracle (or all-ones in the force-ones flavor, which drives
// the kNoSocket / -ENOENT and zero-divisor style paths); written bytes
// shadow the oracle. Each side of a trial gets its own copy, so a store
// divergence shows up as a read divergence downstream too.
struct TrialMem {
  uint64_t seed = 0;
  uint64_t mask = ~uint64_t{0};
  bool ones = false;
  std::map<uint64_t, uint8_t> bytes;

  uint8_t oracle(uint64_t addr) const {
    if (ones) return 0xFF;
    const uint64_t w = mix64((addr & ~uint64_t{7}) ^ seed) & mask;
    return static_cast<uint8_t>(w >> (8 * (addr & 7)));
  }
  uint8_t rd8(uint64_t a) const {
    auto it = bytes.find(a);
    return it == bytes.end() ? oracle(a) : it->second;
  }
  uint64_t read(uint64_t a, int n) const {
    uint64_t v = 0;
    for (int k = 0; k < n; ++k) {
      v |= static_cast<uint64_t>(rd8(a + static_cast<uint64_t>(k))) << (8 * k);
    }
    return v;
  }
  void write(uint64_t a, int n, uint64_t v) {
    for (int k = 0; k < n; ++k) {
      bytes[a + static_cast<uint64_t>(k)] = static_cast<uint8_t>(v >> (8 * k));
    }
  }
};

// One observable effect. Both sides of a trial must produce identical
// event streams, in order. Call tags: 1 lookup, 2 update, 3 select,
// 4 time, 5 rand, 6 update_nc.
struct Event {
  uint8_t kind = 0;  // 0 = bounds check, 1 = store, 2 = helper call
  uint8_t aux = 0;   // store width / call tag
  uint64_t a = 0, b = 0, c = 0;
  bool operator==(const Event&) const = default;
};

Event ev_check(uint64_t addr, uint64_t n) { return {0, 0, addr, n, 0}; }
Event ev_store(uint64_t addr, int width, uint64_t v) {
  return {1, static_cast<uint8_t>(width), addr, v, 0};
}
Event ev_call(uint8_t tag, uint64_t a = 0, uint64_t b = 0, uint64_t c = 0) {
  return {2, tag, a, b, c};
}

size_t call_seq(const std::vector<Event>& ev) {
  size_t n = 0;
  for (const Event& e : ev) n += e.kind == 2;
  return n;
}

// Synthetic helper return value, shared by both sides: a function of the
// trial seed, the call's ordinal in the event stream, and the helper tag.
// GetPrandomU32 returns a zero-extended u32, like the real rt_rand.
uint64_t helper_ret(uint64_t seed, size_t seq, uint8_t tag) {
  uint64_t v = mix64(seed ^ (static_cast<uint64_t>(seq) + 1) *
                                0x9E3779B97F4A7C15ull ^
                     (static_cast<uint64_t>(tag) << 56));
  if (tag == 5) v &= 0xFFFFFFFFull;
  return v;
}

std::string ev_text(const Event& e) {
  std::ostringstream os;
  os << std::hex;
  switch (e.kind) {
    case 0: os << "check(0x" << e.a << ", " << std::dec << e.b << ")"; break;
    case 1:
      os << "store(0x" << e.a << ", w" << std::dec << int{e.aux} << std::hex
         << ", 0x" << e.b << ")";
      break;
    default:
      os << "call(tag " << std::dec << int{e.aux} << std::hex << ", 0x" << e.a
         << ", 0x" << e.b << ", 0x" << e.c << ")";
      break;
  }
  return os.str();
}

// How a segment's execution ended.
enum class OKind : uint8_t {
  Fall,     // fell through to the next segment
  Branch,   // took a rel32 edge; v = x86 byte offset / spec target index
  Exited,   // ret; v = rax / BPF r0
  Aborted,  // reached a noreturn trap; v = trap tag (1 budget, 2 unknown
            // helper, 3 unresolved LdMapFd, 4 fell off end)
};

struct Out {
  OKind kind = OKind::Fall;
  uint64_t v = 0;
};

const char* okind_name(OKind k) {
  switch (k) {
    case OKind::Fall: return "fall-through";
    case OKind::Branch: return "branch";
    case OKind::Exited: return "exit";
    case OKind::Aborted: return "abort";
  }
  return "?";
}

// x86 machine state for the symbolic executor. Flags are modeled only as
// the operands of the last cmp/test — the single way the emitter consumes
// them — and any other flag producer invalidates the model, so a jcc that
// could observe stale or arithmetic flags is a validation error, not a
// guess.
struct Flags {
  bool valid = false;
  bool w64 = false;
  bool is_test = false;
  uint64_t a = 0, b = 0;
};

struct XState {
  uint64_t r[16] = {};
  Flags f;
};

bool eval_cc(const Flags& f, uint8_t cc, bool* taken) {
  uint64_t a = f.a, b = f.b;
  int64_t sa, sb;
  if (f.w64) {
    sa = static_cast<int64_t>(a);
    sb = static_cast<int64_t>(b);
  } else {
    a = static_cast<uint32_t>(a);
    b = static_cast<uint32_t>(b);
    sa = static_cast<int32_t>(static_cast<uint32_t>(a));
    sb = static_cast<int32_t>(static_cast<uint32_t>(b));
  }
  if (f.is_test) {
    const uint64_t v = a & b;
    if (cc == CC_E) { *taken = v == 0; return true; }
    if (cc == CC_NE) { *taken = v != 0; return true; }
    return false;  // other ccs after test are outside the emitter's use
  }
  switch (cc) {
    case CC_E: *taken = a == b; return true;
    case CC_NE: *taken = a != b; return true;
    case CC_B: *taken = a < b; return true;
    case CC_AE: *taken = a >= b; return true;
    case CC_BE: *taken = a <= b; return true;
    case CC_A: *taken = a > b; return true;
    case CC_L: *taken = sa < sb; return true;
    case CC_GE: *taken = sa >= sb; return true;
    case CC_LE: *taken = sa <= sb; return true;
    case CC_G: *taken = sa > sb; return true;
    default: return false;
  }
}

// Does this decoded instruction write general-purpose register `reg`?
// (CallR clobbers are handled by the executor; callees preserve r12/rsp.)
bool writes_gp(const XInsn& x, int reg) {
  switch (x.op) {
    case XOp::MovRR:
    case XOp::MovRI:
    case XOp::Neg:
    case XOp::Shl: case XOp::Shr: case XOp::Sar:
      return x.base == reg;
    case XOp::Add: case XOp::Or: case XOp::And:
    case XOp::Sub: case XOp::Xor:
      return x.base == reg;
    case XOp::Imul:
    case XOp::Load:
    case XOp::Lea:
      return x.reg == reg;
    case XOp::Div:
      return reg == RAX || reg == RDX;
    case XOp::Pop:
      return x.base == reg;
    default:
      return false;
  }
}

// A decoded byte range: the prologue, one micro-op segment, or the tail.
struct Region {
  uint32_t begin = 0;
  uint32_t end = 0;
  std::vector<XInsn> insns;
};

// Per-trial register/memory value masks. Narrow masks drive boundary
// behavior (shift counts, division by zero, equal operands); flavor 4 is
// the force-ones memory oracle (kNoSocket / -ENOENT paths).
constexpr int kTrialFlavors = 6;
constexpr uint64_t kRegMasks[kTrialFlavors] = {
    ~uint64_t{0}, 0x7, 0xFFFF, 0x1, ~uint64_t{0}, 0xFFFFFFFFull};
constexpr uint64_t kMemMasks[kTrialFlavors] = {
    ~uint64_t{0}, 0xFF, 0x1, ~uint64_t{0}, ~uint64_t{0}, 0xFFFFull};

// ---------------------------------------------------------------------
// The checker.
// ---------------------------------------------------------------------

class Checker {
 public:
  explicit Checker(const Request& req)
      : req_(req), ops_(req.ops), ha_(helper_addrs()) {}

  bool run() {
    if (req_.code == nullptr) return fail("no code buffer");
    if (ops_.empty()) return fail("empty micro-op stream");
    if (!check_meta()) return false;
    if (!decode_all()) return false;
    if (!check_prologue()) return false;
    if (!check_tail()) return false;
    if (!build_facts()) return false;
    if (!static_pass()) return false;
    if (!trial_pass()) return false;
    return true;
  }

  const std::string& error() const { return error_; }

 private:
  // --- failure plumbing -------------------------------------------------
  bool fail(std::string msg) {
    if (error_.empty()) error_ = std::move(msg);
    return false;
  }

  // Decoded-instruction window around `mark` (pass >= insns.size() for a
  // plain listing), mirroring the verifier's disasm-window diagnostics.
  std::string window(const Region& r, size_t mark) const {
    std::ostringstream os;
    size_t lo = 0, hi = r.insns.size();
    if (mark < r.insns.size()) {
      lo = mark >= 3 ? mark - 3 : 0;
      hi = std::min(r.insns.size(), mark + 4);
    } else {
      hi = std::min<size_t>(hi, 12);
    }
    os << std::hex;
    for (size_t k = lo; k < hi; ++k) {
      os << "\n  " << (k == mark ? "-> " : "   ") << "[0x" << r.insns[k].off
         << "] " << to_text(r.insns[k]);
    }
    return os.str();
  }

  bool fail_region(const char* what, const Region& r, size_t mark,
                   const std::string& msg) {
    return fail(std::string(what) + ": " + msg + window(r, mark));
  }

  bool fail_uop(size_t i, size_t mark, const std::string& msg) {
    std::ostringstream os;
    os << "uop #" << i << " (" << uop_name(ops_[i].code) << ", src pc "
       << req_.src_pc[i] << "): " << msg << window(segs_[i], mark);
    return fail(os.str());
  }

  // --- layer 0: metadata sanity ----------------------------------------
  bool check_meta() {
    const JitMeta& m = req_.code->meta();
    const size_t n = ops_.size();
    if (m.code_off.size() != n) return fail("meta: code_off count != uops");
    if (req_.src_pc.size() != n) return fail("meta: src_pc count != uops");
    const auto len = static_cast<uint32_t>(req_.code->code_bytes());
    if (m.code_off[0] == 0) return fail("meta: missing prologue");
    for (size_t i = 1; i < n; ++i) {
      if (m.code_off[i] <= m.code_off[i - 1]) {
        return fail("meta: code offsets not strictly increasing");
      }
    }
    if (m.tail_off <= m.code_off[n - 1] || m.tail_off >= len) {
      return fail("meta: tail offset out of place");
    }
    return true;
  }

  // --- layer 1: byte-exact decode --------------------------------------
  bool decode_region(uint32_t begin, uint32_t end, const char* what,
                     Region* out) {
    out->begin = begin;
    out->end = end;
    const uint8_t* code = req_.code->code();
    uint32_t off = begin;
    while (off < end) {
      XInsn x;
      std::string err;
      if (!decode_one(code + off, end - off, &x, &err)) {
        std::ostringstream os;
        os << what << ": undecodable bytes at offset 0x" << std::hex << off
           << ": " << err << window(*out, out->insns.size());
        return fail(os.str());
      }
      x.off = off;
      off += x.len;
      out->insns.push_back(x);
    }
    return true;  // off == end: decode_one never reads past `end - off`
  }

  bool decode_all() {
    const JitMeta& m = req_.code->meta();
    const size_t n = ops_.size();
    const auto len = static_cast<uint32_t>(req_.code->code_bytes());
    if (!decode_region(0, m.code_off[0], "prologue", &prologue_)) {
      return false;
    }
    segs_.resize(n);
    for (size_t i = 0; i < n; ++i) {
      const uint32_t end = i + 1 < n ? m.code_off[i + 1] : m.tail_off;
      if (!decode_region(m.code_off[i], end, "segment", &segs_[i])) {
        std::ostringstream os;
        os << "uop #" << i << " (" << uop_name(ops_[i].code) << "): "
           << error_;
        error_.clear();
        return fail(os.str());
      }
    }
    return decode_region(m.tail_off, len, "tail", &tail_);
  }

  // --- layer 2: prologue / tail / epilogue exact shape ------------------
  bool check_prologue() {
    const auto& v = prologue_.insns;
    size_t k = 0;
    const auto bad = [&](const char* what) {
      return fail_region("prologue", prologue_,
                         std::min(k, v.empty() ? 0 : v.size() - 1), what);
    };
    const auto take = [&]() -> const XInsn* {
      return k < v.size() ? &v[k++] : nullptr;
    };
    const XInsn* x;
    for (int reg : {RBP, RBX, R12, R13, R14, R15}) {
      x = take();
      if (x == nullptr || x->op != XOp::Push || x->base != reg) {
        return bad("expected callee-saved push");
      }
    }
    x = take();
    if (x == nullptr || x->op != XOp::Sub || !x->imm_form || !x->w ||
        x->base != RSP || x->imm != kFrameSize) {
      return bad("expected frame allocation (sub rsp, 584)");
    }
    x = take();
    if (x == nullptr || x->op != XOp::Store || x->width != 8 ||
        x->base != RSP || x->disp != kRtSlot || x->reg != RDI) {
      return bad("expected JitRt* spill to [rsp+48]");
    }
    x = take();
    if (x == nullptr || x->op != XOp::Xorps) return bad("expected xorps");
    for (int32_t off = 0; off < static_cast<int32_t>(kStackSize); off += 16) {
      x = take();
      if (x == nullptr || x->op != XOp::MovapsZ || x->base != RSP ||
          x->disp != kBpfStackOff + off) {
        return bad("expected BPF-stack-zeroing movaps");
      }
    }
    x = take();
    if (x == nullptr || x->op != XOp::Lea || x->reg != R9 || x->base != RSP ||
        x->disp != kBpfStackOff) {
      return bad("expected stack-base lea");
    }
    x = take();
    if (x == nullptr || x->op != XOp::Store || x->width != 8 ||
        x->base != RDI || x->disp != kOffStack || x->reg != R9) {
      return bad("expected rt->stack store");
    }
    x = take();
    if (x == nullptr || x->op != XOp::Load || x->width != 8 || x->reg != R10 ||
        x->base != RDI || x->disp != kOffCtx || x->index != -1) {
      return bad("expected rt->ctx load");
    }
    for (int reg : {R12, RAX, RSI, RDX, RCX, R8, RBX, R13, R14, R15}) {
      x = take();
      if (x == nullptr || x->op != XOp::Xor || x->imm_form || x->w ||
          x->base != reg || x->reg != reg) {
        return bad("expected register-zeroing xor");
      }
    }
    x = take();
    if (x == nullptr || x->op != XOp::MovRR || !x->w || x->base != RDI ||
        x->reg != R10) {
      return bad("expected r1 = ctx move");
    }
    x = take();
    if (x == nullptr || x->op != XOp::Lea || x->reg != RBP || x->base != RSP ||
        x->disp != kBpfStackOff + static_cast<int32_t>(kStackSize)) {
      return bad("expected r10 = stack-top lea");
    }
    if (k != v.size()) return bad("trailing instructions after prologue");
    return true;
  }

  bool check_tail() {
    const auto& v = tail_.insns;
    if (v.size() != 2 || v[0].op != XOp::MovRI || !v[0].imm_form || !v[0].w ||
        v[0].base != RAX ||
        static_cast<uint64_t>(v[0].imm) != ha_.fell_off_end ||
        v[1].op != XOp::CallR || v[1].base != RAX) {
      return fail_region("tail", tail_, 0,
                         "expected the fell-off-end trap (movabs rax + call)");
    }
    return true;
  }

  // Exact epilogue match at the end of an Exit segment; on success
  // `*body_end` is the instruction count of the preceding flush body.
  bool match_epilogue(size_t i, size_t* body_end) {
    const Region& r = segs_[i];
    const auto& v = r.insns;
    if (v.size() < 10) return fail_uop(i, 0, "exit segment too short");
    const size_t e = v.size() - 10;
    const auto bad = [&](size_t k, const char* what) {
      return fail_uop(i, e + k, what);
    };
    const XInsn* x = &v[e];
    if (x->op != XOp::Load || x->width != 8 || x->reg != R11 ||
        x->base != RSP || x->disp != kRtSlot || x->index != -1) {
      return bad(0, "epilogue: expected JitRt* reload");
    }
    x = &v[e + 1];
    if (x->op != XOp::Store || x->width != 8 || x->base != R11 ||
        x->disp != kOffInsns || x->reg != R12) {
      return bad(1, "epilogue: expected insns-counter writeback");
    }
    x = &v[e + 2];
    if (x->op != XOp::Add || !x->imm_form || !x->w || x->base != RSP ||
        x->imm != kFrameSize) {
      return bad(2, "epilogue: expected frame release (add rsp, 584)");
    }
    const int pops[6] = {R15, R14, R13, R12, RBX, RBP};
    for (size_t k = 0; k < 6; ++k) {
      x = &v[e + 3 + k];
      if (x->op != XOp::Pop || x->base != pops[k]) {
        return bad(3 + k, "epilogue: expected callee-saved pop");
      }
    }
    if (v[e + 9].op != XOp::Ret) return bad(9, "epilogue: expected ret");
    *body_end = e;
    return true;
  }

  // --- verifier-fact tables (recomputed, mirroring compile_plan) --------
  bool build_facts() {
    if (req_.facts != nullptr) {
      for (const auto& m : req_.facts->mem_accesses) {
        if (m.proven) proven_pcs_.insert(m.pc);
      }
      for (const auto& h : req_.facts->helper_calls) {
        call_slots_[h.pc] = h.map_slot;
      }
    }
    am_of_.assign(ops_.size(), nullptr);
    sa_of_.assign(ops_.size(), nullptr);
    return true;
  }

  // Elision coverage: every unchecked micro-op must trace to an exported
  // verifier fact at its source pc, and every baked map immediate must
  // match the map the program was actually loaded with.
  bool check_elision(size_t i) {
    const MicroOp& u = ops_[i];
    const size_t pc = req_.src_pc[i];
    const Region& r = segs_[i];
    const auto has_movri = [&](uint64_t imm) {
      for (const XInsn& x : r.insns) {
        if (x.op == XOp::MovRI && static_cast<uint64_t>(x.imm) == imm) {
          return true;
        }
      }
      return false;
    };
    const auto has_bound = [&](uint64_t bound) {
      for (const XInsn& x : r.insns) {
        if (x.op == XOp::Cmp && x.imm_form &&
            static_cast<uint64_t>(x.imm) == bound) {
          return true;
        }
      }
      return has_movri(bound);
    };
    if (is_nc_mem(u.code)) {
      if (req_.facts == nullptr || proven_pcs_.count(pc) == 0) {
        return fail_uop(i, r.insns.size(),
                        "unchecked access without a proven verifier fact");
      }
      return true;
    }
    switch (u.code) {
      case ULdMapPtr: {
        for (Map* m : req_.maps) {
          if (reinterpret_cast<uint64_t>(m) == static_cast<uint64_t>(u.imm)) {
            return true;
          }
        }
        return fail_uop(i, r.insns.size(),
                        "baked map pointer matches no loaded map");
      }
      case UCallLookupNC:
      case UCallUpdateNC: {
        auto it = call_slots_.find(pc);
        if (req_.facts == nullptr || it == call_slots_.end()) {
          return fail_uop(i, r.insns.size(),
                          "specialized call without a verifier fact");
        }
        const int32_t slot = it->second;
        if (slot < 0 || static_cast<size_t>(slot) >= req_.maps.size()) {
          return fail_uop(i, r.insns.size(), "map slot out of range");
        }
        ArrayMap* am = as_array_map(req_.maps[slot]);
        if (am == nullptr ||
            reinterpret_cast<uint64_t>(am) != static_cast<uint64_t>(u.imm)) {
          return fail_uop(i, r.insns.size(),
                          "baked array-map pointer mismatch");
        }
        am_of_[i] = am;
        if (u.code == UCallLookupNC) {
          if (!has_movri(reinterpret_cast<uint64_t>(am->storage_base()))) {
            return fail_uop(i, r.insns.size(),
                            "baked storage base does not match the map");
          }
          bool stride_ok = false;
          for (const XInsn& x : r.insns) {
            if (x.op == XOp::Imul && x.imm_form &&
                static_cast<uint64_t>(x.imm) == am->stride()) {
              stride_ok = true;
            }
          }
          if (!stride_ok) {
            return fail_uop(i, r.insns.size(),
                            "baked stride does not match the map");
          }
          if (!has_bound(am->max_entries())) {
            return fail_uop(i, r.insns.size(),
                            "baked max_entries does not match the map");
          }
        } else if (!has_movri(reinterpret_cast<uint64_t>(am))) {
          return fail_uop(i, r.insns.size(),
                          "baked map argument does not match the map");
        }
        return true;
      }
      case UCallSelectNC: {
        auto it = call_slots_.find(pc);
        if (req_.facts == nullptr || it == call_slots_.end()) {
          return fail_uop(i, r.insns.size(),
                          "specialized call without a verifier fact");
        }
        const int32_t slot = it->second;
        if (slot < 0 || static_cast<size_t>(slot) >= req_.maps.size()) {
          return fail_uop(i, r.insns.size(), "map slot out of range");
        }
        ReuseportSockArray* sa = as_sock_array(req_.maps[slot]);
        if (sa == nullptr ||
            reinterpret_cast<uint64_t>(sa) != static_cast<uint64_t>(u.imm)) {
          return fail_uop(i, r.insns.size(),
                          "baked sock-array pointer mismatch");
        }
        sa_of_[i] = sa;
        if (!has_movri(reinterpret_cast<uint64_t>(sa->slots_data()))) {
          return fail_uop(i, r.insns.size(),
                          "baked slots base does not match the sock array");
        }
        if (!has_bound(sa->max_entries())) {
          return fail_uop(i, r.insns.size(),
                          "baked max_entries does not match the sock array");
        }
        return true;
      }
      default:
        return true;
    }
  }

  // --- layer 3: per-segment static checks -------------------------------
  bool static_pass() {
    const size_t n = ops_.size();
    const auto& code_off = req_.code->meta().code_off;
    std::vector<uint8_t> is_target(n, 0);
    for (size_t i = 0; i < n; ++i) {
      if (is_jump_code(ops_[i].code)) {
        if (ops_[i].target >= n) {
          return fail_uop(i, segs_[i].insns.size(), "jump target out of range");
        }
        is_target[ops_[i].target] = 1;
      }
    }

    // Accounting walk: pending charges accumulate across straight-line
    // segments exactly as the compiler's flush logic does, and every flush
    // instruction must carry the independently recomputed constant.
    uint64_t pend_i = 0, pend_f = 0, pend_e = 0;

    for (size_t i = 0; i < n; ++i) {
      const MicroOp& u = ops_[i];
      const Region& r = segs_[i];
      const bool is_exit = u.code == static_cast<uint16_t>(Op::Exit);
      const bool is_jump = is_jump_code(u.code);
      const Charge c = charge_of(u.code);
      pend_i += c.insns;
      pend_f += c.fused;
      pend_e += c.elided;

      size_t body_end = r.insns.size();
      if (is_exit && !match_epilogue(i, &body_end)) return false;

      // In-segment instruction-boundary set for rel8 target checks.
      std::unordered_set<uint32_t> bounds;
      for (const XInsn& x : r.insns) bounds.insert(x.off);

      for (size_t k = 0; k < body_end; ++k) {
        const XInsn& x = r.insns[k];
        switch (x.op) {
          case XOp::Push: case XOp::Pop: case XOp::Ret:
          case XOp::Xorps: case XOp::MovapsZ:
            return fail_uop(i, k, "prologue/epilogue-only instruction in "
                                  "segment body");
          default:
            break;
        }
        if (writes_gp(x, RSP)) {
          return fail_uop(i, k, "stray write to rsp");
        }
        const bool is_flush_add = x.op == XOp::Add && x.imm_form && x.w &&
                                  x.base == R12;
        if (!is_flush_add && writes_gp(x, R12)) {
          return fail_uop(i, k, "stray write to the insns counter (r12)");
        }
        if (is_flush_add) {
          if (pend_i == 0 || static_cast<uint64_t>(x.imm) != pend_i) {
            std::ostringstream os;
            os << "accounting flush carries " << x.imm << ", recomputed "
               << pend_i;
            return fail_uop(i, k, os.str());
          }
          pend_i = 0;
        }
        if (x.op == XOp::AddMem) {
          if (x.base != R11) {
            return fail_uop(i, k, "counter writeback through wrong register");
          }
          uint64_t* pend = nullptr;
          if (x.disp == kOffFused) pend = &pend_f;
          if (x.disp == kOffElided) pend = &pend_e;
          if (pend == nullptr) {
            return fail_uop(i, k, "counter writeback at unknown offset");
          }
          if (*pend == 0 || static_cast<uint64_t>(x.imm) != *pend) {
            std::ostringstream os;
            os << "counter writeback carries " << x.imm << ", recomputed "
               << *pend;
            return fail_uop(i, k, os.str());
          }
          *pend = 0;
        }
        if ((x.op == XOp::Jmp || x.op == XOp::Jcc) && !x.rel8) {
          if (!is_jump) {
            return fail_uop(i, k, "rel32 branch in a non-jump segment");
          }
          const uint64_t t = static_cast<uint64_t>(x.off) + x.len +
                             static_cast<int64_t>(x.rel);
          if (t != code_off[u.target]) {
            std::ostringstream os;
            os << "rel32 target 0x" << std::hex << t
               << " != target micro-op offset 0x" << code_off[u.target];
            return fail_uop(i, k, os.str());
          }
        }
        if ((x.op == XOp::Jmp || x.op == XOp::Jcc) && x.rel8) {
          if (x.rel < 0) {
            return fail_uop(i, k, "backward rel8 branch in segment");
          }
          const uint32_t t = x.off + x.len + static_cast<uint32_t>(x.rel);
          if (t != r.end && bounds.count(t) == 0) {
            return fail_uop(i, k, "rel8 target off instruction boundary");
          }
        }
      }

      // Pending counts must be fully flushed before any control-flow
      // boundary: a branch, an exit, or the next micro-op being a jump
      // target (whose trailing flush lives in THIS segment).
      const bool boundary =
          is_exit || is_jump || (i + 1 < n && is_target[i + 1] != 0);
      if (boundary && (pend_i | pend_f | pend_e) != 0) {
        return fail_uop(i, body_end == 0 ? 0 : body_end - 1,
                        "unflushed accounting at a control-flow boundary");
      }

      if (is_jump) {
        if (r.insns.empty()) return fail_uop(i, 0, "empty jump segment");
        const XInsn& last = r.insns.back();
        const bool backward = u.target <= i;
        if (is_cond_branch(u.code) && !backward) {
          const uint8_t cc = cc_of(static_cast<Op>(u.code));
          if (last.op != XOp::Jcc || last.rel8 || last.cc != cc) {
            return fail_uop(i, r.insns.size() - 1,
                            "forward branch must end in jcc rel32 with the "
                            "op's condition");
          }
        } else {
          if (last.op != XOp::Jmp || last.rel8) {
            return fail_uop(i, r.insns.size() - 1,
                            "jump segment must end in jmp rel32");
          }
        }
        if (backward) {
          bool has_budget_cmp = false, has_abort = false;
          for (const XInsn& x : r.insns) {
            if (x.op == XOp::Cmp && x.imm_form && x.base == R12 &&
                static_cast<uint64_t>(x.imm) == kMaxInsnsExecuted) {
              has_budget_cmp = true;
            }
            if (x.op == XOp::MovRI &&
                static_cast<uint64_t>(x.imm) == ha_.budget_abort) {
              has_abort = true;
            }
          }
          if (!has_budget_cmp || !has_abort) {
            return fail_uop(i, r.insns.size() - 1,
                            "backward edge without a budget check");
          }
          if (is_cond_branch(u.code)) {
            const uint8_t inv = cc_invert(cc_of(static_cast<Op>(u.code)));
            bool has_skip = false;
            for (const XInsn& x : r.insns) {
              if (x.op == XOp::Jcc && x.rel8 && x.cc == inv &&
                  x.off + x.len + static_cast<uint32_t>(x.rel) == r.end) {
                has_skip = true;
              }
            }
            if (!has_skip) {
              return fail_uop(i, r.insns.size() - 1,
                              "backward branch without the inverted-cc skip");
            }
          }
        }
      }

      if (!check_elision(i)) return false;
    }
    return true;
  }

  // --- layer 4: the spec interpreter (plan_exec.cc semantics) -----------
  // Executes ONE micro-op against trial registers + oracle memory, logging
  // observable events. Restated from bpf/plan_exec.cc on purpose.
  Out spec_step(size_t i, uint64_t* regs, TrialMem& mem, std::vector<Event>& ev,
                uint64_t seed) const {
    const MicroOp& u = ops_[i];
    const uint64_t uimm = static_cast<uint64_t>(u.imm);
    const int64_t simm = u.imm;
    uint64_t& dv = regs[u.dst];
    uint64_t& sv = regs[u.src];
    const auto u32 = [](uint64_t v) { return static_cast<uint32_t>(v); };
    const auto check = [&](uint64_t addr, uint64_t n) {
      ev.push_back(ev_check(addr, n));
    };
    const auto store = [&](uint64_t addr, int w, uint64_t v) {
      const uint64_t tv = trunc_w(v, w);
      ev.push_back(ev_store(addr, w, tv));
      mem.write(addr, w, tv);
    };
    const auto call = [&](uint8_t tag, uint64_t a = 0, uint64_t b = 0,
                          uint64_t c = 0) {
      const size_t sq = call_seq(ev);
      ev.push_back(ev_call(tag, a, b, c));
      return helper_ret(seed, sq, tag);
    };
    const auto taken = [&](bool t) {
      return t ? Out{OKind::Branch, u.target} : Out{OKind::Fall, 0};
    };

    if (u.code < kOpCount) {
      switch (static_cast<Op>(u.code)) {
        case Op::AddReg: dv += sv; break;
        case Op::AddImm: dv += uimm; break;
        case Op::SubReg: dv -= sv; break;
        case Op::SubImm: dv -= uimm; break;
        case Op::MulReg: dv *= sv; break;
        case Op::MulImm: dv *= uimm; break;
        case Op::DivReg: dv = sv ? dv / sv : 0; break;
        case Op::DivImm: dv = uimm ? dv / uimm : 0; break;
        case Op::ModReg: dv = sv ? dv % sv : dv; break;
        case Op::ModImm: dv = uimm ? dv % uimm : dv; break;
        case Op::AndReg: dv &= sv; break;
        case Op::AndImm: dv &= uimm; break;
        case Op::OrReg: dv |= sv; break;
        case Op::OrImm: dv |= uimm; break;
        case Op::XorReg: dv ^= sv; break;
        case Op::XorImm: dv ^= uimm; break;
        case Op::LshReg: dv <<= (sv & 63); break;
        case Op::LshImm: dv <<= (uimm & 63); break;
        case Op::RshReg: dv >>= (sv & 63); break;
        case Op::RshImm: dv >>= (uimm & 63); break;
        case Op::ArshReg:
          dv = static_cast<uint64_t>(static_cast<int64_t>(dv) >> (sv & 63));
          break;
        case Op::ArshImm:
          dv = static_cast<uint64_t>(static_cast<int64_t>(dv) >> (uimm & 63));
          break;
        case Op::Neg: dv = 0 - dv; break;
        case Op::MovReg: dv = sv; break;
        case Op::MovImm: dv = uimm; break;
        case Op::Add32Reg: dv = u32(dv + sv); break;
        case Op::Add32Imm: dv = u32(dv + uimm); break;
        case Op::Sub32Reg: dv = u32(dv - sv); break;
        case Op::Sub32Imm: dv = u32(dv - uimm); break;
        case Op::Mul32Reg: dv = u32(dv * sv); break;
        case Op::Mul32Imm: dv = u32(dv * uimm); break;
        case Op::Div32Reg: dv = u32(sv) ? u32(dv) / u32(sv) : 0; break;
        case Op::Div32Imm: dv = u32(uimm) ? u32(dv) / u32(uimm) : 0; break;
        case Op::Mod32Reg: dv = u32(sv) ? u32(dv) % u32(sv) : u32(dv); break;
        case Op::Mod32Imm:
          dv = u32(uimm) ? u32(dv) % u32(uimm) : u32(dv);
          break;
        case Op::And32Reg: dv = u32(dv & sv); break;
        case Op::And32Imm: dv = u32(dv & uimm); break;
        case Op::Or32Reg: dv = u32(dv | sv); break;
        case Op::Or32Imm: dv = u32(dv | uimm); break;
        case Op::Xor32Reg: dv = u32(dv ^ sv); break;
        case Op::Xor32Imm: dv = u32(dv ^ uimm); break;
        case Op::Lsh32Reg: dv = u32(u32(dv) << (sv & 31)); break;
        case Op::Lsh32Imm: dv = u32(u32(dv) << (uimm & 31)); break;
        case Op::Rsh32Reg: dv = u32(dv) >> (sv & 31); break;
        case Op::Rsh32Imm: dv = u32(dv) >> (uimm & 31); break;
        case Op::Arsh32Reg:
          dv = u32(static_cast<int32_t>(u32(dv)) >> (sv & 31));
          break;
        case Op::Arsh32Imm:
          dv = u32(static_cast<int32_t>(u32(dv)) >> (uimm & 31));
          break;
        case Op::Neg32: dv = u32(0 - u32(dv)); break;
        case Op::Mov32Reg: dv = u32(sv); break;
        case Op::Mov32Imm: dv = u32(u.imm); break;
        case Op::LdImm64: dv = uimm; break;
        case Op::LdMapFd: return {OKind::Aborted, 3};
        case Op::LdxB:
          check(sv + u.off, 1);
          dv = mem.read(sv + u.off, 1);
          break;
        case Op::LdxH:
          check(sv + u.off, 2);
          dv = mem.read(sv + u.off, 2);
          break;
        case Op::LdxW:
          check(sv + u.off, 4);
          dv = mem.read(sv + u.off, 4);
          break;
        case Op::LdxDW:
          check(sv + u.off, 8);
          dv = mem.read(sv + u.off, 8);
          break;
        case Op::StxB: check(dv + u.off, 1); store(dv + u.off, 1, sv); break;
        case Op::StxH: check(dv + u.off, 2); store(dv + u.off, 2, sv); break;
        case Op::StxW: check(dv + u.off, 4); store(dv + u.off, 4, sv); break;
        case Op::StxDW: check(dv + u.off, 8); store(dv + u.off, 8, sv); break;
        case Op::StB: check(dv + u.off, 1); store(dv + u.off, 1, uimm); break;
        case Op::StH: check(dv + u.off, 2); store(dv + u.off, 2, uimm); break;
        case Op::StW: check(dv + u.off, 4); store(dv + u.off, 4, uimm); break;
        case Op::StDW: check(dv + u.off, 8); store(dv + u.off, 8, uimm); break;
        case Op::Ja: return {OKind::Branch, u.target};
        case Op::JeqReg: return taken(dv == sv);
        case Op::JeqImm: return taken(dv == uimm);
        case Op::JneReg: return taken(dv != sv);
        case Op::JneImm: return taken(dv != uimm);
        case Op::JgtReg: return taken(dv > sv);
        case Op::JgtImm: return taken(dv > uimm);
        case Op::JgeReg: return taken(dv >= sv);
        case Op::JgeImm: return taken(dv >= uimm);
        case Op::JltReg: return taken(dv < sv);
        case Op::JltImm: return taken(dv < uimm);
        case Op::JleReg: return taken(dv <= sv);
        case Op::JleImm: return taken(dv <= uimm);
        case Op::JsgtReg:
          return taken(static_cast<int64_t>(dv) > static_cast<int64_t>(sv));
        case Op::JsgtImm: return taken(static_cast<int64_t>(dv) > simm);
        case Op::JsgeReg:
          return taken(static_cast<int64_t>(dv) >= static_cast<int64_t>(sv));
        case Op::JsgeImm: return taken(static_cast<int64_t>(dv) >= simm);
        case Op::JsltReg:
          return taken(static_cast<int64_t>(dv) < static_cast<int64_t>(sv));
        case Op::JsltImm: return taken(static_cast<int64_t>(dv) < simm);
        case Op::JsleReg:
          return taken(static_cast<int64_t>(dv) <= static_cast<int64_t>(sv));
        case Op::JsleImm: return taken(static_cast<int64_t>(dv) <= simm);
        case Op::JsetReg: return taken((dv & sv) != 0);
        case Op::JsetImm: return taken((dv & uimm) != 0);
        case Op::Call: return {OKind::Aborted, 2};
        case Op::Exit: return {OKind::Exited, regs[0]};
      }
      return {OKind::Fall, 0};
    }

    switch (u.code) {
      case ULdMapPtr: dv = uimm; break;
      case UPopcount: {
        const uint64_t v = sv;
        const uint64_t a = v - ((v >> 1) & 0x5555555555555555ull);
        const uint64_t b =
            (a & 0x3333333333333333ull) + ((a >> 2) & 0x3333333333333333ull);
        dv = (((b + (b >> 4)) & 0x0F0F0F0F0F0F0F0Full) *
              0x0101010101010101ull) >>
             56;
        sv = b >> 4;
        regs[u.aux] = 0x0101010101010101ull;
        break;
      }
      case UBlsr: {
        const uint64_t t = dv - 1;
        sv = t;
        dv &= t;
        break;
      }
      case UIsolateLow: {
        const uint64_t v = sv;
        dv = ((0 - v) & v) - 1;
        break;
      }
      case ULdxBNC: dv = mem.read(sv + u.off, 1); break;
      case ULdxHNC: dv = mem.read(sv + u.off, 2); break;
      case ULdxWNC: dv = mem.read(sv + u.off, 4); break;
      case ULdxDWNC: dv = mem.read(sv + u.off, 8); break;
      case UStxBNC: store(dv + u.off, 1, sv); break;
      case UStxHNC: store(dv + u.off, 2, sv); break;
      case UStxWNC: store(dv + u.off, 4, sv); break;
      case UStxDWNC: store(dv + u.off, 8, sv); break;
      case UStBNC: store(dv + u.off, 1, uimm); break;
      case UStHNC: store(dv + u.off, 2, uimm); break;
      case UStWNC: store(dv + u.off, 4, uimm); break;
      case UStDWNC: store(dv + u.off, 8, uimm); break;
      case UCallLookup: regs[0] = call(1, regs[1], regs[2]); break;
      case UCallUpdate: regs[0] = call(2, regs[1], regs[2], regs[3]); break;
      case UCallSelect: regs[0] = call(3, regs[1], regs[2], regs[3]); break;
      case UCallTime: regs[0] = call(4); break;
      case UCallRand: regs[0] = call(5); break;
      case UCallUpdateNC:
        regs[0] = call(6, reinterpret_cast<uint64_t>(am_of_[i]), regs[2], regs[3]);
        break;
      case UCallLookupNC: {
        const ArrayMap* am = am_of_[i];
        const auto key = static_cast<uint32_t>(mem.read(regs[2], 4));
        regs[0] = key < am->max_entries()
                   ? reinterpret_cast<uint64_t>(
                         const_cast<ArrayMap*>(am)->storage_base()) +
                         static_cast<uint64_t>(key) * am->stride()
                   : 0;
        break;
      }
      case UCallSelectNC: {
        const ReuseportSockArray* sa = sa_of_[i];
        const auto key = static_cast<uint32_t>(mem.read(regs[3], 4));
        // The inlined fast path loads the slot through program memory;
        // mirror that via the trial oracle rather than the live atomic.
        const uint64_t cookie =
            key < sa->max_entries()
                ? mem.read(reinterpret_cast<uint64_t>(sa->slots_data()) +
                               uint64_t{8} * key,
                           8)
                : kNoSocket;
        if (cookie == kNoSocket) {
          regs[0] = static_cast<uint64_t>(-2);  // -ENOENT
        } else {
          store(regs[1] + kOffSelSock, 8, cookie);
          store(regs[1] + kOffSelMade, 1, 1);
          regs[0] = 0;
        }
        break;
      }
      default:
        break;  // unreachable: decode/static passes reject unknown codes
    }
    return {OKind::Fall, 0};
  }

  // --- layer 4: the x86 symbolic executor -------------------------------
  bool exec_segment(const Region& rg, XState& st, TrialMem& mem,
                    std::vector<Event>& ev, uint64_t seed, Out* out,
                    size_t* err_at, std::string* why) const {
    std::unordered_map<uint32_t, size_t> at;
    for (size_t k = 0; k < rg.insns.size(); ++k) at[rg.insns[k].off] = k;
    const auto err = [&](size_t k, const char* msg) {
      *err_at = k;
      *why = msg;
      return false;
    };
    size_t k = 0;
    size_t steps = 0;
    const size_t max_steps = rg.insns.size() + 8;
    while (true) {
      if (k >= rg.insns.size()) {
        *out = {OKind::Fall, 0};
        return true;
      }
      if (++steps > max_steps) return err(k, "executor step bound exceeded");
      const XInsn& x = rg.insns[k];
      const uint32_t next_off = x.off + x.len;
      uint64_t* const r = st.r;
      const auto u32 = [](uint64_t v) { return static_cast<uint32_t>(v); };
      bool clobber_flags = true;
      switch (x.op) {
        case XOp::MovRR:
          r[x.base] = x.w ? r[x.reg] : u32(r[x.reg]);
          clobber_flags = false;
          break;
        case XOp::MovRI:
          r[x.base] = static_cast<uint64_t>(x.imm);
          clobber_flags = false;
          break;
        case XOp::Lea:
          r[x.reg] = r[x.base] + static_cast<int64_t>(x.disp);
          clobber_flags = false;
          break;
        case XOp::Add: case XOp::Or: case XOp::And:
        case XOp::Sub: case XOp::Xor: {
          const uint64_t b =
              x.imm_form ? static_cast<uint64_t>(x.imm) : r[x.reg];
          uint64_t v = r[x.base];
          switch (x.op) {
            case XOp::Add: v += b; break;
            case XOp::Or: v |= b; break;
            case XOp::And: v &= b; break;
            case XOp::Sub: v -= b; break;
            default: v ^= b; break;
          }
          r[x.base] = x.w ? v : u32(v);
          break;
        }
        case XOp::Cmp: case XOp::Test: {
          const uint64_t b =
              x.imm_form ? static_cast<uint64_t>(x.imm) : r[x.reg];
          st.f = {true, x.w, x.op == XOp::Test, r[x.base], b};
          clobber_flags = false;  // flags just became valid
          break;
        }
        case XOp::Imul: {
          const uint64_t b =
              x.imm_form ? static_cast<uint64_t>(x.imm) : r[x.base];
          const uint64_t a = x.imm_form ? r[x.base] : r[x.reg];
          const uint64_t v = a * b;
          r[x.reg] = x.w ? v : u32(v);
          break;
        }
        case XOp::Div: {
          const uint64_t d = x.w ? r[x.base] : u32(r[x.base]);
          const uint64_t hi = x.w ? r[RDX] : u32(r[RDX]);
          const uint64_t lo = x.w ? r[RAX] : u32(r[RAX]);
          if (hi != 0) return err(k, "div with nonzero high word");
          if (d == 0) return err(k, "reachable division by zero");
          r[RAX] = lo / d;
          r[RDX] = lo % d;
          break;
        }
        case XOp::Neg:
          r[x.base] = x.w ? 0 - r[x.base] : u32(0 - u32(r[x.base]));
          break;
        case XOp::Shl: case XOp::Shr: case XOp::Sar: {
          const uint64_t cnt =
              (x.imm_form ? static_cast<uint64_t>(x.imm) : r[RCX]) &
              (x.w ? 63 : 31);
          uint64_t v = r[x.base];
          if (x.op == XOp::Shl) {
            v = x.w ? v << cnt : u32(u32(v) << cnt);
          } else if (x.op == XOp::Shr) {
            v = x.w ? v >> cnt : u32(v) >> cnt;
          } else {
            v = x.w ? static_cast<uint64_t>(static_cast<int64_t>(v) >> cnt)
                    : u32(static_cast<int32_t>(u32(v)) >> cnt);
          }
          r[x.base] = v;
          break;
        }
        case XOp::Load: {
          uint64_t ea = r[x.base] + static_cast<int64_t>(x.disp);
          if (x.index >= 0) ea += r[x.index] * 8;
          r[x.reg] = mem.read(ea, x.width);
          clobber_flags = false;
          break;
        }
        case XOp::Store: case XOp::StoreImm: {
          const uint64_t ea = r[x.base] + static_cast<int64_t>(x.disp);
          const uint64_t v = trunc_w(
              x.op == XOp::Store ? r[x.reg] : static_cast<uint64_t>(x.imm),
              x.width);
          // Frame spills (rsp-relative) and JitRt writebacks (through the
          // rt sentinel) are implementation bookkeeping, not program
          // effects: perform them, but keep them out of the event log.
          if (x.base != RSP && r[x.base] != kRtSentinel) {
            ev.push_back(ev_store(ea, x.width, v));
          }
          mem.write(ea, x.width, v);
          clobber_flags = false;
          break;
        }
        case XOp::AddMem: {
          if (r[x.base] != kRtSentinel) {
            return err(k, "read-modify-write outside the JitRt block");
          }
          const uint64_t ea = r[x.base] + static_cast<int64_t>(x.disp);
          mem.write(ea, 8, mem.read(ea, 8) + static_cast<uint64_t>(x.imm));
          break;
        }
        case XOp::Push:
          r[RSP] -= 8;
          mem.write(r[RSP], 8, r[x.base]);
          clobber_flags = false;
          break;
        case XOp::Pop:
          r[x.base] = mem.read(r[RSP], 8);
          r[RSP] += 8;
          clobber_flags = false;
          break;
        case XOp::Ret:
          *out = {OKind::Exited, r[RAX]};
          return true;
        case XOp::Jmp: {
          const uint64_t t =
              static_cast<uint64_t>(x.off) + x.len + static_cast<int64_t>(x.rel);
          if (!x.rel8) {
            *out = {OKind::Branch, t};
            return true;
          }
          if (t == rg.end) {
            *out = {OKind::Fall, 0};
            return true;
          }
          auto it = at.find(static_cast<uint32_t>(t));
          if (it == at.end()) return err(k, "rel8 jump off boundary");
          k = it->second;
          continue;
        }
        case XOp::Jcc: {
          if (!st.f.valid) {
            return err(k, "conditional branch on unmodeled flags");
          }
          bool taken = false;
          if (!eval_cc(st.f, x.cc, &taken)) {
            return err(k, "condition code outside the emitter's use");
          }
          if (taken) {
            const uint64_t t = static_cast<uint64_t>(x.off) + x.len +
                               static_cast<int64_t>(x.rel);
            if (!x.rel8) {
              *out = {OKind::Branch, t};
              return true;
            }
            if (t == rg.end) {
              *out = {OKind::Fall, 0};
              return true;
            }
            auto it = at.find(static_cast<uint32_t>(t));
            if (it == at.end()) return err(k, "rel8 jump off boundary");
            k = it->second;
            continue;
          }
          ++k;
          continue;
        }
        case XOp::CallR: {
          const uint64_t t = r[x.base];
          if (t == ha_.budget_abort) { *out = {OKind::Aborted, 1}; return true; }
          if (t == ha_.unknown_helper) { *out = {OKind::Aborted, 2}; return true; }
          if (t == ha_.unresolved_ldmapfd) { *out = {OKind::Aborted, 3}; return true; }
          if (t == ha_.fell_off_end) { *out = {OKind::Aborted, 4}; return true; }
          const size_t sq = call_seq(ev);
          const auto clobber = [&]() {
            for (int cr : {RDI, RSI, RDX, RCX, R8, R9, R10, R11}) {
              r[cr] = mix64(seed ^ 0xC10BBE5ull ^
                            (static_cast<uint64_t>(sq) << 8) ^
                            static_cast<uint64_t>(cr));
            }
          };
          if (t == ha_.update_nc) {
            ev.push_back(ev_call(6, r[RDI], r[RSI], r[RDX]));
            clobber();
            r[RAX] = helper_ret(seed, sq, 6);
          } else {
            // Every other helper takes JitRt* first: the generated code
            // must have reloaded it from the frame slot.
            if (r[RDI] != kRtSentinel) {
              return err(k, "helper called without the JitRt argument");
            }
            if (t == ha_.check_access) {
              ev.push_back(ev_check(r[RSI], r[RDX]));
              const uint64_t addr = r[RSI];
              clobber();
              r[RAX] = addr;
            } else if (t == ha_.call_lookup) {
              ev.push_back(ev_call(1, r[RSI], r[RDX]));
              clobber();
              r[RAX] = helper_ret(seed, sq, 1);
            } else if (t == ha_.call_update) {
              ev.push_back(ev_call(2, r[RSI], r[RDX], r[RCX]));
              clobber();
              r[RAX] = helper_ret(seed, sq, 2);
            } else if (t == ha_.call_select) {
              ev.push_back(ev_call(3, r[RSI], r[RDX], r[RCX]));
              clobber();
              r[RAX] = helper_ret(seed, sq, 3);
            } else if (t == ha_.time) {
              ev.push_back(ev_call(4));
              clobber();
              r[RAX] = helper_ret(seed, sq, 4);
            } else if (t == ha_.rand) {
              ev.push_back(ev_call(5));
              clobber();
              r[RAX] = helper_ret(seed, sq, 5);
            } else {
              return err(k, "call to an unrecognized address");
            }
          }
          break;
        }
        case XOp::Xorps: case XOp::MovapsZ:
          return err(k, "prologue-only instruction reached the executor");
      }
      if (clobber_flags) st.f.valid = false;
      ++k;
    }
  }

  // --- layer 4: the differential trial driver ---------------------------
  bool trial_pass() {
    for (size_t i = 0; i < ops_.size(); ++i) {
      for (int flavor = 0; flavor < kTrialFlavors; ++flavor) {
        if (!run_trial(i, flavor)) return false;
      }
    }
    return true;
  }

  bool run_trial(size_t i, int flavor) {
    const MicroOp& u = ops_[i];
    const Region& rg = segs_[i];
    const uint64_t seed =
        mix64(kSeedBase ^ (static_cast<uint64_t>(i) * kTrialFlavors + flavor));
    const auto trial_fail = [&](size_t mark, const std::string& msg) {
      std::ostringstream os;
      os << "trial flavor " << flavor << ": " << msg;
      return fail_uop(i, mark, os.str());
    };

    uint64_t sregs[kNumRegs];
    for (int kreg = 0; kreg < 10; ++kreg) {
      uint64_t v = mix64(seed ^ (0x100u + kreg)) & kRegMasks[flavor];
      if (v == kRtSentinel) v ^= 1;  // keep the writeback skip rule exact
      sregs[kreg] = v;
    }
    sregs[10] = kStk0;

    TrialMem smem{seed, kMemMasks[flavor], flavor == 4, {}};
    TrialMem xmem = smem;
    smem.write(kRsp0 + kRtSlot, 8, kRtSentinel);
    xmem.write(kRsp0 + kRtSlot, 8, kRtSentinel);

    XState xs;
    for (int kreg = 0; kreg < kNumRegs; ++kreg) {
      xs.r[kBpfRegMap[kreg]] = sregs[kreg];
    }
    xs.r[RSP] = kRsp0;
    xs.r[R9] = mix64(seed ^ 0x201);
    xs.r[R10] = mix64(seed ^ 0x202);
    xs.r[R11] = mix64(seed ^ 0x203);
    xs.r[R12] = 0;

    const uint64_t d_in = sregs[u.dst];
    const uint64_t s_in = sregs[u.src];

    std::vector<Event> sev, xev;
    const Out so = spec_step(i, sregs, smem, sev, seed);

    // Abstract-domain envelope: the concrete transfer the spec just made
    // must be contained in (branches: feasible under) the same ValueRange
    // semantics the verifier proved its facts in.
    if (u.code < kOpCount) {
      const Op op = static_cast<Op>(u.code);
      if (op <= Op::Mov32Imm && op != Op::MovReg && op != Op::MovImm &&
          op != Op::Mov32Reg && op != Op::Mov32Imm) {
        ValueRange b;
        if (op == Op::Neg || op == Op::Neg32) {
          b = ValueRange::konst(0);
        } else if (op_src_is_reg(op)) {
          b = ValueRange::konst(s_in);
        } else {
          b = ValueRange::konst(static_cast<uint64_t>(u.imm));
        }
        const ValueRange vr = ValueRange::alu(op, ValueRange::konst(d_in), b);
        if (!vr.contains(sregs[u.dst])) {
          return trial_fail(rg.insns.size(),
                            "concrete ALU result escapes the abstract "
                            "transfer function's range");
        }
      } else if (is_cond_branch(u.code)) {
        ValueRange d = ValueRange::konst(d_in);
        ValueRange s = op_src_is_reg(op)
                           ? ValueRange::konst(s_in)
                           : ValueRange::konst(static_cast<uint64_t>(u.imm));
        if (!ValueRange::refine_branch(op, so.kind == OKind::Branch, d, s)) {
          return trial_fail(rg.insns.size(),
                            "taken branch edge is infeasible under "
                            "refine_branch");
        }
      }
    }

    Out xo;
    size_t err_at = 0;
    std::string why;
    if (!exec_segment(rg, xs, xmem, xev, seed, &xo, &err_at, &why)) {
      return trial_fail(err_at, why);
    }

    if (xo.kind != so.kind) {
      std::ostringstream os;
      os << "outcome mismatch: spec " << okind_name(so.kind) << ", code "
         << okind_name(xo.kind);
      return trial_fail(rg.insns.size(), os.str());
    }
    switch (so.kind) {
      case OKind::Branch: {
        const uint64_t want = req_.code->meta().code_off[so.v];
        if (xo.v != want) {
          std::ostringstream os;
          os << "branch lands at 0x" << std::hex << xo.v
             << ", target micro-op is at 0x" << want;
          return trial_fail(rg.insns.size(), os.str());
        }
        break;
      }
      case OKind::Exited:
        if (xo.v != so.v) {
          std::ostringstream os;
          os << "return value mismatch: spec r0 0x" << std::hex << so.v
             << ", code rax 0x" << xo.v;
          return trial_fail(rg.insns.size(), os.str());
        }
        break;
      case OKind::Aborted:
        if (xo.v != so.v) {
          std::ostringstream os;
          os << "abort kind mismatch (spec " << so.v << ", code " << xo.v
             << ")";
          return trial_fail(rg.insns.size(), os.str());
        }
        break;
      case OKind::Fall:
        break;
    }
    if (so.kind == OKind::Fall || so.kind == OKind::Branch) {
      for (int kreg = 0; kreg < kNumRegs; ++kreg) {
        if (xs.r[kBpfRegMap[kreg]] != sregs[kreg]) {
          std::ostringstream os;
          os << "r" << kreg << " mismatch: spec 0x" << std::hex << sregs[kreg]
             << ", code 0x" << xs.r[kBpfRegMap[kreg]];
          return trial_fail(rg.insns.size(), os.str());
        }
      }
    }
    if (sev != xev) {
      size_t d = 0;
      while (d < sev.size() && d < xev.size() && sev[d] == xev[d]) ++d;
      std::ostringstream os;
      os << "observable-event mismatch at event " << d << ": spec "
         << (d < sev.size() ? ev_text(sev[d]) : "(none)") << ", code "
         << (d < xev.size() ? ev_text(xev[d]) : "(none)");
      return trial_fail(rg.insns.size(), os.str());
    }
    return true;
  }

  const Request& req_;
  std::span<const MicroOp> ops_;
  const HelperAddrs& ha_;
  std::string error_;
  Region prologue_;
  Region tail_;
  std::vector<Region> segs_;
  std::unordered_set<size_t> proven_pcs_;
  std::unordered_map<size_t, int32_t> call_slots_;
  std::vector<ArrayMap*> am_of_;           // per-uop pinned array map
  std::vector<ReuseportSockArray*> sa_of_; // per-uop pinned sock array
};

}  // namespace

bool enabled() {
  const char* e = std::getenv("HERMES_BPF_VALIDATE");
  if (e != nullptr) {
    return !(std::strcmp(e, "0") == 0 || std::strcmp(e, "off") == 0);
  }
#ifndef NDEBUG
  return true;
#else
  return false;
#endif
}

Result validate(const Request& req) {
  Checker c(req);
  Result res;
  res.ok = c.run();
  res.error = c.error();
  (res.ok ? g_accepts : g_rejects).fetch_add(1, std::memory_order_relaxed);
  return res;
}

uint64_t accepts() { return g_accepts.load(std::memory_order_relaxed); }
uint64_t rejects() { return g_rejects.load(std::memory_order_relaxed); }

}  // namespace hermes::bpf::jit::validate
