// Translation validation for the tier-3 JIT: a static pass that runs once
// at Vm::load time and proves the emitted x86-64 buffer equivalent to the
// ExecutionPlan micro-op stream it was compiled from, before the buffer is
// ever executed. The tier-2 micro-op semantics (bpf/plan_exec.cc) are the
// specification; the compiled bytes are the claim under test.
//
// The pass layers, cheapest first:
//
//   1. Decode + CFG recovery. Every byte of the W^X buffer is decoded
//      through the table-driven subset decoder (x86_decode.h), segmented
//      by the compiler-exported per-micro-op offsets (JitMeta — treated as
//      claims, re-verified, never trusted). rel32 branch targets must land
//      exactly on the target micro-op's code offset; rel8 targets must hit
//      an instruction boundary inside their own segment; the buffer must
//      end in the noreturn fell-off-end trap, so no path falls off the end.
//
//   2. Structural checks. The prologue/epilogue must establish the exact
//      frame ABI (callee-saved pushes, 16-byte alignment, zeroed BPF stack
//      and registers, r1 = ctx, r10 = stack top); instruction-accounting
//      flushes must carry the independently recomputed charge constants
//      and leave zero pending counts at every branch, jump target and
//      exit; backward edges must carry the budget check; baked map
//      immediates (array base / stride / max_entries, sock-array slots,
//      map pointers) must match the maps the program was loaded with; and
//      every elided check must be covered by an exported verifier fact
//      (MemAccessInfo / HelperCallInfo) at the micro-op's source pc — a
//      dropped bounds check is a load-time rejection here.
//
//   3. Symbolic per-segment equivalence. Each segment is executed
//      symbolically against an independent micro-op spec interpreter over
//      seeded trial vectors: same initial BPF register file, a shared
//      deterministic memory oracle, and an ordered observable-event log
//      (bounds checks, stores, helper calls, aborts) that must match
//      exactly, along with every final BPF register and the branch
//      direction. The tnum/interval ValueRange domain (bpf/analysis/)
//      supplies a soundness envelope on top: every concrete ALU result
//      the machine code produces must be contained in the abstract
//      transfer function's output range, and every taken branch edge must
//      be feasible under refine_branch — so the checker cross-validates
//      against the same abstract semantics the verifier proved facts in.
//
// Rejection falls back to tier 2 through the jit_fallbacks machinery with
// a decoded-window diagnostic (mirroring the verifier's disasm windows).
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "bpf/plan.h"

namespace hermes::bpf {
namespace analysis {
struct AnalysisResult;
}  // namespace analysis

namespace jit {
class JitCode;

namespace validate {

// Gate: HERMES_BPF_VALIDATE=1|on forces on, =0|off forces off; unset means
// on in debug builds (and CI's sanitizer jobs), off in NDEBUG builds —
// release opts in explicitly. Re-read per call: load-time only, not hot.
bool enabled();

struct Request {
  const JitCode* code = nullptr;          // compiled buffer + JitMeta
  std::span<const MicroOp> ops;           // the spec: tier-2 micro-ops
  std::span<const uint32_t> src_pc;       // micro-op -> source pc
  std::span<Map* const> maps;             // bound maps (baked immediates)
  const analysis::AnalysisResult* facts = nullptr;  // verifier facts
};

struct Result {
  bool ok = false;
  std::string error;  // rejection reason + decoded window
};

// Run the full pass. Bumps the process-wide accept/reject counters below.
Result validate(const Request& req);

// Process-wide counters feeding bpf.validate_{accepts,rejects}.
uint64_t accepts();
uint64_t rejects();

}  // namespace validate
}  // namespace jit
}  // namespace hermes::bpf
