// x86-64 subset decoder (see x86_decode.h). Two dispatch tables — primary
// opcode map and 0F escape map — classify the opcode byte; modrm/SIB and
// immediate parsing then follow the SDM rules for that class. Everything
// outside the emitter's vocabulary decodes to a hard error.
#include "bpf/jit/validate/x86_decode.h"

#include <cinttypes>
#include <cstdio>

namespace hermes::bpf::jit::validate {

namespace {

// Primary-opcode classes. One table entry per opcode byte; the handler
// switch below consumes modrm/SIB/immediates per class.
enum class K : uint8_t {
  Bad = 0,
  AluRR,    // 01 09 21 29 31 39 85 88 89: /r store form (88/89 may be mem)
  Load8B,   // 8B: mov reg, [mem]
  Grp1,     // 80-group 83/81: /ext imm to rm (reg or mem)
  Grp3,     // F7: /0 test imm32, /3 neg, /6 div
  Shift,    // D3 (cl) / C1 (imm8): /ext
  MovB8,    // B8..BF: mov reg, imm32/imm64 by REX.W
  C6,       // C6 /0: mov byte [mem], imm8
  C7,       // C7 /0: mov rm, imm32 (reg form = mov_ri simm32; mem = store)
  Lea8D,    // 8D
  Push,     // 50..57
  Pop,      // 58..5F
  GrpFF,    // FF /2: call r
  Ret,      // C3
  JmpR32,   // E9
  JmpR8,    // EB
  Jcc8,     // 70..7F
  Imul69,   // 69 /r imm32: imul reg, rm, imm
  Esc0F,    // 0F: second table
};

struct Tables {
  K primary[256];
  // 0F escape classes: 0 bad, 1 movzx8 (B6), 2 movzx16 (B7), 3 imul (AF),
  // 4 jcc rel32 (80..8F), 5 xorps (57), 6 movaps-store (29).
  uint8_t esc[256];
};

constexpr Tables build_tables() {
  Tables t{};
  for (int i = 0; i < 256; ++i) {
    t.primary[i] = K::Bad;
    t.esc[i] = 0;
  }
  for (uint8_t op : {0x01, 0x09, 0x21, 0x29, 0x31, 0x39, 0x85, 0x88, 0x89}) {
    t.primary[op] = K::AluRR;
  }
  t.primary[0x8B] = K::Load8B;
  t.primary[0x83] = K::Grp1;
  t.primary[0x81] = K::Grp1;
  t.primary[0xF7] = K::Grp3;
  t.primary[0xD3] = K::Shift;
  t.primary[0xC1] = K::Shift;
  for (int i = 0xB8; i <= 0xBF; ++i) t.primary[i] = K::MovB8;
  t.primary[0xC6] = K::C6;
  t.primary[0xC7] = K::C7;
  t.primary[0x8D] = K::Lea8D;
  for (int i = 0x50; i <= 0x57; ++i) t.primary[i] = K::Push;
  for (int i = 0x58; i <= 0x5F; ++i) t.primary[i] = K::Pop;
  t.primary[0xFF] = K::GrpFF;
  t.primary[0xC3] = K::Ret;
  t.primary[0xE9] = K::JmpR32;
  t.primary[0xEB] = K::JmpR8;
  for (int i = 0x70; i <= 0x7F; ++i) t.primary[i] = K::Jcc8;
  t.primary[0x0F] = K::Esc0F;
  t.esc[0xB6] = 1;
  t.esc[0xB7] = 2;
  t.esc[0xAF] = 3;
  for (int i = 0x80; i <= 0x8F; ++i) t.esc[i] = 4;
  t.esc[0x57] = 5;
  t.esc[0x29] = 6;
  t.primary[0x69] = K::Imul69;
  return t;
}

constexpr Tables kTab = build_tables();

// Group-1 /ext -> XOp (adc/sbb/unused exts are outside the subset).
bool grp1_op(int ext, XOp* out) {
  switch (ext) {
    case 0: *out = XOp::Add; return true;
    case 1: *out = XOp::Or; return true;
    case 4: *out = XOp::And; return true;
    case 5: *out = XOp::Sub; return true;
    case 6: *out = XOp::Xor; return true;
    case 7: *out = XOp::Cmp; return true;
    default: return false;
  }
}

bool shift_op(int ext, XOp* out) {
  switch (ext) {
    case 4: *out = XOp::Shl; return true;
    case 5: *out = XOp::Shr; return true;
    case 7: *out = XOp::Sar; return true;
    default: return false;
  }
}

XOp alu_rr_op(uint8_t opc) {
  switch (opc) {
    case 0x01: return XOp::Add;
    case 0x09: return XOp::Or;
    case 0x21: return XOp::And;
    case 0x29: return XOp::Sub;
    case 0x31: return XOp::Xor;
    case 0x39: return XOp::Cmp;
    default: return XOp::Test;  // 0x85
  }
}

// Streaming byte reader with bounds checking.
struct Rd {
  const uint8_t* p;
  size_t avail;
  size_t pos = 0;
  bool ok = true;

  uint8_t u8() {
    if (pos >= avail) {
      ok = false;
      return 0;
    }
    return p[pos++];
  }
  uint32_t u32() {
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(u8()) << (8 * i);
    return v;
  }
  uint64_t u64() {
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(u8()) << (8 * i);
    return v;
  }
};

struct Mem {
  bool is_reg = false;  // mod == 3: `base` is a register operand
  int reg = 0;          // modrm.reg | REX.R
  int base = 0;         // rm or SIB base | REX.B
  int index = -1;       // SIB index | REX.X (scale 8), -1 = none
  int32_t disp = 0;
};

// modrm (+SIB +disp) per the SDM, restricted to the emitter's shapes:
// no RIP-relative, SIB only as no-index (0x24 style) or index*8.
bool parse_modrm(Rd& r, int rex_r, int rex_x, int rex_b, Mem* m,
                 std::string* err) {
  const uint8_t modrm = r.u8();
  const int mod = modrm >> 6;
  m->reg = ((modrm >> 3) & 7) | (rex_r << 3);
  const int rm = modrm & 7;
  if (mod == 3) {
    m->is_reg = true;
    m->base = rm | (rex_b << 3);
    return true;
  }
  if (rm == 4) {  // SIB
    const uint8_t sib = r.u8();
    const int scale = sib >> 6;
    const int idx = ((sib >> 3) & 7) | (rex_x << 3);
    const int sb = sib & 7;
    if (mod == 0 && sb == 5) {
      *err = "disp32-without-base SIB outside emitter subset";
      return false;
    }
    m->base = sb | (rex_b << 3);
    if (idx == 4 && rex_x == 0) {  // no index
      if (scale != 0) {
        *err = "scaled no-index SIB outside emitter subset";
        return false;
      }
      m->index = -1;
    } else {
      if (scale != 3) {
        *err = "SIB scale other than 8 outside emitter subset";
        return false;
      }
      m->index = idx;
    }
  } else {
    if (mod == 0 && rm == 5) {
      *err = "RIP-relative addressing outside emitter subset";
      return false;
    }
    m->base = rm | (rex_b << 3);
  }
  if (mod == 1) {
    m->disp = static_cast<int8_t>(r.u8());
  } else if (mod == 2) {
    m->disp = static_cast<int32_t>(r.u32());
  }
  return true;
}

}  // namespace

const char* to_string(XOp op) {
  switch (op) {
    case XOp::MovRR: return "mov";
    case XOp::MovRI: return "mov";
    case XOp::Add: return "add";
    case XOp::Or: return "or";
    case XOp::And: return "and";
    case XOp::Sub: return "sub";
    case XOp::Xor: return "xor";
    case XOp::Cmp: return "cmp";
    case XOp::Test: return "test";
    case XOp::Imul: return "imul";
    case XOp::Div: return "div";
    case XOp::Neg: return "neg";
    case XOp::Shl: return "shl";
    case XOp::Shr: return "shr";
    case XOp::Sar: return "sar";
    case XOp::Load: return "load";
    case XOp::Store: return "store";
    case XOp::StoreImm: return "store-imm";
    case XOp::AddMem: return "add-mem";
    case XOp::Lea: return "lea";
    case XOp::Push: return "push";
    case XOp::Pop: return "pop";
    case XOp::CallR: return "call";
    case XOp::Ret: return "ret";
    case XOp::Jmp: return "jmp";
    case XOp::Jcc: return "jcc";
    case XOp::Xorps: return "xorps";
    case XOp::MovapsZ: return "movaps-z";
  }
  return "?";
}

bool decode_one(const uint8_t* p, size_t avail, XInsn* out,
                std::string* err) {
  Rd r{p, avail};
  XInsn x;

  // Prefixes in emitter order: optional 66, then optional REX.
  bool opsize16 = false;
  uint8_t b = r.u8();
  if (b == 0x66) {
    opsize16 = true;
    b = r.u8();
  }
  int rex_w = 0, rex_r = 0, rex_x = 0, rex_b = 0;
  if ((b & 0xF0) == 0x40) {
    rex_w = (b >> 3) & 1;
    rex_r = (b >> 2) & 1;
    rex_x = (b >> 1) & 1;
    rex_b = b & 1;
    b = r.u8();
  }
  x.w = rex_w != 0;
  if (!r.ok) {
    *err = "truncated instruction";
    return false;
  }

  const auto finish = [&]() -> bool {
    if (!r.ok) {
      *err = "truncated instruction";
      return false;
    }
    x.len = static_cast<uint8_t>(r.pos);
    *out = x;
    return true;
  };
  const auto bad = [&](const char* what) -> bool {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%s (opcode 0x%02X)", what, b);
    *err = buf;
    return false;
  };

  Mem m;
  switch (kTab.primary[b]) {
    case K::AluRR: {
      if (!parse_modrm(r, rex_r, rex_x, rex_b, &m, err)) return false;
      if (b == 0x88 || (b == 0x89 && !m.is_reg)) {
        // Byte/word/dword/qword store of modrm.reg.
        if (m.index != -1) return bad("indexed store outside subset");
        x.op = XOp::Store;
        x.width = b == 0x88 ? 1 : (opsize16 ? 2 : (x.w ? 8 : 4));
        x.reg = static_cast<int8_t>(m.reg);
        x.base = static_cast<int8_t>(m.base);
        x.disp = m.disp;
        return finish();
      }
      if (!m.is_reg) return bad("memory form outside subset");
      if (opsize16) return bad("16-bit ALU outside subset");
      x.op = b == 0x89 ? XOp::MovRR : alu_rr_op(b);
      x.reg = static_cast<int8_t>(m.reg);
      x.base = static_cast<int8_t>(m.base);
      return finish();
    }

    case K::Load8B: {
      if (!parse_modrm(r, rex_r, rex_x, rex_b, &m, err)) return false;
      if (m.is_reg) return bad("register-form 8B outside subset");
      x.op = XOp::Load;
      x.width = x.w ? 8 : 4;
      x.reg = static_cast<int8_t>(m.reg);
      x.base = static_cast<int8_t>(m.base);
      x.index = static_cast<int8_t>(m.index);
      x.disp = m.disp;
      return finish();
    }

    case K::Grp1: {
      if (!parse_modrm(r, rex_r, rex_x, rex_b, &m, err)) return false;
      const int64_t imm =
          b == 0x83 ? static_cast<int8_t>(r.u8())
                    : static_cast<int32_t>(r.u32());
      if (!m.is_reg) {
        // add qword [base+disp], imm — the counter flush.
        if (m.reg != 0 || !x.w) return bad("memory group-1 outside subset");
        if (m.index != -1) return bad("indexed add-mem outside subset");
        x.op = XOp::AddMem;
        x.base = static_cast<int8_t>(m.base);
        x.disp = m.disp;
        x.imm = imm;
        return finish();
      }
      if (!grp1_op(m.reg, &x.op)) return bad("group-1 ext outside subset");
      x.imm_form = true;
      x.base = static_cast<int8_t>(m.base);
      x.imm = imm;
      return finish();
    }

    case K::Grp3: {
      if (!parse_modrm(r, rex_r, rex_x, rex_b, &m, err)) return false;
      if (!m.is_reg) return bad("memory group-3 outside subset");
      x.base = static_cast<int8_t>(m.base);
      if (m.reg == 0) {
        x.op = XOp::Test;
        x.imm_form = true;
        x.imm = static_cast<int32_t>(r.u32());
        return finish();
      }
      if (m.reg == 3) {
        x.op = XOp::Neg;
        return finish();
      }
      if (m.reg == 6) {
        x.op = XOp::Div;
        return finish();
      }
      return bad("group-3 ext outside subset");
    }

    case K::Shift: {
      if (!parse_modrm(r, rex_r, rex_x, rex_b, &m, err)) return false;
      if (!m.is_reg) return bad("memory shift outside subset");
      if (!shift_op(m.reg, &x.op)) return bad("shift ext outside subset");
      x.base = static_cast<int8_t>(m.base);
      if (b == 0xC1) {
        x.imm_form = true;
        x.imm = r.u8();
      }
      return finish();
    }

    case K::MovB8: {
      x.op = XOp::MovRI;
      x.base = static_cast<int8_t>((b - 0xB8) | (rex_b << 3));
      if (x.w) {
        x.imm = static_cast<int64_t>(r.u64());  // movabs
        x.imm_form = true;                      // marks the 10-byte form
      } else {
        x.imm = static_cast<int64_t>(r.u32());  // zero-extends
      }
      return finish();
    }

    case K::C6: {
      if (!parse_modrm(r, rex_r, rex_x, rex_b, &m, err)) return false;
      if (m.is_reg || m.reg != 0) return bad("C6 form outside subset");
      if (m.index != -1) return bad("indexed store outside subset");
      x.op = XOp::StoreImm;
      x.width = 1;
      x.base = static_cast<int8_t>(m.base);
      x.disp = m.disp;
      x.imm = r.u8();
      return finish();
    }

    case K::C7: {
      if (!parse_modrm(r, rex_r, rex_x, rex_b, &m, err)) return false;
      if (m.reg != 0) return bad("C7 ext outside subset");
      if (m.is_reg) {
        // mov r64, simm32 (mov_ri's middle form).
        if (!x.w) return bad("32-bit C7 reg form outside subset");
        x.op = XOp::MovRI;
        x.base = static_cast<int8_t>(m.base);
        x.imm = static_cast<int32_t>(r.u32());  // sign-extends
        return finish();
      }
      if (m.index != -1) return bad("indexed store outside subset");
      x.op = XOp::StoreImm;
      x.base = static_cast<int8_t>(m.base);
      x.disp = m.disp;
      if (opsize16) {
        x.width = 2;
        x.imm = r.u8() | (static_cast<int64_t>(r.u8()) << 8);
      } else if (x.w) {
        x.width = 8;
        x.imm = static_cast<int32_t>(r.u32());  // sign-extends
      } else {
        x.width = 4;
        x.imm = static_cast<int64_t>(r.u32());
      }
      return finish();
    }

    case K::Lea8D: {
      if (!parse_modrm(r, rex_r, rex_x, rex_b, &m, err)) return false;
      if (m.is_reg || !x.w) return bad("lea form outside subset");
      if (m.index != -1) return bad("indexed lea outside subset");
      x.op = XOp::Lea;
      x.reg = static_cast<int8_t>(m.reg);
      x.base = static_cast<int8_t>(m.base);
      x.disp = m.disp;
      return finish();
    }

    case K::Push:
      x.op = XOp::Push;
      x.base = static_cast<int8_t>((b - 0x50) | (rex_b << 3));
      return finish();
    case K::Pop:
      x.op = XOp::Pop;
      x.base = static_cast<int8_t>((b - 0x58) | (rex_b << 3));
      return finish();

    case K::GrpFF: {
      if (!parse_modrm(r, rex_r, rex_x, rex_b, &m, err)) return false;
      if (!m.is_reg || m.reg != 2) return bad("FF ext outside subset");
      x.op = XOp::CallR;
      x.base = static_cast<int8_t>(m.base);
      return finish();
    }

    case K::Imul69: {
      if (!parse_modrm(r, rex_r, rex_x, rex_b, &m, err)) return false;
      if (!m.is_reg) return bad("memory imul outside subset");
      x.op = XOp::Imul;
      x.imm_form = true;
      x.reg = static_cast<int8_t>(m.reg);
      x.base = static_cast<int8_t>(m.base);
      x.imm = static_cast<int32_t>(r.u32());  // sign-extends
      return finish();
    }

    case K::Ret:
      x.op = XOp::Ret;
      return finish();

    case K::JmpR32:
      x.op = XOp::Jmp;
      x.rel = static_cast<int32_t>(r.u32());
      return finish();
    case K::JmpR8:
      x.op = XOp::Jmp;
      x.rel8 = true;
      x.rel = static_cast<int8_t>(r.u8());
      return finish();
    case K::Jcc8:
      x.op = XOp::Jcc;
      x.rel8 = true;
      x.cc = b & 0x0F;
      x.rel = static_cast<int8_t>(r.u8());
      return finish();

    case K::Esc0F: {
      const uint8_t b2 = r.u8();
      if (!r.ok) {
        *err = "truncated instruction";
        return false;
      }
      switch (kTab.esc[b2]) {
        case 1:  // movzx r, byte
        case 2:  // movzx r, word
          if (!parse_modrm(r, rex_r, rex_x, rex_b, &m, err)) return false;
          if (m.is_reg) return bad("register-form movzx outside subset");
          x.op = XOp::Load;
          x.width = kTab.esc[b2] == 1 ? 1 : 2;
          x.reg = static_cast<int8_t>(m.reg);
          x.base = static_cast<int8_t>(m.base);
          x.index = static_cast<int8_t>(m.index);
          x.disp = m.disp;
          return finish();
        case 3:  // imul r, rm
          if (!parse_modrm(r, rex_r, rex_x, rex_b, &m, err)) return false;
          if (!m.is_reg) return bad("memory imul outside subset");
          x.op = XOp::Imul;
          x.reg = static_cast<int8_t>(m.reg);
          x.base = static_cast<int8_t>(m.base);
          return finish();
        case 4:  // jcc rel32
          x.op = XOp::Jcc;
          x.cc = b2 & 0x0F;
          x.rel = static_cast<int32_t>(r.u32());
          return finish();
        case 5: {  // xorps xmm0, xmm0 — fixed C0 modrm
          const uint8_t mo = r.u8();
          if (mo != 0xC0) return bad("xorps form outside subset");
          x.op = XOp::Xorps;
          return finish();
        }
        case 6:  // movaps [mem], xmm0
          if (!parse_modrm(r, rex_r, rex_x, rex_b, &m, err)) return false;
          if (m.is_reg || m.reg != 0) return bad("movaps form outside subset");
          if (m.index != -1) return bad("indexed movaps outside subset");
          x.op = XOp::MovapsZ;
          x.base = static_cast<int8_t>(m.base);
          x.disp = m.disp;
          return finish();
        default: {
          char buf[64];
          std::snprintf(buf, sizeof buf,
                        "opcode 0F %02X outside emitter subset", b2);
          *err = buf;
          return false;
        }
      }
    }

    case K::Bad:
      break;
  }
  return bad("opcode outside emitter subset");
}

namespace {

const char* kReg64[16] = {"rax", "rcx", "rdx", "rbx", "rsp", "rbp",
                          "rsi", "rdi", "r8",  "r9",  "r10", "r11",
                          "r12", "r13", "r14", "r15"};

std::string reg_name(int r) {
  return (r >= 0 && r < 16) ? kReg64[r] : "r?";
}

std::string mem_ref(const XInsn& x) {
  char buf[64];
  if (x.index >= 0) {
    std::snprintf(buf, sizeof buf, "[%s+%s*8]", kReg64[x.base & 15],
                  kReg64[x.index & 15]);
  } else {
    std::snprintf(buf, sizeof buf, "[%s%+d]", kReg64[x.base & 15], x.disp);
  }
  return buf;
}

}  // namespace

std::string to_text(const XInsn& x) {
  char buf[96];
  switch (x.op) {
    case XOp::MovRR:
      std::snprintf(buf, sizeof buf, "mov%s %s, %s", x.w ? "" : "32",
                    reg_name(x.base).c_str(), reg_name(x.reg).c_str());
      return buf;
    case XOp::MovRI:
      std::snprintf(buf, sizeof buf, "mov %s, 0x%" PRIx64,
                    reg_name(x.base).c_str(),
                    static_cast<uint64_t>(x.imm));
      return buf;
    case XOp::Add: case XOp::Or: case XOp::And: case XOp::Sub:
    case XOp::Xor: case XOp::Cmp: case XOp::Test:
      if (x.imm_form) {
        std::snprintf(buf, sizeof buf, "%s%s %s, 0x%" PRIx64,
                      to_string(x.op), x.w ? "" : "32",
                      reg_name(x.base).c_str(),
                      static_cast<uint64_t>(x.imm));
      } else {
        std::snprintf(buf, sizeof buf, "%s%s %s, %s", to_string(x.op),
                      x.w ? "" : "32", reg_name(x.base).c_str(),
                      reg_name(x.reg).c_str());
      }
      return buf;
    case XOp::Imul:
      if (x.imm_form) {
        std::snprintf(buf, sizeof buf, "imul %s, %s, 0x%" PRIx64,
                      reg_name(x.reg).c_str(), reg_name(x.base).c_str(),
                      static_cast<uint64_t>(x.imm));
      } else {
        std::snprintf(buf, sizeof buf, "imul %s, %s",
                      reg_name(x.reg).c_str(), reg_name(x.base).c_str());
      }
      return buf;
    case XOp::Div:
      std::snprintf(buf, sizeof buf, "div%s %s", x.w ? "" : "32",
                    reg_name(x.base).c_str());
      return buf;
    case XOp::Neg:
      std::snprintf(buf, sizeof buf, "neg%s %s", x.w ? "" : "32",
                    reg_name(x.base).c_str());
      return buf;
    case XOp::Shl: case XOp::Shr: case XOp::Sar:
      if (x.imm_form) {
        std::snprintf(buf, sizeof buf, "%s%s %s, %d", to_string(x.op),
                      x.w ? "" : "32", reg_name(x.base).c_str(),
                      static_cast<int>(x.imm));
      } else {
        std::snprintf(buf, sizeof buf, "%s%s %s, cl", to_string(x.op),
                      x.w ? "" : "32", reg_name(x.base).c_str());
      }
      return buf;
    case XOp::Load:
      std::snprintf(buf, sizeof buf, "mov %s, %s (w%d)",
                    reg_name(x.reg).c_str(), mem_ref(x).c_str(), x.width);
      return buf;
    case XOp::Store:
      std::snprintf(buf, sizeof buf, "mov %s, %s (w%d)", mem_ref(x).c_str(),
                    reg_name(x.reg).c_str(), x.width);
      return buf;
    case XOp::StoreImm:
      std::snprintf(buf, sizeof buf, "mov %s, 0x%" PRIx64 " (w%d)",
                    mem_ref(x).c_str(), static_cast<uint64_t>(x.imm),
                    x.width);
      return buf;
    case XOp::AddMem:
      std::snprintf(buf, sizeof buf, "add qword %s, 0x%" PRIx64,
                    mem_ref(x).c_str(), static_cast<uint64_t>(x.imm));
      return buf;
    case XOp::Lea:
      std::snprintf(buf, sizeof buf, "lea %s, %s",
                    reg_name(x.reg).c_str(), mem_ref(x).c_str());
      return buf;
    case XOp::Push:
      std::snprintf(buf, sizeof buf, "push %s", reg_name(x.base).c_str());
      return buf;
    case XOp::Pop:
      std::snprintf(buf, sizeof buf, "pop %s", reg_name(x.base).c_str());
      return buf;
    case XOp::CallR:
      std::snprintf(buf, sizeof buf, "call %s", reg_name(x.base).c_str());
      return buf;
    case XOp::Ret:
      return "ret";
    case XOp::Jmp:
      std::snprintf(buf, sizeof buf, "jmp %+d", x.rel);
      return buf;
    case XOp::Jcc:
      std::snprintf(buf, sizeof buf, "jcc(%X) %+d", x.cc, x.rel);
      return buf;
    case XOp::Xorps:
      return "xorps xmm0, xmm0";
    case XOp::MovapsZ:
      std::snprintf(buf, sizeof buf, "movaps %s, xmm0", mem_ref(x).c_str());
      return buf;
  }
  return "?";
}

}  // namespace hermes::bpf::jit::validate
