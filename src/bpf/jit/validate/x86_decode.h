// Table-driven x86-64 decoder for the translation validator (validate.h).
//
// This is NOT a general x86 decoder: it recognizes exactly the instruction
// subset CodeBuf (bpf/jit/codegen.h) can emit — the closed set the tier-3
// JIT's code generator is built from — and rejects everything else. That
// is a feature: any byte sequence outside the emitter's vocabulary in the
// W^X buffer is evidence of a codegen bug (or corrupted metadata), and the
// validator's job is to refuse it loudly rather than guess at semantics.
//
// Decoding is independent of the encoder by construction: the tables
// below are written from the Intel SDM encodings (prefix/opcode/modrm/SIB
// rules), not by calling into CodeBuf, so an encoding slip on either side
// shows up as a mismatch instead of cancelling out.
#pragma once

#include <cstdint>
#include <string>

namespace hermes::bpf::jit::validate {

// Decoded operation, normalized across encodings (e.g. 83 /0 imm8 and
// 81 /0 imm32 both decode to Add with imm_form = true).
enum class XOp : uint8_t {
  MovRR,     // 89 /r, mod=3 (dst = base, src = reg; w selects 64/32)
  MovRI,     // B8+r imm32 (zero-extend) / REX.W C7 /0 simm32 / REX.W
             // B8+r imm64 — `imm` holds the final 64-bit value
  Add, Or, And, Sub, Xor, Cmp, Test,  // rr store form (dst = base,
             // src = reg) or group-1 imm form (dst = base, imm)
  Imul,      // 0F AF /r (dst = reg, src = base) or 69 /r imm32
  Div,       // F7 /6 (unsigned rdx:rax / base)
  Neg,       // F7 /3
  Shl, Shr, Sar,  // D3 /ext (count in cl) or C1 /ext imm8 (imm_form)
  Load,      // movzx (0F B6/B7) or mov (8B): dst = reg, width 1/2/4/8;
             // [base + disp] or [base + index*8]
  Store,     // 88 / 66 89 / 89 / REX.W 89 to memory: src = reg
  StoreImm,  // C6 / 66 C7 / C7 / REX.W C7 to memory
  AddMem,    // 83|81 /0 to memory: add qword [base + disp], imm
  Lea,       // REX.W 8D: dst = reg, value = base + disp
  Push, Pop, // 50+r / 58+r: register in `base`
  CallR,     // FF /2: target register in `base`
  Ret,       // C3
  Jmp,       // E9 rel32 / EB rel8
  Jcc,       // 0F 8x rel32 / 7x rel8 (`cc` = low nibble)
  Xorps,     // 0F 57 C0 (xmm0 ^= xmm0; prologue only)
  MovapsZ,   // 0F 29: movaps [base + disp], xmm0 (prologue only)
};

const char* to_string(XOp op);

// One decoded instruction. Operand roles follow the per-XOp conventions
// documented above; unused fields stay at their defaults.
struct XInsn {
  uint32_t off = 0;       // byte offset in the buffer (filled by caller)
  uint8_t len = 0;        // encoded length in bytes
  XOp op = XOp::Ret;
  bool w = false;         // 64-bit operand size (REX.W)
  uint8_t width = 0;      // memory access width in bytes (Load/Store*)
  bool imm_form = false;  // immediate form of an ALU/shift/imul op
  bool rel8 = false;      // Jmp/Jcc used the rel8 encoding
  int8_t reg = -1;        // modrm.reg operand (REX.R applied)
  int8_t base = -1;       // modrm.rm / SIB.base operand (REX.B applied)
  int8_t index = -1;      // SIB.index, scale fixed at 8 (REX.X applied)
  int32_t disp = 0;       // memory displacement
  int64_t imm = 0;        // immediate, extended per encoding rules
  int32_t rel = 0;        // branch displacement (from next-insn address)
  uint8_t cc = 0;         // Jcc condition (0F 8x / 7x low nibble)
};

// Decode one instruction at `p` (at most `avail` bytes). On success fills
// `*out` (except .off) and returns true; on any byte sequence outside the
// emitter subset returns false with a diagnostic in `*err`.
bool decode_one(const uint8_t* p, size_t avail, XInsn* out,
                std::string* err);

// Compact disassembly for rejection diagnostics, e.g.
// "add r12, 0x7" or "mov rax, [r9+0x0] (w4)".
std::string to_text(const XInsn& x);

}  // namespace hermes::bpf::jit::validate
