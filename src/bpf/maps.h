// eBPF map objects shared between "kernel" programs and userspace.
//
// Two map types are enough for Hermes (paper §5.4):
//   * ArrayMap (BPF_MAP_TYPE_ARRAY): fixed-size elements addressed by u32
//     key. Hermes stores the 64-bit worker-selection bitmap in a 1-element
//     array of u64. Like the kernel, 8-byte aligned u64 slots support atomic
//     load/store, which is what makes the lock-free userspace->kernel
//     decision sync work.
//   * ReuseportSockArray (BPF_MAP_TYPE_REUSEPORT_SOCKARRAY): worker id ->
//     socket cookie, consumed by bpf_sk_select_reuseport().
//
// Maps are identified inside a program by a small slot index bound at load
// time (Vm::load), mirroring map-fd relocation in libbpf.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

#include "util/check.h"

namespace hermes::bpf {

enum class MapType { Array, ReuseportSockArray };

class Map {
 public:
  Map(MapType type, uint32_t max_entries, uint32_t value_size)
      : type_(type), max_entries_(max_entries), value_size_(value_size) {}
  virtual ~Map() = default;

  MapType type() const { return type_; }
  uint32_t max_entries() const { return max_entries_; }
  uint32_t value_size() const { return value_size_; }

 private:
  MapType type_;
  uint32_t max_entries_;
  uint32_t value_size_;
};

class ArrayMap final : public Map {
 public:
  ArrayMap(uint32_t max_entries, uint32_t value_size)
      : Map(MapType::Array, max_entries, value_size),
        storage_(static_cast<size_t>(max_entries) * round8(value_size)) {}

  // Kernel-side: pointer to the element, or nullptr if key out of range.
  // (Array maps never return null for valid keys; programs must still
  // null-check per the verifier, as in real eBPF.)
  uint8_t* lookup(uint32_t key) {
    if (key >= max_entries()) return nullptr;
    return storage_.data() + static_cast<size_t>(key) * stride();
  }

  // Userspace-side API (the bpf() syscall surface).
  bool update(uint32_t key, const void* value) {
    uint8_t* slot = lookup(key);
    if (slot == nullptr) return false;
    std::memcpy(slot, value, value_size());
    return true;
  }
  bool read(uint32_t key, void* out) {
    uint8_t* slot = lookup(key);
    if (slot == nullptr) return false;
    std::memcpy(out, slot, value_size());
    return true;
  }

  // Lock-free u64 element access: this is the path Hermes uses for the
  // selection bitmap (single atomic 8-byte store/load, no locking).
  void store_u64(uint32_t key, uint64_t v,
                 std::memory_order order = std::memory_order_release) {
    HERMES_CHECK(value_size() == sizeof(uint64_t));
    uint8_t* slot = lookup(key);
    HERMES_CHECK(slot != nullptr);
    reinterpret_cast<std::atomic<uint64_t>*>(slot)->store(v, order);
  }
  uint64_t load_u64(uint32_t key,
                    std::memory_order order = std::memory_order_acquire) {
    HERMES_CHECK(value_size() == sizeof(uint64_t));
    uint8_t* slot = lookup(key);
    HERMES_CHECK(slot != nullptr);
    return reinterpret_cast<std::atomic<uint64_t>*>(slot)->load(order);
  }

  // Lock-free u64 access to word `word` INSIDE element `key`'s value —
  // how userspace publishes multi-word policy state (core/policy.h aux
  // maps) that a dispatch program reads concurrently. Same single
  // 8-byte-atomic contract as store_u64/load_u64, per word; cross-word
  // consistency is the policy's problem (every shipped policy tolerates
  // word-level staleness by design).
  void store_word_u64(uint32_t key, uint32_t word, uint64_t v,
                      std::memory_order order = std::memory_order_release) {
    HERMES_CHECK(static_cast<size_t>(word + 1) * 8 <= stride());
    uint8_t* slot = lookup(key);
    HERMES_CHECK(slot != nullptr);
    reinterpret_cast<std::atomic<uint64_t>*>(slot + size_t{word} * 8)
        ->store(v, order);
  }
  uint64_t load_word_u64(uint32_t key, uint32_t word,
                         std::memory_order order = std::memory_order_acquire) {
    HERMES_CHECK(static_cast<size_t>(word + 1) * 8 <= stride());
    uint8_t* slot = lookup(key);
    HERMES_CHECK(slot != nullptr);
    return reinterpret_cast<std::atomic<uint64_t>*>(slot + size_t{word} * 8)
        ->load(order);
  }

  // Entire backing store, for VM pointer validation.
  uint8_t* storage_base() { return storage_.data(); }
  size_t storage_bytes() const { return storage_.size(); }
  size_t stride() const { return round8(value_size()); }

 private:
  static size_t round8(uint32_t n) { return (n + 7u) & ~7u; }
  std::vector<uint8_t> storage_;
};

// Socket cookies are opaque u64 handles; netsim registers its reuseport
// sockets here and resolves cookies back to sockets after program exit.
inline constexpr uint64_t kNoSocket = ~0ull;

class ReuseportSockArray final : public Map {
 public:
  explicit ReuseportSockArray(uint32_t max_entries)
      : Map(MapType::ReuseportSockArray, max_entries, sizeof(uint64_t)),
        slots_(max_entries) {
    for (auto& s : slots_) s.store(kNoSocket, std::memory_order_relaxed);
  }

  bool update(uint32_t key, uint64_t socket_cookie) {
    if (key >= max_entries()) return false;
    slots_[key].store(socket_cookie, std::memory_order_release);
    return true;
  }
  bool remove(uint32_t key) {
    if (key >= max_entries()) return false;
    slots_[key].store(kNoSocket, std::memory_order_release);
    return true;
  }
  uint64_t get(uint32_t key) const {
    if (key >= max_entries()) return kNoSocket;
    return slots_[key].load(std::memory_order_acquire);
  }

  // Slot array base for the JIT's inlined sk_select_reuseport fast path
  // (bpf/jit/), baked into generated code as an immediate. An aligned
  // 8-byte mov from a slot is an acquire load on x86-64 — the only
  // architecture that JITs — so this matches get()'s ordering.
  const std::atomic<uint64_t>* slots_data() const { return slots_.data(); }

 private:
  std::vector<std::atomic<uint64_t>> slots_;
};

// Tag-checked downcasts for the dispatch hot path. Both concrete map
// classes are final, so a MapType check licenses a static_cast — no RTTI
// lookup per dispatch.
inline ArrayMap* as_array_map(Map* m) {
  return m != nullptr && m->type() == MapType::Array ? static_cast<ArrayMap*>(m)
                                                     : nullptr;
}
inline ReuseportSockArray* as_sock_array(Map* m) {
  return m != nullptr && m->type() == MapType::ReuseportSockArray
             ? static_cast<ReuseportSockArray*>(m)
             : nullptr;
}

}  // namespace hermes::bpf
