// ExecutionPlan compiler: pre-decodes a verified program into the flat
// micro-op form bpf/plan_exec.cc dispatches over. See plan.h for the tier
// model. Compilation is structural — fusion matches the exact instruction
// shapes core/dispatch_prog.cc emits (any register allocation), and every
// rewrite preserves final register state and instruction accounting.
#include "bpf/plan.h"

#include <cstdlib>

#include "bpf/analysis/interp.h"
#include "bpf/jit/jit.h"
#include "bpf/jit/validate/validate.h"
#include "util/check.h"

namespace hermes::bpf {

ExecutionPlan::~ExecutionPlan() = default;

const char* to_string(ExecTier t) {
  switch (t) {
    case ExecTier::Interp: return "interp";
    case ExecTier::Threaded: return "threaded";
    case ExecTier::Elide: return "elide";
    case ExecTier::Jit: return "jit";
  }
  return "?";
}

const char* to_string(JitFallbackKind k) {
  switch (k) {
    case JitFallbackKind::None: return "none";
    case JitFallbackKind::Disabled: return "disabled";
    case JitFallbackKind::AllocFailure: return "alloc_failure";
    case JitFallbackKind::ValidateReject: return "validate_reject";
    case JitFallbackKind::Other: return "other";
  }
  return "?";
}

ExecTier default_tier() {
  static const ExecTier tier = [] {
    const char* e = std::getenv("HERMES_BPF_TIER");
    if (e != nullptr && e[0] != '\0' && e[1] == '\0') {
      if (e[0] == '0') return ExecTier::Interp;
      if (e[0] == '1') return ExecTier::Threaded;
      if (e[0] == '2') return ExecTier::Elide;
      if (e[0] == '3') return ExecTier::Jit;
    }
    return ExecTier::Elide;
  }();
  return tier;
}

namespace {

constexpr uint32_t kNoUop = ~0u;

bool is_jump_op(Op op) {
  return op == Op::Ja ||
         (op >= Op::JeqReg && op <= Op::JsetImm);
}

// 0 when `op` has no unchecked twin.
uint16_t unchecked_code(Op op) {
  switch (op) {
    case Op::LdxB: return ULdxBNC;
    case Op::LdxH: return ULdxHNC;
    case Op::LdxW: return ULdxWNC;
    case Op::LdxDW: return ULdxDWNC;
    case Op::StxB: return UStxBNC;
    case Op::StxH: return UStxHNC;
    case Op::StxW: return UStxWNC;
    case Op::StxDW: return UStxDWNC;
    case Op::StB: return UStBNC;
    case Op::StH: return UStHNC;
    case Op::StW: return UStWNC;
    case Op::StDW: return UStDWNC;
    default: return 0;
  }
}

bool alu_r(const Insn& i, Op op, Reg dst, Reg src) {
  return i.op == op && i.dst == dst && i.src == src;
}
bool alu_i(const Insn& i, Op op, Reg dst, int64_t imm) {
  return i.op == op && i.dst == dst && i.imm == imm;
}

// The 19-instruction Hamming-weight reduction from emit_popcount
// (core/dispatch_prog.cc). Given regs d/s/c (all distinct) and s = v on
// entry, the sequence ends with d = popcount(v), s = b >> 4 where
// b = (a & 0x33..) + ((a >> 2) & 0x33..) and a = v - ((v >> 1) & 0x55..),
// and c = 0x0101010101010101 — the fused micro-op reproduces all three.
bool match_popcount(const Program& prog, size_t pc, MicroOp* out) {
  if (pc + 19 > prog.size()) return false;
  const Insn* w = prog.data() + pc;
  if (w[0].op != Op::MovReg) return false;
  const Reg d = w[0].dst, s = w[0].src, c = w[2].dst;
  if (d == s || d == c || s == c) return false;
  const bool ok =
      alu_i(w[1], Op::RshImm, d, 1) &&
      alu_i(w[2], Op::LdImm64, c, 0x5555555555555555ll) &&
      alu_r(w[3], Op::AndReg, d, c) &&
      alu_r(w[4], Op::SubReg, s, d) &&
      alu_r(w[5], Op::MovReg, d, s) &&
      alu_i(w[6], Op::RshImm, d, 2) &&
      alu_i(w[7], Op::LdImm64, c, 0x3333333333333333ll) &&
      alu_r(w[8], Op::AndReg, d, c) &&
      alu_r(w[9], Op::AndReg, s, c) &&
      alu_r(w[10], Op::AddReg, d, s) &&
      alu_r(w[11], Op::MovReg, s, d) &&
      alu_i(w[12], Op::RshImm, s, 4) &&
      alu_r(w[13], Op::AddReg, d, s) &&
      alu_i(w[14], Op::LdImm64, c, 0x0f0f0f0f0f0f0f0fll) &&
      alu_r(w[15], Op::AndReg, d, c) &&
      alu_i(w[16], Op::LdImm64, c, 0x0101010101010101ll) &&
      alu_r(w[17], Op::MulReg, d, c) &&
      alu_i(w[18], Op::RshImm, d, 56);
  if (!ok) return false;
  out->code = UPopcount;
  out->dst = d;
  out->src = s;
  out->aux = c;
  return true;
}

// ctz prologue at "rank_done": mov c,v; neg c; and c,v; sub c,1 leaves
// c = (v & -v) - 1 with v untouched.
bool match_isolate_low(const Program& prog, size_t pc, MicroOp* out) {
  if (pc + 4 > prog.size()) return false;
  const Insn* w = prog.data() + pc;
  if (w[0].op != Op::MovReg) return false;
  const Reg c = w[0].dst, v = w[0].src;
  if (c == v) return false;
  if (!(w[1].op == Op::Neg && w[1].dst == c)) return false;
  if (!alu_r(w[2], Op::AndReg, c, v)) return false;
  if (!alu_i(w[3], Op::SubImm, c, 1)) return false;
  out->code = UIsolateLow;
  out->dst = c;
  out->src = v;
  return true;
}

// Rank-select body: mov t,v; sub t,1; and v,t clears the lowest set bit
// of v and leaves t = v_old - 1.
bool match_blsr(const Program& prog, size_t pc, MicroOp* out) {
  if (pc + 3 > prog.size()) return false;
  const Insn* w = prog.data() + pc;
  if (w[0].op != Op::MovReg) return false;
  const Reg t = w[0].dst, v = w[0].src;
  if (t == v) return false;
  if (!alu_i(w[1], Op::SubImm, t, 1)) return false;
  if (!alu_r(w[2], Op::AndReg, v, t)) return false;
  out->code = UBlsr;
  out->dst = v;
  out->src = t;
  return true;
}

int64_t ptr_bits(const void* p) {
  return static_cast<int64_t>(reinterpret_cast<uintptr_t>(p));
}

}  // namespace

std::unique_ptr<ExecutionPlan> compile_plan(
    const Program& prog, std::span<Map* const> maps,
    const analysis::AnalysisResult* facts, ExecTier tier) {
  if (tier == ExecTier::Interp) return nullptr;
  HERMES_CHECK(!prog.empty());

  auto plan = std::make_unique<ExecutionPlan>();
  plan->tier_ = tier;
  plan->stats_.n_insns = static_cast<uint32_t>(prog.size());
  for (Map* m : maps) {
    if (ArrayMap* am = as_array_map(m)) {
      plan->map_regions_.push_back({am->storage_base(), am->storage_bytes()});
    }
  }

  // Jump-target set: a fused segment may start at a target but must not
  // contain one, or the pc->uop mapping for the incoming edge would land
  // mid-superinstruction.
  std::vector<uint8_t> is_target(prog.size(), 0);
  for (size_t pc = 0; pc < prog.size(); ++pc) {
    if (is_jump_op(prog[pc].op)) {
      const int64_t t = static_cast<int64_t>(pc) + 1 + prog[pc].off;
      HERMES_CHECK_MSG(t >= 0 && t < static_cast<int64_t>(prog.size()),
                       "bpf plan: jump target out of range");
      is_target[static_cast<size_t>(t)] = 1;
    }
  }

  // Per-pc facts from the verifier's abstract interpretation. Unvisited
  // pcs (range-dead) have no entry and keep their runtime checks.
  std::vector<uint8_t> mem_proven(prog.size(), 0);
  std::vector<int32_t> call_slot(prog.size(), -2);  // -2 = call not visited
  if (facts != nullptr) {
    for (const auto& m : facts->mem_accesses) {
      if (m.pc < prog.size() && m.proven) mem_proven[m.pc] = 1;
    }
    for (const auto& h : facts->helper_calls) {
      if (h.pc < prog.size()) call_slot[h.pc] = h.map_slot;
    }
  }
  // Tier 3 compiles the tier-2 (elided) micro-op stream to native code;
  // elision licensing is identical.
  const bool elide =
      (tier == ExecTier::Elide || tier == ExecTier::Jit) && facts != nullptr;

  std::vector<uint32_t> uop_of_pc(prog.size(), kNoUop);
  // Micro-op -> source pc, for the translation validator's elision-
  // coverage check (an unchecked access must trace to a proven fact at
  // its source pc). Local: the hot-path MicroOp layout stays untouched.
  std::vector<uint32_t> src_pc;
  struct Fixup {
    size_t uop;
    size_t target_pc;
  };
  std::vector<Fixup> fixups;

  size_t pc = 0;
  while (pc < prog.size()) {
    const auto segment_clear = [&](size_t len) {
      for (size_t k = 1; k < len; ++k) {
        if (is_target[pc + k] != 0) return false;
      }
      return true;
    };

    MicroOp u{};
    size_t len = 1;
    bool needs_fixup = false;
    size_t target_pc = 0;

    if (match_popcount(prog, pc, &u) && segment_clear(19)) {
      len = 19;
      ++plan->stats_.fused_popcount;
    } else if (match_isolate_low(prog, pc, &u) && segment_clear(4)) {
      len = 4;
      ++plan->stats_.fused_isolate;
    } else if (match_blsr(prog, pc, &u) && segment_clear(3)) {
      len = 3;
      ++plan->stats_.fused_blsr;
    } else {
      const Insn& in = prog[pc];
      u = MicroOp{};
      u.code = static_cast<uint16_t>(in.op);
      u.dst = in.dst;
      u.src = in.src;
      u.off = in.off;
      u.imm = in.imm;

      if (in.op == Op::LdMapFd) {
        const auto slot = static_cast<size_t>(in.imm);
        HERMES_CHECK(slot < maps.size());
        u.code = ULdMapPtr;
        u.imm = ptr_bits(maps[slot]);
      } else if (uint16_t nc = unchecked_code(in.op); nc != 0) {
        if (elide && mem_proven[pc] != 0) {
          u.code = nc;
          ++plan->stats_.elided_sites;
        } else {
          ++plan->stats_.checked_sites;
        }
      } else if (is_jump_op(in.op)) {
        needs_fixup = true;
        target_pc = static_cast<size_t>(static_cast<int64_t>(pc) + 1 + in.off);
      } else if (in.op == Op::Call) {
        const auto id = static_cast<HelperId>(in.imm);
        const int32_t slot = call_slot[pc];
        switch (id) {
          case HelperId::MapLookupElem: {
            ArrayMap* am =
                slot >= 0 && static_cast<size_t>(slot) < maps.size()
                    ? as_array_map(maps[slot])
                    : nullptr;
            if (elide && am != nullptr) {
              u.code = UCallLookupNC;
              u.imm = ptr_bits(am);
              ++plan->stats_.elided_sites;
            } else {
              u.code = UCallLookup;
              ++plan->stats_.checked_sites;
            }
            break;
          }
          case HelperId::MapUpdateElem: {
            ArrayMap* am =
                slot >= 0 && static_cast<size_t>(slot) < maps.size()
                    ? as_array_map(maps[slot])
                    : nullptr;
            if (elide && am != nullptr) {
              u.code = UCallUpdateNC;
              u.imm = ptr_bits(am);
              ++plan->stats_.elided_sites;
            } else {
              u.code = UCallUpdate;
              ++plan->stats_.checked_sites;
            }
            break;
          }
          case HelperId::SkSelectReuseport: {
            ReuseportSockArray* sa =
                slot >= 0 && static_cast<size_t>(slot) < maps.size()
                    ? as_sock_array(maps[slot])
                    : nullptr;
            if (elide && sa != nullptr) {
              u.code = UCallSelectNC;
              u.imm = ptr_bits(sa);
              ++plan->stats_.elided_sites;
            } else {
              u.code = UCallSelect;
              ++plan->stats_.checked_sites;
            }
            break;
          }
          case HelperId::KtimeGetNs:
            u.code = UCallTime;
            break;
          case HelperId::GetPrandomU32:
            u.code = UCallRand;
            break;
          default:
            // Unknown id at a range-dead pc: keep the generic Call code,
            // whose handler aborts — it can never execute in a verified
            // program.
            break;
        }
      }
    }

    uop_of_pc[pc] = static_cast<uint32_t>(plan->ops_.size());
    plan->ops_.push_back(u);
    src_pc.push_back(static_cast<uint32_t>(pc));
    if (needs_fixup) {
      fixups.push_back({plan->ops_.size() - 1, target_pc});
    }
    pc += len;
  }

  for (const Fixup& f : fixups) {
    const uint32_t t = uop_of_pc[f.target_pc];
    HERMES_CHECK_MSG(t != kNoUop, "bpf plan: jump into fused segment");
    plan->ops_[f.uop].target = t;
  }

  plan->stats_.n_uops = static_cast<uint32_t>(plan->ops_.size());

  if (tier == ExecTier::Jit) {
    // Native codegen over the finished micro-op stream. Refusal (non-x86
    // host, W^X mapping failure, untranslatable op) is not an error: the
    // same micro-ops run under the tier-2 dispatch loop, and the reason
    // is surfaced through Vm::jit_fallback_reason / bpf.jit_fallbacks.
    std::string reason;
    JitFallbackKind kind = JitFallbackKind::Other;
    plan->jit_ = jit::compile(plan->ops_, &reason, &kind);
    if (plan->jit_ != nullptr && jit::validate::enabled()) {
      // Translation validation: prove the emitted buffer matches the
      // micro-op semantics before accepting tier 3. A rejection is loud
      // (decoded-window diagnostic in the reason) but non-fatal — the
      // tier-2 dispatch loop runs the identical micro-ops.
      jit::validate::Request req;
      req.code = plan->jit_.get();
      req.ops = plan->ops_;
      req.src_pc = src_pc;
      req.maps = maps;
      req.facts = facts;
      jit::validate::Result vres = jit::validate::validate(req);
      if (!vres.ok) {
        plan->jit_.reset();
        reason = "validation rejected: " + vres.error;
        kind = JitFallbackKind::ValidateReject;
      }
    }
    if (plan->jit_ == nullptr) {
      plan->tier_ = ExecTier::Elide;
      plan->jit_fallback_reason_ = reason;
      plan->jit_fallback_kind_ = kind;
    }
  }
  return plan;
}

}  // namespace hermes::bpf
