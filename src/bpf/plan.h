// Tiered execution engine for the in-repo eBPF dialect: the ExecutionPlan
// is a pre-decoded, direct-threaded form of a verified program, compiled
// once at Vm::load time and reused for every dispatch.
//
// Tier 0 (bpf/vm.cc) stays the reference switch interpreter. Tier 1
// compiles the program into a flat micro-op array: jump offsets resolved
// to absolute indices, LdMapFd slots resolved to map pointers, helper
// calls specialized per helper id with their map argument pre-downcast,
// and the popcount / rank-select idioms that core/dispatch_prog.cc emits
// fused into superinstructions (19-insn Hamming weight -> 1 micro-op,
// 3-insn clear-lowest-bit -> 1, 4-insn isolate-lowest-bit -> 1). Dispatch
// uses computed goto where the compiler supports it. Tier 2 additionally
// elides runtime bounds checks at accesses the abstract interpreter
// (bpf/analysis/) proved in-bounds for every execution — which, for a
// verified program, is every access it visited; accesses the analysis
// range-pruned as dead keep the checked micro-op.
//
// Semantics are bit-identical to Tier 0 by construction and by test: a
// fused micro-op writes the exact final register values of the sequence it
// replaces (including clobbered scratch registers) and charges the
// sequence's full instruction count, so RunResult::insns_executed — the
// Table 5 overhead metric — is tier-invariant. tests/torture_bpf_diff_test
// runs all tiers over >= 10k fuzzed programs and demands byte-identical
// results.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "bpf/insn.h"
#include "bpf/maps.h"

namespace hermes::bpf {

namespace analysis {
struct AnalysisResult;
}  // namespace analysis

namespace jit {
class JitCode;
}  // namespace jit

enum class ExecTier : uint8_t {
  Interp = 0,    // reference switch interpreter (no plan)
  Threaded = 1,  // pre-decoded micro-ops, fusion, checked memory accesses
  Elide = 2,     // Threaded + verifier-guided bounds-check elision
  Jit = 3,       // Elide micro-ops compiled to native x86-64 (bpf/jit/);
                 // falls back to Elide when the host cannot JIT
};

const char* to_string(ExecTier t);

// Why a tier-3 (Jit) load request landed on Elide instead. Split out so
// observability can count fallback causes separately (the
// bpf.jit_fallbacks_* counters) rather than folding an alloc failure, an
// operator switch, and a translation-validation rejection into one number.
enum class JitFallbackKind : uint8_t {
  None = 0,        // no fallback: a tier-3 request got tier 3
  Disabled,        // HERMES_BPF_JIT=off|0, or the host is not x86-64
  AllocFailure,    // the W^X buffer could not be mapped or protected
  ValidateReject,  // translation validation rejected the emitted code
  Other,           // codegen refusal (a micro-op it cannot translate)
};
inline constexpr size_t kJitFallbackKindCount = 5;

const char* to_string(JitFallbackKind k);

// Process-wide default, read once from HERMES_BPF_TIER (0|1|2|3). Unset or
// unparsable means Elide: verified programs carry their own safety proof,
// so the fastest always-available tier is the production configuration.
// Tier 3 is opt-in (it is x86-64-only and mmap-dependent; requesting it
// where unavailable runs tier 2 and bumps the bpf.jit_fallbacks counter).
ExecTier default_tier();

// A contiguous byte region the interpreter may touch (runtime checking).
struct MemRegion {
  uint8_t* base = nullptr;
  size_t size = 0;
};

// One pre-decoded instruction. `code` is the Op value for micro-ops that
// keep 1:1 instruction semantics, or one of the extended codes below.
struct MicroOp {
  uint16_t code = 0;
  uint8_t dst = 0;
  uint8_t src = 0;
  uint8_t aux = 0;      // scratch register of a fused popcount
  int32_t off = 0;      // memory displacement
  uint32_t target = 0;  // taken-jump successor (absolute micro-op index)
  int64_t imm = 0;      // immediate, or pre-resolved pointer bits
};

inline constexpr uint16_t kOpCount = static_cast<uint16_t>(Op::Exit) + 1;

// Extended micro-op codes (contiguous after the Op range so the threaded
// dispatch table stays dense).
enum UExt : uint16_t {
  ULdMapPtr = kOpCount,  // dst = imm (map pointer resolved at compile time)
  UPopcount,             // fused emit_popcount: dst, src, aux as documented
  UBlsr,                 // fused v &= v-1 triplet: dst &= dst-1, src = old-1
  UIsolateLow,           // fused (v & -v) - 1 prologue into dst from src
  // Unchecked loads/stores (Tier 2, analysis-proven accesses only).
  ULdxBNC, ULdxHNC, ULdxWNC, ULdxDWNC,
  UStxBNC, UStxHNC, UStxWNC, UStxDWNC,
  UStBNC, UStHNC, UStWNC, UStDWNC,
  // Helper calls, specialized per id; imm carries the pre-downcast map
  // pointer when the analysis pinned the map slot (0 = resolve at runtime).
  // The NC variants skip the key/value buffer bounds checks (Tier 2; the
  // helper signature check proved those buffers in-bounds).
  UCallLookup, UCallLookupNC,
  UCallUpdate, UCallUpdateNC,
  UCallSelect, UCallSelectNC,
  UCallTime, UCallRand,
  kUopCodeCount,  // dispatch-table size
};

class ExecutionPlan {
 public:
  struct Stats {
    uint32_t n_insns = 0;        // source program length
    uint32_t n_uops = 0;         // micro-ops after fusion
    uint32_t fused_popcount = 0; // segments fused per rule
    uint32_t fused_blsr = 0;
    uint32_t fused_isolate = 0;
    uint32_t elided_sites = 0;   // static count of unchecked micro-ops
    uint32_t checked_sites = 0;  // memory/helper sites that kept the check
  };

  struct ExecResult {
    uint64_t ret = 0;
    uint64_t insns_executed = 0;  // source-instruction count (tier-invariant)
    uint32_t fused_hits = 0;      // fused micro-ops executed this run
    uint32_t elided_checks = 0;   // unchecked accesses executed this run
  };

  ~ExecutionPlan();  // out-of-line: jit_ holds an incomplete type here

  ExecTier tier() const { return tier_; }
  const Stats& stats() const { return stats_; }
  std::span<const MicroOp> ops() const { return ops_; }

  // Non-null iff tier() == Jit: execute() runs the native code instead of
  // the threaded dispatch loop.
  const jit::JitCode* jit_code() const { return jit_.get(); }
  // Why a Jit request compiled down to Elide ("" when it didn't).
  const std::string& jit_fallback_reason() const {
    return jit_fallback_reason_;
  }
  JitFallbackKind jit_fallback_kind() const { return jit_fallback_kind_; }

  // Run the plan. Register/stack/helper semantics mirror Vm::run exactly;
  // violations abort (the program was verified — a trip here is a repo
  // bug, same contract as Tier 0's runtime checks).
  ExecResult execute(ReuseportCtx& ctx,
                     const std::function<uint64_t()>& time_fn,
                     const std::function<uint32_t()>& rand_fn) const;

 private:
  friend std::unique_ptr<ExecutionPlan> compile_plan(
      const Program& prog, std::span<Map* const> maps,
      const analysis::AnalysisResult* facts, ExecTier tier);

  ExecTier tier_ = ExecTier::Threaded;
  std::vector<MicroOp> ops_;
  std::vector<MemRegion> map_regions_;  // array-map stores, hoisted at load
  Stats stats_;
  std::unique_ptr<jit::JitCode> jit_;  // tier 3 only
  std::string jit_fallback_reason_;
  JitFallbackKind jit_fallback_kind_ = JitFallbackKind::None;
};

// Compile a verified program into a plan. `facts` (the verifier's
// AnalysisResult) licenses Tier-2 check elision and helper-map
// pre-resolution; pass nullptr to compile without facts (all accesses stay
// checked, helper maps resolve at runtime). Tier Interp returns nullptr —
// the reference interpreter needs no plan.
std::unique_ptr<ExecutionPlan> compile_plan(
    const Program& prog, std::span<Map* const> maps,
    const analysis::AnalysisResult* facts, ExecTier tier);

}  // namespace hermes::bpf
