// Direct-threaded micro-op interpreter for ExecutionPlan (see plan.h).
//
// Dispatch is computed goto on GCC/Clang (one indirect branch per
// micro-op, no bounds re-check, no per-op decode) with a portable switch
// fallback. Handler bodies are shared between both modes via the
// OPC/OPX/NEXT/JUMP macros. Semantics per handler mirror the reference
// interpreter in vm.cc instruction for instruction; fused handlers
// reproduce the exact final register state and instruction count of the
// sequences they replace.
#include <cstring>

#include "bpf/jit/jit.h"
#include "bpf/plan.h"
#include "util/check.h"

namespace hermes::bpf {

namespace {

bool in_region(const MemRegion& r, const uint8_t* p, size_t n) {
  return p >= r.base && p + n <= r.base + r.size;
}

}  // namespace

// Keep the micro-op order here in sync with Op (insn.h); the dispatch
// table below indexes by raw code.
static_assert(static_cast<uint16_t>(Op::Neg) == 22);
static_assert(static_cast<uint16_t>(Op::LdImm64) == 50);
static_assert(static_cast<uint16_t>(Op::LdxB) == 52);
static_assert(static_cast<uint16_t>(Op::Ja) == 64);
static_assert(static_cast<uint16_t>(Op::Exit) == 88);
static_assert(kOpCount == 89);
static_assert(kUopCodeCount == kOpCount + 24);

#if defined(__GNUC__) || defined(__clang__)
#define HERMES_THREADED_DISPATCH 1
#else
#define HERMES_THREADED_DISPATCH 0
#endif

ExecutionPlan::ExecResult ExecutionPlan::execute(
    ReuseportCtx& ctx, const std::function<uint64_t()>& time_fn,
    const std::function<uint32_t()>& rand_fn) const {
  if (jit_ != nullptr) {
    return jit_->run(ctx, map_regions_, time_fn, rand_fn);
  }
  alignas(8) uint8_t stack[kStackSize] = {};
  uint64_t regs[kNumRegs] = {};
  regs[1] = reinterpret_cast<uint64_t>(&ctx);
  regs[10] = reinterpret_cast<uint64_t>(stack + kStackSize);

  const MemRegion stack_region{stack, kStackSize};
  const MemRegion ctx_region{reinterpret_cast<uint8_t*>(&ctx),
                             kCtxReadableBytes};
  auto check_access = [&](uint64_t addr, size_t n) -> uint8_t* {
    auto* p = reinterpret_cast<uint8_t*>(addr);
    if (in_region(stack_region, p, n)) return p;
    if (in_region(ctx_region, p, n)) return p;
    for (const auto& r : map_regions_) {
      if (in_region(r, p, n)) return p;
    }
    HERMES_CHECK_MSG(false, "bpf vm: runtime memory access violation");
  };

  uint64_t insns = 0;
  uint32_t fused = 0;
  uint32_t elided = 0;
  const MicroOp* const base = ops_.data();
  const MicroOp* ip = base;

// Handler-body plumbing, shared by both dispatch modes. D/S are the dst/src
// registers of the current micro-op; UIMM/SIMM its immediate as the
// unsigned/signed flavor vm.cc uses.
#define D regs[ip->dst]
#define S regs[ip->src]
#define UIMM static_cast<uint64_t>(ip->imm)
#define SIMM (ip->imm)
#define CHECK_BUDGET()                                  \
  HERMES_CHECK_MSG(insns < kMaxInsnsExecuted,           \
                   "bpf vm: instruction budget exceeded")

#if HERMES_THREADED_DISPATCH
#define OPC(name) lbl_##name:
#define OPX(name) lbl_##name:
#define NEXT                 \
  do {                       \
    ++ip;                    \
    goto *kLabels[ip->code]; \
  } while (0)
#define JUMP(t)              \
  do {                       \
    CHECK_BUDGET();          \
    ip = base + (t);         \
    goto *kLabels[ip->code]; \
  } while (0)

#define LBL(name) &&lbl_##name,
  // Must list every code in numeric order: first the Op range, then UExt.
  static const void* const kLabels[] = {
      LBL(AddReg) LBL(AddImm) LBL(SubReg) LBL(SubImm)
      LBL(MulReg) LBL(MulImm) LBL(DivReg) LBL(DivImm)
      LBL(ModReg) LBL(ModImm) LBL(AndReg) LBL(AndImm)
      LBL(OrReg) LBL(OrImm) LBL(XorReg) LBL(XorImm)
      LBL(LshReg) LBL(LshImm) LBL(RshReg) LBL(RshImm)
      LBL(ArshReg) LBL(ArshImm) LBL(Neg)
      LBL(MovReg) LBL(MovImm)
      LBL(Add32Reg) LBL(Add32Imm) LBL(Sub32Reg) LBL(Sub32Imm)
      LBL(Mul32Reg) LBL(Mul32Imm) LBL(Div32Reg) LBL(Div32Imm)
      LBL(Mod32Reg) LBL(Mod32Imm) LBL(And32Reg) LBL(And32Imm)
      LBL(Or32Reg) LBL(Or32Imm) LBL(Xor32Reg) LBL(Xor32Imm)
      LBL(Lsh32Reg) LBL(Lsh32Imm) LBL(Rsh32Reg) LBL(Rsh32Imm)
      LBL(Arsh32Reg) LBL(Arsh32Imm) LBL(Neg32)
      LBL(Mov32Reg) LBL(Mov32Imm)
      LBL(LdImm64) LBL(LdMapFd)
      LBL(LdxB) LBL(LdxH) LBL(LdxW) LBL(LdxDW)
      LBL(StxB) LBL(StxH) LBL(StxW) LBL(StxDW)
      LBL(StB) LBL(StH) LBL(StW) LBL(StDW)
      LBL(Ja)
      LBL(JeqReg) LBL(JeqImm) LBL(JneReg) LBL(JneImm)
      LBL(JgtReg) LBL(JgtImm) LBL(JgeReg) LBL(JgeImm)
      LBL(JltReg) LBL(JltImm) LBL(JleReg) LBL(JleImm)
      LBL(JsgtReg) LBL(JsgtImm) LBL(JsgeReg) LBL(JsgeImm)
      LBL(JsltReg) LBL(JsltImm) LBL(JsleReg) LBL(JsleImm)
      LBL(JsetReg) LBL(JsetImm)
      LBL(Call) LBL(Exit)
      LBL(ULdMapPtr) LBL(UPopcount) LBL(UBlsr) LBL(UIsolateLow)
      LBL(ULdxBNC) LBL(ULdxHNC) LBL(ULdxWNC) LBL(ULdxDWNC)
      LBL(UStxBNC) LBL(UStxHNC) LBL(UStxWNC) LBL(UStxDWNC)
      LBL(UStBNC) LBL(UStHNC) LBL(UStWNC) LBL(UStDWNC)
      LBL(UCallLookup) LBL(UCallLookupNC)
      LBL(UCallUpdate) LBL(UCallUpdateNC)
      LBL(UCallSelect) LBL(UCallSelectNC)
      LBL(UCallTime) LBL(UCallRand)
  };
#undef LBL
  static_assert(sizeof(kLabels) / sizeof(kLabels[0]) == kUopCodeCount);

  goto *kLabels[ip->code];

#else  // switch fallback

#define OPC(name) case static_cast<uint16_t>(Op::name):
#define OPX(name) case static_cast<uint16_t>(UExt::name):
#define NEXT          \
  do {                \
    ++ip;             \
    goto dispatch;    \
  } while (0)
#define JUMP(t)       \
  do {                \
    CHECK_BUDGET();   \
    ip = base + (t);  \
    goto dispatch;    \
  } while (0)

dispatch:
  switch (ip->code) {
#endif

#define ALU(name, stmt) \
  OPC(name) {           \
    stmt;               \
    ++insns;            \
    NEXT;               \
  }

  ALU(AddReg, D += S)
  ALU(AddImm, D += UIMM)
  ALU(SubReg, D -= S)
  ALU(SubImm, D -= UIMM)
  ALU(MulReg, D *= S)
  ALU(MulImm, D *= UIMM)
  ALU(DivReg, D = S ? D / S : 0)
  ALU(DivImm, D = UIMM ? D / UIMM : 0)
  ALU(ModReg, D = S ? D % S : D)
  ALU(ModImm, D = UIMM ? D % UIMM : D)
  ALU(AndReg, D &= S)
  ALU(AndImm, D &= UIMM)
  ALU(OrReg, D |= S)
  ALU(OrImm, D |= UIMM)
  ALU(XorReg, D ^= S)
  ALU(XorImm, D ^= UIMM)
  ALU(LshReg, D <<= (S & 63))
  ALU(LshImm, D <<= (UIMM & 63))
  ALU(RshReg, D >>= (S & 63))
  ALU(RshImm, D >>= (UIMM & 63))
  ALU(ArshReg,
      D = static_cast<uint64_t>(static_cast<int64_t>(D) >> (S & 63)))
  ALU(ArshImm,
      D = static_cast<uint64_t>(static_cast<int64_t>(D) >> (UIMM & 63)))
  ALU(Neg, D = 0 - D)
  ALU(MovReg, D = S)
  ALU(MovImm, D = UIMM)
  ALU(Add32Reg, D = static_cast<uint32_t>(D + S))
  ALU(Add32Imm, D = static_cast<uint32_t>(D + UIMM))
  ALU(Sub32Reg, D = static_cast<uint32_t>(D - S))
  ALU(Sub32Imm, D = static_cast<uint32_t>(D - UIMM))
  ALU(Mul32Reg, D = static_cast<uint32_t>(D * S))
  ALU(Mul32Imm, D = static_cast<uint32_t>(D * UIMM))
  ALU(Div32Reg, D = static_cast<uint32_t>(S)
                        ? static_cast<uint32_t>(D) / static_cast<uint32_t>(S)
                        : 0)
  ALU(Div32Imm,
      D = static_cast<uint32_t>(UIMM)
              ? static_cast<uint32_t>(D) / static_cast<uint32_t>(UIMM)
              : 0)
  ALU(Mod32Reg, D = static_cast<uint32_t>(S)
                        ? static_cast<uint32_t>(D) % static_cast<uint32_t>(S)
                        : static_cast<uint32_t>(D))
  ALU(Mod32Imm,
      D = static_cast<uint32_t>(UIMM)
              ? static_cast<uint32_t>(D) % static_cast<uint32_t>(UIMM)
              : static_cast<uint32_t>(D))
  ALU(And32Reg, D = static_cast<uint32_t>(D & S))
  ALU(And32Imm, D = static_cast<uint32_t>(D & UIMM))
  ALU(Or32Reg, D = static_cast<uint32_t>(D | S))
  ALU(Or32Imm, D = static_cast<uint32_t>(D | UIMM))
  ALU(Xor32Reg, D = static_cast<uint32_t>(D ^ S))
  ALU(Xor32Imm, D = static_cast<uint32_t>(D ^ UIMM))
  ALU(Lsh32Reg,
      D = static_cast<uint32_t>(static_cast<uint32_t>(D) << (S & 31)))
  ALU(Lsh32Imm,
      D = static_cast<uint32_t>(static_cast<uint32_t>(D) << (UIMM & 31)))
  ALU(Rsh32Reg, D = static_cast<uint32_t>(D) >> (S & 31))
  ALU(Rsh32Imm, D = static_cast<uint32_t>(D) >> (UIMM & 31))
  ALU(Arsh32Reg,
      D = static_cast<uint32_t>(
          static_cast<int32_t>(static_cast<uint32_t>(D)) >> (S & 31)))
  ALU(Arsh32Imm,
      D = static_cast<uint32_t>(
          static_cast<int32_t>(static_cast<uint32_t>(D)) >> (UIMM & 31)))
  ALU(Neg32, D = static_cast<uint32_t>(0 - static_cast<uint32_t>(D)))
  ALU(Mov32Reg, D = static_cast<uint32_t>(S))
  ALU(Mov32Imm, D = static_cast<uint32_t>(ip->imm))
  ALU(LdImm64, D = UIMM)

  OPC(LdMapFd) {
    // LdMapFd always compiles to ULdMapPtr; reaching the raw code is a
    // compiler bug.
    HERMES_CHECK_MSG(false, "bpf plan: unresolved LdMapFd micro-op");
  }

  OPC(LdxB) {
    D = *check_access(S + ip->off, 1);
    ++insns;
    NEXT;
  }
  OPC(LdxH) {
    uint16_t v;
    std::memcpy(&v, check_access(S + ip->off, 2), 2);
    D = v;
    ++insns;
    NEXT;
  }
  OPC(LdxW) {
    uint32_t v;
    std::memcpy(&v, check_access(S + ip->off, 4), 4);
    D = v;
    ++insns;
    NEXT;
  }
  OPC(LdxDW) {
    uint64_t v;
    std::memcpy(&v, check_access(S + ip->off, 8), 8);
    D = v;
    ++insns;
    NEXT;
  }
  OPC(StxB) {
    const auto v = static_cast<uint8_t>(S);
    std::memcpy(check_access(D + ip->off, 1), &v, 1);
    ++insns;
    NEXT;
  }
  OPC(StxH) {
    const auto v = static_cast<uint16_t>(S);
    std::memcpy(check_access(D + ip->off, 2), &v, 2);
    ++insns;
    NEXT;
  }
  OPC(StxW) {
    const auto v = static_cast<uint32_t>(S);
    std::memcpy(check_access(D + ip->off, 4), &v, 4);
    ++insns;
    NEXT;
  }
  OPC(StxDW) {
    std::memcpy(check_access(D + ip->off, 8), &S, 8);
    ++insns;
    NEXT;
  }
  OPC(StB) {
    const auto v = static_cast<uint8_t>(ip->imm);
    std::memcpy(check_access(D + ip->off, 1), &v, 1);
    ++insns;
    NEXT;
  }
  OPC(StH) {
    const auto v = static_cast<uint16_t>(ip->imm);
    std::memcpy(check_access(D + ip->off, 2), &v, 2);
    ++insns;
    NEXT;
  }
  OPC(StW) {
    const auto v = static_cast<uint32_t>(ip->imm);
    std::memcpy(check_access(D + ip->off, 4), &v, 4);
    ++insns;
    NEXT;
  }
  OPC(StDW) {
    const auto v = static_cast<uint64_t>(ip->imm);
    std::memcpy(check_access(D + ip->off, 8), &v, 8);
    ++insns;
    NEXT;
  }

  OPC(Ja) {
    ++insns;
    JUMP(ip->target);
  }

#define COND_JUMP(name, cond) \
  OPC(name) {                 \
    ++insns;                  \
    if (cond) {               \
      JUMP(ip->target);       \
    }                         \
    NEXT;                     \
  }

  COND_JUMP(JeqReg, D == S)
  COND_JUMP(JeqImm, D == UIMM)
  COND_JUMP(JneReg, D != S)
  COND_JUMP(JneImm, D != UIMM)
  COND_JUMP(JgtReg, D > S)
  COND_JUMP(JgtImm, D > UIMM)
  COND_JUMP(JgeReg, D >= S)
  COND_JUMP(JgeImm, D >= UIMM)
  COND_JUMP(JltReg, D < S)
  COND_JUMP(JltImm, D < UIMM)
  COND_JUMP(JleReg, D <= S)
  COND_JUMP(JleImm, D <= UIMM)
  COND_JUMP(JsgtReg, static_cast<int64_t>(D) > static_cast<int64_t>(S))
  COND_JUMP(JsgtImm, static_cast<int64_t>(D) > SIMM)
  COND_JUMP(JsgeReg, static_cast<int64_t>(D) >= static_cast<int64_t>(S))
  COND_JUMP(JsgeImm, static_cast<int64_t>(D) >= SIMM)
  COND_JUMP(JsltReg, static_cast<int64_t>(D) < static_cast<int64_t>(S))
  COND_JUMP(JsltImm, static_cast<int64_t>(D) < SIMM)
  COND_JUMP(JsleReg, static_cast<int64_t>(D) <= static_cast<int64_t>(S))
  COND_JUMP(JsleImm, static_cast<int64_t>(D) <= SIMM)
  COND_JUMP(JsetReg, (D & S) != 0)
  COND_JUMP(JsetImm, (D & UIMM) != 0)

  OPC(Call) {
    // Calls compile to the specialized UCall* codes; a raw Call micro-op
    // is only emitted for an unknown helper id at a range-dead pc.
    HERMES_CHECK_MSG(false, "bpf vm: unknown helper at runtime");
  }

  OPC(Exit) {
    ++insns;
    ExecResult res;
    res.ret = regs[0];
    res.insns_executed = insns;
    res.fused_hits = fused;
    res.elided_checks = elided;
    return res;
  }

  OPX(ULdMapPtr) {
    D = static_cast<uint64_t>(ip->imm);
    ++insns;
    NEXT;
  }

  OPX(UPopcount) {
    // emit_popcount's final register state, computed directly: dst gets
    // popcount(v), src the intermediate b >> 4, aux the last mask.
    const uint64_t v = S;
    const uint64_t a = v - ((v >> 1) & 0x5555555555555555ull);
    const uint64_t b = (a & 0x3333333333333333ull) +
                       ((a >> 2) & 0x3333333333333333ull);
    D = (((b + (b >> 4)) & 0x0f0f0f0f0f0f0f0full) * 0x0101010101010101ull) >>
        56;
    S = b >> 4;
    regs[ip->aux] = 0x0101010101010101ull;
    insns += 19;
    ++fused;
    NEXT;
  }

  OPX(UBlsr) {
    const uint64_t t = D - 1;
    S = t;
    D &= t;
    insns += 3;
    ++fused;
    NEXT;
  }

  OPX(UIsolateLow) {
    const uint64_t v = S;
    D = ((0 - v) & v) - 1;
    insns += 4;
    ++fused;
    NEXT;
  }

#define LDX_NC(name, type)                                        \
  OPX(name) {                                                     \
    type v;                                                       \
    std::memcpy(&v, reinterpret_cast<const uint8_t*>(S + ip->off), \
                sizeof(v));                                       \
    D = v;                                                        \
    ++insns;                                                      \
    ++elided;                                                     \
    NEXT;                                                         \
  }

  LDX_NC(ULdxBNC, uint8_t)
  LDX_NC(ULdxHNC, uint16_t)
  LDX_NC(ULdxWNC, uint32_t)
  LDX_NC(ULdxDWNC, uint64_t)

#define STX_NC(name, type)                                          \
  OPX(name) {                                                       \
    const auto v = static_cast<type>(S);                            \
    std::memcpy(reinterpret_cast<uint8_t*>(D + ip->off), &v,        \
                sizeof(v));                                         \
    ++insns;                                                        \
    ++elided;                                                       \
    NEXT;                                                           \
  }

  STX_NC(UStxBNC, uint8_t)
  STX_NC(UStxHNC, uint16_t)
  STX_NC(UStxWNC, uint32_t)
  STX_NC(UStxDWNC, uint64_t)

#define ST_NC(name, type)                                           \
  OPX(name) {                                                       \
    const auto v = static_cast<type>(ip->imm);                      \
    std::memcpy(reinterpret_cast<uint8_t*>(D + ip->off), &v,        \
                sizeof(v));                                         \
    ++insns;                                                        \
    ++elided;                                                       \
    NEXT;                                                           \
  }

  ST_NC(UStBNC, uint8_t)
  ST_NC(UStHNC, uint16_t)
  ST_NC(UStWNC, uint32_t)
  ST_NC(UStDWNC, uint64_t)

  OPX(UCallLookup) {
    ArrayMap* am = as_array_map(reinterpret_cast<Map*>(regs[1]));
    HERMES_CHECK(am != nullptr);
    uint32_t key;
    std::memcpy(&key, check_access(regs[2], 4), 4);
    regs[0] = reinterpret_cast<uint64_t>(am->lookup(key));
    ++insns;
    NEXT;
  }
  OPX(UCallLookupNC) {
    auto* am = reinterpret_cast<ArrayMap*>(static_cast<uintptr_t>(ip->imm));
    uint32_t key;
    std::memcpy(&key, reinterpret_cast<const uint8_t*>(regs[2]), 4);
    regs[0] = reinterpret_cast<uint64_t>(am->lookup(key));
    ++insns;
    ++elided;
    NEXT;
  }
  OPX(UCallUpdate) {
    ArrayMap* am = as_array_map(reinterpret_cast<Map*>(regs[1]));
    HERMES_CHECK(am != nullptr);
    uint32_t key;
    std::memcpy(&key, check_access(regs[2], 4), 4);
    const uint8_t* val = check_access(regs[3], am->value_size());
    regs[0] = am->update(key, val) ? 0 : static_cast<uint64_t>(-1);
    ++insns;
    NEXT;
  }
  OPX(UCallUpdateNC) {
    auto* am = reinterpret_cast<ArrayMap*>(static_cast<uintptr_t>(ip->imm));
    uint32_t key;
    std::memcpy(&key, reinterpret_cast<const uint8_t*>(regs[2]), 4);
    regs[0] = am->update(key, reinterpret_cast<const uint8_t*>(regs[3]))
                  ? 0
                  : static_cast<uint64_t>(-1);
    ++insns;
    ++elided;
    NEXT;
  }
  OPX(UCallSelect) {
    auto* rc = reinterpret_cast<ReuseportCtx*>(regs[1]);
    ReuseportSockArray* sa = as_sock_array(reinterpret_cast<Map*>(regs[2]));
    HERMES_CHECK(sa != nullptr);
    uint32_t key;
    std::memcpy(&key, check_access(regs[3], 4), 4);
    const uint64_t cookie = sa->get(key);
    if (cookie == kNoSocket) {
      regs[0] = static_cast<uint64_t>(-2);  // -ENOENT
    } else {
      rc->selected_socket = cookie;
      rc->selection_made = true;
      regs[0] = 0;
    }
    ++insns;
    NEXT;
  }
  OPX(UCallSelectNC) {
    auto* rc = reinterpret_cast<ReuseportCtx*>(regs[1]);
    auto* sa =
        reinterpret_cast<ReuseportSockArray*>(static_cast<uintptr_t>(ip->imm));
    uint32_t key;
    std::memcpy(&key, reinterpret_cast<const uint8_t*>(regs[3]), 4);
    const uint64_t cookie = sa->get(key);
    if (cookie == kNoSocket) {
      regs[0] = static_cast<uint64_t>(-2);  // -ENOENT
    } else {
      rc->selected_socket = cookie;
      rc->selection_made = true;
      regs[0] = 0;
    }
    ++insns;
    ++elided;
    NEXT;
  }
  OPX(UCallTime) {
    regs[0] = time_fn ? time_fn() : 0;
    ++insns;
    NEXT;
  }
  OPX(UCallRand) {
    regs[0] = rand_fn ? rand_fn() : 0;
    ++insns;
    NEXT;
  }

#if !HERMES_THREADED_DISPATCH
    default:
      HERMES_CHECK_MSG(false, "bpf plan: bad micro-op code");
  }
#endif

#undef ALU
#undef COND_JUMP
#undef LDX_NC
#undef STX_NC
#undef ST_NC
#undef OPC
#undef OPX
#undef NEXT
#undef JUMP
#undef D
#undef S
#undef UIMM
#undef SIMM
#undef CHECK_BUDGET
}

}  // namespace hermes::bpf
