#include "bpf/ref_interpreter.h"

#include <cstring>

namespace hermes::bpf {

namespace {

// 64-bit ALU evaluator: one table instead of per-opcode inline bodies.
uint64_t eval64(Op op, uint64_t a, uint64_t b) {
  switch (op) {
    case Op::AddReg: case Op::AddImm: return a + b;
    case Op::SubReg: case Op::SubImm: return a - b;
    case Op::MulReg: case Op::MulImm: return a * b;
    case Op::DivReg: case Op::DivImm: return b != 0 ? a / b : 0;
    case Op::ModReg: case Op::ModImm: return b != 0 ? a % b : a;
    case Op::AndReg: case Op::AndImm: return a & b;
    case Op::OrReg:  case Op::OrImm:  return a | b;
    case Op::XorReg: case Op::XorImm: return a ^ b;
    case Op::LshReg: case Op::LshImm: return a << (b & 63);
    case Op::RshReg: case Op::RshImm: return a >> (b & 63);
    case Op::ArshReg: case Op::ArshImm:
      return static_cast<uint64_t>(static_cast<int64_t>(a) >> (b & 63));
    case Op::MovReg: case Op::MovImm: return b;
    default: return 0;  // unreachable; callers dispatch only ALU64 ops
  }
}

// 32-bit ALU evaluator; result is zero-extended by the caller.
uint32_t eval32(Op op, uint32_t a, uint32_t b) {
  switch (op) {
    case Op::Add32Reg: case Op::Add32Imm: return a + b;
    case Op::Sub32Reg: case Op::Sub32Imm: return a - b;
    case Op::Mul32Reg: case Op::Mul32Imm: return a * b;
    case Op::Div32Reg: case Op::Div32Imm: return b != 0 ? a / b : 0;
    case Op::Mod32Reg: case Op::Mod32Imm: return b != 0 ? a % b : a;
    case Op::And32Reg: case Op::And32Imm: return a & b;
    case Op::Or32Reg:  case Op::Or32Imm:  return a | b;
    case Op::Xor32Reg: case Op::Xor32Imm: return a ^ b;
    case Op::Lsh32Reg: case Op::Lsh32Imm: return a << (b & 31);
    case Op::Rsh32Reg: case Op::Rsh32Imm: return a >> (b & 31);
    case Op::Arsh32Reg: case Op::Arsh32Imm:
      return static_cast<uint32_t>(static_cast<int32_t>(a) >> (b & 31));
    case Op::Mov32Reg: case Op::Mov32Imm: return b;
    default: return 0;
  }
}

bool is_alu64(Op op) {
  switch (op) {
    case Op::AddReg: case Op::AddImm: case Op::SubReg: case Op::SubImm:
    case Op::MulReg: case Op::MulImm: case Op::DivReg: case Op::DivImm:
    case Op::ModReg: case Op::ModImm: case Op::AndReg: case Op::AndImm:
    case Op::OrReg:  case Op::OrImm:  case Op::XorReg: case Op::XorImm:
    case Op::LshReg: case Op::LshImm: case Op::RshReg: case Op::RshImm:
    case Op::ArshReg: case Op::ArshImm: case Op::MovReg: case Op::MovImm:
      return true;
    default:
      return false;
  }
}

bool is_alu32(Op op) {
  switch (op) {
    case Op::Add32Reg: case Op::Add32Imm: case Op::Sub32Reg: case Op::Sub32Imm:
    case Op::Mul32Reg: case Op::Mul32Imm: case Op::Div32Reg: case Op::Div32Imm:
    case Op::Mod32Reg: case Op::Mod32Imm: case Op::And32Reg: case Op::And32Imm:
    case Op::Or32Reg:  case Op::Or32Imm:  case Op::Xor32Reg: case Op::Xor32Imm:
    case Op::Lsh32Reg: case Op::Lsh32Imm: case Op::Rsh32Reg: case Op::Rsh32Imm:
    case Op::Arsh32Reg: case Op::Arsh32Imm: case Op::Mov32Reg:
    case Op::Mov32Imm:
      return true;
    default:
      return false;
  }
}

bool uses_imm_operand(Op op) {
  switch (op) {
    case Op::AddImm: case Op::SubImm: case Op::MulImm: case Op::DivImm:
    case Op::ModImm: case Op::AndImm: case Op::OrImm: case Op::XorImm:
    case Op::LshImm: case Op::RshImm: case Op::ArshImm: case Op::MovImm:
    case Op::Add32Imm: case Op::Sub32Imm: case Op::Mul32Imm: case Op::Div32Imm:
    case Op::Mod32Imm: case Op::And32Imm: case Op::Or32Imm: case Op::Xor32Imm:
    case Op::Lsh32Imm: case Op::Rsh32Imm: case Op::Arsh32Imm: case Op::Mov32Imm:
      return true;
    default:
      return false;
  }
}

// Width of a memory op in bytes, or 0 for non-memory ops.
int mem_width(Op op) {
  switch (op) {
    case Op::LdxB: case Op::StxB: case Op::StB: return 1;
    case Op::LdxH: case Op::StxH: case Op::StH: return 2;
    case Op::LdxW: case Op::StxW: case Op::StW: return 4;
    case Op::LdxDW: case Op::StxDW: case Op::StDW: return 8;
    default: return 0;
  }
}

struct Interp {
  const Program& prog;
  std::span<Map* const> maps;
  ReuseportCtx& ctx;
  const Vm::TimeFn& time_fn;
  const Vm::RandFn& rand_fn;

  alignas(8) uint8_t stack[kStackSize] = {};
  uint64_t regs[kNumRegs] = {};
  RefResult out;
  size_t pc = 0;

  RefResult trap(const std::string& why) {
    out.trapped = true;
    out.trap = why;
    out.trap_pc = pc;
    return out;
  }

  // Resolve a guest address to a host pointer, or nullptr on violation.
  uint8_t* resolve(uint64_t addr, size_t n) {
    const auto lo = static_cast<uintptr_t>(addr);
    const auto fits = [&](const void* base, size_t size) {
      const auto b = reinterpret_cast<uintptr_t>(base);
      return lo >= b && n <= size && lo - b <= size - n;
    };
    if (fits(stack, kStackSize)) return reinterpret_cast<uint8_t*>(lo);
    if (fits(&ctx, kCtxReadableBytes)) return reinterpret_cast<uint8_t*>(lo);
    for (Map* m : maps) {
      auto* am = dynamic_cast<ArrayMap*>(m);
      if (am != nullptr && fits(am->storage_base(), am->storage_bytes())) {
        return reinterpret_cast<uint8_t*>(lo);
      }
    }
    return nullptr;
  }

  // Identify which bound map a register value designates (or null).
  Map* map_at(uint64_t v) {
    for (Map* m : maps) {
      if (reinterpret_cast<uint64_t>(m) == v) return m;
    }
    return nullptr;
  }

  RefResult run() {
    regs[1] = reinterpret_cast<uint64_t>(&ctx);
    regs[10] = reinterpret_cast<uint64_t>(stack + kStackSize);

    while (true) {
      if (pc >= prog.size()) return trap("pc out of bounds");
      if (out.insns_executed >= kMaxInsnsExecuted) {
        return trap("instruction budget exceeded");
      }
      const Insn& in = prog[pc];
      ++out.insns_executed;
      if (in.dst >= kNumRegs || in.src >= kNumRegs) {
        return trap("register index out of range");
      }
      const uint64_t imm_u = static_cast<uint64_t>(in.imm);

      if (is_alu64(in.op)) {
        const uint64_t b = uses_imm_operand(in.op) ? imm_u : regs[in.src];
        regs[in.dst] = eval64(in.op, regs[in.dst], b);
        ++pc;
        continue;
      }
      if (is_alu32(in.op)) {
        const uint32_t b = uses_imm_operand(in.op)
                               ? static_cast<uint32_t>(in.imm)
                               : static_cast<uint32_t>(regs[in.src]);
        regs[in.dst] =
            eval32(in.op, static_cast<uint32_t>(regs[in.dst]), b);
        ++pc;
        continue;
      }

      switch (in.op) {
        case Op::Neg: regs[in.dst] = 0 - regs[in.dst]; ++pc; continue;
        case Op::Neg32:
          regs[in.dst] =
              static_cast<uint32_t>(0 - static_cast<uint32_t>(regs[in.dst]));
          ++pc;
          continue;
        case Op::LdImm64: regs[in.dst] = imm_u; ++pc; continue;
        case Op::LdMapFd: {
          if (in.imm < 0 || static_cast<size_t>(in.imm) >= maps.size()) {
            return trap("LdMapFd slot out of range");
          }
          regs[in.dst] =
              reinterpret_cast<uint64_t>(maps[static_cast<size_t>(in.imm)]);
          ++pc;
          continue;
        }
        default: break;
      }

      if (const int width = mem_width(in.op); width != 0) {
        const bool is_load =
            in.op == Op::LdxB || in.op == Op::LdxH || in.op == Op::LdxW ||
            in.op == Op::LdxDW;
        const uint64_t base = is_load ? regs[in.src] : regs[in.dst];
        uint8_t* p = resolve(base + in.off, static_cast<size_t>(width));
        if (p == nullptr) return trap("memory access violation");
        if (is_load) {
          uint64_t v = 0;
          std::memcpy(&v, p, static_cast<size_t>(width));  // little-endian
          regs[in.dst] = v;
        } else {
          const bool from_reg =
              in.op == Op::StxB || in.op == Op::StxH || in.op == Op::StxW ||
              in.op == Op::StxDW;
          const uint64_t v = from_reg ? regs[in.src] : imm_u;
          std::memcpy(p, &v, static_cast<size_t>(width));
        }
        ++pc;
        continue;
      }

      // Control flow, helpers, exit.
      switch (in.op) {
        case Op::Ja: case Op::JeqReg: case Op::JeqImm: case Op::JneReg:
        case Op::JneImm: case Op::JgtReg: case Op::JgtImm: case Op::JgeReg:
        case Op::JgeImm: case Op::JltReg: case Op::JltImm: case Op::JleReg:
        case Op::JleImm: case Op::JsgtReg: case Op::JsgtImm: case Op::JsgeReg:
        case Op::JsgeImm: case Op::JsltReg: case Op::JsltImm: case Op::JsleReg:
        case Op::JsleImm: case Op::JsetReg: case Op::JsetImm: {
          const uint64_t a = regs[in.dst];
          const uint64_t b =
              (in.op == Op::JeqReg || in.op == Op::JneReg ||
               in.op == Op::JgtReg || in.op == Op::JgeReg ||
               in.op == Op::JltReg || in.op == Op::JleReg ||
               in.op == Op::JsgtReg || in.op == Op::JsgeReg ||
               in.op == Op::JsltReg || in.op == Op::JsleReg ||
               in.op == Op::JsetReg)
                  ? regs[in.src]
                  : imm_u;
          const auto sa = static_cast<int64_t>(a);
          const auto sb = static_cast<int64_t>(b);
          bool taken = false;
          switch (in.op) {
            case Op::Ja: taken = true; break;
            case Op::JeqReg: case Op::JeqImm: taken = a == b; break;
            case Op::JneReg: case Op::JneImm: taken = a != b; break;
            case Op::JgtReg: case Op::JgtImm: taken = a > b; break;
            case Op::JgeReg: case Op::JgeImm: taken = a >= b; break;
            case Op::JltReg: case Op::JltImm: taken = a < b; break;
            case Op::JleReg: case Op::JleImm: taken = a <= b; break;
            case Op::JsgtReg: case Op::JsgtImm: taken = sa > sb; break;
            case Op::JsgeReg: case Op::JsgeImm: taken = sa >= sb; break;
            case Op::JsltReg: case Op::JsltImm: taken = sa < sb; break;
            case Op::JsleReg: case Op::JsleImm: taken = sa <= sb; break;
            case Op::JsetReg: case Op::JsetImm: taken = (a & b) != 0; break;
            default: break;
          }
          const int64_t target =
              static_cast<int64_t>(pc) + 1 + (taken ? in.off : 0);
          if (target < 0) return trap("jump to negative pc");
          pc = static_cast<size_t>(target);
          continue;
        }

        case Op::Call: {
          switch (static_cast<HelperId>(in.imm)) {
            case HelperId::MapLookupElem: {
              auto* am = dynamic_cast<ArrayMap*>(map_at(regs[1]));
              if (am == nullptr) return trap("lookup: r1 is not an array map");
              uint8_t* kp = resolve(regs[2], 4);
              if (kp == nullptr) return trap("lookup: bad key pointer");
              uint32_t key;
              std::memcpy(&key, kp, 4);
              regs[0] = reinterpret_cast<uint64_t>(am->lookup(key));
              break;
            }
            case HelperId::MapUpdateElem: {
              auto* am = dynamic_cast<ArrayMap*>(map_at(regs[1]));
              if (am == nullptr) return trap("update: r1 is not an array map");
              uint8_t* kp = resolve(regs[2], 4);
              if (kp == nullptr) return trap("update: bad key pointer");
              uint8_t* vp = resolve(regs[3], am->value_size());
              if (vp == nullptr) return trap("update: bad value pointer");
              uint32_t key;
              std::memcpy(&key, kp, 4);
              regs[0] = am->update(key, vp) ? 0 : static_cast<uint64_t>(-1);
              break;
            }
            case HelperId::SkSelectReuseport: {
              if (regs[1] != reinterpret_cast<uint64_t>(&ctx)) {
                return trap("sk_select: r1 is not the context");
              }
              auto* sa = dynamic_cast<ReuseportSockArray*>(map_at(regs[2]));
              if (sa == nullptr) return trap("sk_select: r2 is not a sockarray");
              uint8_t* kp = resolve(regs[3], 4);
              if (kp == nullptr) return trap("sk_select: bad key pointer");
              uint32_t key;
              std::memcpy(&key, kp, 4);
              const uint64_t cookie = sa->get(key);
              if (cookie == kNoSocket) {
                regs[0] = static_cast<uint64_t>(-2);  // -ENOENT
              } else {
                ctx.selected_socket = cookie;
                ctx.selection_made = true;
                regs[0] = 0;
              }
              break;
            }
            case HelperId::KtimeGetNs:
              regs[0] = time_fn ? time_fn() : 0;
              break;
            case HelperId::GetPrandomU32:
              regs[0] = rand_fn ? rand_fn() : 0;
              break;
            default:
              return trap("unknown helper id");
          }
          // r1-r5 are caller-saved: the kernel clobbers them across calls.
          // Vm leaves them intact, but verified programs never read them
          // after a call, so the two implementations agree observably.
          ++pc;
          continue;
        }

        case Op::Exit:
          out.ret = regs[0];
          return out;

        default:
          return trap("unhandled opcode");
      }
    }
  }
};

}  // namespace

RefResult ref_run(const Program& prog, std::span<Map* const> maps,
                  ReuseportCtx& ctx, const Vm::TimeFn& time_fn,
                  const Vm::RandFn& rand_fn) {
  Interp interp{prog, maps, ctx, time_fn, rand_fn};
  return interp.run();
}

}  // namespace hermes::bpf
