// Reference eBPF interpreter for differential testing.
//
// A second, independent implementation of the instruction semantics in
// insn.h, deliberately structured differently from bpf::Vm:
//
//   * it assumes NOTHING about the program — every register index, memory
//     access, jump target, helper id and instruction budget is checked
//     dynamically and reported as a *trap* instead of aborting the process
//     (Vm aborts, because for it a violation means the verifier is broken);
//   * ALU semantics are routed through two generic evaluators (64-bit and
//     32-bit) instead of a per-opcode switch body, so an opcode-level slip
//     in one implementation does not automatically appear in the other.
//
// The differential fuzzer (tests/torture_bpf_diff_test.cc) generates random
// programs, keeps the verifier-accepted ones, and demands that Vm and this
// interpreter agree on: return value, instruction count, reuseport
// selection side effects, and final map contents — and that no accepted
// program ever traps here. Any disagreement is a bug in the verifier, the
// VM, or this file; the failing seed pinpoints it.
#pragma once

#include <span>
#include <string>

#include "bpf/insn.h"
#include "bpf/maps.h"
#include "bpf/vm.h"

namespace hermes::bpf {

struct RefResult {
  bool trapped = false;     // dynamic safety violation (bad access, ...)
  std::string trap;         // human-readable reason, empty when !trapped
  size_t trap_pc = 0;       // instruction index of the trap
  uint64_t ret = 0;         // r0 at exit (valid when !trapped)
  uint64_t insns_executed = 0;
};

// Execute `prog` against `ctx` with the given bound maps. Helper calls use
// `time_fn` / `rand_fn` exactly like Vm (pass deterministic functions when
// comparing runs). Never aborts on program misbehaviour: traps instead.
RefResult ref_run(const Program& prog, std::span<Map* const> maps,
                  ReuseportCtx& ctx, const Vm::TimeFn& time_fn = {},
                  const Vm::RandFn& rand_fn = {});

}  // namespace hermes::bpf
