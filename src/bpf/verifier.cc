#include "bpf/verifier.h"

#include <algorithm>
#include <sstream>

#include "bpf/analysis/interp.h"

namespace hermes::bpf {

namespace {

// A short disassembly window around the failing instruction, with the
// offender marked — kernel-verifier-style context for rejection logs.
std::string disasm_window(const Program& prog, size_t err_pc) {
  if (prog.empty()) return {};
  const size_t lo = err_pc >= 3 ? err_pc - 3 : 0;
  const size_t hi = std::min(prog.size() - 1, err_pc + 3);
  std::ostringstream os;
  for (size_t pc = lo; pc <= hi; ++pc) {
    os << (pc == err_pc ? " -> " : "    ") << pc << ": "
       << disassemble(prog[pc]) << "\n";
  }
  return os.str();
}

}  // namespace

VerifyResult verify(const Program& prog, std::span<Map* const> maps,
                    const analysis::AnalysisOptions& opts) {
  VerifyResult res;
  res.insn_count = prog.size();
  analysis::AnalysisResult a = analysis::analyze(prog, maps, opts);
  res.dead_insns = a.dead_insns;
  res.dead_edges = a.dead_edges;
  res.max_loop_trips = a.max_loop_trips;
  if (a) {
    res.ok = true;
    res.analysis = std::move(a);
    return res;
  }

  res.ok = false;
  res.error_pc = a.error_pc;
  std::ostringstream os;
  os << "pc " << a.error_pc;
  if (a.error_pc < prog.size()) {
    os << " (" << disassemble(prog[a.error_pc]) << ")";
  }
  os << ": " << a.error;
  if (std::string w = disasm_window(prog, a.error_pc); !w.empty()) {
    os << "\n" << w;
  }
  if (!a.error_state.empty()) {
    os << "abstract state at pc " << a.error_pc << ":\n" << a.error_state;
  }
  res.error = os.str();
  return res;
}

}  // namespace hermes::bpf
