#include "bpf/verifier.h"

#include <array>
#include <optional>
#include <sstream>

namespace hermes::bpf {

namespace {

enum class Kind : uint8_t {
  Uninit,
  Scalar,
  PtrStack,          // delta relative to r10 (<= 0 for valid accesses)
  PtrCtx,            // delta from context start
  PtrMapValue,       // non-null, delta from value start; map_slot valid
  PtrMapValueOrNull, // must be null-checked before dereference
  MapHandle,         // map_slot valid
};

struct RegState {
  Kind kind = Kind::Uninit;
  int64_t delta = 0;
  int32_t map_slot = -1;

  bool operator==(const RegState&) const = default;
};

using Regs = std::array<RegState, kNumRegs>;

// 8-byte stack slots for spill tracking (BPF_REG_FP-relative). A slot holds
// the RegState of a value spilled with a 64-bit store; anything else (data
// writes, partial writes) degrades it to Scalar.
inline constexpr size_t kStackSlots = kStackSize / 8;
using Slots = std::array<RegState, kStackSlots>;

struct AbsState {
  Regs regs{};
  Slots slots{};
  bool reachable = false;
};

bool is_pointer(Kind k) {
  return k == Kind::PtrStack || k == Kind::PtrCtx || k == Kind::PtrMapValue ||
         k == Kind::PtrMapValueOrNull;
}

RegState meet(const RegState& a, const RegState& b) {
  if (a == b) return a;
  if (a.kind == b.kind && a.kind == Kind::Scalar) return a;
  // Same map value pointer with different deltas or anything mismatched:
  // conservatively unknown.
  return RegState{};  // Uninit
}

void meet_into(AbsState& dst, const Regs& src, const Slots& src_slots) {
  if (!dst.reachable) {
    dst.regs = src;
    dst.slots = src_slots;
    dst.reachable = true;
    return;
  }
  for (size_t i = 0; i < dst.regs.size(); ++i) {
    dst.regs[i] = meet(dst.regs[i], src[i]);
  }
  for (size_t i = 0; i < dst.slots.size(); ++i) {
    dst.slots[i] = meet(dst.slots[i], src_slots[i]);
  }
}

// Slot index for a stack access at fp-relative offset `lo` (negative), or
// -1 if not exactly one aligned 8-byte slot.
int aligned_slot(int64_t lo, int size) {
  if (size != 8 || lo % 8 != 0) return -1;
  const int64_t idx = (static_cast<int64_t>(kStackSize) + lo) / 8;
  if (idx < 0 || idx >= static_cast<int64_t>(kStackSlots)) return -1;
  return static_cast<int>(idx);
}

// Degrade any slot a [lo, lo+size) stack write overlaps to Scalar.
void clobber_slots(Slots& slots, int64_t lo, int size) {
  const int64_t first = (static_cast<int64_t>(kStackSize) + lo) / 8;
  const int64_t last =
      (static_cast<int64_t>(kStackSize) + lo + size - 1) / 8;
  for (int64_t i = std::max<int64_t>(0, first);
       i <= last && i < static_cast<int64_t>(kStackSlots); ++i) {
    slots[static_cast<size_t>(i)] = RegState{Kind::Scalar, 0, -1};
  }
}

struct HelperSig {
  HelperId id;
  int num_args;
  Kind arg[5];
  // MapHandle argument constraint (or nullopt for any type).
  std::optional<MapType> map_arg_type;
  Kind ret;
};

const HelperSig* find_sig(int64_t imm) {
  static const HelperSig kSigs[] = {
      {HelperId::MapLookupElem, 2, {Kind::MapHandle, Kind::PtrStack},
       MapType::Array, Kind::PtrMapValueOrNull},
      {HelperId::MapUpdateElem, 4,
       {Kind::MapHandle, Kind::PtrStack, Kind::PtrStack, Kind::Scalar},
       MapType::Array, Kind::Scalar},
      {HelperId::SkSelectReuseport, 4,
       {Kind::PtrCtx, Kind::MapHandle, Kind::PtrStack, Kind::Scalar},
       MapType::ReuseportSockArray, Kind::Scalar},
      {HelperId::KtimeGetNs, 0, {}, std::nullopt, Kind::Scalar},
      {HelperId::GetPrandomU32, 0, {}, std::nullopt, Kind::Scalar},
  };
  for (const auto& s : kSigs) {
    if (static_cast<int64_t>(s.id) == imm) return &s;
  }
  return nullptr;
}

int access_size(Op op) {
  switch (op) {
    case Op::LdxB: case Op::StxB: case Op::StB: return 1;
    case Op::LdxH: case Op::StxH: case Op::StH: return 2;
    case Op::LdxW: case Op::StxW: case Op::StW: return 4;
    case Op::LdxDW: case Op::StxDW: case Op::StDW: return 8;
    default: return 0;
  }
}

class VerifierImpl {
 public:
  VerifierImpl(const Program& prog, std::span<Map* const> maps)
      : prog_(prog), maps_(maps), states_(prog.size() + 1) {}

  VerifyResult run() {
    VerifyResult res;
    res.insn_count = prog_.size();
    if (prog_.empty()) return fail(res, 0, "empty program");
    if (prog_.size() > kMaxProgramLen) {
      return fail(res, 0, "program too long");
    }

    // Structural prescan: every instruction's register fields must name real
    // registers, even where the op ignores them — the VM indexes regs[] by
    // both fields unconditionally, so a stray byte would read out of bounds.
    for (size_t pc = 0; pc < prog_.size(); ++pc) {
      if (prog_[pc].dst >= kNumRegs || prog_[pc].src >= kNumRegs) {
        return fail(res, pc, "bad register field");
      }
    }

    // Entry state: r1 = ctx, r10 = frame pointer.
    AbsState entry;
    entry.reachable = true;
    entry.regs[1] = {Kind::PtrCtx, 0, -1};
    entry.regs[kFramePointer] = {Kind::PtrStack, 0, -1};
    states_[0] = entry;

    for (size_t pc = 0; pc < prog_.size(); ++pc) {
      if (!states_[pc].reachable) {
        return fail(res, pc, "unreachable instruction");
      }
      std::string err = step(pc);
      if (!err.empty()) return fail(res, pc, err);
    }
    res.ok = true;
    return res;
  }

 private:
  VerifyResult fail(VerifyResult& res, size_t pc, const std::string& msg) {
    std::ostringstream os;
    os << "pc " << pc;
    if (pc < prog_.size()) os << " (" << disassemble(prog_[pc]) << ")";
    os << ": " << msg;
    res.ok = false;
    res.error = os.str();
    res.error_pc = pc;
    return res;
  }

  // Verify instruction at pc against states_[pc]; propagate out-states.
  // Returns an error string, or empty on success.
  std::string step(size_t pc) {
    const Insn& in = prog_[pc];
    Regs regs = states_[pc].regs;  // copy: we mutate into the out-state
    Slots slots = states_[pc].slots;

    auto reg_ok = [](Reg r) { return r < kNumRegs; };
    auto initialized = [&](Reg r) { return regs[r].kind != Kind::Uninit; };
    auto require_init = [&](Reg r) -> std::string {
      if (!reg_ok(r)) return "bad register";
      if (!initialized(r)) return "read of uninitialized r" + std::to_string(r);
      return {};
    };
    auto writable = [&](Reg r) -> std::string {
      if (!reg_ok(r)) return "bad register";
      if (r == kFramePointer) return "write to frame pointer r10";
      return {};
    };

    auto fallthrough = [&]() -> std::string {
      if (pc + 1 >= prog_.size()) return "fall-through off program end";
      meet_into(states_[pc + 1], regs, slots);
      return {};
    };
    auto jump_to = [&](int32_t off, const Regs& edge_regs) -> std::string {
      if (off < 0) return "backward jump (loops are not allowed)";
      const size_t target = pc + 1 + static_cast<size_t>(off);
      if (target >= prog_.size()) return "jump out of bounds";
      meet_into(states_[target], edge_regs, slots);
      return {};
    };

    switch (in.op) {
      // ---- ALU reg ----
      case Op::AddReg: case Op::SubReg: case Op::MulReg: case Op::DivReg:
      case Op::ModReg: case Op::AndReg: case Op::OrReg: case Op::XorReg:
      case Op::LshReg: case Op::RshReg: case Op::ArshReg:
      case Op::Add32Reg: case Op::Sub32Reg: case Op::Mul32Reg:
      case Op::Div32Reg: case Op::Mod32Reg: case Op::And32Reg:
      case Op::Or32Reg: case Op::Xor32Reg: case Op::Lsh32Reg:
      case Op::Rsh32Reg: case Op::Arsh32Reg: {
        if (auto e = writable(in.dst); !e.empty()) return e;
        if (auto e = require_init(in.src); !e.empty()) return e;
        if (auto e = require_init(in.dst); !e.empty()) return e;
        if (is_pointer(regs[in.dst].kind) || is_pointer(regs[in.src].kind) ||
            regs[in.dst].kind == Kind::MapHandle ||
            regs[in.src].kind == Kind::MapHandle) {
          return "pointer arithmetic with register operand not allowed";
        }
        regs[in.dst] = {Kind::Scalar, 0, -1};
        return fallthrough();
      }
      case Op::Mov32Reg: {
        if (auto e = writable(in.dst); !e.empty()) return e;
        if (auto e = require_init(in.src); !e.empty()) return e;
        if (is_pointer(regs[in.src].kind) ||
            regs[in.src].kind == Kind::MapHandle) {
          return "32-bit move truncates a pointer";
        }
        regs[in.dst] = {Kind::Scalar, 0, -1};
        return fallthrough();
      }
      // ---- ALU imm ----
      case Op::AddImm: case Op::SubImm: {
        if (auto e = writable(in.dst); !e.empty()) return e;
        if (auto e = require_init(in.dst); !e.empty()) return e;
        RegState& d = regs[in.dst];
        if (d.kind == Kind::PtrStack || d.kind == Kind::PtrMapValue ||
            d.kind == Kind::PtrCtx) {
          d.delta += (in.op == Op::AddImm) ? in.imm : -in.imm;
        } else if (d.kind == Kind::PtrMapValueOrNull ||
                   d.kind == Kind::MapHandle) {
          return "arithmetic on possibly-null pointer or map handle";
        } else {
          d = {Kind::Scalar, 0, -1};
        }
        return fallthrough();
      }
      case Op::MulImm: case Op::AndImm: case Op::OrImm: case Op::XorImm:
      case Op::LshImm: case Op::RshImm: case Op::ArshImm: case Op::Mov32Imm:
      case Op::Add32Imm: case Op::Sub32Imm: case Op::Mul32Imm:
      case Op::And32Imm: case Op::Or32Imm: case Op::Xor32Imm:
      case Op::Lsh32Imm: case Op::Rsh32Imm: case Op::Arsh32Imm: {
        if (auto e = writable(in.dst); !e.empty()) return e;
        if (in.op != Op::Mov32Imm) {
          if (auto e = require_init(in.dst); !e.empty()) return e;
          if (is_pointer(regs[in.dst].kind) ||
              regs[in.dst].kind == Kind::MapHandle) {
            return "ALU on pointer/map handle not allowed";
          }
        }
        regs[in.dst] = {Kind::Scalar, 0, -1};
        return fallthrough();
      }
      case Op::DivImm: case Op::ModImm:
      case Op::Div32Imm: case Op::Mod32Imm: {
        if (auto e = writable(in.dst); !e.empty()) return e;
        if (auto e = require_init(in.dst); !e.empty()) return e;
        if (in.imm == 0) return "division by zero immediate";
        if (is_pointer(regs[in.dst].kind)) return "ALU on pointer";
        regs[in.dst] = {Kind::Scalar, 0, -1};
        return fallthrough();
      }
      case Op::Neg: case Op::Neg32: {
        if (auto e = writable(in.dst); !e.empty()) return e;
        if (auto e = require_init(in.dst); !e.empty()) return e;
        if (is_pointer(regs[in.dst].kind)) return "ALU on pointer";
        regs[in.dst] = {Kind::Scalar, 0, -1};
        return fallthrough();
      }
      case Op::MovReg: {
        if (auto e = writable(in.dst); !e.empty()) return e;
        if (auto e = require_init(in.src); !e.empty()) return e;
        regs[in.dst] = regs[in.src];
        return fallthrough();
      }
      case Op::MovImm: case Op::LdImm64: {
        if (auto e = writable(in.dst); !e.empty()) return e;
        regs[in.dst] = {Kind::Scalar, 0, -1};
        return fallthrough();
      }
      case Op::LdMapFd: {
        if (auto e = writable(in.dst); !e.empty()) return e;
        if (in.imm < 0 || static_cast<size_t>(in.imm) >= maps_.size() ||
            maps_[static_cast<size_t>(in.imm)] == nullptr) {
          return "LdMapFd references unknown map slot";
        }
        regs[in.dst] = {Kind::MapHandle, 0, static_cast<int32_t>(in.imm)};
        return fallthrough();
      }

      // ---- loads ----
      case Op::LdxB: case Op::LdxH: case Op::LdxW: case Op::LdxDW: {
        if (auto e = writable(in.dst); !e.empty()) return e;
        if (auto e = require_init(in.src); !e.empty()) return e;
        if (auto e = check_mem(regs[in.src], in.off, access_size(in.op),
                               /*is_write=*/false);
            !e.empty()) {
          return e;
        }
        RegState loaded{Kind::Scalar, 0, -1};
        if (in.op == Op::LdxDW && regs[in.src].kind == Kind::PtrStack) {
          // Restore a spilled register (fills with the spilled type; plain
          // data slots read back as scalars — the VM zeroes the stack).
          const int slot =
              aligned_slot(regs[in.src].delta + in.off, /*size=*/8);
          if (slot >= 0 && slots[static_cast<size_t>(slot)].kind !=
                               Kind::Uninit) {
            loaded = slots[static_cast<size_t>(slot)];
          }
        }
        regs[in.dst] = loaded;
        return fallthrough();
      }
      // ---- stores ----
      case Op::StxB: case Op::StxH: case Op::StxW: case Op::StxDW: {
        if (auto e = require_init(in.dst); !e.empty()) return e;
        if (auto e = require_init(in.src); !e.empty()) return e;
        const bool to_stack = regs[in.dst].kind == Kind::PtrStack;
        if (regs[in.src].kind != Kind::Scalar) {
          // Spilling non-scalars is legal only as an aligned 64-bit store
          // to the stack (the kernel's spill/fill rule).
          if (!(in.op == Op::StxDW && to_stack &&
                aligned_slot(regs[in.dst].delta + in.off, 8) >= 0)) {
            return "pointer may only be spilled with an aligned 64-bit "
                   "stack store";
          }
        }
        if (auto e = check_mem(regs[in.dst], in.off, access_size(in.op),
                               /*is_write=*/true);
            !e.empty()) {
          return e;
        }
        if (to_stack) {
          const int64_t lo = regs[in.dst].delta + in.off;
          const int size = access_size(in.op);
          const int slot = aligned_slot(lo, size);
          if (in.op == Op::StxDW && slot >= 0) {
            slots[static_cast<size_t>(slot)] = regs[in.src];  // spill/track
          } else {
            clobber_slots(slots, lo, size);
          }
        }
        return fallthrough();
      }
      case Op::StB: case Op::StH: case Op::StW: case Op::StDW: {
        if (auto e = require_init(in.dst); !e.empty()) return e;
        if (auto e = check_mem(regs[in.dst], in.off, access_size(in.op),
                               /*is_write=*/true);
            !e.empty()) {
          return e;
        }
        if (regs[in.dst].kind == Kind::PtrStack) {
          clobber_slots(slots, regs[in.dst].delta + in.off,
                        access_size(in.op));
        }
        return fallthrough();
      }

      // ---- control flow ----
      case Op::Ja:
        return jump_to(in.off, regs);

      case Op::JeqImm: case Op::JneImm: {
        if (auto e = require_init(in.dst); !e.empty()) return e;
        const RegState& d = regs[in.dst];
        if (d.kind == Kind::PtrMapValueOrNull && in.imm == 0) {
          // Null-check refinement, as in the kernel verifier.
          Regs taken = regs, fall = regs;
          const bool eq_means_null = (in.op == Op::JeqImm);
          const RegState nonnull{Kind::PtrMapValue, d.delta, d.map_slot};
          const RegState null_scalar{Kind::Scalar, 0, -1};
          taken[in.dst] = eq_means_null ? null_scalar : nonnull;
          fall[in.dst] = eq_means_null ? nonnull : null_scalar;
          if (auto e = jump_to(in.off, taken); !e.empty()) return e;
          if (pc + 1 >= prog_.size()) return "fall-through off program end";
          meet_into(states_[pc + 1], fall, slots);
          return {};
        }
        if (is_pointer(d.kind) || d.kind == Kind::MapHandle) {
          return "comparison of pointer with non-null immediate";
        }
        if (auto e = jump_to(in.off, regs); !e.empty()) return e;
        return fallthrough();
      }
      case Op::JgtImm: case Op::JgeImm: case Op::JltImm: case Op::JleImm:
      case Op::JsgtImm: case Op::JsgeImm: case Op::JsltImm: case Op::JsleImm:
      case Op::JsetImm: {
        if (auto e = require_init(in.dst); !e.empty()) return e;
        if (regs[in.dst].kind != Kind::Scalar) {
          return "conditional jump on non-scalar";
        }
        if (auto e = jump_to(in.off, regs); !e.empty()) return e;
        return fallthrough();
      }
      case Op::JeqReg: case Op::JneReg: case Op::JgtReg: case Op::JgeReg:
      case Op::JltReg: case Op::JleReg: case Op::JsgtReg: case Op::JsgeReg:
      case Op::JsltReg: case Op::JsleReg: case Op::JsetReg: {
        if (auto e = require_init(in.dst); !e.empty()) return e;
        if (auto e = require_init(in.src); !e.empty()) return e;
        if (regs[in.dst].kind != Kind::Scalar ||
            regs[in.src].kind != Kind::Scalar) {
          return "conditional jump on non-scalar";
        }
        if (auto e = jump_to(in.off, regs); !e.empty()) return e;
        return fallthrough();
      }

      case Op::Call: {
        const HelperSig* sig = find_sig(in.imm);
        if (sig == nullptr) return "unknown helper";
        for (int a = 0; a < sig->num_args; ++a) {
          const Reg r = static_cast<Reg>(a + 1);
          if (auto e = require_init(r); !e.empty()) return e;
          const Kind want = sig->arg[a];
          const Kind have = regs[r].kind;
          if (want == Kind::PtrStack) {
            if (have != Kind::PtrStack) {
              return "helper arg r" + std::to_string(r) +
                     " must be a stack pointer";
            }
            // Key/value buffers: require at least a u32 key's worth of
            // stack behind the pointer (the VM re-checks exact sizes).
            if (auto e = check_stack(regs[r], 0, 4); !e.empty()) return e;
          } else if (want == Kind::MapHandle) {
            if (have != Kind::MapHandle) {
              return "helper arg r" + std::to_string(r) + " must be a map";
            }
            Map* m = maps_[static_cast<size_t>(regs[r].map_slot)];
            if (sig->map_arg_type && m->type() != *sig->map_arg_type) {
              return "helper map argument has wrong map type";
            }
          } else if (want != have) {
            return "helper arg r" + std::to_string(r) + " has wrong type";
          }
        }
        // Result + clobbers.
        int32_t result_slot = -1;
        if (sig->ret == Kind::PtrMapValueOrNull) {
          result_slot = regs[1].map_slot;  // lookup result points into r1 map
        }
        for (Reg r = 1; r <= 5; ++r) regs[r] = RegState{};
        regs[0] = {sig->ret, 0, result_slot};
        return fallthrough();
      }

      case Op::Exit: {
        if (auto e = require_init(0); !e.empty()) return e;
        if (regs[0].kind != Kind::Scalar) return "exit with non-scalar r0";
        return {};  // no successors
      }
    }
    return "unhandled opcode";
  }

  std::string check_mem(const RegState& base, int32_t off, int size,
                        bool is_write) {
    switch (base.kind) {
      case Kind::PtrStack:
        return check_stack(base, off, size);
      case Kind::PtrCtx: {
        if (is_write) return "context is read-only";
        const int64_t lo = base.delta + off;
        if (lo < 0 || lo + size > static_cast<int64_t>(kCtxReadableBytes)) {
          return "context access out of bounds";
        }
        return {};
      }
      case Kind::PtrMapValue: {
        const Map* m = maps_[static_cast<size_t>(base.map_slot)];
        const int64_t lo = base.delta + off;
        if (lo < 0 || lo + size > static_cast<int64_t>(m->value_size())) {
          return "map value access out of bounds";
        }
        return {};
      }
      case Kind::PtrMapValueOrNull:
        return "dereference of possibly-null map value (missing null check)";
      default:
        return "memory access via non-pointer";
    }
  }

  std::string check_stack(const RegState& base, int32_t off, int size) {
    const int64_t lo = base.delta + off;  // relative to r10
    if (lo < -static_cast<int64_t>(kStackSize) || lo + size > 0) {
      return "stack access out of bounds";
    }
    return {};
  }

  const Program& prog_;
  std::span<Map* const> maps_;
  std::vector<AbsState> states_;
};

}  // namespace

VerifyResult verify(const Program& prog, std::span<Map* const> maps) {
  VerifierImpl impl(prog, maps);
  return impl.run();
}

}  // namespace hermes::bpf
