// Static verifier for bpf::Program, modeling the safety rules the paper's
// dispatch logic must live under (§5.1.3 "Harness the limited
// programmability of eBPF"). Since the abstract-interpretation rework the
// verifier is a thin wrapper over bpf/analysis/ — a CFG-based engine with
// kernel-style value tracking:
//
//   * every register carries a type (scalar vs. pointer-to-stack /
//     pointer-to-context / pointer-to-map-value / map handle) plus a value
//     range: a tnum (known bits) refined by unsigned and signed intervals,
//     narrowed at conditional branches;
//   * memory accesses are bounds-checked against the 512-byte stack, the
//     readable context prefix, or the map value size — including
//     variable-offset accesses, which verify when the offset's range
//     proves them in-bounds;
//   * bounded loops are accepted (post-5.3 kernel semantics): a backward
//     edge is legal iff the abstract state proves the loop exits within a
//     configurable trip bound; loops must be properly nested regions
//     entered only through their header;
//   * branches whose edge is infeasible under the tracked ranges are
//     pruned (dead-branch detection); structurally unreachable code is
//     still rejected, as in the kernel's check_cfg;
//   * map-value pointers are null until proven otherwise by a JEQ/JNE 0
//     check (PTR_TO_MAP_VALUE_OR_NULL); spill/fill round-trips full
//     register state, for pointers and ranged scalars alike;
//   * helper calls are checked against typed signatures (buffer sizes,
//     map types, a context argument that really is the context base);
//     r1-r5 are clobbered and r0 gets the helper's documented range;
//   * r10 (frame pointer) is read-only; division by a zero immediate is
//     rejected; rejections report the offending abstract register state
//     plus a disassembly window around the failing pc.
//
// Remaining deliberate simplifications vs. the kernel (documented in
// DESIGN.md "Static analysis"): no 32-bit sub-register bounds alongside
// the 64-bit ones (ALU32 results are modeled by truncating the 64-bit
// domain), no precision back-propagation (the kernel's mark_chain_
// precision), loops are re-analyzed per abstract iteration instead of
// using widening to a fixpoint (simpler, and exact for the trip counts
// Hermes programs need), and reads of individual bytes of a spilled
// pointer degrade to an unknown scalar instead of tracking pointer bytes.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "bpf/analysis/interp.h"
#include "bpf/insn.h"
#include "bpf/maps.h"

namespace hermes::bpf {

struct VerifyResult {
  bool ok = false;
  std::string error;       // empty when ok; includes a disassembly window
  size_t error_pc = 0;     // instruction index of the failure
  size_t insn_count = 0;   // program length (for reporting)

  // Analysis facts, populated on success and failure alike.
  size_t dead_insns = 0;      // structurally reachable but range-pruned
  size_t dead_edges = 0;      // branch edges proven infeasible
  uint32_t max_loop_trips = 0;  // deepest per-loop iteration proof needed

  // The full abstract-interpretation result. On success this carries the
  // per-callsite helper facts and per-pc memory-access proofs that the
  // tiered execution engine (bpf/plan.h) compiles against — Tier 2's check
  // elision is licensed exclusively by these facts.
  analysis::AnalysisResult analysis;

  explicit operator bool() const { return ok; }
};

// `maps` is the load-time map table the program's LdMapFd slots refer to
// (may contain nullptr only if the program never references that slot).
VerifyResult verify(const Program& prog, std::span<Map* const> maps,
                    const analysis::AnalysisOptions& opts = {});

}  // namespace hermes::bpf
