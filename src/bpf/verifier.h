// Static verifier for bpf::Program, modeling the safety rules the paper's
// dispatch logic must live under (§5.1.3 "Harness the limited
// programmability of eBPF"):
//
//   * forward-only control flow: any backward jump is rejected, so programs
//     cannot loop — this is why popcount / find-nth-set-bit in the Hermes
//     dispatch program are implemented branch-free with bitwise tricks;
//   * all jump targets in bounds; no fall-through off the end; no
//     unreachable instructions;
//   * register typestate tracking (scalar vs. pointer-to-stack /
//     pointer-to-context / pointer-to-map-value / map handle), with
//     read-before-write rejection;
//   * map-value pointers are null until proven otherwise by a JEQ/JNE 0
//     check (exactly the real verifier's PTR_TO_MAP_VALUE_OR_NULL rule);
//   * memory accesses statically bounds-checked against the 512-byte stack,
//     the readable prefix of the context, or the map value size;
//   * helper calls checked against typed signatures; r1-r5 clobbered;
//   * r10 (frame pointer) is read-only; division by a zero immediate is
//     rejected.
//
// Deliberate simplifications vs. the kernel (documented in DESIGN.md): no
// value range tracking (pointer arithmetic must use constant immediates),
// no stack-slot liveness (the VM zeroes the stack so uninitialized reads
// return 0), no bounded-loop support (post-5.3 kernels allow it; the paper
// targets 4.19).
#pragma once

#include <span>
#include <string>
#include <vector>

#include "bpf/insn.h"
#include "bpf/maps.h"

namespace hermes::bpf {

struct VerifyResult {
  bool ok = false;
  std::string error;       // empty when ok
  size_t error_pc = 0;     // instruction index of the failure
  size_t insn_count = 0;   // program length (for reporting)

  explicit operator bool() const { return ok; }
};

// `maps` is the load-time map table the program's LdMapFd slots refer to
// (may contain nullptr only if the program never references that slot).
VerifyResult verify(const Program& prog, std::span<Map* const> maps);

}  // namespace hermes::bpf
