#include "bpf/vm.h"

#include <cstring>

#include "util/check.h"

namespace hermes::bpf {

namespace {

bool in_region(const MemRegion& r, const uint8_t* p, size_t n) {
  return p >= r.base && p + n <= r.base + r.size;
}

}  // namespace

std::unique_ptr<LoadedProgram> Vm::load(Program prog, std::vector<Map*> maps,
                                        std::string* error) const {
  VerifyResult vr = verify(prog, maps);
  if (!vr) {
    if (error != nullptr) *error = vr.error;
    return nullptr;
  }
  auto lp = std::unique_ptr<LoadedProgram>(new LoadedProgram);
  lp->prog_ = std::move(prog);
  lp->maps_ = std::move(maps);
  // Hoist region discovery out of run(): the array-map backing stores are
  // fixed for the lifetime of the load, so resolve them once here instead
  // of allocating a region vector per dispatch.
  for (Map* m : lp->maps_) {
    if (ArrayMap* am = as_array_map(m)) {
      lp->map_regions_.push_back({am->storage_base(), am->storage_bytes()});
    }
  }
  lp->tier_ = tier_;
  if (tier_ != ExecTier::Interp) {
    lp->plan_ = compile_plan(lp->prog_, lp->maps_, &vr.analysis, tier_);
    // The plan's tier is authoritative: a Jit request may have compiled
    // down to Elide (non-x86-64 host, W^X failure, codegen refusal).
    lp->tier_ = lp->plan_->tier();
    if (tier_ == ExecTier::Jit && lp->tier_ != ExecTier::Jit) {
      ++jit_fallbacks_;
      jit_fallback_reason_ = lp->plan_->jit_fallback_reason();
      jit_fallback_kind_ = lp->plan_->jit_fallback_kind();
      ++jit_fallbacks_by_kind_[static_cast<size_t>(jit_fallback_kind_)];
    }
  }
  return lp;
}

Vm::RunResult Vm::run(const LoadedProgram& lp, ReuseportCtx& ctx) const {
  if (lp.plan_ != nullptr) {
    ExecutionPlan::ExecResult er = lp.plan_->execute(ctx, time_fn_, rand_fn_);
    total_insns_ += er.insns_executed;
    RunResult res;
    res.ret = er.ret;
    res.insns_executed = er.insns_executed;
    res.tier = lp.tier_;
    res.fused_hits = er.fused_hits;
    res.elided_checks = er.elided_checks;
    return res;
  }
  return run_interp(lp, ctx);
}

Vm::RunResult Vm::run_interp(const LoadedProgram& lp,
                             ReuseportCtx& ctx) const {
  alignas(8) uint8_t stack[kStackSize] = {};
  uint64_t regs[kNumRegs] = {};
  regs[1] = reinterpret_cast<uint64_t>(&ctx);
  regs[10] = reinterpret_cast<uint64_t>(stack + kStackSize);

  const Program& prog = lp.insns();
  std::span<Map* const> maps = lp.maps();

  // Valid memory regions for runtime checking: stack, the readable context
  // prefix, and every array map's backing store (the latter precomputed at
  // load time — no allocation on the dispatch path).
  const MemRegion stack_region{stack, kStackSize};
  const MemRegion ctx_region{reinterpret_cast<uint8_t*>(&ctx),
                             kCtxReadableBytes};
  std::span<const MemRegion> map_regions = lp.map_regions_;
  auto check_access = [&](uint64_t addr, size_t n) -> uint8_t* {
    auto* p = reinterpret_cast<uint8_t*>(addr);
    if (in_region(stack_region, p, n)) return p;
    if (in_region(ctx_region, p, n)) return p;
    for (const auto& r : map_regions) {
      if (in_region(r, p, n)) return p;
    }
    HERMES_CHECK_MSG(false, "bpf vm: runtime memory access violation");
  };

  RunResult res;
  size_t pc = 0;
  for (;;) {
    HERMES_CHECK_MSG(res.insns_executed < kMaxInsnsExecuted,
                     "bpf vm: instruction budget exceeded");
    HERMES_CHECK_MSG(pc < prog.size(), "bpf vm: pc out of bounds");
    const Insn& in = prog[pc];
    ++res.insns_executed;

    // Both fields are indexed below regardless of op; the verifier's
    // structural prescan guarantees this for loaded programs.
    HERMES_CHECK_MSG(in.dst < kNumRegs && in.src < kNumRegs,
                     "bpf vm: bad register field");
    uint64_t& dst = regs[in.dst];
    const uint64_t src = regs[in.src];
    const auto imm = static_cast<uint64_t>(in.imm);
    bool jump_taken = false;

    switch (in.op) {
      case Op::AddReg: dst += src; break;
      case Op::AddImm: dst += imm; break;
      case Op::SubReg: dst -= src; break;
      case Op::SubImm: dst -= imm; break;
      case Op::MulReg: dst *= src; break;
      case Op::MulImm: dst *= imm; break;
      case Op::DivReg: dst = src ? dst / src : 0; break;
      case Op::DivImm: dst = imm ? dst / imm : 0; break;
      case Op::ModReg: dst = src ? dst % src : dst; break;
      case Op::ModImm: dst = imm ? dst % imm : dst; break;
      case Op::AndReg: dst &= src; break;
      case Op::AndImm: dst &= imm; break;
      case Op::OrReg: dst |= src; break;
      case Op::OrImm: dst |= imm; break;
      case Op::XorReg: dst ^= src; break;
      case Op::XorImm: dst ^= imm; break;
      case Op::LshReg: dst <<= (src & 63); break;
      case Op::LshImm: dst <<= (imm & 63); break;
      case Op::RshReg: dst >>= (src & 63); break;
      case Op::RshImm: dst >>= (imm & 63); break;
      case Op::ArshReg:
        dst = static_cast<uint64_t>(static_cast<int64_t>(dst) >> (src & 63));
        break;
      case Op::ArshImm:
        dst = static_cast<uint64_t>(static_cast<int64_t>(dst) >> (imm & 63));
        break;
      case Op::Neg: dst = 0 - dst; break;
      case Op::Add32Reg: dst = static_cast<uint32_t>(dst + src); break;
      case Op::Add32Imm: dst = static_cast<uint32_t>(dst + imm); break;
      case Op::Sub32Reg: dst = static_cast<uint32_t>(dst - src); break;
      case Op::Sub32Imm: dst = static_cast<uint32_t>(dst - imm); break;
      case Op::Mul32Reg: dst = static_cast<uint32_t>(dst * src); break;
      case Op::Mul32Imm: dst = static_cast<uint32_t>(dst * imm); break;
      case Op::Div32Reg:
        dst = static_cast<uint32_t>(src)
                  ? static_cast<uint32_t>(dst) / static_cast<uint32_t>(src)
                  : 0;
        break;
      case Op::Div32Imm:
        dst = static_cast<uint32_t>(imm)
                  ? static_cast<uint32_t>(dst) / static_cast<uint32_t>(imm)
                  : 0;
        break;
      case Op::Mod32Reg:
        dst = static_cast<uint32_t>(src)
                  ? static_cast<uint32_t>(dst) % static_cast<uint32_t>(src)
                  : static_cast<uint32_t>(dst);
        break;
      case Op::Mod32Imm:
        dst = static_cast<uint32_t>(imm)
                  ? static_cast<uint32_t>(dst) % static_cast<uint32_t>(imm)
                  : static_cast<uint32_t>(dst);
        break;
      case Op::And32Reg: dst = static_cast<uint32_t>(dst & src); break;
      case Op::And32Imm: dst = static_cast<uint32_t>(dst & imm); break;
      case Op::Or32Reg: dst = static_cast<uint32_t>(dst | src); break;
      case Op::Or32Imm: dst = static_cast<uint32_t>(dst | imm); break;
      case Op::Xor32Reg: dst = static_cast<uint32_t>(dst ^ src); break;
      case Op::Xor32Imm: dst = static_cast<uint32_t>(dst ^ imm); break;
      case Op::Lsh32Reg:
        dst = static_cast<uint32_t>(static_cast<uint32_t>(dst)
                                    << (src & 31));
        break;
      case Op::Lsh32Imm:
        dst = static_cast<uint32_t>(static_cast<uint32_t>(dst)
                                    << (imm & 31));
        break;
      case Op::Rsh32Reg:
        dst = static_cast<uint32_t>(dst) >> (src & 31);
        break;
      case Op::Rsh32Imm:
        dst = static_cast<uint32_t>(dst) >> (imm & 31);
        break;
      case Op::Arsh32Reg:
        dst = static_cast<uint32_t>(
            static_cast<int32_t>(static_cast<uint32_t>(dst)) >> (src & 31));
        break;
      case Op::Arsh32Imm:
        dst = static_cast<uint32_t>(
            static_cast<int32_t>(static_cast<uint32_t>(dst)) >> (imm & 31));
        break;
      case Op::Neg32:
        dst = static_cast<uint32_t>(0 - static_cast<uint32_t>(dst));
        break;
      case Op::MovReg: dst = src; break;
      case Op::MovImm: dst = imm; break;
      case Op::Mov32Reg: dst = static_cast<uint32_t>(src); break;
      case Op::Mov32Imm: dst = static_cast<uint32_t>(in.imm); break;
      case Op::LdImm64: dst = imm; break;
      case Op::LdMapFd:
        dst = reinterpret_cast<uint64_t>(maps[static_cast<size_t>(in.imm)]);
        break;

      case Op::LdxB: dst = *check_access(src + in.off, 1); break;
      case Op::LdxH: {
        uint16_t v;
        std::memcpy(&v, check_access(src + in.off, 2), 2);
        dst = v;
        break;
      }
      case Op::LdxW: {
        uint32_t v;
        std::memcpy(&v, check_access(src + in.off, 4), 4);
        dst = v;
        break;
      }
      case Op::LdxDW: {
        uint64_t v;
        std::memcpy(&v, check_access(src + in.off, 8), 8);
        dst = v;
        break;
      }
      case Op::StxB: {
        const auto v = static_cast<uint8_t>(src);
        std::memcpy(check_access(dst + in.off, 1), &v, 1);
        break;
      }
      case Op::StxH: {
        const auto v = static_cast<uint16_t>(src);
        std::memcpy(check_access(dst + in.off, 2), &v, 2);
        break;
      }
      case Op::StxW: {
        const auto v = static_cast<uint32_t>(src);
        std::memcpy(check_access(dst + in.off, 4), &v, 4);
        break;
      }
      case Op::StxDW:
        std::memcpy(check_access(dst + in.off, 8), &src, 8);
        break;
      case Op::StB: {
        const auto v = static_cast<uint8_t>(in.imm);
        std::memcpy(check_access(dst + in.off, 1), &v, 1);
        break;
      }
      case Op::StH: {
        const auto v = static_cast<uint16_t>(in.imm);
        std::memcpy(check_access(dst + in.off, 2), &v, 2);
        break;
      }
      case Op::StW: {
        const auto v = static_cast<uint32_t>(in.imm);
        std::memcpy(check_access(dst + in.off, 4), &v, 4);
        break;
      }
      case Op::StDW: {
        const auto v = static_cast<uint64_t>(in.imm);
        std::memcpy(check_access(dst + in.off, 8), &v, 8);
        break;
      }

      case Op::Ja: jump_taken = true; break;
      case Op::JeqReg: jump_taken = dst == src; break;
      case Op::JeqImm: jump_taken = dst == imm; break;
      case Op::JneReg: jump_taken = dst != src; break;
      case Op::JneImm: jump_taken = dst != imm; break;
      case Op::JgtReg: jump_taken = dst > src; break;
      case Op::JgtImm: jump_taken = dst > imm; break;
      case Op::JgeReg: jump_taken = dst >= src; break;
      case Op::JgeImm: jump_taken = dst >= imm; break;
      case Op::JltReg: jump_taken = dst < src; break;
      case Op::JltImm: jump_taken = dst < imm; break;
      case Op::JleReg: jump_taken = dst <= src; break;
      case Op::JleImm: jump_taken = dst <= imm; break;
      case Op::JsgtReg:
        jump_taken = static_cast<int64_t>(dst) > static_cast<int64_t>(src);
        break;
      case Op::JsgtImm:
        jump_taken = static_cast<int64_t>(dst) > in.imm;
        break;
      case Op::JsgeReg:
        jump_taken = static_cast<int64_t>(dst) >= static_cast<int64_t>(src);
        break;
      case Op::JsgeImm:
        jump_taken = static_cast<int64_t>(dst) >= in.imm;
        break;
      case Op::JsltReg:
        jump_taken = static_cast<int64_t>(dst) < static_cast<int64_t>(src);
        break;
      case Op::JsltImm:
        jump_taken = static_cast<int64_t>(dst) < in.imm;
        break;
      case Op::JsleReg:
        jump_taken = static_cast<int64_t>(dst) <= static_cast<int64_t>(src);
        break;
      case Op::JsleImm:
        jump_taken = static_cast<int64_t>(dst) <= in.imm;
        break;
      case Op::JsetReg: jump_taken = (dst & src) != 0; break;
      case Op::JsetImm: jump_taken = (dst & imm) != 0; break;

      case Op::Call: {
        switch (static_cast<HelperId>(in.imm)) {
          case HelperId::MapLookupElem: {
            auto* m = reinterpret_cast<Map*>(regs[1]);
            ArrayMap* am = as_array_map(m);
            HERMES_CHECK(am != nullptr);
            uint32_t key;
            std::memcpy(&key, check_access(regs[2], 4), 4);
            uint8_t* val = am->lookup(key);
            regs[0] = reinterpret_cast<uint64_t>(val);
            break;
          }
          case HelperId::MapUpdateElem: {
            auto* m = reinterpret_cast<Map*>(regs[1]);
            ArrayMap* am = as_array_map(m);
            HERMES_CHECK(am != nullptr);
            uint32_t key;
            std::memcpy(&key, check_access(regs[2], 4), 4);
            const uint8_t* val = check_access(regs[3], am->value_size());
            regs[0] = am->update(key, val) ? 0 : static_cast<uint64_t>(-1);
            break;
          }
          case HelperId::SkSelectReuseport: {
            auto* rc = reinterpret_cast<ReuseportCtx*>(regs[1]);
            auto* m = reinterpret_cast<Map*>(regs[2]);
            ReuseportSockArray* sa = as_sock_array(m);
            HERMES_CHECK(sa != nullptr);
            uint32_t key;
            std::memcpy(&key, check_access(regs[3], 4), 4);
            const uint64_t cookie = sa->get(key);
            if (cookie == kNoSocket) {
              regs[0] = static_cast<uint64_t>(-2);  // -ENOENT
            } else {
              rc->selected_socket = cookie;
              rc->selection_made = true;
              regs[0] = 0;
            }
            break;
          }
          case HelperId::KtimeGetNs:
            regs[0] = time_fn_ ? time_fn_() : 0;
            break;
          case HelperId::GetPrandomU32:
            regs[0] = rand_fn_ ? rand_fn_() : 0;
            break;
          default:
            HERMES_CHECK_MSG(false, "bpf vm: unknown helper at runtime");
        }
        break;
      }

      case Op::Exit:
        res.ret = regs[0];
        res.tier = ExecTier::Interp;
        total_insns_ += res.insns_executed;
        return res;
    }

    pc += 1;
    if (jump_taken) pc += static_cast<size_t>(in.off);
  }
}

}  // namespace hermes::bpf
