// The eBPF virtual machine: loads a verified program with its bound maps
// and executes it against a ReuseportCtx (or raw context buffer).
//
// Execution model matches the kernel interpreter: 64-bit registers, 512-byte
// zeroed stack per run, helpers dispatched by id, hard instruction budget.
// Loads/stores are additionally bounds-checked at runtime (defense in depth
// on top of the verifier; a violation is a bug in this repo, so it aborts).
//
// Execution is tiered (see bpf/plan.h): load() verifies once, precomputes
// the valid memory regions, and — for tiers above Interp — compiles the
// program into a cached ExecutionPlan. run() then dispatches through the
// plan when one exists; results are bit-identical across tiers.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "bpf/insn.h"
#include "bpf/maps.h"
#include "bpf/plan.h"
#include "bpf/verifier.h"

namespace hermes::bpf {

// A loaded, verified program. Create via Vm::load().
class LoadedProgram {
 public:
  const Program& insns() const { return prog_; }
  std::span<Map* const> maps() const { return maps_; }

  // Tier this program actually executes at — may be Elide when a Jit
  // request fell back (see Vm::jit_fallback_reason). plan() is null iff
  // tier is Interp.
  ExecTier tier() const { return tier_; }
  const ExecutionPlan* plan() const { return plan_.get(); }

 private:
  friend class Vm;
  Program prog_;
  std::vector<Map*> maps_;
  // Array-map backing stores, resolved at load time so Tier 0 runs never
  // allocate or dynamic_cast (stack + ctx regions are per-run locals).
  std::vector<MemRegion> map_regions_;
  ExecTier tier_ = ExecTier::Interp;
  std::unique_ptr<ExecutionPlan> plan_;
};

class Vm {
 public:
  // Time source for the KtimeGetNs helper; the simulator wires the sim
  // clock in, the live demo wires CLOCK_MONOTONIC.
  using TimeFn = std::function<uint64_t()>;
  using RandFn = std::function<uint32_t()>;

  // A fresh Vm starts at default_tier() (HERMES_BPF_TIER env override,
  // else Tier 2).
  Vm() : tier_(default_tier()) {}
  void set_time_fn(TimeFn fn) { time_fn_ = std::move(fn); }
  void set_rand_fn(RandFn fn) { rand_fn_ = std::move(fn); }

  // Tier for subsequently loaded programs (already-loaded programs keep
  // the plan they were compiled with).
  ExecTier tier() const { return tier_; }
  void set_tier(ExecTier t) { tier_ = t; }

  // Verify + bind maps + compile the execution plan for the current tier.
  // Returns nullptr and fills `error` on rejection.
  std::unique_ptr<LoadedProgram> load(Program prog, std::vector<Map*> maps,
                                      std::string* error = nullptr) const;

  struct RunResult {
    uint64_t ret = 0;          // r0 at exit
    uint64_t insns_executed = 0;  // source instructions; tier-invariant
    ExecTier tier = ExecTier::Interp;  // tier that executed this run
    uint32_t fused_hits = 0;      // fused micro-ops executed (tier >= 1)
    uint32_t elided_checks = 0;   // unchecked accesses executed (tier 2)
  };

  // Run against a reuseport context. The program may call
  // bpf_sk_select_reuseport, which records its decision into `ctx`.
  RunResult run(const LoadedProgram& prog, ReuseportCtx& ctx) const;

  // Cumulative executed-instruction counter across run() calls (overhead
  // accounting for Table 5).
  uint64_t total_insns() const { return total_insns_; }

  // Tier-3 fallback state: how many load() calls requested Jit but got an
  // Elide plan, and why the most recent one fell back. Never a silent
  // downgrade — core/hermes.cc forwards this to the bpf.jit_fallbacks
  // observability counters (split by kind: disabled / alloc failure /
  // validation rejection).
  uint64_t jit_fallbacks() const { return jit_fallbacks_; }
  const std::string& jit_fallback_reason() const {
    return jit_fallback_reason_;
  }
  JitFallbackKind jit_fallback_kind() const { return jit_fallback_kind_; }
  uint64_t jit_fallbacks_by_kind(JitFallbackKind k) const {
    return jit_fallbacks_by_kind_[static_cast<size_t>(k)];
  }

 private:
  RunResult run_interp(const LoadedProgram& prog, ReuseportCtx& ctx) const;

  TimeFn time_fn_;
  RandFn rand_fn_;
  ExecTier tier_;
  mutable uint64_t total_insns_ = 0;
  mutable uint64_t jit_fallbacks_ = 0;
  mutable std::string jit_fallback_reason_;
  mutable JitFallbackKind jit_fallback_kind_ = JitFallbackKind::None;
  mutable uint64_t jit_fallbacks_by_kind_[kJitFallbackKindCount] = {};
};

}  // namespace hermes::bpf
