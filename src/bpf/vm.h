// The eBPF virtual machine: loads a verified program with its bound maps
// and executes it against a ReuseportCtx (or raw context buffer).
//
// Execution model matches the kernel interpreter: 64-bit registers, 512-byte
// zeroed stack per run, helpers dispatched by id, hard instruction budget.
// Loads/stores are additionally bounds-checked at runtime (defense in depth
// on top of the verifier; a violation is a bug in this repo, so it aborts).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "bpf/insn.h"
#include "bpf/maps.h"
#include "bpf/verifier.h"

namespace hermes::bpf {

// A loaded, verified program. Create via Vm::load().
class LoadedProgram {
 public:
  const Program& insns() const { return prog_; }
  std::span<Map* const> maps() const { return maps_; }

 private:
  friend class Vm;
  Program prog_;
  std::vector<Map*> maps_;
};

class Vm {
 public:
  // Time source for the KtimeGetNs helper; the simulator wires the sim
  // clock in, the live demo wires CLOCK_MONOTONIC.
  using TimeFn = std::function<uint64_t()>;
  using RandFn = std::function<uint32_t()>;

  Vm() = default;
  void set_time_fn(TimeFn fn) { time_fn_ = std::move(fn); }
  void set_rand_fn(RandFn fn) { rand_fn_ = std::move(fn); }

  // Verify + bind maps. Returns nullptr and fills `error` on rejection.
  std::unique_ptr<LoadedProgram> load(Program prog, std::vector<Map*> maps,
                                      std::string* error = nullptr) const;

  struct RunResult {
    uint64_t ret = 0;          // r0 at exit
    uint64_t insns_executed = 0;
  };

  // Run against a reuseport context. The program may call
  // bpf_sk_select_reuseport, which records its decision into `ctx`.
  RunResult run(const LoadedProgram& prog, ReuseportCtx& ctx) const;

  // Cumulative executed-instruction counter across run() calls (overhead
  // accounting for Table 5).
  uint64_t total_insns() const { return total_insns_; }

 private:
  TimeFn time_fn_;
  RandFn rand_fn_;
  mutable uint64_t total_insns_ = 0;
};

}  // namespace hermes::bpf
