// Backend-side machinery from the paper's deployment experiences (§7).
//
// 1. RoundRobinBackends — after a backend-list update, every worker used to
//    restart round-robin from index 0; with Hermes spreading requests over
//    *all* workers this synchronized restart overloads the first few
//    backends ("2-3x the traffic of others"). The fix: randomize each
//    worker's start offset on every list update.
//
// 2. BackendConnectionPool — Hermes spreads traffic across workers, which
//    fragments per-worker backend connection pools and lowers reuse
//    (costly TCP/TLS handshakes to on-prem IDCs). The fix: share the pool
//    across workers. The pool holds *identified* idle connections per
//    (partition, backend): bounded per backend, reused LIFO (the warmest
//    connection first — best TCP cwnd / TLS session state), with cold
//    connections expired from the FIFO end after an idle timeout. The
//    data plane (sim::DataPlane) drives the time-aware API; the original
//    boolean counting API is retained for the ablation bench.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <unordered_map>
#include <vector>

#include "util/check.h"
#include "util/types.h"

namespace hermes::core {

using BackendId = uint32_t;

class RoundRobinBackends {
 public:
  // randomize_start: the paper's fix; off reproduces the incident.
  RoundRobinBackends(uint32_t num_workers, bool randomize_start)
      : randomize_start_(randomize_start), next_(num_workers, 0) {}

  // Controller pushes a new backend list to every worker simultaneously.
  // `seed` stands in for each worker's local entropy source.
  void update_backends(std::vector<BackendId> backends, uint64_t seed) {
    backends_ = std::move(backends);
    for (size_t w = 0; w < next_.size(); ++w) {
      if (randomize_start_ && !backends_.empty()) {
        // splitmix-style per-worker offset
        uint64_t z = seed + 0x9e3779b97f4a7c15ull * (w + 1);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        next_[w] = static_cast<uint32_t>((z ^ (z >> 31)) % backends_.size());
      } else {
        next_[w] = 0;  // the synchronized-restart bug
      }
    }
  }

  BackendId pick(WorkerId w) {
    HERMES_CHECK(!backends_.empty() && w < next_.size());
    const BackendId b = backends_[next_[w] % backends_.size()];
    next_[w] = (next_[w] + 1) % static_cast<uint32_t>(backends_.size());
    return b;
  }

  size_t num_backends() const { return backends_.size(); }

 private:
  bool randomize_start_;
  std::vector<BackendId> backends_;
  std::vector<uint32_t> next_;  // per-worker RR cursor
};

class BackendConnectionPool {
 public:
  struct Config {
    // shared=false: one pool partition per worker (reuse only within the
    // worker). shared=true: one pool for the whole LB (the paper's fix).
    bool shared = true;
    uint32_t num_workers = 1;
    // Bound on idle connections kept per (partition, backend); releasing
    // past the bound evicts the coldest idle connection.
    uint32_t max_idle_per_backend = 32;
    // Idle connections older than this are expired (closed) before
    // reuse is considered. ns()==0 disables expiry.
    SimTime idle_expiry = SimTime::seconds(30);
  };

  // An idle backend connection. `id` identifies the simulated TCP
  // connection across acquire/release cycles.
  struct PooledConn {
    uint64_t id = 0;
    SimTime idle_since{};
  };

  explicit BackendConnectionPool(const Config& cfg)
      : cfg_(cfg), idle_(cfg.shared ? 1 : cfg.num_workers) {}

  // Legacy ablation-bench constructor: unbounded, no expiry.
  BackendConnectionPool(uint32_t num_workers, bool shared)
      : BackendConnectionPool(Config{shared, num_workers, UINT32_MAX,
                                     SimTime{}}) {}

  // A worker needs a backend connection: expire cold idle connections,
  // then reuse the warmest (LIFO). nullopt → the caller "establishes" a
  // new connection (handshake cost charged by the caller).
  std::optional<PooledConn> acquire(WorkerId w, BackendId b, SimTime now) {
    auto& dq = idle_[partition(w)][b];
    expire_bucket(dq, now);
    if (!dq.empty()) {
      PooledConn c = dq.back();
      dq.pop_back();
      --idle_total_;
      ++stats_.hits;
      return c;
    }
    ++stats_.misses;
    return std::nullopt;
  }

  // Request done; the backend connection goes idle for reuse. Pass the
  // PooledConn id from acquire (or 0 for a newly established one — an
  // identity is minted).
  void release(WorkerId w, BackendId b, uint64_t conn_id, SimTime now) {
    auto& dq = idle_[partition(w)][b];
    if (dq.size() >= cfg_.max_idle_per_backend) {
      dq.pop_front();  // evict the coldest
      ++stats_.evictions;
      --idle_total_;
    }
    dq.push_back(PooledConn{conn_id != 0 ? conn_id : next_id_++, now});
    ++idle_total_;
  }

  // Legacy counting API (no clock): reuse-or-miss accounting only.
  bool acquire(WorkerId w, BackendId b) {
    return acquire(w, b, SimTime{}).has_value();
  }
  void release(WorkerId w, BackendId b) { release(w, b, 0, SimTime{}); }

  // Proactively expires idle connections across all partitions.
  void expire_idle(SimTime now) {
    for (auto& part : idle_) {
      for (auto& [b, dq] : part) expire_bucket(dq, now);
    }
  }

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;  // == new handshakes
    uint64_t expiries = 0;
    uint64_t evictions = 0;
    double hit_rate() const {
      const uint64_t total = hits + misses;
      return total ? static_cast<double>(hits) / static_cast<double>(total) : 0;
    }
  };
  const Stats& stats() const { return stats_; }

  // Current idle connections across the pool (the occupancy gauge).
  uint64_t idle_total() const { return idle_total_; }
  const Config& config() const { return cfg_; }

 private:
  size_t partition(WorkerId w) const { return cfg_.shared ? 0 : w; }

  void expire_bucket(std::deque<PooledConn>& dq, SimTime now) {
    if (cfg_.idle_expiry.ns() <= 0) return;
    while (!dq.empty() &&
           now.ns() - dq.front().idle_since.ns() >= cfg_.idle_expiry.ns()) {
      dq.pop_front();
      ++stats_.expiries;
      --idle_total_;
    }
  }

  Config cfg_;
  std::vector<std::unordered_map<BackendId, std::deque<PooledConn>>> idle_;
  uint64_t next_id_ = 1;
  uint64_t idle_total_ = 0;
  Stats stats_;
};

}  // namespace hermes::core
