// Backend-side machinery from the paper's deployment experiences (§7).
//
// 1. RoundRobinBackends — after a backend-list update, every worker used to
//    restart round-robin from index 0; with Hermes spreading requests over
//    *all* workers this synchronized restart overloads the first few
//    backends ("2-3x the traffic of others"). The fix: randomize each
//    worker's start offset on every list update.
//
// 2. SharedConnectionPool — Hermes spreads traffic across workers, which
//    fragments per-worker backend connection pools and lowers reuse
//    (costly TCP/TLS handshakes to on-prem IDCs). The fix: share the pool
//    across workers. Modeled with per-backend idle-connection counts and
//    hit/miss accounting; the ablation bench compares per-worker vs shared.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "util/check.h"
#include "util/types.h"

namespace hermes::core {

using BackendId = uint32_t;

class RoundRobinBackends {
 public:
  // randomize_start: the paper's fix; off reproduces the incident.
  RoundRobinBackends(uint32_t num_workers, bool randomize_start)
      : randomize_start_(randomize_start), next_(num_workers, 0) {}

  // Controller pushes a new backend list to every worker simultaneously.
  // `seed` stands in for each worker's local entropy source.
  void update_backends(std::vector<BackendId> backends, uint64_t seed) {
    backends_ = std::move(backends);
    for (size_t w = 0; w < next_.size(); ++w) {
      if (randomize_start_ && !backends_.empty()) {
        // splitmix-style per-worker offset
        uint64_t z = seed + 0x9e3779b97f4a7c15ull * (w + 1);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        next_[w] = static_cast<uint32_t>((z ^ (z >> 31)) % backends_.size());
      } else {
        next_[w] = 0;  // the synchronized-restart bug
      }
    }
  }

  BackendId pick(WorkerId w) {
    HERMES_CHECK(!backends_.empty() && w < next_.size());
    const BackendId b = backends_[next_[w] % backends_.size()];
    next_[w] = (next_[w] + 1) % static_cast<uint32_t>(backends_.size());
    return b;
  }

  size_t num_backends() const { return backends_.size(); }

 private:
  bool randomize_start_;
  std::vector<BackendId> backends_;
  std::vector<uint32_t> next_;  // per-worker RR cursor
};

class BackendConnectionPool {
 public:
  // shared=false: one pool partition per worker (reuse only within the
  // worker). shared=true: one pool for the whole LB.
  BackendConnectionPool(uint32_t num_workers, bool shared)
      : shared_(shared), idle_(shared ? 1 : num_workers) {}

  // A worker needs a backend connection: reuse an idle one if available,
  // else "establish" a new one (handshake cost charged by the caller).
  // Returns true on reuse.
  bool acquire(WorkerId w, BackendId b) {
    auto& bucket = idle_[partition(w)];
    auto it = bucket.find(b);
    if (it != bucket.end() && it->second > 0) {
      --it->second;
      ++stats_.hits;
      return true;
    }
    ++stats_.misses;
    return false;
  }

  // Request done; the backend connection goes idle for reuse.
  void release(WorkerId w, BackendId b) { ++idle_[partition(w)][b]; }

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;  // == new handshakes
    double hit_rate() const {
      const uint64_t total = hits + misses;
      return total ? static_cast<double>(hits) / static_cast<double>(total) : 0;
    }
  };
  const Stats& stats() const { return stats_; }

 private:
  size_t partition(WorkerId w) const { return shared_ ? 0 : w; }

  bool shared_;
  std::vector<std::unordered_map<BackendId, uint32_t>> idle_;
  Stats stats_;
};

}  // namespace hermes::core
