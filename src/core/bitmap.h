// Worker-selection bitmap operations (paper §5.3.2 / §5.4).
//
// A 64-bit word carries "which workers may accept new connections" from
// userspace to the kernel: bit i set = worker i selected. Reference C++
// implementations live here; the same algorithms are emitted as eBPF
// bytecode in core/dispatch_prog.cc (branch-free, because the verifier
// forbids loops), and a property test pins the two against each other.
#pragma once

#include <cstdint>

#include "util/check.h"
#include "util/types.h"

namespace hermes::core {

using WorkerBitmap = uint64_t;

inline constexpr uint32_t kMaxWorkersPerGroup = 64;

// Hamming weight via the classic bit-slicing reduction ([14] in the paper);
// written out (not __builtin_popcountll) because the eBPF program must use
// this exact sequence and tests compare them step for step.
constexpr uint32_t count_nonzero_bits(uint64_t v) {
  v = v - ((v >> 1) & 0x5555555555555555ull);
  v = (v & 0x3333333333333333ull) + ((v >> 2) & 0x3333333333333333ull);
  v = (v + (v >> 4)) & 0x0f0f0f0f0f0f0f0full;
  return static_cast<uint32_t>((v * 0x0101010101010101ull) >> 56);
}

// Count trailing zeros, branch-free: ctz(x) = popcount((x & -x) - 1).
// Undefined-input convention: ctz(0) = 64.
constexpr uint32_t count_trailing_zeros(uint64_t v) {
  return count_nonzero_bits((v & (0 - v)) - 1);
}

// Position (0-based, from LSB) of the nth set bit, n being 1-indexed.
// Precondition: 1 <= n <= popcount(v). Branch-free: clear the lowest set
// bit n-1 times with arithmetic masks, then ctz — the form the bytecode
// uses (paper [5]: "select the bit position with the given rank").
constexpr uint32_t find_nth_nonzero_bit(uint64_t v, uint32_t n) {
  HERMES_DCHECK(n >= 1 && n <= count_nonzero_bits(v));
  uint64_t x = v;
  for (uint32_t k = 1; k < kMaxWorkersPerGroup; ++k) {
    // mask = all-ones when k < n (another clear is needed), else zero.
    const uint64_t mask = 0 - static_cast<uint64_t>(k < n ? 1 : 0);
    x = (x & (x - 1) & mask) | (x & ~mask);
  }
  return count_trailing_zeros(x);
}

// reciprocal_scale(): uniform map of a u32 onto [0, n) without division
// (include/linux/kernel.h). The kernel precomputes the 4-tuple hash; the
// dispatch program scales it over the selected-worker count.
constexpr uint32_t reciprocal_scale_u32(uint32_t val, uint32_t n) {
  return static_cast<uint32_t>((static_cast<uint64_t>(val) * n) >> 32);
}

inline bool bitmap_test(WorkerBitmap bm, WorkerId w) {
  return w < kMaxWorkersPerGroup && ((bm >> w) & 1u) != 0;
}

inline WorkerBitmap bitmap_set(WorkerBitmap bm, WorkerId w) {
  HERMES_DCHECK(w < kMaxWorkersPerGroup);
  return bm | (1ull << w);
}

}  // namespace hermes::core
