// Tunables of the Hermes control loop, with the paper's production values
// as defaults.
#pragma once

#include <cstdint>

#include "util/types.h"

namespace hermes::core {

// Cascade stages of the coarse-grained filter (Algo. 1).
enum class FilterStage : uint8_t { Time, Connections, PendingEvents };

struct HermesConfig {
  // FilterTime: a worker whose event-loop-entry timestamp is older than
  // this is considered hung and excluded (paper §5.2.2, Algo. 1 line 10).
  // Workers re-enter the loop at least every epoll_wait timeout (5 ms), so
  // the threshold is a small multiple of that.
  SimTime hang_threshold = SimTime::millis(50);

  // FilterCount offset: keep workers with metric < avg + theta, where
  // theta = theta_ratio * avg. Fig. 15 sweeps theta/Avg and lands on 0.5.
  double theta_ratio = 0.5;

  // Kernel-side fine filter: if fewer than this many workers passed the
  // coarse filter, fall back to plain reuseport hashing (Algo. 2 line 4:
  // "if n > 1"). kMinWorkersForDispatch = 2 reproduces that check.
  uint32_t min_workers_for_dispatch = 2;

  // epoll_wait timeout: guarantees a scheduling pass at least this often
  // even with no I/O events (paper §5.3.2 strategy 1).
  SimTime epoll_wait_timeout = SimTime::millis(5);

  // Two-level scheduling (>64 workers): workers per group. 64 fills the
  // bitmap word; smaller values trade balance for cache locality
  // (Appendix C, Fig. A6).
  uint32_t workers_per_group = 64;

  // Change-suppressed sync (DESIGN.md §8): when the fast scheduling path
  // computes a bitmap identical to the group's last push, the M_sel store
  // is skipped — unless the last push is at least this old. The forced
  // refresh bounds the staleness a lost cross-worker race can cause to one
  // interval; the default matches epoll_wait_timeout, the paper's own
  // scheduling-pass frequency floor (§5.3.2).
  SimTime sync_refresh_interval = SimTime::millis(5);

  // Cascade order (paper default: Time -> Connections -> PendingEvents;
  // §5.2.2 justifies the order, the ablation bench swaps it).
  FilterStage stage_order[3] = {FilterStage::Time, FilterStage::Connections,
                                FilterStage::PendingEvents};
  uint32_t num_stages = 3;

  // Proactive degradation (Appendix C, exception case 1): once a worker has
  // been hung longer than `degradation_after`, reset this fraction of its
  // established connections so clients reconnect onto healthy workers.
  SimTime degradation_after = SimTime::millis(500);
  double degradation_reset_fraction = 0.25;
};

}  // namespace hermes::core
