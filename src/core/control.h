// Runtime policy control endpoint (paper Appendix C: "our scheduler
// exposes an HTTP interface that allows dynamic policy updates, supports
// fallbacks to reuseport, and facilitates rapid iteration of future
// scheduling algorithms").
//
// PolicyEndpoint maps HTTP requests onto the live Scheduler configuration:
//
//   GET  /policy                     -> current configuration (JSON)
//   POST /policy/theta?value=0.5     -> set the filter offset ratio
//   POST /policy/hang-ms?value=50    -> set the hang threshold
//   POST /policy/order?value=time,conn,event
//                                    -> set the cascade stage order
//   POST /policy/degradation?fraction=0.25
//                                    -> set the reset fraction
//
// The host (live demo, ops tooling, tests) terminates the TCP/HTTP side
// with http::RequestParser and feeds parsed requests in; this type only
// decides and mutates — it holds no sockets.
#pragma once

#include <charconv>
#include <optional>
#include <string>

#include "core/scheduler.h"
#include "http/parser.h"
#include "http/url.h"
#include "http/response.h"

namespace hermes::core {

class PolicyEndpoint {
 public:
  explicit PolicyEndpoint(Scheduler& scheduler) : scheduler_(scheduler) {}

  http::Response handle(const http::Request& req) {
    if (req.path == "/policy" && req.method == http::Method::Get) {
      return ok(describe());
    }
    if (req.method != http::Method::Post) {
      return error(404, "unknown endpoint");
    }
    if (req.path == "/policy/theta") {
      const auto v = query_double(req, "value");
      if (!v || *v < 0 || *v > 16) return error(400, "theta out of range");
      scheduler_.mutable_config().theta_ratio = *v;
      return ok(describe());
    }
    if (req.path == "/policy/hang-ms") {
      const auto v = query_double(req, "value");
      if (!v || *v <= 0 || *v > 60'000) {
        return error(400, "hang threshold out of range");
      }
      scheduler_.mutable_config().hang_threshold =
          SimTime::from_seconds_f(*v / 1e3);
      return ok(describe());
    }
    if (req.path == "/policy/order") {
      const auto v = query_value(req, "value");
      if (!v) return error(400, "missing order");
      HermesConfig& cfg = scheduler_.mutable_config();
      uint32_t n = 0;
      std::string_view rest{*v};
      while (!rest.empty() && n < 3) {
        const size_t comma = rest.find(',');
        const std::string_view tok = rest.substr(0, comma);
        if (tok == "time") cfg.stage_order[n] = FilterStage::Time;
        else if (tok == "conn") cfg.stage_order[n] = FilterStage::Connections;
        else if (tok == "event") {
          cfg.stage_order[n] = FilterStage::PendingEvents;
        } else {
          return error(400, "unknown stage (want time|conn|event)");
        }
        ++n;
        if (comma == std::string_view::npos) break;
        rest.remove_prefix(comma + 1);
      }
      if (n == 0) return error(400, "empty order");
      cfg.num_stages = n;
      return ok(describe());
    }
    if (req.path == "/policy/degradation") {
      const auto v = query_double(req, "fraction");
      if (!v || *v < 0 || *v > 1) return error(400, "fraction out of range");
      scheduler_.mutable_config().degradation_reset_fraction = *v;
      return ok(describe());
    }
    return error(404, "unknown endpoint");
  }

  // Current configuration as a small JSON document.
  std::string describe() const {
    const HermesConfig& cfg = scheduler_.config();
    std::string order;
    for (uint32_t i = 0; i < cfg.num_stages; ++i) {
      if (i) order += ',';
      switch (cfg.stage_order[i]) {
        case FilterStage::Time: order += "time"; break;
        case FilterStage::Connections: order += "conn"; break;
        case FilterStage::PendingEvents: order += "event"; break;
      }
    }
    std::string out = "{";
    out += "\"theta_ratio\":" + format(cfg.theta_ratio);
    out += ",\"hang_threshold_ms\":" + format(cfg.hang_threshold.ms_f());
    out += ",\"order\":\"" + order + "\"";
    out += ",\"min_workers_for_dispatch\":" +
           std::to_string(cfg.min_workers_for_dispatch);
    out += ",\"degradation_reset_fraction\":" +
           format(cfg.degradation_reset_fraction);
    out += "}";
    return out;
  }

 private:
  static std::string format(double v) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%g", v);
    return buf;
  }

  static std::optional<std::string> query_value(const http::Request& req,
                                                std::string_view key) {
    return http::query_param(req.query, key);  // percent-decoded
  }

  static std::optional<double> query_double(const http::Request& req,
                                            std::string_view key) {
    const auto v = query_value(req, key);
    if (!v) return std::nullopt;
    // std::from_chars<double> is available in libstdc++ >= 11.
    double out = 0;
    const auto [p, ec] = std::from_chars(v->data(), v->data() + v->size(), out);
    if (ec != std::errc{} || p != v->data() + v->size()) return std::nullopt;
    return out;
  }

  static http::Response ok(std::string body) {
    http::Response r;
    r.set_status(200)
        .add_header("Content-Type", "application/json")
        .set_body(std::move(body));
    return r;
  }
  static http::Response error(int status, std::string msg) {
    http::Response r;
    r.set_status(status).set_body(std::move(msg));
    return r;
  }

  Scheduler& scheduler_;
};

}  // namespace hermes::core
