// Proactive service degradation (paper Appendix C, exception case 1).
//
// Established connections cannot migrate between workers (per-core
// affinity), so when a worker stays hung past a threshold Hermes resets a
// fraction of its connections: clients reconnect, and the *new* connections
// are dispatched to healthy workers by the normal closed loop. "L7 users
// prioritize the eventual success of their requests ... even at the expense
// of L4 connection stability."
//
// Pure decision logic: the host (simulator or live demo) supplies the hung
// worker's connection ids and applies the resets it returns.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/config.h"
#include "core/wst.h"
#include "util/types.h"

namespace hermes::core {

class DegradationPolicy {
 public:
  explicit DegradationPolicy(const HermesConfig& cfg) : cfg_(cfg) {}

  // True when `w` has been out of its event loop long enough to warrant
  // degradation (a stronger condition than the scheduler's hang filter).
  bool should_degrade(const WorkerStatusTable& wst, WorkerId w,
                      SimTime now) const {
    const int64_t stale = now.ns() - wst.read(w).loop_enter_ns;
    return stale > cfg_.degradation_after.ns();
  }

  // Pick the subset of `conns` to RST: every k-th connection such that
  // ~reset_fraction of them are chosen, deterministically spread (no RNG:
  // the same decision must be reproducible across the embedded schedulers).
  // `salt` decorrelates successive rounds so repeated degradation does not
  // keep resetting the same survivors.
  std::vector<uint64_t> pick_resets(std::span<const uint64_t> conns,
                                    uint64_t salt = 0) const {
    std::vector<uint64_t> out;
    if (conns.empty() || cfg_.degradation_reset_fraction <= 0.0) return out;
    const double f = std::min(1.0, cfg_.degradation_reset_fraction);
    const auto stride = static_cast<size_t>(1.0 / f);
    out.reserve(conns.size() / stride + 1);
    for (size_t i = salt % stride; i < conns.size(); i += stride) {
      out.push_back(conns[i]);
    }
    return out;
  }

  struct Stats {
    uint64_t degradations = 0;  // times a worker was degraded
    uint64_t resets = 0;        // connections reset in total
  };
  Stats& stats() { return stats_; }
  const Stats& stats() const { return stats_; }

 private:
  HermesConfig cfg_;
  Stats stats_;
};

}  // namespace hermes::core
