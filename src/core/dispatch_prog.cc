#include "core/dispatch_prog.h"

#include "bpf/assembler.h"
#include "util/check.h"

namespace hermes::core {

namespace emit {

using bpf::Assembler;
using bpf::HelperId;
using bpf::R;
using namespace hermes::bpf;  // r0..r10 register names

void popcount(Assembler& a, R dst, R src, R scratch) {
  HERMES_CHECK(dst.idx != src.idx && dst.idx != scratch.idx &&
               src.idx != scratch.idx);
  a.mov(dst, src);
  a.rsh(dst, 1);
  a.ld_imm64(scratch, 0x5555555555555555ull);
  a.and_(dst, scratch);
  a.sub(src, dst);  // src = a = v - ((v>>1) & 0x5555...)
  a.mov(dst, src);
  a.rsh(dst, 2);
  a.ld_imm64(scratch, 0x3333333333333333ull);
  a.and_(dst, scratch);
  a.and_(src, scratch);
  a.add(dst, src);  // dst = b = (a & 0x33..) + ((a>>2) & 0x33..)
  a.mov(src, dst);
  a.rsh(src, 4);
  a.add(dst, src);  // b + (b>>4)
  a.ld_imm64(scratch, 0x0f0f0f0f0f0f0f0full);
  a.and_(dst, scratch);  // c
  a.ld_imm64(scratch, 0x0101010101010101ull);
  a.mul(dst, scratch);
  a.rsh(dst, 56);
}

void dispatch_prologue(Assembler& a, const DispatchProgramParams& p) {
  a.mov(r6, r1);  // save ctx

  // ---- level-1: group selection -------------------------------------
  if (p.num_groups > 1) {
    // group = reciprocal_scale(ctx.hash2, num_groups); hash2 covers only
    // (DIP, Dport), so one destination service always lands in one group.
    a.ldx_w(r7, r6, bpf::kCtxOffHash2);
    a.mul(r7, static_cast<int64_t>(p.num_groups));
    a.rsh(r7, 32);
  } else {
    a.mov(r7, 0);
  }

  // ---- load the group's bitmap from M_sel ----------------------------
  a.stx_w(r10, -4, r7);  // key = group
  a.ld_map_fd(r1, p.sel_map_slot);
  a.mov(r2, r10);
  a.add(r2, -4);
  a.call(HelperId::MapLookupElem);
  a.jeq(r0, 0, "fallback");
  a.ldx_dw(r8, r0, 0);  // C = *(u64*)value

  // ---- n = CountNonZeroBits(C) ----------------------------------------
  a.mov(r2, r8);
  popcount(a, /*dst=*/r9, /*src=*/r2, /*scratch=*/r3);

  // Algo. 2 line 4: not enough coarse-filtered workers -> plain reuseport.
  a.jlt(r9, static_cast<int64_t>(p.min_workers), "fallback");
}

void rank_select(Assembler& a, const std::string& tag) {
  const std::string done = "rank_done_" + tag;
  // Clear the lowest set bit (Nth-1) times; forward-only early exit when
  // the remaining rank is exhausted (paper ref [5]).
  a.mov(r2, r8);
  for (int64_t k = 1; k < static_cast<int64_t>(kMaxWorkersPerGroup); ++k) {
    a.jle(r1, k, done);  // Nth <= k: enough bits cleared
    a.mov(r4, r2);
    a.sub(r4, 1);
    a.and_(r2, r4);  // v &= v - 1
  }
  a.label(done);
  // position = ctz(v) = popcount((v & -v) - 1)
  a.mov(r3, r2);
  a.neg(r3);
  a.and_(r3, r2);
  a.sub(r3, 1);
  popcount(a, /*dst=*/r2, /*src=*/r3, /*scratch=*/r4);
}

void dispatch_epilogue(Assembler& a, const DispatchProgramParams& p, R pos,
                       bool emit_guard) {
  HERMES_CHECK(pos.idx != r6.idx && pos.idx != r7.idx && pos.idx != r10.idx);
  if (emit_guard) {
    // Hardening guard: a corrupt bitmap with bits set at or above
    // workers_per_group would otherwise index into another group's socket
    // range (previously it fell back only via sk_select ENOENT). Bailing
    // out here keeps the selected index provably below num_groups *
    // workers_per_group — bpf/analysis/prove.cc machine-checks exactly
    // this bound, which interval reasoning alone cannot recover from the
    // popcount's multiply-overflow.
    a.jge(pos, static_cast<int64_t>(p.workers_per_group), "fallback");
  }

  // ---- global worker id -> socket --------------------------------------
  a.mul(r7, static_cast<int64_t>(p.workers_per_group));
  a.add(r7, pos);
  a.stx_w(r10, -8, r7);  // key = worker id
  a.mov(r1, r6);
  a.ld_map_fd(r2, p.sock_map_slot);
  a.mov(r3, r10);
  a.add(r3, -8);
  a.mov(r4, 0);
  a.call(HelperId::SkSelectReuseport);
  a.jne(r0, 0, "fallback");  // no socket registered for that id
  a.mov(r0, static_cast<int64_t>(bpf::kRetUseSelection));
  a.exit();

  a.label("fallback");
  a.mov(r0, static_cast<int64_t>(bpf::kRetFallback));
  a.exit();
}

}  // namespace emit

bpf::Program build_dispatch_program(const DispatchProgramParams& p) {
  HERMES_CHECK(p.num_groups >= 1);
  HERMES_CHECK(p.workers_per_group >= 1 &&
               p.workers_per_group <= kMaxWorkersPerGroup);
  HERMES_CHECK(p.min_workers >= 1);

  using namespace hermes::bpf;  // r0..r10 register names
  Assembler a;
  // Register plan: r6 = ctx, r7 = group index (later: global worker id),
  // r8 = selection bitmap C, r9 = n = popcount(C); r0-r5 scratch.
  emit::dispatch_prologue(a, p);

  // ---- Nth = reciprocal_scale(ctx.hash, n) + 1 (1-indexed rank) --------
  a.ldx_w(r1, r6, bpf::kCtxOffHash);
  a.mul(r1, r9);
  a.rsh(r1, 32);
  a.add(r1, 1);

  // ---- FindNthNonZeroBit(C, Nth) ---------------------------------------
  emit::rank_select(a, "cascade");

  emit::dispatch_epilogue(a, p, r2, /*emit_guard=*/true);
  return a.finish();
}

WorkerId reference_dispatch(const DispatchProgramParams& p,
                            const uint64_t* group_bitmaps, uint32_t hash,
                            uint32_t hash2) {
  uint32_t group = 0;
  if (p.num_groups > 1) {
    group = reciprocal_scale_u32(hash2, p.num_groups);
  }
  const uint64_t bitmap = group_bitmaps[group];
  const uint32_t n = count_nonzero_bits(bitmap);
  if (n < p.min_workers) return kInvalidWorker;
  const uint32_t nth = reciprocal_scale_u32(hash, n) + 1;
  const uint32_t pos = find_nth_nonzero_bit(bitmap, nth);
  // Mirror of the program's hardening guard: out-of-group bitmap bits
  // mean fallback, never an index into another group's socket range.
  if (pos >= p.workers_per_group) return kInvalidWorker;
  return group * p.workers_per_group + pos;
}

}  // namespace hermes::core
