// The "few added lines" of Fig. 9, packaged as a tiny API.
//
// A worker integrating Hermes into an existing epoll event loop calls:
//
//   while (true) {
//     hooks.on_loop_enter(now);                       // + shm_avail_update
//     n = epoll_wait(...);
//     hooks.on_events_returned(n);                    // + shm_busy_count(n)
//     for (event : events) {
//       handle(event);                                //   accept path calls
//       hooks.on_event_processed();                   //   on_conn_open/close
//     }
//     runtime.schedule_and_sync(now);                 // + schedule_and_sync()
//   }
//
// This mirrors exactly where the paper instruments the loop; the simulator's
// Worker and the live demo both go through this type, so the instrumentation
// points are tested once and reused.
#pragma once

#include "core/fault_injection.h"
#include "core/wst.h"
#include "obs/metrics.h"
#include "util/types.h"

namespace hermes::core {

class EventLoopHooks {
 public:
  EventLoopHooks(WorkerStatusTable wst, WorkerId self,
                 FaultInjector* faults = nullptr,
                 obs::PipelineMetrics* metrics = nullptr)
      : wst_(wst), self_(self), faults_(faults), metrics_(metrics) {}

  WorkerId self() const { return self_; }

  // Fig. 9 line 12: entering the while loop (hang detection heartbeat).
  // A fault injector may lag the timestamp or suppress the write — a
  // negative adjusted time means "the worker wedged before this update".
  void on_loop_enter(SimTime now) {
    if (faults_ != nullptr) {
      now = faults_->on_avail_update(self_, now);
      if (now < SimTime::zero()) return;
    }
    wst_.update_avail(self_, now);
    if (metrics_ != nullptr) metrics_->wst_avail_updates->inc(self_);
  }

  // Fig. 9 line 14: epoll_wait returned `n` events.
  void on_events_returned(int64_t n) {
    if (n > 0) {
      wst_.add_pending(self_, n);
      if (metrics_ != nullptr) metrics_->wst_pending_updates->inc(self_);
    }
  }

  // Fig. 9 line 18: one event handled.
  void on_event_processed() {
    wst_.add_pending(self_, -1);
    if (metrics_ != nullptr) metrics_->wst_pending_updates->inc(self_);
  }

  // Fig. 9 line 25 / 37: connection accepted / closed.
  void on_conn_open() {
    wst_.add_connections(self_, 1);
    if (metrics_ != nullptr) metrics_->wst_conn_updates->inc(self_);
  }
  void on_conn_close() {
    wst_.add_connections(self_, -1);
    if (metrics_ != nullptr) metrics_->wst_conn_updates->inc(self_);
  }

  const WorkerStatusTable& wst() const { return wst_; }

 private:
  WorkerStatusTable wst_;
  WorkerId self_;
  FaultInjector* faults_ = nullptr;          // nullable; not owned
  obs::PipelineMetrics* metrics_ = nullptr;  // nullable; not owned
};

}  // namespace hermes::core
