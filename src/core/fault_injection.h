// Fault-injection seam for the syscall-boundary side effects Hermes
// performs: WST heartbeat writes (shm) and bitmap publishes into the eBPF
// selection map (bpf() map-update). Torture tests install a scripted
// implementation (testing/fault_injection.h) to model wedged workers,
// skewed clocks, and dropped or delayed syncs; production paths pass
// nullptr and pay nothing.
//
// Both hooks sit exactly where the simulator would otherwise touch shared
// state, so a fault changes what the rest of the system OBSERVES, not how
// the code under test executes.
#pragma once

#include <cstdint>

#include "util/types.h"

namespace hermes::core {

class FaultInjector {
 public:
  virtual ~FaultInjector() = default;

  // Worker `w` is about to write its availability heartbeat at `now`.
  // Return the timestamp to actually write — `now` (healthy), an older
  // time (skewed/lagged clock), or any negative time to suppress the
  // write entirely (the worker wedged before reaching the update).
  virtual SimTime on_avail_update(WorkerId /*w*/, SimTime now) { return now; }

  // Worker `w` is about to publish `bitmap` into selection-map slot
  // `group`. Return false to suppress the publish (a dropped or held-back
  // bpf() syscall); the caller must behave as if the sync never happened.
  virtual bool on_bitmap_sync(WorkerId w, uint32_t group, uint64_t bitmap) {
    (void)w;
    (void)group;
    (void)bitmap;
    return true;
  }
};

}  // namespace hermes::core
