#include "core/hermes.h"

#include <algorithm>
#include <cstdlib>

#include "util/check.h"

namespace hermes::core {

namespace {

uint32_t groups_for(uint32_t workers, uint32_t wpg) {
  return (workers + wpg - 1) / wpg;
}

}  // namespace

HermesRuntime::HermesRuntime(const Options& opts)
    : num_workers_(opts.num_workers),
      wpg_(std::min(opts.config.workers_per_group, kMaxWorkersPerGroup)),
      num_groups_(groups_for(opts.num_workers, wpg_)),
      owned_wst_(),
      wst_([&] {
        void* mem = opts.wst_memory;
        if (mem == nullptr) {
          const size_t bytes =
              WorkerStatusTable::required_bytes(opts.num_workers);
          // 64-byte alignment for the cache-line slot layout.
          owned_wst_.resize(bytes + 64);
          auto addr = reinterpret_cast<uintptr_t>(owned_wst_.data());
          mem = reinterpret_cast<void*>((addr + 63) & ~uintptr_t{63});
        }
        return WorkerStatusTable::init(mem, opts.num_workers);
      }()),
      faults_(opts.faults),
      obs_(opts.obs),
      scheduler_(opts.config),
      sel_map_(std::make_unique<bpf::ArrayMap>(num_groups_, sizeof(uint64_t))),
      last_sync_ns_(num_groups_) {
  HERMES_CHECK(num_workers_ > 0);
  for (auto& t : last_sync_ns_) t.store(-1, std::memory_order_relaxed);
}

ScheduleResult HermesRuntime::schedule_and_sync(WorkerId self, SimTime now) {
  HERMES_CHECK(self < num_workers_);
  const uint32_t group = self / wpg_;
  const WorkerId base = group * wpg_;
  const uint32_t limit = std::min(wpg_, num_workers_ - base);

  const ScheduleResult res = scheduler_.schedule(wst_, now, base, limit);
  ++counters_.schedules;
  counters_.workers_selected_sum += res.selected;

  if (obs_ != nullptr) {
    obs::PipelineMetrics& m = obs_->metrics;
    m.filter_runs->inc(self);
    m.filter_after_time->add(self, res.after_time);
    m.filter_after_conn->add(self, res.after_conn);
    m.filter_after_event->add(self, res.after_event);
    m.filter_selected->record(self, res.selected);
    if (res.selected < scheduler_.config().min_workers_for_dispatch) {
      m.filter_low_survivor->inc(self);
    }
    // Stage survivor counts packed into one word (21 bits each is plenty
    // for <=64-worker groups; the packing exists so one ring record carries
    // the whole verdict).
    const uint64_t packed = (static_cast<uint64_t>(res.after_time) << 42) |
                            (static_cast<uint64_t>(res.after_conn) << 21) |
                            static_cast<uint64_t>(res.after_event);
    obs_->traces.write(self, obs::TraceType::FilterVerdict, now, res.selected,
                       res.bitmap, packed);
  }

  // Userspace -> kernel decision sync: one atomic 8-byte store into the
  // eBPF array map. Multiple workers may race here; last write wins, which
  // is exactly the paper's lock-free design (freshest status is best).
  if (faults_ != nullptr && !faults_->on_bitmap_sync(self, group, res.bitmap)) {
    ++counters_.syncs_dropped;
    if (obs_ != nullptr) obs_->metrics.sync_dropped->inc(self);
    return res;
  }
  sel_map_->store_u64(group, res.bitmap);
  ++counters_.syncs;
  if (obs_ != nullptr) {
    obs_->metrics.sync_published->inc(self);
    const int64_t prev =
        last_sync_ns_[group].exchange(now.ns(), std::memory_order_relaxed);
    const int64_t gap = prev >= 0 ? now.ns() - prev : 0;
    if (prev >= 0 && gap >= 0) {
      obs_->metrics.sync_gap_ns->record(self, static_cast<uint64_t>(gap));
    }
    obs_->traces.write(self, obs::TraceType::BitmapSync, now, group,
                       res.bitmap, static_cast<uint64_t>(gap < 0 ? 0 : gap));
  }
  return res;
}

PortAttachment HermesRuntime::attach_port(
    const std::vector<uint64_t>& worker_cookies) {
  HERMES_CHECK_MSG(worker_cookies.size() == num_workers_,
                   "one socket cookie per worker required");
  PortAttachment att;
  att.sock_map = std::make_unique<bpf::ReuseportSockArray>(num_workers_);
  for (uint32_t w = 0; w < num_workers_; ++w) {
    HERMES_CHECK(att.sock_map->update(w, worker_cookies[w]));
  }

  DispatchProgramParams params;
  params.sel_map_slot = 0;
  params.sock_map_slot = 1;
  params.num_groups = num_groups_;
  params.workers_per_group = wpg_;
  params.min_workers = scheduler_.config().min_workers_for_dispatch;

  std::string err;
  att.program = vm_.load(build_dispatch_program(params),
                         {sel_map_.get(), att.sock_map.get()}, &err);
  HERMES_CHECK_MSG(att.program != nullptr, err.c_str());
  return att;
}

}  // namespace hermes::core
