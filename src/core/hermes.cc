#include "core/hermes.h"

#include <algorithm>
#include <cstdlib>

#include "util/check.h"

namespace hermes::core {

namespace {

uint32_t groups_for(uint32_t workers, uint32_t wpg) {
  return (workers + wpg - 1) / wpg;
}

}  // namespace

HermesRuntime::HermesRuntime(const Options& opts)
    : num_workers_(opts.num_workers),
      wpg_(std::min(opts.config.workers_per_group, kMaxWorkersPerGroup)),
      num_groups_(groups_for(opts.num_workers, wpg_)),
      owned_wst_(),
      wst_([&] {
        void* mem = opts.wst_memory;
        if (mem == nullptr) {
          const size_t bytes =
              WorkerStatusTable::required_bytes(opts.num_workers);
          // 64-byte alignment for the cache-line slot layout.
          owned_wst_.resize(bytes + 64);
          auto addr = reinterpret_cast<uintptr_t>(owned_wst_.data());
          mem = reinterpret_cast<void*>((addr + 63) & ~uintptr_t{63});
        }
        return WorkerStatusTable::init(mem, opts.num_workers);
      }()),
      faults_(opts.faults),
      scheduler_(opts.config),
      sel_map_(std::make_unique<bpf::ArrayMap>(num_groups_, sizeof(uint64_t))) {
  HERMES_CHECK(num_workers_ > 0);
}

ScheduleResult HermesRuntime::schedule_and_sync(WorkerId self, SimTime now) {
  HERMES_CHECK(self < num_workers_);
  const uint32_t group = self / wpg_;
  const WorkerId base = group * wpg_;
  const uint32_t limit = std::min(wpg_, num_workers_ - base);

  const ScheduleResult res = scheduler_.schedule(wst_, now, base, limit);
  ++counters_.schedules;
  counters_.workers_selected_sum += res.selected;

  // Userspace -> kernel decision sync: one atomic 8-byte store into the
  // eBPF array map. Multiple workers may race here; last write wins, which
  // is exactly the paper's lock-free design (freshest status is best).
  if (faults_ != nullptr && !faults_->on_bitmap_sync(self, group, res.bitmap)) {
    ++counters_.syncs_dropped;
    return res;
  }
  sel_map_->store_u64(group, res.bitmap);
  ++counters_.syncs;
  return res;
}

PortAttachment HermesRuntime::attach_port(
    const std::vector<uint64_t>& worker_cookies) {
  HERMES_CHECK_MSG(worker_cookies.size() == num_workers_,
                   "one socket cookie per worker required");
  PortAttachment att;
  att.sock_map = std::make_unique<bpf::ReuseportSockArray>(num_workers_);
  for (uint32_t w = 0; w < num_workers_; ++w) {
    HERMES_CHECK(att.sock_map->update(w, worker_cookies[w]));
  }

  DispatchProgramParams params;
  params.sel_map_slot = 0;
  params.sock_map_slot = 1;
  params.num_groups = num_groups_;
  params.workers_per_group = wpg_;
  params.min_workers = scheduler_.config().min_workers_for_dispatch;

  std::string err;
  att.program = vm_.load(build_dispatch_program(params),
                         {sel_map_.get(), att.sock_map.get()}, &err);
  HERMES_CHECK_MSG(att.program != nullptr, err.c_str());
  return att;
}

}  // namespace hermes::core
