#include "core/hermes.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>

#include "bpf/analysis/prove.h"
#include "bpf/jit/validate/validate.h"
#include "util/check.h"

namespace hermes::core {

namespace {

uint32_t groups_for(uint32_t workers, uint32_t wpg) {
  return (workers + wpg - 1) / wpg;
}

}  // namespace

HermesRuntime::HermesRuntime(const Options& opts)
    : num_workers_(opts.num_workers),
      wpg_(std::min(opts.config.workers_per_group, kMaxWorkersPerGroup)),
      num_groups_(groups_for(opts.num_workers, wpg_)),
      owned_wst_(),
      wst_([&] {
        void* mem = opts.wst_memory;
        if (mem == nullptr) {
          const size_t bytes =
              WorkerStatusTable::required_bytes(opts.num_workers);
          // 64-byte alignment for the cache-line slot layout.
          owned_wst_.resize(bytes + 64);
          auto addr = reinterpret_cast<uintptr_t>(owned_wst_.data());
          mem = reinterpret_cast<void*>((addr + 63) & ~uintptr_t{63});
        }
        return WorkerStatusTable::init(mem, opts.num_workers);
      }()),
      faults_(opts.faults),
      obs_(opts.obs),
      scheduler_(opts.config),
      sel_map_(std::make_unique<bpf::ArrayMap>(num_groups_, sizeof(uint64_t))),
      policy_(make_policy(opts.policy, PolicyConfig{opts.worker_weights})),
      aux_map_(policy_->aux_value_bytes() > 0
                   ? std::make_unique<bpf::ArrayMap>(
                         num_groups_, policy_->aux_value_bytes())
                   : nullptr),
      last_sync_ns_(num_groups_),
      last_pushed_bitmap_(num_groups_),
      last_push_ns_(num_groups_),
      gather_enter_(num_workers_),
      gather_pending_(num_workers_),
      gather_conns_(num_workers_) {
  HERMES_CHECK(num_workers_ > 0);
  HERMES_CHECK(policy_->aux_words() <= kMaxWorkersPerGroup);
  for (auto& t : last_sync_ns_) t.store(-1, std::memory_order_relaxed);
  for (auto& t : last_push_ns_) t.store(-1, std::memory_order_relaxed);
}

ScheduleResult HermesRuntime::schedule_and_sync(WorkerId self, SimTime now) {
  HERMES_CHECK(self < num_workers_);
  const uint32_t group = self / wpg_;
  const WorkerId base = group * wpg_;
  const uint32_t limit = std::min(wpg_, num_workers_ - base);

  ScheduleResult res;
  if (obs_ != nullptr) {
    const auto t0 = std::chrono::steady_clock::now();
    res = scheduler_.schedule(wst_, now, base, limit);
    const auto dt = std::chrono::steady_clock::now() - t0;
    obs_->metrics.sched_fast_path_ns->add(
        self, static_cast<uint64_t>(
                  std::chrono::duration_cast<std::chrono::nanoseconds>(dt)
                      .count()));
  } else {
    res = scheduler_.schedule(wst_, now, base, limit);
  }
  if (aux_map_ != nullptr) {
    // Aux policies re-gather the group slice onto the stack (the
    // scheduler's own gather is internal, and member scratch would race
    // across worker threads). One extra SoA scan, aux policies only.
    int64_t enter[kMaxWorkersPerGroup];
    int64_t pending[kMaxWorkersPerGroup];
    int64_t conns[kMaxWorkersPerGroup];
    wst_.gather(base, limit, enter, pending, conns);
    refresh_aux(self, group, base, limit, now, res, enter, pending, conns);
  }
  finish_sync(self, group, now, res);
  return res;
}

void HermesRuntime::schedule_all_groups(WorkerId self, SimTime now,
                                        ScheduleResult* out) {
  HERMES_CHECK(self < num_workers_);
  // One pass over the whole WST; each group then filters its slice of the
  // same SoA arrays (always the gathered fast-path core — the point of the
  // variant is the single scan).
  wst_.gather(0, num_workers_, gather_enter_.data(), gather_pending_.data(),
              gather_conns_.data());
  const HermesConfig& cfg = scheduler_.config();
  for (uint32_t g = 0; g < num_groups_; ++g) {
    const WorkerId base = g * wpg_;
    const uint32_t limit = std::min(wpg_, num_workers_ - base);
    out[g] = scheduler_.schedule_gathered(
        gather_enter_.data() + base, gather_pending_.data() + base,
        gather_conns_.data() + base, limit, now, cfg.stage_order,
        cfg.num_stages);
    if (aux_map_ != nullptr) {
      refresh_aux(self, g, base, limit, now, out[g],
                  gather_enter_.data() + base, gather_pending_.data() + base,
                  gather_conns_.data() + base);
    }
    finish_sync(self, g, now, out[g]);
  }
}

void HermesRuntime::refresh_aux(WorkerId self, uint32_t group, WorkerId base,
                                uint32_t limit, SimTime now,
                                const ScheduleResult& res,
                                const int64_t* enter, const int64_t* pending,
                                const int64_t* conns) {
  uint64_t words[kMaxWorkersPerGroup];
  PolicyAuxInputs in;
  in.loop_enter_ns = enter;
  in.pending_events = pending;
  in.connections = conns;
  in.limit = limit;
  in.base = base;
  in.now = now;
  in.result = &res;
  policy_->fill_aux(in, words);
  const uint32_t n = policy_->aux_words();
  for (uint32_t w = 0; w < n; ++w) {
    aux_map_->store_word_u64(group, w, words[w]);
  }
  ++counters_.aux_publishes;
  if (obs_ != nullptr) {
    obs_->metrics.policy_publishes[static_cast<size_t>(policy_->kind())]->inc(
        self);
  }
}

void HermesRuntime::finish_sync(WorkerId self, uint32_t group, SimTime now,
                                ScheduleResult& res) {
  ++counters_.schedules;
  counters_.workers_selected_sum += res.selected;

  if (obs_ != nullptr) {
    obs::PipelineMetrics& m = obs_->metrics;
    m.filter_runs->inc(self);
    m.filter_after_time->add(self, res.after_time);
    m.filter_after_conn->add(self, res.after_conn);
    m.filter_after_event->add(self, res.after_event);
    m.filter_selected->record(self, res.selected);
    if (res.selected < scheduler_.config().min_workers_for_dispatch) {
      m.filter_low_survivor->inc(self);
    }
    // Stage survivor counts packed into one word (21 bits each is plenty
    // for <=64-worker groups; the packing exists so one ring record carries
    // the whole verdict).
    const uint64_t packed = (static_cast<uint64_t>(res.after_time) << 42) |
                            (static_cast<uint64_t>(res.after_conn) << 21) |
                            static_cast<uint64_t>(res.after_event);
    obs_->traces.write(self, obs::TraceType::FilterVerdict, now, res.selected,
                       res.bitmap, packed);
  }

  // Change suppression (fast path only, DESIGN.md §8): when the bitmap
  // equals the group's last push and that push is fresher than
  // sync_refresh_interval, the store — and its Table-5 "syscall" — is
  // skipped entirely. Checked before the fault hook: a suppressed sync
  // never reaches the syscall boundary faults model. The interval bound
  // (strict <) forces a real publish at least once per interval, which
  // also repairs any divergence between the cache and the map (delayed
  // stale syncs, racing workers).
  if (scheduler_.path() == SchedPath::Fast) {
    const int64_t prev_push =
        last_push_ns_[group].load(std::memory_order_relaxed);
    if (prev_push >= 0 &&
        now.ns() - prev_push <
            scheduler_.config().sync_refresh_interval.ns() &&
        last_pushed_bitmap_[group].load(std::memory_order_relaxed) ==
            res.bitmap) {
      ++counters_.syncs_suppressed;
      if (obs_ != nullptr) obs_->metrics.sched_syncs_suppressed->inc(self);
      return;
    }
  }

  // Userspace -> kernel decision sync: one atomic 8-byte store into the
  // eBPF array map. Multiple workers may race here; last write wins, which
  // is exactly the paper's lock-free design (freshest status is best).
  if (faults_ != nullptr && !faults_->on_bitmap_sync(self, group, res.bitmap)) {
    ++counters_.syncs_dropped;
    if (obs_ != nullptr) obs_->metrics.sync_dropped->inc(self);
    return;
  }
  sel_map_->store_u64(group, res.bitmap);
  // Cache updates follow the completed store only — a dropped or held sync
  // must not poison the suppression cache.
  last_pushed_bitmap_[group].store(res.bitmap, std::memory_order_relaxed);
  last_push_ns_[group].store(now.ns(), std::memory_order_relaxed);
  res.published = true;
  ++counters_.syncs;
  if (obs_ != nullptr) {
    obs_->metrics.sync_published->inc(self);
    obs_->metrics.policy_publishes[static_cast<size_t>(policy_->kind())]->inc(
        self);
    const int64_t prev =
        last_sync_ns_[group].exchange(now.ns(), std::memory_order_relaxed);
    const int64_t gap = prev >= 0 ? now.ns() - prev : 0;
    if (prev >= 0 && gap >= 0) {
      obs_->metrics.sync_gap_ns->record(self, static_cast<uint64_t>(gap));
    }
    obs_->traces.write(self, obs::TraceType::BitmapSync, now, group,
                       res.bitmap, static_cast<uint64_t>(gap < 0 ? 0 : gap));
  }
}

PortAttachment HermesRuntime::attach_port(
    const std::vector<uint64_t>& worker_cookies) {
  HERMES_CHECK_MSG(worker_cookies.size() == num_workers_,
                   "one socket cookie per worker required");
  PortAttachment att;
  // The socket array is sized to the program's provable key bound
  // (num_groups * workers_per_group), not the live worker count: a
  // partial last group leaves trailing slots at kNoSocket, and a
  // selection landing there falls back via sk_select's miss — the same
  // sparse-sockarray semantics as the kernel. This keeps the prove.h
  // obligation exact: every selected key < the array's capacity.
  att.sock_map =
      std::make_unique<bpf::ReuseportSockArray>(num_groups_ * wpg_);
  for (uint32_t w = 0; w < num_workers_; ++w) {
    HERMES_CHECK(att.sock_map->update(w, worker_cookies[w]));
  }

  PolicyProgramParams pp;
  pp.base.sel_map_slot = 0;
  pp.base.sock_map_slot = 1;
  pp.base.num_groups = num_groups_;
  pp.base.workers_per_group = wpg_;
  pp.base.min_workers = scheduler_.config().min_workers_for_dispatch;
  pp.aux_map_slot = 2;

  std::vector<bpf::Map*> maps = {sel_map_.get(), att.sock_map.get()};
  if (aux_map_ != nullptr) maps.push_back(aux_map_.get());
  bpf::Program prog = policy_->build_program(pp);

  // Machine-check the generated program BEFORE load (the policy-authoring
  // safety contract, DESIGN.md §12): on every path reaching the socket
  // selection the key is proven < num_workers. The program is a pure
  // function of the runtime config, so one proof covers all ports.
  if (!dispatch_proved_) {
    const bpf::analysis::DispatchProof proof = bpf::analysis::prove_dispatch(
        prog, maps, att.sock_map->max_entries());
    HERMES_CHECK_MSG(proof.ok, proof.detail.c_str());
    dispatch_proved_ = true;
  }

  std::string err;
  const uint64_t fallbacks_before = vm_.jit_fallbacks();
  const uint64_t by_kind_before[] = {
      vm_.jit_fallbacks_by_kind(bpf::JitFallbackKind::Disabled),
      vm_.jit_fallbacks_by_kind(bpf::JitFallbackKind::AllocFailure),
      vm_.jit_fallbacks_by_kind(bpf::JitFallbackKind::ValidateReject)};
  const uint64_t validate_before[] = {bpf::jit::validate::accepts(),
                                      bpf::jit::validate::rejects()};
  att.program = vm_.load(std::move(prog), std::move(maps), &err);
  HERMES_CHECK_MSG(att.program != nullptr, err.c_str());
  // A tier-3 request that compiled down to tier 2 must be visible, not a
  // silent downgrade: count it where dashboards can alert on it — split
  // by cause, so "JIT off on this host" and "translation validation
  // refused the buffer" alert at very different severities.
  if (obs_ != nullptr) {
    obs::PipelineMetrics& m = obs_->metrics;
    if (vm_.jit_fallbacks() > fallbacks_before) {
      m.bpf_jit_fallbacks->add(0, vm_.jit_fallbacks() - fallbacks_before);
    }
    const auto fwd = [](obs::Counter* c, uint64_t now, uint64_t before) {
      if (now > before) c->add(0, now - before);
    };
    fwd(m.bpf_jit_fallbacks_disabled,
        vm_.jit_fallbacks_by_kind(bpf::JitFallbackKind::Disabled),
        by_kind_before[0]);
    fwd(m.bpf_jit_fallbacks_alloc,
        vm_.jit_fallbacks_by_kind(bpf::JitFallbackKind::AllocFailure),
        by_kind_before[1]);
    fwd(m.bpf_jit_fallbacks_validate,
        vm_.jit_fallbacks_by_kind(bpf::JitFallbackKind::ValidateReject),
        by_kind_before[2]);
    fwd(m.bpf_validate_accepts, bpf::jit::validate::accepts(),
        validate_before[0]);
    fwd(m.bpf_validate_rejects, bpf::jit::validate::rejects(),
        validate_before[1]);
  }
  return att;
}

}  // namespace hermes::core
