// HermesRuntime: ties the pieces of the closed loop together (paper §4.1).
//
//   stage 1  WorkerStatusTable (lock-free shm)      <- EventLoopHooks
//   stage 2  Scheduler (Algo. 1) + bitmap sync       <- schedule_and_sync()
//   stage 3  dispatch program (Algo. 2) over eBPF    <- PortAttachment
//
// The runtime is deliberately kernel-agnostic: it owns the bpf VM, the
// M_sel map (one u64 bitmap per worker group) and, per port, a
// ReuseportSockArray plus a verified dispatch program. The simulator
// attaches those to netsim reuseport groups; the live demo drives them
// directly. Both consume identical code paths.
//
// Workers with id >= 64 are handled by the two-level scheme the paper
// describes (§7): workers are partitioned into groups of
// `config.workers_per_group`; each group has its own bitmap slot in M_sel,
// each worker schedules only its own group's slice of the WST, and the
// dispatch program picks group-by-hash then worker-by-bitmap.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "bpf/maps.h"
#include "bpf/vm.h"
#include "core/config.h"
#include "core/dispatch_prog.h"
#include "core/event_loop_hooks.h"
#include "core/fault_injection.h"
#include "core/policy.h"
#include "core/scheduler.h"
#include "core/wst.h"
#include "obs/observability.h"

namespace hermes::core {

// Per-port kernel-side state: the socket map and the verified program.
struct PortAttachment {
  std::unique_ptr<bpf::ReuseportSockArray> sock_map;
  std::unique_ptr<bpf::LoadedProgram> program;
};

class HermesRuntime {
 public:
  struct Options {
    HermesConfig config{};
    uint32_t num_workers = 4;
    // Optional externally-owned WST memory (e.g. shm::ShmRegion::data(),
    // 64-byte aligned, >= WorkerStatusTable::required_bytes(num_workers)).
    // When null the runtime allocates private memory (single-process use).
    void* wst_memory = nullptr;
    // Optional fault-injection hooks (tests only; not owned). Null means
    // every hook site is a branch-not-taken.
    FaultInjector* faults = nullptr;
    // Optional observability sinks (metrics + trace rings; not owned).
    // Null disables all instrumentation at zero cost.
    obs::Observability* obs = nullptr;
    // Scheduling policy (core/policy.h): which Stage-2 aux pipeline +
    // Stage-3 dispatch program pair the runtime runs. Defaults to the
    // HERMES_POLICY env override, else the paper's cascade.
    PolicyKind policy = default_policy();
    // Per-worker capacity weights for the weighted policy (empty = all 1).
    std::vector<uint32_t> worker_weights;
  };

  explicit HermesRuntime(const Options& opts);

  uint32_t num_workers() const { return num_workers_; }
  uint32_t num_groups() const { return num_groups_; }
  uint32_t workers_per_group() const { return wpg_; }
  const HermesConfig& config() const { return scheduler_.config(); }

  WorkerStatusTable& wst() { return wst_; }
  const WorkerStatusTable& wst() const { return wst_; }
  Scheduler& scheduler() { return scheduler_; }
  bpf::Vm& vm() { return vm_; }
  bpf::ArrayMap& sel_map() { return *sel_map_; }
  const SchedulingPolicy& policy() const { return *policy_; }
  PolicyKind policy_kind() const { return policy_->kind(); }
  // The active policy's auxiliary map (slot 2), or null for policies with
  // no aux state (cascade).
  bpf::ArrayMap* aux_map() { return aux_map_.get(); }

  // Stage-1 instrumentation handle for a worker (Fig. 9).
  EventLoopHooks hooks_for(WorkerId w) {
    return EventLoopHooks{wst_, w, faults_,
                          obs_ != nullptr ? &obs_->metrics : nullptr};
  }

  // Stage 2, executed by worker `self` at the end of its event loop:
  // cascade-filter the worker's own group and atomically publish the
  // bitmap to the kernel through M_sel. Returns the filter result;
  // result.published says whether the store actually happened (it is
  // skipped when the fast path sees an unchanged bitmap within
  // config.sync_refresh_interval, or when fault injection drops it).
  ScheduleResult schedule_and_sync(WorkerId self, SimTime now);

  // Two-level variant (DESIGN.md §8): gather every group's slots in ONE
  // pass over the WST, then run the cascade and sync for each group from
  // the same SoA arrays. Counters/obs attribute to `self` (the calling
  // worker / control thread). Uses member scratch — single caller at a
  // time; per-group results land in out[0..num_groups).
  void schedule_all_groups(WorkerId self, SimTime now, ScheduleResult* out);

  // Stage-3 attachment for one port: builds the socket map from the given
  // per-worker socket cookies and loads (verifies) the dispatch program.
  // Aborts if the program fails verification — that would be a build bug.
  PortAttachment attach_port(const std::vector<uint64_t>& worker_cookies);

  // Current kernel-visible bitmap of a group (diagnostics/tests).
  uint64_t kernel_bitmap(uint32_t group = 0) {
    return sel_map_->load_u64(group);
  }

  struct Counters {
    uint64_t schedules = 0;      // scheduler executions (Fig. 14)
    uint64_t syncs = 0;          // map-update "syscalls" (Table 5)
    uint64_t workers_selected_sum = 0;  // for avg pass ratio (Fig. 14)
    uint64_t syncs_dropped = 0;  // map updates suppressed by fault injection
    uint64_t syncs_suppressed = 0;  // stores skipped: bitmap unchanged
    uint64_t aux_publishes = 0;  // policy aux-map refreshes (word stores / 64)
  };
  const Counters& counters() const { return counters_; }

 private:
  // Everything after the schedule itself: counters, obs, change
  // suppression, the fault hook, and the M_sel store. Shared between
  // schedule_and_sync and schedule_all_groups.
  void finish_sync(WorkerId self, uint32_t group, SimTime now,
                   ScheduleResult& res);

  // Policy aux refresh for one group: fill_aux over the given gathered
  // slice, then publish word-atomically into aux_map_[group]. No-op for
  // policies without aux state.
  void refresh_aux(WorkerId self, uint32_t group, WorkerId base,
                   uint32_t limit, SimTime now, const ScheduleResult& res,
                   const int64_t* enter, const int64_t* pending,
                   const int64_t* conns);

  uint32_t num_workers_;
  uint32_t wpg_;
  uint32_t num_groups_;
  std::vector<uint8_t> owned_wst_;  // empty when external memory is used
  WorkerStatusTable wst_;
  FaultInjector* faults_;       // nullable; not owned
  obs::Observability* obs_;     // nullable; not owned
  Scheduler scheduler_;
  bpf::Vm vm_;
  std::unique_ptr<bpf::ArrayMap> sel_map_;
  std::unique_ptr<SchedulingPolicy> policy_;
  std::unique_ptr<bpf::ArrayMap> aux_map_;  // null: policy has no aux state
  // The dispatch program is a pure function of the runtime config, so the
  // prove.h machine-check runs once and covers every later attach_port.
  bool dispatch_proved_ = false;
  Counters counters_;
  // Per-group timestamp of the last completed sync, for the staleness
  // histogram (sync.gap_ns). Atomic: syncs may race across worker threads.
  std::vector<std::atomic<int64_t>> last_sync_ns_;
  // Change-suppression cache (DESIGN.md §8): the last bitmap actually
  // stored into M_sel per group, and when. last_push_ns_ < 0 means "no
  // valid cache". Two separate atomics can momentarily disagree under a
  // cross-worker race; the forced refresh after sync_refresh_interval
  // bounds the damage to one interval.
  std::vector<std::atomic<uint64_t>> last_pushed_bitmap_;
  std::vector<std::atomic<int64_t>> last_push_ns_;
  // Scratch for schedule_all_groups' single-pass gather (one caller at a
  // time; sized num_workers at construction).
  std::vector<int64_t> gather_enter_, gather_pending_, gather_conns_;
};

}  // namespace hermes::core
