#include "core/policy.h"

#include <cstdlib>
#include <cstring>

#include "bpf/assembler.h"
#include "util/check.h"

namespace hermes::core {

namespace {

using bpf::Assembler;
using bpf::HelperId;
using bpf::R;
using namespace hermes::bpf;  // r0..r10 register names

// Second p2c sample: a deterministic 32-bit multiplicative mix of the
// 4-tuple hash (Fibonacci hashing constant). NOT bpf_get_prandom_u32 —
// the reference mirror and the tier-equivalence fuzz sweep both need the
// decision to be a pure function of the context.
constexpr uint32_t kP2cHashMix = 0x9E3779B1u;

// Aux map lookup with the group key already spilled at fp-4 by the
// prologue. Null check jumps to "fallback"; the value pointer lands in r0.
void emit_aux_lookup(Assembler& a, const PolicyProgramParams& p) {
  a.ld_map_fd(r1, p.aux_map_slot);
  a.mov(r2, r10);
  a.add(r2, -4);
  a.call(HelperId::MapLookupElem);
  a.jeq(r0, 0, "fallback");
}

uint64_t clamp_nonneg(int64_t v) {
  return v < 0 ? 0 : static_cast<uint64_t>(v);
}

// ---------------------------------------------------------------------------
// cascade — the paper's pair, kept as default and reference.

class CascadePolicy final : public SchedulingPolicy {
 public:
  PolicyKind kind() const override { return PolicyKind::Cascade; }

  bpf::Program build_program(const PolicyProgramParams& p) const override {
    if (!p.plant_out_of_range) {
      // Byte-identical to the pre-policy-framework program.
      return build_dispatch_program(p.base);
    }
    Assembler a;
    emit::dispatch_prologue(a, p.base);
    a.ldx_w(r1, r6, bpf::kCtxOffHash);
    a.mul(r1, r9);
    a.rsh(r1, 32);
    a.add(r1, 1);
    emit::rank_select(a, "cascade");
    emit::dispatch_epilogue(a, p.base, r2, /*emit_guard=*/false);
    return a.finish();
  }

  WorkerId reference_dispatch(const PolicyProgramParams& p,
                              const uint64_t* group_bitmaps,
                              uint8_t* /*aux_base*/, size_t /*aux_stride*/,
                              uint32_t hash, uint32_t hash2) const override {
    return core::reference_dispatch(p.base, group_bitmaps, hash, hash2);
  }
};

// ---------------------------------------------------------------------------
// p2c — two independent rank-samples of the bitmap; the per-worker WST
// load word (connections) breaks the tie toward the less-loaded worker.

class P2cPolicy final : public SchedulingPolicy {
 public:
  PolicyKind kind() const override { return PolicyKind::P2c; }

  uint32_t aux_value_bytes() const override {
    return kMaxWorkersPerGroup * sizeof(uint64_t);
  }

  void fill_aux(const PolicyAuxInputs& in, uint64_t* out_words) const override {
    // Per-worker load words. Slots past the live slice get the MAX
    // sentinel so a corrupt selection can only lose the comparison.
    for (uint32_t i = 0; i < kMaxWorkersPerGroup; ++i) {
      out_words[i] = i < in.limit ? clamp_nonneg(in.connections[i])
                                  : UINT64_MAX;
    }
  }

  bpf::Program build_program(const PolicyProgramParams& p) const override {
    const auto wpg = static_cast<int64_t>(p.base.workers_per_group);
    const bool guard = !p.plant_out_of_range;
    Assembler a;
    emit::dispatch_prologue(a, p.base);

    // Both ranks up front (they need n = r9, which the aux value pointer
    // will overwrite): nthA from the 4-tuple hash, nthB from its mix.
    a.ldx_w(r1, r6, bpf::kCtxOffHash);
    a.mov(r5, r1);
    a.mul(r1, r9);
    a.rsh(r1, 32);
    a.add(r1, 1);
    a.stx_dw(r10, -16, r1);  // nthA
    a.mul32(r5, static_cast<int32_t>(kP2cHashMix));
    a.mul(r5, r9);
    a.rsh(r5, 32);
    a.add(r5, 1);
    a.stx_dw(r10, -24, r5);  // nthB

    emit_aux_lookup(a, p);
    a.mov(r9, r0);  // r9 = per-worker load words (n is dead)

    // Sample A: position + load word.
    a.ldx_dw(r1, r10, -16);
    emit::rank_select(a, "p2c_a");
    if (guard) a.jge(r2, wpg, "fallback");
    a.stx_dw(r10, -16, r2);  // posA (slot reused; rank is dead)
    a.mov(r3, r2);
    a.lsh(r3, 3);
    a.mov(r4, r9);
    a.add(r4, r3);
    a.ldx_dw(r3, r4, 0);
    a.stx_dw(r10, -32, r3);  // loadA

    // Sample B: position + load word.
    a.ldx_dw(r1, r10, -24);
    emit::rank_select(a, "p2c_b");
    if (guard) a.jge(r2, wpg, "fallback");
    a.mov(r3, r2);
    a.lsh(r3, 3);
    a.mov(r4, r9);
    a.add(r4, r3);
    a.ldx_dw(r5, r4, 0);  // loadB

    // The smaller load wins; ties go to sample A.
    a.ldx_dw(r3, r10, -32);
    a.jlt(r5, r3, "p2c_picked");  // loadB < loadA: keep posB (r2)
    a.ldx_dw(r2, r10, -16);       // else posA
    a.label("p2c_picked");

    emit::dispatch_epilogue(a, p.base, r2, guard);
    return a.finish();
  }

  WorkerId reference_dispatch(const PolicyProgramParams& p,
                              const uint64_t* group_bitmaps,
                              uint8_t* aux_base, size_t aux_stride,
                              uint32_t hash, uint32_t hash2) const override {
    const DispatchProgramParams& b = p.base;
    uint32_t group = 0;
    if (b.num_groups > 1) group = reciprocal_scale_u32(hash2, b.num_groups);
    const uint64_t bitmap = group_bitmaps[group];
    const uint32_t n = count_nonzero_bits(bitmap);
    if (n < b.min_workers) return kInvalidWorker;
    const uint32_t pos_a =
        find_nth_nonzero_bit(bitmap, reciprocal_scale_u32(hash, n) + 1);
    if (pos_a >= b.workers_per_group) return kInvalidWorker;
    const uint32_t hash_b = hash * kP2cHashMix;
    const uint32_t pos_b =
        find_nth_nonzero_bit(bitmap, reciprocal_scale_u32(hash_b, n) + 1);
    if (pos_b >= b.workers_per_group) return kInvalidWorker;
    const uint64_t* loads =
        reinterpret_cast<const uint64_t*>(aux_base + group * aux_stride);
    const uint32_t pos = loads[pos_b] < loads[pos_a] ? pos_b : pos_a;
    return group * b.workers_per_group + pos;
  }
};

// ---------------------------------------------------------------------------
// weighted — heterogeneous workers: a 64-slot lottery table over the
// eligible set, slots allotted proportionally to per-worker capacity
// weights; the program indexes it by the hash's top 6 bits and re-checks
// bitmap membership so a stale table can only cause a fallback.

class WeightedPolicy final : public SchedulingPolicy {
 public:
  explicit WeightedPolicy(std::vector<uint32_t> weights)
      : weights_(std::move(weights)) {}

  PolicyKind kind() const override { return PolicyKind::Weighted; }

  uint32_t aux_value_bytes() const override { return kMaxWorkersPerGroup; }

  void fill_aux(const PolicyAuxInputs& in, uint64_t* out_words) const override {
    uint8_t table[kMaxWorkersPerGroup];
    uint32_t wt[kMaxWorkersPerGroup] = {};
    uint64_t total = 0;
    const uint64_t bitmap = in.result != nullptr ? in.result->bitmap : 0;
    for (uint32_t i = 0; i < in.limit && i < kMaxWorkersPerGroup; ++i) {
      if (((bitmap >> i) & 1u) == 0) continue;
      wt[i] = weight_of(in.base + i);
      total += wt[i];
    }
    if (total == 0) {
      // Nothing eligible (or all-zero weights): poison every slot; the
      // program's id < workers_per_group guard turns that into fallback.
      std::memset(table, 0xFF, sizeof(table));
    } else {
      // Slot s belongs to the eligible worker whose cumulative-weight
      // range covers floor(s * total / 64) — deterministic proportional
      // allotment, largest shares first in worker-id order.
      uint32_t worker = 0;
      uint64_t prefix = wt[0];
      for (uint32_t s = 0; s < kMaxWorkersPerGroup; ++s) {
        const uint64_t target = s * total / kMaxWorkersPerGroup;
        while (prefix <= target && worker + 1 < kMaxWorkersPerGroup) {
          ++worker;
          prefix += wt[worker];
        }
        table[s] = static_cast<uint8_t>(worker);
      }
    }
    std::memcpy(out_words, table, sizeof(table));
  }

  bpf::Program build_program(const PolicyProgramParams& p) const override {
    const auto wpg = static_cast<int64_t>(p.base.workers_per_group);
    Assembler a;
    emit::dispatch_prologue(a, p.base);
    emit_aux_lookup(a, p);

    // slot = top 6 bits of the hash (provably < 64 = table size).
    a.ldx_w(r1, r6, bpf::kCtxOffHash);
    a.rsh(r1, 26);
    a.mov(r2, r0);
    a.add(r2, r1);
    a.ldx_b(r3, r2, 0);  // candidate worker id from the lottery table
    if (!p.plant_out_of_range) a.jge(r3, wpg, "fallback");

    // In-kernel eligibility re-check: the table may be one refresh staler
    // than the bitmap; selection-in-eligible-set must hold anyway.
    a.mov(r4, r8);
    a.rsh(r4, r3);
    a.jset(r4, 1, "w_member");
    a.ja("fallback");
    a.label("w_member");

    emit::dispatch_epilogue(a, p.base, r3, /*emit_guard=*/false);
    return a.finish();
  }

  WorkerId reference_dispatch(const PolicyProgramParams& p,
                              const uint64_t* group_bitmaps,
                              uint8_t* aux_base, size_t aux_stride,
                              uint32_t hash, uint32_t hash2) const override {
    const DispatchProgramParams& b = p.base;
    uint32_t group = 0;
    if (b.num_groups > 1) group = reciprocal_scale_u32(hash2, b.num_groups);
    const uint64_t bitmap = group_bitmaps[group];
    if (count_nonzero_bits(bitmap) < b.min_workers) return kInvalidWorker;
    const uint8_t* table = aux_base + group * aux_stride;
    const uint32_t id = table[hash >> 26];
    if (id >= b.workers_per_group) return kInvalidWorker;
    if (((bitmap >> id) & 1u) == 0) return kInvalidWorker;
    return group * b.workers_per_group + id;
  }

 private:
  uint32_t weight_of(WorkerId w) const {
    return w < weights_.size() ? weights_[w] : 1;
  }

  std::vector<uint32_t> weights_;
};

// ---------------------------------------------------------------------------
// queue_est — Charon/LSQ-style local-shortest-queue: argmin of per-worker
// queue estimates over the eligible set, with an in-kernel increment per
// dispatch so consecutive picks between refreshes spread out instead of
// herding onto one stale minimum.

class QueueEstPolicy final : public SchedulingPolicy {
 public:
  PolicyKind kind() const override { return PolicyKind::QueueEst; }

  uint32_t aux_value_bytes() const override {
    return kMaxWorkersPerGroup * sizeof(uint64_t);
  }

  void fill_aux(const PolicyAuxInputs& in, uint64_t* out_words) const override {
    // Refresh the estimates from the WST pending_events counters; the
    // schedule/publish cadence bounds their staleness, and the in-kernel
    // increments model the dispatches since. MAX-sentinel slots never win
    // the argmin.
    for (uint32_t i = 0; i < kMaxWorkersPerGroup; ++i) {
      out_words[i] = i < in.limit ? clamp_nonneg(in.pending_events[i])
                                  : UINT64_MAX;
    }
  }

  bpf::Program build_program(const PolicyProgramParams& p) const override {
    const auto wpg = static_cast<int64_t>(p.base.workers_per_group);
    Assembler a;
    emit::dispatch_prologue(a, p.base);
    emit_aux_lookup(a, p);
    a.mov(r9, r0);  // r9 = estimate words (n is dead after the prologue)

    // Unrolled argmin over the eligible set: walk the bitmap LSB-first,
    // keep the strictly smallest estimate (ties -> lowest worker id).
    a.mov(r2, r8);               // shifted bitmap copy
    a.ld_imm64(r3, UINT64_MAX);  // best estimate
    a.mov(r5, 2 * wpg);          // best index; sentinel fails the guard
    for (int64_t i = 0; i < wpg; ++i) {
      const std::string cand = "qe_cand_" + std::to_string(i);
      const std::string skip = "qe_skip_" + std::to_string(i);
      a.jset(r2, 1, cand);
      a.ja(skip);
      a.label(cand);
      a.ldx_dw(r4, r9, static_cast<int32_t>(i * 8));
      a.jge(r4, r3, skip);
      a.mov(r3, r4);
      a.mov(r5, i);
      a.label(skip);
      a.rsh(r2, 1);
    }
    if (!p.plant_out_of_range) a.jge(r5, wpg, "fallback");

    // estimates[best] += 1 before the pick becomes visible — the local
    // part of the estimate (legal map-value store; bit-identical across
    // all execution tiers, and the torture sweep compares the map bytes).
    a.mov(r4, r5);
    a.lsh(r4, 3);
    a.mov(r1, r9);
    a.add(r1, r4);
    a.ldx_dw(r2, r1, 0);
    a.add(r2, 1);
    a.stx_dw(r1, 0, r2);

    emit::dispatch_epilogue(a, p.base, r5, /*emit_guard=*/false);
    return a.finish();
  }

  WorkerId reference_dispatch(const PolicyProgramParams& p,
                              const uint64_t* group_bitmaps,
                              uint8_t* aux_base, size_t aux_stride,
                              uint32_t hash, uint32_t hash2) const override {
    (void)hash;
    const DispatchProgramParams& b = p.base;
    uint32_t group = 0;
    if (b.num_groups > 1) group = reciprocal_scale_u32(hash2, b.num_groups);
    const uint64_t bitmap = group_bitmaps[group];
    if (count_nonzero_bits(bitmap) < b.min_workers) return kInvalidWorker;
    uint64_t* est = reinterpret_cast<uint64_t*>(aux_base + group * aux_stride);
    uint64_t best = UINT64_MAX;
    uint32_t best_i = b.workers_per_group;
    for (uint32_t i = 0; i < b.workers_per_group; ++i) {
      if (((bitmap >> i) & 1u) == 0) continue;
      if (est[i] < best) {
        best = est[i];
        best_i = i;
      }
    }
    if (best_i >= b.workers_per_group) return kInvalidWorker;
    est[best_i] += 1;  // mirror the in-kernel increment
    return group * b.workers_per_group + best_i;
  }
};

}  // namespace

const char* to_string(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::Cascade:
      return "cascade";
    case PolicyKind::P2c:
      return "p2c";
    case PolicyKind::Weighted:
      return "weighted";
    case PolicyKind::QueueEst:
      return "queue_est";
  }
  return "?";
}

bool parse_policy(std::string_view name, PolicyKind* out) {
  for (size_t k = 0; k < kPolicyCount; ++k) {
    const auto kind = static_cast<PolicyKind>(k);
    if (name == to_string(kind)) {
      *out = kind;
      return true;
    }
  }
  return false;
}

PolicyKind default_policy() {
  static const PolicyKind kind = [] {
    const char* e = std::getenv("HERMES_POLICY");
    if (e == nullptr || e[0] == '\0') return PolicyKind::Cascade;
    PolicyKind k;
    HERMES_CHECK_MSG(parse_policy(e, &k),
                     "HERMES_POLICY: want cascade|p2c|weighted|queue_est");
    return k;
  }();
  return kind;
}

std::unique_ptr<SchedulingPolicy> make_policy(PolicyKind kind,
                                              const PolicyConfig& cfg) {
  switch (kind) {
    case PolicyKind::Cascade:
      return std::make_unique<CascadePolicy>();
    case PolicyKind::P2c:
      return std::make_unique<P2cPolicy>();
    case PolicyKind::Weighted:
      return std::make_unique<WeightedPolicy>(cfg.worker_weights);
    case PolicyKind::QueueEst:
      return std::make_unique<QueueEstPolicy>();
  }
  HERMES_CHECK_MSG(false, "unknown policy kind");
  return nullptr;
}

}  // namespace hermes::core
