// Pluggable scheduling policies (ROADMAP item 3): the Stage-2 userspace
// filter pipeline and the Stage-3 eBPF dispatch program are two halves of
// ONE policy, so they are authored together behind this interface.
//
// A SchedulingPolicy supplies
//   (a) a userspace side — fill_aux() consumes the Wst::gather SoA
//       snapshot (plus the cascade's ScheduleResult) and produces the
//       policy's eligibility/load state as u64 words, published into a
//       per-group auxiliary array map alongside the selection bitmap;
//   (b) a kernel side — build_program() emits the matching eBPF dispatch
//       program through the assembler. Every generated program is
//       machine-checked by bpf/analysis/prove.h before Vm::load (the
//       selected key is proven < nr_socks on every path), and each
//       load-aware program re-checks bitmap membership in-kernel, so a
//       stale or corrupt aux value can only cause a fallback, never a
//       dispatch outside the eligible set. That proof obligation is what
//       makes policy authoring safe.
//
// Shipped policies (DESIGN.md §12):
//   cascade    the paper's Algo. 1 + Algo. 2 pair, byte-identical to the
//              pre-policy-framework program; default and reference.
//   p2c        power-of-two-choices inside the dispatch program: two
//              independent rank-samples of the bitmap, the one with the
//              smaller per-worker WST load word (connections) wins.
//   weighted   heterogeneous workers: per-worker capacity weights folded
//              into a 64-slot lottery table over the eligible set; the
//              program indexes it by hash and re-checks membership.
//   queue_est  Charon/LSQ-style local-shortest-queue: dispatcher-local
//              queue estimates seeded from WST pending_events, argmin over
//              the eligible set, incremented in-kernel per dispatch so
//              estimates stay useful between refreshes (staleness is
//              bounded by the schedule/publish cadence).
#pragma once

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "bpf/insn.h"
#include "core/dispatch_prog.h"
#include "core/scheduler.h"
#include "util/types.h"

namespace hermes::core {

enum class PolicyKind : uint8_t { Cascade = 0, P2c, Weighted, QueueEst };
inline constexpr size_t kPolicyCount = 4;

const char* to_string(PolicyKind kind);
// Accepts the names used by HERMES_POLICY / simctl --policy:
// cascade | p2c | weighted | queue_est. Returns false on anything else.
bool parse_policy(std::string_view name, PolicyKind* out);
// Process-wide default: HERMES_POLICY env var, else Cascade. Read once
// (same pattern as default_sched_path); an unknown name aborts loudly.
PolicyKind default_policy();

struct PolicyProgramParams {
  DispatchProgramParams base;
  // Slot of the policy's auxiliary array map (num_groups entries of
  // aux_value_bytes() each). Unused by policies with no aux state.
  int32_t aux_map_slot = 2;
  // Tests only: omit the range guards in front of the socket selection so
  // the planted out-of-range selection MUST be rejected by prove.h. A
  // planted program is never loaded or run.
  bool plant_out_of_range = false;
};

struct PolicyConfig {
  // Per-global-worker capacity weights (weighted policy). Empty means
  // every worker weighs 1; missing tail entries also default to 1.
  std::vector<uint32_t> worker_weights;
};

// Inputs to fill_aux: one group's slice of the Wst::gather SoA snapshot
// plus the cascade result computed from that same snapshot.
struct PolicyAuxInputs {
  const int64_t* loop_enter_ns = nullptr;
  const int64_t* pending_events = nullptr;
  const int64_t* connections = nullptr;
  uint32_t limit = 0;          // live workers in this group slice
  WorkerId base = 0;           // first global worker id of the group
  SimTime now{};
  const ScheduleResult* result = nullptr;
};

class SchedulingPolicy {
 public:
  virtual ~SchedulingPolicy() = default;

  virtual PolicyKind kind() const = 0;
  const char* name() const { return to_string(kind()); }

  // Bytes of per-group auxiliary map value (multiple of 8; 0 = the policy
  // needs no aux map and the dispatch program binds only {sel, socks}).
  virtual uint32_t aux_value_bytes() const { return 0; }
  uint32_t aux_words() const { return aux_value_bytes() / 8; }

  // Userspace half: derive the group's aux value (aux_words() u64 words)
  // from the gathered snapshot. Called after every schedule; the runtime
  // publishes the words with word-atomic stores (ArrayMap).
  virtual void fill_aux(const PolicyAuxInputs& in, uint64_t* out_words) const {
    (void)in;
    (void)out_words;
  }

  // Kernel half: the dispatch program. Must pass bpf::verify() and
  // analysis::prove_dispatch() for nr_socks = num_groups *
  // workers_per_group (the runtime refuses to attach otherwise).
  virtual bpf::Program build_program(const PolicyProgramParams& p) const = 0;

  // C++ mirror of the program's decision, for differential tests. Returns
  // the selected global worker id or kInvalidWorker for "fall back to
  // reuseport hashing". `aux_base`/`aux_stride` address the same per-group
  // values the program would read — and, for queue_est, mutate (the
  // in-kernel estimate increment is part of the contract).
  virtual WorkerId reference_dispatch(const PolicyProgramParams& p,
                                      const uint64_t* group_bitmaps,
                                      uint8_t* aux_base, size_t aux_stride,
                                      uint32_t hash, uint32_t hash2) const = 0;
};

std::unique_ptr<SchedulingPolicy> make_policy(PolicyKind kind,
                                              const PolicyConfig& cfg = {});

}  // namespace hermes::core
