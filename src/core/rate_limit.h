// Per-client token-bucket rate limiting at LB admission.
//
// Every public L7 LB fronts abusive clients; the paper's deployments
// (§7) put connection admission control ahead of the worker pool. We
// model the standard shape: one token bucket per client (keyed by
// source address), refilled continuously, charged one token per new
// connection. Arithmetic is integer fixed-point (milli-tokens) driven
// by the simulated clock, so admission decisions are bit-reproducible
// across runs and platforms — no floating point on the admission path.
//
// The bucket table is a fixed-size hash table with no chaining and no
// allocation after construction: distinct clients that collide share a
// bucket (slightly stricter than exact per-client limiting, never
// looser for the colliding set as a whole). Real LBs make the same
// bounded-memory trade (e.g. nginx's limit_req zones).
#pragma once

#include <cstdint>
#include <vector>

#include "util/check.h"
#include "util/types.h"

namespace hermes::core {

// One token bucket, integer milli-tokens.
class TokenBucket {
 public:
  // rate: tokens/second; burst: bucket capacity in tokens.
  TokenBucket(uint64_t rate_per_sec, uint64_t burst)
      : rate_milli_per_sec_(rate_per_sec * 1000),
        cap_milli_(burst * 1000),
        tokens_milli_(burst * 1000) {}

  // Charges `cost` tokens at time `now`; true = admitted.
  bool admit(SimTime now, uint64_t cost = 1) {
    refill(now);
    const uint64_t cost_milli = cost * 1000;
    if (tokens_milli_ < cost_milli) return false;
    tokens_milli_ -= cost_milli;
    return true;
  }

  uint64_t tokens_milli(SimTime now) {
    refill(now);
    return tokens_milli_;
  }

 private:
  void refill(SimTime now) {
    if (now.ns() <= last_.ns()) return;
    const uint64_t dt_ns = static_cast<uint64_t>(now.ns() - last_.ns());
    // milli-tokens = dt_ns * rate_milli / 1e9, in 128-bit to avoid
    // overflow for long gaps at high rates.
    const uint64_t add = static_cast<uint64_t>(
        (static_cast<unsigned __int128>(dt_ns) * rate_milli_per_sec_) /
        1000000000u);
    if (add == 0) return;  // keep last_ so sub-grain gaps accumulate
    tokens_milli_ = add >= cap_milli_ - tokens_milli_ ? cap_milli_
                                                      : tokens_milli_ + add;
    last_ = now;
  }

  uint64_t rate_milli_per_sec_;
  uint64_t cap_milli_;
  uint64_t tokens_milli_;
  SimTime last_{};
};

// Fixed-size table of token buckets keyed by client address hash.
class ClientRateLimiter {
 public:
  struct Config {
    // Tokens (new connections) per second per client bucket. 0 disables
    // the limiter entirely (admit everything).
    uint64_t rate_per_sec = 0;
    // Bucket capacity: how large a burst a quiet client may spend.
    uint64_t burst = 32;
    // Number of buckets (rounded up to a power of two). Colliding
    // clients share a bucket.
    uint32_t buckets = 4096;
  };

  explicit ClientRateLimiter(const Config& cfg) : cfg_(cfg) {
    uint32_t n = 1;
    while (n < cfg.buckets) n <<= 1;
    mask_ = n - 1;
    if (enabled()) {
      buckets_.reserve(n);
      for (uint32_t i = 0; i < n; ++i) {
        buckets_.emplace_back(cfg.rate_per_sec, cfg.burst);
      }
    }
  }

  bool enabled() const { return cfg_.rate_per_sec > 0; }

  // Admission check for a new connection from `client` (e.g. saddr).
  bool admit(uint32_t client, SimTime now) {
    if (!enabled()) return true;
    if (!buckets_[index(client)].admit(now)) {
      ++drops_;
      return false;
    }
    ++admits_;
    return true;
  }

  uint64_t admits() const { return admits_; }
  uint64_t drops() const { return drops_; }
  const Config& config() const { return cfg_; }

 private:
  uint32_t index(uint32_t client) const {
    // splitmix-style avalanche so adjacent addresses spread.
    uint64_t z = client + 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return static_cast<uint32_t>(z ^ (z >> 31)) & mask_;
  }

  Config cfg_;
  uint32_t mask_ = 0;
  std::vector<TokenBucket> buckets_;
  uint64_t admits_ = 0;
  uint64_t drops_ = 0;
};

}  // namespace hermes::core
