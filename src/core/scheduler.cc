#include "core/scheduler.h"

namespace hermes::core {

namespace {

// FilterCount (Algo. 1 lines 11-13): keep workers whose metric is below
// avg + theta, where avg is computed over the *current* candidate set.
// Returns the filtered bitmap; `metric` indexes by absolute worker id.
template <typename MetricFn>
WorkerBitmap filter_count(WorkerBitmap candidates, WorkerId base,
                          uint32_t limit, double theta_ratio,
                          MetricFn&& metric) {
  const uint32_t n = count_nonzero_bits(candidates);
  if (n == 0) return 0;
  double sum = 0;
  for (uint32_t i = 0; i < limit; ++i) {
    if (bitmap_test(candidates, i)) {
      sum += static_cast<double>(metric(base + i));
    }
  }
  const double avg = sum / n;
  const double threshold = avg + theta_ratio * avg;
  WorkerBitmap out = 0;
  for (uint32_t i = 0; i < limit; ++i) {
    if (!bitmap_test(candidates, i)) continue;
    const auto v = static_cast<double>(metric(base + i));
    // R_i < Avg + theta. When every candidate has the same value, the
    // strict comparison with theta == 0 would empty the set; treat the
    // degenerate all-equal case as all-pass (avg == v for everyone).
    if (v < threshold || v == avg) out = bitmap_set(out, i);
  }
  return out;
}

}  // namespace

ScheduleResult Scheduler::schedule(const WorkerStatusTable& wst, SimTime now,
                                   WorkerId base, uint32_t limit) const {
  return schedule_with_order(wst, now, cfg_.stage_order, cfg_.num_stages,
                             base, limit);
}

ScheduleResult Scheduler::schedule_with_order(const WorkerStatusTable& wst,
                                              SimTime now,
                                              const FilterStage* order,
                                              uint32_t num_stages,
                                              WorkerId base,
                                              uint32_t limit) const {
  if (limit == 0) {
    limit = wst.num_workers() - base;
  }
  HERMES_CHECK(limit <= kMaxWorkersPerGroup && base + limit <= wst.num_workers());

  // Snapshot the slice once: each metric is an individual atomic read; the
  // table is read lock-free while writers keep updating (paper §5.3.1).
  WorkerSnapshot snaps[kMaxWorkersPerGroup];
  for (uint32_t i = 0; i < limit; ++i) {
    snaps[i] = wst.read(base + i);
  }

  ScheduleResult res;
  WorkerBitmap w = limit == 64 ? ~0ull : ((1ull << limit) - 1);

  for (uint32_t s = 0; s < num_stages; ++s) {
    switch (order[s]) {
      case FilterStage::Time: {
        WorkerBitmap out = 0;
        for (uint32_t i = 0; i < limit; ++i) {
          if (bitmap_test(w, i) && !is_hung(snaps[i], now)) {
            out = bitmap_set(out, i);
          }
        }
        w = out;
        res.after_time = count_nonzero_bits(w);
        break;
      }
      case FilterStage::Connections:
        w = filter_count(w, base, limit, cfg_.theta_ratio,
                         [&](WorkerId id) { return snaps[id - base].connections; });
        res.after_conn = count_nonzero_bits(w);
        break;
      case FilterStage::PendingEvents:
        w = filter_count(w, base, limit, cfg_.theta_ratio, [&](WorkerId id) {
          return snaps[id - base].pending_events;
        });
        res.after_event = count_nonzero_bits(w);
        break;
    }
  }

  res.bitmap = w;
  res.selected = count_nonzero_bits(w);
  return res;
}

}  // namespace hermes::core
