#include "core/scheduler.h"

#include <bit>
#include <cmath>
#include <cstdlib>

#if defined(__x86_64__) && defined(__GNUC__)
#include <immintrin.h>
#endif

namespace hermes::core {

const char* to_string(SchedPath p) {
  switch (p) {
    case SchedPath::Reference: return "reference";
    case SchedPath::Fast: return "fast";
  }
  return "?";
}

SchedPath default_sched_path() {
  static const SchedPath path = [] {
    const char* e = std::getenv("HERMES_SCHED_FAST");
    if (e != nullptr && e[0] == '0' && e[1] == '\0') {
      return SchedPath::Reference;
    }
    return SchedPath::Fast;
  }();
  return path;
}

int64_t theta_permille_of(double theta_ratio) {
  if (!(theta_ratio > 0)) return 0;  // also maps NaN to 0
  constexpr double kMax = 1e15;
  if (theta_ratio >= kMax / 1000) return static_cast<int64_t>(kMax);
  return std::llround(theta_ratio * 1000);
}

namespace {

// FilterCount (Algo. 1 lines 11-13): keep workers whose metric is below
// avg + theta, where avg is computed over the *current* candidate set.
//
// The comparison is exact fixed-point: with n candidates and metric sum
// `sum`, "v < avg*(1 + theta)" becomes `v*n*1000 < sum*(1000 + tpm)` and
// the degenerate all-equal pass rule "v == avg" becomes `v*n == sum` —
// no division, no doubles, so values above 2^53 cannot be misclassified
// by rounding. Bounds: |metric| < 2^63, n <= 64, so |v*n*1000| < 2^79 and
// |sum*(1000+tpm)| < 2^69 * 2^50 = 2^119, both inside __int128.
//
// Returns the filtered bitmap; `metric` indexes by absolute worker id.
template <typename MetricFn>
WorkerBitmap filter_count(WorkerBitmap candidates, WorkerId base,
                          uint32_t limit, int64_t theta_permille,
                          MetricFn&& metric) {
  const uint32_t n = count_nonzero_bits(candidates);
  if (n == 0) return 0;
  __int128 sum = 0;
  for (uint32_t i = 0; i < limit; ++i) {
    if (bitmap_test(candidates, i)) {
      sum += metric(base + i);
    }
  }
  const __int128 rhs = sum * (1000 + theta_permille);
  WorkerBitmap out = 0;
  for (uint32_t i = 0; i < limit; ++i) {
    if (!bitmap_test(candidates, i)) continue;
    const __int128 vn = static_cast<__int128>(metric(base + i)) * n;
    // R_i < Avg + theta. When every candidate has the same value, the
    // strict comparison with theta == 0 would empty the set; treat the
    // degenerate all-equal case as all-pass (v*n == sum for everyone).
    if (vn * 1000 < rhs || vn == sum) out = bitmap_set(out, i);
  }
  return out;
}

// ---- Fast path ------------------------------------------------------------
//
// The fast path computes the same exact fixed-point predicate, but hoists
// the per-element 128-bit cross-multiplications out of the loop: with
// N = n*1000 > 0 and integers v,
//
//   v*N < sum*(1000 + tpm)   <=>   v <= floor((sum*(1000 + tpm) - 1) / N)
//   v*n == sum               <=>   N | sum*1000  and  v == sum*1000 / N
//
// so each stage needs one exact 128-bit floor division up front and the
// per-candidate work collapses to two 64-bit compares. The quotients are
// clamped to int64 (v itself always fits): a quotient above INT64_MAX
// keeps every candidate, one below INT64_MIN keeps none.
struct CountThreshold {
  int64_t below = 0;      // keep if v <= below (when any_below)
  int64_t equal = 0;      // or v == equal (the all-equal rule, when eq_valid)
  uint64_t any_below = 0;
  uint64_t eq_valid = 0;
};

// Reciprocal table for the per-stage divisors N = n*1000, n in [1, 64]:
// m[n] = floor(2^73 / N). For any x < 2^64, q_hat = (x * m[n]) >> 73
// equals floor(x/N) or falls exactly one short (the truncation error is
// below x/2^73 < 2^-9 of a quotient step), so a single multiply-and-compare
// fixup makes it exact — ~10 cycles against ~36 for a 64-bit idiv.
constexpr uint32_t kDivShift = 9;  // 2^9 < min divisor 1000, so m fits u64

struct NMagicTable {
  uint64_t m[65];
};
constexpr NMagicTable make_nmagic() {
  NMagicTable t{};
  for (uint32_t n = 1; n <= 64; ++n) {
    t.m[n] = static_cast<uint64_t>(
        ((unsigned __int128){1} << (64 + kDivShift)) / (n * 1000));
  }
  return t;
}
constexpr NMagicTable kNMagic = make_nmagic();

struct UDiv {
  uint64_t q, r;
};
inline UDiv udiv_n1000(uint64_t x, uint64_t m, uint64_t N) {
  auto q = static_cast<uint64_t>(
      (static_cast<unsigned __int128>(x) * m) >> 64) >> kDivShift;
  uint64_t r = x - q * N;
  if (r >= N) {  // at most one step, see the table comment
    r -= N;
    ++q;
  }
  return {q, r};
}

// floor(x / N) for signed x >= INT64_MIN: for x < 0, with a = |x| - 1 =
// ~x, floor(x/N) = -1 - floor(a/N).
inline int64_t floordiv_n1000(int64_t x, uint64_t m, uint64_t N) {
  if (x >= 0) return static_cast<int64_t>(udiv_n1000(static_cast<uint64_t>(x), m, N).q);
  return -1 - static_cast<int64_t>(udiv_n1000(~static_cast<uint64_t>(x), m, N).q);
}

CountThreshold count_threshold(__int128 sum, uint32_t n, int64_t theta_permille,
                               int64_t narrow_cap) {
  const int64_t N = int64_t{n} * 1000;
  const int64_t scale = 1000 + theta_permille;
  CountThreshold th;

  // Narrow lane: when |sum * scale| stays below 2^63 (the caller hoists
  // narrow_cap = (INT64_MAX - 1) / scale), the floor divisions run through
  // the reciprocal table instead of libgcc's 128-bit division helpers.
  // scale >= 1000 also bounds |sum * 1000| by the same check.
  if (sum <= narrow_cap && sum >= -narrow_cap) {
    const int64_t s64 = static_cast<int64_t>(sum);
    const uint64_t mg = kNMagic.m[n];
    const auto uN = static_cast<uint64_t>(N);
    th.below = floordiv_n1000(s64 * scale - 1, mg, uN);
    th.any_below = 1;
    // Divisible iff the unsigned remainder of |s1000| (via ~x = |x|-1 for
    // the negative side) lands on 0 / N-1 respectively.
    const int64_t s1000 = s64 * 1000;
    if (s1000 >= 0) {
      const UDiv d = udiv_n1000(static_cast<uint64_t>(s1000), mg, uN);
      th.equal = static_cast<int64_t>(d.q);
      th.eq_valid = static_cast<uint64_t>(d.r == 0);
    } else {
      const UDiv d = udiv_n1000(~static_cast<uint64_t>(s1000), mg, uN);
      th.equal = -1 - static_cast<int64_t>(d.q);
      th.eq_valid = static_cast<uint64_t>(d.r == uN - 1);
    }
    return th;
  }

  const __int128 r = sum * scale - 1;
  __int128 q = r / N;
  if (r % N < 0) --q;  // C++ division truncates; we need the floor
  if (q >= INT64_MAX) {
    th.below = INT64_MAX;
    th.any_below = 1;
  } else if (q >= INT64_MIN) {
    th.below = static_cast<int64_t>(q);
    th.any_below = 1;
  }
  const __int128 s1000 = sum * 1000;
  const __int128 qe = s1000 / N;
  if (s1000 % N == 0 && qe <= INT64_MAX && qe >= INT64_MIN) {
    th.equal = static_cast<int64_t>(qe);
    th.eq_valid = 1;
  }
  return th;
}

// Sums stay exact in wrapping uint64 arithmetic as long as every term's
// magnitude is below 2^57 (64 terms * 2^57 <= 2^63). Each walk tags the
// values it accumulated with `v ^ (v >> 63)` (an |v|-preserving encode);
// if the OR of the tags reaches the bound, the sum is redone in 128-bit.
constexpr uint64_t kNarrowSumBound = uint64_t{1} << 57;

struct WalkOut {
  uint64_t out = 0;       // survivors of this stage
  uint64_t wrap_sum = 0;  // next stage's metric summed over the survivors
  uint64_t enc_or = 0;    // OR of magnitude tags for the summed values
};

// One cascade step: walk the set bits of `cand` with `t &= t - 1`, build
// the keep mask arithmetically (no data-dependent branch), and accumulate
// the NEXT stage's metric over the survivors in the same pass — the
// cascade never re-walks a candidate set just to sum it.
template <typename KeepFn>
WalkOut walk_stage(uint64_t cand, KeepFn&& keep_of, const int64_t* next_metric) {
  WalkOut wo;
  if (next_metric != nullptr) {
    for (uint64_t t = cand; t != 0; t &= t - 1) {
      const auto i = static_cast<unsigned>(std::countr_zero(t));
      const uint64_t keep = keep_of(i);
      wo.out |= keep << i;
      const int64_t mv = next_metric[i] & -static_cast<int64_t>(keep);
      wo.wrap_sum += static_cast<uint64_t>(mv);
      wo.enc_or |= static_cast<uint64_t>(mv ^ (mv >> 63));
    }
  } else {
    for (uint64_t t = cand; t != 0; t &= t - 1) {
      const auto i = static_cast<unsigned>(std::countr_zero(t));
      wo.out |= keep_of(i) << i;
    }
  }
  return wo;
}

// ---- Dense SIMD lane (x86-64, runtime-dispatched) -------------------------
//
// The build targets baseline x86-64, so the dense kernels are compiled
// per-function for AVX2 and selected once at runtime; every other machine
// (and every group slice narrower than 64) takes the scalar walks above.
// Semantics are identical: the lane masks below expand candidate bits so
// non-candidates contribute neither keep bits nor sum terms.
#if defined(__x86_64__) && defined(__GNUC__)
#define HERMES_SCHED_DENSE_SIMD 1
#endif

#if HERMES_SCHED_DENSE_SIMD

bool dense_simd_available() {
  static const bool avail = __builtin_cpu_supports("avx2");
  return avail;
}

// 4-bit candidate nibble -> 4 x i64 all-ones/zero lane masks.
struct LaneMaskTable {
  alignas(32) int64_t v[16][4];
};
constexpr LaneMaskTable make_lane_masks() {
  LaneMaskTable t{};
  for (int b = 0; b < 16; ++b) {
    for (int l = 0; l < 4; ++l) {
      t.v[b][l] = (b >> l) & 1 ? -1 : 0;
    }
  }
  return t;
}
constexpr LaneMaskTable kLaneMasks = make_lane_masks();

__attribute__((target("avx2"))) inline __m256i lane_mask(uint64_t cand,
                                                         int block) {
  return _mm256_load_si256(reinterpret_cast<const __m256i*>(
      kLaneMasks.v[(cand >> (4 * block)) & 15]));
}

// |v|-preserving magnitude tag, the vector form of v ^ (v >> 63).
__attribute__((target("avx2"))) inline __m256i mag_tag(__m256i v) {
  const __m256i sign = _mm256_cmpgt_epi64(_mm256_setzero_si256(), v);
  return _mm256_xor_si256(v, sign);
}

__attribute__((target("avx2"))) inline uint64_t hsum_epi64(__m256i v) {
  const __m128i s = _mm_add_epi64(_mm256_castsi256_si128(v),
                                  _mm256_extracti128_si256(v, 1));
  return static_cast<uint64_t>(_mm_cvtsi128_si64(s)) +
         static_cast<uint64_t>(_mm_extract_epi64(s, 1));
}

__attribute__((target("avx2"))) inline uint64_t hor_epi64(__m256i v) {
  const __m128i s = _mm_or_si128(_mm256_castsi256_si128(v),
                                 _mm256_extracti128_si256(v, 1));
  return static_cast<uint64_t>(_mm_cvtsi128_si64(s)) |
         static_cast<uint64_t>(_mm_extract_epi64(s, 1));
}

// FilterTime over all 64 lanes: keep = !(now - enter > hang), same wrapped
// subtract as the scalar walk, plus the next stage's masked sum.
template <bool kAccumulate>
__attribute__((target("avx2"))) WalkOut
time_stage_dense_avx2(uint64_t cand, const int64_t* enter, int64_t now_ns,
                      int64_t hang_ns, const int64_t* next_metric) {
  const __m256i nowv = _mm256_set1_epi64x(now_ns);
  const __m256i hangv = _mm256_set1_epi64x(hang_ns);
  __m256i acc = _mm256_setzero_si256();
  __m256i tag = _mm256_setzero_si256();
  uint64_t out = 0;
  for (int b = 0; b < 16; ++b) {
    const __m256i e =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(enter + 4 * b));
    const __m256i hung =
        _mm256_cmpgt_epi64(_mm256_sub_epi64(nowv, e), hangv);
    const __m256i keep = _mm256_andnot_si256(hung, lane_mask(cand, b));
    out |= static_cast<uint64_t>(static_cast<uint32_t>(
               _mm256_movemask_pd(_mm256_castsi256_pd(keep))))
           << (4 * b);
    if constexpr (kAccumulate) {
      const __m256i mv = _mm256_and_si256(
          _mm256_loadu_si256(
              reinterpret_cast<const __m256i*>(next_metric + 4 * b)),
          keep);
      acc = _mm256_add_epi64(acc, mv);
      tag = _mm256_or_si256(tag, mag_tag(mv));
    }
  }
  WalkOut wo;
  wo.out = out;
  if constexpr (kAccumulate) {
    wo.wrap_sum = hsum_epi64(acc);
    wo.enc_or = hor_epi64(tag);
  }
  return wo;
}

// FilterCount keep pass over all 64 lanes: keep = ((v <= below) & any) |
// ((v == equal) & eq_valid), candidates masked per lane.
template <bool kAccumulate>
__attribute__((target("avx2"))) WalkOut
count_stage_dense_avx2(uint64_t cand, const int64_t* m,
                       const CountThreshold& th, const int64_t* next_metric) {
  const __m256i below = _mm256_set1_epi64x(th.below);
  const __m256i equal = _mm256_set1_epi64x(th.equal);
  const __m256i anym =
      _mm256_set1_epi64x(-static_cast<int64_t>(th.any_below));
  const __m256i eqm = _mm256_set1_epi64x(-static_cast<int64_t>(th.eq_valid));
  __m256i acc = _mm256_setzero_si256();
  __m256i tag = _mm256_setzero_si256();
  uint64_t out = 0;
  for (int b = 0; b < 16; ++b) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(m + 4 * b));
    __m256i keep =
        _mm256_andnot_si256(_mm256_cmpgt_epi64(v, below), anym);
    keep = _mm256_or_si256(
        keep, _mm256_and_si256(_mm256_cmpeq_epi64(v, equal), eqm));
    keep = _mm256_and_si256(keep, lane_mask(cand, b));
    out |= static_cast<uint64_t>(static_cast<uint32_t>(
               _mm256_movemask_pd(_mm256_castsi256_pd(keep))))
           << (4 * b);
    if constexpr (kAccumulate) {
      const __m256i mv = _mm256_and_si256(
          _mm256_loadu_si256(
              reinterpret_cast<const __m256i*>(next_metric + 4 * b)),
          keep);
      acc = _mm256_add_epi64(acc, mv);
      tag = _mm256_or_si256(tag, mag_tag(mv));
    }
  }
  WalkOut wo;
  wo.out = out;
  if constexpr (kAccumulate) {
    wo.wrap_sum = hsum_epi64(acc);
    wo.enc_or = hor_epi64(tag);
  }
  return wo;
}

// Candidate-masked sum of a column (leading count stage only).
__attribute__((target("avx2"))) void masked_sum_dense_avx2(uint64_t cand,
                                                           const int64_t* m,
                                                           uint64_t* wrap_sum,
                                                           uint64_t* enc_or) {
  __m256i acc = _mm256_setzero_si256();
  __m256i tag = _mm256_setzero_si256();
  for (int b = 0; b < 16; ++b) {
    const __m256i mv = _mm256_and_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(m + 4 * b)),
        lane_mask(cand, b));
    acc = _mm256_add_epi64(acc, mv);
    tag = _mm256_or_si256(tag, mag_tag(mv));
  }
  *wrap_sum = hsum_epi64(acc);
  *enc_or = hor_epi64(tag);
}

#else
constexpr bool dense_simd_available() { return false; }
#endif  // HERMES_SCHED_DENSE_SIMD

// The cascade over already-gathered SoA columns, entered at `first_stage`
// with the survivor set `w` (and, when `sum_ready`, the current stage's
// metric pre-summed over `w` by the caller's previous pass). Shared by
// schedule_gathered (first_stage = 0) and the fused gather+FilterTime
// entry of schedule_with_order (first_stage = 1).
ScheduleResult run_cascade(const int64_t* loop_enter_ns,
                           const int64_t* pending_events,
                           const int64_t* connections, uint32_t limit,
                           int64_t now_ns, int64_t hang_ns, int64_t tpm,
                           const FilterStage* order, uint32_t num_stages,
                           uint32_t first_stage, uint64_t w, uint64_t wrap_sum,
                           uint64_t enc_or, bool sum_ready,
                           ScheduleResult res) {
  const auto column = [&](FilterStage st) -> const int64_t* {
    switch (st) {
      case FilterStage::Time: return nullptr;  // compared, never summed
      case FilterStage::Connections: return connections;
      case FilterStage::PendingEvents: return pending_events;
    }
    return nullptr;
  };

  // Dense SIMD kernels process all 64 lanes of a full-width group; sparse
  // survivor sets and narrower slices take the scalar bit-walks.
  const bool dense_ok = limit == 64 && dense_simd_available();
  const int64_t narrow_cap = (INT64_MAX - 1) / (1000 + tpm);

  auto n = count_nonzero_bits(w);
  for (uint32_t s = first_stage; s < num_stages && w != 0; ++s) {
    const FilterStage st = order[s];
    const int64_t* next_m =
        s + 1 < num_stages ? column(order[s + 1]) : nullptr;
    const bool dense = dense_ok && n >= 16;

    WalkOut wo;
    if (st == FilterStage::Time) {
      // Same predicate as is_hung(), evaluated branchlessly per set bit.
#if HERMES_SCHED_DENSE_SIMD
      if (dense) {
        wo = next_m != nullptr
                 ? time_stage_dense_avx2<true>(w, loop_enter_ns, now_ns,
                                               hang_ns, next_m)
                 : time_stage_dense_avx2<false>(w, loop_enter_ns, now_ns,
                                                hang_ns, nullptr);
      } else
#endif
      {
        wo = walk_stage(
            w,
            [&](unsigned i) {
              return static_cast<uint64_t>(
                  !(now_ns - loop_enter_ns[i] > hang_ns));
            },
            next_m);
      }
    } else {
      const int64_t* m = column(st);
      if (!sum_ready) {
        // No prior pass summed this stage's column (it is the leading
        // stage): one extra pass over the candidates.
        wrap_sum = 0;
        enc_or = 0;
#if HERMES_SCHED_DENSE_SIMD
        if (dense) {
          masked_sum_dense_avx2(w, m, &wrap_sum, &enc_or);
        } else
#endif
        {
          for (uint64_t t = w; t != 0; t &= t - 1) {
            const int64_t v = m[std::countr_zero(t)];
            wrap_sum += static_cast<uint64_t>(v);
            enc_or |= static_cast<uint64_t>(v ^ (v >> 63));
          }
        }
      }
      __int128 sum;
      if (enc_or < kNarrowSumBound) {
        sum = static_cast<int64_t>(wrap_sum);
      } else {
        // Magnitudes near 2^63: redo the sum exactly in 128-bit (rare).
        __int128 wide = 0;
        for (uint64_t t = w; t != 0; t &= t - 1) {
          wide += m[std::countr_zero(t)];
        }
        sum = wide;
      }
      const CountThreshold th = count_threshold(sum, n, tpm, narrow_cap);
#if HERMES_SCHED_DENSE_SIMD
      if (dense) {
        wo = next_m != nullptr
                 ? count_stage_dense_avx2<true>(w, m, th, next_m)
                 : count_stage_dense_avx2<false>(w, m, th, nullptr);
      } else
#endif
      {
        wo = walk_stage(
            w,
            [&](unsigned i) {
              const int64_t v = m[i];
              return (static_cast<uint64_t>(v <= th.below) & th.any_below) |
                     (th.eq_valid & static_cast<uint64_t>(v == th.equal));
            },
            next_m);
      }
    }

    w = wo.out;
    n = count_nonzero_bits(w);
    wrap_sum = wo.wrap_sum;
    enc_or = wo.enc_or;
    sum_ready = next_m != nullptr;
    switch (st) {
      case FilterStage::Time: res.after_time = n; break;
      case FilterStage::Connections: res.after_conn = n; break;
      case FilterStage::PendingEvents: res.after_event = n; break;
    }
  }

  res.bitmap = w;
  res.selected = count_nonzero_bits(w);
  return res;
}

}  // namespace

ScheduleResult Scheduler::schedule(const WorkerStatusTable& wst, SimTime now,
                                   WorkerId base, uint32_t limit) const {
  return schedule_with_order(wst, now, cfg_.stage_order, cfg_.num_stages,
                             base, limit);
}

ScheduleResult Scheduler::schedule_with_order(const WorkerStatusTable& wst,
                                              SimTime now,
                                              const FilterStage* order,
                                              uint32_t num_stages,
                                              WorkerId base,
                                              uint32_t limit) const {
  if (limit == 0) {
    limit = wst.num_workers() - base;
  }
  HERMES_CHECK(limit <= kMaxWorkersPerGroup && base + limit <= wst.num_workers());

  if (path_ == SchedPath::Reference) {
    return schedule_reference_with_order(wst, now, order, num_stages, base,
                                         limit);
  }

  // Fast path: one SoA pass over the slice, then bit-walking filters.
  int64_t enter[kMaxWorkersPerGroup];
  int64_t pending[kMaxWorkersPerGroup];
  int64_t conns[kMaxWorkersPerGroup];
  const int64_t tpm = theta_permille_of(cfg_.theta_ratio);
  const int64_t hang_ns = cfg_.hang_threshold.ns();
  const uint64_t all = limit == 64 ? ~uint64_t{0} : ((uint64_t{1} << limit) - 1);

  // With the dense SIMD lane available the post-gather passes are cheap,
  // so plain gather + cascade wins; the fused scalar pass below is the
  // fallback when FilterTime leads but the kernels cannot run.
  if (num_stages == 0 || order[0] != FilterStage::Time ||
      (limit == 64 && dense_simd_available())) {
    wst.gather(base, limit, enter, pending, conns);
    return run_cascade(enter, pending, conns, limit, now.ns(), hang_ns, tpm,
                       order, num_stages, /*first_stage=*/0, all, 0, 0,
                       /*sum_ready=*/false, ScheduleResult{});
  }

  // FilterTime leads (the default order): fuse it into the gather — the
  // slot walk touches one cache line per worker either way, so the stage-1
  // keep bits and stage-2 sum ride along on the same pass.
  const bool next_is_conn =
      num_stages > 1 && order[1] == FilterStage::Connections;
  const int64_t now_ns = now.ns();
  uint64_t out = 0;
  uint64_t wrap_sum = 0;
  uint64_t enc_or = 0;
  for (uint32_t i = 0; i < limit; ++i) {
    const WorkerSnapshot s = wst.read(base + i);
    enter[i] = s.loop_enter_ns;
    pending[i] = s.pending_events;
    conns[i] = s.connections;
    const auto keep =
        static_cast<uint64_t>(!(now_ns - s.loop_enter_ns > hang_ns));
    out |= keep << i;
    const int64_t mv = (next_is_conn ? s.connections : s.pending_events) &
                       -static_cast<int64_t>(keep);
    wrap_sum += static_cast<uint64_t>(mv);
    enc_or |= static_cast<uint64_t>(mv ^ (mv >> 63));
  }
  ScheduleResult res;
  res.after_time = count_nonzero_bits(out);
  return run_cascade(enter, pending, conns, limit, now_ns, hang_ns, tpm,
                     order, num_stages, /*first_stage=*/1, out, wrap_sum,
                     enc_or,
                     /*sum_ready=*/num_stages > 1 &&
                         order[1] != FilterStage::Time,
                     res);
}

ScheduleResult Scheduler::schedule_reference_with_order(
    const WorkerStatusTable& wst, SimTime now, const FilterStage* order,
    uint32_t num_stages, WorkerId base, uint32_t limit) const {
  if (limit == 0) {
    limit = wst.num_workers() - base;
  }
  HERMES_CHECK(limit <= kMaxWorkersPerGroup && base + limit <= wst.num_workers());

  // Snapshot the slice once: each metric is an individual atomic read; the
  // table is read lock-free while writers keep updating (paper §5.3.1).
  WorkerSnapshot snaps[kMaxWorkersPerGroup];
  for (uint32_t i = 0; i < limit; ++i) {
    snaps[i] = wst.read(base + i);
  }

  const int64_t tpm = theta_permille_of(cfg_.theta_ratio);
  ScheduleResult res;
  WorkerBitmap w = limit == 64 ? ~0ull : ((1ull << limit) - 1);

  for (uint32_t s = 0; s < num_stages; ++s) {
    switch (order[s]) {
      case FilterStage::Time: {
        WorkerBitmap out = 0;
        for (uint32_t i = 0; i < limit; ++i) {
          if (bitmap_test(w, i) && !is_hung(snaps[i], now)) {
            out = bitmap_set(out, i);
          }
        }
        w = out;
        res.after_time = count_nonzero_bits(w);
        break;
      }
      case FilterStage::Connections:
        w = filter_count(w, base, limit, tpm,
                         [&](WorkerId id) { return snaps[id - base].connections; });
        res.after_conn = count_nonzero_bits(w);
        break;
      case FilterStage::PendingEvents:
        w = filter_count(w, base, limit, tpm, [&](WorkerId id) {
          return snaps[id - base].pending_events;
        });
        res.after_event = count_nonzero_bits(w);
        break;
    }
  }

  res.bitmap = w;
  res.selected = count_nonzero_bits(w);
  return res;
}

ScheduleResult Scheduler::schedule_gathered(const int64_t* loop_enter_ns,
                                            const int64_t* pending_events,
                                            const int64_t* connections,
                                            uint32_t limit, SimTime now,
                                            const FilterStage* order,
                                            uint32_t num_stages) const {
  HERMES_CHECK(limit > 0 && limit <= kMaxWorkersPerGroup);
  const uint64_t all = limit == 64 ? ~uint64_t{0} : ((uint64_t{1} << limit) - 1);
  return run_cascade(loop_enter_ns, pending_events, connections, limit,
                     now.ns(), cfg_.hang_threshold.ns(),
                     theta_permille_of(cfg_.theta_ratio), order, num_stages,
                     /*first_stage=*/0, all, 0, 0,
                     /*sum_ready=*/false, ScheduleResult{});
}

}  // namespace hermes::core
