// Hermes stage 2: the cascading worker filter (paper Algo. 1, §5.2.2).
//
// schedule() is the coarse-grained filter every worker runs at the end of
// its epoll event loop:
//   1. FilterTime:  drop workers whose loop-entry timestamp is stale
//                   (hung/crashed detection) — stability first;
//   2. FilterCount(conn):  keep workers with connections < avg + theta
//                   (guards against the "lag effect" of synchronized surges
//                   over accumulated connections);
//   3. FilterCount(event): keep workers with pending events < avg + theta
//                   (fast responders, lower latency).
// The filtering ORDER is a design decision the paper justifies; the
// ablation bench swaps it to show why. theta = theta_ratio * avg (Fig. 15).
//
// Two implementations of the same function (DESIGN.md §8):
//   * the REFERENCE path — per-worker read() snapshots, scalar loops over
//     all slots; structurally the obviously-correct transcription of
//     Algo. 1, kept as the differential oracle;
//   * the FAST path — one SoA gather over the group slice, then branchless
//     bit-walking (`w &= w - 1`) over surviving candidates only.
// Both use exact 128-bit fixed-point threshold math (see theta_permille),
// so their bitmaps are identical bit for bit; tests/sched_fast_test.cc
// proves it. HERMES_SCHED_FAST=0 pins the reference path process-wide.
//
// Single O(n) pass per filter over at most 64 workers; no allocation on the
// hot path.
#pragma once

#include <cstdint>

#include "core/bitmap.h"
#include "core/config.h"
#include "core/wst.h"
#include "util/types.h"

namespace hermes::core {

struct ScheduleResult {
  WorkerBitmap bitmap = 0;       // workers surviving all filters
  uint32_t after_time = 0;       // survivors after FilterTime
  uint32_t after_conn = 0;       // survivors after FilterCount(conn)
  uint32_t after_event = 0;      // survivors after FilterCount(event)
  uint32_t selected = 0;         // popcount(bitmap)
  // Set by HermesRuntime::schedule_and_sync: true when the bitmap was
  // stored into M_sel, false when the sync was change-suppressed or
  // dropped by fault injection.
  bool published = false;
};

// Which schedule() implementation runs (both compute the same bitmaps).
enum class SchedPath : uint8_t {
  Reference,  // scalar loops over per-worker snapshots (the oracle)
  Fast,       // SoA gather + branchless bit-walking (the default)
};

const char* to_string(SchedPath p);

// Process-wide default, read once from HERMES_SCHED_FAST: "0" selects the
// reference path, anything else (including unset) the fast path — the same
// pinning scheme as bpf::default_tier()/HERMES_BPF_TIER.
SchedPath default_sched_path();

// theta_ratio quantized to permille for the exact integer threshold
// comparison `v*n*1000 < sum*(1000 + theta_permille)`. Clamped to
// [0, 10^15] so |sum * (1000 + tpm)| < 2^69 * 2^50 stays far inside
// a signed 128-bit product.
int64_t theta_permille_of(double theta_ratio);

class Scheduler {
 public:
  explicit Scheduler(HermesConfig cfg)
      : cfg_(cfg), path_(default_sched_path()) {}

  const HermesConfig& config() const { return cfg_; }
  // Live policy updates (PolicyEndpoint / ops tooling). Safe: the
  // scheduler reads its config afresh on every schedule() call.
  HermesConfig& mutable_config() { return cfg_; }
  void set_theta_ratio(double r) { cfg_.theta_ratio = r; }

  SchedPath path() const { return path_; }
  void set_path(SchedPath p) { path_ = p; }

  // Run Algo. 1 over the first `limit` workers of the WST starting at
  // `base` (group slicing for >64-worker machines); limit <= 64.
  ScheduleResult schedule(const WorkerStatusTable& wst, SimTime now,
                          WorkerId base = 0, uint32_t limit = 0) const;

  // Ablation hook: run the cascade in a custom stage order.
  ScheduleResult schedule_with_order(const WorkerStatusTable& wst, SimTime now,
                                     const FilterStage* order,
                                     uint32_t num_stages, WorkerId base = 0,
                                     uint32_t limit = 0) const;

  // The retained reference implementation, callable regardless of path()
  // (differential tests, bench). Same semantics as schedule_with_order.
  ScheduleResult schedule_reference_with_order(const WorkerStatusTable& wst,
                                               SimTime now,
                                               const FilterStage* order,
                                               uint32_t num_stages,
                                               WorkerId base = 0,
                                               uint32_t limit = 0) const;

  // Fast-path core over an already-gathered SoA slice (arrays indexed
  // 0..limit-1). Exposed so the two-level variant can gather every group's
  // slots in one WST scan and filter per group from the same arrays.
  ScheduleResult schedule_gathered(const int64_t* loop_enter_ns,
                                   const int64_t* pending_events,
                                   const int64_t* connections, uint32_t limit,
                                   SimTime now, const FilterStage* order,
                                   uint32_t num_stages) const;

  // FilterTime predicate exposed for reuse (degradation, probes).
  bool is_hung(const WorkerSnapshot& snap, SimTime now) const {
    return now.ns() - snap.loop_enter_ns > cfg_.hang_threshold.ns();
  }

 private:
  HermesConfig cfg_;
  SchedPath path_;
};

}  // namespace hermes::core
