// Hermes stage 2: the cascading worker filter (paper Algo. 1, §5.2.2).
//
// schedule() is the coarse-grained filter every worker runs at the end of
// its epoll event loop:
//   1. FilterTime:  drop workers whose loop-entry timestamp is stale
//                   (hung/crashed detection) — stability first;
//   2. FilterCount(conn):  keep workers with connections < avg + theta
//                   (guards against the "lag effect" of synchronized surges
//                   over accumulated connections);
//   3. FilterCount(event): keep workers with pending events < avg + theta
//                   (fast responders, lower latency).
// The filtering ORDER is a design decision the paper justifies; the
// ablation bench swaps it to show why. theta = theta_ratio * avg (Fig. 15).
//
// Single O(n) pass per filter over at most 64 workers; no allocation on the
// hot path.
#pragma once

#include <cstdint>

#include "core/bitmap.h"
#include "core/config.h"
#include "core/wst.h"
#include "util/types.h"

namespace hermes::core {

struct ScheduleResult {
  WorkerBitmap bitmap = 0;       // workers surviving all filters
  uint32_t after_time = 0;       // survivors after FilterTime
  uint32_t after_conn = 0;       // survivors after FilterCount(conn)
  uint32_t after_event = 0;      // survivors after FilterCount(event)
  uint32_t selected = 0;         // popcount(bitmap)
};

class Scheduler {
 public:
  explicit Scheduler(HermesConfig cfg) : cfg_(cfg) {}

  const HermesConfig& config() const { return cfg_; }
  // Live policy updates (PolicyEndpoint / ops tooling). Safe: the
  // scheduler reads its config afresh on every schedule() call.
  HermesConfig& mutable_config() { return cfg_; }
  void set_theta_ratio(double r) { cfg_.theta_ratio = r; }

  // Run Algo. 1 over the first `limit` workers of the WST starting at
  // `base` (group slicing for >64-worker machines); limit <= 64.
  ScheduleResult schedule(const WorkerStatusTable& wst, SimTime now,
                          WorkerId base = 0, uint32_t limit = 0) const;

  // Ablation hook: run the cascade in a custom stage order.
  ScheduleResult schedule_with_order(const WorkerStatusTable& wst, SimTime now,
                                     const FilterStage* order,
                                     uint32_t num_stages, WorkerId base = 0,
                                     uint32_t limit = 0) const;

  // FilterTime predicate exposed for reuse (degradation, probes).
  bool is_hung(const WorkerSnapshot& snap, SimTime now) const {
    return now.ns() - snap.loop_enter_ns > cfg_.hang_threshold.ns();
  }

 private:
  HermesConfig cfg_;
};

}  // namespace hermes::core
