#include "core/wst.h"

namespace hermes::core {

WorkerStatusTable WorkerStatusTable::init(void* mem, uint32_t num_workers) {
  HERMES_CHECK(mem != nullptr && num_workers > 0);
  HERMES_CHECK_MSG(reinterpret_cast<uintptr_t>(mem) % 64 == 0,
                   "WST memory must be 64-byte aligned");
  auto* header = new (mem) Header{};
  header->magic = kMagic;
  header->version = kVersion;
  header->num_workers = num_workers;
  auto* slots = reinterpret_cast<WorkerSlot*>(
      static_cast<char*>(mem) + sizeof(Header));
  for (uint32_t i = 0; i < num_workers; ++i) {
    new (&slots[i]) WorkerSlot{};
  }
  return WorkerStatusTable{header, slots};
}

WorkerStatusTable WorkerStatusTable::attach(void* mem) {
  HERMES_CHECK(mem != nullptr);
  auto* header = static_cast<Header*>(mem);
  HERMES_CHECK_MSG(header->magic == kMagic, "WST magic mismatch");
  HERMES_CHECK_MSG(header->version == kVersion, "WST version mismatch");
  HERMES_CHECK(header->num_workers > 0);
  auto* slots = reinterpret_cast<WorkerSlot*>(
      static_cast<char*>(mem) + sizeof(Header));
  return WorkerStatusTable{header, slots};
}

}  // namespace hermes::core
