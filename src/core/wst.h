// Worker Status Table (WST): the lock-free shared-memory table at the heart
// of Hermes stage 1 (paper §4.1, §5.3.1).
//
// Layout and concurrency discipline follow the paper exactly:
//   * the table is partitioned by worker — each worker writes only its own
//     cache-line-aligned slot, so writers never contend;
//   * each metric is an independent atomic word: a reader may observe a
//     *set* of metrics mid-update (no seqlock, no reader/writer locks), but
//     never a torn individual value — the paper argues (§5.3.1) that
//     cross-metric inconsistency is harmless because the freshest values
//     best reflect runtime state;
//   * three metrics per worker: event-loop-entry timestamp ("avail"),
//     pending event count ("busy"), accumulated connections ("conn").
//
// The table lives in caller-provided memory (POSIX shm for real multi-
// process deployments — see shm/ShmRegion — or any in-process buffer for
// the simulator). It is a standard-layout POD of lock-free atomics, so
// attaching from another process that mapped the same bytes is sound.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <new>

#include "util/check.h"
#include "util/types.h"

namespace hermes::core {

struct alignas(64) WorkerSlot {
  // Nanosecond timestamp of the worker's latest event-loop entry
  // (Fig. 9 line 12: shm_avail_update).
  std::atomic<int64_t> loop_enter_ns{0};
  // Events returned by epoll_wait but not yet handled
  // (Fig. 9 lines 14/18: shm_busy_count(+n) / shm_busy_count(-1)).
  std::atomic<int64_t> pending_events{0};
  // Concurrent connections owned by this worker
  // (Fig. 9 lines 25/37: shm_conn_count(+/-1)).
  std::atomic<int64_t> connections{0};
  // Monotone count of completed event-loop iterations (scheduler call
  // frequency measurement, Fig. 14).
  std::atomic<uint64_t> loop_iterations{0};
};
static_assert(sizeof(WorkerSlot) == 64);
static_assert(std::atomic<int64_t>::is_always_lock_free);

// One consistent-enough snapshot row, as read by the scheduler.
struct WorkerSnapshot {
  int64_t loop_enter_ns = 0;
  int64_t pending_events = 0;
  int64_t connections = 0;
};

class WorkerStatusTable {
 public:
  struct alignas(64) Header {  // keeps the slot array cache-line aligned
    uint64_t magic = 0;
    uint32_t version = 0;
    uint32_t num_workers = 0;
  };
  static constexpr uint64_t kMagic = 0x48524d5357535431ull;  // "HRMSWST1"
  static constexpr uint32_t kVersion = 1;

  static size_t required_bytes(uint32_t num_workers) {
    return sizeof(Header) + static_cast<size_t>(num_workers) * sizeof(WorkerSlot);
  }

  // Placement-initialize a new table into `mem` (zeroed or not).
  static WorkerStatusTable init(void* mem, uint32_t num_workers);

  // Attach to a table previously init()ed in shared memory (validates the
  // header). Aborts on mismatch — attaching to garbage is unrecoverable.
  static WorkerStatusTable attach(void* mem);

  uint32_t num_workers() const { return header_->num_workers; }

  // ---- writer side (each worker touches only its own slot) -------------
  void update_avail(WorkerId w, SimTime now) {
    slot(w).loop_enter_ns.store(now.ns(), std::memory_order_release);
    slot(w).loop_iterations.fetch_add(1, std::memory_order_relaxed);
  }
  void add_pending(WorkerId w, int64_t delta) {
    slot(w).pending_events.fetch_add(delta, std::memory_order_relaxed);
  }
  void add_connections(WorkerId w, int64_t delta) {
    slot(w).connections.fetch_add(delta, std::memory_order_relaxed);
  }

  // ---- reader side (any worker's embedded scheduler) -------------------
  WorkerSnapshot read(WorkerId w) const {
    const WorkerSlot& s = slot(w);
    return WorkerSnapshot{
        s.loop_enter_ns.load(std::memory_order_acquire),
        s.pending_events.load(std::memory_order_relaxed),
        s.connections.load(std::memory_order_relaxed),
    };
  }
  // Single-pass SoA gather of `count` consecutive slots starting at `base`
  // into caller-provided arrays (the scheduling fast path, DESIGN.md §8).
  // Memory orders match read(): acquire on the heartbeat, relaxed on the
  // counts — the same per-metric atomic discipline, one slot touch each.
  void gather(WorkerId base, uint32_t count, int64_t* loop_enter_ns,
              int64_t* pending_events, int64_t* connections) const {
    for (uint32_t i = 0; i < count; ++i) {
      const WorkerSlot& s = slot(base + i);
      loop_enter_ns[i] = s.loop_enter_ns.load(std::memory_order_acquire);
      pending_events[i] = s.pending_events.load(std::memory_order_relaxed);
      connections[i] = s.connections.load(std::memory_order_relaxed);
    }
  }

  int64_t connections(WorkerId w) const {
    return slot(w).connections.load(std::memory_order_relaxed);
  }
  int64_t pending_events(WorkerId w) const {
    return slot(w).pending_events.load(std::memory_order_relaxed);
  }
  uint64_t loop_iterations(WorkerId w) const {
    return slot(w).loop_iterations.load(std::memory_order_relaxed);
  }

 private:
  WorkerStatusTable(Header* h, WorkerSlot* slots)
      : header_(h), slots_(slots) {}

  WorkerSlot& slot(WorkerId w) {
    HERMES_DCHECK(w < header_->num_workers);
    return slots_[w];
  }
  const WorkerSlot& slot(WorkerId w) const {
    HERMES_DCHECK(w < header_->num_workers);
    return slots_[w];
  }

  Header* header_;
  WorkerSlot* slots_;
};

}  // namespace hermes::core
