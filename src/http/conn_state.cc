#include "http/conn_state.h"

#include <cstdlib>
#include <string>

namespace hermes::http {

bool zero_copy_enabled_from_env() {
  const char* v = std::getenv("HERMES_ZEROCOPY");
  return v == nullptr || std::string_view{v} != "0";
}

ConnState::ConnState() : ConnState(Config{}) {}

ConnState::ConnState(const Config& cfg) : cfg_(cfg) {
  parser_.set_body_capture(cfg_.capture_body);
}

void ConnState::on_client_data(const netsim::IoSlice& slice) {
  if (slice.len == 0) return;
  stats_.bytes_in += slice.len;
  in_q_.push_back(slice);
  pump();
}

void ConnState::on_client_data(std::string_view flat) {
  while (!flat.empty()) {
    const uint32_t take =
        flat.size() < netsim::IoSegment::kDefaultCapacity
            ? static_cast<uint32_t>(flat.size())
            : netsim::IoSegment::kDefaultCapacity;
    netsim::SegRef seg = netsim::IoSegment::alloc(take);
    seg->append(flat.data(), take);
    on_client_data(netsim::IoSlice{std::move(seg), 0, take});
    flat.remove_prefix(take);
  }
}

void ConnState::pump() {
  while (!in_q_.empty() && !parser_.failed() && !saw_close_ &&
         ready_.size() < cfg_.max_pipeline) {
    netsim::IoSlice& front = in_q_.front();
    const std::string_view view =
        front.view().substr(in_q_off_, front.len - in_q_off_);
    // In zero-copy mode the fed bytes are retained (the wire chain below
    // references the same segment), so the parser may borrow views.
    const size_t consumed = parser_.feed(view, /*stable=*/cfg_.zero_copy);

    if (consumed > 0) {
      if (cfg_.zero_copy) {
        cur_wire_.append_ref(front.seg,
                             front.off + static_cast<uint32_t>(in_q_off_),
                             static_cast<uint32_t>(consumed));
        stats_.forward_bytes_referenced += consumed;
      } else {
        cur_wire_.append_copy(view.substr(0, consumed));
        stats_.forward_bytes_copied += consumed;
      }
      in_q_off_ += consumed;
      if (in_q_off_ == front.len) {
        in_q_.pop_front();
        in_q_off_ = 0;
      }
    }

    if (parser_.has_request()) {
      Request r = parser_.take();
      saw_close_ = !r.keep_alive();
      ++stats_.requests;
      ready_.push_back(Ready{std::move(r), std::move(cur_wire_)});
      cur_wire_ = netsim::IoChain{};
      continue;
    }
    if (consumed == 0) break;  // need more data (or backpressured)
  }
}

std::optional<ConnState::Ready> ConnState::pop_ready() {
  if (ready_.empty()) return std::nullopt;
  Ready out = std::move(ready_.front());
  ready_.pop_front();
  pump();  // backpressure may have paused parsing
  return out;
}

netsim::IoChain ConnState::egress(const netsim::IoChain& encoded) {
  netsim::IoChain out;
  out.append(encoded, /*by_ref=*/cfg_.zero_copy);
  if (cfg_.zero_copy) {
    stats_.forward_bytes_referenced += encoded.size();
  } else {
    stats_.forward_bytes_copied += encoded.size();
  }
  stats_.bytes_out += encoded.size();
  ++stats_.responses;
  return out;
}

netsim::IoChain ConnState::encode(const Response& r) {
  const std::string s = r.serialize();
  netsim::IoChain c;
  c.append_copy(s);
  return c;
}

size_t ConnState::buffered_bytes() const {
  size_t n = 0;
  for (const auto& s : in_q_) n += s.len;
  return n - in_q_off_;
}

}  // namespace hermes::http
