// Per-connection HTTP/1.1 state for the L7 proxy data plane: keep-alive,
// pipelining, and splice-style zero-copy forwarding.
//
// Client bytes arrive as retained iobuf slices. ConnState drives the
// incremental RequestParser directly over those slices — no flattening —
// and builds, per request, the exact *wire chain* the proxy forwards to
// the backend. In zero-copy mode the wire chain references the admitted
// segments (zero memcpy on the proxy path; header/target views borrow
// from the retained segments). In oracle mode (HERMES_ZEROCOPY=0) the
// wire chain deep-copies every byte — the differential reference whose
// output streams must be bit-identical to the zero-copy path.
//
// The same split applies on egress: a serialized backend response is
// encoded once (admission copy, identical in both modes) and then either
// referenced or re-copied toward the client.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string_view>

#include "http/parser.h"
#include "http/response.h"
#include "netsim/iobuf.h"

namespace hermes::http {

// HERMES_ZEROCOPY: unset or "1" → zero-copy; "0" → copy oracle.
bool zero_copy_enabled_from_env();

class ConnState {
 public:
  struct Config {
    bool zero_copy = true;
    // Capture parsed bodies into Request::body. The data plane leaves
    // this off: body bytes travel only in the wire chain.
    bool capture_body = false;
    // Parsed-but-unconsumed request cap (pipelining backpressure).
    uint32_t max_pipeline = 64;
  };

  // One fully parsed request plus the exact bytes that encoded it.
  struct Ready {
    Request request;
    netsim::IoChain wire;
  };

  struct Stats {
    uint64_t requests = 0;
    uint64_t responses = 0;
    uint64_t bytes_in = 0;
    uint64_t bytes_out = 0;
    // Proxy-path (forwarding) byte accounting. forward_bytes_copied
    // must be exactly 0 in zero-copy mode — the gated bench metric.
    uint64_t forward_bytes_copied = 0;
    uint64_t forward_bytes_referenced = 0;
  };

  ConnState();
  explicit ConnState(const Config& cfg);

  ConnState(const ConnState&) = delete;
  ConnState& operator=(const ConnState&) = delete;

  // Client→LB bytes: a slice of a retained segment (zero-copy entry).
  void on_client_data(const netsim::IoSlice& slice);
  // Admission helper: copies flat bytes into a fresh segment first
  // (models the NIC→userspace admission copy; identical in both modes).
  void on_client_data(std::string_view flat);

  bool has_ready() const { return !ready_.empty(); }
  std::optional<Ready> pop_ready();

  // LB→client chain for one encoded response: references `encoded` in
  // zero-copy mode, deep-copies it in the oracle.
  netsim::IoChain egress(const netsim::IoChain& encoded);

  // Serializes a Response into a chain (backend-side admission copy,
  // identical in both modes).
  static netsim::IoChain encode(const Response& r);

  bool failed() const { return parser_.failed(); }
  std::string_view error() const { return parser_.error(); }
  // True once a request carried Connection: close (or HTTP/1.0 without
  // keep-alive); further input is left unconsumed.
  bool wants_close() const { return saw_close_; }
  size_t buffered_bytes() const;

  const Stats& stats() const { return stats_; }
  const Config& config() const { return cfg_; }

 private:
  void pump();

  Config cfg_;
  RequestParser parser_;
  std::deque<netsim::IoSlice> in_q_;  // retained, not-yet-parsed bytes
  size_t in_q_off_ = 0;               // parse offset into in_q_.front()
  netsim::IoChain cur_wire_;          // bytes of the in-progress request
  std::deque<Ready> ready_;
  Stats stats_;
  bool saw_close_ = false;
};

}  // namespace hermes::http
