// L7 processing-cost model.
//
// The paper's central observation (§3): unlike L3/L4, L7 requests vary
// enormously in CPU cost — "simple data copying" to "encryption and
// compression" — so queue length alone cannot estimate load. This model
// assigns a deterministic CPU cost to a request given its size and the
// actions its matched rule enables. Calibrated to the paper's scale: normal
// LB processing latency is 200-300 us (§2.3), TLS handshakes and regex-heavy
// routing dominate case-4-style workloads, and 2 Gbps drives a 32-core LB
// to ~50% CPU (§3).
#pragma once

#include <cstdint>

#include "http/router.h"
#include "util/types.h"

namespace hermes::http {

struct CostParams {
  // Fixed cost of parsing + connection bookkeeping per request.
  SimTime base = SimTime::micros(40);
  // Per-rule-examined routing cost (regex-ish matching).
  SimTime per_rule = SimTime::micros(2);
  // Data-proportional copy cost per KiB.
  SimTime copy_per_kib = SimTime::micros(3);
  // TLS: handshake amortized on first request + per-KiB crypto.
  SimTime tls_handshake = SimTime::micros(900);
  SimTime tls_per_kib = SimTime::micros(12);
  // gzip per KiB of payload.
  SimTime gzip_per_kib = SimTime::micros(45);
  // Protocol translation per request.
  SimTime translate = SimTime::micros(110);
};

struct RequestShape {
  uint64_t bytes = 1024;       // request + response payload bytes
  size_t rules_examined = 10;  // routing scan length
  Actions actions{};
  bool first_on_connection = false;  // TLS handshake applies
};

class CostModel {
 public:
  CostModel() = default;
  explicit CostModel(CostParams p) : p_(p) {}

  const CostParams& params() const { return p_; }

  SimTime cost(const RequestShape& s) const {
    const int64_t kib = static_cast<int64_t>((s.bytes + 1023) / 1024);
    SimTime t = p_.base + p_.per_rule * static_cast<int64_t>(s.rules_examined)
                + p_.copy_per_kib * kib;
    if (s.actions.tls_terminate) {
      if (s.first_on_connection) t += p_.tls_handshake;
      t += p_.tls_per_kib * kib;
    }
    if (s.actions.gzip_response) t += p_.gzip_per_kib * kib;
    if (s.actions.protocol_translate) t += p_.translate;
    if (s.actions.rewrite_headers) t += p_.base / 4;
    return t;
  }

 private:
  CostParams p_{};
};

}  // namespace hermes::http
