#include "http/parser.h"

#include <algorithm>
#include <cctype>
#include <charconv>

namespace hermes::http {

namespace {

char ascii_lower(char c) {
  return (c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a') : c;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

}  // namespace

const char* to_string(Method m) {
  switch (m) {
    case Method::Get: return "GET";
    case Method::Head: return "HEAD";
    case Method::Post: return "POST";
    case Method::Put: return "PUT";
    case Method::Delete: return "DELETE";
    case Method::Connect: return "CONNECT";
    case Method::Options: return "OPTIONS";
    case Method::Trace: return "TRACE";
    case Method::Patch: return "PATCH";
    case Method::Unknown: return "UNKNOWN";
  }
  return "UNKNOWN";
}

Method parse_method(std::string_view s) {
  if (s == "GET") return Method::Get;
  if (s == "HEAD") return Method::Head;
  if (s == "POST") return Method::Post;
  if (s == "PUT") return Method::Put;
  if (s == "DELETE") return Method::Delete;
  if (s == "CONNECT") return Method::Connect;
  if (s == "OPTIONS") return Method::Options;
  if (s == "TRACE") return Method::Trace;
  if (s == "PATCH") return Method::Patch;
  return Method::Unknown;
}

bool HeaderMap::iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (ascii_lower(a[i]) != ascii_lower(b[i])) return false;
  }
  return true;
}

void HeaderMap::add(std::string name, std::string value) {
  headers_.emplace_back(std::move(name), std::move(value));
}

std::optional<std::string_view> HeaderMap::get(std::string_view name) const {
  for (const auto& [n, v] : headers_) {
    if (iequals(n, name)) return std::string_view{v};
  }
  return std::nullopt;
}

std::vector<std::string_view> HeaderMap::get_all(std::string_view name) const {
  std::vector<std::string_view> out;
  for (const auto& [n, v] : headers_) {
    if (iequals(n, name)) out.emplace_back(v);
  }
  return out;
}

bool Request::keep_alive() const {
  const auto conn = headers.get("connection");
  if (version_major == 1 && version_minor == 0) {
    return conn && HeaderMap::iequals(*conn, "keep-alive");
  }
  return !(conn && HeaderMap::iequals(*conn, "close"));
}

bool Request::is_websocket_upgrade() const {
  const auto up = headers.get("upgrade");
  return up && HeaderMap::iequals(*up, "websocket");
}

void RequestParser::set_error(const char* msg) {
  state_ = State::Error;
  error_ = msg;
}

size_t RequestParser::feed(std::string_view data) {
  size_t consumed = 0;
  while (consumed < data.size() && state_ != State::Complete &&
         state_ != State::Error) {
    const std::string_view rest = data.substr(consumed);
    switch (state_) {
      case State::RequestLine:
      case State::Headers:
      case State::ChunkSize:
      case State::ChunkTrailer: {
        // Line-oriented states: accumulate until CRLF (tolerate bare LF).
        const size_t nl = rest.find('\n');
        const size_t take_n = (nl == std::string_view::npos) ? rest.size()
                                                             : nl + 1;
        line_buf_.append(rest.data(), take_n);
        consumed += take_n;
        const size_t limit =
            state_ == State::RequestLine ? kMaxRequestLine : kMaxHeaderBytes;
        if (line_buf_.size() > limit) {
          set_error("line too long");
          break;
        }
        if (nl == std::string_view::npos) break;  // need more data

        std::string_view line{line_buf_};
        line.remove_suffix(1);  // '\n'
        if (!line.empty() && line.back() == '\r') line.remove_suffix(1);

        if (state_ == State::RequestLine) {
          if (line.empty()) {
            // Robustness: ignore leading blank lines (RFC 9112 §2.2).
            line_buf_.clear();
            break;
          }
          req_.wire_size += line_buf_.size();
          if (!parse_request_line(line)) {
            set_error("malformed request line");
          } else {
            state_ = State::Headers;
          }
        } else if (state_ == State::Headers) {
          req_.wire_size += line_buf_.size();
          if (line.empty()) {
            headers_done();
          } else if (!parse_header_line(line)) {
            set_error("malformed header");
          }
        } else if (state_ == State::ChunkSize) {
          req_.wire_size += line_buf_.size();
          // chunk-size [;extensions]
          std::string_view sz = line.substr(0, line.find(';'));
          sz = trim(sz);
          size_t value = 0;
          const auto [p, ec] = std::from_chars(
              sz.data(), sz.data() + sz.size(), value, 16);
          if (ec != std::errc{} || p != sz.data() + sz.size()) {
            set_error("bad chunk size");
          } else if (value == 0) {
            state_ = State::ChunkTrailer;
          } else if (req_.body.size() + value > kMaxBodyBytes) {
            set_error("body too large");
          } else {
            body_remaining_ = value;
            state_ = State::ChunkData;
          }
        } else {  // ChunkTrailer
          req_.wire_size += line_buf_.size();
          if (line.empty()) state_ = State::Complete;
          // else: trailer header, ignored
        }
        line_buf_.clear();
        break;
      }

      case State::Body: {
        const size_t take_n = std::min(body_remaining_, rest.size());
        req_.body.append(rest.data(), take_n);
        req_.wire_size += take_n;
        body_remaining_ -= take_n;
        consumed += take_n;
        if (body_remaining_ == 0) state_ = State::Complete;
        break;
      }

      case State::ChunkData: {
        // Chunk payload, then its trailing CRLF.
        if (body_remaining_ > 0) {
          const size_t take_n = std::min(body_remaining_, rest.size());
          req_.body.append(rest.data(), take_n);
          req_.wire_size += take_n;
          body_remaining_ -= take_n;
          consumed += take_n;
        } else {
          // Swallow CRLF after the chunk.
          const char c = rest.front();
          ++consumed;
          ++req_.wire_size;
          if (c == '\n') state_ = State::ChunkSize;
          else if (c != '\r') set_error("missing chunk CRLF");
        }
        break;
      }

      case State::Complete:
      case State::Error:
        break;
    }
  }
  return consumed;
}

bool RequestParser::parse_request_line(std::string_view line) {
  const size_t sp1 = line.find(' ');
  if (sp1 == std::string_view::npos) return false;
  const size_t sp2 = line.rfind(' ');
  if (sp2 == sp1) return false;

  req_.method = parse_method(line.substr(0, sp1));
  req_.target = std::string{trim(line.substr(sp1 + 1, sp2 - sp1 - 1))};
  if (req_.target.empty()) return false;

  const std::string_view version = line.substr(sp2 + 1);
  if (version.size() != 8 || !version.starts_with("HTTP/") ||
      version[6] != '.' || !std::isdigit(version[5]) ||
      !std::isdigit(version[7])) {
    return false;
  }
  req_.version_major = version[5] - '0';
  req_.version_minor = version[7] - '0';

  const size_t q = req_.target.find('?');
  if (q == std::string::npos) {
    req_.path = req_.target;
    req_.query.clear();
  } else {
    req_.path = req_.target.substr(0, q);
    req_.query = req_.target.substr(q + 1);
  }
  return true;
}

namespace {

// RFC 9110 token characters (valid in header field names).
bool is_tchar(char c) {
  if (std::isalnum(static_cast<unsigned char>(c))) return true;
  switch (c) {
    case '!': case '#': case '$': case '%': case '&': case '\'': case '*':
    case '+': case '-': case '.': case '^': case '_': case '`': case '|':
    case '~':
      return true;
    default:
      return false;
  }
}

}  // namespace

bool RequestParser::parse_header_line(std::string_view line) {
  const size_t colon = line.find(':');
  if (colon == std::string_view::npos || colon == 0) return false;
  std::string_view name = line.substr(0, colon);
  for (char c : name) {
    if (!is_tchar(c)) return false;
  }
  req_.headers.add(std::string{name}, std::string{trim(line.substr(colon + 1))});
  return true;
}

void RequestParser::headers_done() {
  const auto te = req_.headers.get("transfer-encoding");
  if (te && HeaderMap::iequals(*te, "chunked")) {
    chunked_ = true;
    state_ = State::ChunkSize;
    return;
  }
  const auto cl = req_.headers.get("content-length");
  if (cl) {
    size_t n = 0;
    const auto [p, ec] =
        std::from_chars(cl->data(), cl->data() + cl->size(), n);
    if (ec != std::errc{} || p != cl->data() + cl->size()) {
      set_error("bad content-length");
      return;
    }
    if (n > kMaxBodyBytes) {
      set_error("body too large");
      return;
    }
    body_remaining_ = n;
    state_ = n == 0 ? State::Complete : State::Body;
    return;
  }
  state_ = State::Complete;  // no body
}

Request RequestParser::take() {
  Request out = std::move(req_);
  req_ = Request{};
  line_buf_.clear();
  body_remaining_ = 0;
  chunked_ = false;
  state_ = State::RequestLine;
  error_ = "";
  return out;
}

}  // namespace hermes::http
