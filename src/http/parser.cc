#include "http/parser.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cstring>

namespace hermes::http {

namespace {

char ascii_lower(char c) {
  return (c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a') : c;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

// Strict decimal parse: 1*DIGIT, nothing else (no sign, no whitespace).
bool parse_dec(std::string_view s, uint64_t* out) {
  if (s.empty()) return false;
  const auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), *out);
  return ec == std::errc{} && p == s.data() + s.size();
}

// Calls fn(token) for each comma-separated, OWS-trimmed element of `s`.
// Returns false (and stops) if fn returns false or an element is empty.
template <typename Fn>
bool for_each_list_token(std::string_view s, Fn&& fn) {
  size_t start = 0;
  while (true) {
    const size_t comma = s.find(',', start);
    const std::string_view tok =
        trim(s.substr(start, comma == std::string_view::npos
                                 ? std::string_view::npos
                                 : comma - start));
    if (tok.empty() || !fn(tok)) return false;
    if (comma == std::string_view::npos) return true;
    start = comma + 1;
  }
}

}  // namespace

const char* to_string(Method m) {
  switch (m) {
    case Method::Get: return "GET";
    case Method::Head: return "HEAD";
    case Method::Post: return "POST";
    case Method::Put: return "PUT";
    case Method::Delete: return "DELETE";
    case Method::Connect: return "CONNECT";
    case Method::Options: return "OPTIONS";
    case Method::Trace: return "TRACE";
    case Method::Patch: return "PATCH";
    case Method::Unknown: return "UNKNOWN";
  }
  return "UNKNOWN";
}

Method parse_method(std::string_view s) {
  if (s == "GET") return Method::Get;
  if (s == "HEAD") return Method::Head;
  if (s == "POST") return Method::Post;
  if (s == "PUT") return Method::Put;
  if (s == "DELETE") return Method::Delete;
  if (s == "CONNECT") return Method::Connect;
  if (s == "OPTIONS") return Method::Options;
  if (s == "TRACE") return Method::Trace;
  if (s == "PATCH") return Method::Patch;
  return Method::Unknown;
}

bool HeaderMap::iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (ascii_lower(a[i]) != ascii_lower(b[i])) return false;
  }
  return true;
}

uint32_t HeaderMap::lower_hash(std::string_view s) {
  uint32_t h = 2166136261u;
  for (const char c : s) {
    h ^= static_cast<uint8_t>(ascii_lower(c));
    h *= 16777619u;
  }
  return h;
}

char* HeaderMap::arena_alloc(uint32_t n) {
  if (blocks_.empty() || blocks_.back().cap - blocks_.back().used < n) {
    const uint32_t cap = n > kBlockBytes ? n : kBlockBytes;
    blocks_.push_back(Block{std::make_unique<char[]>(cap), 0, cap});
  }
  Block& b = blocks_.back();
  char* p = b.buf.get() + b.used;
  b.used += n;
  return p;
}

std::string_view HeaderMap::intern(std::string_view s) {
  if (s.empty()) return {};
  char* p = arena_alloc(static_cast<uint32_t>(s.size()));
  std::memcpy(p, s.data(), s.size());
  return std::string_view{p, s.size()};
}

void HeaderMap::push_entry(const char* name, uint32_t name_len,
                           const char* value, uint32_t value_len) {
  const Entry e{name, value, name_len, value_len,
                lower_hash(std::string_view{name, name_len})};
  if (n_ < kInlineEntries) {
    inline_[n_] = e;
  } else {
    spill_.push_back(e);
  }
  ++n_;
}

void HeaderMap::add(std::string_view name, std::string_view value) {
  // One arena allocation covers both strings.
  char* p = arena_alloc(static_cast<uint32_t>(name.size() + value.size()));
  std::memcpy(p, name.data(), name.size());
  std::memcpy(p + name.size(), value.data(), value.size());
  push_entry(p, static_cast<uint32_t>(name.size()), p + name.size(),
             static_cast<uint32_t>(value.size()));
}

void HeaderMap::add_borrowed(std::string_view name, std::string_view value) {
  push_entry(name.data(), static_cast<uint32_t>(name.size()), value.data(),
             static_cast<uint32_t>(value.size()));
}

std::optional<std::string_view> HeaderMap::get(std::string_view name) const {
  const uint32_t h = lower_hash(name);
  for (size_t i = 0; i < n_; ++i) {
    const Entry& e = entry(i);
    if (e.hash == h && e.name_len == name.size() &&
        iequals(std::string_view{e.name, e.name_len}, name)) {
      return std::string_view{e.value, e.value_len};
    }
  }
  return std::nullopt;
}

std::vector<std::string_view> HeaderMap::get_all(std::string_view name) const {
  std::vector<std::string_view> out;
  const uint32_t h = lower_hash(name);
  for (size_t i = 0; i < n_; ++i) {
    const Entry& e = entry(i);
    if (e.hash == h && e.name_len == name.size() &&
        iequals(std::string_view{e.name, e.name_len}, name)) {
      out.emplace_back(e.value, e.value_len);
    }
  }
  return out;
}

void HeaderMap::clear() {
  n_ = 0;
  spill_.clear();
  blocks_.clear();
}

void HeaderMap::move_from(HeaderMap& o) {
  spill_ = std::move(o.spill_);
  blocks_ = std::move(o.blocks_);
  n_ = o.n_;
  const size_t inline_n = n_ < kInlineEntries ? n_ : kInlineEntries;
  std::copy(o.inline_, o.inline_ + inline_n, inline_);
  // Leave the source empty: its inline entries would otherwise dangle
  // into the arena blocks we just took.
  o.n_ = 0;
  o.spill_.clear();
  o.blocks_.clear();
}

bool Request::keep_alive() const {
  const auto conn = headers.get("connection");
  if (version_major == 1 && version_minor == 0) {
    return conn && HeaderMap::iequals(*conn, "keep-alive");
  }
  return !(conn && HeaderMap::iequals(*conn, "close"));
}

bool Request::is_websocket_upgrade() const {
  const auto up = headers.get("upgrade");
  return up && HeaderMap::iequals(*up, "websocket");
}

void RequestParser::set_error(const char* msg) {
  state_ = State::Error;
  error_ = msg;
}

size_t RequestParser::feed(std::string_view data, bool stable) {
  size_t consumed = 0;
  while (consumed < data.size() && state_ != State::Complete &&
         state_ != State::Error) {
    const std::string_view rest = data.substr(consumed);
    switch (state_) {
      case State::RequestLine:
      case State::Headers:
      case State::ChunkSize:
      case State::ChunkTrailer: {
        // Line-oriented states: scan for CRLF (tolerate bare LF). Lines
        // fully contained in this feed are parsed in place — no copy
        // into line_buf_; only lines spanning feeds are buffered.
        const size_t limit =
            state_ == State::RequestLine ? kMaxRequestLine : kMaxHeaderBytes;
        const size_t nl = rest.find('\n');
        if (nl == std::string_view::npos) {
          if (line_buf_.size() + rest.size() > limit) {
            set_error("line too long");
            break;
          }
          line_buf_.append(rest.data(), rest.size());
          consumed += rest.size();
          req_.wire_size += rest.size();
          break;  // need more data
        }
        const size_t raw_len = line_buf_.size() + nl + 1;
        if (raw_len > limit) {
          set_error("line too long");
          break;
        }
        consumed += nl + 1;
        req_.wire_size += nl + 1;
        std::string_view line;
        bool borrowable;
        if (line_buf_.empty()) {
          line = rest.substr(0, nl);
          borrowable = stable;
        } else {
          line_buf_.append(rest.data(), nl);
          line = line_buf_;
          borrowable = false;
        }
        if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
        process_line(line, borrowable, raw_len);
        line_buf_.clear();
        break;
      }

      case State::Body: {
        const size_t take_n =
            body_remaining_ < rest.size()
                ? static_cast<size_t>(body_remaining_)
                : rest.size();
        on_body_bytes(rest.substr(0, take_n));
        body_remaining_ -= take_n;
        consumed += take_n;
        if (body_remaining_ == 0) state_ = State::Complete;
        break;
      }

      case State::ChunkData: {
        // Chunk payload, then its trailing CRLF.
        if (body_remaining_ > 0) {
          const size_t take_n =
              body_remaining_ < rest.size()
                  ? static_cast<size_t>(body_remaining_)
                  : rest.size();
          on_body_bytes(rest.substr(0, take_n));
          body_remaining_ -= take_n;
          consumed += take_n;
        } else {
          // Swallow CRLF after the chunk.
          const char c = rest.front();
          ++consumed;
          ++req_.wire_size;
          if (c == '\n') state_ = State::ChunkSize;
          else if (c != '\r') set_error("missing chunk CRLF");
        }
        break;
      }

      case State::Complete:
      case State::Error:
        break;
    }
  }
  return consumed;
}

void RequestParser::process_line(std::string_view line, bool borrowable,
                                 size_t raw_len) {
  switch (state_) {
    case State::RequestLine:
      if (line.empty()) {
        // Robustness: ignore leading blank lines (RFC 9112 §2.2); they
        // do not count toward the request's wire size.
        req_.wire_size -= raw_len;
        return;
      }
      if (!parse_request_line(line, borrowable)) {
        set_error("malformed request line");
      } else {
        state_ = State::Headers;
      }
      return;
    case State::Headers:
      if (line.empty()) {
        headers_done();
      } else if (!parse_header_line(line, borrowable, req_.headers)) {
        set_error("malformed header");
      }
      return;
    case State::ChunkSize:
      on_chunk_size_line(line);
      return;
    case State::ChunkTrailer:
      if (line.empty()) {
        state_ = State::Complete;
      } else if (!parse_header_line(line, borrowable, req_.trailers)) {
        set_error("malformed trailer");
      }
      return;
    default:
      return;
  }
}

bool RequestParser::parse_request_line(std::string_view line,
                                       bool borrowable) {
  const size_t sp1 = line.find(' ');
  if (sp1 == std::string_view::npos) return false;
  const size_t sp2 = line.rfind(' ');
  if (sp2 == sp1) return false;

  req_.method = parse_method(line.substr(0, sp1));
  const std::string_view target = trim(line.substr(sp1 + 1, sp2 - sp1 - 1));
  if (target.empty()) return false;

  const std::string_view version = line.substr(sp2 + 1);
  if (version.size() != 8 || !version.starts_with("HTTP/") ||
      version[6] != '.' ||
      !std::isdigit(static_cast<unsigned char>(version[5])) ||
      !std::isdigit(static_cast<unsigned char>(version[7]))) {
    return false;
  }
  req_.version_major = version[5] - '0';
  req_.version_minor = version[7] - '0';

  req_.target = borrowable ? target : req_.headers.intern(target);
  const size_t q = req_.target.find('?');
  if (q == std::string_view::npos) {
    req_.path = req_.target;
    req_.query = {};
  } else {
    req_.path = req_.target.substr(0, q);
    req_.query = req_.target.substr(q + 1);
  }
  return true;
}

namespace {

// RFC 9110 token characters (valid in header field names).
bool is_tchar(char c) {
  if (std::isalnum(static_cast<unsigned char>(c))) return true;
  switch (c) {
    case '!': case '#': case '$': case '%': case '&': case '\'': case '*':
    case '+': case '-': case '.': case '^': case '_': case '`': case '|':
    case '~':
      return true;
    default:
      return false;
  }
}

int hex_val(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

bool RequestParser::parse_header_line(std::string_view line, bool borrowable,
                                      HeaderMap& into) {
  const size_t colon = line.find(':');
  if (colon == std::string_view::npos || colon == 0) return false;
  const std::string_view name = line.substr(0, colon);
  for (char c : name) {
    if (!is_tchar(c)) return false;
  }
  const std::string_view value = trim(line.substr(colon + 1));
  if (borrowable) {
    into.add_borrowed(name, value);
  } else {
    into.add(name, value);
  }
  return true;
}

void RequestParser::on_chunk_size_line(std::string_view line) {
  // Strict chunk-size grammar (RFC 9112 §7.1): 1*HEXDIG, then an
  // optional extension section introduced by ';' (extensions are
  // accepted and ignored). No leading whitespace.
  size_t i = 0;
  uint64_t value = 0;
  while (i < line.size() && hex_val(line[i]) >= 0) {
    value = value * 16 + static_cast<uint64_t>(hex_val(line[i]));
    if (value > kMaxBodyBytes) {
      set_error("body too large");
      return;
    }
    ++i;
  }
  if (i == 0) {
    set_error("bad chunk size");
    return;
  }
  if (i < line.size()) {
    size_t j = i;
    while (j < line.size() && (line[j] == ' ' || line[j] == '\t')) ++j;
    if (j < line.size() && line[j] != ';') {
      set_error("bad chunk size");
      return;
    }
  }
  if (value == 0) {
    state_ = State::ChunkTrailer;
    return;
  }
  if (body_bytes_ + value > kMaxBodyBytes) {
    set_error("body too large");
    return;
  }
  body_remaining_ = value;
  state_ = State::ChunkData;
}

void RequestParser::on_body_bytes(std::string_view chunk) {
  if (capture_body_) req_.body.append(chunk);
  body_bytes_ += chunk.size();
  req_.wire_size += chunk.size();
}

void RequestParser::headers_done() {
  const auto te_values = req_.headers.get_all("transfer-encoding");
  const auto cl_values = req_.headers.get_all("content-length");

  if (!te_values.empty()) {
    // Content-Length alongside Transfer-Encoding is the classic
    // request-smuggling shape: reject outright (RFC 9112 §6.1).
    if (!cl_values.empty()) {
      set_error("content-length with transfer-encoding");
      return;
    }
    // Flatten the (possibly repeated) coding list. "chunked" must be
    // the final coding and may appear only there; any other final
    // coding leaves the message length undeterminable — reject.
    std::vector<std::string_view> codings;
    for (const std::string_view v : te_values) {
      if (!for_each_list_token(v, [&](std::string_view tok) {
            codings.push_back(tok);
            return true;
          })) {
        set_error("malformed transfer-encoding");
        return;
      }
    }
    for (size_t i = 0; i < codings.size(); ++i) {
      const bool is_chunked = HeaderMap::iequals(codings[i], "chunked");
      if (i + 1 == codings.size()) {
        if (!is_chunked) {
          set_error("unsupported transfer-encoding");
          return;
        }
      } else if (is_chunked) {
        set_error("chunked not final transfer-encoding");
        return;
      }
    }
    chunked_ = true;
    state_ = State::ChunkSize;
    return;
  }

  if (!cl_values.empty()) {
    // Repeated Content-Length headers (or list members) must agree;
    // conflicting values are a smuggling shape (RFC 9110 §8.6).
    uint64_t n = 0;
    bool have = false;
    bool bad = false;
    bool conflict = false;
    for (const std::string_view v : cl_values) {
      if (!for_each_list_token(v, [&](std::string_view tok) {
            uint64_t val = 0;
            if (!parse_dec(tok, &val)) {
              bad = true;
              return false;
            }
            if (have && val != n) {
              conflict = true;
              return false;
            }
            n = val;
            have = true;
            return true;
          })) {
        set_error(conflict ? "conflicting content-length"
                           : "bad content-length");
        return;
      }
    }
    if (bad) {  // unreachable; kept for clarity
      set_error("bad content-length");
      return;
    }
    if (n > kMaxBodyBytes) {
      set_error("body too large");
      return;
    }
    body_remaining_ = n;
    state_ = n == 0 ? State::Complete : State::Body;
    return;
  }
  state_ = State::Complete;  // no body
}

Request RequestParser::take() {
  Request out = std::move(req_);
  req_ = Request{};
  line_buf_.clear();
  body_remaining_ = 0;
  body_bytes_ = 0;
  chunked_ = false;
  state_ = State::RequestLine;
  error_ = "";
  return out;
}

}  // namespace hermes::http
