// Incremental HTTP/1.1 request parser.
//
// The paper's L7 LB terminates connections and routes on application-layer
// attributes (§2.1: parse HTTP, route by policy, TLS offload, protocol
// translation, compression). This parser is the first step of that pipeline:
// it consumes bytes as they arrive (possibly fragmented arbitrarily) and
// produces a Request. Used by the live demo's real workers, by the
// simulator's data plane (http::ConnState feeds it straight from retained
// iobuf segments), and by tests.
//
// Scope: request line + headers + fixed Content-Length bodies + chunked
// transfer encoding (with chunk extensions and trailer sections). No HTTP/2
// (the paper's LBs translate such protocols before this stage).
//
// Message-framing headers are validated the way a terminating proxy must:
// conflicting duplicate Content-Length values, Content-Length combined with
// Transfer-Encoding, and transfer codings we cannot de-frame are all hard
// errors (request-smuggling shapes, RFC 9110 §8.6 / RFC 9112 §6.1).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace hermes::http {

enum class Method : uint8_t {
  Get, Head, Post, Put, Delete, Connect, Options, Trace, Patch, Unknown
};

const char* to_string(Method m);
Method parse_method(std::string_view s);

// Case-insensitive header collection preserving insertion order.
//
// Storage is a per-map bump arena (chunked, stable addresses): add()
// copies name/value bytes into the arena once, and entries live in a
// small inline array that spills to a vector only past kInlineEntries —
// a typical request performs one arena-block allocation total instead
// of two std::string heap allocations per header. Entries carry a
// precomputed lowercase FNV-1a hash of the name, so get()/get_all()
// compare hashes instead of re-lowercasing stored names on every probe.
//
// add_borrowed() skips the arena copy for callers that guarantee the
// bytes outlive the map (the zero-copy parse path over retained iobuf
// segments).
class HeaderMap {
 public:
  HeaderMap() = default;
  HeaderMap(HeaderMap&& o) noexcept { move_from(o); }
  HeaderMap& operator=(HeaderMap&& o) noexcept {
    if (this != &o) {
      clear();
      move_from(o);
    }
    return *this;
  }
  HeaderMap(const HeaderMap&) = delete;
  HeaderMap& operator=(const HeaderMap&) = delete;

  // Copies name/value into the map's arena.
  void add(std::string_view name, std::string_view value);
  // Stores views without copying; caller guarantees the referenced
  // bytes outlive this map.
  void add_borrowed(std::string_view name, std::string_view value);

  // First value for `name` (case-insensitive), if any.
  std::optional<std::string_view> get(std::string_view name) const;
  // All values for repeated headers.
  std::vector<std::string_view> get_all(std::string_view name) const;

  size_t size() const { return n_; }
  std::pair<std::string_view, std::string_view> at(size_t i) const {
    const Entry& e = entry(i);
    return {std::string_view{e.name, e.name_len},
            std::string_view{e.value, e.value_len}};
  }

  void clear();

  // Copies `s` into the arena and returns a stable view (used for the
  // request target, which shares the request's arena).
  std::string_view intern(std::string_view s);

  size_t arena_blocks() const { return blocks_.size(); }

  static bool iequals(std::string_view a, std::string_view b);
  // FNV-1a over the ASCII-lowercased bytes of `s`.
  static uint32_t lower_hash(std::string_view s);

 private:
  struct Entry {
    const char* name;
    const char* value;
    uint32_t name_len;
    uint32_t value_len;
    uint32_t hash;  // lower_hash(name)
  };

  static constexpr size_t kInlineEntries = 8;
  static constexpr uint32_t kBlockBytes = 1024;

  struct Block {
    std::unique_ptr<char[]> buf;
    uint32_t used = 0;
    uint32_t cap = 0;
  };

  const Entry& entry(size_t i) const {
    return i < kInlineEntries ? inline_[i] : spill_[i - kInlineEntries];
  }
  char* arena_alloc(uint32_t n);
  void push_entry(const char* name, uint32_t name_len, const char* value,
                  uint32_t value_len);
  void move_from(HeaderMap& o);

  Entry inline_[kInlineEntries];
  std::vector<Entry> spill_;
  uint32_t n_ = 0;
  std::vector<Block> blocks_;
};

// A parsed request. Move-only: target/path/query (and, for arena-owned
// headers, every name/value view) point into the request's HeaderMap
// arena, which has stable addresses across moves. When the parser ran
// in borrow mode (feed(..., stable=true)), views may instead point into
// the caller's retained buffers and are valid only as long as those
// buffers live — in the data plane, as long as the request's wire chain.
struct Request {
  Method method = Method::Unknown;
  std::string_view target;   // origin-form, e.g. "/index.html?q=1"
  std::string_view path;     // target without the query
  std::string_view query;    // without '?'
  int version_major = 1;
  int version_minor = 1;
  HeaderMap headers;
  HeaderMap trailers;        // chunked trailer section, if any
  std::string body;
  size_t wire_size = 0;      // total bytes consumed for this request

  Request() = default;
  Request(Request&&) noexcept = default;
  Request& operator=(Request&&) noexcept = default;
  Request(const Request&) = delete;
  Request& operator=(const Request&) = delete;

  std::optional<std::string_view> host() const {
    return headers.get("host");
  }
  bool keep_alive() const;
  bool is_websocket_upgrade() const;
};

// Push parser. Feed bytes; when a full request is available, take() it.
// One parser instance handles a whole keep-alive connection: after take(),
// feeding continues with the next pipelined request.
class RequestParser {
 public:
  enum class State : uint8_t {
    RequestLine, Headers, Body, ChunkSize, ChunkData, ChunkTrailer,
    Complete, Error
  };

  // Consumes up to data.size() bytes; returns bytes consumed. Stops
  // consuming once a request completes (pipelining: caller re-feeds rest).
  //
  // `stable=true` promises the fed bytes outlive the produced Request;
  // request-line and header lines that arrive unfragmented are then
  // *borrowed* (string_views straight into the caller's buffer, zero
  // copies). Lines that span feeds still fall back to an arena copy.
  size_t feed(std::string_view data, bool stable = false);

  State state() const { return state_; }
  bool has_request() const { return state_ == State::Complete; }
  bool failed() const { return state_ == State::Error; }
  std::string_view error() const { return error_; }

  // When off, body bytes are framed and counted (wire_size, body_bytes())
  // but not accumulated into Request::body — the data plane forwards the
  // raw wire chain instead of flattening the body. Default on.
  void set_body_capture(bool on) { capture_body_ = on; }
  // Body bytes seen for the request currently being parsed.
  uint64_t body_bytes() const { return body_bytes_; }

  // Retrieve the parsed request and reset for the next one.
  Request take();

  // Hard limits (guard against abusive inputs, as any real LB must).
  static constexpr size_t kMaxRequestLine = 8192;
  static constexpr size_t kMaxHeaderBytes = 64 * 1024;
  static constexpr size_t kMaxBodyBytes = 16 * 1024 * 1024;

 private:
  void set_error(const char* msg);
  void process_line(std::string_view line, bool borrowable, size_t raw_len);
  bool parse_request_line(std::string_view line, bool borrowable);
  bool parse_header_line(std::string_view line, bool borrowable,
                         HeaderMap& into);
  void headers_done();
  void on_chunk_size_line(std::string_view line);
  void on_body_bytes(std::string_view chunk);

  State state_ = State::RequestLine;
  std::string line_buf_;
  Request req_;
  uint64_t body_remaining_ = 0;
  uint64_t body_bytes_ = 0;
  bool chunked_ = false;
  bool capture_body_ = true;
  const char* error_ = "";
};

}  // namespace hermes::http
