// Incremental HTTP/1.1 request parser.
//
// The paper's L7 LB terminates connections and routes on application-layer
// attributes (§2.1: parse HTTP, route by policy, TLS offload, protocol
// translation, compression). This parser is the first step of that pipeline:
// it consumes bytes as they arrive (possibly fragmented arbitrarily) and
// produces a Request. Used by the live demo's real workers and by tests;
// the simulator models its cost via http::CostModel.
//
// Scope: request line + headers + fixed Content-Length bodies + chunked
// transfer encoding. No HTTP/2 (the paper's LBs translate such protocols
// before this stage).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace hermes::http {

enum class Method : uint8_t {
  Get, Head, Post, Put, Delete, Connect, Options, Trace, Patch, Unknown
};

const char* to_string(Method m);
Method parse_method(std::string_view s);

// Case-insensitive header collection preserving insertion order.
class HeaderMap {
 public:
  void add(std::string name, std::string value);
  // First value for `name` (case-insensitive), if any.
  std::optional<std::string_view> get(std::string_view name) const;
  // All values for repeated headers.
  std::vector<std::string_view> get_all(std::string_view name) const;
  size_t size() const { return headers_.size(); }
  const std::pair<std::string, std::string>& at(size_t i) const {
    return headers_[i];
  }

  static bool iequals(std::string_view a, std::string_view b);

 private:
  std::vector<std::pair<std::string, std::string>> headers_;
};

struct Request {
  Method method = Method::Unknown;
  std::string target;        // origin-form, e.g. "/index.html?q=1"
  std::string path;          // target without the query
  std::string query;         // without '?'
  int version_major = 1;
  int version_minor = 1;
  HeaderMap headers;
  std::string body;
  size_t wire_size = 0;      // total bytes consumed for this request

  std::optional<std::string_view> host() const {
    return headers.get("host");
  }
  bool keep_alive() const;
  bool is_websocket_upgrade() const;
};

// Push parser. Feed bytes; when a full request is available, take() it.
// One parser instance handles a whole keep-alive connection: after take(),
// feeding continues with the next pipelined request.
class RequestParser {
 public:
  enum class State : uint8_t {
    RequestLine, Headers, Body, ChunkSize, ChunkData, ChunkTrailer,
    Complete, Error
  };

  // Consumes up to data.size() bytes; returns bytes consumed. Stops
  // consuming once a request completes (pipelining: caller re-feeds rest).
  size_t feed(std::string_view data);

  State state() const { return state_; }
  bool has_request() const { return state_ == State::Complete; }
  bool failed() const { return state_ == State::Error; }
  std::string_view error() const { return error_; }

  // Retrieve the parsed request and reset for the next one.
  Request take();

  // Hard limits (guard against abusive inputs, as any real LB must).
  static constexpr size_t kMaxRequestLine = 8192;
  static constexpr size_t kMaxHeaderBytes = 64 * 1024;
  static constexpr size_t kMaxBodyBytes = 16 * 1024 * 1024;

 private:
  void set_error(const char* msg);
  bool parse_request_line(std::string_view line);
  bool parse_header_line(std::string_view line);
  void headers_done();

  State state_ = State::RequestLine;
  std::string line_buf_;
  Request req_;
  size_t body_remaining_ = 0;
  bool chunked_ = false;
  const char* error_ = "";
};

}  // namespace hermes::http
