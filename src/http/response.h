// Minimal HTTP/1.1 response serialization — the reply half of the live
// demo's L7 termination (parse with http::RequestParser, answer with
// http::Response).
#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace hermes::http {

struct Response {
  int status = 200;
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  Response& set_status(int s) {
    status = s;
    return *this;
  }
  Response& add_header(std::string name, std::string value) {
    headers.emplace_back(std::move(name), std::move(value));
    return *this;
  }
  Response& set_body(std::string b) {
    body = std::move(b);
    return *this;
  }

  // Serialize to wire form. Adds Content-Length automatically (unless the
  // caller already supplied one) so clients can frame the body.
  std::string serialize() const;

  static const char* reason_phrase(int status);
};

inline const char* Response::reason_phrase(int s) {
  switch (s) {
    case 200: return "OK";
    case 204: return "No Content";
    case 301: return "Moved Permanently";
    case 302: return "Found";
    case 400: return "Bad Request";
    case 403: return "Forbidden";
    case 404: return "Not Found";
    case 408: return "Request Timeout";
    case 413: return "Payload Too Large";
    case 429: return "Too Many Requests";
    case 499: return "Client Closed Request";  // the nginx code §6.2 cites
    case 500: return "Internal Server Error";
    case 502: return "Bad Gateway";
    case 503: return "Service Unavailable";
    case 504: return "Gateway Timeout";
    default: return "Unknown";
  }
}

inline std::string Response::serialize() const {
  std::string out;
  out.reserve(64 + body.size());
  out += "HTTP/1.1 ";
  out += std::to_string(status);
  out += ' ';
  out += reason_phrase(status);
  out += "\r\n";
  bool has_length = false;
  for (const auto& [name, value] : headers) {
    out += name;
    out += ": ";
    out += value;
    out += "\r\n";
    if (name.size() == 14) {
      // cheap case-insensitive "content-length" check
      static constexpr std::string_view kCl = "content-length";
      bool match = true;
      for (size_t i = 0; i < 14; ++i) {
        const char c = name[i];
        const char lower =
            (c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a') : c;
        if (lower != kCl[i]) {
          match = false;
          break;
        }
      }
      has_length = has_length || match;
    }
  }
  if (!has_length) {
    out += "Content-Length: ";
    out += std::to_string(body.size());
    out += "\r\n";
  }
  out += "\r\n";
  out += body;
  return out;
}

}  // namespace hermes::http
