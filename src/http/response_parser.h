// Client-side HTTP/1.1 response parsing — the other half of the live
// demo's loop (the demo client reads workers' responses with this instead
// of string scraping). One-shot: callers that buffer the full response
// (short control-plane exchanges) parse in a single call.
#pragma once

#include <charconv>
#include <optional>
#include <string>
#include <string_view>

#include "http/parser.h"  // HeaderMap

namespace hermes::http {

struct ParsedResponse {
  int status = 0;
  std::string reason;
  HeaderMap headers;
  std::string body;

  std::optional<std::string_view> header(std::string_view name) const {
    return headers.get(name);
  }
};

// Parse a complete response. Returns nullopt on malformed input or when
// the buffered body is shorter than Content-Length announces.
inline std::optional<ParsedResponse> parse_response(std::string_view wire) {
  ParsedResponse out;

  // Status line: HTTP/1.x SP status SP reason CRLF
  const size_t line_end = wire.find("\r\n");
  if (line_end == std::string_view::npos) return std::nullopt;
  std::string_view status_line = wire.substr(0, line_end);
  if (!status_line.starts_with("HTTP/1.")) return std::nullopt;
  const size_t sp1 = status_line.find(' ');
  if (sp1 == std::string_view::npos) return std::nullopt;
  const size_t sp2 = status_line.find(' ', sp1 + 1);
  const std::string_view code = status_line.substr(
      sp1 + 1, sp2 == std::string_view::npos ? std::string_view::npos
                                             : sp2 - sp1 - 1);
  if (std::from_chars(code.data(), code.data() + code.size(), out.status)
          .ec != std::errc{} ||
      out.status < 100 || out.status > 599) {
    return std::nullopt;
  }
  if (sp2 != std::string_view::npos) {
    out.reason = std::string{status_line.substr(sp2 + 1)};
  }

  // Headers until the blank line.
  size_t pos = line_end + 2;
  for (;;) {
    const size_t eol = wire.find("\r\n", pos);
    if (eol == std::string_view::npos) return std::nullopt;
    if (eol == pos) {  // blank line: end of headers
      pos += 2;
      break;
    }
    const std::string_view line = wire.substr(pos, eol - pos);
    const size_t colon = line.find(':');
    if (colon == std::string_view::npos || colon == 0) return std::nullopt;
    std::string_view value = line.substr(colon + 1);
    while (!value.empty() && (value.front() == ' ' || value.front() == '\t')) {
      value.remove_prefix(1);
    }
    out.headers.add(line.substr(0, colon), value);
    pos = eol + 2;
  }

  // Body: Content-Length if present, else everything remaining.
  const auto cl = out.headers.get("content-length");
  if (cl) {
    size_t want = 0;
    if (std::from_chars(cl->data(), cl->data() + cl->size(), want).ec !=
        std::errc{}) {
      return std::nullopt;
    }
    if (wire.size() - pos < want) return std::nullopt;  // truncated
    out.body = std::string{wire.substr(pos, want)};
  } else {
    out.body = std::string{wire.substr(pos)};
  }
  return out;
}

}  // namespace hermes::http
