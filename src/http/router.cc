#include "http/router.h"

namespace hermes::http {

bool RouteTable::host_matches(std::string_view pattern,
                              std::string_view host) {
  if (pattern.empty()) return true;
  // Strip an optional :port from the Host header value.
  const size_t colon = host.rfind(':');
  if (colon != std::string_view::npos &&
      host.find(':') == colon /* not IPv6 */) {
    host = host.substr(0, colon);
  }
  if (pattern.starts_with("*.")) {
    const std::string_view suffix = pattern.substr(1);  // ".example.com"
    return host.size() > suffix.size() &&
           HeaderMap::iequals(host.substr(host.size() - suffix.size()),
                              suffix);
  }
  return HeaderMap::iequals(pattern, host);
}

bool RouteTable::path_matches(std::string_view pattern,
                              std::string_view path) {
  if (pattern.empty()) return true;
  if (pattern.starts_with('=')) return path == pattern.substr(1);
  return path.starts_with(pattern);
}

MatchResult RouteTable::match(const Request& req) const {
  MatchResult result;
  const std::string_view host = req.host().value_or("");
  const Rule* best = nullptr;
  size_t best_specificity = 0;
  for (const Rule& r : rules_) {
    ++result.rules_examined;
    if (r.method && *r.method != req.method) continue;
    if (!host_matches(r.host, host)) continue;
    if (!path_matches(r.path_prefix, req.path)) continue;
    // Specificity: exact host (2) > wildcard (1) > any (0), weighted above
    // path-prefix length; first match wins ties.
    const size_t host_score =
        r.host.empty() ? 0 : (r.host.starts_with("*.") ? 1 : 2);
    const size_t specificity = host_score * 100000 + r.path_prefix.size() + 1;
    if (specificity > best_specificity) {
      best_specificity = specificity;
      best = &r;
    }
  }
  result.rule = best;
  return result;
}

}  // namespace hermes::http
