// Forwarding-rule table: the "HTTP-based routing" the paper's L7 LB
// performs per request (§2.1), plus the per-rule action set that drives the
// L7 cost model (TLS offload, compression, protocol translation).
//
// Rules are matched most-specific-first: exact host beats wildcard host;
// longer path prefix beats shorter; insertion order breaks ties. Fig. A5
// reports the CDF of rules per port in a region — the simulator's rule
// counts are drawn from that style of distribution and looked up through
// this table, so routing cost scales with rule complexity as in production.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "http/parser.h"

namespace hermes::http {

// L7 processing actions a rule enables; each adds cost (see CostModel).
struct Actions {
  bool tls_terminate = false;   // HTTPS decryption at the LB
  bool gzip_response = false;   // compress backend responses
  bool protocol_translate = false;  // e.g. QUIC -> HTTP/1.1
  bool rewrite_headers = false;

  bool operator==(const Actions&) const = default;
};

struct Rule {
  // Host match: exact ("api.example.com") or suffix wildcard
  // ("*.example.com"); empty = any host.
  std::string host;
  // Path match: prefix ("/static/") or exact ("=/health").
  std::string path_prefix;
  std::optional<Method> method;  // nullopt = any
  uint32_t backend_pool = 0;
  Actions actions{};
};

struct MatchResult {
  const Rule* rule = nullptr;
  size_t rules_examined = 0;  // cost driver: linear scan length
};

class RouteTable {
 public:
  void add_rule(Rule r) { rules_.push_back(std::move(r)); }
  size_t size() const { return rules_.size(); }
  const Rule& rule(size_t i) const { return rules_[i]; }

  // Match a parsed request. Linear most-specific-first scan, as common in
  // nginx-style location matching for moderate rule counts.
  MatchResult match(const Request& req) const;

  static bool host_matches(std::string_view pattern, std::string_view host);
  static bool path_matches(std::string_view pattern, std::string_view path);

 private:
  std::vector<Rule> rules_;
};

}  // namespace hermes::http
