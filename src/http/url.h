// URL utilities: percent-decoding and query-string parsing (RFC 3986),
// used by the policy control plane and anything routing on query params.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace hermes::http {

inline int hex_digit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

// Percent-decode `in`; '+' decodes to space when `form_encoding` is set
// (application/x-www-form-urlencoded). Returns nullopt on malformed
// escapes ("%g1", trailing "%2").
inline std::optional<std::string> percent_decode(std::string_view in,
                                                 bool form_encoding = false) {
  std::string out;
  out.reserve(in.size());
  for (size_t i = 0; i < in.size(); ++i) {
    const char c = in[i];
    if (c == '%') {
      if (i + 2 >= in.size()) return std::nullopt;  // truncated escape
      const int hi = hex_digit(in[i + 1]);
      const int lo = hex_digit(in[i + 2]);
      if (hi < 0 || lo < 0) return std::nullopt;
      out.push_back(static_cast<char>((hi << 4) | lo));
      i += 2;
    } else if (form_encoding && c == '+') {
      out.push_back(' ');
    } else {
      out.push_back(c);
    }
  }
  return out;
}

// Parse "a=1&b=two%20words" into decoded (key, value) pairs. Malformed
// escapes leave the raw text in place rather than dropping the pair.
inline std::vector<std::pair<std::string, std::string>> parse_query(
    std::string_view query) {
  std::vector<std::pair<std::string, std::string>> out;
  while (!query.empty()) {
    const size_t amp = query.find('&');
    std::string_view pair = query.substr(0, amp);
    if (!pair.empty()) {
      const size_t eq = pair.find('=');
      std::string_view k = pair.substr(0, eq);
      std::string_view v =
          eq == std::string_view::npos ? std::string_view{} : pair.substr(eq + 1);
      auto dk = percent_decode(k, /*form_encoding=*/true);
      auto dv = percent_decode(v, /*form_encoding=*/true);
      out.emplace_back(dk ? std::move(*dk) : std::string{k},
                       dv ? std::move(*dv) : std::string{v});
    }
    if (amp == std::string_view::npos) break;
    query.remove_prefix(amp + 1);
  }
  return out;
}

// First value for `key`, decoded.
inline std::optional<std::string> query_param(std::string_view query,
                                              std::string_view key) {
  for (auto& [k, v] : parse_query(query)) {
    if (k == key) return std::move(v);
  }
  return std::nullopt;
}

}  // namespace hermes::http
