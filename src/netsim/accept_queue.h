// Per-listening-socket accept queue: connections that completed the TCP
// handshake but have not yet been accept()ed by a userspace worker
// (paper §2.1, Fig. 1).
//
// Bounded like the kernel's (listen backlog); overflow drops the connection,
// which the sim layer counts — under reuseport a hung worker's queue filling
// up is exactly the failure mode the paper describes.
#pragma once

#include <cstddef>
#include <deque>

#include "netsim/connection.h"
#include "util/check.h"

namespace hermes::netsim {

class AcceptQueue {
 public:
  explicit AcceptQueue(size_t backlog = 1024) : backlog_(backlog) {}

  // Returns false (and drops) when the backlog is full.
  bool push(Connection c) {
    HERMES_DCHECK(c.valid() && c.state() == ConnState::Queued);
    if (queue_.size() >= backlog_) {
      ++dropped_;
      return false;
    }
    queue_.push_back(c);
    if (queue_.size() > high_watermark_) high_watermark_ = queue_.size();
    return true;
  }

  // accept(): dequeue the oldest pending connection; invalid view if empty.
  Connection pop() {
    if (queue_.empty()) return Connection{};
    Connection c = queue_.front();
    queue_.pop_front();
    return c;
  }

  // Account a backlog-overflow drop decided by the caller before any
  // connection state was allocated (the admit fast path).
  void note_drop() { ++dropped_; }

  bool empty() const { return queue_.empty(); }
  size_t size() const { return queue_.size(); }
  size_t backlog() const { return backlog_; }
  uint64_t dropped() const { return dropped_; }
  size_t high_watermark() const { return high_watermark_; }

 private:
  size_t backlog_;
  std::deque<Connection> queue_;
  uint64_t dropped_ = 0;
  size_t high_watermark_ = 0;
};

}  // namespace hermes::netsim
