// SoA connection arena: per-connection state in struct-of-arrays slabs with
// generation-tagged handles (Concury-style, see PAPERS.md).
//
// At fleet scale (millions of concurrent flows) one heap object per
// connection is the dominant allocator load and the worst cache layout for
// whole-fleet scans. ConnSlab instead stores each field as a column inside
// fixed-size chunks (64 Ki slots): allocation is a free-list pop, close is a
// push plus a generation bump, and fleet-wide scans (imbalance tables, PCC
// audits) stream one column at a time. Chunks never move once allocated, so
// a Connection view stays cheap: (slab, slot, generation).
//
// The generation tag is the use-after-free guard: destroying a slot
// increments its generation, so every outstanding view of the old
// connection goes invalid atomically — a stale view can never read or
// mutate the slot's next occupant. Debug builds abort on stale access;
// release builds make validity checkable via Connection::valid().
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "netsim/four_tuple.h"
#include "util/check.h"
#include "util/types.h"

namespace hermes::netsim {

using ConnId = uint64_t;

enum class ConnState : uint8_t {
  Queued,       // handshake done, waiting in an accept queue
  Accepted,     // dequeued by a worker via accept()
  Closed,
};

class ConnSlab;

// A generation-checked view of one slab row — the value type the rest of
// the stack passes around where it used to pass `Connection*`. 16 bytes,
// trivially copyable; a default-constructed view is invalid (the old
// nullptr). Accessors are index loads; debug builds verify the generation
// on every access so use-after-close aborts instead of aliasing whatever
// connection reused the slot.
class Connection {
 public:
  Connection() = default;

  bool valid() const;
  explicit operator bool() const { return valid(); }
  friend bool operator==(const Connection&, const Connection&) = default;

  ConnId id() const;
  const FourTuple& tuple() const;
  PortId port() const;
  TenantId tenant() const;
  ConnState state() const;
  WorkerId owner() const;
  SimTime created_at() const;
  void set_state(ConnState s) const;
  void set_owner(WorkerId w) const;

  // Slab row index; stable for the connection's lifetime. Usable as a key
  // into dense side tables (the slot is not reused while the conn lives).
  uint32_t slot() const { return slot_; }

 private:
  friend class ConnSlab;
  Connection(ConnSlab* slab, uint32_t slot, uint32_t gen)
      : slab_(slab), slot_(slot), gen_(gen) {}

  ConnSlab* slab_ = nullptr;
  uint32_t slot_ = 0;
  uint32_t gen_ = 0;
};

class ConnSlab {
 public:
  static constexpr uint32_t kChunkBits = 16;
  static constexpr uint32_t kChunkSlots = 1u << kChunkBits;  // 65536 rows

  // One arena chunk: every connection field as a parallel column. Chunks
  // are heap-allocated once and never moved or freed until the slab dies.
  struct Chunk {
    ConnId id[kChunkSlots];
    FourTuple tuple[kChunkSlots];
    SimTime created_at[kChunkSlots];
    WorkerId owner[kChunkSlots];
    TenantId tenant[kChunkSlots];
    uint32_t gen[kChunkSlots];
    PortId port[kChunkSlots];
    ConnState state[kChunkSlots];
  };

  ConnSlab() = default;
  ConnSlab(const ConnSlab&) = delete;
  ConnSlab& operator=(const ConnSlab&) = delete;

  // Allocate a row (reusing the most recently freed slot first) and
  // initialize it Queued/unowned. O(1); grows by one chunk when full.
  Connection create(ConnId id, const FourTuple& tuple, PortId port,
                    TenantId tenant, SimTime now) {
    uint32_t slot;
    if (!free_.empty()) {
      slot = free_.back();
      free_.pop_back();
    } else {
      slot = used_;
      if ((slot >> kChunkBits) == chunks_.size()) {
        chunks_.push_back(std::make_unique<Chunk>());
      }
      ++used_;
    }
    Chunk& ch = *chunks_[slot >> kChunkBits];
    const uint32_t off = slot & (kChunkSlots - 1);
    ch.id[off] = id;
    ch.tuple[off] = tuple;
    ch.created_at[off] = now;
    ch.owner[off] = kInvalidWorker;
    ch.tenant[off] = tenant;
    ch.port[off] = port;
    ch.state[off] = ConnState::Queued;
    ++live_;
    return Connection{this, slot, ch.gen[off]};
  }

  // Close a connection: generation bump invalidates every outstanding view,
  // then the slot goes back on the free list. Double-destroy (a stale view)
  // is a hard error in all build types.
  void destroy(Connection c) {
    HERMES_CHECK_MSG(c.slab_ == this && c.valid(),
                     "destroy of invalid/stale connection view");
    Chunk& ch = *chunks_[c.slot_ >> kChunkBits];
    const uint32_t off = c.slot_ & (kChunkSlots - 1);
    ch.state[off] = ConnState::Closed;
    ++ch.gen[off];
    free_.push_back(c.slot_);
    --live_;
  }

  uint64_t live() const { return live_; }
  uint32_t used() const { return used_; }  // high-water row count
  size_t chunk_count() const { return chunks_.size(); }
  const Chunk& chunk(size_t i) const { return *chunks_[i]; }

  // Visit every live connection in slot order. `f` takes a Connection view.
  // Column scan, no pointer chasing; freed rows are state == Closed.
  template <class F>
  void for_each_live(F&& f) {
    for (size_t c = 0; c < chunks_.size(); ++c) {
      const Chunk& ch = *chunks_[c];
      const uint32_t base = static_cast<uint32_t>(c) << kChunkBits;
      const uint32_t n = std::min(kChunkSlots, used_ - base);
      for (uint32_t off = 0; off < n; ++off) {
        if (ch.state[off] != ConnState::Closed) {
          f(Connection{this, base + off, ch.gen[off]});
        }
      }
    }
  }

 private:
  friend class Connection;

  const Chunk& chunk_of(uint32_t slot) const {
    return *chunks_[slot >> kChunkBits];
  }
  Chunk& chunk_of(uint32_t slot) { return *chunks_[slot >> kChunkBits]; }
  static uint32_t off_of(uint32_t slot) { return slot & (kChunkSlots - 1); }

  std::vector<std::unique_ptr<Chunk>> chunks_;
  std::vector<uint32_t> free_;
  uint32_t used_ = 0;
  uint64_t live_ = 0;
};

inline bool Connection::valid() const {
  return slab_ != nullptr &&
         slab_->chunk_of(slot_).gen[ConnSlab::off_of(slot_)] == gen_;
}

inline ConnId Connection::id() const {
  HERMES_DCHECK(valid());
  return slab_->chunk_of(slot_).id[ConnSlab::off_of(slot_)];
}
inline const FourTuple& Connection::tuple() const {
  HERMES_DCHECK(valid());
  return slab_->chunk_of(slot_).tuple[ConnSlab::off_of(slot_)];
}
inline PortId Connection::port() const {
  HERMES_DCHECK(valid());
  return slab_->chunk_of(slot_).port[ConnSlab::off_of(slot_)];
}
inline TenantId Connection::tenant() const {
  HERMES_DCHECK(valid());
  return slab_->chunk_of(slot_).tenant[ConnSlab::off_of(slot_)];
}
inline ConnState Connection::state() const {
  HERMES_DCHECK(valid());
  return slab_->chunk_of(slot_).state[ConnSlab::off_of(slot_)];
}
inline WorkerId Connection::owner() const {
  HERMES_DCHECK(valid());
  return slab_->chunk_of(slot_).owner[ConnSlab::off_of(slot_)];
}
inline SimTime Connection::created_at() const {
  HERMES_DCHECK(valid());
  return slab_->chunk_of(slot_).created_at[ConnSlab::off_of(slot_)];
}
inline void Connection::set_state(ConnState s) const {
  HERMES_DCHECK(valid());
  slab_->chunk_of(slot_).state[ConnSlab::off_of(slot_)] = s;
}
inline void Connection::set_owner(WorkerId w) const {
  HERMES_DCHECK(valid());
  slab_->chunk_of(slot_).owner[ConnSlab::off_of(slot_)] = w;
}

}  // namespace hermes::netsim
