// A TCP connection after the in-"kernel" three-way handshake.
//
// Connection state lives in the SoA arena (conn_slab.h); `Connection` is a
// 16-byte generation-checked view of one slab row. This header survives as
// the historical include point for the connection types.
#pragma once

#include "netsim/conn_slab.h"
