// A TCP connection after the in-"kernel" three-way handshake.
//
// netsim keeps connections intentionally thin: identity, tuple, and which
// worker ended up owning them. The sim layer hangs workload state (request
// schedule, per-request cost) off the id.
#pragma once

#include <cstdint>

#include "netsim/four_tuple.h"
#include "util/types.h"

namespace hermes::netsim {

using ConnId = uint64_t;

enum class ConnState : uint8_t {
  Queued,       // handshake done, waiting in an accept queue
  Accepted,     // dequeued by a worker via accept()
  Closed,
};

struct Connection {
  ConnId id = 0;
  FourTuple tuple{};
  PortId port = 0;
  TenantId tenant = 0;
  ConnState state = ConnState::Queued;
  WorkerId owner = kInvalidWorker;  // set at accept time
  SimTime created_at{};
};

}  // namespace hermes::netsim
