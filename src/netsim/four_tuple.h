// Connection 4-tuple and the kernel's jhash used for reuseport selection.
//
// The hash matters for fidelity: reuseport's "stateless hashing may perform
// poorly under heavy-hitter traffic with hash collisions" (paper §2.2) is a
// property of hashing real tuples, so we implement the same Jenkins
// jhash_3words the kernel uses for inet_ehashfn-style socket selection.
#pragma once

#include <cstdint>
#include <functional>

namespace hermes::netsim {

struct FourTuple {
  uint32_t saddr = 0;
  uint32_t daddr = 0;
  uint16_t sport = 0;
  uint16_t dport = 0;

  bool operator==(const FourTuple&) const = default;
};

// Bob Jenkins' jhash final mix, as in include/linux/jhash.h.
namespace detail {
inline uint32_t rol32(uint32_t x, int k) { return (x << k) | (x >> (32 - k)); }
}  // namespace detail

inline uint32_t jhash_3words(uint32_t a, uint32_t b, uint32_t c,
                             uint32_t initval) {
  constexpr uint32_t kGolden = 0xdeadbeef;
  a += kGolden + (3u << 2) + initval;
  b += kGolden + (3u << 2) + initval;
  c += kGolden + (3u << 2) + initval;
  c ^= b; c -= detail::rol32(b, 14);
  a ^= c; a -= detail::rol32(c, 11);
  b ^= a; b -= detail::rol32(a, 25);
  c ^= b; c -= detail::rol32(b, 16);
  a ^= c; a -= detail::rol32(c, 4);
  b ^= a; b -= detail::rol32(a, 14);
  c ^= b; c -= detail::rol32(b, 24);
  return c;
}

// The 4-tuple hash a SYN carries into reuseport selection (and that the
// eBPF context exposes as `hash`).
inline uint32_t skb_hash(const FourTuple& t, uint32_t initval = 0) {
  return jhash_3words(t.saddr, t.daddr,
                      (static_cast<uint32_t>(t.sport) << 16) | t.dport,
                      initval);
}

// Hash over (daddr, dport) only: consistent per destination service, used
// for the cache-locality group selection of Appendix C / Fig. A6.
inline uint32_t locality_hash(const FourTuple& t, uint32_t initval = 0) {
  return jhash_3words(t.daddr, t.dport, 0x6c6f6361 /*"loca"*/, initval);
}

// reciprocal_scale(): map a u32 hash uniformly onto [0, n) without division
// (include/linux/kernel.h). Used both by reuseport's default selection and
// inside the Hermes dispatch program.
inline uint32_t reciprocal_scale(uint32_t val, uint32_t ep_ro) {
  return static_cast<uint32_t>(
      (static_cast<uint64_t>(val) * ep_ro) >> 32);
}

}  // namespace hermes::netsim

template <>
struct std::hash<hermes::netsim::FourTuple> {
  size_t operator()(const hermes::netsim::FourTuple& t) const noexcept {
    return hermes::netsim::skb_hash(t, 0x9e3779b9);
  }
};
