// Ref-counted segment/chain byte buffers for the L7 data plane.
//
// Payload bytes admitted on the client side of the proxy live in
// IoSegment blocks; forwarding to the backend side appends *references*
// to those segments (splice-style), so the proxy path itself performs
// zero memcpy. A copying mode is retained by the callers (ConnState /
// DataPlane) as the differential oracle: both modes must produce
// bit-identical byte streams, which IoChain::fnv1a() checks cheaply.
//
// Concurrency: the simulator is single-threaded by design (workers are
// simulated actors inside one event loop), so refcounts are plain
// uint32_t, not atomics. A real kernel-bypass data plane would pin a
// chain to one core the same way.
//
// Mutation rule: segment bytes are append-only. A chain may memcpy new
// bytes into its tail segment only while it holds the *sole* reference
// to that segment and the tail slice ends exactly at the segment's
// write frontier; bytes that any other slice can see are immutable.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/check.h"

namespace hermes::netsim {

// Process-wide allocation/copy accounting. Benches reset this around a
// timed region to prove the zero-copy path performs no forwarding
// memcpy; tests use it to check segment recycling.
struct IoBufStats {
  uint64_t segments_allocated = 0;
  uint64_t segments_freed = 0;
  uint64_t segment_bytes_allocated = 0;
  uint64_t bytes_copied = 0;      // bytes memcpy'd into segments
  uint64_t bytes_referenced = 0;  // bytes appended by reference (no copy)

  uint64_t segments_live() const {
    return segments_allocated - segments_freed;
  }
  void reset() { *this = IoBufStats{}; }
};

inline IoBufStats& iobuf_stats() {
  static IoBufStats s;
  return s;
}

class SegRef;

// One refcounted block of bytes. Header and payload share a single
// allocation; the payload trails the header.
class IoSegment {
 public:
  static constexpr uint32_t kDefaultCapacity = 4096;

  static SegRef alloc(uint32_t capacity = kDefaultCapacity);

  char* data() { return reinterpret_cast<char*>(this + 1); }
  const char* data() const { return reinterpret_cast<const char*>(this + 1); }
  uint32_t size() const { return size_; }
  uint32_t capacity() const { return cap_; }
  uint32_t avail() const { return cap_ - size_; }
  uint32_t refs() const { return refs_; }

  // Appends up to n bytes into unused capacity; returns bytes written.
  // Written bytes become immutable once any other reference can see
  // them — callers enforce the sole-reference rule (see file comment).
  uint32_t append(const void* src, uint32_t n) {
    const uint32_t take = n < avail() ? n : avail();
    std::memcpy(data() + size_, src, take);
    size_ += take;
    return take;
  }

 private:
  friend class SegRef;
  explicit IoSegment(uint32_t cap) : cap_(cap) {}
  ~IoSegment() = default;

  void retain() { ++refs_; }
  void release() {
    HERMES_DCHECK(refs_ > 0);
    if (--refs_ == 0) {
      ++iobuf_stats().segments_freed;
      this->~IoSegment();
      ::operator delete(static_cast<void*>(this));
    }
  }

  uint32_t refs_ = 1;
  uint32_t size_ = 0;
  uint32_t cap_;
};

// Owning handle to an IoSegment (intrusive refcount).
class SegRef {
 public:
  SegRef() = default;
  ~SegRef() { reset(); }

  SegRef(const SegRef& o) : p_(o.p_) {
    if (p_ != nullptr) p_->retain();
  }
  SegRef& operator=(const SegRef& o) {
    if (this != &o) {
      if (o.p_ != nullptr) o.p_->retain();
      reset();
      p_ = o.p_;
    }
    return *this;
  }
  SegRef(SegRef&& o) noexcept : p_(o.p_) { o.p_ = nullptr; }
  SegRef& operator=(SegRef&& o) noexcept {
    if (this != &o) {
      reset();
      p_ = o.p_;
      o.p_ = nullptr;
    }
    return *this;
  }

  IoSegment* get() const { return p_; }
  IoSegment* operator->() const { return p_; }
  IoSegment& operator*() const { return *p_; }
  explicit operator bool() const { return p_ != nullptr; }
  bool operator==(const SegRef& o) const { return p_ == o.p_; }

  void reset() {
    if (p_ != nullptr) {
      p_->release();
      p_ = nullptr;
    }
  }

 private:
  friend class IoSegment;
  explicit SegRef(IoSegment* p) : p_(p) {}  // adopts the initial ref
  IoSegment* p_ = nullptr;
};

inline SegRef IoSegment::alloc(uint32_t capacity) {
  HERMES_DCHECK(capacity > 0);
  void* raw = ::operator new(sizeof(IoSegment) + capacity);
  auto* seg = new (raw) IoSegment(capacity);
  ++iobuf_stats().segments_allocated;
  iobuf_stats().segment_bytes_allocated += capacity;
  return SegRef(seg);
}

// A view of [off, off+len) within one segment, holding a reference.
struct IoSlice {
  SegRef seg;
  uint32_t off = 0;
  uint32_t len = 0;

  std::string_view view() const {
    return seg ? std::string_view(seg->data() + off, len) : std::string_view();
  }
};

// An ordered chain of slices: the unit of buffered bytes on either side
// of the proxy. append_ref() is the zero-copy path; append_copy() is
// both the admission path (bytes entering the simulated machine) and
// the copy-oracle forwarding path.
class IoChain {
 public:
  IoChain() = default;
  IoChain(IoChain&&) noexcept = default;
  IoChain& operator=(IoChain&&) noexcept = default;
  IoChain(const IoChain&) = delete;
  IoChain& operator=(const IoChain&) = delete;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_t num_slices() const { return slices_.size(); }
  const std::vector<IoSlice>& slices() const { return slices_; }

  void clear() {
    slices_.clear();
    size_ = 0;
  }

  // Zero-copy append: shares [off, off+len) of seg. Coalesces with the
  // tail slice when contiguous in the same segment.
  void append_ref(const SegRef& seg, uint32_t off, uint32_t len) {
    if (len == 0) return;
    HERMES_DCHECK(seg && off + len <= seg->size());
    iobuf_stats().bytes_referenced += len;
    size_ += len;
    if (!slices_.empty()) {
      IoSlice& tail = slices_.back();
      if (tail.seg == seg && tail.off + tail.len == off) {
        tail.len += len;
        return;
      }
    }
    slices_.push_back(IoSlice{seg, off, len});
  }

  void append_ref(const IoSlice& s) { append_ref(s.seg, s.off, s.len); }

  void append_ref(const IoChain& other) {
    for (const IoSlice& s : other.slices_) append_ref(s);
  }

  // Copying append: memcpy into this chain's writable tail, allocating
  // segments as needed. Counted in iobuf_stats().bytes_copied.
  void append_copy(const void* src, size_t n) {
    const char* p = static_cast<const char*>(src);
    iobuf_stats().bytes_copied += n;
    size_ += n;
    while (n > 0) {
      IoSegment* tail = writable_tail();
      if (tail == nullptr) {
        const uint32_t cap =
            n > IoSegment::kDefaultCapacity
                ? static_cast<uint32_t>(
                      n < UINT32_MAX ? n : IoSegment::kDefaultCapacity)
                : IoSegment::kDefaultCapacity;
        SegRef seg = IoSegment::alloc(cap);
        slices_.push_back(IoSlice{std::move(seg), 0, 0});
        tail = slices_.back().seg.get();
      }
      const uint32_t wrote =
          tail->append(p, n < UINT32_MAX ? static_cast<uint32_t>(n)
                                         : UINT32_MAX - 1);
      slices_.back().len += wrote;
      p += wrote;
      n -= wrote;
    }
  }

  void append_copy(std::string_view s) { append_copy(s.data(), s.size()); }

  // Appends `other` either by reference (zero-copy) or by deep copy
  // (the oracle), so call sites read as one line with a mode flag.
  void append(const IoChain& other, bool by_ref) {
    if (by_ref) {
      append_ref(other);
    } else {
      for (const IoSlice& s : other.slices()) append_copy(s.view());
    }
  }

  // Drops n bytes from the front (reader side).
  void consume(size_t n) {
    HERMES_DCHECK(n <= size_);
    size_ -= n;
    size_t dropped = 0;
    while (n > 0) {
      IoSlice& head = slices_[dropped];
      if (head.len <= n) {
        n -= head.len;
        head.seg.reset();
        ++dropped;
      } else {
        head.off += static_cast<uint32_t>(n);
        head.len -= static_cast<uint32_t>(n);
        n = 0;
      }
    }
    if (dropped > 0) {
      slices_.erase(slices_.begin(),
                    slices_.begin() + static_cast<std::ptrdiff_t>(dropped));
    }
  }

  void copy_out(size_t off, size_t n, char* dst) const {
    HERMES_DCHECK(off + n <= size_);
    for (const IoSlice& s : slices_) {
      if (n == 0) break;
      if (off >= s.len) {
        off -= s.len;
        continue;
      }
      const size_t take = (s.len - off) < n ? (s.len - off) : n;
      std::memcpy(dst, s.seg->data() + s.off + off, take);
      dst += take;
      n -= take;
      off = 0;
    }
  }

  std::string to_string() const {
    std::string out(size_, '\0');
    copy_out(0, size_, out.data());
    return out;
  }

  static constexpr uint64_t kFnvOffset = 1469598103934665603ULL;

  // Streaming FNV-1a over all bytes; the differential-oracle checksum.
  uint64_t fnv1a(uint64_t h = kFnvOffset) const {
    for (const IoSlice& s : slices_) {
      const char* p = s.seg->data() + s.off;
      for (uint32_t i = 0; i < s.len; ++i) {
        h ^= static_cast<unsigned char>(p[i]);
        h *= 1099511628211ULL;
      }
    }
    return h;
  }

 private:
  // The tail segment is writable only while this chain's tail slice is
  // the sole reference to it and ends at its write frontier.
  IoSegment* writable_tail() {
    if (slices_.empty()) return nullptr;
    IoSlice& tail = slices_.back();
    IoSegment* seg = tail.seg.get();
    if (seg->refs() != 1) return nullptr;
    if (tail.off + tail.len != seg->size()) return nullptr;
    if (seg->avail() == 0) return nullptr;
    return seg;
  }

  std::vector<IoSlice> slices_;
  size_t size_ = 0;
};

inline uint64_t fnv1a_bytes(std::string_view s,
                            uint64_t h = IoChain::kFnvOffset) {
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace hermes::netsim
