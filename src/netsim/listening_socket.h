// A listening socket: port binding, accept queue, wait queue, and a global
// cookie used by the BPF_MAP_TYPE_REUSEPORT_SOCKARRAY map.
#pragma once

#include <atomic>
#include <cstdint>

#include "netsim/accept_queue.h"
#include "netsim/wait_queue.h"
#include "util/types.h"

namespace hermes::netsim {

class ListeningSocket {
 public:
  ListeningSocket(PortId port, size_t backlog,
                  WorkerId owner = kInvalidWorker)
      : port_(port), owner_(owner), accept_queue_(backlog),
        cookie_(next_cookie()) {}

  ListeningSocket(const ListeningSocket&) = delete;
  ListeningSocket& operator=(const ListeningSocket&) = delete;

  PortId port() const { return port_; }

  // In reuseport mode each socket belongs to exactly one worker; in
  // shared-socket (exclusive) mode there is no owner.
  WorkerId owner() const { return owner_; }

  // Socket cookie: the opaque u64 identity stored in sockarray maps
  // (like the kernel's sock_gen_cookie()).
  uint64_t cookie() const { return cookie_; }

  AcceptQueue& accept_queue() { return accept_queue_; }
  const AcceptQueue& accept_queue() const { return accept_queue_; }
  WaitQueue& wait_queue() { return wait_queue_; }

 private:
  static uint64_t next_cookie() {
    static std::atomic<uint64_t> counter{1};
    return counter.fetch_add(1, std::memory_order_relaxed);
  }

  PortId port_;
  WorkerId owner_;
  AcceptQueue accept_queue_;
  WaitQueue wait_queue_;
  uint64_t cookie_;
};

}  // namespace hermes::netsim
