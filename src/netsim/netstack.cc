#include "netsim/netstack.h"

#include "util/check.h"

namespace hermes::netsim {

NetStack::NetStack(Config cfg) : cfg_(cfg) {
  HERMES_CHECK(cfg_.num_workers > 0);
}

void NetStack::add_port(PortId port) {
  HERMES_CHECK_MSG(ports_.find(port) == ports_.end(), "port already bound");
  PortEntry entry;
  if (uses_per_worker_sockets(cfg_.mode)) {
    entry.rp_group = std::make_unique<ReuseportGroup>(port);
    entry.per_worker.reserve(cfg_.num_workers);
    for (WorkerId w = 0; w < cfg_.num_workers; ++w) {
      auto sock = std::make_unique<ListeningSocket>(port, cfg_.backlog, w);
      entry.rp_group->add_socket(sock.get());
      entry.per_worker.push_back(std::move(sock));
    }
    if (pending_prog_ != nullptr) {
      entry.rp_group->attach_program(pending_vm_, pending_prog_);
    }
    if (obs_ != nullptr) entry.rp_group->set_metrics(&obs_->metrics);
  } else {
    entry.shared = std::make_unique<ListeningSocket>(port, cfg_.backlog);
  }
  ports_.emplace(port, std::move(entry));
  port_order_.push_back(port);
}

void NetStack::register_waiter(Waiter* w) {
  HERMES_CHECK_MSG(!uses_per_worker_sockets(cfg_.mode),
                   "waiters only exist in shared-socket modes");
  for (auto& [port, entry] : ports_) {
    entry.shared->wait_queue().add(w);
  }
}

void NetStack::set_obs(obs::Observability* obs) {
  obs_ = obs;
  for (auto& [port, entry] : ports_) {
    if (entry.rp_group != nullptr) {
      entry.rp_group->set_metrics(obs != nullptr ? &obs->metrics : nullptr);
    }
  }
}

void NetStack::attach_bpf(const bpf::Vm* vm, const bpf::LoadedProgram* prog) {
  HERMES_CHECK_MSG(cfg_.mode == DispatchMode::HermesMode,
                   "bpf program attach requires Hermes mode");
  pending_vm_ = vm;
  pending_prog_ = prog;
  for (auto& [port, entry] : ports_) {
    entry.rp_group->attach_program(vm, prog);
  }
}

Connection NetStack::on_connection_request(const FourTuple& tuple,
                                           PortId port, TenantId tenant,
                                           SimTime now) {
  auto it = ports_.find(port);
  HERMES_CHECK_MSG(it != ports_.end(), "SYN to unbound port");
  PortEntry& entry = it->second;

  ListeningSocket* sock = nullptr;
  if (uses_per_worker_sockets(cfg_.mode)) {
    sock = entry.rp_group->select(tuple);
    if (obs_ != nullptr) {
      obs_->traces.write(sock->owner(), obs::TraceType::Dispatch, now,
                         sock->owner(), skb_hash(tuple), port);
    }
  } else {
    sock = entry.shared.get();
  }
  return admit(tuple, port, tenant, now, sock);
}

size_t NetStack::on_connection_burst(std::span<const FourTuple> tuples,
                                     PortId port, TenantId tenant, SimTime now,
                                     Connection* out) {
  auto it = ports_.find(port);
  HERMES_CHECK_MSG(it != ports_.end(), "SYN to unbound port");
  PortEntry& entry = it->second;

  const bool per_worker = uses_per_worker_sockets(cfg_.mode);
  if (per_worker) {
    burst_socks_.resize(tuples.size());
    entry.rp_group->select_batch(tuples, burst_socks_);
  }

  size_t established = 0;
  for (size_t i = 0; i < tuples.size(); ++i) {
    ListeningSocket* sock =
        per_worker ? burst_socks_[i] : entry.shared.get();
    if (per_worker && obs_ != nullptr) {
      obs_->traces.write(sock->owner(), obs::TraceType::Dispatch, now,
                         sock->owner(), skb_hash(tuples[i]), port);
    }
    const Connection c = admit(tuples[i], port, tenant, now, sock);
    if (out != nullptr) out[i] = c;
    if (c) ++established;
  }
  return established;
}

Connection NetStack::admit(const FourTuple& tuple, PortId port,
                           TenantId tenant, SimTime now,
                           ListeningSocket* sock) {
  // Shared sockets have no owning worker; account those on shard 0.
  const WorkerId shard = sock->owner() == kInvalidWorker ? 0 : sock->owner();

  if (sock->accept_queue().size() >= sock->accept_queue().backlog()) {
    // Backlog overflow: drop the SYN without ever allocating a slab row.
    sock->accept_queue().note_drop();
    ++stats_.drops;
    if (obs_ != nullptr) {
      obs_->metrics.accept_dropped->inc(shard);
      obs_->traces.write(shard, obs::TraceType::Drop, now, port,
                         next_conn_id_, sock->accept_queue().size());
    }
    return Connection{};
  }

  const Connection c = conns_.create(next_conn_id_++, tuple, port, tenant, now);
  HERMES_CHECK(sock->accept_queue().push(c));
  ++stats_.connections;
  if (obs_ != nullptr) {
    obs_->metrics.accept_enqueued->inc(shard);
    obs_->metrics.accept_depth->record(shard, sock->accept_queue().size());
    obs_->traces.write(shard, obs::TraceType::Accept, now, port, c.id(),
                       sock->accept_queue().size());
  }

  if (uses_per_worker_sockets(cfg_.mode)) {
    // The owning worker's epoll reports the socket readable.
    if (socket_ready_) socket_ready_(sock->owner(), *sock);
  } else {
    const WakePolicy policy =
        cfg_.mode == DispatchMode::EpollWakeAll   ? WakePolicy::WakeAll
        : cfg_.mode == DispatchMode::EpollRr      ? WakePolicy::ExclusiveRr
        : cfg_.mode == DispatchMode::IoUringFifo  ? WakePolicy::ExclusiveFifo
                                                  : WakePolicy::ExclusiveLifo;
    const auto ws = sock->wait_queue().wake(*sock, policy);
    stats_.wasted_wakeups += static_cast<uint64_t>(ws.wasted_wakeups);
    if (ws.woken == 0) {
      // All waiters busy: the event stays ready; the next epoll_wait
      // caller will pick it up (kernel semantics, nothing lost).
      ++stats_.unnotified;
    }
  }
  return c;
}

Connection NetStack::accept(ListeningSocket& sock, WorkerId worker) {
  const Connection c = sock.accept_queue().pop();
  if (!c) return c;
  c.set_state(ConnState::Accepted);
  c.set_owner(worker);
  return c;
}

void NetStack::close(Connection c) {
  // Generation bump: every outstanding view of this connection goes stale.
  conns_.destroy(c);
}

ListeningSocket* NetStack::shared_socket(PortId port) {
  auto it = ports_.find(port);
  return it == ports_.end() ? nullptr : it->second.shared.get();
}

ListeningSocket* NetStack::worker_socket(PortId port, WorkerId worker) {
  auto it = ports_.find(port);
  if (it == ports_.end() || it->second.per_worker.size() <= worker) {
    return nullptr;
  }
  return it->second.per_worker[worker].get();
}

ReuseportGroup* NetStack::group(PortId port) {
  auto it = ports_.find(port);
  return it == ports_.end() ? nullptr : it->second.rp_group.get();
}

std::vector<ListeningSocket*> NetStack::sockets_of(WorkerId worker) {
  std::vector<ListeningSocket*> out;
  for (PortId port : port_order_) {
    PortEntry& entry = ports_.at(port);
    if (uses_per_worker_sockets(cfg_.mode)) {
      out.push_back(entry.per_worker[worker].get());
    } else {
      out.push_back(entry.shared.get());
    }
  }
  return out;
}

}  // namespace hermes::netsim
