// NetStack: the simulated kernel's connection-dispatch path.
//
// Owns ports, listening sockets (one shared socket per port, or one socket
// per worker per port under reuseport), reuseport groups, and connections.
// The sim layer feeds SYNs in and accept()s connections out; everything in
// between — socket selection, accept-queue backpressure, wait-queue wakeups
// — happens here with kernel semantics.
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "netsim/conn_slab.h"

#include "netsim/listening_socket.h"
#include "netsim/reuseport.h"
#include "netsim/wait_queue.h"
#include "obs/observability.h"
#include "util/types.h"

namespace hermes::netsim {

enum class DispatchMode : uint8_t {
  EpollWakeAll,    // pre-4.5 epoll: shared sockets, thundering herd
  EpollExclusive,  // shared sockets, WQ_FLAG_EXCLUSIVE (LIFO)
  EpollRr,         // shared sockets, round-robin wakeup patch
  IoUringFifo,     // shared sockets, io_uring-style fixed FIFO wakeups (§8)
  UserDispatcher,  // shared sockets drained by a userspace dispatcher (§2.2)
  Reuseport,       // per-worker sockets, hash selection
  HermesMode,      // per-worker sockets, eBPF-overridden selection
};

inline const char* to_string(DispatchMode m) {
  switch (m) {
    case DispatchMode::EpollWakeAll: return "epoll-wakeall";
    case DispatchMode::EpollExclusive: return "epoll-exclusive";
    case DispatchMode::EpollRr: return "epoll-rr";
    case DispatchMode::IoUringFifo: return "iouring-fifo";
    case DispatchMode::UserDispatcher: return "user-dispatcher";
    case DispatchMode::Reuseport: return "reuseport";
    case DispatchMode::HermesMode: return "hermes";
  }
  return "?";
}

inline bool uses_per_worker_sockets(DispatchMode m) {
  return m == DispatchMode::Reuseport || m == DispatchMode::HermesMode;
}

class NetStack {
 public:
  struct Config {
    DispatchMode mode = DispatchMode::EpollExclusive;
    uint32_t num_workers = 4;
    size_t backlog = 1024;
  };

  // In per-worker-socket modes the kernel "wakes" the owning worker by
  // marking its socket readable; the sim worker hooks this to schedule its
  // epoll_wait return.
  using SocketReadyFn = std::function<void(WorkerId, ListeningSocket&)>;

  explicit NetStack(Config cfg);

  const Config& config() const { return cfg_; }

  // --- topology -------------------------------------------------------
  // Bind a port: creates the shared socket, or one socket per worker plus
  // the reuseport group, depending on mode.
  void add_port(PortId port);

  // Shared-socket modes: register a worker's waiter on every port's wait
  // queue. Registration order matters (LIFO!): the last registered worker
  // sits at the head of every wait queue, exactly as with epoll_ctl.
  void register_waiter(Waiter* w);

  void set_socket_ready_fn(SocketReadyFn fn) { socket_ready_ = std::move(fn); }

  // Hermes attachment (per-port groups all share one program).
  void attach_bpf(const bpf::Vm* vm, const bpf::LoadedProgram* prog);

  // Observability sinks (nullable; not owned). Applies to already-bound
  // ports and to every port bound afterwards. Instruments socket selection
  // (dispatch picks/fallbacks) and the accept queues (depth, drops).
  void set_obs(obs::Observability* obs);

  // --- data path -------------------------------------------------------
  // A SYN arrives (handshake is modeled as instantaneous; the paper's
  // phenomena live after the handshake). Returns the connection view, or an
  // invalid view if the selected socket's backlog was full (drop).
  Connection on_connection_request(const FourTuple& tuple, PortId port,
                                   TenantId tenant, SimTime now);

  // A SYN burst: `tuples.size()` connection requests to one port at one
  // timestamp. Socket selection goes through ReuseportGroup::select_batch,
  // amortizing program/plan and metric-sink resolution across the burst;
  // per-connection admission semantics match on_connection_request exactly.
  // Returns the number established (drops excluded); when `out` is
  // non-null it receives one entry per SYN, an invalid view for drops.
  size_t on_connection_burst(std::span<const FourTuple> tuples, PortId port,
                             TenantId tenant, SimTime now,
                             Connection* out = nullptr);

  // Worker-side accept() on a specific socket.
  Connection accept(ListeningSocket& sock, WorkerId worker);

  void close(Connection c);

  // --- introspection ----------------------------------------------------
  ListeningSocket* shared_socket(PortId port);
  ListeningSocket* worker_socket(PortId port, WorkerId worker);
  ReuseportGroup* group(PortId port);
  const std::vector<PortId>& ports() const { return port_order_; }

  // All sockets a given worker's epoll instance watches.
  std::vector<ListeningSocket*> sockets_of(WorkerId worker);

  struct Stats {
    uint64_t connections = 0;
    uint64_t drops = 0;             // backlog overflow
    uint64_t wasted_wakeups = 0;    // thundering-herd overhead
    uint64_t unnotified = 0;        // queued while every waiter was busy
  };
  const Stats& stats() const { return stats_; }
  uint64_t live_connections() const { return conns_.live(); }

  // The SoA connection arena: fleet-scale scans (imbalance tables, PCC
  // audits) stream its columns directly instead of walking a map.
  ConnSlab& conns() { return conns_; }

 private:
  struct PortEntry {
    std::unique_ptr<ListeningSocket> shared;              // shared modes
    std::vector<std::unique_ptr<ListeningSocket>> per_worker;
    std::unique_ptr<ReuseportGroup> rp_group;
  };

  // Admission path shared by the scalar and burst entries: everything
  // after socket selection (connection creation, backlog push or drop,
  // accounting, wakeup).
  Connection admit(const FourTuple& tuple, PortId port, TenantId tenant,
                   SimTime now, ListeningSocket* sock);

  Config cfg_;
  std::vector<ListeningSocket*> burst_socks_;  // select_batch scratch
  std::unordered_map<PortId, PortEntry> ports_;
  std::vector<PortId> port_order_;
  ConnSlab conns_;
  ConnId next_conn_id_ = 1;
  SocketReadyFn socket_ready_;
  const bpf::Vm* pending_vm_ = nullptr;
  const bpf::LoadedProgram* pending_prog_ = nullptr;
  obs::Observability* obs_ = nullptr;  // nullable; not owned
  Stats stats_;
};

}  // namespace hermes::netsim
