// SO_REUSEPORT group: several sockets bound to one port, with the kernel's
// hash-based selection and the SO_ATTACH_REUSEPORT_EBPF override hook
// (paper §2.2 and §5.4).
//
// Selection order mirrors reuseport_select_sock():
//   1. if a BPF program is attached, run it; if it selected a socket via
//      bpf_sk_select_reuseport() and returned kRetUseSelection, use that;
//   2. otherwise fall back to reciprocal_scale(hash, n) over the sockets.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "bpf/vm.h"
#include "netsim/four_tuple.h"
#include "netsim/listening_socket.h"
#include "obs/metrics.h"
#include "util/check.h"

namespace hermes::netsim {

class ReuseportGroup {
 public:
  explicit ReuseportGroup(PortId port) : port_(port) {}

  PortId port() const { return port_; }

  void add_socket(ListeningSocket* sock) {
    HERMES_CHECK(sock != nullptr && sock->port() == port_);
    sockets_.push_back(sock);
    by_cookie_[sock->cookie()] = sock;
  }

  const std::vector<ListeningSocket*>& sockets() const { return sockets_; }

  ListeningSocket* by_cookie(uint64_t cookie) const {
    auto it = by_cookie_.find(cookie);
    return it == by_cookie_.end() ? nullptr : it->second;
  }

  // SO_ATTACH_REUSEPORT_EBPF. The program must already be verified/loaded;
  // vm and prog must outlive the group (Hermes owns both).
  void attach_program(const bpf::Vm* vm, const bpf::LoadedProgram* prog) {
    vm_ = vm;
    prog_ = prog;
  }
  void detach_program() {
    vm_ = nullptr;
    prog_ = nullptr;
  }
  bool has_program() const { return prog_ != nullptr; }

  struct SelectStats {
    uint64_t bpf_selections = 0;   // program picked the socket
    uint64_t bpf_fallbacks = 0;    // program ran but declined (kRetFallback)
    uint64_t hash_selections = 0;  // no program attached
    uint64_t bpf_insns = 0;        // executed instructions (overhead, Table 5)
  };
  const SelectStats& stats() const { return stats_; }

  // Observability sink for dispatch decisions (nullable; not owned).
  void set_metrics(obs::PipelineMetrics* m) { metrics_ = m; }

  // Per-policy dispatch counter (sched.policy.<name>.dispatches), resolved
  // by whoever attaches the program — this layer doesn't know which
  // scheduling policy generated it. Nullable; not owned. Counted on every
  // successful program selection, alongside dispatch.bpf.
  void set_policy_counter(obs::Counter* c) { policy_dispatches_ = c; }

  // Socket selection for an incoming SYN.
  ListeningSocket* select(const FourTuple& tuple) {
    HERMES_CHECK_MSG(!sockets_.empty(), "reuseport group has no sockets");
    const uint32_t hash = skb_hash(tuple);
    ListeningSocket* picked = nullptr;
    if (prog_ != nullptr) {
      bpf::ReuseportCtx ctx;
      ctx.hash = hash;
      ctx.hash2 = locality_hash(tuple);
      ctx.ip_protocol = 6;  // IPPROTO_TCP
      const auto run = vm_->run(*prog_, ctx);
      stats_.bpf_insns += run.insns_executed;
      if (metrics_ != nullptr) {
        metrics_->bpf_tier_dispatches[static_cast<size_t>(run.tier)]->inc(0);
        if (run.fused_hits != 0) {
          metrics_->bpf_fused_ops->add(0, run.fused_hits);
        }
        if (run.elided_checks != 0) {
          metrics_->bpf_elided_checks->add(0, run.elided_checks);
        }
      }
      if (run.ret == bpf::kRetUseSelection && ctx.selection_made) {
        if (ListeningSocket* s = by_cookie(ctx.selected_socket)) {
          ++stats_.bpf_selections;
          if (metrics_ != nullptr) metrics_->dispatch_bpf->inc(0);
          if (policy_dispatches_ != nullptr) policy_dispatches_->inc(0);
          picked = s;
        }
      }
      if (picked == nullptr) {
        // The program declined: survivor set below the dispatch minimum
        // (Algo. 2 line 4) — the kernel falls back to reuseport hashing.
        ++stats_.bpf_fallbacks;
        if (metrics_ != nullptr) metrics_->dispatch_fallback->inc(0);
      }
    } else {
      ++stats_.hash_selections;
      if (metrics_ != nullptr) metrics_->dispatch_hash->inc(0);
    }
    if (picked == nullptr) {
      const uint32_t idx =
          reciprocal_scale(hash, static_cast<uint32_t>(sockets_.size()));
      picked = sockets_[idx];
    }
    if (metrics_ != nullptr) metrics_->dispatch_picks->inc(picked->owner());
    return picked;
  }

  // Batched socket selection for a SYN burst (same per-SYN semantics and
  // accounting as select(), in order). Program attachment, tier, and
  // metric sinks are resolved once per burst and the stat/counter updates
  // are accumulated locally and flushed once, so per-SYN work on the hot
  // path reduces to the program run plus the pick.
  void select_batch(std::span<const FourTuple> tuples,
                    std::span<ListeningSocket*> out) {
    HERMES_CHECK(out.size() >= tuples.size());
    HERMES_CHECK_MSG(!sockets_.empty(), "reuseport group has no sockets");
    const auto n_socks = static_cast<uint32_t>(sockets_.size());

    if (prog_ == nullptr) {
      for (size_t i = 0; i < tuples.size(); ++i) {
        ListeningSocket* s =
            sockets_[reciprocal_scale(skb_hash(tuples[i]), n_socks)];
        out[i] = s;
        if (metrics_ != nullptr) metrics_->dispatch_picks->inc(s->owner());
      }
      stats_.hash_selections += tuples.size();
      if (metrics_ != nullptr) {
        metrics_->dispatch_hash->add(0, tuples.size());
      }
      return;
    }

    const auto tier = static_cast<size_t>(prog_->tier());
    uint64_t insns = 0;
    uint64_t fused = 0;
    uint64_t elided = 0;
    uint64_t selections = 0;
    uint64_t fallbacks = 0;
    for (size_t i = 0; i < tuples.size(); ++i) {
      const uint32_t hash = skb_hash(tuples[i]);
      bpf::ReuseportCtx ctx;
      ctx.hash = hash;
      ctx.hash2 = locality_hash(tuples[i]);
      ctx.ip_protocol = 6;  // IPPROTO_TCP
      const auto run = vm_->run(*prog_, ctx);
      insns += run.insns_executed;
      fused += run.fused_hits;
      elided += run.elided_checks;
      ListeningSocket* picked = nullptr;
      if (run.ret == bpf::kRetUseSelection && ctx.selection_made) {
        picked = by_cookie(ctx.selected_socket);
      }
      if (picked != nullptr) {
        ++selections;
      } else {
        ++fallbacks;
        picked = sockets_[reciprocal_scale(hash, n_socks)];
      }
      out[i] = picked;
      if (metrics_ != nullptr) metrics_->dispatch_picks->inc(picked->owner());
    }
    stats_.bpf_insns += insns;
    stats_.bpf_selections += selections;
    stats_.bpf_fallbacks += fallbacks;
    if (metrics_ != nullptr) {
      metrics_->bpf_tier_dispatches[tier]->add(0, tuples.size());
      if (fused != 0) metrics_->bpf_fused_ops->add(0, fused);
      if (elided != 0) metrics_->bpf_elided_checks->add(0, elided);
      if (selections != 0) metrics_->dispatch_bpf->add(0, selections);
      if (fallbacks != 0) metrics_->dispatch_fallback->add(0, fallbacks);
    }
    if (policy_dispatches_ != nullptr && selections != 0) {
      policy_dispatches_->add(0, selections);
    }
  }

 private:
  PortId port_;
  std::vector<ListeningSocket*> sockets_;
  std::unordered_map<uint64_t, ListeningSocket*> by_cookie_;
  const bpf::Vm* vm_ = nullptr;
  const bpf::LoadedProgram* prog_ = nullptr;
  obs::PipelineMetrics* metrics_ = nullptr;  // nullable; not owned
  obs::Counter* policy_dispatches_ = nullptr;  // nullable; not owned
  SelectStats stats_;
};

}  // namespace hermes::netsim
