// Socket wait queue with the kernel's wakeup disciplines.
//
// This is where epoll exclusive's load imbalance comes from, so the model is
// deliberately exact (paper §2.2, Fig. A2):
//   * epoll_ctl() adds the waiter at the HEAD of the list
//     (add_wait_queue() on the socket's wq), so the most recently registered
//     worker sits first;
//   * a socket event walks the list from the head and, with
//     WQ_FLAG_EXCLUSIVE, stops after the first waiter that accepts the
//     wakeup (i.e. is idle in epoll_wait) — the LIFO behaviour;
//   * epoll rr (the unmerged community patch) additionally rotates the
//     woken waiter to the tail, giving FIFO fairness;
//   * WakeAll models pre-4.5 epoll: every waiter wakes (thundering herd),
//     all but one find the queue empty and burn a wasted wakeup.
#pragma once

#include <cstdint>
#include <functional>
#include <list>

#include "util/check.h"

namespace hermes::netsim {

class ListeningSocket;

// A waiter is a worker blocked in epoll_wait. try_wake() returns true if the
// waiter was idle and consumed the wakeup (it will call accept() soon);
// false if it is busy processing and cannot take the event now.
class Waiter {
 public:
  virtual ~Waiter() = default;
  virtual bool try_wake(ListeningSocket& source) = 0;
};

enum class WakePolicy : uint8_t {
  WakeAll,        // pre-4.5 epoll: thundering herd
  ExclusiveLifo,  // EPOLLEXCLUSIVE as merged in Linux 4.5
  ExclusiveRr,    // EPOLL_ROUNDROBIN community patch (never merged)
  ExclusiveFifo,  // io_uring-style fixed FIFO wakeup order (paper §8)
};

class WaitQueue {
 public:
  // epoll_ctl(EPOLL_CTL_ADD): prepend, as add_wait_queue() does.
  void add(Waiter* w) {
    HERMES_DCHECK(w != nullptr);
    waiters_.push_front(w);
  }

  void remove(Waiter* w) { waiters_.remove(w); }

  size_t size() const { return waiters_.size(); }

  struct WakeStats {
    int woken = 0;          // waiters that accepted the wakeup
    int wasted_wakeups = 0; // woken but had nothing to do (herd overhead)
  };

  // A socket state change (connection queued). Returns wakeup accounting.
  WakeStats wake(ListeningSocket& source, WakePolicy policy) {
    WakeStats stats;
    switch (policy) {
      case WakePolicy::WakeAll: {
        // Every waiter is woken; only the first idle one will win the
        // accept() race, the rest are wasted wakeups.
        bool winner_found = false;
        for (Waiter* w : waiters_) {
          if (w->try_wake(source)) {
            if (winner_found) {
              ++stats.wasted_wakeups;
            } else {
              winner_found = true;
              ++stats.woken;
            }
          }
        }
        break;
      }
      case WakePolicy::ExclusiveLifo: {
        for (Waiter* w : waiters_) {
          if (w->try_wake(source)) {
            ++stats.woken;
            break;  // WQ_FLAG_EXCLUSIVE: stop at the first success
          }
        }
        break;
      }
      case WakePolicy::ExclusiveFifo: {
        // io_uring's interrupt mode wakes in fixed FIFO (registration)
        // order: traverse from the tail, i.e. the OLDEST registration.
        for (auto it = waiters_.rbegin(); it != waiters_.rend(); ++it) {
          if ((*it)->try_wake(source)) {
            ++stats.woken;
            break;
          }
        }
        break;
      }
      case WakePolicy::ExclusiveRr: {
        for (auto it = waiters_.begin(); it != waiters_.end(); ++it) {
          if ((*it)->try_wake(source)) {
            ++stats.woken;
            // Rotate the woken waiter to the tail so the next wakeup
            // prefers somebody else.
            Waiter* w = *it;
            waiters_.erase(it);
            waiters_.push_back(w);
            break;
          }
        }
        break;
      }
    }
    return stats;
  }

 private:
  std::list<Waiter*> waiters_;
};

}  // namespace hermes::netsim
