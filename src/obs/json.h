// Minimal JSON writer shared by the observability exporters and the bench
// harness's --json mode. Emission only — the bench-regression gate has its
// own tiny parser (bench/bench_gate_check.cc) for the flat numeric files
// this writer produces.
//
// Numbers are printed with %.12g: enough digits that the deterministic sim
// metrics round-trip exactly, short enough that files stay readable.
#pragma once

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>

namespace hermes::obs {

inline void json_escape(const std::string& s, std::string& out) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

inline std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";  // JSON has no inf/nan
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  return buf;
}

// Append-style writer for objects/arrays; tracks comma placement so call
// sites stay linear. Scopes must be closed in LIFO order by the caller.
class JsonWriter {
 public:
  explicit JsonWriter(std::string* out) : out_(out) {}

  void begin_object() { open('{'); }
  void end_object() { close('}'); }
  void begin_array() { open('['); }
  void end_array() { close(']'); }

  void key(const std::string& k) {
    comma();
    *out_ += '"';
    json_escape(k, *out_);
    *out_ += "\":";
    just_keyed_ = true;
  }

  void value(double v) {
    comma();
    *out_ += json_number(v);
  }
  void value(uint64_t v) {
    comma();
    *out_ += std::to_string(v);
  }
  void value(int64_t v) {
    comma();
    *out_ += std::to_string(v);
  }
  void value(const std::string& s) {
    comma();
    *out_ += '"';
    json_escape(s, *out_);
    *out_ += '"';
  }
  void value_raw(const std::string& json) {
    comma();
    *out_ += json;
  }

  // key + scalar in one call, the common case.
  template <typename T>
  void field(const std::string& k, T v) {
    key(k);
    value(v);
  }

 private:
  void open(char c) {
    comma();
    *out_ += c;
    need_comma_ = false;
  }
  void close(char c) {
    *out_ += c;
    need_comma_ = true;
    just_keyed_ = false;
  }
  void comma() {
    if (just_keyed_) {
      just_keyed_ = false;
      need_comma_ = true;  // next sibling at this level needs one
      return;
    }
    if (need_comma_) *out_ += ',';
    need_comma_ = true;
  }

  std::string* out_;
  bool need_comma_ = false;
  bool just_keyed_ = false;
};

}  // namespace hermes::obs
