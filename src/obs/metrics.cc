#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "obs/json.h"

namespace hermes::obs {

LogHistogram::LogHistogram(uint32_t shards, uint32_t sub_bits)
    : n_(shards), sub_bits_(sub_bits), num_buckets_(bucket_count(sub_bits)) {
  HERMES_CHECK(shards > 0 && sub_bits >= 1 && sub_bits <= 8);
  // Pad the per-shard stride to a whole number of cache lines so adjacent
  // shards never share one.
  constexpr size_t kEntriesPerLine = 64 / sizeof(std::atomic<uint64_t>);
  stride_ = (num_buckets_ + kEntriesPerLine - 1) / kEntriesPerLine *
            kEntriesPerLine;
  buckets_ = std::make_unique<std::atomic<uint64_t>[]>(stride_ * n_);
  for (size_t i = 0; i < stride_ * n_; ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  sums_ = std::make_unique<PaddedSum[]>(n_);
}

size_t LogHistogram::bucket_index(uint64_t v, uint32_t sub_bits) {
  const uint64_t sub_count = 1ull << sub_bits;
  if (v < sub_count) return static_cast<size_t>(v);
  const int msb = 63 - std::countl_zero(v);
  const auto bucket = static_cast<uint32_t>(msb) - sub_bits + 1;
  const uint64_t sub = (v >> (static_cast<uint32_t>(msb) - sub_bits)) &
                       (sub_count - 1);
  return static_cast<size_t>(bucket) * sub_count + static_cast<size_t>(sub);
}

uint64_t LogHistogram::bucket_lower(size_t idx, uint32_t sub_bits) {
  const uint64_t sub_count = 1ull << sub_bits;
  const uint64_t bucket = idx / sub_count;
  const uint64_t sub = idx % sub_count;
  if (bucket == 0) return sub;
  const uint32_t shift = static_cast<uint32_t>(bucket) - 1;
  return (sub_count + sub) << shift;
}

uint64_t LogHistogram::bucket_upper(size_t idx, uint32_t sub_bits) {
  const uint64_t sub_count = 1ull << sub_bits;
  const uint64_t bucket = idx / sub_count;
  const uint64_t sub = idx % sub_count;
  if (bucket == 0) return sub;
  const uint32_t shift = static_cast<uint32_t>(bucket) - 1;
  const uint64_t base = (sub_count + sub) << shift;
  return base + ((1ull << shift) - 1);
}

uint64_t LogHistogram::Snapshot::quantile(double q) const {
  if (count == 0) return 0;
  HERMES_DCHECK(q >= 0.0 && q <= 1.0);
  auto target = static_cast<uint64_t>(
      std::ceil(q * static_cast<double>(count)));
  if (target == 0) target = 1;
  uint64_t seen = 0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    seen += buckets[i];
    if (seen >= target) return bucket_upper(i, sub_bits);
  }
  return bucket_upper(buckets.size() - 1, sub_bits);
}

void LogHistogram::Snapshot::merge(const Snapshot& o) {
  HERMES_CHECK(sub_bits == o.sub_bits && buckets.size() == o.buckets.size());
  for (size_t i = 0; i < buckets.size(); ++i) buckets[i] += o.buckets[i];
  count += o.count;
  sum += o.sum;
}

LogHistogram::Snapshot LogHistogram::shard_snapshot(uint32_t shard) const {
  HERMES_DCHECK(shard < n_);
  Snapshot s;
  s.sub_bits = sub_bits_;
  s.buckets.resize(num_buckets_);
  const size_t base = static_cast<size_t>(shard) * stride_;
  for (uint32_t i = 0; i < num_buckets_; ++i) {
    s.buckets[i] = buckets_[base + i].load(std::memory_order_relaxed);
    s.count += s.buckets[i];
  }
  s.sum = sums_[shard].v.load(std::memory_order_relaxed);
  return s;
}

LogHistogram::Snapshot LogHistogram::snapshot() const {
  Snapshot merged = shard_snapshot(0);
  for (uint32_t s = 1; s < n_; ++s) merged.merge(shard_snapshot(s));
  return merged;
}

Counter& Registry::counter(const std::string& name, uint32_t shards) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_
             .emplace(name, std::make_unique<Counter>(
                                shards ? shards : default_shards_))
             .first;
  }
  return *it->second;
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(name, std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

LogHistogram& Registry::histogram(const std::string& name, uint32_t shards,
                                  uint32_t sub_bits) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(name, std::make_unique<LogHistogram>(
                                shards ? shards : default_shards_, sub_bits))
             .first;
  }
  return *it->second;
}

std::string Registry::to_json() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::string out;
  JsonWriter w(&out);
  w.begin_object();
  w.key("counters");
  w.begin_object();
  for (const auto& [name, c] : counters_) w.field(name, c->value());
  w.end_object();
  w.key("gauges");
  w.begin_object();
  for (const auto& [name, g] : gauges_) w.field(name, g->value());
  w.end_object();
  w.key("histograms");
  w.begin_object();
  for (const auto& [name, h] : histograms_) {
    const auto s = h->snapshot();
    w.key(name);
    w.begin_object();
    w.field("count", s.count);
    w.field("sum", s.sum);
    w.field("mean", s.mean());
    w.field("p50", s.p50());
    w.field("p99", s.p99());
    w.end_object();
  }
  w.end_object();
  w.end_object();
  return out;
}

std::string Registry::text_dump() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::string out;
  char buf[256];
  for (const auto& [name, c] : counters_) {
    std::snprintf(buf, sizeof(buf), "%-28s %20llu", name.c_str(),
                  static_cast<unsigned long long>(c->value()));
    out += buf;
    if (c->shards() > 1) {
      out += "  [";
      for (uint32_t s = 0; s < c->shards(); ++s) {
        const uint64_t v = c->shard_value(s);
        if (s) out += ' ';
        out += std::to_string(v);
      }
      out += ']';
    }
    out += '\n';
  }
  for (const auto& [name, g] : gauges_) {
    std::snprintf(buf, sizeof(buf), "%-28s %20lld\n", name.c_str(),
                  static_cast<long long>(g->value()));
    out += buf;
  }
  for (const auto& [name, h] : histograms_) {
    const auto s = h->snapshot();
    std::snprintf(buf, sizeof(buf),
                  "%-28s count=%llu mean=%.1f p50=%llu p99=%llu\n",
                  name.c_str(), static_cast<unsigned long long>(s.count),
                  s.mean(), static_cast<unsigned long long>(s.p50()),
                  static_cast<unsigned long long>(s.p99()));
    out += buf;
  }
  return out;
}

PipelineMetrics::PipelineMetrics(Registry& reg, uint32_t workers)
    : wst_avail_updates(&reg.counter("wst.avail_updates", workers)),
      wst_pending_updates(&reg.counter("wst.pending_updates", workers)),
      wst_conn_updates(&reg.counter("wst.conn_updates", workers)),
      filter_runs(&reg.counter("filter.runs", workers)),
      filter_after_time(&reg.counter("filter.after_time", workers)),
      filter_after_conn(&reg.counter("filter.after_conn", workers)),
      filter_after_event(&reg.counter("filter.after_event", workers)),
      filter_selected(&reg.histogram("filter.selected", workers, 4)),
      filter_low_survivor(&reg.counter("filter.low_survivor", workers)),
      sync_published(&reg.counter("sync.published", workers)),
      sync_dropped(&reg.counter("sync.dropped", workers)),
      sync_gap_ns(&reg.histogram("sync.gap_ns", workers, 2)),
      sched_syncs_suppressed(&reg.counter("sched.syncs_suppressed", workers)),
      sched_fast_path_ns(&reg.counter("sched.fast_path_ns", workers)),
      policy_publishes{&reg.counter("sched.policy.cascade.publishes", workers),
                       &reg.counter("sched.policy.p2c.publishes", workers),
                       &reg.counter("sched.policy.weighted.publishes", workers),
                       &reg.counter("sched.policy.queue_est.publishes",
                                    workers)},
      policy_dispatches{&reg.counter("sched.policy.cascade.dispatches", 1),
                        &reg.counter("sched.policy.p2c.dispatches", 1),
                        &reg.counter("sched.policy.weighted.dispatches", 1),
                        &reg.counter("sched.policy.queue_est.dispatches", 1)},
      dispatch_picks(&reg.counter("dispatch.picks", workers)),
      dispatch_bpf(&reg.counter("dispatch.bpf", 1)),
      dispatch_fallback(&reg.counter("dispatch.fallback", 1)),
      dispatch_hash(&reg.counter("dispatch.hash", 1)),
      bpf_tier_dispatches{&reg.counter("bpf.tier0_dispatches", 1),
                          &reg.counter("bpf.tier1_dispatches", 1),
                          &reg.counter("bpf.tier2_dispatches", 1),
                          &reg.counter("bpf.tier3_dispatches", 1)},
      bpf_fused_ops(&reg.counter("bpf.fused_ops", 1)),
      bpf_elided_checks(&reg.counter("bpf.elided_checks", 1)),
      bpf_jit_fallbacks(&reg.counter("bpf.jit_fallbacks", 1)),
      bpf_jit_fallbacks_disabled(
          &reg.counter("bpf.jit_fallbacks_disabled", 1)),
      bpf_jit_fallbacks_alloc(&reg.counter("bpf.jit_fallbacks_alloc", 1)),
      bpf_jit_fallbacks_validate(
          &reg.counter("bpf.jit_fallbacks_validate", 1)),
      bpf_validate_accepts(&reg.counter("bpf.validate_accepts", 1)),
      bpf_validate_rejects(&reg.counter("bpf.validate_rejects", 1)),
      accept_enqueued(&reg.counter("accept.enqueued", workers)),
      accept_dropped(&reg.counter("accept.dropped", workers)),
      accept_depth(&reg.histogram("accept.depth", workers, 2)),
      http_requests_forwarded(&reg.counter("http.requests_forwarded", workers)),
      http_bytes_zero_copied(&reg.counter("http.bytes_zero_copied", workers)),
      http_bytes_copied(&reg.counter("http.bytes_copied", workers)),
      pool_hits(&reg.counter("pool.hits", workers)),
      pool_misses(&reg.counter("pool.misses", workers)),
      pool_expiries(&reg.counter("pool.expiries", workers)),
      ratelimit_drops(&reg.counter("ratelimit.drops", 1)),
      pool_occupancy(&reg.gauge("pool.occupancy")) {}

}  // namespace hermes::obs
