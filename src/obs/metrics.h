// Metrics registry: lock-free counters, gauges, and log-bucketed histograms
// for the dispatch pipeline (paper Table 5 — instrumentation must stay in
// the noise of the event-loop hot path).
//
// Hot-path discipline:
//   * integer-only updates — one relaxed load+store pair, no floats, no
//     branches beyond the bucket index. Each shard has a single writer
//     (the owning worker), so no lock-prefixed RMW is needed: a plain
//     add compiles out of the load/store pair, exactly the WST's
//     single-writer-slot argument (§5.3.1). Atomics are for the readers —
//     merge-on-read sees untorn, possibly slightly stale words;
//   * per-worker shards, each on its own cache line, so writers never
//     contend (the same partitioning argument as the WST, §5.3.1);
//   * merging shards happens on the *read* side (snapshot/export), which is
//     cold — exactly the "update fast, aggregate lazily" split the paper
//     uses for its own load signals.
//
// Registration (Registry::counter/gauge/histogram) takes a mutex and may
// allocate; layers resolve their metric pointers once at wiring time
// (PipelineMetrics) and only touch the returned objects afterwards.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/check.h"
#include "util/types.h"

namespace hermes::obs {

// A monotone counter, sharded per worker. Shard 0 is the conventional home
// for kernel-/control-plane-side increments. Contract: at most one writer
// per shard at a time (the owning worker) — updates are a relaxed
// load+store, not an atomic RMW, so concurrent writers to the SAME shard
// would lose increments. Readers are unrestricted.
class Counter {
 public:
  explicit Counter(uint32_t shards) : n_(shards) {
    HERMES_CHECK(shards > 0);
    shards_ = std::make_unique<Shard[]>(shards);
  }

  void add(uint32_t shard, uint64_t delta = 1) {
    HERMES_DCHECK(shard < n_);
    auto& v = shards_[shard].v;
    v.store(v.load(std::memory_order_relaxed) + delta,
            std::memory_order_relaxed);
  }
  void inc(uint32_t shard) { add(shard, 1); }

  // Merged-on-read total across all shards.
  uint64_t value() const {
    uint64_t sum = 0;
    for (uint32_t s = 0; s < n_; ++s) {
      sum += shards_[s].v.load(std::memory_order_relaxed);
    }
    return sum;
  }
  uint64_t shard_value(uint32_t shard) const {
    HERMES_DCHECK(shard < n_);
    return shards_[shard].v.load(std::memory_order_relaxed);
  }
  uint32_t shards() const { return n_; }

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> v{0};
  };
  static_assert(sizeof(Shard) == 64);

  std::unique_ptr<Shard[]> shards_;
  uint32_t n_;
};

// A point-in-time signed value (queue depth, staleness, config echo).
class Gauge {
 public:
  void set(int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void add(int64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
  int64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

// Log-linear histogram over uint64 values: 2^sub_bits linear sub-buckets
// per power of two (same scheme as sim::Histogram, but integer-only atomic
// buckets and per-worker shards). Relative error <= 2^-sub_bits.
class LogHistogram {
 public:
  explicit LogHistogram(uint32_t shards, uint32_t sub_bits = 2);

  // Same single-writer-per-shard contract as Counter.
  void record(uint32_t shard, uint64_t v) {
    HERMES_DCHECK(shard < n_);
    const size_t base = static_cast<size_t>(shard) * stride_;
    auto& bucket = buckets_[base + bucket_index(v, sub_bits_)];
    bucket.store(bucket.load(std::memory_order_relaxed) + 1,
                 std::memory_order_relaxed);
    auto& sum = sums_[shard].v;
    sum.store(sum.load(std::memory_order_relaxed) + v,
              std::memory_order_relaxed);
  }

  uint32_t shards() const { return n_; }
  uint32_t sub_bits() const { return sub_bits_; }
  uint32_t num_buckets() const { return num_buckets_; }

  // ---- bucket geometry (exposed for the boundary property tests) -------
  // Power-of-two groups 0..64-sub_bits (group g>0 covers msb == g-1+sub_bits,
  // group 64-sub_bits covers msb == 63), each with 2^sub_bits sub-buckets.
  static uint32_t bucket_count(uint32_t sub_bits) {
    return (65 - sub_bits) << sub_bits;
  }
  static size_t bucket_index(uint64_t v, uint32_t sub_bits);
  // Inclusive value range covered by bucket `idx`.
  static uint64_t bucket_lower(size_t idx, uint32_t sub_bits);
  static uint64_t bucket_upper(size_t idx, uint32_t sub_bits);

  // A merged (or per-shard) read-side view. Plain integers — snapshots are
  // value types the tests can merge in any association order.
  struct Snapshot {
    std::vector<uint64_t> buckets;
    uint64_t count = 0;
    uint64_t sum = 0;
    uint32_t sub_bits = 0;

    double mean() const {
      return count ? static_cast<double>(sum) / static_cast<double>(count) : 0;
    }
    // Representative (upper-edge) value at quantile q in [0,1].
    uint64_t quantile(double q) const;
    uint64_t p50() const { return quantile(0.50); }
    uint64_t p99() const { return quantile(0.99); }
    void merge(const Snapshot& o);
  };
  Snapshot snapshot() const;               // all shards merged
  Snapshot shard_snapshot(uint32_t shard) const;

 private:
  uint32_t n_;
  uint32_t sub_bits_;
  uint32_t num_buckets_;
  size_t stride_;  // bucket entries per shard, padded to a cache line
  std::unique_ptr<std::atomic<uint64_t>[]> buckets_;
  struct alignas(64) PaddedSum {
    std::atomic<uint64_t> v{0};
  };
  std::unique_ptr<PaddedSum[]> sums_;
};

// Named-metric registry. Creation is idempotent per name; returned
// references stay valid for the registry's lifetime.
class Registry {
 public:
  explicit Registry(uint32_t default_shards = 1)
      : default_shards_(default_shards) {}

  Counter& counter(const std::string& name, uint32_t shards = 0);
  Gauge& gauge(const std::string& name);
  LogHistogram& histogram(const std::string& name, uint32_t shards = 0,
                          uint32_t sub_bits = 2);

  // Flat JSON export: {"counters":{..},"gauges":{..},"histograms":{name:
  // {"count":..,"sum":..,"mean":..,"p50":..,"p99":..}}}.
  std::string to_json() const;
  // Human-readable dump (simctl --metrics).
  std::string text_dump() const;

 private:
  uint32_t default_shards_;
  mutable std::mutex mu_;  // registration and iteration only — never updates
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<LogHistogram>> histograms_;
};

// The named metric set the dispatch pipeline publishes, resolved once so
// the hot paths hold plain pointers. Naming: <stage>.<signal>.
struct PipelineMetrics {
  PipelineMetrics(Registry& reg, uint32_t workers);

  // Stage 1 — WST update path (EventLoopHooks, Fig. 9).
  Counter* wst_avail_updates;    // heartbeat stores
  Counter* wst_pending_updates;  // busy-count deltas applied
  Counter* wst_conn_updates;     // conn-count deltas applied

  // Stage 2 — cascading filter (Algo. 1).
  Counter* filter_runs;
  Counter* filter_after_time;    // survivor-count sums per stage; divide by
  Counter* filter_after_conn;    // filter_runs for the pass ratio (Fig. 14)
  Counter* filter_after_event;
  LogHistogram* filter_selected;  // survivors per run
  Counter* filter_low_survivor;   // selected < min_workers_for_dispatch:
                                  // the kernel program will fall back to hash

  // Stage 2 -> 3 — bitmap sync (decision publication).
  Counter* sync_published;
  Counter* sync_dropped;        // suppressed by fault injection / errors
  LogHistogram* sync_gap_ns;    // staleness: gap between a group's syncs

  // Stage 2 — scheduling fast path (DESIGN.md §8).
  Counter* sched_syncs_suppressed;  // M_sel stores skipped: bitmap unchanged
  Counter* sched_fast_path_ns;      // wall ns accumulated inside schedule()

  // Scheduling-policy framework (core/policy.h, DESIGN.md §12), indexed
  // by core::PolicyKind. publishes counts kernel-visible policy-state
  // publications (bitmap stores + aux-map refreshes); dispatches counts
  // sockets actually selected by that policy's program.
  Counter* policy_publishes[4];
  Counter* policy_dispatches[4];

  // Stage 3 — in-kernel dispatch (Algo. 2 at reuseport-select time).
  Counter* dispatch_picks;      // sharded by the *picked* worker
  Counter* dispatch_bpf;        // program selected a socket
  Counter* dispatch_fallback;   // program ran but declined (<=1 survivor)
  Counter* dispatch_hash;       // no program attached (plain reuseport)

  // Stage 3 — tiered eBPF execution engine (bpf/plan.h): which tier ran
  // the dispatch program, and what its plan saved. Tier indexes match
  // bpf::ExecTier.
  Counter* bpf_tier_dispatches[4];  // runs per execution tier
  Counter* bpf_fused_ops;           // superinstructions executed (tier >= 1)
  Counter* bpf_elided_checks;       // bounds checks proven away (tier >= 2)
  Counter* bpf_jit_fallbacks;       // tier-3 loads that fell back to tier 2
  // The fallback total split by cause (bpf::JitFallbackKind), plus the
  // translation validator's verdicts (bpf/jit/validate/) — a nonzero
  // validate_rejects is a codegen bug caught before first dispatch.
  Counter* bpf_jit_fallbacks_disabled;  // JIT off by env / non-x86 host
  Counter* bpf_jit_fallbacks_alloc;     // W^X buffer allocation failed
  Counter* bpf_jit_fallbacks_validate;  // translation validation rejected
  Counter* bpf_validate_accepts;        // buffers proven equivalent
  Counter* bpf_validate_rejects;        // buffers refused at load time

  // netsim accept queues.
  Counter* accept_enqueued;     // sharded by owning worker
  Counter* accept_dropped;      // backlog overflow, by owning worker
  LogHistogram* accept_depth;   // queue depth observed at enqueue

  // L7 data plane (sim/data_plane.h): byte-level forwarding, backend
  // connection pool, and admission rate limiting. All zero when the
  // data plane is disabled.
  Counter* http_requests_forwarded;  // proxied to a backend, by worker
  Counter* http_bytes_zero_copied;   // forwarded by reference (splice)
  Counter* http_bytes_copied;        // forwarded by memcpy (oracle mode)
  Counter* pool_hits;                // backend connection reused
  Counter* pool_misses;              // new backend handshake
  Counter* pool_expiries;            // idle connection timed out
  Counter* ratelimit_drops;          // connections refused at admission
  Gauge* pool_occupancy;             // idle backend connections now
};

}  // namespace hermes::obs
