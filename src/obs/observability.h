// The observability facade: one registry + the pipeline's named metric set
// + per-worker trace rings, bundled so every layer can be handed a single
// nullable pointer. A null Observability* means every instrumentation site
// is a branch-not-taken — the same convention as core::FaultInjector.
#pragma once

#include <cstddef>
#include <cstdint>

#include "obs/metrics.h"
#include "obs/trace_ring.h"

namespace hermes::obs {

struct Observability {
  explicit Observability(uint32_t workers, size_t ring_capacity = 4096)
      : registry(workers),
        metrics(registry, workers),
        traces(workers, ring_capacity) {}

  Registry registry;
  PipelineMetrics metrics;
  TraceBuffer traces;
};

}  // namespace hermes::obs
