#include "obs/trace_ring.h"

#include <algorithm>
#include <array>
#include <bit>
#include <cstdio>

#include "obs/json.h"

namespace hermes::obs {

const char* to_string(TraceType t) {
  switch (t) {
    case TraceType::Dispatch: return "dispatch";
    case TraceType::FilterVerdict: return "filter";
    case TraceType::BitmapSync: return "sync";
    case TraceType::Accept: return "accept";
    case TraceType::Drop: return "drop";
    case TraceType::RequestDone: return "request_done";
  }
  return "?";
}

TraceRing::TraceRing(size_t capacity) : cap_(std::bit_ceil(capacity)) {
  HERMES_CHECK(capacity > 0);
  words_ = std::make_unique<std::atomic<uint64_t>[]>(cap_ * kWords);
  for (size_t i = 0; i < cap_ * kWords; ++i) {
    words_[i].store(0, std::memory_order_relaxed);
  }
}

std::vector<TraceEvent> TraceRing::snapshot() const {
  const uint64_t h1 = head_.load(std::memory_order_acquire);
  const uint64_t lo = h1 > cap_ ? h1 - cap_ : 0;
  std::vector<std::array<uint64_t, kWords>> raw;
  raw.reserve(static_cast<size_t>(h1 - lo));
  for (uint64_t i = lo; i < h1; ++i) {
    const size_t base = (i & (cap_ - 1)) * kWords;
    std::array<uint64_t, kWords> rec;
    for (size_t wdx = 0; wdx < kWords; ++wdx) {
      rec[wdx] = words_[base + wdx].load(std::memory_order_relaxed);
    }
    raw.push_back(rec);
  }
  // Seqlock validation: a record at index i is intact only if no write to
  // index i+cap has started. The writer publishes head after each record
  // and pre-writes at most index h2, so everything with i + cap <= h2 must
  // be discarded as possibly overwritten mid-copy.
  const uint64_t h2 = head_.load(std::memory_order_acquire);
  const uint64_t safe_lo = h2 >= cap_ ? h2 - cap_ + 1 : 0;
  std::vector<TraceEvent> out;
  out.reserve(raw.size());
  for (uint64_t i = lo; i < h1; ++i) {
    if (i < safe_lo) continue;
    const auto& rec = raw[static_cast<size_t>(i - lo)];
    TraceEvent ev;
    ev.t_ns = static_cast<int64_t>(rec[0]);
    ev.type = static_cast<uint16_t>(rec[1] & 0xffff);
    ev.worker = static_cast<uint16_t>((rec[1] >> 16) & 0xffff);
    ev.a = static_cast<uint32_t>(rec[1] >> 32);
    ev.b = rec[2];
    ev.c = rec[3];
    out.push_back(ev);
  }
  return out;
}

TraceBuffer::TraceBuffer(uint32_t workers, size_t capacity) {
  HERMES_CHECK(workers > 0);
  rings_.reserve(workers);
  for (uint32_t w = 0; w < workers; ++w) {
    rings_.push_back(std::make_unique<TraceRing>(capacity));
  }
}

std::vector<TraceEvent> TraceBuffer::merged_snapshot() const {
  std::vector<TraceEvent> all;
  for (const auto& r : rings_) {
    const auto part = r->snapshot();
    all.insert(all.end(), part.begin(), part.end());
  }
  std::sort(all.begin(), all.end(), [](const TraceEvent& x, const TraceEvent& y) {
    if (x.t_ns != y.t_ns) return x.t_ns < y.t_ns;
    return x.worker < y.worker;
  });
  return all;
}

std::string to_chrome_trace(const std::vector<TraceEvent>& events) {
  std::string out;
  JsonWriter w(&out);
  w.begin_object();
  w.key("traceEvents");
  w.begin_array();
  for (const TraceEvent& ev : events) {
    w.begin_object();
    w.field("name", std::string(to_string(static_cast<TraceType>(ev.type))));
    w.field("ph", std::string("i"));
    w.field("s", std::string("t"));  // instant-event scope: thread
    // chrome://tracing timestamps are microseconds (fractional ok).
    w.field("ts", static_cast<double>(ev.t_ns) / 1e3);
    w.field("pid", uint64_t{0});
    w.field("tid", static_cast<uint64_t>(ev.worker));
    w.key("args");
    w.begin_object();
    w.field("a", static_cast<uint64_t>(ev.a));
    w.field("b", ev.b);
    w.field("c", ev.c);
    w.end_object();
    w.end_object();
  }
  w.end_array();
  w.field("displayTimeUnit", std::string("ms"));
  w.end_object();
  return out;
}

std::string to_text(const std::vector<TraceEvent>& events) {
  std::string out;
  char buf[160];
  for (const TraceEvent& ev : events) {
    std::snprintf(buf, sizeof(buf),
                  "%12.6fms w%-3u %-12s a=%-10u b=0x%-16llx c=%llu\n",
                  static_cast<double>(ev.t_ns) / 1e6, ev.worker,
                  to_string(static_cast<TraceType>(ev.type)), ev.a,
                  static_cast<unsigned long long>(ev.b),
                  static_cast<unsigned long long>(ev.c));
    out += buf;
  }
  return out;
}

}  // namespace hermes::obs
