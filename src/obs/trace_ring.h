// Per-worker binary trace rings: fixed-size, overwrite-oldest records of
// dispatch decisions and filter verdicts, with seqlock-style lock-free
// readers (validate-after-copy, discard possibly-overwritten records).
//
// One ring per worker, single writer each (the same partitioning as the
// WST), so writes are two relaxed stores per word plus one release store
// of the head — cheap enough to leave on in production, which is the whole
// point: when a dispatch decision looks wrong, the evidence is already in
// the ring.
//
// Readers never block writers. A reader copies the window, re-reads the
// head, and drops any record whose slot could have been re-used during the
// copy (index <= head' - capacity). Record words are relaxed atomics, so a
// discarded record is the worst case — never a torn one. The discard is
// conservative by exactly one slot: once the ring has wrapped, a snapshot
// returns at most capacity-1 records, because the oldest slot is the one
// the writer may already be reusing.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/check.h"
#include "util/types.h"

namespace hermes::obs {

enum class TraceType : uint16_t {
  Dispatch = 1,     // kernel pick:   a=picked worker, b=skb hash, c=port
  FilterVerdict,    // cascade run:   a=selected, b=bitmap,
                    //                c=after_time<<42 | after_conn<<21 | after_event
  BitmapSync,       // publication:   a=group, b=bitmap, c=gap since last sync (ns)
  Accept,           // SYN enqueued:  a=port, b=conn id, c=queue depth after push
  Drop,             // SYN dropped:   a=port, b=conn id, c=queue depth (=backlog)
  RequestDone,      // request served: a=tenant, b=conn id, c=latency ns
};

const char* to_string(TraceType t);

struct TraceEvent {
  int64_t t_ns = 0;
  uint16_t type = 0;
  uint16_t worker = 0;
  uint32_t a = 0;
  uint64_t b = 0;
  uint64_t c = 0;
};
static_assert(sizeof(TraceEvent) == 32);

class TraceRing {
 public:
  // Capacity in records; rounded up to a power of two.
  explicit TraceRing(size_t capacity = 4096);

  size_t capacity() const { return cap_; }
  uint64_t written() const { return head_.load(std::memory_order_relaxed); }

  // Single-writer append; overwrites the oldest record when full.
  void write(const TraceEvent& ev) {
    const uint64_t h = head_.load(std::memory_order_relaxed);
    const size_t base = (h & (cap_ - 1)) * kWords;
    words_[base + 0].store(static_cast<uint64_t>(ev.t_ns),
                           std::memory_order_relaxed);
    words_[base + 1].store(static_cast<uint64_t>(ev.type) |
                               (static_cast<uint64_t>(ev.worker) << 16) |
                               (static_cast<uint64_t>(ev.a) << 32),
                           std::memory_order_relaxed);
    words_[base + 2].store(ev.b, std::memory_order_relaxed);
    words_[base + 3].store(ev.c, std::memory_order_relaxed);
    head_.store(h + 1, std::memory_order_release);
  }

  // Consistent oldest-to-newest view; safe against a live writer.
  std::vector<TraceEvent> snapshot() const;

 private:
  static constexpr size_t kWords = 4;

  size_t cap_;
  std::unique_ptr<std::atomic<uint64_t>[]> words_;
  std::atomic<uint64_t> head_{0};
};

// One ring per worker plus convenience write/merge helpers.
class TraceBuffer {
 public:
  TraceBuffer(uint32_t workers, size_t capacity = 4096);

  uint32_t workers() const { return static_cast<uint32_t>(rings_.size()); }
  TraceRing& ring(WorkerId w) {
    HERMES_DCHECK(w < rings_.size());
    return *rings_[w];
  }

  void write(WorkerId worker, TraceType type, SimTime now, uint32_t a,
             uint64_t b, uint64_t c) {
    if (worker >= rings_.size()) worker = 0;  // kernel-side / unowned events
    TraceEvent ev;
    ev.t_ns = now.ns();
    ev.type = static_cast<uint16_t>(type);
    ev.worker = static_cast<uint16_t>(worker);
    ev.a = a;
    ev.b = b;
    ev.c = c;
    rings_[worker]->write(ev);
  }

  // All rings' snapshots merged and sorted by (time, worker).
  std::vector<TraceEvent> merged_snapshot() const;

 private:
  std::vector<std::unique_ptr<TraceRing>> rings_;
};

// ---- exporters ---------------------------------------------------------
// chrome://tracing / Perfetto "trace event format": a {"traceEvents":[...]}
// object of instant events, tid = worker. Load via chrome://tracing "Load"
// or ui.perfetto.dev.
std::string to_chrome_trace(const std::vector<TraceEvent>& events);
// One line per event (simctl --trace-dump).
std::string to_text(const std::vector<TraceEvent>& events);

}  // namespace hermes::obs
