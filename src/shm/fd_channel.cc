#include "shm/fd_channel.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <system_error>

namespace hermes::shm {

std::pair<FdChannel, FdChannel> FdChannel::make_pair() {
  int fds[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
    throw std::system_error(errno, std::generic_category(), "socketpair");
  }
  return {FdChannel{fds[0]}, FdChannel{fds[1]}};
}

FdChannel::~FdChannel() { close(); }

FdChannel::FdChannel(FdChannel&& o) noexcept : fd_(o.fd_) { o.fd_ = -1; }

FdChannel& FdChannel::operator=(FdChannel&& o) noexcept {
  if (this != &o) {
    close();
    fd_ = o.fd_;
    o.fd_ = -1;
  }
  return *this;
}

void FdChannel::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool FdChannel::send_fd(int fd, unsigned char tag) {
  char data = static_cast<char>(tag);
  struct iovec iov {};
  iov.iov_base = &data;
  iov.iov_len = 1;

  alignas(struct cmsghdr) char ctrl[CMSG_SPACE(sizeof(int))] = {};
  struct msghdr msg {};
  msg.msg_iov = &iov;
  msg.msg_iovlen = 1;
  msg.msg_control = ctrl;
  msg.msg_controllen = sizeof(ctrl);

  struct cmsghdr* cmsg = CMSG_FIRSTHDR(&msg);
  cmsg->cmsg_level = SOL_SOCKET;
  cmsg->cmsg_type = SCM_RIGHTS;
  cmsg->cmsg_len = CMSG_LEN(sizeof(int));
  std::memcpy(CMSG_DATA(cmsg), &fd, sizeof(int));

  ssize_t n;
  do {
    n = ::sendmsg(fd_, &msg, 0);
  } while (n < 0 && errno == EINTR);
  return n == 1;
}

std::optional<std::pair<int, unsigned char>> FdChannel::recv_fd() {
  char data = 0;
  struct iovec iov {};
  iov.iov_base = &data;
  iov.iov_len = 1;

  alignas(struct cmsghdr) char ctrl[CMSG_SPACE(sizeof(int))] = {};
  struct msghdr msg {};
  msg.msg_iov = &iov;
  msg.msg_iovlen = 1;
  msg.msg_control = ctrl;
  msg.msg_controllen = sizeof(ctrl);

  ssize_t n;
  do {
    n = ::recvmsg(fd_, &msg, 0);
  } while (n < 0 && errno == EINTR);
  if (n <= 0) return std::nullopt;

  for (struct cmsghdr* cmsg = CMSG_FIRSTHDR(&msg); cmsg != nullptr;
       cmsg = CMSG_NXTHDR(&msg, cmsg)) {
    if (cmsg->cmsg_level == SOL_SOCKET && cmsg->cmsg_type == SCM_RIGHTS) {
      int fd;
      std::memcpy(&fd, CMSG_DATA(cmsg), sizeof(int));
      return std::make_pair(fd, static_cast<unsigned char>(data));
    }
  }
  return std::nullopt;  // message without an fd
}

bool FdChannel::send_bytes(std::span<const std::byte> data) {
  size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd_, data.data() + off, data.size() - off, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

bool FdChannel::recv_exact(std::span<std::byte> data) {
  size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::recv(fd_, data.data() + off, data.size() - off, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;
    off += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace hermes::shm
