// Unix-domain socket pair that can pass file descriptors (SCM_RIGHTS).
//
// This is the live-demo substitute for the in-kernel eBPF dispatch hop: an
// acceptor process accept()s connections and ships each accepted fd to the
// worker chosen by the (identical) Hermes dispatch program. The selection
// logic is shared with the kernel path; only the trampoline differs
// (documented in DESIGN.md §2).
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <utility>

namespace hermes::shm {

class FdChannel {
 public:
  FdChannel() = default;

  // A connected pair; typical use: create before fork(), parent keeps
  // first(), child keeps second().
  static std::pair<FdChannel, FdChannel> make_pair();

  ~FdChannel();
  FdChannel(FdChannel&& o) noexcept;
  FdChannel& operator=(FdChannel&& o) noexcept;
  FdChannel(const FdChannel&) = delete;
  FdChannel& operator=(const FdChannel&) = delete;

  bool valid() const { return fd_ >= 0; }
  int raw_fd() const { return fd_; }
  void close();

  // Send `fd` plus a small out-of-band tag byte. Returns false on error.
  bool send_fd(int fd, unsigned char tag = 0);

  // Blocking receive; returns {fd, tag} or nullopt on EOF/error.
  std::optional<std::pair<int, unsigned char>> recv_fd();

  // Plain byte-stream helpers (control messages in the live demo).
  bool send_bytes(std::span<const std::byte> data);
  bool recv_exact(std::span<std::byte> data);

 private:
  explicit FdChannel(int fd) : fd_(fd) {}
  int fd_ = -1;
};

}  // namespace hermes::shm
