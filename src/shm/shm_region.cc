#include "shm/shm_region.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <system_error>
#include <utility>

namespace hermes::shm {

namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw std::system_error(errno, std::generic_category(), what);
}

}  // namespace

ShmRegion ShmRegion::create(const std::string& name, size_t size) {
  ::shm_unlink(name.c_str());  // replace any stale region from a crashed run
  const int fd = ::shm_open(name.c_str(), O_CREAT | O_EXCL | O_RDWR, 0600);
  if (fd < 0) throw_errno("shm_open(create)");
  if (::ftruncate(fd, static_cast<off_t>(size)) != 0) {
    ::close(fd);
    ::shm_unlink(name.c_str());
    throw_errno("ftruncate");
  }
  void* addr =
      ::mmap(nullptr, size, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  ::close(fd);
  if (addr == MAP_FAILED) {
    ::shm_unlink(name.c_str());
    throw_errno("mmap");
  }
  return ShmRegion{addr, size, name, /*owner=*/true};
}

ShmRegion ShmRegion::open(const std::string& name, size_t size) {
  const int fd = ::shm_open(name.c_str(), O_RDWR, 0600);
  if (fd < 0) throw_errno("shm_open(open)");
  void* addr =
      ::mmap(nullptr, size, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  ::close(fd);
  if (addr == MAP_FAILED) throw_errno("mmap");
  return ShmRegion{addr, size, name, /*owner=*/false};
}

ShmRegion ShmRegion::create_anonymous(size_t size) {
  void* addr = ::mmap(nullptr, size, PROT_READ | PROT_WRITE,
                      MAP_SHARED | MAP_ANONYMOUS, -1, 0);
  if (addr == MAP_FAILED) throw_errno("mmap(anonymous)");
  return ShmRegion{addr, size, std::string{}, /*owner=*/true};
}

ShmRegion::~ShmRegion() {
  if (addr_ != nullptr) {
    ::munmap(addr_, size_);
    if (owner_ && !name_.empty()) ::shm_unlink(name_.c_str());
  }
}

ShmRegion::ShmRegion(ShmRegion&& o) noexcept
    : addr_(std::exchange(o.addr_, nullptr)),
      size_(std::exchange(o.size_, 0)),
      name_(std::move(o.name_)),
      owner_(std::exchange(o.owner_, false)) {
  o.name_.clear();
}

ShmRegion& ShmRegion::operator=(ShmRegion&& o) noexcept {
  if (this != &o) {
    this->~ShmRegion();
    new (this) ShmRegion(std::move(o));
  }
  return *this;
}

void ShmRegion::unlink() {
  if (!name_.empty()) {
    ::shm_unlink(name_.c_str());
    owner_ = false;
  }
}

}  // namespace hermes::shm
