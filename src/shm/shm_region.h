// RAII POSIX shared-memory region.
//
// The Worker Status Table (core/wst.h) is placement-constructed into one of
// these so that real fork()ed worker processes share it, exactly as the
// paper's deployment does. Single-process users (the simulator) can instead
// use an in-heap buffer; the WST code is agnostic to where its bytes live.
#pragma once

#include <cstddef>
#include <string>

namespace hermes::shm {

class ShmRegion {
 public:
  ShmRegion() = default;

  // Create (or replace) a named region of `size` bytes, zero-initialized.
  // Throws std::system_error on failure.
  static ShmRegion create(const std::string& name, size_t size);

  // Open an existing named region.
  static ShmRegion open(const std::string& name, size_t size);

  // Anonymous region (MAP_SHARED | MAP_ANONYMOUS): shared with children
  // created by a later fork(), which is all the multi-process tests need and
  // avoids /dev/shm name management.
  static ShmRegion create_anonymous(size_t size);

  ~ShmRegion();

  ShmRegion(ShmRegion&& o) noexcept;
  ShmRegion& operator=(ShmRegion&& o) noexcept;
  ShmRegion(const ShmRegion&) = delete;
  ShmRegion& operator=(const ShmRegion&) = delete;

  void* data() const { return addr_; }
  size_t size() const { return size_; }
  bool valid() const { return addr_ != nullptr; }

  // Unlink the backing name (named regions only); mapping stays valid.
  void unlink();

 private:
  ShmRegion(void* addr, size_t size, std::string name, bool owner)
      : addr_(addr), size_(size), name_(std::move(name)), owner_(owner) {}

  void* addr_ = nullptr;
  size_t size_ = 0;
  std::string name_;  // empty for anonymous regions
  bool owner_ = false;
};

}  // namespace hermes::shm
