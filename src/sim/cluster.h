// Cluster-level models for the deployment-scale results:
//   * Fig. 11 — canary release: probes drain from old-version VMs as their
//     long-lived connections expire;
//   * Fig. 12 — unit cost of cloud infra: VM count is driven by the CPU
//     safety threshold, which Hermes lifts from 30% to 40% by eliminating
//     hung workers.
//
// These are arithmetic models layered on measured per-LB behaviour (the
// single-LB phenomena come from LbDevice simulations); the paper's own
// fleet numbers are likewise aggregates over per-device measurements.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "util/check.h"
#include "util/types.h"

namespace hermes::sim {

// Fig. 12 model: unit cost = (VMs needed) / traffic. VMs needed =
// ceil(peak CPU demand / (threshold * per-VM capacity)), with headroom for
// AZ disaster recovery.
struct UnitCostModel {
  double vm_capacity_cores = 32;
  double az_redundancy = 1.15;  // reserve for cross-AZ failover

  // Returns normalized unit cost (cost per unit of traffic).
  double unit_cost(double traffic_core_demand, double safety_threshold) const {
    HERMES_CHECK(safety_threshold > 0 && safety_threshold <= 1.0);
    const double vms = std::ceil(traffic_core_demand * az_redundancy /
                                 (safety_threshold * vm_capacity_cores));
    return vms / traffic_core_demand;
  }
};

// Fig. 11 model: after a canary release at day `release_day`, probes still
// reach old-version VMs until their connections drain. Connection residual
// after `d` days follows exp(-d / drain_tau_days) (mobile clients drop
// fast, IoT/cloud keep-alives linger — the paper saw up to 11 days).
struct CanaryDrainModel {
  double drain_tau_days = 3.0;

  double residual_fraction(double days_since_release) const {
    if (days_since_release < 0) return 1.0;
    return std::exp(-days_since_release / drain_tau_days);
  }
};

// Table 2 model: a region of devices, each device's max/min/avg core
// utilization measured; aggregates across the region.
struct DeviceUtilization {
  double max_core = 0, min_core = 0, avg_core = 0;
  double spread() const { return max_core - min_core; }
};

struct RegionUtilization {
  std::vector<DeviceUtilization> devices;

  DeviceUtilization region_average() const {
    DeviceUtilization avg;
    if (devices.empty()) return avg;
    for (const auto& d : devices) {
      avg.max_core += d.max_core;
      avg.min_core += d.min_core;
      avg.avg_core += d.avg_core;
    }
    const auto n = static_cast<double>(devices.size());
    avg.max_core /= n;
    avg.min_core /= n;
    avg.avg_core /= n;
    return avg;
  }

  const DeviceUtilization& worst_spread() const {
    HERMES_CHECK(!devices.empty());
    return *std::max_element(devices.begin(), devices.end(),
                             [](const auto& a, const auto& b) {
                               return a.spread() < b.spread();
                             });
  }
};

}  // namespace hermes::sim
