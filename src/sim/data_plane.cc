#include "sim/data_plane.h"

#include "http/response.h"
#include "util/check.h"

namespace hermes::sim {

namespace {

void append_u64(std::string* out, uint64_t v) {
  char buf[20];
  int n = 0;
  do {
    buf[n++] = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v > 0);
  while (n > 0) out->push_back(buf[--n]);
}

}  // namespace

void DataPlane::synth_request_wire(const Request& req, bool last_on_conn,
                                   std::string* out) {
  out->clear();
  out->append("POST /t");
  append_u64(out, req.tenant);
  out->append("/r");
  append_u64(out, req.id);
  out->append(" HTTP/1.1\r\nHost: tenant-");
  append_u64(out, req.tenant);
  out->append(".svc.hermes\r\nUser-Agent: hermes-client\r\nX-Request-Id: ");
  append_u64(out, req.id);
  out->append("\r\n");
  if (last_on_conn) out->append("Connection: close\r\n");
  // Pad the message toward the plan's request size with a body.
  const size_t overhead = out->size() + 40;  // ~Content-Length + blank line
  const uint64_t body_len = req.bytes > overhead ? req.bytes - overhead : 0;
  out->append("Content-Length: ");
  append_u64(out, body_len);
  out->append("\r\n\r\n");
  for (uint64_t i = 0; i < body_len; ++i) {
    out->push_back(static_cast<char>('a' + (req.id + i) % 26));
  }
}

void DataPlane::synth_response_body(const Request& req, std::string* out) {
  out->clear();
  const uint64_t body_len = req.bytes;  // echo-sized deterministic payload
  out->reserve(body_len);
  for (uint64_t i = 0; i < body_len; ++i) {
    out->push_back(static_cast<char>('A' + (req.id * 7 + i) % 26));
  }
}

DataPlane::DataPlane(const Config& cfg, uint32_t num_workers,
                     obs::Observability* obs)
    : cfg_(cfg),
      num_workers_(num_workers),
      obs_(obs),
      rr_(num_workers, /*randomize_start=*/true),
      pool_([&] {
        core::BackendConnectionPool::Config pc = cfg.pool;
        pc.num_workers = num_workers;
        return pc;
      }()) {
  std::vector<core::BackendId> backends;
  backends.reserve(cfg_.num_backends);
  for (uint32_t b = 0; b < cfg_.num_backends; ++b) backends.push_back(b);
  rr_.update_backends(std::move(backends), cfg_.seed);
}

DataPlane::ConnCtx& DataPlane::ctx(netsim::ConnId id) {
  auto it = conns_.find(id);
  if (it == conns_.end()) {
    http::ConnState::Config cc;
    cc.zero_copy = cfg_.zero_copy;
    cc.capture_body = false;  // bodies travel only in the wire chain
    it = conns_.try_emplace(id, cc).first;
  }
  return it->second;
}

void DataPlane::sync_pool_stats(WorkerId w) {
  if (obs_ == nullptr) return;
  const auto& s = pool_.stats();
  auto& m = obs_->metrics;
  if (s.hits > pool_seen_.hits) m.pool_hits->add(w, s.hits - pool_seen_.hits);
  if (s.misses > pool_seen_.misses) {
    m.pool_misses->add(w, s.misses - pool_seen_.misses);
  }
  if (s.expiries > pool_seen_.expiries) {
    m.pool_expiries->add(w, s.expiries - pool_seen_.expiries);
  }
  pool_seen_ = s;
  m.pool_occupancy->set(static_cast<int64_t>(pool_.idle_total()));
}

SimTime DataPlane::on_request(WorkerId w, const Request& req,
                              bool last_on_conn, SimTime now) {
  if (w >= num_workers_) w = 0;  // unowned yet: account to worker 0
  ConnCtx& c = ctx(req.conn);

  synth_request_wire(req, last_on_conn, &scratch_);
  c.cs.on_client_data(std::string_view{scratch_});
  HERMES_CHECK_MSG(!c.cs.failed(), "data plane synthesized a bad request");
  auto ready = c.cs.pop_ready();
  HERMES_CHECK_MSG(ready.has_value(),
                   "data plane request did not parse to completion");

  totals_.bytes_in += scratch_.size();
  const size_t wire_bytes = ready->wire.size();
  totals_.backend_stream_hash =
      ready->wire.fnv1a(totals_.backend_stream_hash);
  ++totals_.requests_forwarded;
  if (cfg_.zero_copy) {
    totals_.bytes_zero_copied += wire_bytes;
  } else {
    totals_.bytes_copied += wire_bytes;
  }

  // Pick a backend and take (or establish) a connection to it.
  const core::BackendId b = rr_.pick(w);
  const auto pooled = pool_.acquire(w, b, now);
  pending_[req.id] = Pending{b, pooled ? pooled->id : 0};

  totals_.pool_hits = pool_.stats().hits;
  totals_.pool_misses = pool_.stats().misses;
  totals_.pool_expiries = pool_.stats().expiries;
  totals_.pool_evictions = pool_.stats().evictions;

  if (obs_ != nullptr) {
    auto& m = obs_->metrics;
    m.http_requests_forwarded->inc(w);
    if (cfg_.zero_copy) {
      m.http_bytes_zero_copied->add(w, wire_bytes);
    } else {
      m.http_bytes_copied->add(w, wire_bytes);
    }
  }
  sync_pool_stats(w);

  const SimTime byte_cost{cfg_.per_byte_cost.ns() *
                          static_cast<int64_t>(req.bytes)};
  return byte_cost + (pooled ? SimTime{} : cfg_.backend_handshake_cost);
}

void DataPlane::on_response(WorkerId w, const Request& req, SimTime now) {
  if (w >= num_workers_) w = 0;
  auto cit = conns_.find(req.conn);
  if (cit == conns_.end()) return;  // closed mid-flight
  ConnCtx& c = cit->second;

  http::Response resp;
  resp.set_status(200);
  resp.add_header("Server", "hermes-lb");
  std::string body;
  synth_response_body(req, &body);
  resp.set_body(std::move(body));

  const netsim::IoChain encoded = http::ConnState::encode(resp);
  const netsim::IoChain out = c.cs.egress(encoded);
  totals_.client_stream_hash = out.fnv1a(totals_.client_stream_hash);
  totals_.bytes_out += out.size();
  ++totals_.responses_returned;
  if (cfg_.zero_copy) {
    totals_.bytes_zero_copied += out.size();
  } else {
    totals_.bytes_copied += out.size();
  }
  if (obs_ != nullptr) {
    auto& m = obs_->metrics;
    if (cfg_.zero_copy) {
      m.http_bytes_zero_copied->add(w, static_cast<int64_t>(out.size()));
    } else {
      m.http_bytes_copied->add(w, static_cast<int64_t>(out.size()));
    }
  }

  // Return the backend connection to the pool.
  auto pit = pending_.find(req.id);
  if (pit != pending_.end()) {
    pool_.release(w, pit->second.backend, pit->second.pooled_id, now);
    pending_.erase(pit);
  }
  totals_.pool_evictions = pool_.stats().evictions;
  sync_pool_stats(w);
}

void DataPlane::on_conn_close(netsim::ConnId id) {
  conns_.erase(id);
}

}  // namespace hermes::sim
