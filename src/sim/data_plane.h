// The L7 proxy data plane: real bytes behind the simulator's abstract
// requests.
//
// For every sim::Request the workload layer generates, the data plane
// synthesizes the request's actual HTTP/1.1 wire bytes, admits them into
// the connection's http::ConnState (keep-alive + pipelining over iobuf
// chains), re-parses them exactly as the LB would, and forwards the wire
// chain to a backend picked round-robin — reusing a pooled backend
// connection when one is warm, else charging the handshake cost into the
// request's service time. The response path encodes a deterministic
// backend reply and egresses it to the client through the same
// zero-copy-or-oracle machinery.
//
// Both modes (HERMES_ZEROCOPY=1 zero-copy / =0 copy oracle) must produce
// bit-identical backend and client byte streams; the data plane chains
// an FNV-1a hash over each direction so benches and tests can assert it.
//
// Disabled by default (Config::enabled=false): every pre-existing bench
// and test runs byte-identically with the data plane compiled in.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>

#include "core/backend_pool.h"
#include "http/conn_state.h"
#include "netsim/iobuf.h"
#include "obs/observability.h"
#include "sim/request.h"
#include "util/types.h"

namespace hermes::sim {

class DataPlane {
 public:
  struct Config {
    bool enabled = false;
    // Splice-style forwarding (references into admitted segments) vs the
    // copy oracle. Callers usually seed this from HERMES_ZEROCOPY via
    // http::zero_copy_enabled_from_env().
    bool zero_copy = true;
    uint32_t num_backends = 8;
    core::BackendConnectionPool::Config pool{};
    // Charged into a request's service time on a pool miss (the TCP/TLS
    // handshake to the backend the paper's §7 pools exist to avoid).
    SimTime backend_handshake_cost = SimTime::micros(50);
    // Body-size-dependent service cost: every request additionally costs
    // per_byte_cost * Request::bytes (parse + forward work scales with the
    // wire size). Zero by default — the abstract cost model stays
    // byte-identical unless a scenario opts in.
    SimTime per_byte_cost{};
    uint64_t seed = 42;  // round-robin start offsets
  };

  struct Totals {
    uint64_t requests_forwarded = 0;
    uint64_t responses_returned = 0;
    uint64_t bytes_in = 0;             // client→LB admitted bytes
    uint64_t bytes_out = 0;            // LB→client bytes
    uint64_t bytes_zero_copied = 0;    // forwarded by reference
    uint64_t bytes_copied = 0;         // forwarded by memcpy (oracle)
    uint64_t pool_hits = 0;
    uint64_t pool_misses = 0;
    uint64_t pool_expiries = 0;
    uint64_t pool_evictions = 0;
    uint64_t parse_errors = 0;
    // Chained FNV-1a over every byte forwarded toward backends /
    // clients, in completion order. Equal across modes or bust.
    uint64_t backend_stream_hash = netsim::IoChain::kFnvOffset;
    uint64_t client_stream_hash = netsim::IoChain::kFnvOffset;
  };

  DataPlane(const Config& cfg, uint32_t num_workers, obs::Observability* obs);

  // Client request admitted on `req.conn`, to be served by worker `w`.
  // Synthesizes + parses + forwards the request's wire bytes. Returns
  // the extra service cost (backend handshake on a pool miss).
  SimTime on_request(WorkerId w, const Request& req, bool last_on_conn,
                     SimTime now);

  // Request served: encode the backend response and egress it.
  void on_response(WorkerId w, const Request& req, SimTime now);

  void on_conn_close(netsim::ConnId id);

  const Totals& totals() const { return totals_; }
  const Config& config() const { return cfg_; }
  const core::BackendConnectionPool& pool() const { return pool_; }
  size_t live_conn_states() const { return conns_.size(); }

  // Builds the deterministic wire form for a request / its response —
  // shared with bench/proxy_path so micro and sim legs agree.
  static void synth_request_wire(const Request& req, bool last_on_conn,
                                 std::string* out);
  static void synth_response_body(const Request& req, std::string* out);

 private:
  struct ConnCtx {
    http::ConnState cs;
    explicit ConnCtx(const http::ConnState::Config& c) : cs(c) {}
  };
  struct Pending {
    core::BackendId backend = 0;
    uint64_t pooled_id = 0;  // 0 = freshly established
  };

  ConnCtx& ctx(netsim::ConnId id);
  void sync_pool_stats(WorkerId w);

  Config cfg_;
  uint32_t num_workers_;
  obs::Observability* obs_;
  core::RoundRobinBackends rr_;
  core::BackendConnectionPool pool_;
  core::BackendConnectionPool::Stats pool_seen_{};  // last obs-synced stats
  std::unordered_map<netsim::ConnId, ConnCtx> conns_;
  std::unordered_map<RequestId, Pending> pending_;
  std::string scratch_;
  Totals totals_;
};

}  // namespace hermes::sim
