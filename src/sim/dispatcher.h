// Userspace dispatcher baseline (paper §2.2): a dedicated process sits on
// the shared listening sockets, accept()s every new connection, and hands
// it to a backend worker under a fair policy (round-robin here). Common in
// database systems (PostgreSQL-style), but — as the paper argues — a
// network LB's dispatcher sits on the critical path and saturates under
// high CPS: its single core caps the whole device's connection rate.
//
// The dispatcher consumes one core; serving workers are ids 1..N-1.
#pragma once

#include <functional>

#include "netsim/netstack.h"
#include "simcore/event_queue.h"
#include "util/types.h"

namespace hermes::sim {

class Dispatcher final : public netsim::Waiter {
 public:
  struct Config {
    // Per-connection cost on the dispatcher's core: accept() + picking a
    // worker + handing the fd over (pipe/queue write + wakeup).
    SimTime dispatch_cost = SimTime::micros(18);
    SimTime wakeup_cost = SimTime::micros(2);
    SimTime idle_timeout = SimTime::millis(5);
    int max_batch = 64;
  };

  // Forward an accepted connection to worker `target`.
  using ForwardFn = std::function<void(WorkerId, netsim::Connection)>;

  Dispatcher(Config cfg, EventQueue& eq, netsim::NetStack& ns,
             uint32_t num_serving_workers, ForwardFn forward)
      : cfg_(cfg), eq_(eq), ns_(ns),
        num_serving_(num_serving_workers), forward_(std::move(forward)) {}

  void attach_sockets() { sockets_ = ns_.sockets_of(0); }

  void start() {
    ns_.register_waiter(this);
    block();
  }

  bool try_wake(netsim::ListeningSocket&) override {
    if (state_ != State::Blocked) return false;
    state_ = State::Woken;
    eq_.cancel(timeout_);
    eq_.schedule_after(SimTime::zero(), [this] { run(); });
    return true;
  }

  SimTime busy_time() const { return busy_time_; }
  uint64_t dispatched() const { return dispatched_; }

 private:
  enum class State : uint8_t { Blocked, Woken, Running };

  void block() {
    state_ = State::Blocked;
    timeout_ = eq_.schedule_after(cfg_.idle_timeout, [this] {
      state_ = State::Woken;
      run();
    });
  }

  void run() {
    state_ = State::Running;
    busy_time_ += cfg_.wakeup_cost;
    // Drain up to a batch of pending connections across all ports,
    // charging the per-connection dispatch cost serially (the critical
    // path that makes the dispatcher the bottleneck).
    int taken = 0;
    SimTime spent = cfg_.wakeup_cost;
    for (netsim::ListeningSocket* sock : sockets_) {
      while (taken < cfg_.max_batch && !sock->accept_queue().empty()) {
        const netsim::Connection conn = ns_.accept(*sock, next_worker_);
        if (!conn) break;
        pending_.push_back({conn, next_worker_});
        next_worker_ = 1 + (next_worker_ % num_serving_);  // RR over 1..N-1
        ++taken;
        spent += cfg_.dispatch_cost;
      }
      if (taken >= cfg_.max_batch) break;
    }
    busy_time_ += spent - cfg_.wakeup_cost;
    dispatched_ += static_cast<uint64_t>(taken);

    // Deliver after the dispatch processing time has elapsed.
    eq_.schedule_after(spent, [this] {
      for (auto& [conn, target] : pending_) forward_(target, conn);
      pending_.clear();
      // More queued? immediately re-run; else block.
      for (netsim::ListeningSocket* sock : sockets_) {
        if (!sock->accept_queue().empty()) {
          eq_.schedule_after(SimTime::zero(), [this] { run(); });
          state_ = State::Woken;
          return;
        }
      }
      block();
    });
  }

  Config cfg_;
  EventQueue& eq_;
  netsim::NetStack& ns_;
  uint32_t num_serving_;
  ForwardFn forward_;

  std::vector<netsim::ListeningSocket*> sockets_;
  std::vector<std::pair<netsim::Connection, WorkerId>> pending_;
  State state_ = State::Running;
  EventQueue::Handle timeout_{};
  WorkerId next_worker_ = 1;
  SimTime busy_time_{};
  uint64_t dispatched_ = 0;
};

}  // namespace hermes::sim
