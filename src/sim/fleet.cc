#include "sim/fleet.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace hermes::sim {

Fleet::Fleet(Config cfg)
    : cfg_(cfg), maglev_(cfg.maglev_size), rng_(cfg.seed ^ 0xf1ee7f1ee7ull) {
  HERMES_CHECK(cfg_.num_lbs > 0);
  devices_.reserve(cfg_.num_lbs);
  for (uint32_t i = 0; i < cfg_.num_lbs; ++i) {
    devices_.push_back(std::make_unique<LbDevice>(device_config(next_id_)));
    ids_.push_back(next_id_++);
    active_.push_back(true);
  }
  rebuild_tables();
}

LbDevice::Config Fleet::device_config(uint32_t index) const {
  LbDevice::Config dc = cfg_.device;
  dc.seed = cfg_.seed * 0x9e3779b97f4a7c15ull + index + 1;
  return dc;
}

size_t Fleet::active_count() const {
  size_t n = 0;
  for (bool a : active_) n += a ? 1 : 0;
  return n;
}

void Fleet::rebuild_tables() {
  std::vector<uint32_t> members;
  for (size_t i = 0; i < devices_.size(); ++i) {
    if (active_[i]) members.push_back(ids_[i]);
  }
  maglev_.build(members);
}

size_t Fleet::index_of_id(uint32_t id) const {
  for (size_t i = 0; i < ids_.size(); ++i) {
    if (ids_[i] == id) return i;
  }
  return SIZE_MAX;
}

size_t Fleet::route(uint32_t flow_hash) const {
  if (active_count() == 0) return SIZE_MAX;
  return index_of_id(maglev_.lookup(flow_hash));
}

size_t Fleet::route_mod(uint32_t flow_hash) const {
  const size_t n = active_count();
  if (n == 0) return SIZE_MAX;
  uint32_t k = netsim::reciprocal_scale(flow_hash,
                                        static_cast<uint32_t>(n));
  for (size_t i = 0; i < devices_.size(); ++i) {
    if (!active_[i]) continue;
    if (k == 0) return i;
    --k;
  }
  return SIZE_MAX;
}

size_t Fleet::open_burst(TenantId tenant, const LbDevice::ConnPlan& plan,
                         size_t count) {
  if (active_count() == 0) return 0;
  burst_groups_.resize(devices_.size());
  for (auto& g : burst_groups_) g.clear();

  // The dport must match what the chosen device binds for this tenant;
  // port layout is identical across devices (same Config), so tuple
  // generation does not depend on the routing decision.
  const auto dport = static_cast<PortId>(
      cfg_.device.first_port + tenant % cfg_.device.num_ports);
  for (size_t i = 0; i < count; ++i) {
    netsim::FourTuple t;
    t.saddr = static_cast<uint32_t>(rng_.next_u64());
    t.daddr = 0x0a000001;
    t.sport = static_cast<uint16_t>(1024 + rng_.next_below(60000));
    t.dport = dport;
    const size_t dev = route(netsim::skb_hash(t));
    HERMES_DCHECK(dev != SIZE_MAX);
    burst_groups_[dev].push_back(t);
  }

  size_t established = 0;
  for (size_t d = 0; d < devices_.size(); ++d) {
    if (burst_groups_[d].empty()) continue;
    established += devices_[d]->open_tuple_burst(tenant, plan,
                                                 burst_groups_[d]);
  }
  return established;
}

size_t Fleet::add_lb() {
  devices_.push_back(std::make_unique<LbDevice>(device_config(next_id_)));
  ids_.push_back(next_id_++);
  active_.push_back(true);
  // New devices join at the fleet clock (their queue starts at zero).
  devices_.back()->eq().run_until(now_);
  rebuild_tables();
  return devices_.size() - 1;
}

void Fleet::remove_lb(size_t i) {
  HERMES_CHECK(i < devices_.size() && active_[i]);
  active_[i] = false;
  rebuild_tables();
  // Every connection still on the removed device is broken: the stateless
  // front tier now routes its packets to a device with no state for it.
  broken_total_ += devices_[i]->live_connections();
  devices_[i]->close_fraction(1.0);
}

Fleet::PccAudit Fleet::audit_pcc() {
  PccAudit audit;
  for (size_t d = 0; d < devices_.size(); ++d) {
    if (!active_[d]) continue;
    devices_[d]->netstack().conns().for_each_live(
        [&](netsim::Connection c) {
          const uint32_t h = netsim::skb_hash(c.tuple());
          ++audit.checked;
          if (route(h) != d) ++audit.maglev_violations;
          if (route_mod(h) != d) ++audit.modn_violations;
        });
  }
  return audit;
}

Fleet::Imbalance Fleet::imbalance() const {
  Imbalance im;
  uint64_t total = 0, n = 0;
  uint64_t mx = 0, mn = UINT64_MAX;
  for (size_t d = 0; d < devices_.size(); ++d) {
    if (!active_[d]) continue;
    const uint64_t live = devices_[d]->live_connections();
    total += live;
    mx = std::max(mx, live);
    mn = std::min(mn, live);
    ++n;
  }
  if (n == 0) return im;
  im.conn_avg = static_cast<double>(total) / static_cast<double>(n);
  double var = 0;
  for (size_t d = 0; d < devices_.size(); ++d) {
    if (!active_[d]) continue;
    const double diff = static_cast<double>(devices_[d]->live_connections()) -
                        im.conn_avg;
    var += diff * diff;
  }
  im.conn_sd = std::sqrt(var / static_cast<double>(n));
  im.conn_max = mx;
  im.conn_min = mn;
  im.max_over_avg = im.conn_avg > 0
                        ? static_cast<double>(mx) / im.conn_avg
                        : 0;
  return im;
}

void Fleet::run_until(SimTime until, SimTime step) {
  SimTime t = now_;
  while (t < until) {
    t = std::min(until, t + step);
    for (size_t d = 0; d < devices_.size(); ++d) {
      // Inactive devices keep draining their queues (in-flight work
      // finishes) but receive no new connections.
      devices_[d]->eq().run_until(t);
    }
    now_ = t;
  }
}

uint64_t Fleet::total_live() const {
  uint64_t sum = 0;
  for (size_t d = 0; d < devices_.size(); ++d) {
    if (active_[d]) sum += devices_[d]->live_connections();
  }
  return sum;
}

uint64_t Fleet::total_completed() const {
  uint64_t sum = 0;
  for (const auto& d : devices_) sum += d->totals().requests_completed;
  return sum;
}

uint64_t Fleet::total_opened() const {
  uint64_t sum = 0;
  for (const auto& d : devices_) sum += d->totals().conns_opened;
  return sum;
}

uint64_t Fleet::total_dropped() const {
  uint64_t sum = 0;
  for (const auto& d : devices_) sum += d->totals().conns_dropped;
  return sum;
}

DataPlane::Totals Fleet::data_plane_totals() const {
  DataPlane::Totals t;
  t.backend_stream_hash = 0;
  t.client_stream_hash = 0;
  for (const auto& d : devices_) {
    const DataPlane* dp = d->data_plane();
    if (dp == nullptr) continue;
    const DataPlane::Totals& s = dp->totals();
    t.requests_forwarded += s.requests_forwarded;
    t.responses_returned += s.responses_returned;
    t.bytes_in += s.bytes_in;
    t.bytes_out += s.bytes_out;
    t.bytes_zero_copied += s.bytes_zero_copied;
    t.bytes_copied += s.bytes_copied;
    t.pool_hits += s.pool_hits;
    t.pool_misses += s.pool_misses;
    t.pool_expiries += s.pool_expiries;
    t.pool_evictions += s.pool_evictions;
    t.parse_errors += s.parse_errors;
    t.backend_stream_hash ^= s.backend_stream_hash;
    t.client_stream_hash ^= s.client_stream_hash;
  }
  return t;
}

}  // namespace hermes::sim
