// Fleet: N Hermes LB instances behind a stateless consistent-hashing front
// tier — the production topology the ROADMAP's north star calls for, at the
// scale where per-connection consistency (PCC) becomes the metric that
// matters ("LB Scalability: Stateful vs Stateless", PAPERS.md).
//
// The front tier keeps no per-flow state: every packet of a connection is
// routed by hashing its four-tuple through a Maglev lookup table over the
// active LB set. That makes the tier trivially scalable, but membership
// churn (LB add/remove) moves table slots — and every live connection whose
// slot moved now lands on an LB with no state for it (a PCC violation:
// the connection breaks). Maglev's guarantee is that churn moves few slots;
// the mod-N baseline (reciprocal_scale over the active count, what naive
// ECMP does) moves almost all of them. Fleet measures both, by scanning the
// SoA connection slabs of every device and re-routing each live tuple.
//
// Each LbDevice keeps its own event queue (as in multi_lb.h); devices only
// interact through connection arrivals, so the fleet advances them in
// bounded lockstep.
#pragma once

#include <memory>
#include <vector>

#include "netsim/four_tuple.h"
#include "sim/lb.h"

namespace hermes::sim {

// Maglev consistent-hash lookup table (Eisenbud et al., NSDI'16): each
// backend fills table slots by walking its own permutation of [0, M);
// every backend gets within one slot of M/N, and removing a backend only
// reassigns the slots it owned (plus a small perturbation).
class MaglevTable {
 public:
  // `size` should be prime and >> max backend count; 65537 here.
  explicit MaglevTable(uint32_t size = 65537) : size_(size) {}

  // Rebuild the table over `backends` (stable ids; order-insensitive by
  // construction since permutations depend only on the id).
  void build(const std::vector<uint32_t>& backends) {
    table_.assign(size_, kEmpty);
    if (backends.empty()) return;
    const size_t n = backends.size();
    std::vector<uint32_t> offset(n), skip(n), next(n, 0);
    for (size_t i = 0; i < n; ++i) {
      const uint32_t id = backends[i];
      offset[i] = netsim::jhash_3words(id, 0x6d61676cu, 0xe1u, 0) % size_;
      skip[i] = netsim::jhash_3words(id, 0x6d61676cu, 0xe2u, 0) %
                    (size_ - 1) + 1;
    }
    uint32_t filled = 0;
    while (filled < size_) {
      for (size_t i = 0; i < n && filled < size_; ++i) {
        // Walk backend i's permutation to its next unclaimed slot.
        uint32_t slot;
        do {
          slot = (offset[i] + next[i] * skip[i]) % size_;
          ++next[i];
        } while (table_[slot] != kEmpty);
        table_[slot] = backends[i];
        ++filled;
      }
    }
  }

  bool empty() const { return table_.empty() || table_[0] == kEmpty; }
  uint32_t size() const { return size_; }
  // Backend id owning `hash`'s slot.
  uint32_t lookup(uint32_t hash) const { return table_[hash % size_]; }
  uint32_t slot_owner(uint32_t slot) const { return table_[slot]; }

 private:
  static constexpr uint32_t kEmpty = 0xffffffffu;
  uint32_t size_;
  std::vector<uint32_t> table_;
};

class Fleet {
 public:
  struct Config {
    uint32_t num_lbs = 4;
    LbDevice::Config device{};    // per-device seed derived from seed + index
    uint32_t maglev_size = 65537; // prime
    uint64_t seed = 1;
  };

  explicit Fleet(Config cfg);

  size_t device_count() const { return devices_.size(); }
  size_t active_count() const;
  LbDevice& device(size_t i) { return *devices_[i]; }
  bool active(size_t i) const { return active_[i]; }

  // ---- front tier ------------------------------------------------------
  // Maglev route: device index owning this flow hash (SIZE_MAX if no
  // active device).
  size_t route(uint32_t flow_hash) const;
  // Mod-N baseline: reciprocal_scale over the active devices in index
  // order — what a naive ECMP front tier does.
  size_t route_mod(uint32_t flow_hash) const;

  // Open `count` connections for `tenant`: tuples are drawn from the fleet
  // RNG, routed by Maglev exactly as the front tier would route the SYN,
  // and delivered to each device as one tuple burst. Returns established.
  size_t open_burst(TenantId tenant, const LbDevice::ConnPlan& plan,
                    size_t count);

  // ---- membership churn ------------------------------------------------
  // Add one LB instance; the table rebuild remaps ~1/N of the hash space.
  // Returns the new device's index.
  size_t add_lb();

  // Remove LB `i` from the rotation. Its live connections are broken (the
  // stateless tier cannot pin them anywhere) and closed; surviving
  // connections on other devices may also be remapped by the rebuild.
  void remove_lb(size_t i);

  // ---- PCC audit -------------------------------------------------------
  // Scan every active device's connection slab (SoA column walk) and
  // re-route each live tuple through the CURRENT front-tier tables.
  struct PccAudit {
    uint64_t checked = 0;            // live connections scanned
    uint64_t maglev_violations = 0;  // Maglev now routes elsewhere
    uint64_t modn_violations = 0;    // mod-N baseline routes elsewhere
  };
  PccAudit audit_pcc();

  uint64_t broken_total() const { return broken_total_; }

  // ---- fleet-scale imbalance (Table-2 style, across devices) -----------
  struct Imbalance {
    double conn_avg = 0;
    double conn_sd = 0;
    uint64_t conn_max = 0;
    uint64_t conn_min = 0;
    double max_over_avg = 0;
  };
  Imbalance imbalance() const;

  // ---- clock -----------------------------------------------------------
  // Advance every device's queue to `until` in `step`-sized slices.
  void run_until(SimTime until, SimTime step = SimTime::millis(100));
  SimTime now() const { return now_; }

  uint64_t total_live() const;
  uint64_t total_completed() const;
  uint64_t total_opened() const;
  uint64_t total_dropped() const;

  // Aggregated L7 data-plane totals across all devices (zero when the
  // fleet's device config leaves the data plane off). Per-device stream
  // hashes are combined by XOR into a fleet-level identity.
  DataPlane::Totals data_plane_totals() const;

 private:
  size_t index_of_id(uint32_t id) const;  // device index for a backend id
  void rebuild_tables();
  LbDevice::Config device_config(uint32_t index) const;

  Config cfg_;
  std::vector<std::unique_ptr<LbDevice>> devices_;
  std::vector<uint32_t> ids_;      // stable backend id per device index
  std::vector<bool> active_;
  MaglevTable maglev_;
  Rng rng_;
  SimTime now_{};
  uint64_t broken_total_ = 0;
  uint32_t next_id_ = 0;

  // open_burst scratch: per-device tuple groups.
  std::vector<std::vector<netsim::FourTuple>> burst_groups_;
};

}  // namespace hermes::sim
