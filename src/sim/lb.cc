#include "sim/lb.h"

#include <cmath>

#include "util/check.h"

namespace hermes::sim {

namespace {

netsim::NetStack::Config netstack_config(const LbDevice::Config& cfg) {
  netsim::NetStack::Config nc;
  nc.mode = cfg.mode;
  nc.num_workers = cfg.num_workers;
  nc.backlog = cfg.backlog;
  return nc;
}

}  // namespace

LbDevice::LbDevice(Config cfg)
    : cfg_(cfg), rng_(cfg.seed), ns_(netstack_config(cfg)) {
  if (cfg_.observability) {
    obs_ = std::make_unique<obs::Observability>(cfg_.num_workers,
                                                cfg_.trace_ring_capacity);
    obs_req_latency_ = &obs_->registry.histogram("request.latency_ns",
                                                 cfg_.num_workers, 3);
    ns_.set_obs(obs_.get());
  }
  if (cfg_.data_plane.enabled) {
    dp_ = std::make_unique<DataPlane>(cfg_.data_plane, cfg_.num_workers,
                                      obs_.get());
  }
  if (cfg_.rate_limit.rate_per_sec > 0) limiter_.emplace(cfg_.rate_limit);
  // Ports first (sockets exist before workers attach).
  for (uint32_t p = 0; p < cfg_.num_ports; ++p) {
    ns_.add_port(static_cast<PortId>(cfg_.first_port + p));
  }

  if (cfg_.mode == netsim::DispatchMode::HermesMode) {
    core::HermesRuntime::Options opts;
    opts.config = cfg_.hermes;
    opts.num_workers = cfg_.num_workers;
    opts.faults = cfg_.faults;
    opts.obs = obs_.get();
    opts.policy = cfg_.policy;
    if (!cfg_.worker_speeds.empty()) {
      // Capacity weights for the weighted policy: proportional to core
      // speed, quantized to keep the 64-slot lottery table faithful.
      opts.worker_weights.reserve(cfg_.num_workers);
      for (WorkerId w = 0; w < cfg_.num_workers; ++w) {
        const double speed =
            w < cfg_.worker_speeds.size() ? cfg_.worker_speeds[w] : 1.0;
        opts.worker_weights.push_back(static_cast<uint32_t>(
            std::max<int64_t>(1, std::llround(speed * 4.0))));
      }
    }
    hermes_.emplace(opts);
    hermes_->vm().set_time_fn(
        [this] { return static_cast<uint64_t>(eq_.now().ns()); });
    degradation_.emplace(cfg_.hermes);
    // Stage-3 attachment per port.
    for (uint32_t p = 0; p < cfg_.num_ports; ++p) {
      const auto port = static_cast<PortId>(cfg_.first_port + p);
      std::vector<uint64_t> cookies;
      cookies.reserve(cfg_.num_workers);
      for (WorkerId w = 0; w < cfg_.num_workers; ++w) {
        cookies.push_back(ns_.worker_socket(port, w)->cookie());
      }
      attachments_.push_back(hermes_->attach_port(cookies));
      ns_.group(port)->attach_program(&hermes_->vm(),
                                      attachments_.back().program.get());
      if (obs_) {
        ns_.group(port)->set_policy_counter(
            obs_->metrics.policy_dispatches[static_cast<size_t>(
                hermes_->policy_kind())]);
      }
    }
  }

  Worker::Host host;
  host.on_accepted = [this](Worker& w, netsim::Connection c) {
    on_accepted(w, c);
  };
  host.on_request_done = [this](Worker& w, const Request& r) {
    on_request_done(w, r);
  };

  const bool user_dispatcher = cfg_.mode == netsim::DispatchMode::UserDispatcher;
  for (WorkerId w = 0; w < cfg_.num_workers; ++w) {
    Worker::Config wc = cfg_.worker;
    wc.id = w;
    if (w < cfg_.worker_speeds.size()) wc.speed = cfg_.worker_speeds[w];
    if (user_dispatcher) wc.accepts_enabled = false;
    workers_.push_back(std::make_unique<Worker>(
        wc, eq_, ns_, host, hermes_ ? &*hermes_ : nullptr));
  }

  if (netsim::uses_per_worker_sockets(cfg_.mode)) {
    ns_.set_socket_ready_fn([this](WorkerId w, netsim::ListeningSocket& s) {
      workers_[w]->on_socket_ready(s);
    });
  } else if (user_dispatcher) {
    // §2.2 baseline: worker 0's core hosts the dispatcher; it is the sole
    // waiter on the shared sockets and forwards accepted connections to
    // workers 1..N-1 round-robin.
    HERMES_CHECK(cfg_.num_workers >= 2);
    dispatcher_.emplace(
        Dispatcher::Config{}, eq_, ns_, cfg_.num_workers - 1,
        [this](WorkerId target, netsim::Connection conn) {
          workers_[target]->adopt_connection(conn);
        });
  } else {
    // Registration order defines the LIFO preference: worker 0 first, so
    // the highest-id worker sits at every wait-queue head — matching the
    // "most recently added via epoll_ctl" behaviour.
    for (auto& w : workers_) ns_.register_waiter(w.get());
  }

  for (auto& w : workers_) {
    w->attach_sockets();
    w->start();
  }
  if (dispatcher_) {
    dispatcher_->attach_sockets();
    dispatcher_->start();
  }
  last_busy_.assign(cfg_.num_workers, SimTime::zero());
}

netsim::ConnId LbDevice::open_connection(TenantId tenant, ConnPlan plan) {
  return open_connection_attempt(tenant, std::move(plan), eq_.now(),
                                 /*attempt=*/0);
}

size_t LbDevice::open_connection_burst(TenantId tenant, const ConnPlan& plan,
                                       size_t count) {
  std::vector<netsim::FourTuple> tuples(count);
  for (auto& tuple : tuples) {
    tuple.saddr = static_cast<uint32_t>(rng_.next_u64());
    tuple.daddr = 0x0a000001;
    tuple.sport = static_cast<uint16_t>(1024 + rng_.next_below(60000));
    tuple.dport = port_of(tenant);
  }
  return open_tuple_burst(tenant, plan, tuples);
}

size_t LbDevice::open_tuple_burst(TenantId tenant, const ConnPlan& plan,
                                  std::span<const netsim::FourTuple> tuples) {
  // Admission control: rate-limited SYNs never reach the netstack (and
  // are not counted as backlog drops — they are policy refusals).
  std::vector<netsim::FourTuple> admitted_storage;
  if (limiter_) {
    admitted_storage.reserve(tuples.size());
    for (const netsim::FourTuple& t : tuples) {
      if (limiter_->admit(t.saddr, eq_.now())) {
        admitted_storage.push_back(t);
      } else {
        ++totals_.rate_limited;
        if (obs_) obs_->metrics.ratelimit_drops->inc(0);
      }
    }
    tuples = admitted_storage;
  }
  burst_views_.resize(tuples.size());
  const size_t established = ns_.on_connection_burst(
      tuples, port_of(tenant), tenant, eq_.now(), burst_views_.data());
  totals_.conns_dropped += tuples.size() - established;
  for (const netsim::Connection conn : burst_views_) {
    if (!conn) continue;
    ++totals_.conns_opened;
    LiveConn lc;
    lc.conn = conn;
    lc.plan = plan;
    lc.syn_time = eq_.now();
    conns_.emplace(conn.id(), std::move(lc));
  }
  return established;
}

netsim::ConnId LbDevice::open_connection_attempt(TenantId tenant,
                                                 ConnPlan plan,
                                                 SimTime first_syn,
                                                 int attempt) {
  netsim::FourTuple tuple;
  tuple.saddr = static_cast<uint32_t>(rng_.next_u64());
  tuple.daddr = 0x0a000001;
  tuple.sport = static_cast<uint16_t>(1024 + rng_.next_below(60000));
  tuple.dport = port_of(tenant);

  if (limiter_ && !limiter_->admit(tuple.saddr, eq_.now())) {
    // Policy refusal at admission: no backlog drop, no SYN retry (the
    // client sees an RST, not a timeout).
    ++totals_.rate_limited;
    if (obs_) obs_->metrics.ratelimit_drops->inc(0);
    return 0;
  }

  const netsim::Connection conn =
      ns_.on_connection_request(tuple, tuple.dport, tenant, eq_.now());
  if (!conn) {
    ++totals_.conns_dropped;
    if (attempt < cfg_.syn_retries) {
      // TCP-style retransmission with exponential backoff.
      const SimTime backoff = cfg_.syn_retry_timeout * (1ll << attempt);
      ++totals_.syn_retransmits;
      eq_.schedule_after(backoff, [this, tenant, plan = std::move(plan),
                                   first_syn, attempt]() mutable {
        open_connection_attempt(tenant, std::move(plan), first_syn,
                                attempt + 1);
      });
    }
    return 0;
  }
  ++totals_.conns_opened;

  LiveConn lc;
  lc.conn = conn;
  lc.plan = std::move(plan);
  lc.syn_time = first_syn;  // latency clock starts at the original SYN
  const netsim::ConnId id = conn.id();
  conns_.emplace(id, std::move(lc));
  return id;
}

LbDevice::ConnPlan LbDevice::plan_from_pattern(const TrafficPattern& p,
                                               TenantId tenant) {
  ConnPlan plan;
  plan.tenant = tenant;
  plan.cost_us = p.request_cost_us;
  plan.bytes = p.request_bytes;
  plan.gap_us = p.request_gap_us;
  plan.poison_fraction = p.poison_fraction;
  plan.poison_cost_us = p.poison_cost_us;
  if (p.websocket_fraction > 0 && rng_.bernoulli(p.websocket_fraction)) {
    plan.remaining = 1;
    plan.cost_us = p.websocket_cost_us;
  } else {
    plan.remaining =
        std::max(1, static_cast<int>(p.requests_per_conn.sample(rng_)));
  }
  return plan;
}

void LbDevice::start_pattern(const TrafficPattern& pattern,
                             TenantId first_tenant, uint32_t tenant_span,
                             SimTime until) {
  HERMES_CHECK(pattern.cps > 0 && tenant_span > 0);
  // Poisson arrivals: schedule one arrival; each arrival re-arms a copy of
  // itself (Rearming — see event_queue.h for why not a shared_ptr closure).
  Rearming arrival(
      [this, pattern, first_tenant, tenant_span, until](auto& self) {
        if (eq_.now() > until) return;
        const TenantId tenant =
            first_tenant + static_cast<TenantId>(rng_.next_below(tenant_span));
        open_connection(tenant, plan_from_pattern(pattern, tenant));
        const double gap_s = rng_.exponential(1.0 / pattern.cps);
        eq_.schedule_after(SimTime::from_seconds_f(gap_s), self);
      });
  eq_.schedule_after(
      SimTime::from_seconds_f(rng_.exponential(1.0 / pattern.cps)), arrival);
}

void LbDevice::start_tenant_mix(const TenantModel& tm, double total_cps,
                                uint32_t workers_scale, double load,
                                SimTime until) {
  // One Poisson process; each arrival draws a tenant by Zipf rank, and the
  // tenant's case decides the connection's plan.
  auto zipf = std::make_shared<ZipfSampler>(tm.num_tenants, tm.zipf_skew);
  auto patterns = std::make_shared<std::vector<TrafficPattern>>();
  for (int c = 1; c <= 4; ++c) {
    patterns->push_back(case_pattern(c, workers_scale, load));
  }
  const double cps = total_cps * load;
  Rearming arrival([this, tm, zipf, patterns, cps, until](auto& self) {
    if (eq_.now() > until) return;
    const TenantId tenant = zipf->sample(rng_);
    const TrafficPattern& p = (*patterns)[tm.tenant_case[tenant] - 1];
    open_connection(tenant, plan_from_pattern(p, tenant));
    eq_.schedule_after(SimTime::from_seconds_f(rng_.exponential(1.0 / cps)),
                       self);
  });
  eq_.schedule_after(SimTime::from_seconds_f(rng_.exponential(1.0 / cps)),
                     arrival);
}

void LbDevice::burst_all_connections(const DistSpec& cost_us, int k) {
  for (auto& [id, lc] : conns_) {
    if (lc.conn.state() != netsim::ConnState::Accepted) continue;
    lc.plan.remaining += k;
    for (int i = 0; i < k; ++i) {
      Request req = make_request(lc, eq_.now());
      req.cost = SimTime::from_seconds_f(cost_us.sample(rng_) / 1e6);
      ++totals_.requests_generated;
      workers_[lc.conn.owner()]->deliver_request(req);
    }
  }
}

uint64_t LbDevice::inject_core_probe(WorkerId w, SimTime cost) {
  Request req;
  req.id = next_req_++;
  req.conn = next_probe_id_++;
  req.arrival = eq_.now();
  req.cost = cost;
  req.bytes = 64;
  ++totals_.requests_generated;
  workers_[w]->deliver_request(req);
  return req.conn;
}

uint64_t LbDevice::close_fraction(double fraction) {
  if (fraction <= 0) return 0;
  std::vector<netsim::ConnId> victims;
  for (auto& [id, lc] : conns_) {
    if (lc.conn.state() == netsim::ConnState::Accepted &&
        rng_.bernoulli(fraction)) {
      victims.push_back(id);
    }
  }
  for (netsim::ConnId id : victims) close_conn(id);
  return victims.size();
}

void LbDevice::run_degradation_sweep() {
  if (!hermes_ || !degradation_) return;
  for (WorkerId w = 0; w < cfg_.num_workers; ++w) {
    if (!degradation_->should_degrade(hermes_->wst(), w, eq_.now())) continue;
    // Collect the hung worker's connections.
    std::vector<uint64_t> ids;
    for (auto& [id, lc] : conns_) {
      if (lc.conn.owner() == w &&
          lc.conn.state() == netsim::ConnState::Accepted) {
        ids.push_back(id);
      }
    }
    const auto resets = degradation_->pick_resets(ids, degradation_salt_++);
    degradation_->stats().degradations += resets.empty() ? 0 : 1;
    for (uint64_t id : resets) {
      // RST: the client reconnects immediately; remaining requests carry
      // over to the new connection, which the (healthy-workers) bitmap
      // dispatch will place elsewhere.
      auto it = conns_.find(id);
      if (it == conns_.end()) continue;
      ConnPlan plan = it->second.plan;
      const TenantId tenant = plan.tenant;
      ++totals_.degradation_resets;
      degradation_->stats().resets++;
      close_conn(id);
      if (plan.remaining > 0) open_connection(tenant, std::move(plan));
    }
  }
}

LbDevice::Sample LbDevice::sample_now() {
  Sample s;
  s.at = eq_.now();
  const SimTime window = eq_.now() - last_sample_at_;
  RunningStat cpu, conn;
  double cmin = 1e18, cmax = -1e18, csum = 0;
  for (WorkerId w = 0; w < cfg_.num_workers; ++w) {
    const SimTime busy = workers_[w]->busy_time();
    double util = 0;
    if (window.ns() > 0) {
      util = static_cast<double>((busy - last_busy_[w]).ns()) /
             static_cast<double>(window.ns());
      util = std::min(util, 1.0);
    }
    last_busy_[w] = busy;
    cpu.add(util);
    conn.add(static_cast<double>(workers_[w]->live_connections()));
    cmin = std::min(cmin, util);
    cmax = std::max(cmax, util);
    csum += util;
  }
  last_sample_at_ = eq_.now();
  s.cpu_sd = cpu.stddev();
  s.conn_sd = conn.stddev();
  s.cpu_min = cmin;
  s.cpu_max = cmax;
  s.cpu_avg = csum / cfg_.num_workers;
  s.total_utilization = s.cpu_avg;
  samples_.push_back(s);
  return s;
}

void LbDevice::start_sampling(SimTime period, SimTime until) {
  Rearming tick([this, period, until](auto& self) {
    sample_now();
    if (eq_.now() + period <= until) {
      eq_.schedule_after(period, self);
    }
  });
  eq_.schedule_after(period, tick);
}

Request LbDevice::make_request(LiveConn& lc, SimTime arrival) {
  Request req;
  req.id = next_req_++;
  req.conn = lc.conn.id();
  req.tenant = lc.plan.tenant;
  req.arrival = arrival;
  if (lc.plan.poison_fraction > 0 && rng_.bernoulli(lc.plan.poison_fraction)) {
    req.cost = SimTime::from_seconds_f(lc.plan.poison_cost_us.sample(rng_) / 1e6);
    req.is_poison = true;
  } else {
    req.cost = SimTime::from_seconds_f(lc.plan.cost_us.sample(rng_) / 1e6);
  }
  req.bytes = static_cast<uint64_t>(lc.plan.bytes.sample(rng_));
  if (dp_) {
    // Byte-level proxy path: synthesize + parse + forward the request's
    // actual wire bytes; a backend-pool miss charges the handshake.
    const bool last_on_conn = lc.plan.remaining <= 1;
    req.cost = req.cost + dp_->on_request(lc.conn.owner(), req, last_on_conn,
                                          eq_.now());
  }
  return req;
}

void LbDevice::on_accepted(Worker& w, netsim::Connection conn) {
  auto it = conns_.find(conn.id());
  if (it == conns_.end()) return;  // closed while queued (shouldn't happen)
  LiveConn& lc = it->second;
  if (!lc.first_delivered) {
    lc.first_delivered = true;
    // The client's first request was already on the wire: its latency clock
    // started at SYN time, so accept-queue waiting counts (this is what
    // punishes reuseport's dispatch-to-hung-worker behaviour).
    Request req = make_request(lc, lc.syn_time);
    ++totals_.requests_generated;
    w.deliver_request(req);
  }
}

void LbDevice::on_request_done(Worker& w, const Request& req) {
  ++totals_.requests_completed;
  const SimTime latency = eq_.now() - req.arrival;
  latency_.record(latency);
  window_latency_.record(latency);
  if (obs_) {
    obs_req_latency_->record(w.id(), static_cast<uint64_t>(latency.ns()));
    obs_->traces.write(w.id(), obs::TraceType::RequestDone, eq_.now(),
                       req.tenant, req.conn,
                       static_cast<uint64_t>(latency.ns()));
  }
  if (request_done_) request_done_(req.tenant, latency);

  auto it = conns_.find(req.conn);
  if (it == conns_.end()) {
    if (req.conn >= kProbeConnBase) {  // synthetic per-core probe
      probe_latency_.record(latency);
      if (latency > SimTime::millis(200)) ++delayed_probes_;
      if (probe_done_) probe_done_(req.conn, latency);
    }
    return;
  }
  LiveConn& lc = it->second;
  if (lc.plan.is_probe) {
    probe_latency_.record(latency);
    if (latency > SimTime::millis(200)) ++delayed_probes_;
    if (probe_done_) probe_done_(req.conn, latency);
  }
  if (dp_) dp_->on_response(w.id(), req, eq_.now());
  lc.plan.remaining -= 1;
  if (lc.plan.remaining <= 0) {
    w.note_conn_closed();
    const netsim::Connection conn = lc.conn;
    if (dp_) dp_->on_conn_close(req.conn);
    conns_.erase(it);
    ns_.close(conn);
    return;
  }
  // Schedule the next request on this connection after the think gap.
  const SimTime gap =
      SimTime::from_seconds_f(lc.plan.gap_us.sample(rng_) / 1e6);
  const netsim::ConnId id = req.conn;
  eq_.schedule_after(gap, [this, id] {
    auto cit = conns_.find(id);
    if (cit == conns_.end()) return;  // reset by degradation meanwhile
    LiveConn& c = cit->second;
    if (c.conn.state() != netsim::ConnState::Accepted) return;
    Request next = make_request(c, eq_.now());
    ++totals_.requests_generated;
    workers_[c.conn.owner()]->deliver_request(next);
  });
}

void LbDevice::close_conn(netsim::ConnId id) {
  auto it = conns_.find(id);
  if (it == conns_.end()) return;
  const netsim::Connection conn = it->second.conn;
  // Closing a still-queued connection would leave a stale view in its
  // accept queue; callers only shed Accepted connections.
  HERMES_CHECK(conn.state() == netsim::ConnState::Accepted);
  if (conn.owner() != kInvalidWorker) {
    workers_[conn.owner()]->note_conn_closed();
  }
  if (dp_) dp_->on_conn_close(id);
  conns_.erase(it);
  ns_.close(conn);
}

}  // namespace hermes::sim
