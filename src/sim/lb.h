// LbDevice: one simulated L7 load balancer — N workers pinned to cores,
// M tenant ports, a netsim kernel beneath, and optionally the full Hermes
// runtime wired into it. The benches and examples drive this type.
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/degradation.h"
#include "core/hermes.h"
#include "core/rate_limit.h"
#include "netsim/netstack.h"
#include "sim/data_plane.h"
#include "obs/observability.h"
#include "simcore/event_queue.h"
#include "simcore/histogram.h"
#include "simcore/rng.h"
#include "sim/request.h"
#include "sim/dispatcher.h"
#include "sim/worker.h"
#include "sim/workload.h"

namespace hermes::sim {

class LbDevice {
 public:
  struct Config {
    netsim::DispatchMode mode = netsim::DispatchMode::HermesMode;
    uint32_t num_workers = 8;
    uint32_t num_ports = 16;
    PortId first_port = 1024;
    size_t backlog = 1024;
    Worker::Config worker{};           // id is overwritten per worker
    core::HermesConfig hermes{};
    // Scheduling policy for the generated dispatch program (core/policy.h).
    // Defaults to the cascade, overridable via HERMES_POLICY.
    core::PolicyKind policy = core::default_policy();
    // Heterogeneous fleet: per-worker relative core speeds (empty = all
    // 1.0). Shorter than num_workers pads with 1.0. Also feeds the
    // weighted policy's capacity weights (weight = round(speed * 4)).
    std::vector<double> worker_speeds;
    uint64_t seed = 1;
    // Client SYN retransmission on backlog overflow: 0 = drops are final
    // (default; keeps calibrated benches stable). With retries, dropped
    // SYNs come back after an exponentially backed-off timeout — the
    // retry amplification that deepens overload collapse.
    int syn_retries = 0;
    SimTime syn_retry_timeout = SimTime::seconds(1);
    // Fault-injection hooks for the embedded Hermes runtime (torture tests;
    // not owned, may be null). See core/fault_injection.h.
    core::FaultInjector* faults = nullptr;
    // Observability: metrics registry + per-worker trace rings across the
    // dispatch pipeline (src/obs). On by default — Table 5's claim is that
    // the instrumentation is cheap enough to leave on.
    bool observability = true;
    size_t trace_ring_capacity = 4096;
    // L7 byte-level data plane (sim/data_plane.h). Off by default: the
    // abstract cost-model path stays byte-identical for existing benches.
    DataPlane::Config data_plane{};
    // Per-client token-bucket admission control; rate_per_sec==0 disables.
    core::ClientRateLimiter::Config rate_limit{};
  };

  explicit LbDevice(Config cfg);

  const Config& config() const { return cfg_; }
  EventQueue& eq() { return eq_; }
  Rng& rng() { return rng_; }
  netsim::NetStack& netstack() { return ns_; }
  core::HermesRuntime* hermes() { return hermes_ ? &*hermes_ : nullptr; }
  // The device's observability layer (null when Config::observability off).
  obs::Observability* obs() { return obs_.get(); }
  Dispatcher* dispatcher() { return dispatcher_ ? &*dispatcher_ : nullptr; }
  Worker& worker(WorkerId w) { return *workers_[w]; }
  uint32_t num_workers() const { return cfg_.num_workers; }
  // The byte-level L7 data plane (null when Config::data_plane.enabled off).
  DataPlane* data_plane() { return dp_.get(); }
  const DataPlane* data_plane() const { return dp_.get(); }
  core::ClientRateLimiter* rate_limiter() {
    return limiter_ ? &*limiter_ : nullptr;
  }

  // ---- workload interface ----------------------------------------------
  // Per-connection request plan, sampled lazily as requests complete.
  struct ConnPlan {
    TenantId tenant = 0;
    int remaining = 1;
    DistSpec cost_us = DistSpec::constant(200);
    DistSpec bytes = DistSpec::constant(600);
    DistSpec gap_us = DistSpec::exponential(10'000);
    double poison_fraction = 0;
    DistSpec poison_cost_us = DistSpec::constant(500'000);
    bool is_probe = false;
  };

  // Open a connection for `tenant` (port chosen by tenant id). Returns the
  // connection id, or 0 if the SYN was dropped (backlog overflow; with
  // syn_retries configured a retransmission is scheduled automatically,
  // and the eventual first request's latency clock still starts at the
  // ORIGINAL SYN, as the client experiences it).
  netsim::ConnId open_connection(TenantId tenant, ConnPlan plan);

  // Open `count` connections for `tenant` as one SYN burst at the current
  // sim time. Dispatch goes through the netstack's batched entry
  // (ReuseportGroup::select_batch), amortizing program-plan and metric
  // lookups across the burst. Burst drops are final — no SYN
  // retransmission. Returns the number established.
  size_t open_connection_burst(TenantId tenant, const ConnPlan& plan,
                               size_t count);

  // Same burst entry but with caller-supplied four-tuples (the fleet front
  // tier routes by tuple hash, so the tuple the client chose must be the
  // tuple this device admits). Tuple dports must equal port_of(tenant).
  size_t open_tuple_burst(TenantId tenant, const ConnPlan& plan,
                          std::span<const netsim::FourTuple> tuples);

  // Build a plan from a TrafficPattern (samples per-conn request count).
  ConnPlan plan_from_pattern(const TrafficPattern& p, TenantId tenant);

  // Start a Poisson connection-arrival process for `pattern` running until
  // `until`. Multiple generators may run concurrently (multi-tenant mixes).
  void start_pattern(const TrafficPattern& pattern, TenantId first_tenant,
                     uint32_t tenant_span, SimTime until);

  // Zipf-skewed multi-tenant mix (Fig. 13 / Table 2 style).
  void start_tenant_mix(const TenantModel& tm, double total_cps,
                        uint32_t workers_scale, double load, SimTime until);

  // Deliver `k` extra requests on every live connection right now — the
  // synchronized surge of Fig. 3.
  void burst_all_connections(const DistSpec& cost_us, int k);

  // Inject a per-core health probe directly onto worker `w`'s event queue
  // (models the production prober whose SYN/handshake is served by the
  // RSS-selected core: if that core is buried, the probe is late no matter
  // which dispatch mode is active). Returns the synthetic probe id.
  uint64_t inject_core_probe(WorkerId w, SimTime cost = SimTime::micros(50));

  // Close roughly `fraction` of live connections (client churn / age-out
  // model for canary-drain experiments). Returns how many were closed.
  uint64_t close_fraction(double fraction);

  // Proactive degradation sweep (Appendix C): reset a fraction of a hung
  // worker's connections; clients immediately reconnect (new SYN), letting
  // the closed loop move them to healthy workers.
  void run_degradation_sweep();

  // ---- metrics -----------------------------------------------------------
  struct Totals {
    uint64_t conns_opened = 0;
    uint64_t conns_dropped = 0;
    uint64_t requests_completed = 0;
    uint64_t requests_generated = 0;
    uint64_t degradation_resets = 0;
    uint64_t syn_retransmits = 0;
    uint64_t rate_limited = 0;  // refused at admission (not backlog drops)
  };
  const Totals& totals() const { return totals_; }
  // Probe completion callback (set by Prober): (conn id, latency).
  using ProbeDoneFn = std::function<void(netsim::ConnId, SimTime)>;
  void set_probe_done_fn(ProbeDoneFn fn) { probe_done_ = std::move(fn); }
  // Per-request observer (tenant, latency) — per-tenant SLO tooling.
  using RequestDoneFn = std::function<void(TenantId, SimTime)>;
  void set_request_done_fn(RequestDoneFn fn) { request_done_ = std::move(fn); }
  Histogram& latency() { return latency_; }        // all request latencies
  // Latency histogram since the last take_window_latency() call (timeline
  // plots like Fig. 3).
  Histogram take_window_latency() {
    Histogram out = std::move(window_latency_);
    window_latency_ = Histogram{5};
    return out;
  }
  Histogram& probe_latency() { return probe_latency_; }
  uint64_t delayed_probes() const { return delayed_probes_; }
  uint64_t live_connections() const { return conns_.size(); }

  // Periodic sampling for Fig. 13 / Table 2: per-sample SD of worker CPU
  // utilization and of per-worker connection counts.
  struct Sample {
    SimTime at{};
    double cpu_sd = 0;          // SD of per-worker utilization in [0,1]
    double conn_sd = 0;         // SD of per-worker live connections
    double cpu_max = 0, cpu_min = 0, cpu_avg = 0;
    double total_utilization = 0;
  };
  // Samples utilization over the window since the previous call.
  Sample sample_now();
  const std::vector<Sample>& samples() const { return samples_; }
  // Schedule sampling every `period` until `until`.
  void start_sampling(SimTime period, SimTime until);

  double throughput_krps(SimTime duration) const {
    return static_cast<double>(totals_.requests_completed) /
           duration.s_f() / 1000.0;
  }

 private:
  struct LiveConn {
    netsim::Connection conn{};
    ConnPlan plan;
    SimTime syn_time{};   // ORIGINAL SYN (first attempt)
    bool first_delivered = false;
  };

  netsim::ConnId open_connection_attempt(TenantId tenant, ConnPlan plan,
                                         SimTime first_syn, int attempt);

  PortId port_of(TenantId tenant) const {
    return static_cast<PortId>(cfg_.first_port + tenant % cfg_.num_ports);
  }
  void on_accepted(Worker& w, netsim::Connection conn);
  void on_request_done(Worker& w, const Request& req);
  void deliver(LiveConn& lc, SimTime arrival, bool first);
  void close_conn(netsim::ConnId id);
  Request make_request(LiveConn& lc, SimTime arrival);

  Config cfg_;
  EventQueue eq_;
  Rng rng_;
  std::unique_ptr<obs::Observability> obs_;
  obs::LogHistogram* obs_req_latency_ = nullptr;  // request.latency_ns
  netsim::NetStack ns_;
  std::optional<core::HermesRuntime> hermes_;
  std::optional<core::DegradationPolicy> degradation_;
  std::unique_ptr<DataPlane> dp_;
  std::optional<core::ClientRateLimiter> limiter_;
  std::optional<Dispatcher> dispatcher_;
  std::vector<core::PortAttachment> attachments_;
  std::vector<std::unique_ptr<Worker>> workers_;

  static constexpr netsim::ConnId kProbeConnBase = 1ull << 62;
  std::unordered_map<netsim::ConnId, LiveConn> conns_;
  std::vector<netsim::Connection> burst_views_;  // burst admit scratch
  RequestId next_req_ = 1;
  netsim::ConnId next_probe_id_ = kProbeConnBase;
  uint64_t degradation_salt_ = 0;

  Totals totals_;
  Histogram latency_{5};
  Histogram window_latency_{5};
  Histogram probe_latency_{5};
  uint64_t delayed_probes_ = 0;
  ProbeDoneFn probe_done_;
  RequestDoneFn request_done_;

  std::vector<Sample> samples_;
  std::vector<SimTime> last_busy_;
  SimTime last_sample_at_{};
};

}  // namespace hermes::sim
