// Multi-device cluster harness: several LbDevices behind an L4 layer that
// sprays connections by 5-tuple hash (ECMP/NAT, paper Fig. 1), with
// support for canary releases — draining devices stop receiving NEW
// connections while existing ones age out, exactly the rollout mechanics
// behind Fig. 11's residual-probe tail — and per-tenant sandbox isolation
// (Appendix C, exception case 2: abusive tenants are "migrated to a
// sandbox, enabling physical isolation").
//
// Each LbDevice keeps its own event queue; devices only interact through
// the arrival process, so the cluster advances them in bounded lockstep.
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "sim/lb.h"

namespace hermes::sim {

class MultiLbCluster {
 public:
  struct DeviceSpec {
    netsim::DispatchMode mode;
    uint64_t seed;
  };

  MultiLbCluster(const std::vector<DeviceSpec>& specs,
                 const LbDevice::Config& base) {
    for (const auto& spec : specs) {
      LbDevice::Config cfg = base;
      cfg.mode = spec.mode;
      cfg.seed = spec.seed;
      devices_.push_back(std::make_unique<LbDevice>(cfg));
      draining_.push_back(false);
    }
    rng_ = std::make_unique<Rng>(base.seed ^ 0x5a5a5a5aull);
  }

  size_t size() const { return devices_.size(); }
  LbDevice& device(size_t i) { return *devices_[i]; }
  bool draining(size_t i) const { return draining_[i]; }

  // Canary: stop routing NEW connections to device i (existing ones keep
  // running until they close).
  void start_draining(size_t i) { draining_[i] = true; }
  // Sandbox isolation (Appendix C): pin a tenant's NEW connections to one
  // device (usually a draining-from-rotation sandbox), away from everyone
  // else. Existing connections can be shed via the device's degradation /
  // close_fraction machinery.
  void migrate_tenant(TenantId tenant, size_t device) {
    HERMES_CHECK(device < devices_.size());
    tenant_pins_[tenant] = device;
  }
  void unpin_tenant(TenantId tenant) { tenant_pins_.erase(tenant); }
  bool tenant_pinned(TenantId tenant) const {
    return tenant_pins_.count(tenant) > 0;
  }
  // Bring a device (back) into the L4 rotation.
  void stop_draining(size_t i) { draining_[i] = false; }

  // L4 front door: route one connection to a non-draining device by hash
  // (per-connection consistent, like ECMP + NAT). Returns the device index
  // or SIZE_MAX if every device is draining.
  size_t route(uint32_t flow_hash) const {
    uint32_t active = 0;
    for (bool d : draining_) active += d ? 0 : 1;
    if (active == 0) return SIZE_MAX;
    uint32_t idx = netsim::reciprocal_scale(flow_hash, active);
    for (size_t i = 0; i < devices_.size(); ++i) {
      if (draining_[i]) continue;
      if (idx == 0) return i;
      --idx;
    }
    return SIZE_MAX;
  }

  // Open a connection through the L4 layer. Returns the device chosen.
  size_t open_connection(TenantId tenant, const LbDevice::ConnPlan& plan) {
    size_t dev;
    const auto pin = tenant_pins_.find(tenant);
    if (pin != tenant_pins_.end()) {
      dev = pin->second;  // sandboxed tenant: bypass the normal rotation
    } else {
      dev = route(static_cast<uint32_t>(rng_->next_u64()));
    }
    if (dev != SIZE_MAX) devices_[dev]->open_connection(tenant, plan);
    return dev;
  }

  // Advance every device's clock to `until` in `step`-sized slices so
  // cross-device observation points (sampling, probes) stay aligned.
  void run_until(SimTime until, SimTime step = SimTime::millis(100)) {
    SimTime t = now_;
    while (t < until) {
      t = std::min(until, t + step);
      for (auto& d : devices_) d->eq().run_until(t);
      now_ = t;
    }
  }

  SimTime now() const { return now_; }

  // Cluster-wide aggregates.
  uint64_t total_completed() const {
    uint64_t sum = 0;
    for (const auto& d : devices_) sum += d->totals().requests_completed;
    return sum;
  }
  uint64_t total_live_connections() const {
    uint64_t sum = 0;
    for (const auto& d : devices_) sum += d->live_connections();
    return sum;
  }

 private:
  std::vector<std::unique_ptr<LbDevice>> devices_;
  std::vector<bool> draining_;
  std::unordered_map<TenantId, size_t> tenant_pins_;
  std::unique_ptr<Rng> rng_;
  SimTime now_{};
};

}  // namespace hermes::sim
