// Availability probing (paper §6.2, Fig. 11): periodic tiny requests sent
// through the LB; a probe whose end-to-end delay exceeds 200 ms counts as
// "delayed" — the paper's hung-worker detection signal.
//
// Each probe carries its own 200 ms deadline: a probe that is still stuck
// in a hung worker's accept queue when the deadline passes is delayed even
// though it never completed (silence is failure, not success).
#pragma once

#include <functional>
#include <memory>
#include <unordered_set>

#include "sim/lb.h"

namespace hermes::sim {

class Prober {
 public:
  struct Config {
    SimTime period = SimTime::millis(50);
    SimTime deadline = SimTime::millis(200);   // paper's SLO
    SimTime probe_cost = SimTime::micros(50);  // LB has no probe logic: tiny
    TenantId tenant = 0;
  };

  Prober(LbDevice& lb, Config cfg) : lb_(lb), cfg_(cfg) {
    lb_.set_probe_done_fn([this](netsim::ConnId id, SimTime latency) {
      if (outstanding_.erase(id) > 0 && latency > cfg_.deadline) {
        ++delayed_;
      }
    });
  }

  void start(SimTime until) {
    Rearming tick([this, until](auto& self) {
      send_probe();
      if (lb_.eq().now() + cfg_.period <= until) {
        lb_.eq().schedule_after(cfg_.period, self);
      }
    });
    lb_.eq().schedule_after(cfg_.period, tick);
  }

  void send_probe() {
    LbDevice::ConnPlan plan;
    plan.tenant = cfg_.tenant;
    plan.remaining = 1;
    plan.cost_us = DistSpec::constant(cfg_.probe_cost.us_f());
    plan.bytes = DistSpec::constant(64);
    plan.is_probe = true;
    ++probes_sent_;
    const netsim::ConnId id = lb_.open_connection(cfg_.tenant, plan);
    if (id == 0) {
      ++delayed_;  // SYN dropped: the probe will never be answered
      return;
    }
    outstanding_.insert(id);
    lb_.eq().schedule_after(cfg_.deadline, [this, id] {
      // Still unanswered past the deadline: delayed, whatever happens later.
      if (outstanding_.erase(id) > 0) ++delayed_;
    });
  }

  uint64_t probes_sent() const { return probes_sent_; }
  uint64_t delayed() const { return delayed_; }

 private:
  LbDevice& lb_;
  Config cfg_;
  std::unordered_set<netsim::ConnId> outstanding_;
  uint64_t probes_sent_ = 0;
  uint64_t delayed_ = 0;
};

}  // namespace hermes::sim
