// Request and per-connection workload state shared between the workload
// generator, the LB device, and workers.
#pragma once

#include <cstdint>

#include "netsim/connection.h"
#include "util/types.h"

namespace hermes::netsim {
class ListeningSocket;  // netsim/netstack.h
}

namespace hermes::sim {

using RequestId = uint64_t;

// One application-layer request to be processed by a worker.
struct Request {
  RequestId id = 0;
  netsim::ConnId conn = 0;
  TenantId tenant = 0;
  SimTime arrival{};     // when it reached the kernel (SYN time for the
                         // first request of a connection)
  SimTime cost{};        // CPU time the worker will spend on it
  uint64_t bytes = 0;    // wire size; with the data plane enabled it also
                         // scales service time (DataPlane per_byte_cost)
  bool is_poison = false;  // hang-inducing (stuck edge-triggered read)
};

// What a worker pulled out of epoll_wait: either a new-connection event on
// a listening socket or a request on an established connection.
struct WorkerEvent {
  enum class Kind : uint8_t { Accept, Request };
  Kind kind = Kind::Request;
  netsim::ListeningSocket* socket = nullptr;  // Accept
  Request request{};                          // Request
};

}  // namespace hermes::sim
