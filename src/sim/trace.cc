#include "sim/trace.h"

#include <sstream>

#include "util/check.h"

namespace hermes::sim {

void Trace::save(std::ostream& os) const {
  os << "# hermes-trace-v1: offset_us tenant requests cost_us bytes gap_us\n";
  for (const auto& e : entries_) {
    os << e.offset_us << ' ' << e.tenant << ' ' << e.requests << ' '
       << e.cost_us << ' ' << e.bytes << ' ' << e.gap_us << '\n';
  }
}

bool Trace::load(std::istream& is, Trace* out) {
  HERMES_CHECK(out != nullptr);
  out->entries_.clear();
  std::string line;
  int64_t prev_offset = 0;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    TraceEntry e;
    if (!(ls >> e.offset_us >> e.tenant >> e.requests >> e.cost_us >>
          e.bytes >> e.gap_us)) {
      return false;
    }
    if (e.offset_us < prev_offset || e.requests < 1 || e.cost_us < 0 ||
        e.gap_us < 0) {
      return false;  // arrivals must be time-ordered and sane
    }
    prev_offset = e.offset_us;
    out->entries_.push_back(e);
  }
  return true;
}

Trace Trace::record(const TrafficPattern& pattern, SimTime duration,
                    uint32_t tenant_span, Rng& rng) {
  HERMES_CHECK(pattern.cps > 0 && tenant_span > 0);
  Trace trace;
  double t_us = 0;
  const double duration_us = duration.us_f();
  for (;;) {
    t_us += rng.exponential(1e6 / pattern.cps);
    if (t_us >= duration_us) break;
    TraceEntry e;
    e.offset_us = static_cast<int64_t>(t_us);
    e.tenant = static_cast<TenantId>(rng.next_below(tenant_span));
    if (pattern.websocket_fraction > 0 &&
        rng.bernoulli(pattern.websocket_fraction)) {
      e.requests = 1;
      e.cost_us = pattern.websocket_cost_us.sample(rng);
    } else {
      e.requests = std::max(1, static_cast<int>(
                                   pattern.requests_per_conn.sample(rng)));
      e.cost_us = pattern.request_cost_us.sample(rng);
    }
    if (pattern.poison_fraction > 0 &&
        rng.bernoulli(pattern.poison_fraction)) {
      e.cost_us = pattern.poison_cost_us.sample(rng);
    }
    e.bytes = static_cast<uint64_t>(pattern.request_bytes.sample(rng));
    e.gap_us = pattern.request_gap_us.sample(rng);
    trace.add(e);
  }
  return trace;
}

void TraceReplayer::replay(const Trace& trace, LbDevice& lb, double rate) {
  HERMES_CHECK(rate > 0);
  const SimTime start = lb.eq().now();
  for (const auto& e : trace.entries()) {
    const SimTime at =
        start + SimTime::micros(static_cast<int64_t>(
                    static_cast<double>(e.offset_us) / rate));
    lb.eq().schedule_at(at, [&lb, e] {
      LbDevice::ConnPlan plan;
      plan.tenant = e.tenant;
      plan.remaining = e.requests;
      // Captured per-connection characteristics replay verbatim: the same
      // connection costs the same whether replayed at 1x or 3x.
      plan.cost_us = DistSpec::constant(e.cost_us);
      plan.bytes = DistSpec::constant(static_cast<double>(e.bytes));
      plan.gap_us = DistSpec::constant(e.gap_us);
      lb.open_connection(e.tenant, plan);
    });
  }
}

}  // namespace hermes::sim
