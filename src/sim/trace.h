// Trace capture and replay — the paper's evaluation methodology: "we
// collected and replayed traffic from them. Additionally, we replayed
// traffic at 2 to 3 times the original rate" (§6.2).
//
// A trace is a text file, one connection per line:
//
//   # offset_us tenant requests cost_us bytes gap_us
//   1523 7 3 2400.5 8192 30000
//
// TraceRecorder samples a TrafficPattern into a trace (or you capture one
// from any source); TraceReplayer schedules it into an LbDevice with a
// rate multiplier — at 2x, inter-arrival offsets halve, per-connection
// content is unchanged, exactly like replaying a pcap faster.
#pragma once

#include <cstdint>
#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "sim/lb.h"
#include "sim/workload.h"

namespace hermes::sim {

struct TraceEntry {
  int64_t offset_us = 0;  // arrival offset from trace start
  TenantId tenant = 0;
  int requests = 1;
  double cost_us = 200;   // per-request CPU cost (sampled at capture time)
  uint64_t bytes = 600;
  double gap_us = 10'000; // think time between requests
};

class Trace {
 public:
  void add(TraceEntry e) { entries_.push_back(e); }
  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  const TraceEntry& operator[](size_t i) const { return entries_[i]; }
  const std::vector<TraceEntry>& entries() const { return entries_; }

  // Total duration (offset of the last arrival).
  SimTime duration() const {
    return entries_.empty() ? SimTime::zero()
                            : SimTime::micros(entries_.back().offset_us);
  }

  // --- serialization ---------------------------------------------------
  void save(std::ostream& os) const;
  // Parses the textual format; returns false on malformed input.
  static bool load(std::istream& is, Trace* out);

  // --- capture -----------------------------------------------------------
  // Sample `duration` worth of a TrafficPattern into a trace (Poisson
  // arrivals, per-connection request plans fixed at capture time).
  static Trace record(const TrafficPattern& pattern, SimTime duration,
                      uint32_t tenant_span, Rng& rng);

 private:
  std::vector<TraceEntry> entries_;
};

class TraceReplayer {
 public:
  // Schedule every connection of `trace` into `lb`, starting at the LB's
  // current time, with arrival offsets divided by `rate` (2.0 = the
  // paper's "medium", 3.0 = "heavy" replay).
  static void replay(const Trace& trace, LbDevice& lb, double rate = 1.0);
};

}  // namespace hermes::sim
