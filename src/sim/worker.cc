#include "sim/worker.h"

#include <cmath>

#include "util/check.h"

namespace hermes::sim {

Worker::Worker(Config cfg, EventQueue& eq, netsim::NetStack& ns, Host host,
               core::HermesRuntime* hermes)
    : cfg_(cfg), eq_(eq), ns_(ns), host_(std::move(host)), hermes_(hermes) {
  if (hermes_ != nullptr) {
    hooks_.emplace(hermes_->hooks_for(cfg_.id));
  }
}

void Worker::attach_sockets() { sockets_ = ns_.sockets_of(cfg_.id); }

void Worker::start() {
  HERMES_CHECK_MSG(!sockets_.empty() || !cfg_.accepts_enabled,
                   "attach_sockets() before start()");
  if (hooks_) hooks_->on_loop_enter(eq_.now());
  block();
}

bool Worker::try_wake(netsim::ListeningSocket&) {
  if (state_ != State::Blocked) return false;
  state_ = State::Woken;
  eq_.cancel(timeout_handle_);
  blocking_time_.record(eq_.now() - blocked_since_);
  eq_.schedule_after(SimTime::zero(), [this] { start_iteration(); });
  return true;
}

void Worker::on_socket_ready(netsim::ListeningSocket& sock) {
  // Per-worker sockets: only the owner is notified.
  HERMES_DCHECK(sock.owner() == cfg_.id);
  (void)sock;
  try_wake(sock);
}

void Worker::deliver_request(const Request& req) {
  pending_requests_.push_back(req);
  if (state_ == State::Blocked) {
    state_ = State::Woken;
    eq_.cancel(timeout_handle_);
    blocking_time_.record(eq_.now() - blocked_since_);
    eq_.schedule_after(SimTime::zero(), [this] { start_iteration(); });
  }
}

void Worker::adopt_connection(netsim::Connection conn) {
  HERMES_DCHECK(conn.valid() && conn.state() == netsim::ConnState::Accepted);
  conn.set_owner(cfg_.id);
  ++accepts_done_;
  ++live_conns_;
  if (hooks_) hooks_->on_conn_open();
  if (host_.on_accepted) host_.on_accepted(*this, conn);
}

void Worker::note_conn_closed() {
  --live_conns_;
  if (hooks_) hooks_->on_conn_close();
}

void Worker::block() {
  state_ = State::Blocked;
  blocked_since_ = eq_.now();
  timeout_handle_ =
      eq_.schedule_after(cfg_.epoll_timeout, [this] { on_timeout(); });
}

void Worker::on_timeout() {
  HERMES_DCHECK(state_ == State::Blocked);
  state_ = State::Woken;
  blocking_time_.record(eq_.now() - blocked_since_);
  start_iteration();
}

size_t Worker::collect_batch() {
  size_t n = 0;
  // Connection events first (they were triggered earlier in real time).
  while (!pending_requests_.empty() &&
         n < static_cast<size_t>(cfg_.max_batch)) {
    WorkerEvent ev;
    ev.kind = WorkerEvent::Kind::Request;
    ev.request = pending_requests_.front();
    pending_requests_.pop_front();
    batch_.push_back(ev);
    ++n;
  }
  // One accept per ready listening socket per iteration (Fig. A1's
  // accept_handler dequeues a single connection per event).
  if (!cfg_.accepts_enabled) return n;
  for (netsim::ListeningSocket* sock : sockets_) {
    if (n >= static_cast<size_t>(cfg_.max_batch)) break;
    if (!sock->accept_queue().empty()) {
      WorkerEvent ev;
      ev.kind = WorkerEvent::Kind::Accept;
      ev.socket = sock;
      batch_.push_back(ev);
      ++n;
    }
  }
  return n;
}

void Worker::start_iteration() {
  state_ = State::Running;
  ++loop_iterations_;

  if (cfg_.schedule_at_loop_start && hermes_ != nullptr) {
    hermes_->schedule_and_sync(cfg_.id, eq_.now());
  }

  const size_t n = collect_batch();
  events_per_wait_.record(static_cast<int64_t>(n));
  if (hooks_) hooks_->on_events_returned(static_cast<int64_t>(n));
  if (n == 0) ++wasted_wakeups_;

  // epoll_wait return overhead; shared-socket modes pay per watched port
  // (the O(#ports) dispatch factor of Table 3 case 1).
  SimTime overhead = cfg_.wakeup_cost;
  if (!netsim::uses_per_worker_sockets(ns_.config().mode)) {
    overhead += cfg_.per_listen_socket_cost *
                static_cast<int64_t>(sockets_.size());
  }
  busy_time_ += overhead;
  eq_.schedule_after(overhead, [this] { process_next(); });
}

void Worker::process_next() {
  if (batch_.empty()) {
    end_iteration();
    return;
  }
  WorkerEvent ev = batch_.front();
  batch_.pop_front();

  SimTime cost = ev.kind == WorkerEvent::Kind::Accept ? cfg_.accept_cost
                                                      : ev.request.cost;
  if (cfg_.speed != 1.0) {
    cost = SimTime{static_cast<int64_t>(
        std::llround(static_cast<double>(cost.ns()) / cfg_.speed))};
  }
  busy_time_ += cost;
  event_proc_time_.record(cost);
  eq_.schedule_after(cost, [this, ev = std::move(ev)]() mutable {
    finish_event(std::move(ev));
  });
}

void Worker::finish_event(WorkerEvent ev) {
  if (hooks_) hooks_->on_event_processed();
  if (ev.kind == WorkerEvent::Kind::Accept) {
    const netsim::Connection conn = ns_.accept(*ev.socket, cfg_.id);
    if (conn) {  // may have been drained by a sibling (herd)
      ++accepts_done_;
      ++live_conns_;
      if (hooks_) hooks_->on_conn_open();
      if (host_.on_accepted) host_.on_accepted(*this, conn);
    }
  } else {
    ++requests_done_;
    if (host_.on_request_done) host_.on_request_done(*this, ev.request);
  }
  process_next();
}

void Worker::end_iteration() {
  // Hermes stage 2 at the end of the loop body.
  if (hermes_ != nullptr && !cfg_.schedule_at_loop_start &&
      (last_sync_.ns() < 0 ||
       eq_.now() - last_sync_ >= cfg_.min_sync_interval)) {
    busy_time_ += cfg_.scheduler_cost_per_worker *
                  static_cast<int64_t>(hermes_->workers_per_group());
    const auto res = hermes_->schedule_and_sync(cfg_.id, eq_.now());
    // The map-update "syscall" (Table 5) is only paid when the bitmap was
    // actually stored — change-suppressed syncs skip it.
    if (res.published) busy_time_ += cfg_.sync_syscall_cost;
    last_sync_ = eq_.now();
  }

  // Next loop entry: heartbeat, then either immediately re-run (events
  // ready) or block in epoll_wait.
  if (hooks_) hooks_->on_loop_enter(eq_.now());

  bool ready = !pending_requests_.empty();
  if (!ready && cfg_.accepts_enabled) {
    for (netsim::ListeningSocket* sock : sockets_) {
      if (!sock->accept_queue().empty()) {
        ready = true;
        break;
      }
    }
  }
  if (ready) {
    blocking_time_.record(0);
    eq_.schedule_after(SimTime::zero(), [this] { start_iteration(); });
    state_ = State::Woken;
  } else {
    block();
  }
}

}  // namespace hermes::sim
